#!/usr/bin/env bash
# Full verification loop: configure, build, then run the test suite twice —
# once serial (TQT_NUM_THREADS=1) and once parallel (TQT_NUM_THREADS=4) — so
# any thread-count-dependent result or data race surfaces as a test failure.
#
# Usage:
#   tools/verify.sh [build-dir]               # default build dir: build
#   TQT_SANITIZE=thread tools/verify.sh tsan  # TSan build in ./tsan
#
# TQT_SANITIZE is forwarded to CMake (-DTQT_SANITIZE=thread|address|undefined).
# A TSan run of the parallel pass is the strongest check: the pool, the
# kernels' disjoint-write claims, and the reduction tree all get exercised
# under the race detector.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
CMAKE_ARGS=(-B "$BUILD_DIR" -S . -G Ninja)
if [[ -n "${TQT_SANITIZE:-}" ]]; then
  CMAKE_ARGS+=(-DTQT_SANITIZE="$TQT_SANITIZE")
fi

cmake "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR"

for threads in 1 4; do
  echo "==== ctest with TQT_NUM_THREADS=$threads ===="
  TQT_NUM_THREADS=$threads ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
done

echo "verify.sh: all test passes completed"
