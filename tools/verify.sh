#!/usr/bin/env bash
# Full verification loop: configure, build, then run the test suite twice —
# once serial (TQT_NUM_THREADS=1) and once parallel (TQT_NUM_THREADS=4) — so
# any thread-count-dependent result or data race surfaces as a test failure.
# The engine tests (typed executor, kernels, plan, rescale, bit-exactness)
# additionally run from a Debug build, and the engine bench smoke-runs at the
# end as a bit-exactness gate and as the tuned-may-not-lose-to-static gate.
#
# Usage:
#   tools/verify.sh [build-dir]               # default build dir: build
#   TQT_SANITIZE=thread tools/verify.sh tsan  # TSan build in ./tsan
#
# TQT_SANITIZE is forwarded to CMake (-DTQT_SANITIZE=thread|address|undefined).
# A TSan run of the parallel pass is the strongest check: the pool, the
# kernels' disjoint-write claims, and the reduction tree all get exercised
# under the race detector.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
CMAKE_ARGS=(-B "$BUILD_DIR" -S . -G Ninja)
if [[ -n "${TQT_SANITIZE:-}" ]]; then
  CMAKE_ARGS+=(-DTQT_SANITIZE="$TQT_SANITIZE")
fi

cmake "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR"

# Engine tests also run from a Debug build: the typed engine's kernels and
# memory plan are UB-sensitive (masked loads, arena slack, width narrowing),
# and assertions plus -O0 evaluation order give a second angle on them.
DEBUG_DIR="${BUILD_DIR}-debug"
cmake -B "$DEBUG_DIR" -S . -G Ninja -DCMAKE_BUILD_TYPE=Debug
cmake --build "$DEBUG_DIR" --target test_engine_exec test_engine_units test_fixedpoint \
  test_fuse
echo "==== engine + graph-compiler tests (Debug) ===="
ctest --test-dir "$DEBUG_DIR" \
  -R 'TypedEngine|EngineUnit|Rescale|FixedPoint|BitExact|Fuse|Scheduler' \
  --output-on-failure -j "$(nproc)"

# Fail fast on the graph compiler: fusion bit-exactness over the whole zoo,
# the pass-level rewrites, and the scheduler invariants, at both pool sizes.
# Under TQT_SANITIZE=thread this is the race check on the fused kernels'
# epilogue retire (disjoint narrow stores from parallel row chunks).
for threads in 1 4; do
  echo "==== fuse/scheduler tests with TQT_NUM_THREADS=$threads ===="
  TQT_NUM_THREADS=$threads ctest --test-dir "$BUILD_DIR" -R 'Fuse|Scheduler' \
    --output-on-failure -j "$(nproc)"
done

# Fail fast on the serving subsystem: the serve + serialization tests run
# first, at both pool sizes, before the full suite (which includes them too).
for threads in 1 4; do
  echo "==== serve/serialize tests with TQT_NUM_THREADS=$threads ===="
  TQT_NUM_THREADS=$threads ctest --test-dir "$BUILD_DIR" -R 'Serve|Serialize|serve' \
    --output-on-failure -j "$(nproc)"
done

# tqt-gateway loopback end-to-end at both pool sizes: bit-exactness over the
# socket, every typed rejection path, and the wire fuzz pass. Under
# TQT_SANITIZE=thread this is the race check on the event loop / batcher /
# completion-queue handoffs ('^Net' — plain 'Net' would also match the
# MiniMobileNet model tests).
for threads in 1 4; do
  echo "==== net gateway tests with TQT_NUM_THREADS=$threads ===="
  TQT_NUM_THREADS=$threads ctest --test-dir "$BUILD_DIR" -R '^Net' \
    --output-on-failure -j "$(nproc)"
done

# tqt-qos end-to-end at both pool sizes: the token bucket / tenant table /
# DWRR units, wire-v2 token round trips + truncation fuzz, typed
# RATE_LIMITED / QUOTA_EXCEEDED / CANCELLED rejections, the admin-plane
# tenant reload, slow-loris eviction, whole-zoo bit-exactness under 2 and 4
# shards with mixed-tenant connections, the drain barrier, and hedged
# clients. Under TQT_SANITIZE=thread this is the race check on the shared
# TenantTable, the per-tenant buckets, and the multi-reactor accept paths.
for threads in 1 4; do
  echo "==== qos/shard tests with TQT_NUM_THREADS=$threads ===="
  TQT_NUM_THREADS=$threads ctest --test-dir "$BUILD_DIR" -R '^Qos' \
    --output-on-failure -j "$(nproc)"
done

# Fail fast on tqt-autocal: histogram determinism, the online calibrator's
# bit-exactness against offline recalibration, the service's admin plane,
# drift-triggered hot-swap, and the 4-connection soak, at both pool sizes.
# Under TQT_SANITIZE=thread this is the race check on the worker thread /
# mirror ring / promotion hand-offs while serving continues.
for threads in 1 4; do
  echo "==== autocal tests with TQT_NUM_THREADS=$threads ===="
  TQT_NUM_THREADS=$threads ctest --test-dir "$BUILD_DIR" \
    -R 'Calib|StreamingHistogram|OnlineCalibrator' \
    --output-on-failure -j "$(nproc)"
done

# Fail fast on the autotuner: sidecar round trip plus every corruption
# fallback, mode resolution, the explain report, hot-swap across differently
# tuned program versions, and whole-zoo bit-exactness with autotune forced
# on, at both pool sizes. Under TQT_SANITIZE=thread this is the race check on
# the measure-once cache and the tuner-owned probe buffers.
for threads in 1 4; do
  echo "==== autotune tests with TQT_NUM_THREADS=$threads ===="
  TQT_NUM_THREADS=$threads ctest --test-dir "$BUILD_DIR" -R 'Tune|KernelsEnv' \
    --output-on-failure -j "$(nproc)"
done

# Fail fast on the INT4 sub-byte path: nibble pack/unpack parities, the
# forced Algo::kGemmS4 candidates' bit-exactness over the zoo (per-tensor and
# per-channel), serializer v3, the QuantUse bit-width boundaries, and the
# deprecated pre-QuantSpec wrappers, at both pool sizes.
for threads in 1 4; do
  echo "==== int4 tests with TQT_NUM_THREADS=$threads ===="
  TQT_NUM_THREADS=$threads ctest --test-dir "$BUILD_DIR" \
    -R 'Nib4|S4Engine|SerializeV3|QuantUseBoundaries|DeprecatedWrappers' \
    --output-on-failure -j "$(nproc)"
done

# Fail fast on tqt-observe too: the registry/tracer/JSON tests plus the CLI
# flag-parser contract. Under TQT_SANITIZE=thread this pass is the race
# check on concurrent metric updates and per-thread trace rings.
echo "==== observe/CLI tests ===="
ctest --test-dir "$BUILD_DIR" -R 'Json|Metrics|Tracer|cli_' \
  --output-on-failure -j "$(nproc)"

for threads in 1 4; do
  echo "==== ctest with TQT_NUM_THREADS=$threads ===="
  TQT_NUM_THREADS=$threads ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
done

echo "==== bench_serve_throughput smoke -> $BUILD_DIR/BENCH_serve.json ===="
"$BUILD_DIR/bench/bench_serve_throughput" --smoke -o "$BUILD_DIR/BENCH_serve.json"

# The net bench doubles as the multi-tenant isolation gate: its open-loop
# QoS phases exit nonzero if the abusive tenant is never rate-limited or if
# it drags any well-behaved tenant's p99 past the recorded isolation bound.
echo "==== bench_net_throughput smoke -> $BUILD_DIR/BENCH_net.json ===="
"$BUILD_DIR/bench/bench_net_throughput" --smoke -o "$BUILD_DIR/BENCH_net.json"

# The engine bench doubles as a release gate: it exits nonzero if any zoo
# model's typed output diverges from the reference interpreter. It runs with
# the graph compiler both on and off, so the fusion passes and the plain
# per-op stream each get a bit-exactness check against the int64 reference.
echo "==== bench_engine_kernels smoke (fusion on) -> $BUILD_DIR/BENCH_engine.json ===="
"$BUILD_DIR/bench/bench_engine_kernels" --smoke -o "$BUILD_DIR/BENCH_engine.json"
echo "==== bench_engine_kernels smoke (fusion off) -> $BUILD_DIR/BENCH_engine_nofuse.json ===="
"$BUILD_DIR/bench/bench_engine_kernels" --smoke --no-fuse \
  -o "$BUILD_DIR/BENCH_engine_nofuse.json"

# Fusion must not cost throughput: fail if any model's fused run lands below
# its unfused run beyond smoke-run jitter (the A/B shares one process, but
# two-block smoke timings still wobble a few percent), or if fusion loses on
# the zoo overall.
python3 - "$BUILD_DIR/BENCH_engine.json" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
slow = [(m["model"], m["fused_speedup"]) for m in report["models"]
        if m["fused_speedup"] < 0.95]
if slow:
    sys.exit(f"fused engine slower than unfused: {slow}")
if report["fused_speedup_geomean"] < 1.0:
    sys.exit(f"fused geomean below 1.0: {report['fused_speedup_geomean']:.3f}")
print(f"fusion gate ok: geomean {report['fused_speedup_geomean']:.3f}, "
      f"arena shrunk on {report['models_arena_shrunk']}/{len(report['models'])} models")

# The measured autotuner may never lose to the static auto-pick: the bench
# binary already exits nonzero on a loss beyond its noise floor, so this is a
# belt-and-braces re-check of the report plus the selection summary.
lost = [(m["model"], m["tuned_speedup"]) for m in report["models"]
        if m["tuned_speedup"] < 0.98]
if lost:
    sys.exit(f"tuned engine lost to static auto-pick: {lost}")
print(f"autotune gate ok: tuned geomean {report['tuned_speedup_geomean']:.3f}, "
      f"blocked layout selected on "
      f"{report['models_blocked_selected']}/{len(report['models'])} models")

# The INT4 arm must be bit-exact everywhere and must actually have routed
# matmuls through the s4 GEMM; the s4-vs-s8 throughput ratio is reported but
# not gated (sub-byte storage trades a little unpack compute for 2x smaller
# weights — the ratio is informational, the exactness is the contract).
if report["models_s4_bit_exact"] != len(report["models"]):
    sys.exit(f"int4 pair not bit-exact: {report['models_s4_bit_exact']}"
             f"/{len(report['models'])}")
no_s4 = [m["model"] for m in report["models"] if m["s4_instrs"] == 0]
if no_s4:
    sys.exit(f"no instruction routed through the s4 GEMM on: {no_s4}")
print(f"int4 gate ok: s4-vs-s8 geomean {report['s4_vs_s8_geomean']:.3f}, "
      f"bit-exact on {report['models_s4_bit_exact']}/{len(report['models'])} models")
PY

# Observability overhead contract (DESIGN.md §10): with tracing disabled the
# instrumentation must cost < 1% of a steady-state run_into — the bench
# exits nonzero on a breach. Skipped under sanitizers (timings meaningless).
if [[ -z "${TQT_SANITIZE:-}" ]]; then
  echo "==== bench_observe_overhead smoke -> $BUILD_DIR/BENCH_observe.json ===="
  "$BUILD_DIR/bench/bench_observe_overhead" --smoke -o "$BUILD_DIR/BENCH_observe.json"

  # Trace + metrics round trip through the CLI: the exported chrome://tracing
  # file must contain per-instruction engine spans for a zoo model.
  echo "==== tqt_cli --trace/--metrics-json smoke ===="
  "$BUILD_DIR/tools/tqt_cli" export mini_vgg -o "$BUILD_DIR/verify_vgg.tqtp" --epochs 1 \
    >/dev/null
  "$BUILD_DIR/tools/tqt_cli" run mini_vgg -i "$BUILD_DIR/verify_vgg.tqtp" \
    --trace "$BUILD_DIR/verify_trace.json" --metrics-json "$BUILD_DIR/verify_metrics.json" \
    >/dev/null
  grep -q '"name": "conv2d_fused"' "$BUILD_DIR/verify_trace.json"
  grep -q '"traceEvents"' "$BUILD_DIR/verify_trace.json"
  grep -q '"engine.runs"' "$BUILD_DIR/verify_metrics.json"

  # Autotune round trip through the CLI: `tune` measures every fused
  # instruction and writes the .tqt.tune sidecar next to the artifact; a
  # subsequent `run --autotune on` must pick the sidecar up (the explain
  # table marks measured selections) and stay bit-exact end to end.
  echo "==== tqt_cli tune -> run --autotune on round trip ===="
  rm -f "$BUILD_DIR/verify_vgg.tqtp.tqt.tune"
  "$BUILD_DIR/tools/tqt_cli" tune mini_vgg -i "$BUILD_DIR/verify_vgg.tqtp" \
    > "$BUILD_DIR/verify_tune_out.txt"
  grep -q 'wrote .*verify_vgg\.tqtp\.tqt\.tune' "$BUILD_DIR/verify_tune_out.txt"
  test -s "$BUILD_DIR/verify_vgg.tqtp.tqt.tune"
  "$BUILD_DIR/tools/tqt_cli" run mini_vgg -i "$BUILD_DIR/verify_vgg.tqtp" \
    --autotune on --explain-kernels > "$BUILD_DIR/verify_tune_run.txt"
  grep -q 'measured autotuner selection' "$BUILD_DIR/verify_tune_run.txt"
  grep -q 'top-1' "$BUILD_DIR/verify_tune_run.txt"

  # INT4 round trip through the CLI: quantize at 4/8 per-channel with -o
  # (compile + save in one step), run the artifact, then force-tune it — the
  # tuner must measure the s4 candidates without complaint and the sidecar
  # must appear. Also: the precision flags must reject out-of-range widths.
  echo "==== tqt_cli quantize --wbits 4 -> run -> tune round trip ===="
  "$BUILD_DIR/tools/tqt_cli" quantize mini_vgg --mode static --wbits 4 --per-channel \
    -o "$BUILD_DIR/verify_w4.tqtp" > "$BUILD_DIR/verify_w4_out.txt"
  grep -q 'W4A8 per-channel' "$BUILD_DIR/verify_w4_out.txt"
  grep -q 'wrote .* instructions' "$BUILD_DIR/verify_w4_out.txt"
  "$BUILD_DIR/tools/tqt_cli" run mini_vgg -i "$BUILD_DIR/verify_w4.tqtp" --wbits 4 \
    | grep -q 'top-1'
  rm -f "$BUILD_DIR/verify_w4.tqtp.tqt.tune"
  "$BUILD_DIR/tools/tqt_cli" tune mini_vgg -i "$BUILD_DIR/verify_w4.tqtp" \
    > "$BUILD_DIR/verify_w4_tune.txt"
  grep -q 'wrote .*verify_w4\.tqtp\.tqt\.tune' "$BUILD_DIR/verify_w4_tune.txt"
  test -s "$BUILD_DIR/verify_w4.tqtp.tqt.tune"
  if "$BUILD_DIR/tools/tqt_cli" run mini_vgg -i "$BUILD_DIR/verify_w4.tqtp" --wbits 3 \
    2>/dev/null; then
    echo "FAIL: run accepted --wbits 3 (inference range is [4,16])"; exit 1
  fi

  # Network serving round trip through the CLI: start a gateway on an
  # ephemeral port, drive it with the client subcommand, then SIGTERM the
  # server — the graceful drain must still write the metrics snapshot, with
  # the net.* instruments visible in it.
  echo "==== tqt_cli serve --port / client / SIGTERM drain smoke ===="
  rm -f "$BUILD_DIR/verify_net_metrics.json"
  "$BUILD_DIR/tools/tqt_cli" serve mini_vgg -i "$BUILD_DIR/verify_vgg.tqtp" --port 0 \
    --metrics-json "$BUILD_DIR/verify_net_metrics.json" > "$BUILD_DIR/verify_net_out.txt" 2>&1 &
  SERVE_PID=$!
  for _ in $(seq 1 100); do
    grep -q 'tqt-gateway: serving' "$BUILD_DIR/verify_net_out.txt" 2>/dev/null && break
    sleep 0.1
  done
  NET_PORT=$(sed -n 's/.*127\.0\.0\.1:\([0-9]*\).*/\1/p' "$BUILD_DIR/verify_net_out.txt")
  "$BUILD_DIR/tools/tqt_cli" client mini_vgg --port "$NET_PORT" --requests 8 | grep -q 'ok'
  kill -TERM "$SERVE_PID"
  wait "$SERVE_PID"
  grep -q '"net.requests"' "$BUILD_DIR/verify_net_metrics.json"
  grep -q '"net.responses"' "$BUILD_DIR/verify_net_metrics.json"

  # Multi-tenant sharded round trip through the CLI: serve 2 reactor shards
  # with a tenant table, drive them with two clients at different priorities
  # (one hedged), then drain — the metrics snapshot must show both per-shard
  # net.shard<i>.* instruments and both tenants' qos.tenant.<name>.* counters.
  echo "==== tqt_cli serve --shards 2 --tenants / two-priority clients smoke ===="
  rm -f "$BUILD_DIR/verify_qos_metrics.json"
  cat > "$BUILD_DIR/verify_tenants.cfg" <<'CFG'
token=gold-tok   tenant=gold   class=high weight=4
token=bronze-tok tenant=bronze class=low  weight=1 rate=500 burst=100
CFG
  "$BUILD_DIR/tools/tqt_cli" serve mini_vgg -i "$BUILD_DIR/verify_vgg.tqtp" --port 0 \
    --shards 2 --tenants "$BUILD_DIR/verify_tenants.cfg" \
    --metrics-json "$BUILD_DIR/verify_qos_metrics.json" \
    > "$BUILD_DIR/verify_qos_out.txt" 2>&1 &
  QOS_PID=$!
  for _ in $(seq 1 100); do
    grep -q 'tqt-gateway: serving' "$BUILD_DIR/verify_qos_out.txt" 2>/dev/null && break
    sleep 0.1
  done
  grep -q '2 shards' "$BUILD_DIR/verify_qos_out.txt"
  grep -q '3 tenants' "$BUILD_DIR/verify_qos_out.txt"   # gold + bronze + default
  QOS_PORT=$(sed -n 's/.*127\.0\.0\.1:\([0-9]*\).*/\1/p' "$BUILD_DIR/verify_qos_out.txt")
  "$BUILD_DIR/tools/tqt_cli" client mini_vgg --port "$QOS_PORT" --requests 8 \
    --tenant gold-tok --hedge-ms 500 | grep -q 'ok'
  "$BUILD_DIR/tools/tqt_cli" client mini_vgg --port "$QOS_PORT" --requests 8 \
    --tenant bronze-tok | grep -q 'ok'
  kill -TERM "$QOS_PID"
  wait "$QOS_PID"
  grep -q '"net.shard0.requests"' "$BUILD_DIR/verify_qos_metrics.json"
  grep -q '"net.shard1.' "$BUILD_DIR/verify_qos_metrics.json"
  grep -q '"qos.tenant.gold.admitted"' "$BUILD_DIR/verify_qos_metrics.json"
  grep -q '"qos.tenant.bronze.admitted"' "$BUILD_DIR/verify_qos_metrics.json"

  # Online-calibration round trip through the CLI: serve with the autocal
  # service attached (reusing the FP32 cache the export smoke warmed), stream
  # calibration batches over the admin plane, dry-run, then trigger a full
  # calibrate -> shadow-validate -> hot-swap cycle and check the promotion
  # and the calib.* counters land in both the status JSON and the metrics
  # snapshot. Inference keeps flowing before and after the swap.
  echo "==== tqt_cli serve --calib / calib admin round trip ===="
  rm -f "$BUILD_DIR/verify_calib_out.txt" "$BUILD_DIR/verify_calib_metrics.json"
  "$BUILD_DIR/tools/tqt_cli" serve mini_vgg --calib --port 0 --calib-min-samples 64 \
    --metrics-json "$BUILD_DIR/verify_calib_metrics.json" \
    > "$BUILD_DIR/verify_calib_out.txt" 2>&1 &
  CALIB_PID=$!
  for _ in $(seq 1 600); do
    grep -q 'tqt-gateway: serving' "$BUILD_DIR/verify_calib_out.txt" 2>/dev/null && break
    sleep 0.1
  done
  CALIB_PORT=$(sed -n 's/.*127\.0\.0\.1:\([0-9]*\).*/\1/p' "$BUILD_DIR/verify_calib_out.txt")
  "$BUILD_DIR/tools/tqt_cli" client mini_vgg --port "$CALIB_PORT" --requests 8 | grep -q 'ok'
  "$BUILD_DIR/tools/tqt_cli" calib mini_vgg --port "$CALIB_PORT" --batches 2 --dry-run \
    | grep -q 'log2t'
  "$BUILD_DIR/tools/tqt_cli" calib mini_vgg --port "$CALIB_PORT" --trigger --status \
    > "$BUILD_DIR/verify_calib_admin.txt"
  grep -q 'promoted version 2' "$BUILD_DIR/verify_calib_admin.txt"
  grep -q '"promotions": 1' "$BUILD_DIR/verify_calib_admin.txt"
  "$BUILD_DIR/tools/tqt_cli" client mini_vgg --port "$CALIB_PORT" --requests 8 | grep -q 'ok'
  kill -TERM "$CALIB_PID"
  wait "$CALIB_PID"
  grep -q '"calib.promotions"' "$BUILD_DIR/verify_calib_metrics.json"
fi

echo "verify.sh: all test passes completed"
