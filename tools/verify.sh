#!/usr/bin/env bash
# Full verification loop: configure, build, then run the test suite twice —
# once serial (TQT_NUM_THREADS=1) and once parallel (TQT_NUM_THREADS=4) — so
# any thread-count-dependent result or data race surfaces as a test failure.
#
# Usage:
#   tools/verify.sh [build-dir]               # default build dir: build
#   TQT_SANITIZE=thread tools/verify.sh tsan  # TSan build in ./tsan
#
# TQT_SANITIZE is forwarded to CMake (-DTQT_SANITIZE=thread|address|undefined).
# A TSan run of the parallel pass is the strongest check: the pool, the
# kernels' disjoint-write claims, and the reduction tree all get exercised
# under the race detector.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
CMAKE_ARGS=(-B "$BUILD_DIR" -S . -G Ninja)
if [[ -n "${TQT_SANITIZE:-}" ]]; then
  CMAKE_ARGS+=(-DTQT_SANITIZE="$TQT_SANITIZE")
fi

cmake "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR"

# Fail fast on the serving subsystem: the serve + serialization tests run
# first, at both pool sizes, before the full suite (which includes them too).
for threads in 1 4; do
  echo "==== serve/serialize tests with TQT_NUM_THREADS=$threads ===="
  TQT_NUM_THREADS=$threads ctest --test-dir "$BUILD_DIR" -R 'Serve|Serialize|serve' \
    --output-on-failure -j "$(nproc)"
done

for threads in 1 4; do
  echo "==== ctest with TQT_NUM_THREADS=$threads ===="
  TQT_NUM_THREADS=$threads ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
done

echo "==== bench_serve_throughput smoke -> $BUILD_DIR/BENCH_serve.json ===="
"$BUILD_DIR/bench/bench_serve_throughput" --smoke -o "$BUILD_DIR/BENCH_serve.json"

echo "verify.sh: all test passes completed"
