// tqt_cli — command-line front end for the TQT pipeline.
//
//   tqt_cli list
//       List the model zoo.
//   tqt_cli pretrain <model> [--cache DIR]
//       FP32-pretrain a model (cached) and report accuracy.
//   tqt_cli quantize <model> [--mode static|wt|wt_th] [--wbits B] [--abits B]
//                    [--per-channel] [--epochs N] [-o FILE]
//       Quantize (and optionally retrain) from the cached FP32 weights under
//       a W/A precision policy; -o additionally compiles and saves the
//       fixed-point program (precision then validated against the [4,16]
//       inference range). --bits is a deprecated alias for --wbits.
//   tqt_cli export <model> -o FILE [--wbits B] [--abits B] [--per-channel]
//                  [--epochs N]
//       TQT-retrain and compile to a fixed-point program file.
//   tqt_cli run <model> -i FILE [--threads N] [--repeat N] [--explain-kernels]
//       Load a fixed-point program and evaluate it on the validation split.
//       --repeat runs the split N times and reports wall time per inference.
//       --explain-kernels prints the per-instruction kernel/algo table the
//       executor resolved (autotuned selections marked with *).
//   tqt_cli tune <model> -i FILE [--threads N]
//       Force-autotune a fixed-point program file (re-measuring every shape
//       key, ignoring any existing sidecar) and write the selections as a
//       versioned .tqt.tune sidecar next to the artifact. A later
//       `tqt_cli run --autotune on` loads the sidecar instead of measuring.
//   tqt_cli serve <model> -i FILE [--threads N] [--clients C] [--requests R]
//                 [--max-batch B] [--delay-us D] [--queue Q] [--repeat N]
//       Serve a fixed-point program through the tqt-serve micro-batching
//       server, drive it with C in-process client threads over the
//       validation split (N passes with --repeat), and print the per-model
//       stats block as JSON plus wall time per inference.
//   tqt_cli serve <model> -i FILE --port P [--max-connections C]
//                 [--max-inflight F] [...batching flags as above]
//       Network mode: expose the server over TCP through tqt-gateway
//       (src/net) instead of driving it in-process. Runs until SIGINT or
//       SIGTERM, then drains gracefully — in-flight requests finish, stats
//       and any --metrics-json / --trace files are still written.
//   tqt_cli serve <model> -i FILE --port P --shards N [--tenants FILE]
//       Sharded network mode (tqt-qos): N reactor event loops over one port
//       (SO_REUSEPORT, falling back to accept handoff), each with its own
//       batcher lanes against a shared model registry. --tenants loads a
//       token -> {class, weight, rate, quota} table enforced at admission
//       and hot-reloadable via `tqt_cli calib --reload-tenants`.
//   tqt_cli client <model> --port P [--host H] [--requests R]
//                  [--deadline-us D] [--gain G] [--tenant TOKEN]
//                  [--hedge-ms N] [--shed-retries R]
//       Drive a running tqt-gateway over the wire protocol with validation
//       samples and report accuracy plus per-status response counts. --gain
//       scales every pixel by G — a distribution shift the autocal drift
//       detector can be pointed at. --tenant authenticates as a configured
//       tenant (wire v2); --hedge-ms duplicates slow requests on a second
//       connection (first response wins, loser is cancelled).
//   tqt_cli serve <model> --calib --port P [--calib-* flags]
//       Serve with the tqt-autocal calibration service attached: the service
//       builds + deploys the initial program itself (no -i needed), mirrors
//       live traffic into its drift detector, and answers admin frames
//       (status / calib batches / trigger / dry-run / rollback / swap-file).
//   tqt_cli calib <model> --port P [--host H] [--status] [--batches N]
//                 [--batch-size M] [--gain G] [--trigger] [--dry-run]
//                 [--rollback] [--swap-file PATH]
//       Admin client for a --calib gateway: stream calibration batches from
//       the validation split, then run the requested control operations in
//       order. With no action flags, prints --status.
//
// Every subcommand accepts --help. quantize/export/run/serve additionally
// accept the shared telemetry flags:
//   --metrics-json PATH   write a metrics snapshot (observe.h schema) on exit
//   --trace PATH          record spans and write chrome://tracing JSON on exit
// export/run/serve also accept --autotune on|off|force, overriding the
// TQT_AUTOTUNE environment variable for the process.
#include <atomic>
#include <cerrno>
#include <chrono>
#include <climits>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "calib/autocal.h"
#include "core/metrics.h"
#include "core/pipeline.h"
#include "fixedpoint/autotune.h"
#include "fixedpoint/engine.h"
#include "fixedpoint/fuse.h"
#include "fixedpoint/kernels/kernels.h"
#include "net/client.h"
#include "quant/quant_spec.h"
#include "net/gateway.h"
#include "observe/observe.h"
#include "qos/shard.h"
#include "qos/tenant.h"
#include "runtime/parallel.h"
#include "serve/server.h"

namespace {

using namespace tqt;

int usage() {
  std::fprintf(stderr,
               "usage: tqt_cli <list|pretrain|quantize|export|run|tune|serve|client|calib> [args]\n"
               "  list\n"
               "  pretrain <model> [--cache DIR]\n"
               "  quantize <model> [--mode static|wt|wt_th] [--wbits B] [--abits B]\n"
               "           [--per-channel] [--epochs N] [-o FILE]\n"
               "  export   <model> -o FILE [--wbits B] [--abits B] [--per-channel] [--epochs N]\n"
               "  run      <model> -i FILE [--threads N] [--repeat N] [--explain-kernels]\n"
               "  tune     <model> -i FILE [--threads N]\n"
               "  serve    <model> -i FILE [--threads N] [--clients C] [--requests R]\n"
               "           [--max-batch B] [--delay-us D] [--queue Q] [--repeat N]\n"
               "           [--port P [--max-connections C] [--max-inflight F]]\n"
               "           [--shards N] [--tenants FILE]\n"
               "           [--calib [--calib-mirror-every N] [--calib-min-samples N] ...]\n"
               "  client   <model> --port P [--host H] [--requests R] [--deadline-us D]\n"
               "           [--gain G] [--tenant TOKEN] [--hedge-ms N] [--shed-retries R]\n"
               "  calib    <model> --port P [--host H] [--status] [--batches N]\n"
               "           [--batch-size M] [--gain G] [--trigger] [--dry-run]\n"
               "           [--rollback] [--swap-file PATH] [--reload-tenants]\n"
               "run '--help' after any subcommand for its full flag list\n");
  return 2;
}

// ---- Argument parsing ------------------------------------------------------

/// Declarative flag parser shared by every subcommand: registered flags with
/// one-line docs, --help rendering, positional collection, and a one-line
/// error (exit 1 via the main() catch block) for anything unregistered.
class ArgParser {
 public:
  ArgParser(std::string cmd, std::string positional_sig, std::string summary)
      : cmd_(std::move(cmd)),
        positional_sig_(std::move(positional_sig)),
        summary_(std::move(summary)) {}

  /// Register a flag. `value_name` nullptr declares a boolean flag;
  /// otherwise the flag consumes the next argument as its value.
  ArgParser& add(const char* name, const char* value_name, const char* doc) {
    flags_.push_back(Flag{name, value_name ? value_name : "", doc, "", false});
    return *this;
  }

  /// Parse `argv` (subcommand arguments only). Returns false when --help was
  /// handled (the caller should exit 0). Throws std::invalid_argument — a
  /// one-line error — on unknown flags or a flag missing its value.
  bool parse(int argc, char** argv) {
    for (int i = 0; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--help" || a == "-h") {
        print_help(stdout);
        return false;
      }
      if (a.size() > 1 && a[0] == '-') {
        Flag* f = find(a);
        if (!f) {
          throw std::invalid_argument("tqt_cli " + cmd_ + ": unknown flag '" + a +
                                      "' (try --help)");
        }
        f->seen = true;
        if (!f->value_name.empty()) {
          if (i + 1 >= argc) {
            throw std::invalid_argument("tqt_cli " + cmd_ + ": flag '" + a + "' expects " +
                                        f->value_name);
          }
          f->value = argv[++i];
        }
      } else {
        positionals_.push_back(a);
      }
    }
    return true;
  }

  /// Value of a registered flag, or `fallback` when absent on the line.
  const char* value(const char* name, const char* fallback = nullptr) const {
    const Flag* f = find(name);
    if (!f) throw std::logic_error(std::string("flag not registered: ") + name);
    return f->seen ? f->value.c_str() : fallback;
  }

  bool seen(const char* name) const {
    const Flag* f = find(name);
    return f && f->seen;
  }

  /// Strict base-10 integer: the whole token must parse — "3abc", "", "++2"
  /// and out-of-range values are one-line errors, not silent truncations
  /// (std::atoi would accept all of them).
  static long strict_int(const char* name, const char* v) {
    errno = 0;
    char* end = nullptr;
    const long n = std::strtol(v, &end, 10);
    if (end == v || *end != '\0' || errno == ERANGE) {
      throw std::invalid_argument(std::string(name) + " expects an integer, got '" + v + "'");
    }
    return n;
  }

  /// Strict float with the same whole-token rule as strict_int.
  static float strict_float(const char* name, const char* v) {
    errno = 0;
    char* end = nullptr;
    const float f = std::strtof(v, &end);
    if (end == v || *end != '\0' || errno == ERANGE) {
      throw std::invalid_argument(std::string(name) + " expects a number, got '" + v + "'");
    }
    return f;
  }

  /// Strictly positive float flag value (e.g. a gain multiplier).
  float positive_float(const char* name, float fallback) const {
    const char* v = value(name, nullptr);
    if (!v) return fallback;
    const float f = strict_float(name, v);
    if (!(f > 0.0f)) {
      throw std::invalid_argument(std::string(name) + " must be > 0, got '" + v + "'");
    }
    return f;
  }

  /// Strictly positive integer flag value.
  int positive(const char* name, int fallback) const {
    const char* v = value(name, nullptr);
    if (!v) return fallback;
    const long n = strict_int(name, v);
    if (n < 1 || n > INT_MAX) {
      throw std::invalid_argument(std::string(name) + " must be a positive integer, got '" + v +
                                  "'");
    }
    return static_cast<int>(n);
  }

  /// Integer flag value constrained to [lo, hi] (e.g. a TCP port).
  int bounded(const char* name, int fallback, int lo, int hi) const {
    const char* v = value(name, nullptr);
    if (!v) return fallback;
    const long n = strict_int(name, v);
    if (n < lo || n > hi) {
      throw std::invalid_argument(std::string(name) + " must be in " + std::to_string(lo) +
                                  ".." + std::to_string(hi) + ", got '" + v + "'");
    }
    return static_cast<int>(n);
  }

  const std::vector<std::string>& positionals() const { return positionals_; }

  /// The single expected positional, with a one-line error otherwise.
  const std::string& positional(const char* what) const {
    if (positionals_.size() != 1) {
      throw std::invalid_argument("tqt_cli " + cmd_ + ": expected exactly one " + what +
                                  " argument (try --help)");
    }
    return positionals_[0];
  }

  /// Value of a required flag, with a one-line error when missing.
  const char* required(const char* name) const {
    const char* v = value(name, nullptr);
    if (!v) {
      throw std::invalid_argument("tqt_cli " + cmd_ + ": missing required flag " + name +
                                  " (try --help)");
    }
    return v;
  }

  void print_help(std::FILE* out) const {
    std::fprintf(out, "usage: tqt_cli %s%s%s%s\n\n  %s\n", cmd_.c_str(),
                 positional_sig_.empty() ? "" : " ", positional_sig_.c_str(),
                 flags_.empty() ? "" : " [flags]", summary_.c_str());
    if (flags_.empty()) return;
    std::fprintf(out, "\nflags:\n");
    for (const Flag& f : flags_) {
      char head[64];
      std::snprintf(head, sizeof head, "%s%s%s", f.name.c_str(),
                    f.value_name.empty() ? "" : " ", f.value_name.c_str());
      std::fprintf(out, "  %-22s %s\n", head, f.doc.c_str());
    }
  }

 private:
  struct Flag {
    std::string name;
    std::string value_name;  // empty = boolean flag
    std::string doc;
    std::string value;
    bool seen;
  };

  Flag* find(const std::string& name) {
    for (Flag& f : flags_) {
      if (f.name == name) return &f;
    }
    return nullptr;
  }
  const Flag* find(const std::string& name) const {
    return const_cast<ArgParser*>(this)->find(name);
  }

  std::string cmd_;
  std::string positional_sig_;
  std::string summary_;
  std::vector<Flag> flags_;
  std::vector<std::string> positionals_;
};

/// Register the flags shared by every telemetry-capable subcommand.
void add_telemetry_flags(ArgParser& p) {
  p.add("--metrics-json", "PATH", "write a metrics snapshot JSON to PATH on exit");
  p.add("--trace", "PATH", "record spans; write chrome://tracing JSON to PATH on exit");
}

/// Telemetry session: enables tracing up front when requested and renders
/// the metrics snapshot / trace file once the command's work is done.
class Telemetry {
 public:
  explicit Telemetry(const ArgParser& p)
      : metrics_path_(p.value("--metrics-json", "")), trace_path_(p.value("--trace", "")) {
    if (!trace_path_.empty()) observe::Tracer::global().set_enabled(true);
  }

  /// True when per-step training series should be recorded.
  bool wants_metrics() const { return !metrics_path_.empty(); }

  void flush() const {
    if (!trace_path_.empty()) {
      observe::Tracer::global().set_enabled(false);
      observe::Tracer::global().write_chrome_json(trace_path_);
      std::fprintf(stderr, "wrote trace to %s\n", trace_path_.c_str());
    }
    if (!metrics_path_.empty()) {
      observe::MetricsRegistry::global().write_json_file(metrics_path_);
      std::fprintf(stderr, "wrote metrics snapshot to %s\n", metrics_path_.c_str());
    }
  }

 private:
  std::string metrics_path_;
  std::string trace_path_;
};

// ---- Subcommands -----------------------------------------------------------

ModelKind parse_model(const std::string& name) {
  for (ModelKind k : all_model_kinds()) {
    if (model_name(k) == name) return k;
  }
  throw std::invalid_argument("unknown model '" + name + "' (try: tqt_cli list)");
}

/// --threads N overrides TQT_NUM_THREADS for the engine's thread pool.
void apply_threads_flag(const ArgParser& p) {
  if (p.seen("--threads")) set_num_threads(p.positive("--threads", 0));
}

/// --no-fuse disables the graph compiler's fusion + scheduling passes for
/// this process, so programs compile (and load) as the plain per-op
/// instruction stream. Equivalent to TQT_FUSE=0 in the environment.
void apply_fuse_flag(const ArgParser& p) {
  if (p.seen("--no-fuse")) set_fusion_enabled(0);
}

/// --autotune on|off|force overrides TQT_AUTOTUNE for this process. Must run
/// before the program is compiled or loaded — tuning happens at finalize().
void apply_autotune_flag(const ArgParser& p) {
  const char* v = p.value("--autotune", nullptr);
  if (!v) return;
  const std::string m = v;
  if (m == "off") {
    autotune::set_mode(0);
  } else if (m == "on") {
    autotune::set_mode(1);
  } else if (m == "force") {
    autotune::set_mode(2);
  } else {
    throw std::invalid_argument("--autotune expects on|off|force, got '" + m + "'");
  }
}

void add_autotune_flag(ArgParser& p) {
  p.add("--autotune", "M", "kernel autotuner: on | off | force (default TQT_AUTOTUNE)");
}

/// Register the W/A precision-policy flags (the CLI face of PrecisionPolicy).
/// `legacy_bits` additionally keeps the pre-policy --bits spelling alive as a
/// deprecated alias for --wbits on the subcommands that historically had it.
void add_precision_flags(ArgParser& p, bool legacy_bits = false) {
  p.add("--wbits", "B", "weight bit width (training [2,16], inference [4,16]; default 8)");
  p.add("--abits", "B", "activation bit width (same ranges; default 8)");
  p.add("--per-channel", "", "per-output-channel power-of-2 weight scales");
  if (legacy_bits) p.add("--bits", "B", "deprecated alias for --wbits");
}

/// Parse + strictly validate the precision flags into a PrecisionPolicy:
/// non-integer or out-of-range values are one-line errors (exit 1), with the
/// range picked by `use` — [2,16] where the result feeds a fake-quant
/// training graph, [4,16] where it must compile to fixed point.
PrecisionPolicy parse_precision(const ArgParser& p, QuantUse use) {
  PrecisionPolicy pol;
  if (p.seen("--bits")) {
    pol.wbits = static_cast<int>(ArgParser::strict_int("--bits", p.value("--bits")));
  }
  if (p.seen("--wbits")) {
    pol.wbits = static_cast<int>(ArgParser::strict_int("--wbits", p.value("--wbits")));
  }
  if (p.seen("--abits")) {
    pol.abits = static_cast<int>(ArgParser::strict_int("--abits", p.value("--abits")));
  }
  pol.per_channel_weights = p.seen("--per-channel");
  pol.validate(use);
  return pol;
}

/// The `run --explain-kernels` table: one row per exec-stream instruction
/// with the algo the executor resolved; measured selections are starred.
void print_explain_table(const FixedPointProgram& prog) {
  const auto rows = autotune::explain_kernels(prog);
  std::printf("%-4s %-30s %-20s %-12s %s\n", "#", "instruction", "kind", "algo",
              "shape-class");
  int i = 0;
  for (const auto& r : rows) {
    std::printf("%-4d %-30s %-20s %-11s%s %s\n", i++, r.name.c_str(), r.kind.c_str(),
                r.algo.c_str(), r.tuned ? "*" : " ", r.shape.c_str());
  }
  std::printf("(* = measured autotuner selection)\n");
}

int cmd_list(int argc, char** argv) {
  ArgParser p("list", "", "List the model zoo.");
  if (!p.parse(argc, argv)) return 0;
  for (ModelKind k : all_model_kinds()) std::printf("%s\n", model_name(k).c_str());
  return 0;
}

int cmd_pretrain(int argc, char** argv) {
  ArgParser p("pretrain", "<model>", "FP32-pretrain a model (cached) and report accuracy.");
  p.add("--cache", "DIR", "weight cache directory (default tqt_artifacts)");
  if (!p.parse(argc, argv)) return 0;
  const ModelKind kind = parse_model(p.positional("model"));
  const std::string cache = p.value("--cache", "tqt_artifacts");
  SyntheticImageDataset data(default_dataset_config());
  const auto state = load_or_pretrain(kind, data, cache);
  const Accuracy acc = eval_fp32(kind, state, data);
  std::printf("%s FP32: top-1 %.1f%%  top-5 %.1f%%  (%zu tensors cached in %s)\n",
              model_name(kind).c_str(), 100.0 * acc.top1(), 100.0 * acc.top5(), state.size(),
              cache.c_str());
  return 0;
}

QuantTrialConfig trial_config(const ArgParser& p, const std::string& mode) {
  QuantTrialConfig cfg;
  if (mode == "static") {
    cfg.mode = TrialMode::kStatic;
  } else if (mode == "wt") {
    cfg.mode = TrialMode::kRetrainWt;
  } else if (mode == "wt_th") {
    cfg.mode = TrialMode::kRetrainWtTh;
  } else {
    throw std::invalid_argument("bad --mode " + mode);
  }
  // Training context: the fake-quant graph accepts [2,16]. Subcommands that
  // go on to compile fixed point re-validate at kInference before compiling.
  cfg.quant.precision = parse_precision(p, QuantUse::kTraining);
  cfg.schedule =
      default_retrain_schedule(static_cast<float>(std::atof(p.value("--epochs", "4"))));
  return cfg;
}

int cmd_quantize(int argc, char** argv) {
  ArgParser p("quantize", "<model>",
              "Quantize (and optionally retrain) from the cached FP32 weights.");
  p.add("--mode", "M", "static | wt | wt_th (default wt_th)");
  add_precision_flags(p, /*legacy_bits=*/true);
  p.add("--epochs", "N", "retraining epochs (default 4)");
  p.add("--cache", "DIR", "weight cache directory (default tqt_artifacts)");
  p.add("-o", "FILE", "also compile and save the fixed-point program to FILE");
  p.add("--no-fuse", "", "with -o: compile without conv+epilogue fusion (TQT_FUSE=0)");
  add_autotune_flag(p);
  add_telemetry_flags(p);
  if (!p.parse(argc, argv)) return 0;
  const Telemetry tel(p);
  // Fail fast on a bad precision policy before touching the weight cache;
  // trial_config re-parses the same flags when building the trial config.
  parse_precision(p, QuantUse::kTraining);
  const char* out_path = p.value("-o", nullptr);
  if (out_path) {
    apply_fuse_flag(p);
    apply_autotune_flag(p);
    // The tighter compile-time range applies when the trial must export.
    parse_precision(p, QuantUse::kInference);
  }
  const ModelKind kind = parse_model(p.positional("model"));
  SyntheticImageDataset data(default_dataset_config());
  const auto state = load_or_pretrain(kind, data, p.value("--cache", "tqt_artifacts"));
  const std::string mode = p.value("--mode", "wt_th");
  QuantTrialConfig cfg = trial_config(p, mode);
  if (tel.wants_metrics()) cfg.schedule.metrics = &observe::MetricsRegistry::global();
  TrialOutput out = run_quant_trial(kind, state, data, cfg);
  std::printf("%s W%dA%d%s (%s): top-1 %.1f%%  top-5 %.1f%%", model_name(kind).c_str(),
              cfg.quant.precision.wbits, cfg.quant.precision.abits,
              cfg.quant.precision.per_channel_weights ? " per-channel" : "", mode.c_str(),
              100.0 * out.accuracy.top1(), 100.0 * out.accuracy.top5());
  if (cfg.mode != TrialMode::kStatic) std::printf("  (best epoch %.1f)", out.best_epoch);
  std::printf("\n");
  if (out_path) {
    out.model.graph.set_training(false);
    const FixedPointProgram prog =
        compile_fixed_point(out.model.graph, out.model.input, out.qres.quantized_output);
    prog.save(out_path);
    std::printf("wrote %lld instructions / %lld int params to %s\n",
                static_cast<long long>(prog.instruction_count()),
                static_cast<long long>(prog.parameter_count()), out_path);
  }
  tel.flush();
  return 0;
}

int cmd_export(int argc, char** argv) {
  ArgParser p("export", "<model>",
              "TQT-retrain and compile to a fixed-point program file.");
  p.add("-o", "FILE", "output program file (required)");
  add_precision_flags(p, /*legacy_bits=*/true);
  p.add("--epochs", "N", "retraining epochs (default 4)");
  p.add("--cache", "DIR", "weight cache directory (default tqt_artifacts)");
  p.add("--no-fuse", "", "compile without conv+epilogue fusion (TQT_FUSE=0)");
  add_autotune_flag(p);
  add_telemetry_flags(p);
  if (!p.parse(argc, argv)) return 0;
  const Telemetry tel(p);
  apply_fuse_flag(p);
  apply_autotune_flag(p);
  const char* out_path = p.required("-o");
  // The artifact must compile to fixed point, so the inference range applies.
  parse_precision(p, QuantUse::kInference);
  const ModelKind kind = parse_model(p.positional("model"));
  SyntheticImageDataset data(default_dataset_config());
  const auto state = load_or_pretrain(kind, data, p.value("--cache", "tqt_artifacts"));
  QuantTrialConfig cfg = trial_config(p, "wt_th");
  if (tel.wants_metrics()) cfg.schedule.metrics = &observe::MetricsRegistry::global();
  TrialOutput out = run_quant_trial(kind, state, data, cfg);
  out.model.graph.set_training(false);
  const FixedPointProgram prog =
      compile_fixed_point(out.model.graph, out.model.input, out.qres.quantized_output);
  prog.save(out_path);
  std::printf("%s: top-1 %.1f%%; wrote %lld instructions / %lld int params to %s\n",
              model_name(kind).c_str(), 100.0 * out.accuracy.top1(),
              static_cast<long long>(prog.instruction_count()),
              static_cast<long long>(prog.parameter_count()), out_path);
  tel.flush();
  return 0;
}

int cmd_run(int argc, char** argv) {
  ArgParser p("run", "<model>",
              "Load a fixed-point program and evaluate it on the validation split.");
  p.add("-i", "FILE", "fixed-point program file (required)");
  p.add("--threads", "N", "engine thread-pool size (default TQT_NUM_THREADS)");
  p.add("--repeat", "N", "validation passes (default 1)");
  p.add("--no-fuse", "", "load without conv+epilogue fusion (TQT_FUSE=0)");
  p.add("--explain-kernels", "", "print the per-instruction kernel/algo table after load");
  add_precision_flags(p);
  add_autotune_flag(p);
  add_telemetry_flags(p);
  if (!p.parse(argc, argv)) return 0;
  const Telemetry tel(p);
  const char* in_path = p.required("-i");
  // The program file already fixes its precision; the flags here only assert
  // what the caller expects — same strict validation, same one-line errors.
  parse_precision(p, QuantUse::kInference);
  parse_model(p.positional("model"));  // validated for the error message only
  apply_threads_flag(p);
  apply_fuse_flag(p);
  apply_autotune_flag(p);
  const int repeat = p.positive("--repeat", 1);
  SyntheticImageDataset data(default_dataset_config());
  const FixedPointProgram prog = FixedPointProgram::load(in_path);
  if (p.seen("--explain-kernels")) print_explain_table(prog);
  ExecContext ctx;  // arena reused across batches and passes
  Tensor logits;
  Accuracy acc;
  int64_t inferences = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int rep = 0; rep < repeat; ++rep) {
    Accuracy pass;
    for (int64_t first = 0; first < data.val_size(); first += 64) {
      const Batch b = data.val_batch(first, std::min<int64_t>(64, data.val_size() - first));
      prog.run_into(b.images, ctx, logits);
      accumulate_topk(logits, b.labels, pass);
      inferences += b.images.dim(0);
    }
    acc = pass;  // every pass is bit-identical; keep the last
  }
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::printf("%s (integer-only program): top-1 %.1f%%  top-5 %.1f%%\n", in_path,
              100.0 * acc.top1(), 100.0 * acc.top5());
  std::printf("%lld inferences in %.3f s: %.3f ms/inference (%.1f img/s, %d pass%s)\n",
              static_cast<long long>(inferences), secs,
              inferences > 0 ? 1e3 * secs / static_cast<double>(inferences) : 0.0,
              secs > 0 ? static_cast<double>(inferences) / secs : 0.0, repeat,
              repeat == 1 ? "" : "es");
  tel.flush();
  return 0;
}

int cmd_tune(int argc, char** argv) {
  ArgParser p("tune", "<model>",
              "Force-autotune a fixed-point program file and write its .tqt.tune "
              "sidecar (re-measures every shape key; ignores existing sidecars).");
  p.add("-i", "FILE", "fixed-point program file (required)");
  p.add("--threads", "N", "engine thread-pool size (default TQT_NUM_THREADS)");
  add_precision_flags(p);
  if (!p.parse(argc, argv)) return 0;
  const char* in_path = p.required("-i");
  parse_precision(p, QuantUse::kInference);  // assert-only, as in `run`
  parse_model(p.positional("model"));  // validated for the error message only
  apply_threads_flag(p);
  autotune::set_mode(2);  // force: measure everything fresh
  const FixedPointProgram prog = FixedPointProgram::load(in_path);
  const auto& tuning = prog.tuning();
  if (!tuning) {
    std::printf("%s: no tunable fused instructions; no sidecar written\n", in_path);
    return 0;
  }
  const std::string sidecar = std::string(in_path) + ".tqt.tune";
  if (!autotune::save_sidecar(sidecar, *tuning)) {
    throw std::runtime_error("cannot write sidecar " + sidecar);
  }
  std::printf("%s: tuned %d fused instruction%s (%d blocked-layout), %zu shape key%s\n",
              in_path, tuning->tuned_instrs, tuning->tuned_instrs == 1 ? "" : "s",
              tuning->blocked_instrs, tuning->entries.size(),
              tuning->entries.size() == 1 ? "" : "s");
  print_explain_table(prog);
  std::printf("wrote %s\n", sidecar.c_str());
  return 0;
}

// The SIGINT/SIGTERM handler for `serve --port`: request_stop() is
// async-signal-safe (an atomic store plus a pipe write), so a signal during
// serving begins the graceful drain instead of killing the process — the
// normal exit path then writes stats and the --metrics-json / --trace files.
std::atomic<net::Gateway*> g_gateway{nullptr};
std::atomic<qos::ShardedGateway*> g_sharded{nullptr};

extern "C" void on_stop_signal(int) {
  if (net::Gateway* g = g_gateway.load(std::memory_order_acquire)) g->request_stop();
  if (qos::ShardedGateway* s = g_sharded.load(std::memory_order_acquire)) s->request_stop();
}

/// Network mode of `serve`: expose the server through tqt-gateway until a
/// stop signal arrives, then drain and report. `before_server_drain` runs
/// after the gateway has drained (no more frames in flight) and before the
/// server shuts down — the slot where the calibration service is torn down,
/// satisfying its "destroyed before the InferenceServer" contract.
int serve_over_network(const ArgParser& p, serve::InferenceServer& server,
                       const std::string& model, const Telemetry& tel,
                       net::AdminHandler* admin = nullptr,
                       const std::function<void()>& before_server_drain = {},
                       qos::TenantTable* tenants = nullptr) {
  net::GatewayConfig gcfg;
  gcfg.port = static_cast<uint16_t>(p.bounded("--port", 0, 0, 65535));
  gcfg.max_connections = p.positive("--max-connections", 64);
  gcfg.max_inflight = p.positive("--max-inflight", 256);
  gcfg.admin = admin;
  gcfg.tenants = tenants;
  net::Gateway gateway(server, gcfg);
  g_gateway.store(&gateway, std::memory_order_release);
  std::signal(SIGINT, on_stop_signal);
  std::signal(SIGTERM, on_stop_signal);
  std::printf("tqt-gateway: serving '%s' on 127.0.0.1:%u (SIGINT/SIGTERM drains)%s\n",
              model.c_str(), gateway.port(), admin ? " [autocal]" : "");
  std::fflush(stdout);
  while (!gateway.stopped()) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gateway.stop_and_drain();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_gateway.store(nullptr, std::memory_order_release);
  if (before_server_drain) before_server_drain();
  server.shutdown_and_drain();
  std::fprintf(stderr, "tqt-gateway: drained\n");
  std::printf("%s\n", server.stats_json().c_str());
  tel.flush();
  return 0;
}

/// Sharded network mode of `serve`: N reactor shards over one port against a
/// shared model registry (src/qos/shard.h). Serves until a stop signal, then
/// runs the drain barrier and reports shard-0 stats plus shared metrics.
int serve_sharded(const ArgParser& p, const std::string& model, const char* in_path,
                  const Shape& sample_shape, const serve::BatchConfig& batch,
                  const Telemetry& tel, qos::TenantTable* tenants, int shards) {
  qos::ShardedGatewayConfig cfg;
  cfg.num_shards = shards;
  cfg.port = static_cast<uint16_t>(p.bounded("--port", 0, 0, 65535));
  cfg.max_connections = p.positive("--max-connections", 64);
  cfg.max_inflight = p.positive("--max-inflight", 256);
  cfg.batch = batch;
  cfg.tenants = tenants;
  cfg.metrics = &observe::MetricsRegistry::global();
  qos::ShardedGateway gateway(cfg);
  gateway.deploy_file(model, in_path, sample_shape);
  g_sharded.store(&gateway, std::memory_order_release);
  std::signal(SIGINT, on_stop_signal);
  std::signal(SIGTERM, on_stop_signal);
  std::printf(
      "tqt-gateway: serving '%s' on 127.0.0.1:%u, %d shards (%s)%s (SIGINT/SIGTERM drains)\n",
      model.c_str(), gateway.port(), gateway.num_shards(),
      qos::to_string(gateway.mode()).c_str(),
      tenants ? (" [" + std::to_string(tenants->size()) + " tenants]").c_str() : "");
  std::fflush(stdout);
  while (!gateway.stopped()) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gateway.stop_and_drain();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_sharded.store(nullptr, std::memory_order_release);
  std::fprintf(stderr, "tqt-gateway: drained (%d shards)\n", gateway.num_shards());
  std::printf("%s\n", gateway.server().stats_json().c_str());
  tel.flush();
  return 0;
}

int cmd_serve(int argc, char** argv) {
  ArgParser p("serve", "<model>",
              "Serve a fixed-point program through the micro-batching server and "
              "drive it with in-process clients (or over TCP with --port).");
  p.add("-i", "FILE", "fixed-point program file (required)");
  p.add("--threads", "N", "engine thread-pool size (default TQT_NUM_THREADS)");
  p.add("--clients", "C", "in-process client threads (default 4)");
  p.add("--requests", "R", "requests per pass (default 256)");
  p.add("--max-batch", "B", "micro-batch size cap (default 8)");
  p.add("--delay-us", "D", "micro-batch collection window in us (default 200)");
  p.add("--queue", "Q", "queue depth before shedding (default 256)");
  p.add("--repeat", "N", "passes over --requests (default 1)");
  p.add("--port", "P", "serve over TCP on this port (0 = ephemeral) instead of in-process");
  p.add("--max-connections", "C", "network mode: concurrent connection cap (default 64)");
  p.add("--max-inflight", "F", "network mode: in-flight request cap (default 256)");
  p.add("--shards", "N", "network mode: reactor shards over one port (default 1, max 64)");
  p.add("--tenants", "FILE", "network mode: tenant table (token/class/rate/quota lines)");
  p.add("--no-fuse", "", "load without conv+epilogue fusion (TQT_FUSE=0)");
  p.add("--calib", "", "attach tqt-autocal: the service builds + deploys its own program "
                       "(-i is ignored) and answers admin frames");
  p.add("--cache", "DIR", "--calib: FP32 weight cache directory (default tqt_artifacts)");
  p.add("--calib-mirror-every", "N", "--calib: mirror every Nth live sample (default 16)");
  p.add("--calib-min-samples", "N", "--calib: images required before a cycle (default 128)");
  p.add("--calib-min-window", "N", "--calib: mirrored samples per drift check (default 48)");
  p.add("--calib-drift-clip", "F", "--calib: window clipped-fraction trigger (default 0.02)");
  p.add("--calib-drift-bits", "F", "--calib: p99.9 log2-shift trigger (default 0.75)");
  p.add("--calib-interval-ms", "N", "--calib: drift check period in ms (default 50)");
  p.add("--calib-retrain-steps", "N", "--calib: TQT retrain steps per cycle (default 0)");
  p.add("--calib-no-auto", "", "--calib: report drift but do not auto-recalibrate");
  add_precision_flags(p);
  add_autotune_flag(p);
  add_telemetry_flags(p);
  if (!p.parse(argc, argv)) return 0;
  const Telemetry tel(p);
  // With --calib the policy drives the service's own quantize/compile cycles;
  // without it the flags are assert-only (the -i artifact fixes precision).
  const PrecisionPolicy precision = parse_precision(p, QuantUse::kInference);
  const bool with_calib = p.seen("--calib");
  const char* in_path = with_calib ? nullptr : p.required("-i");
  const ModelKind kind = parse_model(p.positional("model"));
  const std::string model = model_name(kind);
  apply_threads_flag(p);
  apply_fuse_flag(p);
  apply_autotune_flag(p);

  // tqt-qos flags are network-mode only, and sharding excludes --calib (the
  // calibration service is bound to exactly one InferenceServer).
  const int shards = p.bounded("--shards", 1, 1, 64);
  if (p.seen("--shards") && !p.seen("--port")) {
    throw std::invalid_argument("tqt_cli serve: --shards requires --port (try --help)");
  }
  if (p.seen("--shards") && with_calib) {
    throw std::invalid_argument("tqt_cli serve: --shards is incompatible with --calib");
  }
  if (p.seen("--tenants") && !p.seen("--port")) {
    throw std::invalid_argument("tqt_cli serve: --tenants requires --port (try --help)");
  }
  qos::TenantTable tenant_table(&observe::MetricsRegistry::global());
  qos::TenantTable* tenants = nullptr;
  if (p.seen("--tenants")) {
    tenant_table.load_file(p.value("--tenants"));  // one-line path:line errors
    tenants = &tenant_table;
  }
  const int clients = p.positive("--clients", 4);
  const int repeat = p.positive("--repeat", 1);
  const int64_t total_requests = static_cast<int64_t>(p.positive("--requests", 256)) * repeat;

  serve::ServerConfig scfg;
  scfg.batch.max_batch = p.positive("--max-batch", 8);
  scfg.batch.max_delay_us = p.positive("--delay-us", 200);
  scfg.batch.max_queue = p.positive("--queue", 256);
  // Record serve lane metrics into the process registry so --metrics-json
  // snapshots them alongside the engine/pool counters.
  scfg.metrics = &observe::MetricsRegistry::global();

  SyntheticImageDataset data(default_dataset_config());
  const DatasetConfig& dcfg = data.config();

  if (shards > 1) {
    return serve_sharded(p, model, in_path,
                         {dcfg.image_size, dcfg.image_size, dcfg.channels}, scfg.batch, tel,
                         tenants, shards);
  }

  // The mirror must be wired into ServerConfig before the server (and hence
  // before the service, which needs the server) exists — an atomic slot
  // breaks the cycle and makes detachment a single store at teardown.
  auto calib_slot = std::make_shared<std::atomic<calib::CalibrationService*>>(nullptr);
  if (with_calib) {
    scfg.mirror = [calib_slot](const std::string& n, const Tensor& s) {
      if (auto* svc = calib_slot->load(std::memory_order_acquire)) svc->mirror_sample(n, s);
    };
  }

  serve::InferenceServer server(scfg);
  std::unique_ptr<calib::CalibrationService> service;
  if (with_calib) {
    calib::AutocalConfig acfg;
    acfg.model = model;
    acfg.kind = kind;
    acfg.quant.precision = precision;
    acfg.mirror_every = p.positive("--calib-mirror-every", 16);
    acfg.min_samples = p.positive("--calib-min-samples", 128);
    acfg.min_window = p.positive("--calib-min-window", 48);
    acfg.drift_clip_threshold = p.positive_float("--calib-drift-clip", 0.02f);
    acfg.drift_range_bits = p.positive_float("--calib-drift-bits", 0.75f);
    acfg.drift_check_interval_ms = p.positive("--calib-interval-ms", 50);
    acfg.tqt_retrain_steps = p.bounded("--calib-retrain-steps", 0, 0, INT_MAX);
    acfg.auto_recalibrate = !p.seen("--calib-no-auto");
    const auto state = load_or_pretrain(kind, data, p.value("--cache", "tqt_artifacts"));
    service = std::make_unique<calib::CalibrationService>(server, data, state, acfg);
    calib_slot->store(service.get(), std::memory_order_release);
    std::fprintf(stderr, "tqt-autocal: deployed '%s' version %llu\n", model.c_str(),
                 static_cast<unsigned long long>(service->live_version()));
  } else {
    server.deploy_file(model, in_path, {dcfg.image_size, dcfg.image_size, dcfg.channels});
  }

  if (p.seen("--port")) {
    return serve_over_network(
        p, server, model, tel, service.get(),
        [&] {
          calib_slot->store(nullptr, std::memory_order_release);
          service.reset();
        },
        tenants);
  }

  // In-process closed-loop clients: each owns the validation indices
  // congruent to its id, submits one sample at a time, and retries on shed
  // (the explicit backpressure signal).
  std::mutex acc_mu;
  Accuracy acc;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Accuracy local;
      for (int64_t i = c; i < total_requests; i += clients) {
        const Batch b = data.val_batch(i % data.val_size(), 1);
        serve::SubmitResult res;
        for (;;) {
          res = server.submit(model, b.images);
          if (res.status != serve::SubmitStatus::kShed) break;
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        if (res.status != serve::SubmitStatus::kOk) return;
        accumulate_topk(res.response.get(), b.labels, local);
      }
      std::lock_guard<std::mutex> lk(acc_mu);
      acc.correct1 += local.correct1;
      acc.correct5 += local.correct5;
      acc.count += local.count;
    });
  }
  for (auto& t : threads) t.join();
  calib_slot->store(nullptr, std::memory_order_release);
  service.reset();  // worker must stop before the server it deploys into
  server.shutdown_and_drain();
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::fprintf(stderr, "%s served %lld requests (%d clients): top-1 %.1f%%  top-5 %.1f%%\n",
               model.c_str(), static_cast<long long>(acc.count), clients, 100.0 * acc.top1(),
               100.0 * acc.top5());
  std::fprintf(stderr, "%lld inferences in %.3f s: %.3f ms/inference (%.1f img/s)\n",
               static_cast<long long>(acc.count), secs,
               acc.count > 0 ? 1e3 * secs / static_cast<double>(acc.count) : 0.0,
               secs > 0 ? static_cast<double>(acc.count) / secs : 0.0);
  std::printf("%s\n", server.stats_json().c_str());
  tel.flush();
  return 0;
}

/// Pixel-wise gain (1.0 = identity): the drift-injection knob for the
/// autocal demo — a gain-shifted stream moves every activation range.
Tensor with_gain(const Tensor& t, float gain) {
  if (gain == 1.0f) return t;
  Tensor out = t;
  float* d = out.data();
  for (int64_t i = 0; i < out.numel(); ++i) d[i] *= gain;
  return out;
}

int cmd_client(int argc, char** argv) {
  ArgParser p("client", "<model>",
              "Drive a running tqt-gateway over the wire protocol with validation "
              "samples and report accuracy plus per-status response counts.");
  p.add("--host", "H", "server host, IPv4 or 'localhost' (default localhost)");
  p.add("--port", "P", "server TCP port (required)");
  p.add("--requests", "R", "samples to send (default 64)");
  p.add("--deadline-us", "D", "per-request deadline in microseconds (default none)");
  p.add("--gain", "G", "multiply every pixel by G — inject distribution drift (default 1)");
  p.add("--tenant", "TOKEN", "tenant auth token attached to every request (wire v2)");
  p.add("--hedge-ms", "N", "duplicate a slow request on a second connection after N ms; "
                           "first response wins, the loser is cancelled");
  p.add("--shed-retries", "R", "retry SHED rejections up to R times, doubling backoff "
                               "(default 0)");
  if (!p.parse(argc, argv)) return 0;
  // The model name is sent as-is: the server owns the deployment namespace
  // and answers BAD_MODEL for anything it does not host.
  const std::string model = p.positional("model");
  const uint16_t port = static_cast<uint16_t>(p.bounded("--port", 0, 1, 65535));
  if (!p.seen("--port")) {
    throw std::invalid_argument("tqt_cli client: missing required flag --port (try --help)");
  }
  const std::string host = p.value("--host", "localhost");
  const int requests = p.positive("--requests", 64);
  const uint32_t deadline_us =
      static_cast<uint32_t>(p.bounded("--deadline-us", 0, 1, INT_MAX));
  const float gain = p.positive_float("--gain", 1.0f);
  const std::string token = p.value("--tenant", "");
  if (p.seen("--tenant") && token.empty()) {
    throw std::invalid_argument("--tenant expects a non-empty token");
  }
  if (token.size() > net::kMaxTokenBytes) {
    throw std::invalid_argument("--tenant token must be at most " +
                                std::to_string(net::kMaxTokenBytes) + " bytes");
  }
  const int hedge_ms = p.positive("--hedge-ms", 0);
  const int shed_retries = p.bounded("--shed-retries", 0, 0, 1000);

  SyntheticImageDataset data(default_dataset_config());
  net::GatewayClient client(host, port);
  client.set_token(token);
  net::HedgeConfig hedge;
  hedge.hedge_after_us = static_cast<uint32_t>(hedge_ms) * 1000u;
  hedge.shed_retries = shed_retries;
  client.set_hedge(hedge);
  Accuracy acc;
  // One slot per WireStatus value (kOk..kCorruptModel).
  uint64_t by_status[static_cast<size_t>(net::kMaxWireStatus) + 1] = {};
  for (int i = 0; i < requests; ++i) {
    const Batch b = data.val_batch(i % data.val_size(), 1);
    const net::InferResponse resp = client.infer(model, with_gain(b.images, gain), deadline_us);
    ++by_status[static_cast<size_t>(resp.status)];
    if (resp.status == net::WireStatus::kOk) {
      accumulate_topk(resp.output, b.labels, acc);
    }
  }
  std::printf("%s via %s:%u: %d requests, top-1 %.1f%%  top-5 %.1f%%\n", model.c_str(),
              host.c_str(), port, requests, 100.0 * acc.top1(), 100.0 * acc.top5());
  for (size_t s = 0; s <= static_cast<size_t>(net::kMaxWireStatus); ++s) {
    if (by_status[s] > 0) {
      std::printf("  %-18s %llu\n", net::to_string(static_cast<net::WireStatus>(s)),
                  static_cast<unsigned long long>(by_status[s]));
    }
  }
  if (hedge_ms > 0) {
    std::fprintf(stderr, "hedges: sent %llu, won %llu\n",
                 static_cast<unsigned long long>(client.hedges_sent()),
                 static_cast<unsigned long long>(client.hedge_wins()));
  }
  // Non-OK responses are a useful probe result, not a transport failure —
  // exit 0 unless nothing succeeded.
  return by_status[0] > 0 ? 0 : 1;
}

int cmd_calib(int argc, char** argv) {
  ArgParser p("calib", "<model>",
              "Admin client for a --calib gateway: stream calibration batches from "
              "the validation split, then run the requested control operations in "
              "order (dry-run, trigger, rollback, swap-file, status).");
  p.add("--host", "H", "server host, IPv4 or 'localhost' (default localhost)");
  p.add("--port", "P", "server TCP port (required)");
  p.add("--batches", "N", "calibration batches to stream first (default 0)");
  p.add("--batch-size", "M", "images per calibration batch (default 32)");
  p.add("--gain", "G", "multiply batch pixels by G — stream drifted statistics (default 1)");
  p.add("--dry-run", "", "derive + print would-be thresholds without deploying");
  p.add("--trigger", "", "force a calibrate/validate/promote cycle");
  p.add("--rollback", "", "reinstall the previous program version");
  p.add("--swap-file", "PATH", "validate + promote a server-side program file");
  p.add("--reload-tenants", "", "hot-reload the gateway's tenant table from its file");
  p.add("--status", "", "print the service status JSON (the default action)");
  if (!p.parse(argc, argv)) return 0;
  const std::string model = p.positional("model");
  if (!p.seen("--port")) {
    throw std::invalid_argument("tqt_cli calib: missing required flag --port (try --help)");
  }
  const uint16_t port = static_cast<uint16_t>(p.bounded("--port", 0, 1, 65535));
  const std::string host = p.value("--host", "localhost");
  const int batches = p.bounded("--batches", 0, 0, INT_MAX);
  const int batch_size = p.positive("--batch-size", 32);
  const float gain = p.positive_float("--gain", 1.0f);

  net::GatewayClient client(host, port);
  bool all_ok = true;
  const auto run_op = [&](net::AdminOp op, const std::string& arg = "") {
    net::AdminRequest req;
    req.op = op;
    req.model = model;
    req.arg = arg;
    const net::AdminResponse resp = client.admin(req);
    if (resp.status != net::WireStatus::kOk) all_ok = false;
    std::printf("[%s] %s\n", net::to_string(op), net::to_string(resp.status));
    if (!resp.message.empty()) std::printf("%s\n", resp.message.c_str());
  };

  if (batches > 0) {
    SyntheticImageDataset data(default_dataset_config());
    net::AdminResponse last;
    int64_t sent = 0;
    for (int i = 0; i < batches; ++i) {
      const int64_t first = (static_cast<int64_t>(i) * batch_size) % data.val_size();
      const int64_t n = std::min<int64_t>(batch_size, data.val_size() - first);
      net::AdminRequest req;
      req.op = net::AdminOp::kCalibBatch;
      req.model = model;
      req.has_batch = true;
      req.batch = with_gain(data.val_batch(first, n).images, gain);
      last = client.admin(req);
      if (last.status != net::WireStatus::kOk) {
        all_ok = false;
        break;
      }
      sent += n;
    }
    std::printf("[calib_batch] %s after %lld images", net::to_string(last.status),
                static_cast<long long>(sent));
    if (!last.message.empty()) std::printf(": %s", last.message.c_str());
    std::printf("\n");
  }

  if (p.seen("--dry-run")) run_op(net::AdminOp::kDryRun);
  if (p.seen("--trigger")) run_op(net::AdminOp::kTrigger);
  if (p.seen("--rollback")) run_op(net::AdminOp::kRollback);
  if (p.seen("--swap-file")) run_op(net::AdminOp::kSwapFile, p.value("--swap-file"));
  if (p.seen("--reload-tenants")) run_op(net::AdminOp::kReloadTenants);
  const bool any_action = batches > 0 || p.seen("--dry-run") || p.seen("--trigger") ||
                          p.seen("--rollback") || p.seen("--swap-file") ||
                          p.seen("--reload-tenants");
  if (p.seen("--status") || !any_action) run_op(net::AdminOp::kStatus);
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Fail fast on an unrecognized TQT_KERNELS value: resolving the kernel set
  // here (instead of at first dispatch) turns a mid-run abort into a one-line
  // startup error for every subcommand.
  tqt::fpk::active_kernels();
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "list") return cmd_list(argc - 2, argv + 2);
    if (cmd == "pretrain") return cmd_pretrain(argc - 2, argv + 2);
    if (cmd == "quantize") return cmd_quantize(argc - 2, argv + 2);
    if (cmd == "export") return cmd_export(argc - 2, argv + 2);
    if (cmd == "run") return cmd_run(argc - 2, argv + 2);
    if (cmd == "tune") return cmd_tune(argc - 2, argv + 2);
    if (cmd == "serve") return cmd_serve(argc - 2, argv + 2);
    if (cmd == "client") return cmd_client(argc - 2, argv + 2);
    if (cmd == "calib") return cmd_calib(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
