// tqt_cli — command-line front end for the TQT pipeline.
//
//   tqt_cli list
//       List the model zoo.
//   tqt_cli pretrain <model> [--cache DIR]
//       FP32-pretrain a model (cached) and report accuracy.
//   tqt_cli quantize <model> [--mode static|wt|wt_th] [--bits 8|4] [--epochs N]
//       Quantize (and optionally retrain) from the cached FP32 weights.
//   tqt_cli export <model> -o FILE [--bits 8|4] [--epochs N]
//       TQT-retrain and compile to a fixed-point program file.
//   tqt_cli run <model> -i FILE [--threads N] [--repeat N]
//       Load a fixed-point program and evaluate it on the validation split.
//       --repeat runs the split N times and reports wall time per inference.
//   tqt_cli serve <model> -i FILE [--threads N] [--clients C] [--requests R]
//                 [--max-batch B] [--delay-us D] [--queue Q] [--repeat N]
//       Serve a fixed-point program through the tqt-serve micro-batching
//       server, drive it with C in-process client threads over the
//       validation split (N passes with --repeat), and print the per-model
//       stats block as JSON plus wall time per inference.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/metrics.h"
#include "core/pipeline.h"
#include "fixedpoint/engine.h"
#include "runtime/parallel.h"
#include "serve/server.h"

namespace {

using namespace tqt;

int usage() {
  std::fprintf(stderr,
               "usage: tqt_cli <list|pretrain|quantize|export|run|serve> [args]\n"
               "  list\n"
               "  pretrain <model> [--cache DIR]\n"
               "  quantize <model> [--mode static|wt|wt_th] [--bits 8|4] [--epochs N]\n"
               "  export   <model> -o FILE [--bits 8|4] [--epochs N]\n"
               "  run      <model> -i FILE [--threads N] [--repeat N]\n"
               "  serve    <model> -i FILE [--threads N] [--clients C] [--requests R]\n"
               "           [--max-batch B] [--delay-us D] [--queue Q] [--repeat N]\n");
  return 2;
}

ModelKind parse_model(const std::string& name) {
  for (ModelKind k : all_model_kinds()) {
    if (model_name(k) == name) return k;
  }
  throw std::invalid_argument("unknown model '" + name + "' (try: tqt_cli list)");
}

const char* flag_value(int argc, char** argv, const char* flag, const char* fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

int positive_flag(int argc, char** argv, const char* flag, int fallback) {
  const char* v = flag_value(argc, argv, flag, nullptr);
  if (!v) return fallback;
  const int n = std::atoi(v);
  if (n < 1) throw std::invalid_argument(std::string(flag) + " must be a positive integer, got '" +
                                         v + "'");
  return n;
}

/// --threads N overrides TQT_NUM_THREADS for the engine's thread pool.
void apply_threads_flag(int argc, char** argv) {
  const char* v = flag_value(argc, argv, "--threads", nullptr);
  if (v) set_num_threads(positive_flag(argc, argv, "--threads", 0));
}

int cmd_list() {
  for (ModelKind k : all_model_kinds()) std::printf("%s\n", model_name(k).c_str());
  return 0;
}

int cmd_pretrain(int argc, char** argv) {
  if (argc < 1) return usage();
  const ModelKind kind = parse_model(argv[0]);
  const std::string cache = flag_value(argc, argv, "--cache", "tqt_artifacts");
  SyntheticImageDataset data(default_dataset_config());
  const auto state = load_or_pretrain(kind, data, cache);
  const Accuracy acc = eval_fp32(kind, state, data);
  std::printf("%s FP32: top-1 %.1f%%  top-5 %.1f%%  (%zu tensors cached in %s)\n",
              model_name(kind).c_str(), 100.0 * acc.top1(), 100.0 * acc.top5(), state.size(),
              cache.c_str());
  return 0;
}

QuantTrialConfig trial_config(int argc, char** argv) {
  QuantTrialConfig cfg;
  const std::string mode = flag_value(argc, argv, "--mode", "wt_th");
  if (mode == "static") {
    cfg.mode = TrialMode::kStatic;
  } else if (mode == "wt") {
    cfg.mode = TrialMode::kRetrainWt;
  } else if (mode == "wt_th") {
    cfg.mode = TrialMode::kRetrainWtTh;
  } else {
    throw std::invalid_argument("bad --mode " + mode);
  }
  cfg.quant.weight_bits = std::atoi(flag_value(argc, argv, "--bits", "8"));
  cfg.schedule = default_retrain_schedule(
      static_cast<float>(std::atof(flag_value(argc, argv, "--epochs", "4"))));
  return cfg;
}

int cmd_quantize(int argc, char** argv) {
  if (argc < 1) return usage();
  const ModelKind kind = parse_model(argv[0]);
  SyntheticImageDataset data(default_dataset_config());
  const auto state = load_or_pretrain(kind, data, flag_value(argc, argv, "--cache", "tqt_artifacts"));
  const QuantTrialConfig cfg = trial_config(argc, argv);
  const TrialOutput out = run_quant_trial(kind, state, data, cfg);
  std::printf("%s INT%d (%s): top-1 %.1f%%  top-5 %.1f%%", model_name(kind).c_str(),
              cfg.quant.weight_bits, flag_value(argc, argv, "--mode", "wt_th"),
              100.0 * out.accuracy.top1(), 100.0 * out.accuracy.top5());
  if (cfg.mode != TrialMode::kStatic) std::printf("  (best epoch %.1f)", out.best_epoch);
  std::printf("\n");
  return 0;
}

int cmd_export(int argc, char** argv) {
  if (argc < 1) return usage();
  const char* out_path = flag_value(argc, argv, "-o", nullptr);
  if (!out_path) return usage();
  const ModelKind kind = parse_model(argv[0]);
  SyntheticImageDataset data(default_dataset_config());
  const auto state = load_or_pretrain(kind, data, flag_value(argc, argv, "--cache", "tqt_artifacts"));
  QuantTrialConfig cfg = trial_config(argc, argv);
  cfg.mode = TrialMode::kRetrainWtTh;
  TrialOutput out = run_quant_trial(kind, state, data, cfg);
  out.model.graph.set_training(false);
  const FixedPointProgram prog =
      compile_fixed_point(out.model.graph, out.model.input, out.qres.quantized_output);
  prog.save(out_path);
  std::printf("%s: top-1 %.1f%%; wrote %lld instructions / %lld int params to %s\n",
              model_name(kind).c_str(), 100.0 * out.accuracy.top1(),
              static_cast<long long>(prog.instruction_count()),
              static_cast<long long>(prog.parameter_count()), out_path);
  return 0;
}

int cmd_run(int argc, char** argv) {
  if (argc < 1) return usage();
  const char* in_path = flag_value(argc, argv, "-i", nullptr);
  if (!in_path) return usage();
  parse_model(argv[0]);  // validated for the error message only
  apply_threads_flag(argc, argv);
  const int repeat = positive_flag(argc, argv, "--repeat", 1);
  SyntheticImageDataset data(default_dataset_config());
  const FixedPointProgram prog = FixedPointProgram::load(in_path);
  ExecContext ctx;  // arena reused across batches and passes
  Accuracy acc;
  int64_t inferences = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int rep = 0; rep < repeat; ++rep) {
    Accuracy pass;
    for (int64_t first = 0; first < data.val_size(); first += 64) {
      const Batch b = data.val_batch(first, std::min<int64_t>(64, data.val_size() - first));
      accumulate_topk(prog.run(b.images, ctx), b.labels, pass);
      inferences += b.images.dim(0);
    }
    acc = pass;  // every pass is bit-identical; keep the last
  }
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::printf("%s (integer-only program): top-1 %.1f%%  top-5 %.1f%%\n", in_path,
              100.0 * acc.top1(), 100.0 * acc.top5());
  std::printf("%lld inferences in %.3f s: %.3f ms/inference (%.1f img/s, %d pass%s)\n",
              static_cast<long long>(inferences), secs,
              inferences > 0 ? 1e3 * secs / static_cast<double>(inferences) : 0.0,
              secs > 0 ? static_cast<double>(inferences) / secs : 0.0, repeat,
              repeat == 1 ? "" : "es");
  return 0;
}

int cmd_serve(int argc, char** argv) {
  if (argc < 1) return usage();
  const char* in_path = flag_value(argc, argv, "-i", nullptr);
  if (!in_path) return usage();
  const std::string model = model_name(parse_model(argv[0]));
  apply_threads_flag(argc, argv);
  const int clients = positive_flag(argc, argv, "--clients", 4);
  const int repeat = positive_flag(argc, argv, "--repeat", 1);
  const int64_t total_requests =
      static_cast<int64_t>(positive_flag(argc, argv, "--requests", 256)) * repeat;

  serve::ServerConfig scfg;
  scfg.batch.max_batch = positive_flag(argc, argv, "--max-batch", 8);
  scfg.batch.max_delay_us = positive_flag(argc, argv, "--delay-us", 200);
  scfg.batch.max_queue = positive_flag(argc, argv, "--queue", 256);

  SyntheticImageDataset data(default_dataset_config());
  const DatasetConfig& dcfg = data.config();

  serve::InferenceServer server(scfg);
  server.deploy_file(model, in_path, {dcfg.image_size, dcfg.image_size, dcfg.channels});

  // In-process closed-loop clients: each owns the validation indices
  // congruent to its id, submits one sample at a time, and retries on shed
  // (the explicit backpressure signal).
  std::mutex acc_mu;
  Accuracy acc;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Accuracy local;
      for (int64_t i = c; i < total_requests; i += clients) {
        const Batch b = data.val_batch(i % data.val_size(), 1);
        serve::SubmitResult res;
        for (;;) {
          res = server.submit(model, b.images);
          if (res.status != serve::SubmitStatus::kShed) break;
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        if (res.status != serve::SubmitStatus::kOk) return;
        accumulate_topk(res.response.get(), b.labels, local);
      }
      std::lock_guard<std::mutex> lk(acc_mu);
      acc.correct1 += local.correct1;
      acc.correct5 += local.correct5;
      acc.count += local.count;
    });
  }
  for (auto& t : threads) t.join();
  server.shutdown_and_drain();
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::fprintf(stderr, "%s served %lld requests (%d clients): top-1 %.1f%%  top-5 %.1f%%\n",
               model.c_str(), static_cast<long long>(acc.count), clients, 100.0 * acc.top1(),
               100.0 * acc.top5());
  std::fprintf(stderr, "%lld inferences in %.3f s: %.3f ms/inference (%.1f img/s)\n",
               static_cast<long long>(acc.count), secs,
               acc.count > 0 ? 1e3 * secs / static_cast<double>(acc.count) : 0.0,
               secs > 0 ? static_cast<double>(acc.count) / secs : 0.0);
  std::printf("%s\n", server.stats_json().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "list") return cmd_list();
    if (cmd == "pretrain") return cmd_pretrain(argc - 2, argv + 2);
    if (cmd == "quantize") return cmd_quantize(argc - 2, argv + 2);
    if (cmd == "export") return cmd_export(argc - 2, argv + 2);
    if (cmd == "run") return cmd_run(argc - 2, argv + 2);
    if (cmd == "serve") return cmd_serve(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
