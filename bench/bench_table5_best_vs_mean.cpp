// Reproduces paper Table 5 / Appendix D: best-checkpoint validation versus
// the mean of validations at fixed points in the final epoch. The paper
// quantifies the cherry-picking bias of "keep the best checkpoint" at about
// 0.1-0.2% top-1; we report the same comparison for two networks.
#include <algorithm>

#include "bench_util.h"

int main() {
  using namespace tqt;
  using bench::pct;
  bench::print_header("Table 5: best vs mean validation in the final epoch (App. D)");
  const auto& data = bench::shared_dataset();
  const float epochs = bench::fast_mode() ? 2.0f : 5.0f;

  for (ModelKind kind : {ModelKind::kMiniMobileNetV1, ModelKind::kMiniVgg}) {
    const auto state = bench::pretrained(kind);
    QuantTrialConfig cfg;
    cfg.mode = TrialMode::kRetrainWtTh;
    cfg.schedule = default_retrain_schedule(epochs);
    cfg.schedule.validate_every = 8;  // frequent checkpoints, like the paper's every-1000-steps
    const TrialOutput out = run_quant_trial(kind, state, data, cfg);

    std::printf("\n%s (INT8 wt,th retraining, %.0f epochs)\n", model_name(kind).c_str(), epochs);
    std::printf("  %-10s %8s\n", "epoch", "top-1");
    // Five validations spread over the final epoch.
    const auto& hist = out.train.val_top1_history;
    const auto& when = out.train.val_epoch_history;
    std::vector<size_t> last_epoch;
    for (size_t i = 0; i < when.size(); ++i) {
      if (when[i] > epochs - 1.0f) last_epoch.push_back(i);
    }
    double mean = 0.0;
    size_t used = 0;
    const size_t stride = std::max<size_t>(1, last_epoch.size() / 5);
    for (size_t j = 0; j < last_epoch.size(); j += stride) {
      const size_t i = last_epoch[j];
      std::printf("  %-10.2f %8.3f\n", when[i], pct(hist[i]));
      mean += hist[i];
      ++used;
    }
    if (used) mean /= static_cast<double>(used);
    const double best = *std::max_element(hist.begin(), hist.end());
    std::printf("  %-10s %8.3f\n", "Mean", pct(mean));
    std::printf("  %-10s %8.3f   (bias of best-checkpointing: %+.3f)\n", "Best", pct(best),
                pct(best - mean));
  }
  std::printf("\nExpectation: best exceeds mean by only a small positive bias (paper: ~0.1-0.2%%).\n");
  return 0;
}
