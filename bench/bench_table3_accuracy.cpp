// Reproduces paper Table 3: quantization accuracy on every network family
// for the six trial flavours —
//   FP32 baseline / static INT8 / retrain-wt FP32 / retrain-wt INT8 /
//   TQT (wt,th) INT8 / TQT (wt,th) INT4  (INT4 = 4/8 W/A)
// reporting top-1 / top-5 (%) and the best-checkpoint epoch.
//
// Expected shape (paper §5.3/§6.1, scaled to the synthetic mini workloads):
//  - static INT8 roughly matches FP32 on VGG/Inception/ResNet;
//  - static INT8 *collapses* on the MobileNets (per-tensor ranges starved by
//    irregular depthwise weight distributions);
//  - wt-only retraining recovers the easy networks but NOT the MobileNets;
//  - TQT (wt+th) recovers everything to ~FP32 at INT8;
//  - INT4 sits slightly below FP32, and needs wt+th training.
#include "bench_util.h"

namespace tqt {
namespace {

void run_model(ModelKind kind) {
  using bench::pct;
  const auto& data = bench::shared_dataset();
  const auto state = bench::pretrained(kind);
  const float epochs = bench::fast_mode() ? 1.0f : 4.0f;

  std::printf("\n%s\n", model_name(kind).c_str());
  std::printf("  %-10s %-9s %-6s %7s %7s %8s\n", "Mode", "Precision", "W/A", "top-1", "top-5",
              "Epochs");

  const Accuracy fp32 = eval_fp32(kind, state, data);
  std::printf("  %-10s %-9s %-6s %7.1f %7.1f %8s\n", "-", "FP32", "32/32", pct(fp32.top1()),
              pct(fp32.top5()), "-");

  {
    QuantTrialConfig cfg;
    cfg.mode = TrialMode::kStatic;
    const TrialOutput out = run_quant_trial(kind, state, data, cfg);
    std::printf("  %-10s %-9s %-6s %7.1f %7.1f %8s\n", "Static", "INT8", "8/8",
                pct(out.accuracy.top1()), pct(out.accuracy.top5()), "-");
  }
  {
    const TrialOutput out = run_fp32_retrain(kind, state, data, default_retrain_schedule(epochs));
    std::printf("  %-10s %-9s %-6s %7.1f %7.1f %8.1f\n", "Retrain wt", "FP32", "32/32",
                pct(out.accuracy.top1()), pct(out.accuracy.top5()), out.best_epoch);
  }
  {
    QuantTrialConfig cfg;
    cfg.mode = TrialMode::kRetrainWt;
    cfg.schedule = default_retrain_schedule(epochs);
    const TrialOutput out = run_quant_trial(kind, state, data, cfg);
    std::printf("  %-10s %-9s %-6s %7.1f %7.1f %8.1f\n", "Retrain wt", "INT8", "8/8",
                pct(out.accuracy.top1()), pct(out.accuracy.top5()), out.best_epoch);
  }
  {
    QuantTrialConfig cfg;
    cfg.mode = TrialMode::kRetrainWtTh;
    cfg.schedule = default_retrain_schedule(epochs);
    const TrialOutput out = run_quant_trial(kind, state, data, cfg);
    std::printf("  %-10s %-9s %-6s %7.1f %7.1f %8.1f\n", "Retrain wt,th", "INT8", "8/8",
                pct(out.accuracy.top1()), pct(out.accuracy.top5()), out.best_epoch);
  }
  {
    QuantTrialConfig cfg;
    cfg.mode = TrialMode::kRetrainWtTh;
    cfg.quant.precision.wbits = 4;
    cfg.schedule = default_retrain_schedule(epochs);
    const TrialOutput out = run_quant_trial(kind, state, data, cfg);
    std::printf("  %-10s %-9s %-6s %7.1f %7.1f %8.1f\n", "Retrain wt,th", "INT4", "4/8",
                pct(out.accuracy.top1()), pct(out.accuracy.top5()), out.best_epoch);
  }
}

}  // namespace
}  // namespace tqt

int main() {
  tqt::bench::print_header(
      "Table 3 (analog): quantization accuracy per network and trial mode\n"
      "Synthetic 10-class dataset; mini model zoo (see DESIGN.md)");
  for (tqt::ModelKind kind : tqt::bench::selected_models()) tqt::run_model(kind);
  std::printf("\n");
  return 0;
}
