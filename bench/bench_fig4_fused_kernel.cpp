// Reproduces paper Figure 4 / §4.4: the fused quantization kernel versus the
// naive unfused composition of primitive ops. The unfused training graph
// materializes four intermediate tensors per quantization layer for the
// backward pass; the fused kernel caches only its input and recomputes.
// We verify identical numerics, then report per-step time and the cached
// training memory for both, at several tensor sizes.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "quant/fake_quant.h"
#include "quant/unfused.h"
#include "tensor/rng.h"

int main() {
  using namespace tqt;
  using clock = std::chrono::steady_clock;
  bench::print_header("Figure 4: fused vs unfused quantization kernel (time & training memory)");

  std::printf("%-12s %14s %14s %16s %16s %8s\n", "tensor", "fused us/step", "unfused us/step",
              "fused cache B", "unfused cache B", "equal?");
  Rng rng(5);
  for (int64_t n : {int64_t{1} << 12, int64_t{1} << 16, int64_t{1} << 20}) {
    Tensor x = rng.normal_tensor({n});
    Tensor g = rng.normal_tensor({n});
    auto th_f = make_threshold("f", 0.4f);
    auto th_u = make_threshold("u", 0.4f);
    FakeQuantOp fused(QuantSpec{8}, QuantMode::kTqt, th_f);
    UnfusedFakeQuantOp unfused(QuantSpec{8}, th_u);
    std::vector<const Tensor*> ins{&x};

    // Numerical equality first (the contract that makes fusion free).
    Tensor yf = fused.forward(ins);
    Tensor yu = unfused.forward(ins);
    Tensor dxf = fused.backward(g)[0];
    Tensor dxu = unfused.backward(g)[0];
    const bool equal = yf.equals(yu) && dxf.equals(dxu);

    const int iters = n >= (1 << 20) ? 8 : 64;
    auto time_op = [&](Op& op) {
      const auto t0 = clock::now();
      for (int i = 0; i < iters; ++i) {
        op.forward(ins);
        op.backward(g);
      }
      const auto t1 = clock::now();
      return std::chrono::duration<double, std::micro>(t1 - t0).count() / iters;
    };
    const double us_fused = time_op(fused);
    const double us_unfused = time_op(unfused);
    const int64_t fused_cache = n * static_cast<int64_t>(sizeof(float));  // cached input
    std::printf("%-12lld %14.1f %14.1f %16lld %16lld %8s\n", static_cast<long long>(n), us_fused,
                us_unfused, static_cast<long long>(fused_cache),
                static_cast<long long>(unfused.cached_bytes()), equal ? "yes" : "NO");
  }
  std::printf("\nExpectation: identical numerics; unfused caches 4x the memory and runs slower\n"
              "(the paper's motivation for shipping fused CPU/GPU kernels with Graffitist).\n");
  return 0;
}
