// Validates paper Table 4: hyperparameter guidelines for log-threshold
// training with Adam, derived in Appendix C —
//
//   alpha <= 0.1 / sqrt(p)        (p = 2^(b-1) - 1 for signed data)
//   beta1 >= 1/e
//   beta2 >= 1 - 0.1 / p
//   steps to converge ~ 1/alpha + 1/(1 - beta2)
//
// For b in {4, 8} we sweep alpha across the bound and report the
// post-convergence oscillation amplitude: learning rates within the bound
// keep the threshold inside ~one integer bin; rates far above it oscillate
// across bins (the behaviour threshold freezing exists to suppress).
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "quant/toy_model.h"

int main() {
  using namespace tqt;
  bench::print_header("Table 4: Adam guidelines for log-threshold training (App. C)");
  for (int b : {4, 8}) {
    const double p = static_cast<double>((1 << (b - 1)) - 1);
    const double alpha_bound = 0.1 / std::sqrt(p);
    const double beta2_bound = 1.0 - 0.1 / p;
    const double steps_est = 1.0 / 0.01 + 1.0 / (1.0 - 0.999);
    std::printf("\nb = %d:  alpha <= %.4f   beta1 >= %.3f   beta2 >= %.4f   steps ~ %.0f\n", b,
                alpha_bound, 1.0 / 2.718281828, beta2_bound, steps_est);
    std::printf("  %-12s %-14s %12s %s\n", "alpha", "vs bound", "osc band", "verdict");
    for (double mult : {0.25, 1.0, 4.0, 16.0}) {
      const float alpha = static_cast<float>(mult * alpha_bound);
      ToyRunConfig cfg;
      cfg.bits = {b, true};
      cfg.sigma = 1.0f;
      cfg.steps = 2000;
      cfg.lr = alpha;
      cfg.log2_t0 = 3.0f;
      const ToyRunResult r = run_toy_training(cfg, ToyOptimizer::kLogAdam);
      float lo = 1e30f, hi = -1e30f;
      for (size_t i = r.log2_t.size() / 2; i < r.log2_t.size(); ++i) {
        lo = std::min(lo, r.log2_t[i]);
        hi = std::max(hi, r.log2_t[i]);
      }
      std::printf("  %-12.4f %-14s %12.3f %s\n", alpha,
                  mult <= 1.0 ? "within" : "above", hi - lo,
                  (hi - lo) < 1.0 ? "stays in one integer bin" : "crosses integer bins");
    }
  }
  std::printf("\n(The paper uses alpha=0.01, beta1=0.9, beta2=0.999 for all training.)\n");
  return 0;
}
