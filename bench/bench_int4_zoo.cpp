// INT4 study: the paper's INT4-vs-INT8 gap across the full model zoo, at the
// W4A8 precision the sub-byte engine path executes.
//
// Three wt+th retrained arms per model (§5.3 procedure, Table 3 analog):
//   W8A8 per-tensor   the paper's headline config
//   W4A8 per-tensor   sub-byte weights, one power-of-2 scale per tensor
//   W4A8 per-channel  power-of-2 per-channel weight scales (PrecisionPolicy
//                     per_channel_weights)
//
// Unlike the real-scale per-channel baseline in bench_ext_per_channel (which
// is float-only), the per-channel arm here keeps power-of-2 scaling, so it
// exports to the fixed-point engine: after the trial the harness compiles the
// trained graph, asserts the typed engine is bit-exact against the int64
// reference, and counts the per-channel shift tables that reached the
// program. Expected shape (paper §7): the W4A8 gap is largest per-tensor on
// the MobileNets (depthwise layers have per-channel dynamic range per-tensor
// scales cannot cover) and per-channel recovers most of it.
#include <cstring>

#include "bench_util.h"

namespace tqt {
namespace {

const char* flag_value(int argc, char** argv, const char* flag, const char* fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

struct Row {
  std::string model;
  double fp32 = 0.0;
  double w8a8 = 0.0;
  double w4a8_pt = 0.0;
  double w4a8_pc = 0.0;
  bool pc_bit_exact = false;
  int pc_chan_tables = 0;
};

TrialOutput run_trial(ModelKind kind, int wbits, bool per_channel) {
  QuantTrialConfig cfg;
  cfg.mode = TrialMode::kRetrainWtTh;
  cfg.quant.precision.wbits = wbits;
  cfg.quant.precision.per_channel_weights = per_channel;
  cfg.schedule = default_retrain_schedule(bench::fast_mode() ? 1.0f : 4.0f);
  return run_quant_trial(kind, bench::pretrained(kind), bench::shared_dataset(), cfg);
}

void write_row(observe::JsonWriter& w, const Row& r) {
  w.obj();
  w.kv("model", r.model);
  w.kv("fp32", bench::pct(r.fp32));
  w.kv("w8a8", bench::pct(r.w8a8));
  w.kv("w4a8_per_tensor", bench::pct(r.w4a8_pt));
  w.kv("w4a8_per_channel", bench::pct(r.w4a8_pc));
  w.kv("pc_bit_exact", r.pc_bit_exact);
  w.kv("pc_chan_tables", r.pc_chan_tables);
  w.end();
}

}  // namespace
}  // namespace tqt

int main(int argc, char** argv) {
  using namespace tqt;
  bench::print_header(
      "INT4 zoo study: W4A8 vs W8A8, per-tensor vs per-channel p-of-2 scales\n"
      "wt+th retraining; per-channel arm compiled + checked vs int64 reference");
  std::printf("\n%-22s %7s %7s %10s %11s %7s\n", "network", "FP32", "W8A8", "W4A8 p-t",
              "W4A8 p-ch", "engine");

  std::vector<Row> results;
  for (ModelKind kind : bench::selected_models()) {
    Row r;
    r.model = model_name(kind);
    r.fp32 = eval_fp32(kind, bench::pretrained(kind), bench::shared_dataset()).top1();
    r.w8a8 = run_trial(kind, 8, false).accuracy.top1();
    r.w4a8_pt = run_trial(kind, 4, false).accuracy.top1();

    TrialOutput pc = run_trial(kind, 4, true);
    r.w4a8_pc = pc.accuracy.top1();

    // Export the trained per-channel graph and check the typed engine against
    // the int64 reference interpreter on a fresh batch.
    pc.model.graph.set_training(false);
    FixedPointProgram prog =
        compile_fixed_point(pc.model.graph, pc.model.input, pc.qres.quantized_output);
    for (const FpInstr& ins : prog.instructions()) {
      if (!ins.chan_data.empty()) ++r.pc_chan_tables;
    }
    Rng rng(23);
    const Tensor x = rng.normal_tensor({8, 16, 16, 3}, 0.2f, 1.0f);
    const IntTensor got = prog.run_raw(x);
    const IntTensor want = prog.run_raw_reference(x);
    r.pc_bit_exact =
        got.shape == want.shape && got.exponent == want.exponent && got.data == want.data;

    std::printf("%-22s %7.1f %7.1f %10.1f %11.1f %7s\n", r.model.c_str(), bench::pct(r.fp32),
                bench::pct(r.w8a8), bench::pct(r.w4a8_pt), bench::pct(r.w4a8_pc),
                r.pc_bit_exact ? "exact" : "MISMATCH");
    results.push_back(r);
  }

  int pc_exact = 0, pc_tables = 0;
  for (const Row& r : results) {
    pc_exact += r.pc_bit_exact ? 1 : 0;
    pc_tables += r.pc_chan_tables > 0 ? 1 : 0;
  }

  observe::JsonWriter w;
  w.obj();
  w.kv("bench", "int4_zoo");
  w.kv("fast", bench::fast_mode());
  w.key("models").arr();
  for (const Row& r : results) write_row(w, r);
  w.end();
  w.kv("models_pc_bit_exact", pc_exact);
  w.kv("models_with_chan_tables", pc_tables);
  w.end();
  bench::emit_report(w.str(), flag_value(argc, argv, "-o", nullptr));

  if (pc_exact != static_cast<int>(results.size())) {
    std::fprintf(stderr, "FAIL: per-channel program not bit-exact on %d model(s)\n",
                 static_cast<int>(results.size()) - pc_exact);
    return 1;
  }
  if (pc_tables != static_cast<int>(results.size())) {
    std::fprintf(stderr, "FAIL: %d model(s) compiled without per-channel shift tables\n",
                 static_cast<int>(results.size()) - pc_tables);
    return 1;
  }
  std::printf("\nExpectation: W8A8 ~ FP32 everywhere; W4A8 per-tensor drops hardest on the\n"
              "MobileNets; per-channel p-of-2 scales recover most of that gap while staying\n"
              "engine-exportable (bit-exact vs the int64 reference).\n");
  return 0;
}
