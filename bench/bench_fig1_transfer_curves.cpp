// Reproduces paper Figure 1: forward and backward transfer curves of the TQT
// quantizer for signed and unsigned data, bit-width b = 3, raw threshold
// t = 1.0. Prints (x, q(x), dq/dx, dq/dlog2t, dL/dx, dL/dlog2t) series; the
// L columns are the overall gradients of the toy L2 loss (Eqs. 9-10).
//
// Checkable shape: q is a staircase saturating at n*s = -1.0 / p*s = 0.75
// (signed) and 0 / 0.875 (unsigned); dq/dx is 1 inside and 0 outside;
// dL/dlog2t is >= 0 inside the clip range and < 0 outside (the
// range-precision trade-off of §3.4).
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "quant/toy_model.h"

namespace tqt {
namespace {

void print_curves(const char* title, QuantBits bits) {
  std::printf("\n-- %s (b=%d, t=1.0, s=%g) --\n", title, bits.bits,
              std::exp2(-bits.scale_shift()));
  const QuantizerCurves c =
      transfer_curves(bits, QuantMode::kTqt, /*log2_t=*/0.0f, -2.0f, 2.0f, 33);
  std::printf("%8s %8s %8s %12s %8s %12s\n", "x", "q(x)", "dq/dx", "dq/dlog2t", "dL/dx",
              "dL/dlog2t");
  for (size_t i = 0; i < c.x.size(); ++i) {
    std::printf("%8.3f %8.3f %8.1f %12.4f %8.3f %12.4f\n", c.x[i], c.q[i], c.dq_dx[i],
                c.dq_dlog2t[i], c.dl_dx[i], c.dl_dlog2t[i]);
  }
}

}  // namespace
}  // namespace tqt

int main() {
  tqt::bench::print_header("Figure 1: TQT quantizer transfer curves (signed & unsigned, b=3)");
  tqt::print_curves("(a) signed", tqt::QuantBits{3, true});
  tqt::print_curves("(b) unsigned", tqt::QuantBits{3, false});
  return 0;
}
