// Reproduces paper Figure 9 and validates the Appendix C analysis: close-up
// of the post-convergence oscillation of Adam-trained log thresholds on the
// toy L2 problem (b = 8, sigma in {1e-2, 1e-1, 1}).
//
// Appendix C predicts: the oscillation period T approximately equals the
// gradient ratio r_g, and the oscillation amplitude is bounded by
// alpha * sqrt(r_g) (with a 10x design margin for noise).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "quant/toy_model.h"

namespace {

/// Mean distance between upward crossings of the trajectory's own mean —
/// a crude but robust period estimator for sawtooth-like signals.
double estimate_period(const std::vector<float>& traj, size_t start) {
  double mean = 0.0;
  for (size_t i = start; i < traj.size(); ++i) mean += traj[i];
  mean /= static_cast<double>(traj.size() - start);
  std::vector<size_t> crossings;
  for (size_t i = start + 1; i < traj.size(); ++i) {
    if (traj[i - 1] < mean && traj[i] >= mean) crossings.push_back(i);
  }
  if (crossings.size() < 2) return 0.0;
  return static_cast<double>(crossings.back() - crossings.front()) /
         static_cast<double>(crossings.size() - 1);
}

}  // namespace

int main() {
  using namespace tqt;
  bench::print_header("Figure 9 / Appendix C: Adam threshold oscillation period ~ r_g");
  const float alpha = 0.01f;
  const float sigmas[] = {1e-2f, 1e-1f, 1.0f};
  std::printf("%-8s %10s %10s %12s %12s %14s\n", "sigma", "final", "r_g", "period T",
              "amplitude", "alpha*sqrt(rg)");
  for (float sigma : sigmas) {
    ToyRunConfig cfg;
    cfg.bits = {8, true};
    cfg.sigma = sigma;
    cfg.steps = 2000;
    cfg.lr = alpha;
    cfg.log2_t0 = std::log2(sigma) + 2.0f;
    const ToyRunResult r = run_toy_training(cfg, ToyOptimizer::kLogAdam);
    const size_t start = r.log2_t.size() / 2;
    float lo = 1e30f, hi = -1e30f;
    for (size_t i = start; i < r.log2_t.size(); ++i) {
      lo = std::min(lo, r.log2_t[i]);
      hi = std::max(hi, r.log2_t[i]);
    }
    const double period = estimate_period(r.log2_t, start);
    const double bound = alpha * std::sqrt(std::max(1.0f, r.empirical_rg));
    std::printf("%-8g %10.3f %10.1f %12.1f %12.4f %14.4f%s\n", sigma, r.final_log2_t,
                r.empirical_rg, period, hi - lo, bound,
                (hi - lo) <= 10.0 * bound ? "  (within 10x bound)" : "  (EXCEEDS 10x bound)");
  }
  std::printf("\nExpectation: T ~ r_g and amplitude <= ~10 * alpha * sqrt(r_g) (App. C).\n");
  return 0;
}
