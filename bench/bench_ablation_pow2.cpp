// Ablation: the power-of-2 scale-factor constraint (§3.1 / §7 future work).
//
// TQT constrains scales to 2^-f so hardware rescales are single bit-shifts
// (Appendix A). How much accuracy does that constraint cost? We retrain
// weights+thresholds INT8 with (a) power-of-2 scaling + full fixed-point
// intermediate emulation (the deployable configuration) and (b) unconstrained
// real-valued scaling (threshold still trained in the log domain).
#include "bench_util.h"

int main() {
  using namespace tqt;
  bench::print_header("Ablation: power-of-2 vs real-valued scale-factors (INT8 wt+th)");
  const auto& data = bench::shared_dataset();
  const float epochs = bench::fast_mode() ? 1.0f : 4.0f;
  std::printf("\n%-22s %14s %14s %8s\n", "network", "p-of-2 top-1", "real top-1", "FP32");
  for (ModelKind kind : bench::selected_models()) {
    const auto state = bench::pretrained(kind);
    QuantTrialConfig p2;
    p2.mode = TrialMode::kRetrainWtTh;
    p2.schedule = default_retrain_schedule(epochs);
    const TrialOutput a = run_quant_trial(kind, state, data, p2);

    QuantTrialConfig real = p2;
    real.quant.power_of_2 = false;
    real.quant.emulate_intermediates = false;
    const TrialOutput b = run_quant_trial(kind, state, data, real);

    std::printf("%-22s %14.1f %14.1f %8.1f\n", model_name(kind).c_str(),
                bench::pct(a.accuracy.top1()), bench::pct(b.accuracy.top1()),
                bench::pct(eval_fp32(kind, state, data).top1()));
  }
  std::printf(
      "\nExpectation: the power-of-2 constraint costs little to nothing once\n"
      "thresholds are trained — the paper's core hardware-friendliness claim.\n");
  return 0;
}
