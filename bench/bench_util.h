// Shared helpers for the benchmark/experiment binaries: a common dataset,
// a pretrained-model cache on disk, and table formatting.
//
// Environment knobs:
//   TQT_CACHE_DIR  where pretrained FP32 weights are cached
//                  (default: ./tqt_artifacts)
//   TQT_MODELS     comma-separated subset of model names to run
//                  (default: all six families)
//   TQT_FAST       if set, shrink epochs/datasets for a quick smoke pass
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "fixedpoint/engine.h"
#include "graph_opt/quantize_pass.h"
#include "graph_opt/transforms.h"
#include "observe/json.h"
#include "tensor/rng.h"

namespace tqt::bench {

inline bool fast_mode() { return std::getenv("TQT_FAST") != nullptr; }

inline std::string cache_dir() {
  if (const char* env = std::getenv("TQT_CACHE_DIR")) return env;
  return "tqt_artifacts";
}

inline const SyntheticImageDataset& shared_dataset() {
  static SyntheticImageDataset data(default_dataset_config());
  return data;
}

inline PretrainConfig default_pretrain() {
  PretrainConfig cfg;
  cfg.epochs = fast_mode() ? 4.0f : 14.0f;
  cfg.lr = 2e-3f;
  return cfg;
}

inline std::map<std::string, Tensor> pretrained(ModelKind kind) {
  return load_or_pretrain(kind, shared_dataset(), cache_dir(), default_pretrain());
}

/// Models selected via TQT_MODELS (names per model_name()), default all.
inline std::vector<ModelKind> selected_models() {
  const char* env = std::getenv("TQT_MODELS");
  if (!env) return all_model_kinds();
  const std::string filter = env;
  std::vector<ModelKind> out;
  for (ModelKind k : all_model_kinds()) {
    if (filter.find(model_name(k)) != std::string::npos) out.push_back(k);
  }
  return out.empty() ? all_model_kinds() : out;
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline double pct(double x) { return 100.0 * x; }

/// Calibration-only fixed-point program for `kind` (no retraining): warm the
/// BN statistics on random batches, fold + quantize the graph, calibrate
/// thresholds on one calibration batch, and compile. Shared by the engine /
/// serve / observe benches, which measure execution rather than accuracy.
/// `qcfg` selects the precision policy (defaults to 8/8 per-tensor).
inline FixedPointProgram calibrated_program(ModelKind kind,
                                            const QuantizeConfig& qcfg = {}) {
  BuiltModel m = build_model(kind, 10, 11);
  Rng rng(11);
  m.graph.set_training(true);
  for (int i = 0; i < 10; ++i) {
    m.graph.run({{m.input, rng.normal_tensor({8, 16, 16, 3}, 0.2f, 1.0f)}}, m.logits);
  }
  m.graph.set_training(false);
  Tensor calib = rng.normal_tensor({16, 16, 16, 3}, 0.2f, 1.0f);
  optimize_for_quantization(m.graph, m.input, calib);
  QuantizePassResult qres = quantize_pass(m.graph, m.input, m.logits, qcfg);
  calibrate_thresholds(m.graph, qres, m.input, calib, WeightInit::kMax);
  return compile_fixed_point(m.graph, m.input, qres.quantized_output);
}

/// Standard tail of every bench binary: print the one-line JSON report to
/// stdout and, when `path` is non-null (the -o flag), render it to disk.
inline void emit_report(const std::string& json, const char* path) {
  std::printf("%s\n", json.c_str());
  if (path) {
    std::ofstream f(path, std::ios::trunc);
    f << json << "\n";
    std::fprintf(stderr, "wrote %s\n", path);
  }
}

}  // namespace tqt::bench
