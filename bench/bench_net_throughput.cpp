// Socket load generator for the tqt-gateway front-end, in two parts.
//
// Part 1 (closed loop): N client threads each hold one TCP connection to a
// loopback gateway and issue lock-step requests; run once with a 1-thread
// pool and once with a 4-thread pool and report the comparison — the network
// counterpart of bench_serve_throughput, with latencies measured client-side
// so they include wire encoding, both socket hops and the event loop.
//
// Part 2 (open loop, tqt-qos): a 2-shard ShardedGateway serves a
// heavy-tailed tenant mix under *Poisson arrivals* — each tenant offers
// requests on its own exponential-gap schedule regardless of completions, so
// queueing delay shows up as latency instead of silently throttling the
// generator. Two phases run: "isolated" (well-behaved tenants only) and
// "attack" (same mix plus one abusive quota-busting tenant offering ~10x its
// rate limit, and one slow-loris connection dribbling a partial frame).
// The report carries per-tenant p50/p99 for both phases, a Jain fairness
// index over the well-behaved tenants' success ratios, and the isolation
// bound; the binary EXITS 1 if the abusive tenant was not rate-limited or if
// any well-behaved tenant's attack-phase p99 exceeds
//   isolation_bound_factor * isolated_p99 + isolation_slack_us.
// (Single-core timing caveat: the bound is deliberately slack — absolute
// latency windows on a loaded 1-core box are noisy; only the isolated-vs-
// attack pairing makes the gate meaningful.)
//
//   bench_net_throughput [--model NAME] [--clients N] [--requests N]
//                        [--max-batch B] [--delay-us D] [--deadline-us D]
//                        [--qos-seconds S] [--smoke] [-o FILE]
//
// --smoke (or env TQT_FAST) shrinks both parts for CI. The JSON records
// hardware_concurrency so a 1-core CI box is not mistaken for a regression.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "fixedpoint/engine.h"
#include "models/zoo.h"
#include "net/client.h"
#include "net/gateway.h"
#include "observe/observe.h"
#include "qos/shard.h"
#include "qos/tenant.h"
#include "runtime/parallel.h"
#include "serve/server.h"
#include "tensor/rng.h"

namespace {

using namespace tqt;

const char* flag_value(int argc, char** argv, const char* flag, const char* fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

// ---- Part 1: closed-loop 1-vs-4-thread comparison ---------------------------

struct PhaseResult {
  int threads = 0;
  double seconds = 0.0;
  double throughput_rps = 0.0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t deadline_dropped = 0;
  observe::HistogramSnapshot latency;  // client-side, microseconds
};

PhaseResult run_phase(const FixedPointProgram& prog, int pool_threads, int clients,
                      int64_t total_requests, uint32_t deadline_us,
                      const serve::ServerConfig& scfg) {
  set_num_threads(pool_threads);
  serve::InferenceServer server(scfg);
  server.deploy("bench", prog, {16, 16, 3});
  net::Gateway gateway(server, {});

  Rng rng(7);
  const Tensor sample = rng.normal_tensor({1, 16, 16, 3}, 0.2f, 1.2f);

  // Client-side latency: send -> response fully parsed, per request.
  observe::Histogram latency;
  std::atomic<uint64_t> ok{0}, shed{0}, dropped{0};

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      net::GatewayClient client("localhost", gateway.port());
      for (int64_t i = c; i < total_requests; i += clients) {
        const auto s0 = std::chrono::steady_clock::now();
        const net::InferResponse resp = client.infer("bench", sample, deadline_us);
        const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - s0)
                            .count();
        latency.record(static_cast<uint64_t>(us));
        switch (resp.status) {
          case net::WireStatus::kOk: ok.fetch_add(1); break;
          case net::WireStatus::kShed: shed.fetch_add(1); break;
          case net::WireStatus::kDeadlineExceeded: dropped.fetch_add(1); break;
          default: break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  gateway.stop_and_drain();
  server.shutdown_and_drain();

  PhaseResult r;
  r.threads = pool_threads;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.throughput_rps = static_cast<double>(total_requests) / r.seconds;
  r.ok = ok.load();
  r.shed = shed.load();
  r.deadline_dropped = dropped.load();
  r.latency = latency.snapshot();
  return r;
}

void write_phase(observe::JsonWriter& w, const PhaseResult& r) {
  w.obj();
  w.kv("threads", r.threads);
  w.kv("seconds", r.seconds);
  w.kv("throughput_rps", r.throughput_rps);
  w.kv("p50_us", static_cast<long long>(r.latency.percentile(0.50)));
  w.kv("p95_us", static_cast<long long>(r.latency.percentile(0.95)));
  w.kv("p99_us", static_cast<long long>(r.latency.percentile(0.99)));
  w.kv("ok", static_cast<long long>(r.ok));
  w.kv("shed", static_cast<long long>(r.shed));
  w.kv("deadline_dropped", static_cast<long long>(r.deadline_dropped));
  w.end();
}

// ---- Part 2: open-loop multi-tenant QoS study -------------------------------

struct TenantSpec {
  std::string name;
  std::string token;
  int klass = qos::kClassNormal;
  int weight = 1;
  double rate_rps = 0.0;  // 0 = unlimited (well-behaved tenants are unmetered)
  double burst = 0.0;
  int64_t max_inflight = 0;
  double offered_rps = 0.0;  // Poisson arrival rate this tenant OFFERS
  bool well_behaved = true;
};

struct TenantStats {
  uint64_t sent = 0, ok = 0, rate_limited = 0, quota_exceeded = 0, shed = 0, other = 0;
  observe::HistogramSnapshot latency;  // client-side us, over ALL responses
};

struct QosPhase {
  std::map<std::string, TenantStats> tenants;
  uint64_t slow_loris_closed = 0;
  double seconds = 0.0;
};

/// Exponential-gap arrival offsets (seconds) covering `seconds` of load.
std::vector<double> poisson_schedule(double rate_rps, double seconds, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::exponential_distribution<double> gap(rate_rps);
  std::vector<double> at;
  double t = gap(rng);
  while (t < seconds) {
    at.push_back(t);
    t += gap(rng);
  }
  return at;
}

/// One phase: a fresh 2-shard gateway, every spec'd tenant offering its
/// Poisson schedule through `workers` connections (open loop with bounded
/// concurrency: a request fires at its scheduled time as long as a worker is
/// free; the abuser's rejections are answered inline so even 10x overload
/// never runs out of workers). `with_attack` adds the abusive tenant(s) and
/// a slow-loris connection that dribbles a 6-byte frame prefix forever.
QosPhase run_qos_phase(const FixedPointProgram& prog, const std::vector<TenantSpec>& specs,
                       bool with_attack, double seconds, int workers, uint64_t seed) {
  observe::MetricsRegistry metrics;
  qos::TenantTable tenants(&metrics);
  std::vector<qos::TenantConfig> configs;
  for (const TenantSpec& s : specs) {
    qos::TenantConfig c;
    c.token = s.token;
    c.name = s.name;
    c.klass = s.klass;
    c.weight = s.weight;
    c.rate_rps = s.rate_rps;
    c.burst = s.burst > 0 ? s.burst : std::max(s.rate_rps, 1.0);
    c.max_inflight = s.max_inflight;
    configs.push_back(c);
  }
  tenants.load(configs);

  qos::ShardedGatewayConfig cfg;
  cfg.num_shards = 2;
  cfg.batch.max_batch = 16;
  cfg.batch.max_delay_us = 500;
  cfg.batch.max_queue = 256;
  cfg.tenants = &tenants;
  cfg.metrics = &metrics;
  cfg.read_stall_timeout_ms = 400;  // evict the slow-loris quickly
  qos::ShardedGateway gw(cfg);
  gw.deploy("bench", prog, {16, 16, 3});
  const uint16_t port = gw.port();

  Rng rng(7);
  const Tensor sample = rng.normal_tensor({1, 16, 16, 3}, 0.2f, 1.2f);

  struct TenantRun {
    const TenantSpec* spec = nullptr;
    std::vector<double> arrivals;
    std::atomic<size_t> next{0};
    std::atomic<uint64_t> ok{0}, rate_limited{0}, quota{0}, shed{0}, other{0};
    observe::Histogram latency;  // thread-safe (atomic buckets)
  };
  std::vector<std::unique_ptr<TenantRun>> runs;
  for (const TenantSpec& s : specs) {
    if (!with_attack && !s.well_behaved) continue;
    auto run = std::make_unique<TenantRun>();
    run->spec = &s;
    run->arrivals = poisson_schedule(s.offered_rps, seconds, seed ^ std::hash<std::string>{}(s.name));
    runs.push_back(std::move(run));
  }

  std::atomic<bool> stop{false};
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<std::thread> threads;
  for (auto& runp : runs) {
    TenantRun* run = runp.get();
    for (int wkr = 0; wkr < workers; ++wkr) {
      threads.emplace_back([&, run] {
        net::GatewayClient client("localhost", port);
        client.set_token(run->spec->token);
        for (size_t i = run->next.fetch_add(1); i < run->arrivals.size();
             i = run->next.fetch_add(1)) {
          // Open loop: fire at the scheduled offset (late if every worker is
          // busy — that queueing is part of the measured latency story).
          const auto due =
              t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(run->arrivals[i]));
          std::this_thread::sleep_until(due);
          const auto s0 = std::chrono::steady_clock::now();
          net::InferResponse resp;
          try {
            resp = client.infer("bench", sample);
          } catch (const net::ClientError&) {
            run->other.fetch_add(1);
            return;  // connection gone — stop this worker, others continue
          }
          const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - s0)
                              .count();
          run->latency.record(static_cast<uint64_t>(us));
          switch (resp.status) {
            case net::WireStatus::kOk: run->ok.fetch_add(1); break;
            case net::WireStatus::kRateLimited: run->rate_limited.fetch_add(1); break;
            case net::WireStatus::kQuotaExceeded: run->quota.fetch_add(1); break;
            case net::WireStatus::kShed: run->shed.fetch_add(1); break;
            default: run->other.fetch_add(1); break;
          }
        }
      });
    }
  }

  // The slow-loris: a connection that sends a plausible 6-byte frame prefix
  // and then goes silent. The gateway answers kSlowClient and closes after
  // read_stall_timeout_ms; the loris immediately reconnects.
  std::thread loris;
  if (with_attack) {
    loris = std::thread([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        try {
          net::GatewayClient c("localhost", port, /*recv_timeout_ms=*/100);
          const uint8_t prefix[6] = {0x54, 0x51, 0x54, 0x47, net::kVersion,
                                     static_cast<uint8_t>(net::FrameType::kRequest)};
          c.send_bytes(prefix, sizeof prefix);
          for (;;) {
            uint8_t buf[64];
            size_t n = 0;
            try {
              n = c.recv_raw(buf, sizeof buf);
            } catch (const net::ClientError&) {  // receive timeout: keep lurking
              if (stop.load(std::memory_order_relaxed)) return;
              continue;
            }
            if (n == 0) break;  // evicted — by design
          }
        } catch (const net::ClientError&) {
          if (stop.load(std::memory_order_relaxed)) return;
        }
      }
    });
  }

  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  if (loris.joinable()) loris.join();
  const auto t1 = std::chrono::steady_clock::now();

  QosPhase phase;
  phase.seconds = std::chrono::duration<double>(t1 - t0).count();
  for (auto& runp : runs) {
    TenantStats s;
    s.sent = runp->arrivals.size();
    s.ok = runp->ok.load();
    s.rate_limited = runp->rate_limited.load();
    s.quota_exceeded = runp->quota.load();
    s.shed = runp->shed.load();
    s.other = runp->other.load();
    s.latency = runp->latency.snapshot();
    phase.tenants.emplace(runp->spec->name, std::move(s));
  }
  for (int i = 0; i < gw.num_shards(); ++i) {
    phase.slow_loris_closed +=
        metrics.counter("net.shard" + std::to_string(i) + ".slow_reads_closed").value();
  }
  gw.stop_and_drain();
  return phase;
}

/// Jain fairness index over per-tenant success ratios ok/sent: 1.0 = every
/// well-behaved tenant got the same fraction of its offered load through.
double jain_index(const std::vector<double>& x) {
  if (x.empty()) return 1.0;
  double sum = 0.0, sq = 0.0;
  for (double v : x) {
    sum += v;
    sq += v * v;
  }
  if (sq <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(x.size()) * sq);
}

void write_tenant_stats(observe::JsonWriter& w, const char* key, const TenantStats& s) {
  w.key(key).obj();
  w.kv("sent", static_cast<long long>(s.sent));
  w.kv("ok", static_cast<long long>(s.ok));
  w.kv("rate_limited", static_cast<long long>(s.rate_limited));
  w.kv("quota_exceeded", static_cast<long long>(s.quota_exceeded));
  w.kv("shed", static_cast<long long>(s.shed));
  w.kv("other", static_cast<long long>(s.other));
  w.kv("p50_us", static_cast<long long>(s.latency.percentile(0.50)));
  w.kv("p99_us", static_cast<long long>(s.latency.percentile(0.99)));
  w.end();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string model = flag_value(argc, argv, "--model", "mini_vgg");
  const bool smoke = has_flag(argc, argv, "--smoke") || std::getenv("TQT_FAST") != nullptr;
  const int clients = std::atoi(flag_value(argc, argv, "--clients", "8"));
  const int64_t total = std::atoll(flag_value(argc, argv, "--requests", smoke ? "128" : "2000"));
  const uint32_t deadline_us =
      static_cast<uint32_t>(std::atoll(flag_value(argc, argv, "--deadline-us", "0")));
  const double qos_seconds =
      std::atof(flag_value(argc, argv, "--qos-seconds", smoke ? "1.5" : "6"));

  ModelKind kind = ModelKind::kMiniVgg;
  for (ModelKind k : all_model_kinds()) {
    if (model_name(k) == model) kind = k;
  }

  std::fprintf(stderr, "building %s program...\n", model_name(kind).c_str());
  const FixedPointProgram prog = bench::calibrated_program(kind);

  serve::ServerConfig scfg;
  scfg.batch.max_batch = std::atoll(flag_value(argc, argv, "--max-batch", "16"));
  scfg.batch.max_delay_us = std::atoll(flag_value(argc, argv, "--delay-us", "200"));
  scfg.batch.max_queue = 1024;

  std::vector<PhaseResult> phases;
  for (const int threads : {1, 4}) {
    std::fprintf(stderr, "phase: pool=%d threads, %d connections, %lld requests\n", threads,
                 clients, static_cast<long long>(total));
    phases.push_back(run_phase(prog, threads, clients, total, deadline_us, scfg));
  }
  set_num_threads(0);  // restore the TQT_NUM_THREADS / hardware default

  // Open-loop QoS study: heavy-tailed well-behaved mix (the low-priority
  // tenant offers 4x the high-priority one) plus one abusive tenant offering
  // ~12x its rate limit in the attack phase.
  const double scale = smoke ? 0.5 : 1.0;
  std::vector<TenantSpec> specs;
  specs.push_back({"gold", "gold-tok", qos::kClassHigh, 4, 0.0, 0.0, 0, 40.0 * scale, true});
  specs.push_back({"silver", "silver-tok", qos::kClassNormal, 2, 0.0, 0.0, 0, 80.0 * scale, true});
  specs.push_back({"bronze", "bronze-tok", qos::kClassLow, 1, 0.0, 0.0, 0, 160.0 * scale, true});
  specs.push_back({"abuser", "abuser-tok", qos::kClassLow, 1, /*rate=*/50.0 * scale,
                   /*burst=*/25.0 * scale, /*max_inflight=*/8, 600.0 * scale, false});

  const int qos_workers = 4;
  std::fprintf(stderr, "qos phase: isolated (%0.1fs, well-behaved tenants only)\n", qos_seconds);
  const QosPhase isolated = run_qos_phase(prog, specs, /*with_attack=*/false, qos_seconds,
                                          qos_workers, /*seed=*/11);
  std::fprintf(stderr, "qos phase: attack (%0.1fs, + abuser + slow-loris)\n", qos_seconds);
  const QosPhase attack = run_qos_phase(prog, specs, /*with_attack=*/true, qos_seconds,
                                        qos_workers, /*seed=*/12);

  // Isolation gate. The bound is deliberately slack (see the file comment):
  // what it catches is an abusive tenant blowing up a well-behaved tenant's
  // tail by an order of magnitude, not millisecond jitter.
  const double bound_factor = 5.0;
  const long long slack_us = 200'000;
  bool isolation_ok = true;
  std::vector<double> jain_isolated, jain_attack;
  std::map<std::string, long long> bounds;
  for (const TenantSpec& s : specs) {
    if (!s.well_behaved) continue;
    const TenantStats& iso = isolated.tenants.at(s.name);
    const TenantStats& att = attack.tenants.at(s.name);
    const long long bound =
        static_cast<long long>(bound_factor * static_cast<double>(iso.latency.percentile(0.99))) +
        slack_us;
    bounds[s.name] = bound;
    if (static_cast<long long>(att.latency.percentile(0.99)) > bound) isolation_ok = false;
    if (iso.sent > 0) jain_isolated.push_back(static_cast<double>(iso.ok) / iso.sent);
    if (att.sent > 0) jain_attack.push_back(static_cast<double>(att.ok) / att.sent);
  }
  const TenantStats& abuser = attack.tenants.at("abuser");
  const bool abuser_limited = abuser.rate_limited + abuser.quota_exceeded > 0;

  observe::JsonWriter w;
  w.obj();
  w.kv("bench", "net_throughput");
  w.kv("model", model_name(kind));
  w.kv("clients", clients);
  w.kv("requests_per_phase", static_cast<long long>(total));
  w.kv("max_batch", static_cast<long long>(scfg.batch.max_batch));
  w.kv("max_delay_us", static_cast<long long>(scfg.batch.max_delay_us));
  w.kv("deadline_us", static_cast<long long>(deadline_us));
  w.kv("hardware_concurrency", std::thread::hardware_concurrency());
  w.key("phases").arr();
  write_phase(w, phases[0]);
  write_phase(w, phases[1]);
  w.end();
  w.kv("speedup_4_over_1", phases[1].throughput_rps / phases[0].throughput_rps);

  w.key("qos").obj();
  w.kv("num_shards", 2);
  w.kv("phase_seconds", qos_seconds);
  w.kv("workers_per_tenant", qos_workers);
  w.kv("isolation_bound_factor", bound_factor);
  w.kv("isolation_slack_us", slack_us);
  w.kv("slow_loris_closed", static_cast<long long>(attack.slow_loris_closed));
  w.kv("abuser_limited", abuser_limited);
  w.kv("jain_fairness_isolated", jain_index(jain_isolated));
  w.kv("jain_fairness_attack", jain_index(jain_attack));
  w.kv("isolation_ok", isolation_ok);
  w.key("tenants").arr();
  for (const TenantSpec& s : specs) {
    w.obj();
    w.kv("name", s.name);
    w.kv("class", qos::class_name(s.klass));
    w.kv("weight", s.weight);
    w.kv("offered_rps", s.offered_rps);
    w.kv("well_behaved", s.well_behaved);
    if (s.well_behaved) {
      write_tenant_stats(w, "isolated", isolated.tenants.at(s.name));
      w.kv("isolation_bound_us", bounds.at(s.name));
    }
    write_tenant_stats(w, "attack", attack.tenants.at(s.name));
    if (s.well_behaved) {
      w.kv("within_bound",
           static_cast<long long>(attack.tenants.at(s.name).latency.percentile(0.99)) <=
               bounds.at(s.name));
    }
    w.end();
  }
  w.end();  // tenants
  w.end();  // qos
  w.end();  // root
  bench::emit_report(w.str(), flag_value(argc, argv, "-o", nullptr));

  if (!abuser_limited) {
    std::fprintf(stderr, "FAIL: abusive tenant was never rate-limited/quota-limited\n");
    return 1;
  }
  if (!isolation_ok) {
    std::fprintf(stderr, "FAIL: a well-behaved tenant's attack-phase p99 breached the "
                         "isolation bound\n");
    return 1;
  }
  return 0;
}
