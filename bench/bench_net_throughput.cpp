// Closed-loop socket load generator for the tqt-gateway front-end: N client
// threads each hold one TCP connection to a loopback gateway and issue
// lock-step requests; the gateway feeds the micro-batcher, which executes on
// the runtime/parallel thread pool. Run once with a 1-thread pool and once
// with a 4-thread pool, and report a JSON comparison — the network
// counterpart of bench_serve_throughput, with latencies measured client-side
// so they include wire encoding, both socket hops and the event loop.
//
//   bench_net_throughput [--model NAME] [--clients N] [--requests N]
//                        [--max-batch B] [--delay-us D] [--deadline-us D]
//                        [--smoke] [-o FILE]
//
// --smoke (or env TQT_FAST) shrinks the request count for CI. The JSON
// records hardware_concurrency so a 1-core CI box is not mistaken for a
// regression, plus the shed and deadline-drop counts per phase (nonzero only
// when --deadline-us makes the offered load miss deadlines).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "fixedpoint/engine.h"
#include "models/zoo.h"
#include "net/client.h"
#include "net/gateway.h"
#include "observe/observe.h"
#include "runtime/parallel.h"
#include "serve/server.h"
#include "tensor/rng.h"

namespace {

using namespace tqt;

const char* flag_value(int argc, char** argv, const char* flag, const char* fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

struct PhaseResult {
  int threads = 0;
  double seconds = 0.0;
  double throughput_rps = 0.0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t deadline_dropped = 0;
  observe::HistogramSnapshot latency;  // client-side, microseconds
};

PhaseResult run_phase(const FixedPointProgram& prog, int pool_threads, int clients,
                      int64_t total_requests, uint32_t deadline_us,
                      const serve::ServerConfig& scfg) {
  set_num_threads(pool_threads);
  serve::InferenceServer server(scfg);
  server.deploy("bench", prog, {16, 16, 3});
  net::Gateway gateway(server, {});

  Rng rng(7);
  const Tensor sample = rng.normal_tensor({1, 16, 16, 3}, 0.2f, 1.2f);

  // Client-side latency: send -> response fully parsed, per request.
  observe::Histogram latency;
  std::atomic<uint64_t> ok{0}, shed{0}, dropped{0};

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      net::GatewayClient client("localhost", gateway.port());
      for (int64_t i = c; i < total_requests; i += clients) {
        const auto s0 = std::chrono::steady_clock::now();
        const net::InferResponse resp = client.infer("bench", sample, deadline_us);
        const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - s0)
                            .count();
        latency.record(static_cast<uint64_t>(us));
        switch (resp.status) {
          case net::WireStatus::kOk: ok.fetch_add(1); break;
          case net::WireStatus::kShed: shed.fetch_add(1); break;
          case net::WireStatus::kDeadlineExceeded: dropped.fetch_add(1); break;
          default: break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  gateway.stop_and_drain();
  server.shutdown_and_drain();

  PhaseResult r;
  r.threads = pool_threads;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.throughput_rps = static_cast<double>(total_requests) / r.seconds;
  r.ok = ok.load();
  r.shed = shed.load();
  r.deadline_dropped = dropped.load();
  r.latency = latency.snapshot();
  return r;
}

void write_phase(observe::JsonWriter& w, const PhaseResult& r) {
  w.obj();
  w.kv("threads", r.threads);
  w.kv("seconds", r.seconds);
  w.kv("throughput_rps", r.throughput_rps);
  w.kv("p50_us", static_cast<long long>(r.latency.percentile(0.50)));
  w.kv("p95_us", static_cast<long long>(r.latency.percentile(0.95)));
  w.kv("p99_us", static_cast<long long>(r.latency.percentile(0.99)));
  w.kv("ok", static_cast<long long>(r.ok));
  w.kv("shed", static_cast<long long>(r.shed));
  w.kv("deadline_dropped", static_cast<long long>(r.deadline_dropped));
  w.end();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string model = flag_value(argc, argv, "--model", "mini_vgg");
  const bool smoke = has_flag(argc, argv, "--smoke") || std::getenv("TQT_FAST") != nullptr;
  const int clients = std::atoi(flag_value(argc, argv, "--clients", "8"));
  const int64_t total = std::atoll(flag_value(argc, argv, "--requests", smoke ? "128" : "2000"));
  const uint32_t deadline_us =
      static_cast<uint32_t>(std::atoll(flag_value(argc, argv, "--deadline-us", "0")));

  ModelKind kind = ModelKind::kMiniVgg;
  for (ModelKind k : all_model_kinds()) {
    if (model_name(k) == model) kind = k;
  }

  std::fprintf(stderr, "building %s program...\n", model_name(kind).c_str());
  const FixedPointProgram prog = bench::calibrated_program(kind);

  serve::ServerConfig scfg;
  scfg.batch.max_batch = std::atoll(flag_value(argc, argv, "--max-batch", "16"));
  scfg.batch.max_delay_us = std::atoll(flag_value(argc, argv, "--delay-us", "200"));
  scfg.batch.max_queue = 1024;

  std::vector<PhaseResult> phases;
  for (const int threads : {1, 4}) {
    std::fprintf(stderr, "phase: pool=%d threads, %d connections, %lld requests\n", threads,
                 clients, static_cast<long long>(total));
    phases.push_back(run_phase(prog, threads, clients, total, deadline_us, scfg));
  }
  set_num_threads(0);  // restore the TQT_NUM_THREADS / hardware default

  observe::JsonWriter w;
  w.obj();
  w.kv("bench", "net_throughput");
  w.kv("model", model_name(kind));
  w.kv("clients", clients);
  w.kv("requests_per_phase", static_cast<long long>(total));
  w.kv("max_batch", static_cast<long long>(scfg.batch.max_batch));
  w.kv("max_delay_us", static_cast<long long>(scfg.batch.max_delay_us));
  w.kv("deadline_us", static_cast<long long>(deadline_us));
  w.kv("hardware_concurrency", std::thread::hardware_concurrency());
  w.key("phases").arr();
  write_phase(w, phases[0]);
  write_phase(w, phases[1]);
  w.end();
  w.kv("speedup_4_over_1", phases[1].throughput_rps / phases[0].throughput_rps);
  w.end();
  bench::emit_report(w.str(), flag_value(argc, argv, "-o", nullptr));
  return 0;
}
