// Reproduces paper Figure 2: trained quantization thresholds move inward
// (favoring precision) when most of the input mass is inside (xn, xp), move
// outward (favoring range) when most mass is clipped, and settle where the
// positive inside-gradients cancel the negative outside-gradients.
//
// We evaluate the cumulative dL/dlog2t of the toy L2 model on a Gaussian
// batch at three threshold regimes and then locate the equilibrium.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "quant/toy_model.h"
#include "tensor/rng.h"

int main() {
  using namespace tqt;
  bench::print_header("Figure 2: range-precision trade-off of TQT threshold gradients");
  Rng rng(1);
  const Tensor x = rng.normal_tensor({20000});
  const QuantBits bits{8, true};

  std::printf("%-34s %10s %14s %s\n", "Regime", "log2 t", "dL/dlog2t", "-> threshold moves");
  struct Case {
    const char* name;
    float log2_t;
  } cases[] = {
      {"thresholds move in  (t >> data)", 4.0f},
      {"thresholds move out (t << data)", -4.0f},
  };
  for (const Case& c : cases) {
    const ToyEval e = toy_l2_eval(x, bits, QuantMode::kTqt, c.log2_t);
    std::printf("%-34s %10.2f %14.4f %s\n", c.name, c.log2_t, e.grad_log2_t,
                e.grad_log2_t > 0 ? "inward (precision)" : "outward (range)");
  }

  // Converged: scan for the sign change of the cumulative gradient.
  float eq = 0.0f;
  double prev = toy_l2_eval(x, bits, QuantMode::kTqt, -6.0f).grad_log2_t;
  for (float t = -5.75f; t <= 6.0f; t += 0.25f) {
    const double g = toy_l2_eval(x, bits, QuantMode::kTqt, t).grad_log2_t;
    if (prev < 0.0 && g >= 0.0) {
      eq = t;
      break;
    }
    prev = g;
  }
  const ToyEval e = toy_l2_eval(x, bits, QuantMode::kTqt, eq);
  std::printf("%-34s %10.2f %14.4f %s\n", "converged (equilibrium)", eq, e.grad_log2_t,
              "positive inside cancels negative outside");
  std::printf("\nGaussian(1) input, INT8: equilibrium raw threshold t = %.3f (= %.2f sigma)\n",
              std::exp2(eq), std::exp2(eq));
  return 0;
}
