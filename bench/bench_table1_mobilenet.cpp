// Reproduces paper Table 1: MobileNet v1/v2 8-bit quantization — Google-QAT-
// style baselines versus TQT. The paper's point: TQT's scheme is *strictly
// more constrained* (per-tensor, symmetric, power-of-2 scaling) yet matches
// floating-point accuracy, while QAT-style clipped-gradient training needs
// per-channel scaling to stay close and loses accuracy per-tensor.
//
// The QAT rows use this library's baseline quantizers: per-channel symmetric
// real-scaling with clipped threshold gradients, and per-tensor *asymmetric*
// (zero-point) real-scaling (AsymmetricFakeQuantOp) — matching the schemes
// of Krishnamoorthi (2018) Table 4 that the paper quotes.
#include "bench_util.h"

namespace tqt {
namespace {

void run_model(ModelKind kind) {
  using bench::pct;
  const auto& data = bench::shared_dataset();
  const auto state = bench::pretrained(kind);
  const float epochs = bench::fast_mode() ? 1.0f : 4.0f;

  std::printf("\n%s\n", model_name(kind).c_str());
  std::printf("  %-12s %-10s %-44s %7s\n", "Method", "Precision", "Quantization Scheme", "Top-1");

  const Accuracy fp32 = eval_fp32(kind, state, data);
  std::printf("  %-12s %-10s %-44s %7.1f\n", "QAT/TQT", "FP32", "-", pct(fp32.top1()));

  {
    // QAT analog, per-channel symmetric, real scaling, wt-only retrain.
    QuantTrialConfig cfg;
    cfg.mode = TrialMode::kRetrainWt;
    cfg.quant.precision.per_channel_weights = true;
    cfg.quant.emulate_intermediates = false;
    cfg.quant.power_of_2 = false;
    cfg.quant.mode = QuantMode::kClipped;
    cfg.schedule = default_retrain_schedule(epochs);
    const TrialOutput out = run_quant_trial(kind, state, data, cfg);
    std::printf("  %-12s %-10s %-44s %7.1f\n", "QAT-analog", "INT8",
                "per-channel, symmetric, real scaling", pct(out.accuracy.top1()));
  }
  {
    // QAT analog, per-tensor ASYMMETRIC (zero-point) real scaling, wt-only
    // retrain — the faithful reproduction of Table 1's second QAT row.
    QuantTrialConfig cfg;
    cfg.mode = TrialMode::kRetrainWt;
    cfg.quant.asymmetric = true;
    cfg.quant.emulate_intermediates = false;
    cfg.quant.power_of_2 = false;
    cfg.schedule = default_retrain_schedule(epochs);
    const TrialOutput out = run_quant_trial(kind, state, data, cfg);
    std::printf("  %-12s %-10s %-44s %7.1f\n", "QAT-analog", "INT8",
                "per-tensor, asymmetric, real scaling", pct(out.accuracy.top1()));
  }
  {
    // TQT: per-tensor, symmetric, power-of-2, wt+th retraining.
    QuantTrialConfig cfg;
    cfg.mode = TrialMode::kRetrainWtTh;
    cfg.schedule = default_retrain_schedule(epochs);
    const TrialOutput out = run_quant_trial(kind, state, data, cfg);
    std::printf("  %-12s %-10s %-44s %7.1f\n", "TQT", "INT8",
                "per-tensor, symmetric, p-of-2 scaling", pct(out.accuracy.top1()));
  }
}

}  // namespace
}  // namespace tqt

int main() {
  tqt::bench::print_header(
      "Table 1 (analog): MobileNet INT8 — QAT-style baselines vs TQT\n"
      "TQT is strictly more constrained yet should match FP32");
  for (tqt::ModelKind kind :
       {tqt::ModelKind::kMiniMobileNetV1, tqt::ModelKind::kMiniMobileNetV2}) {
    tqt::run_model(kind);
  }
  std::printf("\n");
  return 0;
}
