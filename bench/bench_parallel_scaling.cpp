// Serial-vs-parallel throughput of the runtime-backed hot paths: GEMM,
// GEMM-backed conv forward, fake-quant forward/backward, and fixed-point
// engine inference, swept over 1/2/4/8 threads.
//
// Each workload is timed at every thread count and its output compared
// bit-for-bit against the 1-thread result — the determinism contract of
// src/runtime/parallel.h means any mismatch is a bug, not noise. Results are
// printed as a table plus one JSON object per line (machine-readable, same
// spirit as the other bench_* binaries' stdout artifacts).
//
// TQT_FAST shrinks the workloads for a smoke pass. Speedups only materialize
// on machines with that many physical cores; on a 1-core box every thread
// count must still produce identical bits (that is what this bench asserts).
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fixedpoint/engine.h"
#include "graph_opt/quantize_pass.h"
#include "graph_opt/transforms.h"
#include "models/zoo.h"
#include "nn/ops_conv.h"
#include "quant/fake_quant.h"
#include "runtime/parallel.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace tqt::bench {
namespace {

double time_ms(const std::function<void()>& fn, int iters) {
  fn();  // warm-up (page-in, pool wake)
  double best = 1e300;
  for (int it = 0; it < iters; ++it) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

struct Workload {
  std::string name;
  int64_t elements;                  ///< size of the tensor the kernel chews
  std::function<Tensor()> run;       ///< returns the output for bit-comparison
};

void report(const Workload& w, const std::vector<int>& threads, int iters) {
  set_num_threads(1);
  const Tensor ref = w.run();
  const double ms1 = time_ms([&] { (void)w.run(); }, iters);
  for (int t : threads) {
    set_num_threads(t);
    const Tensor out = w.run();
    const bool exact = out.equals(ref);
    const double ms = t == 1 ? ms1 : time_ms([&] { (void)w.run(); }, iters);
    const double speedup = ms1 / ms;
    std::printf("%-16s  threads=%d  %9.2f ms  speedup %5.2fx  bitexact=%s\n", w.name.c_str(), t,
                ms, speedup, exact ? "yes" : "NO");
    std::printf(
        "{\"bench\":\"parallel_scaling\",\"workload\":\"%s\",\"elements\":%lld,"
        "\"threads\":%d,\"ms\":%.3f,\"speedup\":%.3f,\"bitexact\":%s}\n",
        w.name.c_str(), static_cast<long long>(w.elements), t, ms, speedup,
        exact ? "true" : "false");
  }
  set_num_threads(0);
}

}  // namespace
}  // namespace tqt::bench

int main() {
  using namespace tqt;
  using namespace tqt::bench;

  const bool fast = fast_mode();
  const int iters = fast ? 2 : 3;
  const std::vector<int> threads = {1, 2, 4, 8};
  print_header("Parallel runtime scaling: serial vs parallel hot paths");
  std::printf("pool default: %d thread(s); TQT_NUM_THREADS overrides\n\n", num_threads());

  Rng rng(42);

  // GEMM: square matmul, >= 1M output elements in full mode.
  const int64_t mnk = fast ? 256 : 512;
  const Tensor ga = rng.normal_tensor({mnk, mnk}, 0.0f, 1.0f);
  const Tensor gb = rng.normal_tensor({mnk, mnk}, 0.0f, 1.0f);

  // GEMM-backed conv forward: NHWC input >= 1M elements in full mode.
  const int64_t cn = fast ? 2 : 4, chw = 64, cc = fast ? 16 : 64;
  const Tensor cx = rng.normal_tensor({cn, chw, chw, cc}, 0.0f, 1.0f);
  const Tensor cw = rng.normal_tensor({3, 3, cc, cc}, 0.0f, 0.1f);
  const Conv2dGeom cgeom = Conv2dGeom::same(3, 3, 1, chw, chw);

  // Depthwise conv forward (the §4.1 MobileNet workhorse).
  const Tensor dwx = rng.normal_tensor({cn, chw, chw, cc}, 0.0f, 1.0f);
  const Tensor dww = rng.normal_tensor({3, 3, cc}, 0.0f, 0.1f);

  // Fake-quant forward/backward: >= 1M elements in full mode.
  const int64_t qn = fast ? (1 << 18) : (1 << 22);
  const Tensor qx = rng.normal_tensor({qn}, 0.0f, 1.0f);
  const Tensor qg = rng.normal_tensor({qn}, 0.0f, 1.0f);

  // Fixed-point engine: a quantized mini model end to end.
  SyntheticImageDataset data(default_dataset_config());
  BuiltModel fpm = build_model(ModelKind::kMiniDarkNet, 10, 11);
  {
    Rng warm(11);
    fpm.graph.set_training(true);
    for (int i = 0; i < 4; ++i) {
      fpm.graph.run({{fpm.input, warm.normal_tensor({8, 16, 16, 3}, 0.2f, 1.0f)}}, fpm.logits);
    }
    fpm.graph.set_training(false);
  }
  Rng crng(19);
  const Tensor calib = crng.normal_tensor({16, 16, 16, 3}, 0.2f, 1.0f);
  optimize_for_quantization(fpm.graph, fpm.input, calib);
  QuantizePassResult qres = quantize_pass(fpm.graph, fpm.input, fpm.logits, QuantizeConfig{});
  calibrate_thresholds(fpm.graph, qres, fpm.input, calib, WeightInit::kMax);
  const FixedPointProgram prog = compile_fixed_point(fpm.graph, fpm.input, qres.quantized_output);
  const Tensor probe = crng.normal_tensor({fast ? 16 : 64, 16, 16, 3}, 0.2f, 1.0f);

  std::vector<Workload> workloads;
  workloads.push_back({"gemm", mnk * mnk, [&] { return matmul(ga, gb); }});
  workloads.push_back({"conv_forward", cx.numel(), [&] {
                         Conv2dOp op(cgeom);
                         return op.forward({&cx, &cw});
                       }});
  workloads.push_back({"depthwise_fwd", dwx.numel(), [&] {
                         DepthwiseConv2dOp op(cgeom);
                         return op.forward({&dwx, &dww});
                       }});
  workloads.push_back({"fakequant_fwd", qx.numel(), [&] {
                         auto th = make_threshold("t", 0.5f, true);
                         FakeQuantOp op(QuantSpec{8}, QuantMode::kTqt, th);
                         return op.forward({&qx});
                       }});
  workloads.push_back({"fakequant_bwd", qx.numel(), [&] {
                         auto th = make_threshold("t", 0.5f, true);
                         FakeQuantOp op(QuantSpec{8}, QuantMode::kTqt, th);
                         op.forward({&qx});
                         Tensor dx = op.backward(qg)[0];
                         // Fold grad_log2t into the comparison tensor so the
                         // Eq. 7 reduction is bit-checked too.
                         dx[0] += th->grad[0];
                         return dx;
                       }});
  workloads.push_back({"engine_infer", probe.numel(), [&] {
                         ExecContext ctx;
                         Tensor out;
                         prog.run_into(probe, ctx, out);
                         return out;
                       }});

  for (const Workload& w : workloads) report(w, threads, iters);
  return 0;
}
