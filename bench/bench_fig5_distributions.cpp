// Reproduces paper Figures 5 & 10: MobileNet-v1 weight and activation
// quantization layers whose trained thresholds deviated by a non-zero integer
// amount in the log domain, d := delta ceil(log2 t). For each such layer we
// print the bit-width, initial (calibrated) and trained raw thresholds, the
// deviation d, and a sparkline histogram of the folded weight distribution
// before and after retraining, with the fraction of mass clipped by the
// trained threshold.
//
// Checkable shape (paper §6.2): depthwise conv weights show *negative*
// deviations (thresholds move in by up to ~3 bins — precision over range);
// some other layers move out (range over precision).
#include <cmath>
#include <string>

#include "bench_util.h"
#include "graph_opt/quantize_pass.h"
#include "nn/ops_basic.h"
#include "tensor/ops.h"

namespace tqt {
namespace {

std::string sparkline(const Tensor& values, float range) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  constexpr int kBins = 32;
  std::vector<float> hist(kBins, 0.0f);
  for (int64_t i = 0; i < values.numel(); ++i) {
    const float x = values[i];
    int b = static_cast<int>((x / range * 0.5f + 0.5f) * kBins);
    b = std::min(std::max(b, 0), kBins - 1);
    hist[static_cast<size_t>(b)] += 1.0f;
  }
  float mx = 1.0f;
  for (float h : hist) mx = std::max(mx, h);
  std::string out;
  for (float h : hist) {
    const int lvl = static_cast<int>(std::sqrt(h / mx) * 7.0f + 0.5f);
    out += kLevels[lvl];
  }
  return out;
}

float clipped_fraction(const Tensor& values, float t) {
  int64_t clipped = 0;
  for (int64_t i = 0; i < values.numel(); ++i) {
    if (std::fabs(values[i]) > t) ++clipped;
  }
  return static_cast<float>(clipped) / static_cast<float>(std::max<int64_t>(1, values.numel()));
}

}  // namespace
}  // namespace tqt

int main() {
  using namespace tqt;
  bench::print_header(
      "Figures 5/10: MobileNet-v1 thresholds with non-zero integer deviation\n"
      "d = ceil(log2 t_trained) - ceil(log2 t_init); negative = precision over range");
  const auto& data = bench::shared_dataset();
  const ModelKind kind = ModelKind::kMiniMobileNetV1;
  const auto state = bench::pretrained(kind);

  QuantTrialConfig cfg;
  cfg.mode = TrialMode::kRetrainWtTh;
  // Long threshold schedule, paper-faithful: the paper trains thresholds for
  // thousands of steps at lr 1e-2 (decay 0.5 every 1000*(24/N) steps), which
  // is what allows multi-bin integer movements. We also initialize weight
  // thresholds at MAX here so the inward (precision-over-range) movement of
  // the depthwise layers is visible from a common reference; the default 3SD
  // init of Table 2 already starts most of the way in.
  cfg.weight_init = WeightInit::kMax;
  cfg.schedule = default_retrain_schedule(bench::fast_mode() ? 2.0f : 12.0f);
  cfg.schedule.threshold_lr = LrSchedule{1e-2f, 0.5f, 750, true};
  cfg.schedule.threshold_freeze_start = 250;
  TrialOutput out = run_quant_trial(kind, state, data, cfg);
  Graph& g = out.model.graph;

  std::printf("\nTrained INT8 top-1: %.1f%%\n", 100.0 * out.accuracy.top1());
  std::printf("\n-- weight quantization layers --\n");
  int nonzero = 0, dw_negative = 0, dw_total = 0;
  for (NodeId id : out.qres.weight_quants) {
    FakeQuantOp& q = fake_quant_at(g, id);
    if (q.per_channel()) continue;
    const std::string& pname = q.threshold()->name;
    const float init = out.initial_log2_thresholds.at(pname);
    const float trained = q.threshold()->value[0];
    const int d = static_cast<int>(std::ceil(trained)) - static_cast<int>(std::ceil(init));
    const bool is_dw = g.node(id).name.find("/dw/") != std::string::npos;
    if (is_dw) {
      ++dw_total;
      if (d < 0) ++dw_negative;
    }
    if (d == 0) continue;
    ++nonzero;
    auto* var = dynamic_cast<VariableOp*>(g.node(g.node(id).inputs[0]).op.get());
    const Tensor& w = var->param()->value;
    const float range = std::exp2(std::ceil(std::max(init, trained)));
    std::printf("\n%s  b=%d  d=%+d  t_init=%.4g  t_trained=%.4g\n", g.node(id).name.c_str(),
                q.bits().bits, d, std::exp2(init), std::exp2(trained));
    std::printf("  weights |%s|  +-%.3g   clipped at trained t: %.1f%%\n",
                sparkline(w, range).c_str(), range,
                100.0f * clipped_fraction(w, std::exp2(trained)));
  }
  std::printf("\n-- activation quantization layers with d != 0 --\n");
  for (NodeId id : out.qres.act_quants) {
    FakeQuantOp& q = fake_quant_at(g, id);
    const std::string& pname = q.threshold()->name;
    auto it = out.initial_log2_thresholds.find(pname);
    if (it == out.initial_log2_thresholds.end()) continue;
    const float init = it->second;
    const float trained = q.threshold()->value[0];
    const int d = static_cast<int>(std::ceil(trained)) - static_cast<int>(std::ceil(init));
    if (d == 0) continue;
    ++nonzero;
    std::printf("%-46s b=%-3d d=%+d  t: %.4g -> %.4g\n", g.node(id).name.c_str(), q.bits().bits, d,
                std::exp2(init), std::exp2(trained));
  }
  std::printf("\n%d quantization layers moved by a non-zero integer amount.\n", nonzero);
  std::printf("Depthwise weight thresholds that moved IN (d<0): %d of %d  (paper: depthwise\n"
              "convolutions show a strong preference for precision over range)\n",
              dw_negative, dw_total);
  return 0;
}
