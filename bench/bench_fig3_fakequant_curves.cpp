// Reproduces paper Figure 3: transfer curves of TensorFlow's FakeQuant-style
// *clipped* threshold-gradient formulation for signed data, b = 3, with
// clipping thresholds n = -1.125, p = 0.875 (the same saturation points as
// Figure 1's TQT example, which is why we evaluate our clipped mode at
// t = 1.0 — identical forward, different backward).
//
// Checkable shape: the forward staircase matches Figure 1 exactly, but
// dq/dlog2t (hence dL/dlog2t) is identically ZERO inside the clip range —
// clipped formulations can only push thresholds outward (§3.5).
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "quant/toy_model.h"

int main() {
  using namespace tqt;
  bench::print_header(
      "Figure 3: TF FakeQuant (clipped gradient) transfer curves, signed b=3");
  const QuantizerCurves tqt_c =
      transfer_curves({3, true}, QuantMode::kTqt, 0.0f, -2.0f, 2.0f, 33);
  const QuantizerCurves clip_c =
      transfer_curves({3, true}, QuantMode::kClipped, 0.0f, -2.0f, 2.0f, 33);
  std::printf("%8s %8s %12s %12s %14s %14s\n", "x", "q(x)", "clip:dq/dth", "tqt:dq/dth",
              "clip:dL/dth", "tqt:dL/dth");
  double clip_inside = 0.0, tqt_inside = 0.0;
  for (size_t i = 0; i < clip_c.x.size(); ++i) {
    std::printf("%8.3f %8.3f %12.4f %12.4f %14.4f %14.4f\n", clip_c.x[i], clip_c.q[i],
                clip_c.dq_dlog2t[i], tqt_c.dq_dlog2t[i], clip_c.dl_dlog2t[i],
                tqt_c.dl_dlog2t[i]);
    if (clip_c.x[i] > -1.0f && clip_c.x[i] < 0.8f) {
      clip_inside += std::fabs(clip_c.dl_dlog2t[i]);
      tqt_inside += std::fabs(tqt_c.dl_dlog2t[i]);
    }
  }
  std::printf("\nSum |dL/dlog2t| strictly inside the clip range:  clipped = %.4f   tqt = %.4f\n",
              clip_inside, tqt_inside);
  std::printf("(clipped formulation has no inward force; TQT does — §3.5)\n");
  return 0;
}
