// Ablation: banker's rounding (§3.2).
//
// The paper rounds half-to-even "to prevent an overall upward or downward
// bias which is known to impact end-to-end inference accuracy". We evaluate
// static INT8 graphs with round-half-to-even vs round-half-away-from-zero in
// every quantizer and report (a) the mean per-quantizer output bias on the
// calibration data and (b) validation accuracy.
#include <cmath>

#include "bench_util.h"
#include "quant/fake_quant.h"
#include "graph_opt/quantize_pass.h"

namespace tqt {
namespace {

void set_round_mode(Graph& g, RoundMode mode) {
  for (NodeId id : g.nodes_of_type("FakeQuant")) fake_quant_at(g, id).set_round_mode(mode);
}

/// Mean signed quantization error of the final network output over the
/// validation set — the bias that accumulates across layers.
double output_bias(Graph& g, NodeId input, NodeId quantized_output, NodeId fp_logits,
                   const SyntheticImageDataset& data) {
  double bias = 0.0;
  int64_t n = 0;
  for (int64_t first = 0; first < data.val_size(); first += 64) {
    const Batch b = data.val_batch(first, std::min<int64_t>(64, data.val_size() - first));
    Tensor q = g.run({{input, b.images}}, quantized_output);
    set_quantizers_enabled(g, false);
    Tensor fp = g.run({{input, b.images}}, fp_logits);
    set_quantizers_enabled(g, true);
    for (int64_t i = 0; i < q.numel(); ++i) bias += q[i] - fp[i];
    n += q.numel();
  }
  return bias / static_cast<double>(n);
}

}  // namespace
}  // namespace tqt

int main() {
  using namespace tqt;
  bench::print_header(
      "Ablation: banker's rounding vs round-half-away-from-zero (static INT8)");

  // Part 1 — the mechanism, at a single quantizer: on tie-heavy data (values
  // exactly on half-steps of the grid) half-away rounding adds a systematic
  // +s/2 of magnitude per tie, while banker's rounding cancels.
  {
    auto make = [](RoundMode mode) {
      auto th = make_threshold("t", 0.0f);
      auto q = std::make_unique<FakeQuantOp>(QuantSpec{8}, QuantMode::kTqt, th);
      q->set_round_mode(mode);
      return q;
    };
    const float s = std::exp2(-7.0f);
    Tensor ties({200});
    for (int64_t i = 0; i < ties.numel(); ++i) {
      ties[i] = (static_cast<float>(i) - 100.0f + 0.5f) * s;  // every value is a tie
    }
    std::vector<const Tensor*> ins{&ties};
    auto even = make(RoundMode::kHalfToEven);
    auto away = make(RoundMode::kHalfAwayFromZero);
    const Tensor ye = even->forward(ins);
    const Tensor ya = away->forward(ins);
    double be = 0.0, ba = 0.0;
    for (int64_t i = 0; i < ties.numel(); ++i) {
      be += (ye[i] - ties[i]) * (ties[i] >= 0 ? 1.0 : -1.0);
      ba += (ya[i] - ties[i]) * (ties[i] >= 0 ? 1.0 : -1.0);
    }
    std::printf("\nSingle quantizer on 200 exact ties: mean outward drift per element\n"
                "  half-to-even: %+.3e   half-away: %+.3e   (s/2 = %.3e)\n",
                be / 200.0, ba / 200.0, s / 2.0);
  }

  // Part 2 — end-to-end on the mini networks. NOTE: these networks are 5-10
  // quantized layers deep; the accumulated-bias effect the paper guards
  // against builds up over the 50-150 layers of ImageNet CNNs, so expect the
  // network-level differences here to sit within validation noise.
  const auto& data = bench::shared_dataset();
  std::printf("\n%-22s %16s %12s %16s %12s\n", "network", "even: top-1", "bias", "away: top-1",
              "bias");
  for (ModelKind kind : bench::selected_models()) {
    const auto state = bench::pretrained(kind);
    QuantTrialConfig cfg;
    cfg.mode = TrialMode::kStatic;
    cfg.weight_init = WeightInit::k3Sd;

    double top1[2], bias[2];
    for (int m = 0; m < 2; ++m) {
      TrialOutput out = run_quant_trial(kind, state, data, cfg);
      const RoundMode mode = m == 0 ? RoundMode::kHalfToEven : RoundMode::kHalfAwayFromZero;
      set_round_mode(out.model.graph, mode);
      const Accuracy acc =
          evaluate_graph(out.model.graph, out.model.input, out.qres.quantized_output, data);
      top1[m] = acc.top1();
      bias[m] = output_bias(out.model.graph, out.model.input, out.qres.quantized_output,
                            out.model.logits, data);
    }
    std::printf("%-22s %16.1f %12.4f %16.1f %12.4f\n", model_name(kind).c_str(),
                bench::pct(top1[0]), bias[0], bench::pct(top1[1]), bias[1]);
  }
  std::printf(
      "\nExpectation: the tie-level drift isolates the bias banker's rounding removes\n"
      "(half-away drifts by ~s/2 per tie, half-even by ~0); at 5-10 layers deep the\n"
      "network-level numbers above sit within validation noise, while the paper's\n"
      "50-150-layer ImageNet CNNs accumulate it (§3.2).\n");
  return 0;
}
