// Reproduces paper Appendix A: the cost of the affine quantizer. Times an
// int8 matrix multiply under the three rescaling regimes the paper derives:
//
//   Eq. (13)  affine with zero-points — the product grows cross-terms
//             q1*z2, q2*z1, z1*z2 that need extra row/column reductions;
//   Eq. (15)  symmetric with a real-valued scale — one int32 fixed-point
//             multiplier plus a rounding right-shift per output;
//   Eq. (16)  symmetric with power-of-2 scales (TQT's constraint) — a single
//             bit-shift with round-half-to-even per output.
//
// Expected shape: zero-points cost measurably more than symmetric; the
// power-of-2 variant is the cheapest. (Absolute numbers are host-specific.)
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "tensor/ops.h"
#include "tensor/rng.h"

namespace {

struct Gemm {
  int64_t m, k, n;
  std::vector<int8_t> a, b;
  std::vector<int32_t> acc;
  std::vector<int8_t> out;

  explicit Gemm(int64_t dim) : m(dim), k(dim), n(dim) {
    tqt::Rng rng(7);
    a.resize(static_cast<size_t>(m * k));
    b.resize(static_cast<size_t>(k * n));
    for (auto& v : a) v = static_cast<int8_t>(rng.uniform_int(-128, 127));
    for (auto& v : b) v = static_cast<int8_t>(rng.uniform_int(-128, 127));
    acc.resize(static_cast<size_t>(m * n));
    out.resize(static_cast<size_t>(m * n));
  }

  void accumulate() {
    std::fill(acc.begin(), acc.end(), 0);
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t kk = 0; kk < k; ++kk) {
        const int32_t av = a[static_cast<size_t>(i * k + kk)];
        const int8_t* brow = b.data() + kk * n;
        int32_t* crow = acc.data() + i * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
};

int8_t saturate8(int32_t v) {
  return static_cast<int8_t>(std::min(127, std::max(-128, v)));
}

/// Eq. (15): multiply by a Q31 fixed-point multiplier, then rounding shift.
int8_t rescale_real(int32_t v, int32_t multiplier_q31, int shift) {
  const int64_t prod = static_cast<int64_t>(v) * multiplier_q31;
  const int64_t scaled = tqt::shift_round_half_to_even(prod, 31 + shift);
  return saturate8(static_cast<int32_t>(scaled));
}

/// Eq. (16): single rounding bit-shift.
int8_t rescale_pow2(int32_t v, int shift) {
  return saturate8(static_cast<int32_t>(tqt::shift_round_half_to_even(v, shift)));
}

void BM_AffineZeroPoints(benchmark::State& state) {
  Gemm g(state.range(0));
  const int32_t z1 = 3, z2 = -5, z3 = 7;
  // Eq. (13): q3 = z3 + M [ q1q2 - q1 z2 - q2 z1 + z1 z2 ].
  std::vector<int32_t> row_sums(static_cast<size_t>(g.m));
  std::vector<int32_t> col_sums(static_cast<size_t>(g.n));
  for (auto _ : state) {
    g.accumulate();
    // Cross-term reductions (the "special handling" the paper amortizes).
    std::fill(row_sums.begin(), row_sums.end(), 0);
    std::fill(col_sums.begin(), col_sums.end(), 0);
    for (int64_t i = 0; i < g.m; ++i)
      for (int64_t kk = 0; kk < g.k; ++kk) row_sums[static_cast<size_t>(i)] += g.a[static_cast<size_t>(i * g.k + kk)];
    for (int64_t kk = 0; kk < g.k; ++kk)
      for (int64_t j = 0; j < g.n; ++j) col_sums[static_cast<size_t>(j)] += g.b[static_cast<size_t>(kk * g.n + j)];
    const int32_t zz = z1 * z2 * static_cast<int32_t>(g.k);
    for (int64_t i = 0; i < g.m; ++i) {
      for (int64_t j = 0; j < g.n; ++j) {
        const int32_t corrected = g.acc[static_cast<size_t>(i * g.n + j)] -
                                  row_sums[static_cast<size_t>(i)] * z2 -
                                  col_sums[static_cast<size_t>(j)] * z1 + zz;
        g.out[static_cast<size_t>(i * g.n + j)] =
            saturate8(z3 + rescale_real(corrected, 0x5a82799a, 9));
      }
    }
    benchmark::DoNotOptimize(g.out.data());
  }
  state.SetItemsProcessed(state.iterations() * g.m * g.n * g.k);
}

void BM_SymmetricRealScale(benchmark::State& state) {
  Gemm g(state.range(0));
  for (auto _ : state) {
    g.accumulate();
    for (size_t i = 0; i < g.acc.size(); ++i) g.out[i] = rescale_real(g.acc[i], 0x5a82799a, 9);
    benchmark::DoNotOptimize(g.out.data());
  }
  state.SetItemsProcessed(state.iterations() * g.m * g.n * g.k);
}

void BM_SymmetricPow2(benchmark::State& state) {
  Gemm g(state.range(0));
  for (auto _ : state) {
    g.accumulate();
    for (size_t i = 0; i < g.acc.size(); ++i) g.out[i] = rescale_pow2(g.acc[i], 9);
    benchmark::DoNotOptimize(g.out.data());
  }
  state.SetItemsProcessed(state.iterations() * g.m * g.n * g.k);
}

BENCHMARK(BM_AffineZeroPoints)->Arg(64)->Arg(128);
BENCHMARK(BM_SymmetricRealScale)->Arg(64)->Arg(128);
BENCHMARK(BM_SymmetricPow2)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
