// Overhead gate for the tqt-observe instrumentation (DESIGN.md §10):
// with tracing disabled, the hooks compiled into the engine hot path must
// cost < 1% of a steady-state run_into. Measured from first principles —
// per-primitive cost (disabled span, counter increment) times the number of
// hooks a run executes, divided by the measured run time — so the gate stays
// meaningful even when run-to-run timing noise exceeds 1%.
//
//   bench_observe_overhead [--smoke] [-o FILE]
//
// Also reports the enabled-tracing span cost (ring-buffer write) for scale.
// Exits 1 when the disabled-path overhead breaches the 1% contract.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <mutex>
#include <string>

#include "bench_util.h"
#include "fixedpoint/engine.h"
#include "models/zoo.h"
#include "observe/json.h"
#include "observe/observe.h"
#include "runtime/parallel.h"
#include "tensor/rng.h"

namespace {

using namespace tqt;

const char* flag_value(int argc, char** argv, const char* flag, const char* fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

double now_s() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// ns per iteration of `fn` over `iters` repetitions (one timed block).
template <typename Fn>
double ns_per_iter(int64_t iters, Fn&& fn) {
  const double t0 = now_s();
  for (int64_t i = 0; i < iters; ++i) fn();
  return (now_s() - t0) * 1e9 / static_cast<double>(iters);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke =
      (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) || std::getenv("TQT_FAST") != nullptr;
  const int64_t prim_iters = smoke ? (1 << 18) : (1 << 21);
  const int run_iters = smoke ? 10 : 30;

  set_num_threads(1);  // the zero-alloc steady-state configuration under test

  // Primitive costs. Tracing must be off so the span measures the
  // disabled-path check (one relaxed atomic load, no ring write).
  observe::Tracer::global().set_enabled(false);
  observe::Counter& c = observe::MetricsRegistry::global().counter("bench.observe.counter");
  const double counter_ns = ns_per_iter(prim_iters, [&] { c.inc(); });
  const double span_off_ns =
      ns_per_iter(prim_iters, [] { TQT_TRACE("bench.noop", "bench"); });

  // Enabled-span cost (for scale; not part of the disabled-path gate).
  observe::Tracer::global().set_enabled(true);
  const double span_on_ns =
      ns_per_iter(smoke ? (1 << 14) : (1 << 16), [] { TQT_TRACE("bench.noop", "bench"); });
  observe::Tracer::global().set_enabled(false);
  observe::Tracer::global().clear();

  // Steady-state engine run: mini_vgg, batch 16, reused context.
  std::fprintf(stderr, "building mini_vgg program...\n");
  const FixedPointProgram prog = tqt::bench::calibrated_program(ModelKind::kMiniVgg);
  Rng rng(7);
  const Tensor input = rng.normal_tensor({16, 16, 16, 3}, 0.2f, 1.2f);
  ExecContext ctx;
  Tensor out;
  prog.run_into(input, ctx, out);  // warm the arena + static instrument refs
  double best_run_ns = 1e300;
  for (int i = 0; i < run_iters; ++i) {
    const double t0 = now_s();
    prog.run_into(input, ctx, out);
    best_run_ns = std::min(best_run_ns, (now_s() - t0) * 1e9);
  }

  // Disabled-path hooks one run_into executes with a 1-thread pool: two
  // counter increments (engine.runs / engine.instructions) plus two disabled
  // trace checks (the run_into span and the executor's run_traced branch).
  const double hook_ns = 2.0 * counter_ns + 2.0 * span_off_ns;
  const double overhead_pct = 100.0 * hook_ns / best_run_ns;

  // tqt-autocal traffic mirror (ServerConfig::mirror, DESIGN.md §13): the
  // per-submit cost, modeled on CalibrationService::mirror_sample — a
  // std::function dispatch, a name compare, a relaxed fetch_add, and every
  // 16th call a deep sample copy into the capped ring. Gated per *sample*:
  // the mirror fires once per submitted image, so it is compared against a
  // single image's share of the batched run.
  const std::string lane = "mini_vgg";
  const Tensor sample = rng.normal_tensor({16, 16, 3}, 0.2f, 1.2f);
  std::atomic<int64_t> mirror_seen{0};
  std::deque<Tensor> ring;
  std::mutex ring_mu;
  const std::function<void(const std::string&, const Tensor&)> mirror =
      [&](const std::string& name, const Tensor& s) {
        if (name != lane) return;
        const int64_t n = mirror_seen.fetch_add(1, std::memory_order_relaxed) + 1;
        if (n % 16 != 0) return;
        std::lock_guard<std::mutex> lk(ring_mu);
        if (ring.size() >= 256) ring.pop_front();
        ring.push_back(s);
      };
  const double mirror_ns =
      ns_per_iter(smoke ? (1 << 16) : (1 << 18), [&] { mirror(lane, sample); });
  const double per_sample_run_ns = best_run_ns / static_cast<double>(input.dim(0));
  const double mirror_pct = 100.0 * mirror_ns / per_sample_run_ns;

  const bool ok = overhead_pct < 1.0 && mirror_pct < 1.0;

  std::fprintf(stderr,
               "counter.inc %.2f ns  span(off) %.2f ns  span(on) %.1f ns\n"
               "run_into %.0f ns  hooks/run %.2f ns  overhead %.4f%%\n"
               "mirror/submit %.1f ns  vs %.0f ns/sample  overhead %.4f%%  %s\n",
               counter_ns, span_off_ns, span_on_ns, best_run_ns, hook_ns, overhead_pct,
               mirror_ns, per_sample_run_ns, mirror_pct,
               ok ? "OK (<1%)" : "BREACH (>=1%)");

  observe::JsonWriter w;
  w.obj();
  w.kv("bench", "observe_overhead");
  w.kv("counter_inc_ns", counter_ns);
  w.kv("span_disabled_ns", span_off_ns);
  w.kv("span_enabled_ns", span_on_ns);
  w.kv("run_into_ns", best_run_ns);
  w.kv("hooks_per_run_ns", hook_ns);
  w.kv("overhead_pct", overhead_pct);
  w.kv("mirror_per_submit_ns", mirror_ns);
  w.kv("mirror_overhead_pct", mirror_pct);
  w.kv("within_contract", ok);
  w.end();
  tqt::bench::emit_report(w.str(), flag_value(argc, argv, "-o", nullptr));

  set_num_threads(0);  // restore the TQT_NUM_THREADS / hardware default
  return ok ? 0 : 1;
}
