// Reproduces paper Table 2: the threshold initialization scheme —
//
//        mode          weights    activations
//        static        MAX        KL-J
//        retrain wt    MAX        KL-J
//        retrain wt,th 3SD        KL-J
//
// We run the MobileNet-v1 wt+th trial under both weight-threshold inits (MAX
// and 3SD) and the static/wt-only trials under both, reporting top-1 after
// each. Expected shape: for *trained* thresholds the 3SD init converges at
// least as well (the paper found it useful to start tighter than MAX because
// the gradient can re-expand); for *fixed* thresholds MAX is the safe choice
// (3SD clips weight outliers permanently).
#include "bench_util.h"

int main() {
  using namespace tqt;
  using bench::pct;
  bench::print_header("Table 2: threshold initialization scheme (MAX vs 3SD weights, KL-J acts)");
  const auto& data = bench::shared_dataset();
  const ModelKind kind = ModelKind::kMiniMobileNetV1;
  const auto state = bench::pretrained(kind);
  const float epochs = bench::fast_mode() ? 1.0f : 4.0f;

  std::printf("\n%s\n", model_name(kind).c_str());
  std::printf("  %-14s %-10s %-12s %7s\n", "Mode", "wt init", "act init", "top-1");

  struct Row {
    const char* label;
    TrialMode mode;
    WeightInit init;
  } rows[] = {
      {"static", TrialMode::kStatic, WeightInit::kMax},
      {"static", TrialMode::kStatic, WeightInit::k3Sd},
      {"retrain wt", TrialMode::kRetrainWt, WeightInit::kMax},
      {"retrain wt", TrialMode::kRetrainWt, WeightInit::k3Sd},
      {"retrain wt,th", TrialMode::kRetrainWtTh, WeightInit::kMax},
      {"retrain wt,th", TrialMode::kRetrainWtTh, WeightInit::k3Sd},
      {"retrain wt,th", TrialMode::kRetrainWtTh, WeightInit::kPercentile999},
  };
  for (const Row& r : rows) {
    QuantTrialConfig cfg;
    cfg.mode = r.mode;
    cfg.weight_init = r.init;
    cfg.schedule = default_retrain_schedule(epochs);
    const TrialOutput out = run_quant_trial(kind, state, data, cfg);
    const char* iname = r.init == WeightInit::kMax ? "MAX"
                        : r.init == WeightInit::k3Sd ? "3SD" : "pct99.9";
    std::printf("  %-14s %-10s %-12s %7.1f\n", r.label, iname, "KL-J", pct(out.accuracy.top1()));
  }
  std::printf(
      "\nPaper's scheme: MAX for static/wt-only, 3SD for wt+th.\n"
      "On this substrate the depthwise outlier channels are so extreme that a\n"
      "tight (3SD) init helps even fixed thresholds; the paper-relevant shape is\n"
      "that the wt+th rows are the most robust to the initialization choice —\n"
      "trained thresholds converge to similar solutions from either start.\n");
  return 0;
}
