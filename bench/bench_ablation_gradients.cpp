// Ablation: the threshold-gradient formulation, end-to-end (§3.5 / §2).
//
// Retrains MobileNet-v1 INT8 with weights+thresholds under three gradient
// definitions:
//   TQT      log-domain thresholds, STE keeps round(x/s) != x/s  (this paper)
//   Clipped  TF-FakeQuant: zero gradient inside the clip range   (QAT)
//   LSQ      same gradient value applied to the *raw scale*      (Esser 2019)
// and, for LSQ, two learning rates — reproducing the paper's claim that
// learning scale-factors directly needs careful lr tuning while log-domain
// training is robust at lr 1e-2.
#include "bench_util.h"

namespace tqt {
namespace {

void run(const char* label, QuantTrialConfig cfg, ModelKind kind) {
  const auto& data = bench::shared_dataset();
  const auto state = bench::pretrained(kind);
  const TrialOutput out = run_quant_trial(kind, state, data, cfg);
  std::printf("  %-34s top-1 = %5.1f   (best epoch %.1f)\n", label,
              bench::pct(out.accuracy.top1()), out.best_epoch);
}

}  // namespace
}  // namespace tqt

int main() {
  using namespace tqt;
  bench::print_header(
      "Ablation: threshold-gradient formulation (TQT vs clipped vs LSQ), INT8 wt+th");
  const float epochs = bench::fast_mode() ? 1.0f : 4.0f;
  // Two hard networks plus one where INT4 is feasible (the INT4 rows on
  // MobileNets are dead for every formulation, as in the paper's Table 3).
  for (ModelKind kind : {ModelKind::kMiniMobileNetV1, ModelKind::kMiniMobileNetV2,
                         ModelKind::kMiniInception}) {
    std::printf("\n%s  (FP32 = %.1f)\n", model_name(kind).c_str(),
                bench::pct(eval_fp32(kind, bench::pretrained(kind), bench::shared_dataset()).top1()));
    // From the paper's 3SD init AND from MAX init: the clipped formulation
    // has no inward force (§3.5), so it can never recover from a too-wide
    // initialization, while TQT is robust to either start.
    for (WeightInit init : {WeightInit::k3Sd, WeightInit::kMax}) {
      const char* iname = init == WeightInit::kMax ? "MAX" : "3SD";
      {
        QuantTrialConfig cfg;
        cfg.mode = TrialMode::kRetrainWtTh;
        cfg.weight_init = init;
        cfg.schedule = default_retrain_schedule(epochs);
        char label[64];
        std::snprintf(label, sizeof label, "TQT (log-domain, init %s)", iname);
        run(label, cfg, kind);
      }
      {
        QuantTrialConfig cfg;
        cfg.mode = TrialMode::kRetrainWtTh;
        cfg.weight_init = init;
        cfg.quant.mode = QuantMode::kClipped;
        cfg.schedule = default_retrain_schedule(epochs);
        char label[64];
        std::snprintf(label, sizeof label, "Clipped (TF FakeQuant, init %s)", iname);
        run(label, cfg, kind);
      }
    }
    // INT4 weights stress the formulations harder: with only 16 levels the
    // inward (precision) force matters, and clipped gradients do not have it.
    for (QuantMode mode : {QuantMode::kTqt, QuantMode::kClipped}) {
      QuantTrialConfig cfg;
      cfg.mode = TrialMode::kRetrainWtTh;
      cfg.quant.mode = mode;
      cfg.quant.precision.wbits = 4;
      cfg.schedule = default_retrain_schedule(epochs);
      run(mode == QuantMode::kTqt ? "TQT INT4 (4/8 W/A)" : "Clipped INT4 (4/8 W/A)", cfg, kind);
    }
    for (float lr : {1e-2f, 1e-4f}) {
      QuantTrialConfig cfg;
      cfg.mode = TrialMode::kRetrainWtTh;
      cfg.quant.mode = QuantMode::kLsq;
      cfg.quant.power_of_2 = false;
      cfg.quant.emulate_intermediates = false;
      cfg.schedule = default_retrain_schedule(epochs);
      cfg.schedule.threshold_lr = LrSchedule::constant(lr);
      char label[64];
      std::snprintf(label, sizeof label, "LSQ (raw scale, lr %g)", lr);
      run(label, cfg, kind);
    }
  }
  std::printf(
      "\nExpectation: TQT recovers ~FP32; clipped gradients cannot tighten thresholds\n"
      "and lose accuracy; LSQ is lr-sensitive (diverges or degrades at the lr TQT uses).\n");
  return 0;
}
