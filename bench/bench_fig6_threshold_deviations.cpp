// Reproduces paper Figure 6: threshold behaviour during TQT retraining for
// every network, at INT8 and INT4. For each (network, precision) we report
// the mean |log2 t| movement over the first 100 training steps (the left
// plots of the figure) and the histogram of integer deviations
// d = ceil(log2 t_final) - ceil(log2 t_init) (the right plots).
//
// Checkable shape (paper §6.2): larger positive deviations appear at INT8
// than at INT4 — with more bits available the method buys range; with few
// bits it cuts range to keep precision.
#include <cmath>
#include <map>

#include "bench_util.h"
#include "graph_opt/quantize_pass.h"

namespace tqt {
namespace {

struct DevStats {
  std::map<int, int> hist;        // d -> count
  double first100_movement = 0.0; // mean |log2t(step 100) - log2t(init)|
  double mean_dev = 0.0;
};

QuantTrialConfig base_config(int weight_bits, float epochs) {
  QuantTrialConfig cfg;
  cfg.mode = TrialMode::kRetrainWtTh;
  cfg.quant.precision.wbits = weight_bits;
  cfg.schedule = default_retrain_schedule(epochs);
  // Paper-faithful slow threshold decay so multi-bin deviations can develop
  // (lr 1e-2, halved every 1000*(24/N) steps).
  cfg.schedule.threshold_lr = LrSchedule{1e-2f, 0.5f, 750, true};
  cfg.schedule.threshold_freeze_start = 250;
  cfg.schedule.validate_every = 0;
  cfg.schedule.restore_best = false;  // we study thresholds, not checkpoints
  return cfg;
}

DevStats run_one(ModelKind kind, int weight_bits) {
  const auto& data = bench::shared_dataset();
  const auto state = bench::pretrained(kind);
  DevStats stats;

  // Phase 1: train exactly ~100 steps and measure threshold movement
  // relative to the calibrated initialization.
  const float steps_per_epoch = static_cast<float>(data.train_size() / 32);
  TrialOutput p1 = run_quant_trial(kind, state, data, base_config(weight_bits, 100.0f / steps_per_epoch));
  int64_t n = 0;
  for (const auto& th : threshold_params(p1.model.graph, p1.qres)) {
    if (th->value.numel() != 1) continue;
    stats.first100_movement += std::fabs(th->value[0] - p1.initial_log2_thresholds.at(th->name));
    ++n;
  }
  if (n) stats.first100_movement /= static_cast<double>(n);

  // Phase 2: full retraining run for the final deviation histogram.
  TrialOutput full = run_quant_trial(kind, state, data,
                                     base_config(weight_bits, bench::fast_mode() ? 2.0f : 10.0f));
  n = 0;
  for (const auto& th : threshold_params(full.model.graph, full.qres)) {
    if (th->value.numel() != 1) continue;
    const float init = full.initial_log2_thresholds.at(th->name);
    const int d = static_cast<int>(std::ceil(th->value[0])) - static_cast<int>(std::ceil(init));
    stats.hist[d]++;
    stats.mean_dev += d;
    ++n;
  }
  if (n) stats.mean_dev /= static_cast<double>(n);
  return stats;
}

}  // namespace
}  // namespace tqt

int main() {
  using namespace tqt;
  bench::print_header(
      "Figure 6: threshold deviations d = delta ceil(log2 t) during TQT retraining\n"
      "(per network, INT8 vs INT4; plus mean |log2 t| movement over first 100 steps)");
  for (ModelKind kind : bench::selected_models()) {
    std::printf("\n%s\n", model_name(kind).c_str());
    for (int bits : {8, 4}) {
      const DevStats s = run_one(kind, bits);
      std::printf("  INT%d  first-100-step mean |move| = %.3f   mean dev = %+.2f   hist:", bits,
                  s.first100_movement, s.mean_dev);
      for (const auto& [d, count] : s.hist) std::printf("  d=%+d:%d", d, count);
      std::printf("\n");
    }
  }
  std::printf("\nExpectation: INT8 shows larger positive deviations than INT4 (§6.2 —\n"
              "more precision bits let the method favor range; INT4 cuts range back).\n");
  return 0;
}
