// Reproduces paper Figure 7: gradients of the toy L2 loss with respect to the
// raw threshold (left), the log threshold (middle), and the normed log
// threshold (right) as functions of log2 t, for Gaussian(sigma) inputs with
// sigma in {1e-2, 1e-1, 1, 1e1, 1e2}.
//
// Checkable shape (Appendix B.2): neither raw nor log gradients are scale
// invariant — log-gradient magnitudes collapse for small log2 t and explode
// for large log2 t, and depend quadratically on sigma — while the normed
// gradient (gradient / sqrt(EMA variance), tanh-clipped) is a near-flat
// +/-1 step for every sigma.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "quant/toy_model.h"
#include "tensor/rng.h"

int main() {
  using namespace tqt;
  bench::print_header("Figure 7: threshold-gradient landscapes vs log2 t, Gaussian(sigma)");
  const QuantBits bits{8, true};
  const float sigmas[] = {1e-2f, 1e-1f, 1.0f, 1e1f, 1e2f};

  for (float sigma : sigmas) {
    Rng rng(3);
    const Tensor x = rng.normal_tensor({20000}, 0.0f, sigma);
    std::printf("\nsigma = %g\n", sigma);
    std::printf("%8s %16s %16s %16s\n", "log2 t", "raw dL/dt", "log dL/dlog2t", "normed");
    // Normed gradient: g / sqrt(EMA g^2); approximated here with the batch
    // second moment over the sweep (stationary), then tanh-clipped (Eq. 18).
    std::vector<double> raw, lg;
    std::vector<float> ts;
    for (float t = -10.0f; t <= 10.0f; t += 1.0f) {
      const ToyEval e = toy_l2_eval(x, bits, QuantMode::kTqt, t);
      ts.push_back(t);
      raw.push_back(e.grad_raw_t);
      lg.push_back(e.grad_log2_t);
    }
    double second = 0.0;
    for (double g : lg) second += g * g;
    second = std::sqrt(second / static_cast<double>(lg.size())) + 1e-12;
    for (size_t i = 0; i < ts.size(); ++i) {
      std::printf("%8.1f %16.6g %16.6g %16.3f\n", ts[i], raw[i], lg[i],
                  std::tanh(lg[i] / second));
    }
  }
  return 0;
}
