// Typed narrow-width engine vs the int64 reference interpreter, across the
// whole model zoo: single-thread throughput (img/s), estimated memory
// traffic (GB moved per 1k inferences), plan summary (arena slots, register
// widths), and a bit-exactness spot check per model. Emits one JSON report.
//
//   bench_engine_kernels [--batch N] [--iters N] [--smoke] [-o FILE]
//
// Runs with a 1-thread pool so the comparison isolates the kernel/storage
// work (thread scaling is bench_parallel_scaling's job). --smoke (or env
// TQT_FAST) shrinks iteration counts for CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "fixedpoint/engine.h"
#include "fixedpoint/kernels/kernels.h"
#include "fixedpoint/plan.h"
#include "graph_opt/quantize_pass.h"
#include "graph_opt/transforms.h"
#include "models/zoo.h"
#include "runtime/parallel.h"
#include "tensor/rng.h"

namespace {

using namespace tqt;

const char* flag_value(int argc, char** argv, const char* flag, const char* fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

FixedPointProgram make_program(ModelKind kind) {
  BuiltModel m = build_model(kind, 10, 11);
  Rng rng(11);
  m.graph.set_training(true);
  for (int i = 0; i < 10; ++i) {
    m.graph.run({{m.input, rng.normal_tensor({8, 16, 16, 3}, 0.2f, 1.0f)}}, m.logits);
  }
  m.graph.set_training(false);
  Tensor calib = rng.normal_tensor({16, 16, 16, 3}, 0.2f, 1.0f);
  optimize_for_quantization(m.graph, m.input, calib);
  QuantizeConfig qcfg;
  QuantizePassResult qres = quantize_pass(m.graph, m.input, m.logits, qcfg);
  calibrate_thresholds(m.graph, qres, m.input, calib, WeightInit::kMax);
  return compile_fixed_point(m.graph, m.input, qres.quantized_output);
}

template <typename Fn>
double time_once(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Best-of timing for two bodies, alternating short same-body blocks
/// (AAAA BBBB AAAA ...). Back-to-back runs inside a block keep each engine at
/// its steady-state cache footprint — what repeated inference actually looks
/// like — while alternating blocks spreads both bodies across the same time
/// windows, so a frequency dip or noisy neighbor cannot skew the ratio by
/// landing entirely on one side.
template <typename FnA, typename FnB>
std::pair<double, double> time_best_of_blocks(int iters, FnA&& a, FnB&& b) {
  constexpr int kBlock = 4;
  double best_a = 1e300, best_b = 1e300;
  for (int done = 0; done < iters; done += kBlock) {
    const int n = std::min(kBlock, iters - done);
    for (int i = 0; i < n; ++i) best_a = std::min(best_a, time_once(a));
    for (int i = 0; i < n; ++i) best_b = std::min(best_b, time_once(b));
  }
  return {best_a, best_b};
}

struct ModelResult {
  std::string name;
  double ref_imgs_per_s = 0.0;
  double typed_imgs_per_s = 0.0;
  double speedup = 0.0;
  double ref_gb_per_1k = 0.0;    // estimated activation+const traffic
  double typed_gb_per_1k = 0.0;
  int slots = 0;
  int registers = 0;
  int64_t arena_bytes = 0;
  bool bit_exact = false;
  std::string kernels;
};

std::string model_json(const ModelResult& r) {
  std::ostringstream os;
  os << "{\"model\": \"" << r.name << "\", \"reference_imgs_per_s\": " << r.ref_imgs_per_s
     << ", \"typed_imgs_per_s\": " << r.typed_imgs_per_s << ", \"speedup\": " << r.speedup
     << ", \"reference_gb_per_1k\": " << r.ref_gb_per_1k
     << ", \"typed_gb_per_1k\": " << r.typed_gb_per_1k << ", \"arena_slots\": " << r.slots
     << ", \"registers\": " << r.registers << ", \"arena_bytes\": " << r.arena_bytes
     << ", \"kernels\": \"" << r.kernels << "\", \"bit_exact\": "
     << (r.bit_exact ? "true" : "false") << "}";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = has_flag(argc, argv, "--smoke") || std::getenv("TQT_FAST") != nullptr;
  const int64_t batch = std::atoll(flag_value(argc, argv, "--batch", "16"));
  const int iters = std::atoi(flag_value(argc, argv, "--iters", smoke ? "2" : "5"));

  set_num_threads(1);  // isolate per-core kernel + storage effects

  Rng rng(7);
  const Tensor input = rng.normal_tensor({batch, 16, 16, 3}, 0.2f, 1.2f);

  std::vector<ModelResult> results;
  for (ModelKind kind : all_model_kinds()) {
    ModelResult r;
    r.name = model_name(kind);
    std::fprintf(stderr, "building %s program...\n", r.name.c_str());
    const FixedPointProgram prog = make_program(kind);

    const ExecPlan& plan = prog.plan();
    r.registers = prog.register_count();
    r.slots = plan.n_slots;
    r.kernels = fpk::active_kernels().name;

    // Bit-exactness spot check before timing anything.
    const IntTensor a = prog.run_raw(input);
    const IntTensor b = prog.run_raw_reference(input);
    r.bit_exact = a.shape == b.shape && a.exponent == b.exponent && a.data == b.data;

    ExecContext ctx;
    Tensor out;
    prog.run_into(input, ctx, out);  // warm the arena
    r.arena_bytes = ctx.arena_bytes();

    const auto [typed_s, ref_s] = time_best_of_blocks(
        iters, [&] { prog.run_into(input, ctx, out); },
        [&] { (void)prog.run_reference(input); });
    r.typed_imgs_per_s = static_cast<double>(batch) / typed_s;
    r.ref_imgs_per_s = static_cast<double>(batch) / ref_s;
    r.speedup = ref_s / typed_s;

    const TrafficEstimate traffic = estimate_traffic(prog, input.shape());
    const double per_img = 1.0 / static_cast<double>(batch);
    r.typed_gb_per_1k = static_cast<double>(traffic.typed_bytes) * per_img * 1000.0 / 1e9;
    r.ref_gb_per_1k = static_cast<double>(traffic.reference_bytes) * per_img * 1000.0 / 1e9;

    std::fprintf(stderr, "%-18s typed %8.1f img/s  ref %8.1f img/s  speedup %.2fx  %s\n",
                 r.name.c_str(), r.typed_imgs_per_s, r.ref_imgs_per_s, r.speedup,
                 r.bit_exact ? "bit-exact" : "MISMATCH");
    results.push_back(std::move(r));
  }
  set_num_threads(0);  // restore the TQT_NUM_THREADS / hardware default

  std::ostringstream os;
  os << "{\"bench\": \"engine_kernels\", \"batch\": " << batch << ", \"iters\": " << iters
     << ", \"threads\": 1, \"models\": [";
  for (size_t i = 0; i < results.size(); ++i) {
    if (i) os << ", ";
    os << model_json(results[i]);
  }
  int exact = 0, faster2x = 0;
  for (const ModelResult& r : results) {
    exact += r.bit_exact ? 1 : 0;
    faster2x += r.speedup >= 2.0 ? 1 : 0;
  }
  os << "], \"bit_exact_models\": " << exact << ", \"models_ge_2x\": " << faster2x << "}";
  const std::string json = os.str();
  std::printf("%s\n", json.c_str());

  if (const char* out = flag_value(argc, argv, "-o", nullptr)) {
    std::ofstream f(out, std::ios::trunc);
    f << json << "\n";
    std::fprintf(stderr, "wrote %s\n", out);
  }
  return (exact == static_cast<int>(results.size())) ? 0 : 1;
}
