// Typed narrow-width engine vs the int64 reference interpreter, across the
// whole model zoo: single-thread throughput (img/s), estimated memory
// traffic (GB moved per 1k inferences), plan summary (arena slots, register
// widths), and a bit-exactness spot check per model. Emits one JSON report.
//
//   bench_engine_kernels [--batch N] [--iters N] [--smoke] [--no-fuse]
//                        [-o FILE] [--export-dir DIR]
//
// Each model is compiled three times: with fusion forced off (the PR 3 typed
// engine), through the full graph compiler, and through the graph compiler
// with the kernel autotuner on (measured per-shape algo selection, possibly
// routing chains through the NC8HW8 blocked layout). All throughputs land in
// the report (`unfused_imgs_per_s`, `fused_speedup`, `tuned_speedup`), so the
// fusion and tuning wins are A/Bs inside one process rather than diffs across
// checkouts. --no-fuse (or TQT_FUSE=0) benches the unfused engine alone. A
// fourth arm re-compiles each model at 4/8 and times the nibble-packed
// Algo::kGemmS4 kernels against the s8 auto-pick on the same program — an
// interleaved best-of-blocks pair (`s4_vs_s8`), with its own int64-reference
// bit-exactness check. The process exits 1 when any model (8/8 or 4/8 pair)
// is not bit-exact OR when the tuned arm loses to static auto-pick beyond
// timing noise — the `--smoke` CI gate.
//
// --export-dir saves each model's compiled program to DIR/<model>.tqtp —
// cheap calibration-only artifacts for CLI / trace end-to-end checks.
//
// Runs with a 1-thread pool so the comparison isolates the kernel/storage
// work (thread scaling is bench_parallel_scaling's job). --smoke (or env
// TQT_FAST) shrinks iteration counts for CI.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "fixedpoint/autotune.h"
#include "fixedpoint/engine.h"
#include "fixedpoint/fuse.h"
#include "fixedpoint/kernels/kernels.h"
#include "fixedpoint/plan.h"
#include "models/zoo.h"
#include "observe/json.h"
#include "runtime/parallel.h"
#include "tensor/rng.h"

namespace {

using namespace tqt;

const char* flag_value(int argc, char** argv, const char* flag, const char* fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

template <typename Fn>
double time_once(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Best-of timing for two bodies, alternating short same-body blocks
/// (AAAA BBBB AAAA ...). Back-to-back runs inside a block keep each engine at
/// its steady-state cache footprint — what repeated inference actually looks
/// like — while alternating blocks spreads both bodies across the same time
/// windows, so a frequency dip or noisy neighbor cannot skew the ratio by
/// landing entirely on one side.
template <typename FnA, typename FnB>
std::pair<double, double> time_best_of_blocks(int iters, FnA&& a, FnB&& b) {
  constexpr int kBlock = 4;
  double best_a = 1e300, best_b = 1e300;
  for (int done = 0; done < iters; done += kBlock) {
    const int n = std::min(kBlock, iters - done);
    for (int i = 0; i < n; ++i) best_a = std::min(best_a, time_once(a));
    for (int i = 0; i < n; ++i) best_b = std::min(best_b, time_once(b));
  }
  return {best_a, best_b};
}

struct ModelResult {
  std::string name;
  double ref_imgs_per_s = 0.0;
  double typed_imgs_per_s = 0.0;     // fused engine (== unfused under --no-fuse)
  double unfused_imgs_per_s = 0.0;   // PR 3 typed engine, fusion forced off
  double speedup = 0.0;              // typed vs int64 reference
  double fused_speedup = 0.0;        // fused vs unfused typed
  double ref_gb_per_1k = 0.0;        // estimated activation+const traffic
  double typed_gb_per_1k = 0.0;
  int slots = 0;
  int registers = 0;
  int64_t arena_bytes = 0;        // unfused plan's warm arena
  int64_t fused_arena_bytes = 0;  // fused plan's warm arena
  int fused_matmuls = 0;
  double tuned_imgs_per_s = 0.0;  // autotuned engine (== typed under --no-fuse)
  double tuned_speedup = 0.0;     // tuned vs static auto-pick (both fused)
  int tuned_instrs = 0;           // instructions with a measured selection
  int blocked_instrs = 0;         // of those, NC8HW8 blocked-layout picks
  double s4_imgs_per_s = 0.0;     // 4/8 program, forced Algo::kGemmS4
  double s4_vs_s8 = 0.0;          // s4 vs the same 4/8 program on the s8 kernels
  int s4_instrs = 0;              // instructions retiring through the s4 GEMM
  bool s4_bit_exact = false;      // 4/8 pair vs its own int64 reference
  bool bit_exact = false;
  std::string kernels;
};

void write_model(observe::JsonWriter& w, const ModelResult& r) {
  w.obj();
  w.kv("model", r.name);
  w.kv("reference_imgs_per_s", r.ref_imgs_per_s);
  w.kv("typed_imgs_per_s", r.typed_imgs_per_s);
  w.kv("unfused_imgs_per_s", r.unfused_imgs_per_s);
  w.kv("speedup", r.speedup);
  w.kv("fused_speedup", r.fused_speedup);
  w.kv("reference_gb_per_1k", r.ref_gb_per_1k);
  w.kv("typed_gb_per_1k", r.typed_gb_per_1k);
  w.kv("arena_slots", r.slots);
  w.kv("registers", r.registers);
  w.kv("arena_bytes", static_cast<long long>(r.arena_bytes));
  w.kv("fused_arena_bytes", static_cast<long long>(r.fused_arena_bytes));
  w.kv("fused_matmuls", r.fused_matmuls);
  w.kv("tuned_imgs_per_s", r.tuned_imgs_per_s);
  w.kv("tuned_speedup", r.tuned_speedup);
  w.kv("tuned_instrs", r.tuned_instrs);
  w.kv("blocked_instrs", r.blocked_instrs);
  w.kv("s4_imgs_per_s", r.s4_imgs_per_s);
  w.kv("s4_vs_s8", r.s4_vs_s8);
  w.kv("s4_instrs", r.s4_instrs);
  w.kv("s4_bit_exact", r.s4_bit_exact);
  w.kv("kernels", r.kernels);
  w.kv("bit_exact", r.bit_exact);
  w.end();
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = has_flag(argc, argv, "--smoke") || std::getenv("TQT_FAST") != nullptr;
  const int64_t batch = std::atoll(flag_value(argc, argv, "--batch", "16"));
  const int iters = std::atoi(flag_value(argc, argv, "--iters", smoke ? "2" : "5"));
  const char* export_dir = flag_value(argc, argv, "--export-dir", nullptr);
  if (export_dir) std::filesystem::create_directories(export_dir);
  const char* fuse_env = std::getenv("TQT_FUSE");
  const bool no_fuse =
      has_flag(argc, argv, "--no-fuse") || (fuse_env && std::string(fuse_env) == "0");

  set_num_threads(1);  // isolate per-core kernel + storage effects

  Rng rng(7);
  const Tensor input = rng.normal_tensor({batch, 16, 16, 3}, 0.2f, 1.2f);

  std::vector<ModelResult> results;
  for (ModelKind kind : all_model_kinds()) {
    ModelResult r;
    r.name = model_name(kind);
    std::fprintf(stderr, "building %s program...\n", r.name.c_str());
    // Compile with fusion forced off: this is the PR 3 typed engine, the A
    // side of the A/B. The oracle output comes from its int64 reference
    // interpretation — the contract every later variant must hit bit-exactly.
    set_fusion_enabled(0);
    FixedPointProgram prog = bench::calibrated_program(kind);
    set_fusion_enabled(-1);

    r.registers = prog.register_count();
    r.kernels = fpk::active_kernels().name;
    const IntTensor oracle = prog.run_raw_reference(input);
    {
      const IntTensor a = prog.run_raw(input);
      r.bit_exact = a.shape == oracle.shape && a.exponent == oracle.exponent &&
                    a.data == oracle.data;
    }

    ExecContext ctx;
    Tensor out;
    prog.run_into(input, ctx, out);  // warm the arena
    r.arena_bytes = ctx.arena_bytes();

    const auto [unfused_s, ref_s] = time_best_of_blocks(
        iters, [&] { prog.run_into(input, ctx, out); },
        [&] { (void)prog.run_reference(input); });
    r.unfused_imgs_per_s = static_cast<double>(batch) / unfused_s;
    r.ref_imgs_per_s = static_cast<double>(batch) / ref_s;

    double typed_s = unfused_s;
    if (no_fuse) {
      r.fused_arena_bytes = r.arena_bytes;
      r.fused_speedup = 1.0;
      r.tuned_speedup = 1.0;
      r.tuned_imgs_per_s = r.unfused_imgs_per_s;
      r.s4_vs_s8 = 1.0;       // kGemmS4 is a fused-matmul algo; no arm to run
      r.s4_bit_exact = true;  // vacuously: nothing ran
    } else {
      // B side: a second instance of the same program compiled through the
      // graph compiler (the calibration cache makes the rebuild cheap, and
      // quantization is deterministic, so both instances carry identical
      // numerics). Keeping both programs alive lets the A/B ratio come from
      // ONE interleaved timing loop — the arms share the same time windows,
      // so machine-load drift between "the unfused phase" and "the fused
      // phase" cannot masquerade as a speedup or a regression.
      set_fusion_enabled(1);
      FixedPointProgram fprog = bench::calibrated_program(kind);
      set_fusion_enabled(-1);
      r.fused_matmuls = static_cast<int>(fprog.fusion_stats().fused_matmuls);

      const IntTensor a = fprog.run_raw(input);
      r.bit_exact = r.bit_exact && a.shape == oracle.shape &&
                    a.exponent == oracle.exponent && a.data == oracle.data;

      ExecContext fctx;
      fprog.run_into(input, fctx, out);
      r.fused_arena_bytes = fctx.arena_bytes();

      const auto [unfused2_s, fused_s] = time_best_of_blocks(
          iters, [&] { prog.run_into(input, ctx, out); },
          [&] { fprog.run_into(input, fctx, out); });
      typed_s = fused_s;
      // Best observed throughput for the point estimates; the ratio uses the
      // interleaved pair only, where both arms saw the same windows.
      r.unfused_imgs_per_s =
          static_cast<double>(batch) / std::min(unfused_s, unfused2_s);
      r.fused_speedup = unfused2_s / fused_s;

      // C side: the same fused program compiled with the autotuner on. The
      // tuner only swaps which exact kernel retires each fused matmul (and
      // may route chains through the NC8HW8 blocked layout), so this arm
      // must stay bit-exact while beating — or at worst matching, within
      // timing noise — the static auto-pick above.
      autotune::set_mode(1);
      FixedPointProgram tprog = bench::calibrated_program(kind);
      autotune::set_mode(-1);
      if (tprog.tuning()) {
        r.tuned_instrs = tprog.tuning()->tuned_instrs;
        r.blocked_instrs = tprog.tuning()->blocked_instrs;
      }

      const IntTensor tu = tprog.run_raw(input);
      r.bit_exact = r.bit_exact && tu.shape == oracle.shape &&
                    tu.exponent == oracle.exponent && tu.data == oracle.data;

      ExecContext tctx;
      tprog.run_into(input, tctx, out);
      // This pair feeds the tuned-may-not-lose CI gate, so it gets extra
      // alternating blocks even under --smoke: one noisy window landing on
      // the tuned arm must not read as a selection regression.
      const auto [fused2_s, tuned_s] = time_best_of_blocks(
          std::max(iters, 16), [&] { fprog.run_into(input, fctx, out); },
          [&] { tprog.run_into(input, tctx, out); });
      r.tuned_speedup = fused2_s / tuned_s;
      r.tuned_imgs_per_s = static_cast<double>(batch) / tuned_s;

      // D side: the INT4 weight path. Two instances of the same 4/8
      // (per-tensor) program — one on the static s8 auto-pick, one with every
      // nibble-packable matmul forced through Algo::kGemmS4 — timed as one
      // interleaved pair. The 4/8 numerics differ from the 8/8 oracle above,
      // so the pair carries its own int64-reference bit-exactness check.
      QuantizeConfig w4cfg;
      w4cfg.precision.wbits = 4;
      FixedPointProgram s8prog = bench::calibrated_program(kind, w4cfg);
      autotune::set_mode(1);
      autotune::set_forced_algo_for_test(static_cast<int>(fpk::Algo::kGemmS4));
      FixedPointProgram s4prog = bench::calibrated_program(kind, w4cfg);
      autotune::set_forced_algo_for_test(-1);
      autotune::set_mode(-1);
      autotune::reset_for_test();
      for (const auto& row : autotune::explain_kernels(s4prog)) {
        r.s4_instrs += row.algo == fpk::algo_name(fpk::Algo::kGemmS4) ? 1 : 0;
      }

      const IntTensor s4oracle = s8prog.run_raw_reference(input);
      const IntTensor s8out = s8prog.run_raw(input);
      const IntTensor s4out = s4prog.run_raw(input);
      r.s4_bit_exact = s8out.shape == s4oracle.shape && s8out.data == s4oracle.data &&
                       s4out.shape == s4oracle.shape && s4out.data == s4oracle.data &&
                       s8out.exponent == s4oracle.exponent &&
                       s4out.exponent == s4oracle.exponent;

      ExecContext s8ctx, s4ctx;
      s8prog.run_into(input, s8ctx, out);
      s4prog.run_into(input, s4ctx, out);
      const auto [s8_s, s4_s] = time_best_of_blocks(
          std::max(iters, 16), [&] { s8prog.run_into(input, s8ctx, out); },
          [&] { s4prog.run_into(input, s4ctx, out); });
      r.s4_vs_s8 = s8_s / s4_s;
      r.s4_imgs_per_s = static_cast<double>(batch) / s4_s;
    }
    r.typed_imgs_per_s = static_cast<double>(batch) / typed_s;
    r.speedup = (static_cast<double>(batch) / r.ref_imgs_per_s) / typed_s;

    const ExecPlan& plan = prog.plan();
    r.slots = plan.n_slots;
    if (export_dir) {
      const std::string path = std::string(export_dir) + "/" + r.name + ".tqtp";
      prog.save(path);
      std::fprintf(stderr, "exported %s\n", path.c_str());
    }

    const TrafficEstimate traffic = estimate_traffic(prog, input.shape());
    const double per_img = 1.0 / static_cast<double>(batch);
    r.typed_gb_per_1k = static_cast<double>(traffic.typed_bytes) * per_img * 1000.0 / 1e9;
    r.ref_gb_per_1k = static_cast<double>(traffic.reference_bytes) * per_img * 1000.0 / 1e9;

    std::fprintf(stderr,
                 "%-18s fused %8.1f img/s  unfused %8.1f img/s  (%.2fx)  tuned %8.1f img/s "
                 "(%.2fx, %d tuned/%d blocked)  ref %8.1f img/s  %s\n",
                 r.name.c_str(), r.typed_imgs_per_s, r.unfused_imgs_per_s, r.fused_speedup,
                 r.tuned_imgs_per_s, r.tuned_speedup, r.tuned_instrs, r.blocked_instrs,
                 r.ref_imgs_per_s, r.bit_exact ? "bit-exact" : "MISMATCH");
    results.push_back(std::move(r));
  }
  set_num_threads(0);  // restore the TQT_NUM_THREADS / hardware default

  // Tuned may not lose to static auto-pick: the measure-once tuner only ever
  // swaps in a kernel it timed as faster, so a real loss is a tuner bug. A 2%
  // floor absorbs wall-clock noise between the two interleaved arms.
  constexpr double kTunedNoiseFloor = 0.98;
  int exact = 0, faster2x = 0, arena_shrunk = 0, tuned_ok = 0, blocked_models = 0;
  int s4_exact = 0;
  double log_fused = 0.0, log_tuned = 0.0, log_s4 = 0.0;
  for (const ModelResult& r : results) {
    exact += r.bit_exact ? 1 : 0;
    faster2x += r.speedup >= 2.0 ? 1 : 0;
    arena_shrunk += r.fused_arena_bytes < r.arena_bytes ? 1 : 0;
    tuned_ok += r.tuned_speedup >= kTunedNoiseFloor ? 1 : 0;
    blocked_models += r.blocked_instrs > 0 ? 1 : 0;
    s4_exact += r.s4_bit_exact ? 1 : 0;
    log_fused += std::log(r.fused_speedup);
    log_tuned += std::log(r.tuned_speedup);
    log_s4 += std::log(r.s4_vs_s8);
  }
  const double fused_geomean =
      results.empty() ? 1.0 : std::exp(log_fused / static_cast<double>(results.size()));
  const double tuned_geomean =
      results.empty() ? 1.0 : std::exp(log_tuned / static_cast<double>(results.size()));
  const double s4_geomean =
      results.empty() ? 1.0 : std::exp(log_s4 / static_cast<double>(results.size()));

  observe::JsonWriter w;
  w.obj();
  w.kv("bench", "engine_kernels");
  w.kv("batch", static_cast<long long>(batch));
  w.kv("iters", iters);
  w.kv("threads", 1);
  w.kv("fusion", no_fuse ? "off" : "on");
  w.key("models").arr();
  for (const ModelResult& r : results) write_model(w, r);
  w.end();
  w.kv("bit_exact_models", exact);
  w.kv("models_ge_2x", faster2x);
  w.kv("fused_speedup_geomean", fused_geomean);
  w.kv("tuned_speedup_geomean", tuned_geomean);
  w.kv("models_tuned_ge_static", tuned_ok);
  w.kv("models_blocked_selected", blocked_models);
  w.kv("models_arena_shrunk", arena_shrunk);
  w.kv("s4_vs_s8_geomean", s4_geomean);
  w.kv("models_s4_bit_exact", s4_exact);
  w.end();
  bench::emit_report(w.str(), flag_value(argc, argv, "-o", nullptr));
  if (tuned_ok != static_cast<int>(results.size())) {
    std::fprintf(stderr, "FAIL: tuned engine lost to static auto-pick on %d model(s)\n",
                 static_cast<int>(results.size()) - tuned_ok);
    return 1;
  }
  if (s4_exact != static_cast<int>(results.size())) {
    std::fprintf(stderr, "FAIL: int4 pair not bit-exact on %d model(s)\n",
                 static_cast<int>(results.size()) - s4_exact);
    return 1;
  }
  return (exact == static_cast<int>(results.size())) ? 0 : 1;
}
