// Extension study (paper §7 future work): per-channel TRAINED thresholds.
//
// The paper: "Some additional relaxations of our constraints we could explore
// include per-channel rather than per-tensor quantization, which could
// potentially allow for more aggressive bitwidths on difficult networks like
// MobileNets." This bench implements that relaxation — each weight channel
// gets its own trained log2-threshold (per-channel TQT, real scaling) — and
// compares against per-tensor TQT at INT8 and INT4 on the MobileNets.
//
// Expected shape: at INT8 per-channel adds little (per-tensor TQT already
// recovers); at INT4 per-tensor is dead while per-channel recovers much of
// the gap — validating the paper's conjecture.
#include "bench_util.h"

namespace tqt {
namespace {

double run_trial(ModelKind kind, int bits, bool per_channel) {
  const auto& data = bench::shared_dataset();
  const auto state = bench::pretrained(kind);
  QuantTrialConfig cfg;
  cfg.mode = TrialMode::kRetrainWtTh;
  cfg.quant.precision.wbits = bits;
  if (per_channel) {
    cfg.quant.precision.per_channel_weights = true;
    cfg.quant.emulate_intermediates = false;
    cfg.quant.power_of_2 = false;
  }
  cfg.schedule = default_retrain_schedule(bench::fast_mode() ? 1.0f : 4.0f);
  return run_quant_trial(kind, state, data, cfg).accuracy.top1();
}

}  // namespace
}  // namespace tqt

int main() {
  using namespace tqt;
  bench::print_header(
      "Extension (§7): per-channel TRAINED thresholds vs per-tensor TQT\n"
      "wt+th retraining; per-channel uses real scaling (no p-of-2 constraint)");
  std::printf("\n%-22s %8s %16s %18s\n", "network", "FP32", "per-tensor TQT", "per-channel TQT");
  for (ModelKind kind : {ModelKind::kMiniMobileNetV1, ModelKind::kMiniMobileNetV2}) {
    const double fp32 =
        eval_fp32(kind, bench::pretrained(kind), bench::shared_dataset()).top1();
    for (int bits : {8, 4}) {
      std::printf("%-17s INT%d %8.1f %16.1f %18.1f\n", model_name(kind).c_str(), bits,
                  bench::pct(fp32), bench::pct(run_trial(kind, bits, false)),
                  bench::pct(run_trial(kind, bits, true)));
    }
  }
  std::printf("\nExpectation: per-channel ~ per-tensor at INT8; at INT4 per-tensor is dead\n"
              "while per-channel recovers a large part of the gap (the paper's conjecture).\n");
  return 0;
}
