// Reproduces paper Figure 8: threshold training on the toy L2 loss for 2000
// steps with learning rate 0.1, comparing four optimizer/parameterization
// combinations — raw-gradient SGD, log-gradient SGD, normed-log-gradient SGD
// (Eqs. 17-18) and log-gradient Adam — across bit-widths b in {4, 8} and
// Gaussian(sigma) inputs with sigma from 1e-2 to 1e2. Reports the trajectory
// summary (start, final, drift band over the last 200 steps) and the
// empirical gradient ratio r_g (Appendix C).
//
// Checkable shape: raw SGD diverges/stalls away from sigma ~ 1; log SGD
// crawls for small sigma and is unstable for large sigma; normed-log SGD and
// log Adam converge for every sigma and stay within ~one integer bin.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "quant/toy_model.h"

int main() {
  using namespace tqt;
  bench::print_header("Figure 8: toy L2 threshold training across optimizers, b x sigma sweep");
  const int bit_widths[] = {4, 8};
  const float sigmas[] = {1e-2f, 1e-1f, 1.0f, 1e1f, 1e2f};
  struct OptCase {
    ToyOptimizer opt;
    const char* name;
  } opts[] = {
      {ToyOptimizer::kRawSgd, "raw grad  - SGD"},
      {ToyOptimizer::kLogSgd, "log grad  - SGD"},
      {ToyOptimizer::kNormedLogSgd, "norm log  - SGD"},
      {ToyOptimizer::kLogAdam, "log grad  - Adam"},
  };

  for (int b : bit_widths) {
    for (float sigma : sigmas) {
      ToyRunConfig cfg;
      cfg.bits = {b, true};
      cfg.sigma = sigma;
      cfg.steps = bench::fast_mode() ? 400 : 2000;
      cfg.lr = 0.1f;
      // Initialize one bin above the data scale, like the paper's plots.
      cfg.log2_t0 = std::log2(sigma) + 3.0f;
      std::printf("\nb = %d, sigma = %-6g (log2_t0 = %.2f)\n", b, sigma, cfg.log2_t0);
      std::printf("  %-18s %10s %10s %12s %8s\n", "optimizer", "final", "band", "|final-opt|",
                  "r_g");
      // Reference optimum from Adam (the paper's recommended configuration).
      ToyRunConfig ref_cfg = cfg;
      ref_cfg.lr = 0.01f;
      const float reference = run_toy_training(ref_cfg, ToyOptimizer::kLogAdam).final_log2_t;
      for (const OptCase& oc : opts) {
        const ToyRunResult r = run_toy_training(cfg, oc.opt);
        float lo = r.final_log2_t, hi = r.final_log2_t;
        const size_t tail = std::min<size_t>(200, r.log2_t.size());
        for (size_t i = r.log2_t.size() - tail; i < r.log2_t.size(); ++i) {
          lo = std::min(lo, r.log2_t[i]);
          hi = std::max(hi, r.log2_t[i]);
        }
        std::printf("  %-18s %10.3f %10.3f %12.3f %8.1f\n", oc.name, r.final_log2_t, hi - lo,
                    std::fabs(r.final_log2_t - reference), r.empirical_rg);
      }
    }
  }
  return 0;
}
