// Load generator for the tqt-serve subsystem: N closed-loop client threads
// hammer one deployed model with single-sample requests; the micro-batcher
// coalesces them and the fixed-point engine executes batches on the
// runtime/parallel thread pool. Run once with a 1-thread pool and once with
// a 4-thread pool, and report a JSON throughput/latency comparison — the
// serving counterpart of bench_parallel_scaling.
//
//   bench_serve_throughput [--model NAME] [--clients N] [--requests N]
//                          [--max-batch B] [--delay-us D] [--smoke] [-o FILE]
//
// --smoke (or env TQT_FAST) shrinks the request count for CI. Note the
// speedup is only meaningful on a machine with >= 4 cores; the JSON records
// hardware_concurrency so a 1-core CI box is not mistaken for a regression.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "fixedpoint/engine.h"
#include "models/zoo.h"
#include "observe/json.h"
#include "runtime/parallel.h"
#include "serve/server.h"
#include "tensor/rng.h"

namespace {

using namespace tqt;

const char* flag_value(int argc, char** argv, const char* flag, const char* fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

struct PhaseResult {
  int threads = 0;
  double seconds = 0.0;
  double throughput_rps = 0.0;
  serve::StatsSnapshot stats;
};

PhaseResult run_phase(const FixedPointProgram& prog, int pool_threads, int clients,
                      int64_t total_requests, const serve::ServerConfig& scfg) {
  set_num_threads(pool_threads);
  serve::InferenceServer server(scfg);
  server.deploy("bench", prog, {16, 16, 3});

  Rng rng(7);
  const Tensor sample = rng.normal_tensor({1, 16, 16, 3}, 0.2f, 1.2f);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int64_t i = c; i < total_requests; i += clients) {
        serve::SubmitResult res;
        for (;;) {
          res = server.submit("bench", sample);
          if (res.status != serve::SubmitStatus::kShed) break;
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
        if (res.status != serve::SubmitStatus::kOk) return;
        res.response.get();
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  server.shutdown_and_drain();

  PhaseResult r;
  r.threads = pool_threads;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.throughput_rps = static_cast<double>(total_requests) / r.seconds;
  r.stats = server.stats("bench");
  return r;
}

void write_phase(observe::JsonWriter& w, const PhaseResult& r) {
  w.obj();
  w.kv("threads", r.threads);
  w.kv("seconds", r.seconds);
  w.kv("throughput_rps", r.throughput_rps);
  w.kv("p50_us", static_cast<long long>(r.stats.p50_us));
  w.kv("p95_us", static_cast<long long>(r.stats.p95_us));
  w.kv("p99_us", static_cast<long long>(r.stats.p99_us));
  w.kv("shed", static_cast<long long>(r.stats.shed));
  w.kv("batches", static_cast<long long>(r.stats.batches));
  w.kv("mean_batch", r.stats.mean_batch());
  w.end();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string model = flag_value(argc, argv, "--model", "mini_vgg");
  const bool smoke = has_flag(argc, argv, "--smoke") || std::getenv("TQT_FAST") != nullptr;
  const int clients = std::atoi(flag_value(argc, argv, "--clients", "16"));
  const int64_t total = std::atoll(flag_value(argc, argv, "--requests", smoke ? "256" : "2000"));

  ModelKind kind = ModelKind::kMiniVgg;
  for (ModelKind k : all_model_kinds()) {
    if (model_name(k) == model) kind = k;
  }

  std::fprintf(stderr, "building %s program...\n", model_name(kind).c_str());
  const FixedPointProgram prog = bench::calibrated_program(kind);

  serve::ServerConfig scfg;
  scfg.batch.max_batch = std::atoll(flag_value(argc, argv, "--max-batch", "16"));
  scfg.batch.max_delay_us = std::atoll(flag_value(argc, argv, "--delay-us", "200"));
  scfg.batch.max_queue = 1024;

  std::vector<PhaseResult> phases;
  for (const int threads : {1, 4}) {
    std::fprintf(stderr, "phase: pool=%d threads, %d clients, %lld requests\n", threads,
                 clients, static_cast<long long>(total));
    phases.push_back(run_phase(prog, threads, clients, total, scfg));
  }
  set_num_threads(0);  // restore the TQT_NUM_THREADS / hardware default

  observe::JsonWriter w;
  w.obj();
  w.kv("bench", "serve_throughput");
  w.kv("model", model_name(kind));
  w.kv("clients", clients);
  w.kv("requests_per_phase", static_cast<long long>(total));
  w.kv("max_batch", static_cast<long long>(scfg.batch.max_batch));
  w.kv("max_delay_us", static_cast<long long>(scfg.batch.max_delay_us));
  w.kv("hardware_concurrency", std::thread::hardware_concurrency());
  w.key("phases").arr();
  write_phase(w, phases[0]);
  write_phase(w, phases[1]);
  w.end();
  w.kv("speedup_4_over_1", phases[1].throughput_rps / phases[0].throughput_rps);
  w.end();
  bench::emit_report(w.str(), flag_value(argc, argv, "-o", nullptr));
  return 0;
}
