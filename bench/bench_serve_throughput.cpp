// Load generator for the tqt-serve subsystem: N closed-loop client threads
// hammer one deployed model with single-sample requests; the micro-batcher
// coalesces them and the fixed-point engine executes batches on the
// runtime/parallel thread pool. Run once with a 1-thread pool and once with
// a 4-thread pool, and report a JSON throughput/latency comparison — the
// serving counterpart of bench_parallel_scaling.
//
//   bench_serve_throughput [--model NAME] [--clients N] [--requests N]
//                          [--max-batch B] [--delay-us D] [--smoke] [-o FILE]
//
// --smoke (or env TQT_FAST) shrinks the request count for CI. Note the
// speedup is only meaningful on a machine with >= 4 cores; the JSON records
// hardware_concurrency so a 1-core CI box is not mistaken for a regression.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fixedpoint/engine.h"
#include "graph_opt/quantize_pass.h"
#include "graph_opt/transforms.h"
#include "models/zoo.h"
#include "runtime/parallel.h"
#include "serve/server.h"
#include "tensor/rng.h"

namespace {

using namespace tqt;

const char* flag_value(int argc, char** argv, const char* flag, const char* fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

FixedPointProgram make_program(ModelKind kind) {
  BuiltModel m = build_model(kind, 10, 11);
  Rng rng(11);
  m.graph.set_training(true);
  for (int i = 0; i < 10; ++i) {
    m.graph.run({{m.input, rng.normal_tensor({8, 16, 16, 3}, 0.2f, 1.0f)}}, m.logits);
  }
  m.graph.set_training(false);
  Tensor calib = rng.normal_tensor({16, 16, 16, 3}, 0.2f, 1.0f);
  optimize_for_quantization(m.graph, m.input, calib);
  QuantizeConfig qcfg;
  QuantizePassResult qres = quantize_pass(m.graph, m.input, m.logits, qcfg);
  calibrate_thresholds(m.graph, qres, m.input, calib, WeightInit::kMax);
  return compile_fixed_point(m.graph, m.input, qres.quantized_output);
}

struct PhaseResult {
  int threads = 0;
  double seconds = 0.0;
  double throughput_rps = 0.0;
  serve::StatsSnapshot stats;
};

PhaseResult run_phase(const FixedPointProgram& prog, int pool_threads, int clients,
                      int64_t total_requests, const serve::ServerConfig& scfg) {
  set_num_threads(pool_threads);
  serve::InferenceServer server(scfg);
  server.deploy("bench", prog, {16, 16, 3});

  Rng rng(7);
  const Tensor sample = rng.normal_tensor({1, 16, 16, 3}, 0.2f, 1.2f);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int64_t i = c; i < total_requests; i += clients) {
        serve::SubmitResult res;
        for (;;) {
          res = server.submit("bench", sample);
          if (res.status != serve::SubmitStatus::kShed) break;
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
        if (res.status != serve::SubmitStatus::kOk) return;
        res.response.get();
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  server.shutdown_and_drain();

  PhaseResult r;
  r.threads = pool_threads;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.throughput_rps = static_cast<double>(total_requests) / r.seconds;
  r.stats = server.stats("bench");
  return r;
}

std::string phase_json(const PhaseResult& r) {
  std::ostringstream os;
  os << "{\"threads\": " << r.threads << ", \"seconds\": " << r.seconds
     << ", \"throughput_rps\": " << r.throughput_rps
     << ", \"p50_us\": " << r.stats.p50_us << ", \"p95_us\": " << r.stats.p95_us
     << ", \"p99_us\": " << r.stats.p99_us << ", \"shed\": " << r.stats.shed
     << ", \"batches\": " << r.stats.batches << ", \"mean_batch\": " << r.stats.mean_batch()
     << "}";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string model = flag_value(argc, argv, "--model", "mini_vgg");
  const bool smoke = has_flag(argc, argv, "--smoke") || std::getenv("TQT_FAST") != nullptr;
  const int clients = std::atoi(flag_value(argc, argv, "--clients", "16"));
  const int64_t total = std::atoll(flag_value(argc, argv, "--requests", smoke ? "256" : "2000"));

  ModelKind kind = ModelKind::kMiniVgg;
  for (ModelKind k : all_model_kinds()) {
    if (model_name(k) == model) kind = k;
  }

  std::fprintf(stderr, "building %s program...\n", model_name(kind).c_str());
  const FixedPointProgram prog = make_program(kind);

  serve::ServerConfig scfg;
  scfg.batch.max_batch = std::atoll(flag_value(argc, argv, "--max-batch", "16"));
  scfg.batch.max_delay_us = std::atoll(flag_value(argc, argv, "--delay-us", "200"));
  scfg.batch.max_queue = 1024;

  std::vector<PhaseResult> phases;
  for (const int threads : {1, 4}) {
    std::fprintf(stderr, "phase: pool=%d threads, %d clients, %lld requests\n", threads,
                 clients, static_cast<long long>(total));
    phases.push_back(run_phase(prog, threads, clients, total, scfg));
  }
  set_num_threads(0);  // restore the TQT_NUM_THREADS / hardware default

  std::ostringstream os;
  os << "{\"bench\": \"serve_throughput\", \"model\": \"" << model_name(kind)
     << "\", \"clients\": " << clients << ", \"requests_per_phase\": " << total
     << ", \"max_batch\": " << scfg.batch.max_batch
     << ", \"max_delay_us\": " << scfg.batch.max_delay_us
     << ", \"hardware_concurrency\": " << std::thread::hardware_concurrency()
     << ", \"phases\": [" << phase_json(phases[0]) << ", " << phase_json(phases[1])
     << "], \"speedup_4_over_1\": "
     << phases[1].throughput_rps / phases[0].throughput_rps << "}";
  const std::string json = os.str();
  std::printf("%s\n", json.c_str());

  if (const char* out = flag_value(argc, argv, "-o", nullptr)) {
    std::ofstream f(out, std::ios::trunc);
    f << json << "\n";
    std::fprintf(stderr, "wrote %s\n", out);
  }
  return 0;
}
