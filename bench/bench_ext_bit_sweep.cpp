// Extension study: accuracy vs weight bit-width under TQT.
//
// The paper evaluates 8/8 and 4/8 (W/A). This sweep fills in the curve for
// W in {2..8} with 8-bit activations, wt+th retraining, per-tensor p-of-2,
// on an easy network (mini-inception) and a hard one (mini-mobilenet-v1) —
// locating where each architecture's per-tensor cliff is.
#include "bench_util.h"

int main() {
  using namespace tqt;
  bench::print_header("Extension: accuracy vs weight bit-width (TQT wt+th, A=8)");
  const auto& data = bench::shared_dataset();
  const float epochs = bench::fast_mode() ? 1.0f : 4.0f;
  for (ModelKind kind : {ModelKind::kMiniInception, ModelKind::kMiniMobileNetV1}) {
    const auto state = bench::pretrained(kind);
    std::printf("\n%s  (FP32 = %.1f)\n", model_name(kind).c_str(),
                bench::pct(eval_fp32(kind, state, data).top1()));
    std::printf("  %-6s %8s\n", "W bits", "top-1");
    for (int bits = 8; bits >= 2; --bits) {
      QuantTrialConfig cfg;
      cfg.mode = TrialMode::kRetrainWtTh;
      cfg.quant.precision.wbits = bits;
      cfg.schedule = default_retrain_schedule(epochs);
      const TrialOutput out = run_quant_trial(kind, state, data, cfg);
      std::printf("  %-6d %8.1f\n", bits, bench::pct(out.accuracy.top1()));
    }
  }
  std::printf("\nNote: first/last layers stay at INT8 below 8 bits (§6.1), so the W=2..4\n"
              "rows quantize only the interior layers aggressively.\n");
  return 0;
}
