// Ablation: incremental threshold freezing (§5.2).
//
// With power-of-2 scaling a converged threshold oscillates around its
// critical integer; every crossing re-scales a layer and disturbs downstream
// layers. The paper's training scripts freeze thresholds incrementally once
// they settle. We retrain MobileNet-v1 INT8 wt+th with freezing ON and OFF
// (constant threshold lr 1e-2 — the worst case, no decay to hide behind),
// then run a hooked continuation phase counting integer-bin crossings.
#include <cmath>

#include "bench_util.h"
#include "graph_opt/quantize_pass.h"

int main() {
  using namespace tqt;
  bench::print_header("Ablation: incremental threshold freezing (§5.2), MobileNet-v1 INT8 wt+th");
  const auto& data = bench::shared_dataset();
  const ModelKind kind = ModelKind::kMiniMobileNetV1;
  const auto state = bench::pretrained(kind);
  const float epochs = bench::fast_mode() ? 2.0f : 6.0f;

  std::printf("\n%-10s %10s %22s %12s\n", "freezing", "top-1", "late bin crossings", "frozen");
  for (bool freeze : {true, false}) {
    QuantTrialConfig cfg;
    cfg.mode = TrialMode::kRetrainWtTh;
    cfg.schedule = default_retrain_schedule(epochs);
    cfg.schedule.threshold_lr = LrSchedule::constant(1e-2f);
    cfg.schedule.threshold_freeze_start = freeze ? 64 : -1;
    cfg.schedule.threshold_freeze_interval = 4;
    cfg.schedule.restore_best = false;
    TrialOutput out = run_quant_trial(kind, state, data, cfg);

    // Continuation phase on the converged graph, with a hook that counts
    // integer-bin crossings of every scalar threshold per step.
    std::vector<ParamPtr> thresholds;
    for (const auto& th : threshold_params(out.model.graph, out.qres)) {
      if (th->value.numel() == 1) thresholds.push_back(th);
    }
    std::vector<float> bins(thresholds.size());
    for (size_t i = 0; i < thresholds.size(); ++i) bins[i] = std::ceil(thresholds[i]->value[0]);
    int64_t crossings = 0;
    TrainSchedule cont = cfg.schedule;
    cont.epochs = epochs / 2.0f;
    cont.validate_every = 0;
    cont.on_step = [&](int64_t) {
      for (size_t i = 0; i < thresholds.size(); ++i) {
        const float b = std::ceil(thresholds[i]->value[0]);
        if (b != bins[i]) {
          ++crossings;
          bins[i] = b;
        }
      }
    };
    train_graph(out.model.graph, out.model.input, out.qres.quantized_output, data, cont);

    const Accuracy acc =
        evaluate_graph(out.model.graph, out.model.input, out.qres.quantized_output, data);
    int64_t frozen = 0;
    for (const auto& th : thresholds) {
      if (!th->trainable) ++frozen;
    }
    std::printf("%-10s %10.1f %22lld %8lld/%zu\n", freeze ? "on" : "off",
                bench::pct(acc.top1()), static_cast<long long>(crossings),
                static_cast<long long>(frozen), thresholds.size());
  }
  std::printf(
      "\nExpectation: freezing suppresses late bin-crossing churn at equal or better\n"
      "accuracy — the motivation given in §5.2.\n");
  return 0;
}
