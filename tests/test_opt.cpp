// Tests for optimizers and learning-rate schedules.
#include <gtest/gtest.h>

#include <cmath>

#include "opt/optimizer.h"
#include "tensor/rng.h"

namespace tqt {
namespace {

ParamPtr quad_param(float x0, const std::string& group = "weight") {
  return std::make_shared<Param>("p", Tensor::scalar(x0), group);
}

/// One step of dL/dx for L = 0.5*(x - target)^2.
void quad_grad(Param& p, float target) {
  p.zero_grad();
  p.grad[0] = p.value[0] - target;
}

TEST(LrSchedule, ConstantWhenNoPeriod) {
  LrSchedule s = LrSchedule::constant(0.5f);
  EXPECT_FLOAT_EQ(s.at(0), 0.5f);
  EXPECT_FLOAT_EQ(s.at(100000), 0.5f);
}

TEST(LrSchedule, StaircaseDecay) {
  LrSchedule s{1.0f, 0.5f, 10, true};
  EXPECT_FLOAT_EQ(s.at(0), 1.0f);
  EXPECT_FLOAT_EQ(s.at(9), 1.0f);
  EXPECT_FLOAT_EQ(s.at(10), 0.5f);
  EXPECT_FLOAT_EQ(s.at(25), 0.25f);
}

TEST(LrSchedule, SmoothDecay) {
  LrSchedule s{1.0f, 0.5f, 10, false};
  EXPECT_NEAR(s.at(5), std::pow(0.5, 0.5), 1e-6);
}

TEST(Sgd, ConvergesOnQuadratic) {
  auto p = quad_param(10.0f);
  Sgd opt({p});
  opt.set_default_schedule(LrSchedule::constant(0.1f));
  for (int i = 0; i < 200; ++i) {
    quad_grad(*p, 3.0f);
    opt.step();
  }
  EXPECT_NEAR(p->value[0], 3.0f, 1e-4f);
  EXPECT_EQ(opt.step_count(), 200);
}

TEST(Sgd, MomentumAcceleratesIllConditioned) {
  // On a stiff quadratic, momentum reaches the optimum in fewer steps.
  auto run = [](float momentum) {
    auto p = quad_param(10.0f);
    Sgd opt({p}, momentum);
    opt.set_default_schedule(LrSchedule::constant(0.01f));
    int steps = 0;
    while (std::fabs(p->value[0]) > 0.01f && steps < 5000) {
      quad_grad(*p, 0.0f);
      opt.step();
      ++steps;
    }
    return steps;
  };
  EXPECT_LT(run(0.9f), run(0.0f));
}

TEST(Sgd, SkipsNonTrainable) {
  auto p = quad_param(1.0f);
  p->trainable = false;
  Sgd opt({p});
  quad_grad(*p, 0.0f);
  opt.step();
  EXPECT_FLOAT_EQ(p->value[0], 1.0f);
}

TEST(Adam, FirstStepMagnitudeIsLr) {
  // With bias correction, the first Adam update is exactly lr * sign(g).
  auto p = quad_param(5.0f);
  Adam opt({p});
  opt.set_default_schedule(LrSchedule::constant(0.1f));
  quad_grad(*p, 0.0f);
  opt.step();
  EXPECT_NEAR(p->value[0], 5.0f - 0.1f, 1e-5f);
}

TEST(Adam, GradientScaleInvariance) {
  // Appendix B: Adam's built-in norming makes updates insensitive to a
  // constant gradient scale — the property that rescues log-threshold
  // training across input scales.
  auto run = [](float scale) {
    auto p = quad_param(1.0f);
    Adam opt({p});
    opt.set_default_schedule(LrSchedule::constant(0.01f));
    for (int i = 0; i < 50; ++i) {
      p->zero_grad();
      p->grad[0] = scale * (p->value[0] - 0.0f);
      opt.step();
    }
    return p->value[0];
  };
  EXPECT_NEAR(run(1.0f), run(1000.0f), 1e-3f);
  EXPECT_NEAR(run(1.0f), run(0.001f), 1e-3f);
}

TEST(Adam, ConvergesOnQuadratic) {
  auto p = quad_param(-4.0f);
  Adam opt({p});
  opt.set_default_schedule(LrSchedule::constant(0.05f));
  for (int i = 0; i < 2000; ++i) {
    quad_grad(*p, 2.0f);
    opt.step();
  }
  EXPECT_NEAR(p->value[0], 2.0f, 0.01f);
}

TEST(RmsProp, ConvergesOnQuadratic) {
  auto p = quad_param(4.0f);
  RmsProp opt({p}, 0.99f);
  opt.set_default_schedule(LrSchedule::constant(0.05f));
  for (int i = 0; i < 2000; ++i) {
    quad_grad(*p, -1.0f);
    opt.step();
  }
  EXPECT_NEAR(p->value[0], -1.0f, 0.05f);
}

TEST(NormedSgd, UpdatesBoundedByLr) {
  // Eq. (18): |g~| <= 1, so every update moves at most lr.
  auto p = quad_param(0.0f);
  NormedSgd opt({p});
  opt.set_default_schedule(LrSchedule::constant(0.02f));
  Rng rng(3);
  float prev = p->value[0];
  for (int i = 0; i < 100; ++i) {
    p->zero_grad();
    p->grad[0] = rng.normal(0.0f, 1000.0f);  // wild gradient scales
    opt.step();
    EXPECT_LE(std::fabs(p->value[0] - prev), 0.02f + 1e-7f);
    prev = p->value[0];
  }
}

TEST(NormedSgd, ConvergesOnQuadratic) {
  auto p = quad_param(3.0f);
  NormedSgd opt({p});
  opt.set_default_schedule(LrSchedule::constant(0.05f));
  for (int i = 0; i < 2000; ++i) {
    quad_grad(*p, 1.0f);
    opt.step();
  }
  EXPECT_NEAR(p->value[0], 1.0f, 0.1f);
}

TEST(Optimizer, GroupSchedules) {
  // The paper's setup: thresholds train fast, weights train slowly.
  auto w = quad_param(1.0f, "weight");
  auto t = quad_param(1.0f, "threshold");
  Sgd opt({w, t});
  opt.set_group_schedule("weight", LrSchedule::constant(1e-3f));
  opt.set_group_schedule("threshold", LrSchedule::constant(1e-1f));
  quad_grad(*w, 0.0f);
  quad_grad(*t, 0.0f);
  opt.step();
  EXPECT_NEAR(w->value[0], 1.0f - 1e-3f, 1e-7f);
  EXPECT_NEAR(t->value[0], 1.0f - 1e-1f, 1e-6f);
}

TEST(Optimizer, DefaultScheduleForUnknownGroup) {
  auto p = quad_param(1.0f, "exotic");
  Sgd opt({p});
  opt.set_default_schedule(LrSchedule::constant(0.5f));
  quad_grad(*p, 0.0f);
  opt.step();
  EXPECT_NEAR(p->value[0], 0.5f, 1e-6f);
}

TEST(Optimizer, RejectsNullParam) {
  EXPECT_THROW(Sgd({nullptr}), std::invalid_argument);
}

}  // namespace
}  // namespace tqt
