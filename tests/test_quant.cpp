// Tests for the TQT quantizer core: forward semantics (Eq. 4), backward
// gradient formulations (Eqs. 6-8 and the baselines of §3.5), calibrators
// (Table 2), threshold freezing (§5.2), and the toy L2 model (§3.4, App. B).
#include <gtest/gtest.h>

#include <cmath>

#include "quant/calibrate.h"
#include "quant/fake_quant.h"
#include "quant/freeze.h"
#include "quant/toy_model.h"
#include "quant/unfused.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace tqt {
namespace {

Tensor fq_forward(FakeQuantOp& op, const Tensor& x) {
  std::vector<const Tensor*> ins{&x};
  return op.forward(ins);
}

// ---- Forward semantics -------------------------------------------------------

TEST(FakeQuant, SignedScaleFromThreshold) {
  // b=3, t=1.0: s = 2^ceil(log2 1) / 2^2 = 0.25 (paper Fig. 1 example).
  auto th = make_threshold("t", 0.0f);
  FakeQuantOp q(QuantSpec{3, true}, QuantMode::kTqt, th);
  EXPECT_EQ(q.exponent(), -2);
  EXPECT_FLOAT_EQ(q.scale(), 0.25f);
  EXPECT_FLOAT_EQ(q.raw_threshold(), 1.0f);
}

TEST(FakeQuant, CeilBiasesScaleOutward) {
  // t = 1.1 -> ceil(log2 t) = 1 -> saturation threshold 2, not 1.1.
  auto th = make_threshold("t", std::log2(1.1f));
  FakeQuantOp q(QuantSpec{3, true}, QuantMode::kTqt, th);
  EXPECT_FLOAT_EQ(q.scale(), 0.5f);
}

TEST(FakeQuant, SignedClipLimits) {
  auto th = make_threshold("t", 0.0f);
  FakeQuantOp q(QuantSpec{3, true}, QuantMode::kTqt, th);  // s = 0.25, n = -4, p = 3
  Tensor x({4}, {-10.0f, 10.0f, -1.0f, 0.74f});
  Tensor y = fq_forward(q, x);
  EXPECT_FLOAT_EQ(y[0], -1.0f);   // clipped to n*s
  EXPECT_FLOAT_EQ(y[1], 0.75f);   // clipped to p*s
  EXPECT_FLOAT_EQ(y[2], -1.0f);   // exactly representable
  EXPECT_FLOAT_EQ(y[3], 0.75f);   // rounds to 3*s
}

TEST(FakeQuant, UnsignedClipLimits) {
  auto th = make_threshold("t", 0.0f);
  FakeQuantOp q(QuantSpec{3, false}, QuantMode::kTqt, th);  // s = 1/8, n = 0, p = 7
  EXPECT_FLOAT_EQ(q.scale(), 0.125f);
  Tensor x({3}, {-0.5f, 0.4f, 5.0f});
  Tensor y = fq_forward(q, x);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.375f);
  EXPECT_FLOAT_EQ(y[2], 0.875f);  // p*s
}

TEST(FakeQuant, BankersRoundingAtTies) {
  auto th = make_threshold("t", 0.0f);
  FakeQuantOp q(QuantSpec{3, true}, QuantMode::kTqt, th);  // s = 0.25
  // x/s = 0.5 -> 0 (even), x/s = 1.5 -> 2 (even), x/s = 2.5 -> 2 (even).
  Tensor x({3}, {0.125f, 0.375f, 0.625f});
  Tensor y = fq_forward(q, x);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.5f);
  EXPECT_FLOAT_EQ(y[2], 0.5f);
}

TEST(FakeQuant, Idempotent) {
  Rng rng(3);
  auto th = make_threshold("t", 1.3f);
  FakeQuantOp q(QuantSpec{8, true}, QuantMode::kTqt, th);
  Tensor x = rng.normal_tensor({1000}, 0.0f, 2.0f);
  Tensor once = fq_forward(q, x);
  Tensor twice = fq_forward(q, once);
  EXPECT_TRUE(once.equals(twice));
}

TEST(FakeQuant, OutputsAreOnGrid) {
  Rng rng(4);
  auto th = make_threshold("t", 0.7f);
  FakeQuantOp q(QuantSpec{4, true}, QuantMode::kTqt, th);
  const float s = q.scale();
  Tensor x = rng.normal_tensor({500});
  Tensor y = fq_forward(q, x);
  for (int64_t i = 0; i < y.numel(); ++i) {
    const float level = y[i] / s;
    EXPECT_FLOAT_EQ(level, std::nearbyintf(level));
    EXPECT_GE(level, -8.0f);
    EXPECT_LE(level, 7.0f);
  }
}

TEST(FakeQuant, DisabledIsIdentityBothWays) {
  Rng rng(5);
  auto th = make_threshold("t", 0.0f);
  FakeQuantOp q(QuantSpec{8, true}, QuantMode::kTqt, th);
  q.set_enabled(false);
  Tensor x = rng.normal_tensor({64});
  Tensor y = fq_forward(q, x);
  EXPECT_TRUE(y.equals(x));
  Tensor g = rng.normal_tensor({64});
  auto grads = q.backward(g);
  EXPECT_TRUE(grads[0].equals(g));
  EXPECT_EQ(th->grad[0], 0.0f);
}

TEST(FakeQuant, CollectModeGathersValues) {
  auto th = make_threshold("t", 0.0f);
  FakeQuantOp q(QuantSpec{8, true}, QuantMode::kTqt, th);
  q.set_collect(true);
  Tensor x1({2}, {1.0f, -2.0f});
  Tensor x2({2}, {3.0f, 4.0f});
  EXPECT_TRUE(fq_forward(q, x1).equals(x1));
  fq_forward(q, x2);
  ASSERT_EQ(q.collected().size(), 4u);
  EXPECT_EQ(q.collected()[3], 4.0f);
  q.clear_collected();
  EXPECT_TRUE(q.collected().empty());
}

TEST(FakeQuant, PerChannelUsesOwnScales) {
  // Two channels with wildly different ranges (the depthwise-conv problem of
  // §6.2): per-channel quantization keeps the small channel's resolution.
  auto ths = std::make_shared<Param>("t", Tensor({2}, {std::log2(0.01f), std::log2(10.0f)}),
                                     "threshold", false);
  FakeQuantOp q(QuantSpec{8, true, 1, true}, QuantMode::kTqt, ths);
  Tensor x({1, 2}, {0.005f, 5.0f});
  Tensor y = fq_forward(q, x);
  EXPECT_NEAR(y[0], 0.005f, 1e-4f);  // resolvable with per-channel scale
  EXPECT_NEAR(y[1], 5.0f, 0.05f);
  // A per-tensor quantizer at the large threshold flattens the small value.
  auto th = make_threshold("t2", std::log2(10.0f));
  FakeQuantOp qt(QuantSpec{8, true}, QuantMode::kTqt, th);
  Tensor yt = fq_forward(qt, x);
  EXPECT_FLOAT_EQ(yt[0], 0.0f);
}

TEST(FakeQuant, DerivedExponentSumsParents) {
  auto thw = make_threshold("tw", 0.0f);   // e_w = ceil(0) - 7 = -7
  auto thx = make_threshold("tx", 2.0f);   // e_x = 2 - 7 = -5
  FakeQuantOp qw(QuantSpec{8}, QuantMode::kTqt, thw);
  FakeQuantOp qx(QuantSpec{8}, QuantMode::kTqt, thx);
  FakeQuantOp acc(QuantSpec{16}, [&]() { return qw.exponent() + qx.exponent(); });
  EXPECT_TRUE(acc.is_derived());
  EXPECT_EQ(acc.exponent(), -12);
  EXPECT_FLOAT_EQ(acc.scale(), std::exp2(-12.0f));
  // Accumulator scale tracks threshold changes.
  thx->value[0] = 3.0f;
  EXPECT_EQ(acc.exponent(), -11);
}

// ---- Backward: TQT gradients (Eqs. 6-8) ---------------------------------------

TEST(FakeQuantGrad, InputGradientMask) {
  auto th = make_threshold("t", 0.0f);
  FakeQuantOp q(QuantSpec{3, true}, QuantMode::kTqt, th);  // s=0.25, clip x in [-1.125, 0.875]
  Tensor x({4}, {-2.0f, 0.5f, 0.86f, 0.9f});
  fq_forward(q, x);
  Tensor g({4}, {1.0f, 1.0f, 1.0f, 1.0f});
  auto grads = q.backward(g);
  EXPECT_EQ(grads[0][0], 0.0f);  // below range
  EXPECT_EQ(grads[0][1], 1.0f);  // inside
  EXPECT_EQ(grads[0][2], 1.0f);  // inside (rounds to 3)
  EXPECT_EQ(grads[0][3], 0.0f);  // rounds to 4 > p
}

TEST(FakeQuantGrad, ThresholdGradientClosedForm) {
  // Check Eq. (7) element contributions: s ln2 * (r - x/s | n | p).
  auto th = make_threshold("t", 0.0f);
  FakeQuantOp q(QuantSpec{3, true}, QuantMode::kTqt, th);
  const float s = 0.25f;
  Tensor x({3}, {0.3f, -5.0f, 5.0f});
  fq_forward(q, x);
  Tensor g({3}, {1.0f, 1.0f, 1.0f});
  q.backward(g);
  const float r = std::nearbyintf(0.3f / s);
  const float expected = s * std::log(2.0f) * ((r - 0.3f / s) + (-4.0f) + 3.0f);
  EXPECT_NEAR(th->grad[0], expected, 1e-6f);
}

TEST(FakeQuantGrad, UpstreamGradientWeighting) {
  auto th = make_threshold("t", 0.0f);
  FakeQuantOp q(QuantSpec{3, true}, QuantMode::kTqt, th);
  Tensor x({1}, {5.0f});  // above range: contribution p = 3
  fq_forward(q, x);
  Tensor g({1}, {-2.0f});
  q.backward(g);
  EXPECT_NEAR(th->grad[0], 0.25f * std::log(2.0f) * 3.0f * -2.0f, 1e-6f);
}

TEST(FakeQuantGrad, SharedThresholdAccumulates) {
  auto th = make_threshold("t", 0.0f);
  FakeQuantOp q1(QuantSpec{3, true}, QuantMode::kTqt, th);
  FakeQuantOp q2(QuantSpec{3, true}, QuantMode::kTqt, th);
  Tensor x({1}, {5.0f});
  fq_forward(q1, x);
  fq_forward(q2, x);
  Tensor g({1}, {1.0f});
  q1.backward(g);
  const float after_one = th->grad[0];
  q2.backward(g);
  EXPECT_NEAR(th->grad[0], 2.0f * after_one, 1e-6f);
}

TEST(FakeQuantGrad, FrozenThresholdGetsNoGradient) {
  auto th = make_threshold("t", 0.0f, /*trainable=*/false);
  FakeQuantOp q(QuantSpec{3, true}, QuantMode::kTqt, th);
  Tensor x({1}, {5.0f});
  fq_forward(q, x);
  q.backward(Tensor({1}, {1.0f}));
  EXPECT_EQ(th->grad[0], 0.0f);
}

TEST(FakeQuantGrad, PerChannelTrainedThresholds) {
  // Per-channel TQT extension (§7): each channel receives its own Eq. 7
  // gradient, matching the per-tensor formula applied channel-wise.
  auto ths = std::make_shared<Param>("t", Tensor({2}, {0.0f, 2.0f}), "threshold", true);
  FakeQuantOp q(QuantSpec{3, true, 1, true}, QuantMode::kTqt, ths);
  // Channel 0: s = 0.25; channel 1: s = 1.0.
  Tensor x({2, 2}, {5.0f, 5.0f,     // row 0: ch0 above range (p), ch1 above range (p)
                    0.3f, -9.0f});  // row 1: ch0 inside, ch1 below range (n)
  std::vector<const Tensor*> ins{&x};
  q.forward(ins);
  q.backward(Tensor({2, 2}, {1, 1, 1, 1}));
  const float ln2 = std::log(2.0f);
  const float r = std::nearbyintf(0.3f / 0.25f);
  EXPECT_NEAR(ths->grad[0], 0.25f * ln2 * (3.0f + (r - 0.3f / 0.25f)), 1e-5f);
  EXPECT_NEAR(ths->grad[1], 1.0f * ln2 * (3.0f + -4.0f), 1e-5f);
}

TEST(FakeQuantGrad, PerChannelFrozenGetsNoGradient) {
  auto ths = std::make_shared<Param>("t", Tensor({2}), "threshold", false);
  FakeQuantOp q(QuantSpec{8, true, 1, true}, QuantMode::kTqt, ths);
  Tensor x({1, 2}, {5.0f, -5.0f});
  std::vector<const Tensor*> ins{&x};
  q.forward(ins);
  q.backward(Tensor({1, 2}, {1, 1}));
  EXPECT_EQ(ths->grad[0], 0.0f);
  EXPECT_EQ(ths->grad[1], 0.0f);
}

// ---- Backward: baseline formulations (§3.5) -----------------------------------

TEST(FakeQuantGrad, ClippedModeZeroInsideRange) {
  auto th = make_threshold("t", 0.0f);
  FakeQuantOp q(QuantSpec{3, true}, QuantMode::kClipped, th);
  Tensor x({2}, {0.3f, -0.6f});  // all inside
  fq_forward(q, x);
  q.backward(Tensor({2}, {1.0f, 1.0f}));
  EXPECT_EQ(th->grad[0], 0.0f);  // TF FakeQuant: round treated as identity
}

TEST(FakeQuantGrad, ClippedModeMatchesTqtOutsideRange) {
  Tensor x({2}, {-9.0f, 9.0f});
  Tensor g({2}, {1.0f, 2.0f});
  auto th_a = make_threshold("a", 0.0f);
  auto th_b = make_threshold("b", 0.0f);
  FakeQuantOp qa(QuantSpec{3, true}, QuantMode::kTqt, th_a);
  FakeQuantOp qb(QuantSpec{3, true}, QuantMode::kClipped, th_b);
  fq_forward(qa, x);
  fq_forward(qb, x);
  qa.backward(g);
  qb.backward(g);
  EXPECT_FLOAT_EQ(th_a->grad[0], th_b->grad[0]);
}

TEST(FakeQuantGrad, ClippedOnlyExpandsOnL2Toy) {
  // §3.5: with clipped gradients the overall L2 gradient can only push the
  // limits outward (negative dL/dlog2t), never inward.
  Rng rng(7);
  const Tensor x = rng.normal_tensor({4000});
  for (float log2_t = -3.0f; log2_t <= 3.0f; log2_t += 0.5f) {
    const ToyEval e = toy_l2_eval(x, {8, true}, QuantMode::kClipped, log2_t);
    EXPECT_LE(e.grad_log2_t, 1e-9) << "log2_t = " << log2_t;
  }
}

TEST(FakeQuantGrad, TqtBalancesRangeAndPrecision) {
  // §3.4: with thresholds too wide most mass is inside -> positive gradient
  // (move in, favor precision); too narrow -> negative (move out).
  Rng rng(8);
  const Tensor x = rng.normal_tensor({4000});
  const ToyEval wide = toy_l2_eval(x, {8, true}, QuantMode::kTqt, 5.0f);
  const ToyEval narrow = toy_l2_eval(x, {8, true}, QuantMode::kTqt, -5.0f);
  EXPECT_GT(wide.grad_log2_t, 0.0);
  EXPECT_LT(narrow.grad_log2_t, 0.0);
}

TEST(FakeQuantGrad, PactGradient) {
  auto alpha = std::make_shared<Param>("alpha", Tensor::scalar(1.0f), "threshold");
  FakeQuantOp q(QuantSpec{8, false, -1, false}, QuantMode::kPact, alpha);
  Tensor x({4}, {-0.5f, 0.4f, 1.5f, 2.0f});
  Tensor y = fq_forward(q, x);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 1.0f);  // clipped to alpha
  Tensor g({4}, {1.0f, 1.0f, 1.0f, 1.0f});
  auto grads = q.backward(g);
  // d/d alpha = sum over x >= alpha (Eq. 1) = 2; dx passes only for 0<x<alpha.
  EXPECT_FLOAT_EQ(alpha->grad[0], 2.0f);
  EXPECT_EQ(grads[0][0], 0.0f);
  EXPECT_EQ(grads[0][1], 1.0f);
  EXPECT_EQ(grads[0][3], 0.0f);
}

TEST(FakeQuantGrad, PactRequiresUnsigned) {
  auto alpha = std::make_shared<Param>("alpha", Tensor::scalar(1.0f), "threshold");
  EXPECT_THROW(FakeQuantOp(QuantSpec{8, true, -1, false}, QuantMode::kPact, alpha), std::invalid_argument);
}

TEST(FakeQuantGrad, LsqLearnsRawScale) {
  auto s = std::make_shared<Param>("s", Tensor::scalar(0.25f), "threshold");
  FakeQuantOp q(QuantSpec{3, true, -1, false}, QuantMode::kLsq, s);
  EXPECT_FLOAT_EQ(q.scale(), 0.25f);
  Tensor x({3}, {0.3f, -5.0f, 5.0f});
  fq_forward(q, x);
  q.backward(Tensor({3}, {1, 1, 1}));
  // Same bracket as TQT but without the s*ln2 chain factor.
  const float r = std::nearbyintf(0.3f / 0.25f);
  EXPECT_NEAR(s->grad[0], (r - 0.3f / 0.25f) - 4.0f + 3.0f, 1e-5f);
  EXPECT_THROW(FakeQuantOp(QuantSpec{3, true, -1, true}, QuantMode::kLsq, s), std::invalid_argument);
}

// ---- Fused vs unfused (paper Figure 4 / §4.4) -----------------------------------

TEST(UnfusedQuant, ForwardMatchesFusedExactly) {
  Rng rng(21);
  auto th1 = make_threshold("a", 0.7f);
  auto th2 = make_threshold("b", 0.7f);
  FakeQuantOp fused(QuantSpec{8, true}, QuantMode::kTqt, th1);
  UnfusedFakeQuantOp unfused(QuantSpec{8, true}, th2);
  Tensor x = rng.normal_tensor({2000}, 0.1f, 1.5f);
  std::vector<const Tensor*> ins{&x};
  EXPECT_TRUE(fused.forward(ins).equals(unfused.forward(ins)));
}

TEST(UnfusedQuant, GradientsMatchFused) {
  Rng rng(22);
  auto th1 = make_threshold("a", -0.3f);
  auto th2 = make_threshold("b", -0.3f);
  FakeQuantOp fused(QuantSpec{4, true}, QuantMode::kTqt, th1);
  UnfusedFakeQuantOp unfused(QuantSpec{4, true}, th2);
  Tensor x = rng.normal_tensor({2000});
  Tensor g = rng.normal_tensor({2000});
  std::vector<const Tensor*> ins{&x};
  fused.forward(ins);
  unfused.forward(ins);
  auto dx_f = fused.backward(g);
  auto dx_u = unfused.backward(g);
  EXPECT_TRUE(dx_f[0].equals(dx_u[0]));
  EXPECT_NEAR(th1->grad[0], th2->grad[0], 1e-4f * std::max(1.0f, std::fabs(th1->grad[0])));
}

TEST(UnfusedQuant, CachesMoreThanFused) {
  // The point of the fused kernel (§4.4): the composed form keeps four
  // intermediate tensors alive for backward.
  auto th = make_threshold("a", 0.0f);
  UnfusedFakeQuantOp unfused(QuantSpec{8, true}, th);
  Tensor x({1024});
  std::vector<const Tensor*> ins{&x};
  unfused.forward(ins);
  EXPECT_EQ(unfused.cached_bytes(), 4 * 1024 * static_cast<int64_t>(sizeof(float)));
}

// ---- Calibration ----------------------------------------------------------------

TEST(Calibrate, MaxThreshold) {
  std::vector<float> v{-3.0f, 1.0f, 2.5f};
  EXPECT_FLOAT_EQ(max_threshold(v), 3.0f);
  EXPECT_GT(max_threshold(std::vector<float>{0.0f, 0.0f}), 0.0f);  // floored
}

TEST(Calibrate, SdThreshold) {
  Rng rng(11);
  Tensor x = rng.normal_tensor({50000}, 0.0f, 2.0f);
  EXPECT_NEAR(sd_threshold(std::span(x.vec()), 3.0f), 6.0f, 0.15f);
}

TEST(Calibrate, PercentileThreshold) {
  std::vector<float> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<float>(i));
  EXPECT_NEAR(percentile_threshold(v, 99.0f), 99.0f, 1.01f);
  EXPECT_NEAR(percentile_threshold(v, 50.0f), 50.0f, 1.01f);
  EXPECT_THROW(percentile_threshold(v, 101.0f), std::invalid_argument);
}

TEST(Calibrate, KlJDistanceProperties) {
  std::vector<double> p{1, 2, 3, 4};
  std::vector<double> q{4, 3, 2, 1};
  EXPECT_NEAR(kl_j_distance(p, p), 0.0, 1e-9);
  EXPECT_GT(kl_j_distance(p, q), 0.0);
  EXPECT_NEAR(kl_j_distance(p, q), kl_j_distance(q, p), 1e-12);  // symmetric
  EXPECT_THROW(kl_j_distance(p, {1.0}), std::invalid_argument);
}

TEST(Calibrate, KlJClipsLongTails) {
  // Gaussian bulk + far outliers: KL-J should clip well below the outlier.
  Rng rng(13);
  Tensor x = rng.normal_tensor({20000});
  std::vector<float> v = x.vec();
  v.push_back(100.0f);
  v.push_back(-100.0f);
  const float t = kl_j_threshold(v, QuantSpec{8});
  EXPECT_LT(t, 50.0f);
  EXPECT_GT(t, 1.0f);
}

TEST(Calibrate, KlJKeepsCompactDistributions) {
  // Uniform data has no tail to trade away: threshold stays near max.
  Rng rng(14);
  Tensor x = rng.uniform_tensor({20000}, -1.0f, 1.0f);
  const float t = kl_j_threshold(std::span(x.vec()), QuantSpec{8});
  EXPECT_GT(t, 0.8f);
}

TEST(Calibrate, PerChannelMax) {
  Tensor w({1, 1, 2, 3}, {1, -2, 3, -4, 0.5f, 6});
  auto t = per_channel_max_thresholds(w, 3);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_FLOAT_EQ(t[0], 4.0f);
  EXPECT_FLOAT_EQ(t[1], 2.0f);
  EXPECT_FLOAT_EQ(t[2], 6.0f);
  EXPECT_THROW(per_channel_max_thresholds(w, 7), std::invalid_argument);
}

// ---- Threshold freezing -----------------------------------------------------------

TEST(Freezer, FreezesSmallestGradientFirst) {
  auto a = make_threshold("a", 1.0f);
  auto b = make_threshold("b", 2.0f);
  ThresholdFreezer fz({a, b}, /*start=*/2, /*interval=*/1, /*beta=*/0.0f);
  a->grad[0] = 0.5f;
  b->grad[0] = 0.1f;
  fz.observe(0);
  fz.observe(1);
  EXPECT_EQ(fz.frozen_count(), 0);
  fz.observe(2);
  EXPECT_EQ(fz.frozen_count(), 1);
  EXPECT_TRUE(a->trainable);
  EXPECT_FALSE(b->trainable);  // smaller |grad| freezes first
  fz.observe(3);
  EXPECT_EQ(fz.frozen_count(), 2);
  EXPECT_TRUE(fz.all_frozen());
}

TEST(Freezer, WrongSideOfCriticalIntegerNotFrozen) {
  auto a = make_threshold("a", 0.9f);
  // Freezing only begins at step 19; the EMA warms up around 0.9 first.
  ThresholdFreezer fz({a}, /*start=*/19, 1, /*beta=*/0.9f);
  for (int i = 0; i < 20; ++i) {
    a->grad[0] = 0.1f;
    if (i == 19) a->value[0] = 1.5f;  // ceil=2 != ceil(EMA)=1: not frozen
    fz.observe(i);
  }
  EXPECT_TRUE(a->trainable);
  // Back on the EMA side, it freezes.
  a->value[0] = 0.9f;
  fz.observe(20);
  EXPECT_FALSE(a->trainable);
}

TEST(Freezer, RejectsBadArgs) {
  auto a = make_threshold("a", 0.0f);
  EXPECT_THROW(ThresholdFreezer({a}, 0, 0), std::invalid_argument);
  EXPECT_THROW(ThresholdFreezer({nullptr}, 0, 1), std::invalid_argument);
}

// ---- Toy model / transfer curves ----------------------------------------------------

TEST(ToyModel, TransferCurvesMatchQuantizerOp) {
  auto th = make_threshold("t", 0.0f);
  FakeQuantOp q(QuantSpec{3, true}, QuantMode::kTqt, th);
  auto c = transfer_curves({3, true}, QuantMode::kTqt, 0.0f, -2.0f, 2.0f, 101);
  Tensor x({101}, c.x);
  Tensor y = fq_forward(q, x);
  for (int64_t i = 0; i < 101; ++i) EXPECT_FLOAT_EQ(c.q[static_cast<size_t>(i)], y[i]);
}

TEST(ToyModel, CurveGradientSignStructure) {
  // Fig. 2: dL/dlog2t positive inside (xn, xp), negative outside.
  auto c = transfer_curves({3, true}, QuantMode::kTqt, 0.0f, -3.0f, 3.0f, 601);
  const float xn = 0.25f * (-4 - 0.5f);
  const float xp = 0.25f * (3 + 0.5f);
  for (size_t i = 0; i < c.x.size(); ++i) {
    if (c.x[i] < xn - 0.02f || c.x[i] > xp + 0.02f) {
      EXPECT_LT(c.dl_dlog2t[i], 1e-6f) << c.x[i];
    } else if (c.x[i] > xn + 0.02f && c.x[i] < xp - 0.02f) {
      EXPECT_GE(c.dl_dlog2t[i], -1e-6f) << c.x[i];
    }
  }
}

TEST(ToyModel, InputLossGradientZeroInside) {
  // Eq. (10): dL/dx = (q-x)(dq/dx - 1) = 0 inside (dq/dx = 1), biased to pull
  // clipped values back inside.
  auto c = transfer_curves({3, true}, QuantMode::kTqt, 0.0f, -3.0f, 3.0f, 601);
  for (size_t i = 0; i < c.x.size(); ++i) {
    if (c.dq_dx[i] == 1.0f) {
      EXPECT_FLOAT_EQ(c.dl_dx[i], 0.0f);
    } else if (c.x[i] > 1.0f) {
      EXPECT_GT(c.dl_dx[i], 0.0f);  // positive grad -> descent decreases x
    } else if (c.x[i] < -1.2f) {
      EXPECT_LT(c.dl_dx[i], 0.0f);
    }
  }
}

TEST(ToyModel, AdamConvergesToStableBin) {
  ToyRunConfig cfg;
  cfg.bits = int8_signed();
  cfg.sigma = 1.0f;
  cfg.steps = 800;
  cfg.lr = 0.01f;
  cfg.log2_t0 = 3.0f;
  ToyRunResult r = run_toy_training(cfg, ToyOptimizer::kLogAdam);
  // Gaussian(1) at INT8: optimum threshold is a few sigma; certainly in (0,4).
  EXPECT_GT(r.final_log2_t, 0.0f);
  EXPECT_LT(r.final_log2_t, 4.0f);
  // Post-convergence oscillation stays within ~one integer bin (App. B.3).
  float lo = r.final_log2_t, hi = r.final_log2_t;
  for (size_t i = r.log2_t.size() - 200; i < r.log2_t.size(); ++i) {
    lo = std::min(lo, r.log2_t[i]);
    hi = std::max(hi, r.log2_t[i]);
  }
  EXPECT_LT(hi - lo, 1.2f);
}

TEST(ToyModel, NormedSgdConvergesLikeAdam) {
  ToyRunConfig cfg;
  cfg.steps = 800;
  cfg.lr = 0.05f;
  cfg.log2_t0 = 4.0f;
  ToyRunResult adam = run_toy_training(cfg, ToyOptimizer::kLogAdam);
  ToyRunResult normed = run_toy_training(cfg, ToyOptimizer::kNormedLogSgd);
  EXPECT_NEAR(adam.final_log2_t, normed.final_log2_t, 1.5f);
}

TEST(ToyModel, LogSgdStallsForSmallSigma) {
  // Appendix B.2: un-normed log-gradient SGD converges far too slowly when
  // the input scale is small (gradients shrink quadratically with sigma).
  ToyRunConfig cfg;
  cfg.sigma = 0.01f;
  cfg.steps = 400;
  cfg.lr = 0.1f;
  cfg.log2_t0 = 1.0f;  // optimum is near log2(3*sigma) ~ -5
  ToyRunResult sgd = run_toy_training(cfg, ToyOptimizer::kLogSgd);
  ToyRunResult adam = run_toy_training(cfg, ToyOptimizer::kLogAdam);
  EXPECT_GT(sgd.final_log2_t, adam.final_log2_t + 2.0f);
}

TEST(ToyModel, ClippedModeNeverTightens) {
  // Training the clipped formulation from a too-wide threshold stays wide
  // (it has no inward force), while TQT tightens. This is Table 1's story.
  ToyRunConfig cfg;
  cfg.steps = 500;
  cfg.lr = 0.01f;
  cfg.log2_t0 = 5.0f;
  cfg.mode = QuantMode::kClipped;
  ToyRunResult clipped = run_toy_training(cfg, ToyOptimizer::kLogAdam);
  cfg.mode = QuantMode::kTqt;
  ToyRunResult tqt = run_toy_training(cfg, ToyOptimizer::kLogAdam);
  EXPECT_GT(clipped.final_log2_t, 4.5f);
  EXPECT_LT(tqt.final_log2_t, 4.0f);
}

}  // namespace
}  // namespace tqt
