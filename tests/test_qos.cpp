// Tests for tqt-qos (src/qos + the gateway/batcher/client hooks). Headline
// contracts:
//
//  * TokenBucket / TenantState / TenantTable behave deterministically under
//    caller-supplied time, parse errors carry "path:line: reason", and hot
//    reload preserves runtime state (bucket level, inflight) by tenant name;
//  * DwrrQueue keeps FIFO within a lane, strict priority across classes, and
//    weight-proportional service within a class;
//  * wire v2 is a compatible minor bump — an empty token emits version-1
//    bytes, v1 frames resolve to the default tenant, and the token field
//    survives truncation/garbage fuzz without crashes or over-reads;
//  * the gateway answers RATE_LIMITED / QUOTA_EXCEEDED / CANCELLED /
//    SLOW_CLIENT as typed statuses, hot-reloads tenants over the admin
//    plane, and the sharded gateway stays bit-exact for every zoo model
//    under 2 and 4 shards with concurrent mixed-tenant connections;
//  * the hedged client duplicates slow requests, keeps the first response,
//    and backs off on SHED.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "test_util.h"
#include "fixedpoint/engine.h"
#include "graph_opt/quantize_pass.h"
#include "graph_opt/transforms.h"
#include "models/zoo.h"
#include "net/client.h"
#include "net/gateway.h"
#include "qos/dwrr.h"
#include "qos/shard.h"
#include "qos/tenant.h"
#include "serve/server.h"
#include "tensor/rng.h"

namespace tqt {
namespace {

FixedPointProgram make_program(ModelKind kind, uint64_t seed = 11) {
  BuiltModel m = build_model(kind, 10, seed);
  Rng rng(seed);
  m.graph.set_training(true);
  for (int i = 0; i < 10; ++i) {
    m.graph.run({{m.input, rng.normal_tensor({8, 16, 16, 3}, 0.2f, 1.0f)}}, m.logits);
  }
  m.graph.set_training(false);
  Tensor calib = rng.normal_tensor({16, 16, 16, 3}, 0.2f, 1.0f);
  optimize_for_quantization(m.graph, m.input, calib);
  QuantizeConfig cfg;
  QuantizePassResult qres = quantize_pass(m.graph, m.input, m.logits, cfg);
  calibrate_thresholds(m.graph, qres, m.input, calib, WeightInit::kMax);
  return compile_fixed_point(m.graph, m.input, qres.quantized_output);
}

/// One mini-VGG program compiled once and shared by every gateway-level test
/// in this binary (deploy() copies it, so servers never alias state).
const FixedPointProgram& mini_vgg_program() {
  static const FixedPointProgram* prog =
      new FixedPointProgram(make_program(ModelKind::kMiniVgg));
  return *prog;
}

const Shape kSampleShape = {16, 16, 3};

/// Metrics + tenant table + server + gateway with the right member order
/// (everything the gateway points at must outlive it). All instruments land
/// in one registry so tests can assert net.* and qos.tenant.* side by side.
struct QosRig {
  observe::MetricsRegistry metrics;
  qos::TenantTable tenants{&metrics};
  serve::InferenceServer server;
  std::unique_ptr<net::Gateway> gateway;

  explicit QosRig(serve::BatchConfig bcfg = {}, net::GatewayConfig gcfg = {})
      : server(server_config(bcfg, &metrics)) {
    gcfg.port = 0;
    gcfg.tenants = &tenants;
    gateway = std::make_unique<net::Gateway>(server, gcfg);
  }
  static serve::ServerConfig server_config(serve::BatchConfig b, observe::MetricsRegistry* m) {
    serve::ServerConfig s;
    s.batch = b;
    s.metrics = m;
    return s;
  }
  uint16_t port() const { return gateway->port(); }
};

std::string temp_path(const std::string& name) { return testing::TempDir() + name; }

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  ASSERT_TRUE(out) << path;
  out << content;
}

// ---- Token bucket -----------------------------------------------------------

TEST(QosTokenBucket, DeterministicRefillAndBurstCap) {
  qos::TokenBucket b(/*rate_per_s=*/10.0, /*burst=*/2.0);
  EXPECT_TRUE(b.try_take(0));  // starts full
  EXPECT_TRUE(b.try_take(0));
  EXPECT_FALSE(b.try_take(0));          // burst spent
  EXPECT_FALSE(b.try_take(50'000));     // 0.5 tokens refilled — not a whole one
  EXPECT_TRUE(b.try_take(100'000));     // 1.0 token at t=100ms
  EXPECT_FALSE(b.try_take(100'000));
  // A long idle period refills to the cap, never beyond it.
  EXPECT_TRUE(b.try_take(10'000'000));
  EXPECT_TRUE(b.try_take(10'000'000));
  EXPECT_FALSE(b.try_take(10'000'000));
}

TEST(QosTokenBucket, ZeroRateIsUnlimited) {
  qos::TokenBucket b(0.0, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(b.try_take(0));
}

TEST(QosTokenBucket, ConfigureClampsLevelToNewBurst) {
  qos::TokenBucket b(5.0, 10.0);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(b.try_take(0));  // level 6
  b.configure(5.0, 3.0);  // hot reload shrinks the burst; level clamps to 3
  EXPECT_DOUBLE_EQ(b.level(0), 3.0);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(b.try_take(0));
  EXPECT_FALSE(b.try_take(0));
}

// ---- Tenant state -----------------------------------------------------------

TEST(QosTenantState, AdmitChargesRateThenQuotaAndCounts) {
  observe::MetricsRegistry reg;
  qos::TenantState t("acme", /*lane_key=*/7);
  t.configure(qos::kClassHigh, 4, /*rate_rps=*/1.0, /*burst=*/1.0, /*max_inflight=*/2, &reg);
  EXPECT_EQ(t.klass(), qos::kClassHigh);
  EXPECT_EQ(t.weight(), 4);

  EXPECT_EQ(t.admit(0), qos::Admit::kOk);            // takes the single token
  EXPECT_EQ(t.admit(0), qos::Admit::kRateLimited);   // bucket checked first
  EXPECT_EQ(t.admit(2'000'000), qos::Admit::kOk);    // refilled; inflight=2
  EXPECT_EQ(t.admit(4'000'000), qos::Admit::kQuotaExceeded);
  EXPECT_EQ(t.inflight(), 2);
  t.release();
  EXPECT_EQ(t.admit(8'000'000), qos::Admit::kOk);    // quota slot + token free again
  EXPECT_EQ(t.inflight(), 2);

  EXPECT_EQ(reg.counter("qos.tenant.acme.requests").value(), 5u);
  EXPECT_EQ(reg.counter("qos.tenant.acme.admitted").value(), 3u);
  EXPECT_EQ(reg.counter("qos.tenant.acme.rate_limited").value(), 1u);
  EXPECT_EQ(reg.counter("qos.tenant.acme.quota_exceeded").value(), 1u);
}

// ---- Tenant table -----------------------------------------------------------

TEST(QosTenantTable, ParsesConfigAndResolvesTokens) {
  const std::string path = temp_path("qos_tenants_parse.conf");
  write_file(path,
             "# fleet tenants\n"
             "token=alice-secret tenant=alice class=high weight=4 rate=200 burst=40 "
             "max_inflight=8\n"
             "\n"
             "token=bob-secret tenant=bob class=low   # trailing comment\n"
             "token=* tenant=default weight=2\n");

  qos::TenantTable table;
  table.load_file(path);
  EXPECT_EQ(table.size(), 3u);  // alice, bob, default
  EXPECT_EQ(table.file(), path);

  auto alice = table.resolve("alice-secret");
  EXPECT_EQ(alice->name(), "alice");
  EXPECT_EQ(alice->klass(), qos::kClassHigh);
  EXPECT_EQ(alice->weight(), 4);
  EXPECT_EQ(alice->max_inflight(), 8);

  EXPECT_EQ(table.resolve("bob-secret")->klass(), qos::kClassLow);

  // Empty and unknown tokens land on the default tenant, which token=* just
  // re-configured (weight 2) without replacing.
  EXPECT_EQ(table.resolve("")->name(), "default");
  EXPECT_EQ(table.resolve("no-such-token"), table.default_tenant());
  EXPECT_EQ(table.default_tenant()->weight(), 2);

  // Lane keys are distinct, with 0 reserved for the default tenant.
  EXPECT_EQ(table.default_tenant()->lane_key(), 0u);
  EXPECT_NE(alice->lane_key(), table.resolve("bob-secret")->lane_key());
}

TEST(QosTenantTable, ParseErrorsCarryPathAndLineAndLeaveTableIntact) {
  const std::string good = temp_path("qos_tenants_good.conf");
  write_file(good, "token=alpha-tok tenant=alpha\n");
  qos::TenantTable table;
  table.load_file(good);
  ASSERT_EQ(table.resolve("alpha-tok")->name(), "alpha");

  const struct {
    const char* content;
    const char* reason;
    int line;
  } cases[] = {
      {"token=a tenant=x class=warp\n", "class must be low|normal|high", 1},
      {"tenant=x\n", "missing token=", 1},
      {"token=a\n", "missing tenant=", 1},
      {"token=a tenant=x\ntoken=a tenant=y\n", "duplicate token", 2},
      {"token=a tenant=x\ntoken=b tenant=x\n", "duplicate tenant", 2},
      {"token=a tenant=x weight=0\n", "weight must be an integer >= 1", 1},
      {"token=a tenant=x color=red\n", "unknown key", 1},
      {"token=* tenant=vip\n", "token=* must be tenant=default", 1},
      {"token=a tenant=x rate=fast\n", "bad number for 'rate'", 1},
  };
  const std::string bad = temp_path("qos_tenants_bad.conf");
  for (const auto& c : cases) {
    write_file(bad, c.content);
    try {
      table.load_file(bad);
      ADD_FAILURE() << "accepted: " << c.content;
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(bad + ":" + std::to_string(c.line) + ":"), std::string::npos)
          << what;
      EXPECT_NE(what.find(c.reason), std::string::npos) << what;
    }
    // Strong guarantee: the failed load left the previous table installed.
    EXPECT_EQ(table.resolve("alpha-tok")->name(), "alpha") << c.content;
    EXPECT_EQ(table.file(), good) << c.content;
  }
}

TEST(QosTenantTable, ReloadPreservesRuntimeStateByName) {
  qos::TenantTable table;
  qos::TenantConfig acme;
  acme.token = "acme-tok";
  acme.name = "acme";
  acme.rate_rps = 1.0;
  acme.burst = 1.0;
  acme.max_inflight = 4;
  table.load({acme});

  auto before = table.resolve("acme-tok");
  ASSERT_EQ(before->admit(qos::now_us()), qos::Admit::kOk);  // inflight = 1

  // Reload with a new weight and a rotated token: the SAME TenantState keeps
  // serving (pointer identity by tenant name), so the inflight charge and
  // the spent bucket survive the config push.
  acme.token = "acme-tok-v2";
  acme.weight = 9;
  table.load({acme});
  auto after = table.resolve("acme-tok-v2");
  EXPECT_EQ(after.get(), before.get());
  EXPECT_EQ(after->weight(), 9);
  EXPECT_EQ(after->inflight(), 1);
  // The old token no longer resolves; requests fall back to default.
  EXPECT_EQ(table.resolve("acme-tok"), table.default_tenant());

  EXPECT_THROW(qos::TenantTable().reload(), std::runtime_error);  // no file yet
}

// ---- DWRR queue -------------------------------------------------------------

TEST(QosDwrr, SingleLaneDegeneratesToFifo) {
  qos::DwrrQueue<int> q;
  for (int i = 0; i < 10; ++i) q.push(i, qos::kClassNormal, /*tenant=*/1, /*weight=*/5);
  EXPECT_EQ(q.size(), 10);
  EXPECT_EQ(q.lane_depth(qos::kClassNormal, 1), 10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q.pop().value(), i);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop().has_value());
}

TEST(QosDwrr, StrictPriorityAcrossClasses) {
  qos::DwrrQueue<int> q;
  // Interleave pushes; encode the class in the value.
  for (int i = 0; i < 4; ++i) {
    q.push(100 + i, qos::kClassLow, 1, 1);
    q.push(200 + i, qos::kClassNormal, 1, 1);
    q.push(300 + i, qos::kClassHigh, 1, 1);
  }
  std::vector<int> order;
  while (auto item = q.pop()) order.push_back(*item);
  ASSERT_EQ(order.size(), 12u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], 300 + i);      // all high first, FIFO
    EXPECT_EQ(order[static_cast<size_t>(4 + i)], 200 + i);  // then normal
    EXPECT_EQ(order[static_cast<size_t>(8 + i)], 100 + i);  // then low
  }
}

TEST(QosDwrr, ServiceProportionalToWeightWhileBacklogged) {
  qos::DwrrQueue<int> q;
  for (int i = 0; i < 40; ++i) {
    q.push(1, qos::kClassNormal, /*tenant=*/1, /*weight=*/3);
    q.push(2, qos::kClassNormal, /*tenant=*/2, /*weight=*/1);
  }
  int a = 0, b = 0;
  for (int i = 0; i < 20; ++i) {
    const int got = q.pop().value();
    (got == 1 ? a : b) += 1;
  }
  // Both lanes stayed backlogged for all 20 pops: shares must be 3:1 within
  // one quantum*weight of slack per lane.
  EXPECT_EQ(a + b, 20);
  EXPECT_NEAR(a, 15, 3);
  EXPECT_GE(b, 2);  // the weight-1 lane is never starved
}

TEST(QosDwrr, WorkConservingAcrossManyLanes) {
  qos::DwrrQueue<int> q;
  std::mt19937 rng(42);
  int pushed = 0;
  for (int i = 0; i < 200; ++i) {
    q.push(i, static_cast<int>(rng() % 3), rng() % 5, static_cast<int>(rng() % 4));
    ++pushed;
  }
  int popped = 0;
  while (q.size() > 0) {
    ASSERT_TRUE(q.pop().has_value());  // an item whenever size() > 0
    ++popped;
  }
  EXPECT_EQ(popped, pushed);
}

// ---- Wire v2 compatibility --------------------------------------------------

net::InferRequest sample_request(const std::string& token) {
  Rng rng(21);
  net::InferRequest req;
  req.model = "mini_vgg";
  req.token = token;
  req.deadline_us = 5000;
  req.input = rng.normal_tensor({1, 4, 4, 2}, 0.1f, 1.0f);
  return req;
}

TEST(QosWire, EmptyTokenEmitsVersion1Frame) {
  std::vector<uint8_t> frame;
  net::append_request_frame(frame, 1, sample_request(""));
  net::FrameHeader h;
  std::string err;
  ASSERT_EQ(net::parse_header(frame.data(), frame.size(), &h, &err), net::HeaderParse::kOk);
  // The downgrade contract: a tokenless current client puts version-1 bytes
  // on the wire, so it keeps working against pre-tenancy servers.
  EXPECT_EQ(h.version, net::kMinVersion);
  net::InferRequest back;
  ASSERT_TRUE(net::parse_request_payload(frame.data() + net::kHeaderBytes, h.payload_len,
                                         net::kMinVersion, &back, &err))
      << err;
  EXPECT_TRUE(back.token.empty());
}

TEST(QosWire, TokenRoundTripsAtVersion2) {
  // Tokens are opaque bytes — embedded NUL, high bytes, and the maximum
  // length all survive the wire.
  const std::string tokens[] = {"alice-secret", std::string("\x00\xff\x7f ding", 9),
                                std::string(net::kMaxTokenBytes, 'q')};
  for (const std::string& token : tokens) {
    std::vector<uint8_t> frame;
    net::append_request_frame(frame, 3, sample_request(token));
    net::FrameHeader h;
    std::string err;
    ASSERT_EQ(net::parse_header(frame.data(), frame.size(), &h, &err), net::HeaderParse::kOk);
    EXPECT_EQ(h.version, net::kVersion);
    net::InferRequest back;
    ASSERT_TRUE(net::parse_request_payload(frame.data() + net::kHeaderBytes, h.payload_len,
                                           h.version, &back, &err))
        << err;
    EXPECT_EQ(back.token, token);
    EXPECT_EQ(back.model, "mini_vgg");
  }
  // One byte over the bound never reaches the wire.
  EXPECT_THROW(
      {
        std::vector<uint8_t> f;
        net::append_request_frame(f, 4, sample_request(std::string(net::kMaxTokenBytes + 1, 'q')));
      },
      std::invalid_argument);
}

TEST(QosWire, TruncationAtEveryPrefixRejected) {
  std::vector<uint8_t> frame;
  net::append_request_frame(frame, 5, sample_request("trunc-fuzz-token"));
  const uint8_t* payload = frame.data() + net::kHeaderBytes;
  const size_t n = frame.size() - net::kHeaderBytes;
  net::InferRequest back;
  std::string err;
  ASSERT_TRUE(net::parse_request_payload(payload, n, net::kVersion, &back, &err)) << err;
  for (size_t cut = 0; cut < n; ++cut) {
    EXPECT_FALSE(net::parse_request_payload(payload, cut, net::kVersion, &back, &err))
        << "prefix of " << cut << " bytes parsed";
  }
}

TEST(QosWire, OversizedDeclaredTokenLenRejected) {
  std::vector<uint8_t> frame;
  const net::InferRequest req = sample_request("tk");
  net::append_request_frame(frame, 6, req);
  // token_len sits right after the u16 name length + name bytes.
  const size_t off = net::kHeaderBytes + 2 + req.model.size();
  const uint16_t huge = static_cast<uint16_t>(net::kMaxTokenBytes + 1);
  frame[off] = static_cast<uint8_t>(huge & 0xff);
  frame[off + 1] = static_cast<uint8_t>(huge >> 8);
  net::InferRequest back;
  std::string err;
  EXPECT_FALSE(net::parse_request_payload(frame.data() + net::kHeaderBytes,
                                          frame.size() - net::kHeaderBytes, net::kVersion,
                                          &back, &err));
  EXPECT_FALSE(err.empty());
}

TEST(QosWire, RandomPayloadFuzzNeverCrashes) {
  std::mt19937 rng(7);
  std::vector<uint8_t> payload;
  net::InferRequest back;
  std::string err;
  for (int iter = 0; iter < 2000; ++iter) {
    payload.resize(rng() % 300);
    for (uint8_t& b : payload) b = static_cast<uint8_t>(rng());
    // Either version must parse or reject — never read out of bounds (ASan/
    // TSan builds of this test are the actual assertion).
    net::parse_request_payload(payload.data(), payload.size(), net::kMinVersion, &back, &err);
    net::parse_request_payload(payload.data(), payload.size(), net::kVersion, &back, &err);
  }
}

TEST(QosWire, CancelFrameIsVersion2HeaderOnly) {
  std::vector<uint8_t> frame;
  net::append_cancel_frame(frame, 99);
  ASSERT_EQ(frame.size(), net::kHeaderBytes);
  net::FrameHeader h;
  std::string err;
  ASSERT_EQ(net::parse_header(frame.data(), frame.size(), &h, &err), net::HeaderParse::kOk);
  EXPECT_EQ(h.type, net::FrameType::kCancel);
  EXPECT_EQ(h.version, net::kVersion);
  EXPECT_EQ(h.request_id, 99u);
  EXPECT_EQ(h.payload_len, 0u);

  // kCancel does not exist in version 1: a v1 header with type 5 is corrupt.
  std::vector<uint8_t> v1 = frame;
  v1[4] = net::kMinVersion;
  EXPECT_EQ(net::parse_header(v1.data(), v1.size(), &h, &err), net::HeaderParse::kCorrupt);
}

// ---- Gateway QoS integration ------------------------------------------------

qos::TenantConfig tenant_cfg(const std::string& token, const std::string& name, int klass,
                             int weight, double rate = 0.0, double burst = 0.0,
                             int64_t max_inflight = 0) {
  qos::TenantConfig c;
  c.token = token;
  c.name = name;
  c.klass = klass;
  c.weight = weight;
  c.rate_rps = rate;
  c.burst = burst;
  c.max_inflight = max_inflight;
  return c;
}

TEST(QosGateway, TokensResolveTenantsAndV1RidesDefault) {
  QosRig rig;
  rig.tenants.load({tenant_cfg("alice-secret", "alice", qos::kClassHigh, 4)});
  rig.server.deploy("m", mini_vgg_program(), kSampleShape);
  Rng rng(31);
  const Tensor sample = rng.normal_tensor({1, 16, 16, 3}, 0.2f, 1.2f);

  net::GatewayClient tenanted("localhost", rig.port());
  tenanted.set_token("alice-secret");
  EXPECT_EQ(tenanted.infer("m", sample).status, net::WireStatus::kOk);
  EXPECT_EQ(rig.metrics.counter("qos.tenant.alice.admitted").value(), 1u);

  // A tokenless client emits v1 frames; the gateway serves them on the
  // default tenant — the pre-QoS behaviour, bit for bit.
  net::GatewayClient v1("localhost", rig.port());
  const net::InferResponse resp = v1.infer("m", sample);
  EXPECT_EQ(resp.status, net::WireStatus::kOk);
  EXPECT_TRUE(resp.output.equals(test::run_program(mini_vgg_program(), sample)));
  EXPECT_EQ(rig.metrics.counter("qos.tenant.default.admitted").value(), 1u);
  EXPECT_EQ(rig.metrics.counter("qos.tenant.alice.admitted").value(), 1u);
}

TEST(QosGateway, RateLimitIsTyped) {
  QosRig rig;
  rig.tenants.load({tenant_cfg("slow-tok", "slow", qos::kClassNormal, 1,
                               /*rate=*/0.001, /*burst=*/1.0)});
  rig.server.deploy("m", mini_vgg_program(), kSampleShape);
  Rng rng(32);
  const Tensor sample = rng.normal_tensor({1, 16, 16, 3}, 0.2f, 1.2f);

  net::GatewayClient client("localhost", rig.port());
  client.set_token("slow-tok");
  EXPECT_EQ(client.infer("m", sample).status, net::WireStatus::kOk);  // the burst token
  const net::InferResponse limited = client.infer("m", sample);
  EXPECT_EQ(limited.status, net::WireStatus::kRateLimited) << limited.message;
  EXPECT_GE(rig.metrics.counter("net.rate_limited").value(), 1u);
  EXPECT_GE(rig.metrics.counter("qos.tenant.slow.rate_limited").value(), 1u);

  // The connection survives a rate-limit rejection; an unmetered tenant's
  // requests still flow.
  net::GatewayClient other("localhost", rig.port());
  EXPECT_EQ(other.infer("m", sample).status, net::WireStatus::kOk);
}

TEST(QosGateway, InflightQuotaIsTyped) {
  serve::BatchConfig bcfg;
  bcfg.max_batch = 8;
  bcfg.max_delay_us = 200'000;  // park the first request in the batch window
  QosRig rig(bcfg);
  rig.tenants.load({tenant_cfg("q-tok", "quotad", qos::kClassNormal, 1, 0.0, 0.0,
                               /*max_inflight=*/1)});
  rig.server.deploy("m", mini_vgg_program(), kSampleShape);
  Rng rng(33);
  const Tensor sample = rng.normal_tensor({1, 16, 16, 3}, 0.2f, 1.2f);

  net::GatewayClient client("localhost", rig.port());
  client.set_token("q-tok");
  const uint32_t first = client.send_infer("m", sample);
  const uint32_t second = client.send_infer("m", sample);  // quota slot is taken
  std::map<uint32_t, net::WireStatus> status;
  for (int i = 0; i < 2; ++i) {
    const auto tagged = client.recv_response();
    status[tagged.request_id] = tagged.response.status;
  }
  EXPECT_EQ(status[first], net::WireStatus::kOk);
  EXPECT_EQ(status[second], net::WireStatus::kQuotaExceeded);
  EXPECT_GE(rig.metrics.counter("net.quota_exceeded").value(), 1u);

  // release() runs on the batcher worker just AFTER the response is pushed,
  // so wait for the quota slot to free before asserting re-admission.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (rig.tenants.resolve("q-tok")->inflight() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(rig.tenants.resolve("q-tok")->inflight(), 0);
  EXPECT_EQ(client.infer("m", sample).status, net::WireStatus::kOk);
}

TEST(QosGateway, CancelDropsQueuedRequestTyped) {
  serve::BatchConfig bcfg;
  bcfg.max_batch = 8;
  bcfg.max_delay_us = 200'000;  // the request must still be queued when cancel lands
  QosRig rig(bcfg);
  rig.server.deploy("m", mini_vgg_program(), kSampleShape);
  Rng rng(34);

  net::GatewayClient client("localhost", rig.port());
  // Cancel tracking is a v2 feature, so the request must carry a token (any
  // token — unknown ones ride the default tenant).
  net::InferRequest req;
  req.model = "m";
  req.token = "t";
  req.input = rng.normal_tensor({1, 16, 16, 3}, 0.2f, 1.2f);
  std::vector<uint8_t> bytes;
  net::append_request_frame(bytes, 7, req);
  net::append_cancel_frame(bytes, 7);  // same flush: cancel wins the batch window
  client.send_bytes(bytes.data(), bytes.size());

  const auto tagged = client.recv_response();
  EXPECT_EQ(tagged.request_id, 7u);
  EXPECT_EQ(tagged.response.status, net::WireStatus::kCancelled) << tagged.response.message;
  EXPECT_EQ(rig.metrics.counter("net.cancel_frames").value(), 1u);
  EXPECT_EQ(rig.metrics.counter("net.cancelled").value(), 1u);

  // A cancel for an unknown/finished id is a silent no-op.
  std::vector<uint8_t> stray;
  net::append_cancel_frame(stray, 4242);
  client.send_bytes(stray.data(), stray.size());
  EXPECT_EQ(client.infer("m", req.input).status, net::WireStatus::kOk);
}

TEST(QosGateway, ReloadTenantsOverAdminPlane) {
  const std::string path = temp_path("qos_reload_live.conf");
  write_file(path, "token=alpha-tok tenant=alpha class=high\n");
  QosRig rig;
  rig.tenants.load_file(path);
  rig.server.deploy("m", mini_vgg_program(), kSampleShape);

  net::GatewayClient client("localhost", rig.port());
  net::AdminRequest reload;
  reload.op = net::AdminOp::kReloadTenants;
  reload.model = "m";

  // Push a new tenant into the file, reload through the wire.
  write_file(path,
             "token=alpha-tok tenant=alpha class=high\n"
             "token=beta-tok tenant=beta class=low\n");
  const net::AdminResponse ok = client.admin(reload);
  EXPECT_EQ(ok.status, net::WireStatus::kOk) << ok.message;
  EXPECT_NE(ok.message.find("tenants reloaded: 3 tenants"), std::string::npos) << ok.message;
  EXPECT_EQ(rig.tenants.resolve("beta-tok")->name(), "beta");

  // A bad config is reported with its path:line and leaves the table as-is.
  write_file(path, "token=alpha-tok tenant=alpha class=warp\n");
  const net::AdminResponse bad = client.admin(reload);
  EXPECT_EQ(bad.status, net::WireStatus::kInternal);
  EXPECT_NE(bad.message.find(path + ":1:"), std::string::npos) << bad.message;
  EXPECT_EQ(rig.tenants.resolve("beta-tok")->name(), "beta");

  // arg overrides the reload path.
  const std::string other = temp_path("qos_reload_other.conf");
  write_file(other, "token=gamma-tok tenant=gamma\n");
  reload.arg = other;
  EXPECT_EQ(client.admin(reload).status, net::WireStatus::kOk);
  EXPECT_EQ(rig.tenants.resolve("gamma-tok")->name(), "gamma");
}

TEST(QosGateway, ReloadTenantsWithoutTenancyIsInternal) {
  serve::InferenceServer server;
  net::GatewayConfig gcfg;
  gcfg.port = 0;
  net::Gateway gateway(server, gcfg);

  net::GatewayClient client("localhost", gateway.port());
  net::AdminRequest reload;
  reload.op = net::AdminOp::kReloadTenants;
  reload.model = "m";
  const net::AdminResponse resp = client.admin(reload);
  EXPECT_EQ(resp.status, net::WireStatus::kInternal);
  EXPECT_NE(resp.message.find("tenancy not enabled"), std::string::npos) << resp.message;
}

TEST(QosGateway, StalledPartialFrameAnsweredSlowClientAndClosed) {
  net::GatewayConfig gcfg;
  gcfg.read_stall_timeout_ms = 50;
  QosRig rig({}, gcfg);
  rig.server.deploy("m", mini_vgg_program(), kSampleShape);

  net::GatewayClient client("localhost", rig.port());
  // A plausible header prefix that never completes — the slow-loris shape.
  std::vector<uint8_t> partial;
  net::append_cancel_frame(partial, 1);
  client.send_bytes(partial.data(), net::kHeaderBytes / 2);

  const auto tagged = client.recv_response();  // arrives after the stall sweep
  EXPECT_EQ(tagged.request_id, 0u);
  EXPECT_EQ(tagged.response.status, net::WireStatus::kSlowClient);
  uint8_t byte = 0;
  EXPECT_EQ(client.recv_raw(&byte, 1), 0u);  // orderly close after the verdict
  EXPECT_EQ(rig.metrics.counter("net.slow_reads_closed").value(), 1u);

  // Honest clients are untouched by the sweep.
  net::GatewayClient honest("localhost", rig.port());
  Rng rng(35);
  EXPECT_EQ(honest.infer("m", rng.normal_tensor({1, 16, 16, 3}, 0.2f, 1.2f)).status,
            net::WireStatus::kOk);
}

TEST(QosGateway, GarbageV2PayloadAnsweredMalformed) {
  QosRig rig;
  rig.server.deploy("m", mini_vgg_program(), kSampleShape);
  net::GatewayClient client("localhost", rig.port());

  // Valid v2 header, nonsense payload (name_len = 0).
  std::vector<uint8_t> frame;
  const auto u32 = [&frame](uint32_t v) {
    for (int i = 0; i < 4; ++i) frame.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  };
  u32(net::kMagic);
  frame.push_back(net::kVersion);
  frame.push_back(static_cast<uint8_t>(net::FrameType::kRequest));
  frame.push_back(0);
  frame.push_back(0);
  u32(9);  // request id
  u32(2);  // payload_len
  frame.push_back(0);
  frame.push_back(0);
  client.send_bytes(frame.data(), frame.size());

  const auto tagged = client.recv_response();
  EXPECT_EQ(tagged.request_id, 9u);
  EXPECT_EQ(tagged.response.status, net::WireStatus::kMalformed);
  // Per-request error: the framing stayed trustworthy, the connection lives.
  Rng rng(36);
  EXPECT_EQ(client.infer("m", rng.normal_tensor({1, 16, 16, 3}, 0.2f, 1.2f)).status,
            net::WireStatus::kOk);
}

// ---- Sharded gateway --------------------------------------------------------

class QosShardBitExact : public ::testing::TestWithParam<ModelKind> {};

// The acceptance contract: every zoo model served through 2 and 4 reactor
// shards, ≥4 concurrent mixed-tenant connections, responses bit-identical to
// direct engine runs.
TEST_P(QosShardBitExact, MixedTenantsMatchDirectRuns) {
  const FixedPointProgram prog = make_program(GetParam());
  Rng rng(123);
  constexpr int kClients = 4, kPerClient = 3;
  std::vector<Tensor> samples, reference;
  for (int i = 0; i < kClients * kPerClient; ++i) {
    samples.push_back(rng.normal_tensor({1, 16, 16, 3}, 0.2f, 1.2f));
    reference.push_back(test::run_program(prog, samples.back()));
  }
  // One token per client; the empty one rides v1 frames on the default lane.
  const std::string tokens[kClients] = {"hi-tok", "norm-tok", "lo-tok", ""};

  for (const int num_shards : {2, 4}) {
    observe::MetricsRegistry metrics;
    qos::TenantTable tenants(&metrics);
    tenants.load({tenant_cfg("hi-tok", "hi", qos::kClassHigh, 4),
                  tenant_cfg("norm-tok", "norm", qos::kClassNormal, 2),
                  tenant_cfg("lo-tok", "lo", qos::kClassLow, 1)});

    qos::ShardedGatewayConfig cfg;
    cfg.num_shards = num_shards;
    cfg.batch.max_batch = 3;
    cfg.batch.max_delay_us = 5000;  // encourage cross-connection coalescing
    cfg.tenants = &tenants;
    cfg.metrics = &metrics;
    qos::ShardedGateway gw(cfg);
    ASSERT_EQ(gw.num_shards(), num_shards);
    gw.deploy("m", prog, kSampleShape);

    std::vector<std::thread> threads;
    std::vector<int> exact(kClients, 0);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        net::GatewayClient client("localhost", gw.port());
        client.set_token(tokens[c]);
        for (int k = 0; k < kPerClient; ++k) {
          const size_t i = static_cast<size_t>(c * kPerClient + k);
          const net::InferResponse resp = client.infer("m", samples[i]);
          ASSERT_EQ(resp.status, net::WireStatus::kOk) << resp.message;
          ASSERT_EQ(resp.output.shape(), reference[i].shape());
          if (resp.output.equals(reference[i])) ++exact[static_cast<size_t>(c)];
        }
      });
    }
    for (auto& t : threads) t.join();
    for (int c = 0; c < kClients; ++c) {
      EXPECT_EQ(exact[static_cast<size_t>(c)], kPerClient)
          << model_name(GetParam()) << " client " << c << " shards " << num_shards;
    }

    // Every connection was accepted by exactly one shard's reactor.
    uint64_t accepted = 0;
    for (int s = 0; s < num_shards; ++s) {
      accepted += metrics.counter("net.shard" + std::to_string(s) + ".connections_accepted")
                      .value();
    }
    EXPECT_EQ(accepted, static_cast<uint64_t>(kClients));
    gw.stop_and_drain();
    EXPECT_TRUE(gw.stopped());
  }
}

INSTANTIATE_TEST_SUITE_P(Qos, QosShardBitExact, ::testing::ValuesIn(all_model_kinds()),
                         [](const auto& info) { return model_name(info.param); });

TEST(QosShard, HandoffModeRoundRobinsAcceptedConnections) {
  observe::MetricsRegistry metrics;
  qos::ShardedGatewayConfig cfg;
  cfg.num_shards = 2;
  cfg.mode = qos::ShardMode::kHandoff;
  cfg.metrics = &metrics;
  qos::ShardedGateway gw(cfg);
  EXPECT_EQ(gw.mode(), qos::ShardMode::kHandoff);
  EXPECT_EQ(to_string(gw.mode()), "handoff");
  gw.deploy("m", mini_vgg_program(), kSampleShape);

  Rng rng(41);
  const Tensor sample = rng.normal_tensor({1, 16, 16, 3}, 0.2f, 1.2f);
  constexpr int kConns = 4;
  for (int i = 0; i < kConns; ++i) {
    net::GatewayClient client("localhost", gw.port());
    EXPECT_EQ(client.infer("m", sample).status, net::WireStatus::kOk);
  }
  // Round-robin handoff is deterministic: with 4 connections and 2 shards,
  // each reactor served exactly 2.
  EXPECT_EQ(metrics.counter("net.shard0.connections_accepted").value(), 2u);
  EXPECT_EQ(metrics.counter("net.shard1.connections_accepted").value(), 2u);
}

TEST(QosShard, DrainBarrierAnswersInflightWork) {
  qos::ShardedGatewayConfig cfg;
  cfg.num_shards = 2;
  cfg.batch.max_batch = 8;
  cfg.batch.max_delay_us = 150'000;  // requests are still queued when drain begins
  qos::ShardedGateway gw(cfg);
  gw.deploy("m", mini_vgg_program(), kSampleShape);

  Rng rng(42);
  const Tensor sample = rng.normal_tensor({1, 16, 16, 3}, 0.2f, 1.2f);
  net::GatewayClient client("localhost", gw.port());
  const uint32_t id = client.send_infer("m", sample);
  // Let the owning shard parse + admit the request (frames that arrive after
  // drain begins are answered SHUTTING_DOWN, which is not what this test is
  // about); it then sits in the 150ms batch window when the drain starts.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  gw.request_stop();  // signal-safe entry point
  gw.stop_and_drain();
  EXPECT_TRUE(gw.stopped());

  // The drain barrier answered the queued request before closing.
  const auto tagged = client.recv_response();
  EXPECT_EQ(tagged.request_id, id);
  EXPECT_EQ(tagged.response.status, net::WireStatus::kOk) << tagged.response.message;
  EXPECT_TRUE(tagged.response.output.equals(test::run_program(mini_vgg_program(), sample)));
}

TEST(QosShard, SingleShardAndBadConfigValidation) {
  EXPECT_THROW(
      {
        qos::ShardedGatewayConfig cfg;
        cfg.num_shards = 0;
        qos::ShardedGateway gw(cfg);
      },
      std::invalid_argument);

  qos::ShardedGatewayConfig cfg;
  cfg.num_shards = 1;  // degenerates to a plain gateway
  qos::ShardedGateway gw(cfg);
  EXPECT_EQ(gw.num_shards(), 1);
  gw.deploy("m", mini_vgg_program(), kSampleShape);
  Rng rng(43);
  const Tensor sample = rng.normal_tensor({1, 16, 16, 3}, 0.2f, 1.2f);
  net::GatewayClient client("localhost", gw.port());
  EXPECT_EQ(client.infer("m", sample).status, net::WireStatus::kOk);
}

// ---- Hedged / retrying client -----------------------------------------------

TEST(QosClient, HedgeDuplicatesSlowRequestFirstResponseWins) {
  serve::BatchConfig bcfg;
  bcfg.max_batch = 8;
  bcfg.max_delay_us = 250'000;  // every lone request waits out the batch window
  QosRig rig(bcfg);
  rig.server.deploy("m", mini_vgg_program(), kSampleShape);
  Rng rng(51);
  const Tensor sample = rng.normal_tensor({1, 16, 16, 3}, 0.2f, 1.2f);
  const Tensor expected = test::run_program(mini_vgg_program(), sample);

  net::GatewayClient client("localhost", rig.port());
  net::HedgeConfig hedge;
  hedge.hedge_after_us = 20'000;  // far below the 250ms batch window
  client.set_hedge(hedge);

  const net::InferResponse first = client.infer("m", sample);
  EXPECT_EQ(first.status, net::WireStatus::kOk) << first.message;
  EXPECT_TRUE(first.output.equals(expected));
  EXPECT_EQ(client.hedges_sent(), 1u);

  // The loser's late response is discarded transparently — the connection
  // pair stays clean for the next call.
  const net::InferResponse second = client.infer("m", sample);
  EXPECT_EQ(second.status, net::WireStatus::kOk) << second.message;
  EXPECT_TRUE(second.output.equals(expected));
  EXPECT_EQ(client.hedges_sent(), 2u);
  EXPECT_LE(client.hedge_wins(), client.hedges_sent());

  // Fast responses never hedge.
  net::GatewayClient plain("localhost", rig.port());
  net::HedgeConfig lazy;
  lazy.hedge_after_us = 30'000'000;
  plain.set_hedge(lazy);
  EXPECT_EQ(plain.infer("m", sample).status, net::WireStatus::kOk);
  EXPECT_EQ(plain.hedges_sent(), 0u);
}

TEST(QosClient, ShedRetryBacksOffUntilAdmitted) {
  serve::BatchConfig bcfg;
  bcfg.max_batch = 8;
  bcfg.max_delay_us = 150'000;
  bcfg.max_queue = 1;  // one queued request fills the default tenant's lane
  QosRig rig(bcfg);
  rig.server.deploy("m", mini_vgg_program(), kSampleShape);
  Rng rng(52);
  const Tensor sample = rng.normal_tensor({1, 16, 16, 3}, 0.2f, 1.2f);

  std::thread occupier([&] {
    net::GatewayClient first("localhost", rig.port());
    EXPECT_EQ(first.infer("m", sample).status, net::WireStatus::kOk);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  // Without retries the full lane is a typed SHED...
  net::GatewayClient blunt("localhost", rig.port());
  EXPECT_EQ(blunt.infer("m", sample).status, net::WireStatus::kShed);

  // ...with retries the client backs off until the batch window drains the
  // lane and the request lands.
  net::GatewayClient patient("localhost", rig.port());
  net::HedgeConfig retry;
  retry.shed_retries = 10;
  retry.shed_backoff_us = 20'000;
  patient.set_hedge(retry);
  const net::InferResponse resp = patient.infer("m", sample);
  EXPECT_EQ(resp.status, net::WireStatus::kOk) << resp.message;
  occupier.join();
}

TEST(QosClient, OversizedTokenFailsOnSend) {
  QosRig rig;
  rig.server.deploy("m", mini_vgg_program(), kSampleShape);
  Rng rng(53);
  net::GatewayClient client("localhost", rig.port());
  client.set_token(std::string(net::kMaxTokenBytes + 1, 'x'));
  EXPECT_THROW(client.infer("m", rng.normal_tensor({1, 16, 16, 3}, 0.2f, 1.2f)),
               std::invalid_argument);
}

}  // namespace
}  // namespace tqt
