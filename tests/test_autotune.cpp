// Tests for the kernel autotuner (autotune.{h,cpp}) and the channel-blocked
// NC8HW8 layout: bit-exactness of tuned programs against the int64 reference
// at multiple thread counts, the forced-blocked layout path (pack/unpack
// pseudo-ops), sidecar persistence (round-trip, truncation at every prefix,
// hash validation, silent re-tune fallbacks), serving hot-swap under
// concurrent execution with differently-tuned artifacts, --explain-kernels
// plumbing, the engine.autotune.* metrics, and the TQT_KERNELS validation
// seam.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "fixedpoint/autotune.h"
#include "fixedpoint/engine.h"
#include "fixedpoint/kernels/kernels.h"
#include "fixedpoint/plan.h"
#include "graph_opt/quantize_pass.h"
#include "graph_opt/transforms.h"
#include "models/zoo.h"
#include "observe/observe.h"
#include "runtime/parallel.h"
#include "serve/model_registry.h"
#include "tensor/rng.h"
#include "test_util.h"

namespace tqt {
namespace {

struct Prepared {
  BuiltModel m;
  QuantizePassResult qres;
};

Prepared prepare(ModelKind kind, uint64_t seed = 11) {
  Prepared p;
  p.m = build_model(kind, 10, seed);
  Rng rng(seed);
  p.m.graph.set_training(true);
  for (int i = 0; i < 10; ++i) {
    p.m.graph.run({{p.m.input, rng.normal_tensor({8, 16, 16, 3}, 0.2f, 1.0f)}}, p.m.logits);
  }
  p.m.graph.set_training(false);
  Tensor calib = rng.normal_tensor({16, 16, 16, 3}, 0.2f, 1.0f);
  optimize_for_quantization(p.m.graph, p.m.input, calib);
  QuantizeConfig cfg;
  p.qres = quantize_pass(p.m.graph, p.m.input, p.m.logits, cfg);
  calibrate_thresholds(p.m.graph, p.qres, p.m.input, calib, WeightInit::kMax);
  return p;
}

FixedPointProgram compile(Prepared& p) {
  return compile_fixed_point(p.m.graph, p.m.input, p.qres.quantized_output);
}

void expect_raw_equal(const IntTensor& a, const IntTensor& b, const std::string& what) {
  ASSERT_EQ(a.shape, b.shape) << what;
  ASSERT_EQ(a.exponent, b.exponent) << what;
  ASSERT_EQ(a.data.size(), b.data.size()) << what;
  for (size_t i = 0; i < a.data.size(); ++i) {
    ASSERT_EQ(a.data[i], b.data[i]) << what << " lane " << i;
  }
}

std::string temp_path(const char* name) { return ::testing::TempDir() + "/" + name; }

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// RAII: turn tuning on (or force an algo) and restore the pristine
/// off-by-default state plus an empty shape cache afterwards, so the
/// remaining test binaries see exactly the pre-autotuner behavior.
struct TuneScope {
  explicit TuneScope(int mode, int forced = -1) {
    autotune::reset_for_test();
    autotune::set_mode(mode);
    if (forced >= 0) autotune::set_forced_algo_for_test(forced);
  }
  ~TuneScope() {
    autotune::set_mode(-1);
    autotune::reset_for_test();
  }
};

// ---- Bit-exactness of tuned programs ---------------------------------------

class TunedEngine : public ::testing::TestWithParam<ModelKind> {};

// The tuner only changes WHICH exact kernel runs: with autotuning on, every
// zoo model stays bit-identical to the int64 reference interpreter at 1 and
// 4 threads.
TEST_P(TunedEngine, MatchesReferenceWithAutotuneOn) {
  TuneScope scope(1);
  Prepared p = prepare(GetParam());
  FixedPointProgram prog = compile(p);
  ASSERT_NE(prog.tuning(), nullptr) << "no instruction was tunable";
  EXPECT_GT(prog.tuning()->tuned_instrs, 0);
  Rng rng(77);
  const Tensor probe = rng.normal_tensor({3, 16, 16, 3}, 0.2f, 1.2f);
  const IntTensor ref = prog.run_raw_reference(probe);
  for (int threads : {1, 4}) {
    set_num_threads(threads);
    expect_raw_equal(prog.run_raw(probe), ref,
                     model_name(GetParam()) + " tuned @" + std::to_string(threads));
  }
  set_num_threads(0);
}

INSTANTIATE_TEST_SUITE_P(AllModels, TunedEngine, ::testing::ValuesIn(all_model_kinds()),
                         [](const auto& info) { return model_name(info.param); });

// Forcing the blocked layout on every capable instruction exercises the
// pack/unpack pseudo-op insertion and the NC8HW8 kernels end to end; results
// must stay exact, including across thread counts and on both kernel sets.
TEST(TunedEngineBlocked, ForcedBlockedLayoutIsBitExact) {
  for (ModelKind kind : {ModelKind::kMiniVgg, ModelKind::kMiniMobileNetV2}) {
    TuneScope scope(1, static_cast<int>(fpk::Algo::kBlocked));
    Prepared p = prepare(kind);
    FixedPointProgram prog = compile(p);
    ASSERT_NE(prog.tuning(), nullptr);
    ASSERT_GT(prog.tuning()->blocked_instrs, 0) << model_name(kind);
    // Layout pseudo-ops exist only in the execution stream; the canonical
    // program (what serialization and the reference read) never has them.
    EXPECT_FALSE(prog.plan().instrs.empty());
    for (const FpInstr& in : prog.instructions()) {
      EXPECT_NE(in.kind, FpInstr::Kind::kLayoutPack);
      EXPECT_NE(in.kind, FpInstr::Kind::kLayoutUnpack);
    }
    int packs = 0, unpacks = 0;
    for (const FpInstr& in : prog.plan().instrs) {
      packs += in.kind == FpInstr::Kind::kLayoutPack;
      unpacks += in.kind == FpInstr::Kind::kLayoutUnpack;
    }
    EXPECT_GT(packs, 0);
    EXPECT_GT(unpacks, 0);
    Rng rng(78);
    const Tensor probe = rng.normal_tensor({2, 16, 16, 3}, 0.2f, 1.2f);
    const IntTensor ref = prog.run_raw_reference(probe);
    for (const fpk::KernelSet* ks :
         {&fpk::scalar_kernels(), fpk::avx2_kernels()}) {
      if (!ks) continue;
      fpk::set_active_kernels(ks);
      for (int threads : {1, 4}) {
        set_num_threads(threads);
        expect_raw_equal(prog.run_raw(probe), ref,
                         std::string(model_name(kind)) + " blocked " + ks->name + " @" +
                             std::to_string(threads));
      }
    }
    fpk::set_active_kernels(nullptr);
    set_num_threads(0);
  }
}

// A tuned program and the untuned build of the SAME model agree lane for
// lane — tuning is invisible to results by construction.
TEST(TunedEngineBlocked, TunedMatchesUntuned) {
  Prepared p = prepare(ModelKind::kMiniVgg);
  FixedPointProgram prog = compile(p);
  Rng rng(79);
  const Tensor probe = rng.normal_tensor({2, 16, 16, 3}, 0.2f, 1.2f);
  const IntTensor untuned = prog.run_raw(probe);
  TuneScope scope(1);
  prog.refinalize();
  expect_raw_equal(prog.run_raw(probe), untuned, "tuned vs untuned");
}

// ---- Sidecar persistence ---------------------------------------------------

autotune::ProgramTuning sample_tuning() {
  autotune::ProgramTuning t;
  t.program_hash = 0x1234abcd5678ef90ull;
  autotune::TuneEntry a;
  a.winner = static_cast<int32_t>(fpk::Algo::kGemmRaw);
  a.t_std = 1.5e-4;
  a.t_blk = 0.9e-4;
  a.t_pack = 1e-5;
  a.t_unpack = 2e-5;
  autotune::TuneEntry b;
  b.winner = static_cast<int32_t>(fpk::Algo::kDwDirect);
  b.t_std = 3e-5;
  t.entries.emplace_back("conv|i8>i8|x1x16x16x3|w3x3x3x8|s1x1|p1.1.1.1|avx2", a);
  t.entries.emplace_back("dw|i8>i8|x1x8x8x16|w3x3x16|s1x1|p1.1.1.1|avx2", b);
  return t;
}

TEST(TuneSidecar, RoundTrip) {
  const std::string path = temp_path("roundtrip.tqt.tune");
  const autotune::ProgramTuning t = sample_tuning();
  ASSERT_TRUE(autotune::save_sidecar(path, t));
  std::vector<std::pair<std::string, autotune::TuneEntry>> got;
  ASSERT_TRUE(autotune::load_sidecar(path, t.program_hash, autotune::cpu_feature_hash(), got));
  ASSERT_EQ(got.size(), t.entries.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].first, t.entries[i].first);
    EXPECT_EQ(got[i].second.winner, t.entries[i].second.winner);
    EXPECT_DOUBLE_EQ(got[i].second.t_std, t.entries[i].second.t_std);
    EXPECT_DOUBLE_EQ(got[i].second.t_blk, t.entries[i].second.t_blk);
    EXPECT_DOUBLE_EQ(got[i].second.t_pack, t.entries[i].second.t_pack);
    EXPECT_DOUBLE_EQ(got[i].second.t_unpack, t.entries[i].second.t_unpack);
  }
  std::remove(path.c_str());
}

// Truncation at EVERY byte prefix must be rejected cleanly (no throw, no
// partial output) — the load path treats any short read as "no sidecar".
TEST(TuneSidecar, TruncationAtEveryPrefixRejected) {
  const std::string path = temp_path("trunc.tqt.tune");
  const autotune::ProgramTuning t = sample_tuning();
  ASSERT_TRUE(autotune::save_sidecar(path, t));
  const std::string bytes = read_file(path);
  ASSERT_GT(bytes.size(), 24u);
  for (size_t n = 0; n < bytes.size(); ++n) {
    write_file(path, bytes.substr(0, n));
    std::vector<std::pair<std::string, autotune::TuneEntry>> got;
    got.emplace_back("sentinel", autotune::TuneEntry{});
    EXPECT_FALSE(
        autotune::load_sidecar(path, t.program_hash, autotune::cpu_feature_hash(), got))
        << "prefix " << n;
    ASSERT_EQ(got.size(), 1u) << "out modified on failure at prefix " << n;
    EXPECT_EQ(got[0].first, "sentinel");
  }
  std::remove(path.c_str());
}

TEST(TuneSidecar, WrongHashesRejected) {
  const std::string path = temp_path("hash.tqt.tune");
  const autotune::ProgramTuning t = sample_tuning();
  ASSERT_TRUE(autotune::save_sidecar(path, t));
  std::vector<std::pair<std::string, autotune::TuneEntry>> got;
  EXPECT_FALSE(autotune::load_sidecar(path, t.program_hash ^ 1, autotune::cpu_feature_hash(), got));
  EXPECT_FALSE(autotune::load_sidecar(path, t.program_hash, autotune::cpu_feature_hash() ^ 1, got));
  EXPECT_TRUE(got.empty());
  // Corrupt magic and version are rejected too.
  std::string bytes = read_file(path);
  std::string bad = bytes;
  bad[0] = 'X';
  write_file(path, bad);
  EXPECT_FALSE(autotune::load_sidecar(path, t.program_hash, autotune::cpu_feature_hash(), got));
  bad = bytes;
  bad[4] = 99;
  write_file(path, bad);
  EXPECT_FALSE(autotune::load_sidecar(path, t.program_hash, autotune::cpu_feature_hash(), got));
  std::remove(path.c_str());
}

TEST(TuneSidecar, MissingFileRejected) {
  std::vector<std::pair<std::string, autotune::TuneEntry>> got;
  EXPECT_FALSE(autotune::load_sidecar(temp_path("does_not_exist.tqt.tune"), 0, 0, got));
}

// save() writes the sidecar next to the artifact; load() adopts it without
// re-measuring (from_sidecar), and a STALE sidecar — program or CPU hash
// mismatch — silently falls back to a fresh tune.
TEST(TuneSidecar, ArtifactRoundTripAndStaleFallback) {
  TuneScope scope(1);
  Prepared p = prepare(ModelKind::kMiniVgg);
  FixedPointProgram prog = compile(p);
  ASSERT_NE(prog.tuning(), nullptr);
  const std::string path = temp_path("tuned_model.tqtp");
  const std::string sidecar = path + ".tqt.tune";
  prog.save(path);
  ASSERT_FALSE(read_file(sidecar).empty()) << "save() did not write the sidecar";

  // Fresh process state: the load must come entirely from the sidecar.
  autotune::reset_for_test();
  autotune::set_mode(1);
  FixedPointProgram back = FixedPointProgram::load(path);
  ASSERT_NE(back.tuning(), nullptr);
  EXPECT_TRUE(back.tuning()->from_sidecar);
  EXPECT_EQ(back.tuning()->program_hash, prog.tuning()->program_hash);
  Rng rng(80);
  const Tensor probe = rng.normal_tensor({2, 16, 16, 3}, 0.2f, 1.2f);
  expect_raw_equal(back.run_raw(probe), prog.run_raw_reference(probe), "sidecar-tuned load");

  // Flip one program-hash byte in the sidecar: the load silently re-tunes.
  std::string bytes = read_file(sidecar);
  bytes[8] = static_cast<char>(bytes[8] ^ 0x5a);
  write_file(sidecar, bytes);
  autotune::reset_for_test();
  autotune::set_mode(1);
  FixedPointProgram retuned = FixedPointProgram::load(path);
  ASSERT_NE(retuned.tuning(), nullptr);
  EXPECT_FALSE(retuned.tuning()->from_sidecar);
  expect_raw_equal(retuned.run_raw(probe), prog.run_raw_reference(probe), "stale-sidecar load");

  // Same with the CPU hash (bytes 16..23).
  bytes = read_file(sidecar);  // still the corrupted program hash — restore it
  prog.save(path);
  bytes = read_file(sidecar);
  bytes[16] = static_cast<char>(bytes[16] ^ 0x5a);
  write_file(sidecar, bytes);
  autotune::reset_for_test();
  autotune::set_mode(1);
  FixedPointProgram retuned2 = FixedPointProgram::load(path);
  ASSERT_NE(retuned2.tuning(), nullptr);
  EXPECT_FALSE(retuned2.tuning()->from_sidecar);
  std::remove(path.c_str());
  std::remove(sidecar.c_str());
}

// ---- Hot-swap soak -----------------------------------------------------------

// Two artifacts of the SAME canonical program carrying DIFFERENT tunings
// (v1: forced raw GEMM, v2: forced blocked layout) hot-swap under concurrent
// execution; every reader sees bit-exact results throughout because tuning
// never changes values, only kernels. Run under TSan in verify.sh.
TEST(TuneHotSwap, SoakAcrossDifferentlyTunedVersions) {
  Prepared p = prepare(ModelKind::kMiniVgg);
  FixedPointProgram prog = compile(p);
  const std::string v1 = temp_path("swap_v1.tqtp");
  const std::string v2 = temp_path("swap_v2.tqtp");
  {
    TuneScope scope(1, static_cast<int>(fpk::Algo::kGemmRaw));
    prog.refinalize();
    ASSERT_NE(prog.tuning(), nullptr);
    EXPECT_EQ(prog.tuning()->blocked_instrs, 0);
    prog.save(v1);
  }
  {
    TuneScope scope(1, static_cast<int>(fpk::Algo::kBlocked));
    prog.refinalize();
    ASSERT_NE(prog.tuning(), nullptr);
    EXPECT_GT(prog.tuning()->blocked_instrs, 0);
    prog.save(v2);
  }
  Rng rng(81);
  const Tensor probe = rng.normal_tensor({2, 16, 16, 3}, 0.2f, 1.2f);
  const IntTensor ref = prog.run_raw_reference(probe);

  TuneScope scope(1);
  serve::ModelRegistry reg;
  ASSERT_EQ(reg.install_from_file("m", v1), 1u);
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto prog_now = reg.lookup("m");
        const IntTensor out = prog_now->run_raw(probe);
        if (out.data != ref.data || out.exponent != ref.exponent) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (int swap = 0; swap < 6; ++swap) {
    reg.install_from_file("m", swap % 2 == 0 ? v2 : v1);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(reg.version("m"), 7u);
  std::remove(v1.c_str());
  std::remove(v2.c_str());
  std::remove((v1 + ".tqt.tune").c_str());
  std::remove((v2 + ".tqt.tune").c_str());
}

// ---- Explain / metrics / misc ----------------------------------------------

TEST(TuneExplain, ReportsAlgoPerInstruction) {
  TuneScope scope(1, static_cast<int>(fpk::Algo::kBlocked));
  Prepared p = prepare(ModelKind::kMiniVgg);
  FixedPointProgram prog = compile(p);
  const auto rows = autotune::explain_kernels(prog);
  ASSERT_EQ(rows.size(), prog.plan().instrs.empty() ? prog.instructions().size()
                                                    : prog.plan().instrs.size());
  int tuned = 0, blocked = 0;
  for (const auto& r : rows) {
    EXPECT_FALSE(r.kind.empty());
    if (r.tuned) {
      ++tuned;
      EXPECT_FALSE(r.algo.empty());
      EXPECT_FALSE(r.shape.empty());
    }
    if (r.algo == "blocked") ++blocked;
  }
  EXPECT_GT(tuned, 0);
  EXPECT_GT(blocked, 0);
}

TEST(TuneMetrics, CountersAndGaugesRecorded) {
  auto& m = observe::MetricsRegistry::global();
  const uint64_t timed0 = m.counter("engine.autotune.candidates_timed").value();
  const uint64_t retunes0 = m.counter("engine.autotune.retunes").value();
  TuneScope scope(1);
  Prepared p = prepare(ModelKind::kMiniVgg);
  FixedPointProgram prog = compile(p);
  ASSERT_NE(prog.tuning(), nullptr);
  EXPECT_GT(m.counter("engine.autotune.candidates_timed").value(), timed0);
  EXPECT_GT(m.counter("engine.autotune.retunes").value(), retunes0);
  EXPECT_EQ(m.gauge("engine.autotune.tuned_instrs").value(), prog.tuning()->tuned_instrs);
  EXPECT_EQ(m.gauge("engine.autotune.blocked_selected").value(),
            prog.tuning()->blocked_instrs);
  // A recompile of the same model hits the process shape cache.
  const uint64_t hits0 = m.counter("engine.autotune.cache_hits").value();
  prog.refinalize();
  EXPECT_GT(m.counter("engine.autotune.cache_hits").value(), hits0);
}

// The tuner must never perturb the serialized artifact: identical bytes with
// and without tuning (layout pseudo-ops live only in the execution plan).
TEST(TuneSerialization, CanonicalBytesUnchangedByTuning) {
  Prepared p = prepare(ModelKind::kMiniVgg);
  FixedPointProgram prog = compile(p);
  const std::string a = temp_path("untuned.tqtp");
  const std::string b = temp_path("tuned.tqtp");
  prog.save(a);
  {
    TuneScope scope(1, static_cast<int>(fpk::Algo::kBlocked));
    prog.refinalize();
    prog.save(b);
  }
  EXPECT_EQ(read_file(a), read_file(b));
  std::remove(a.c_str());
  std::remove(b.c_str());
  std::remove((a + ".tqt.tune").c_str());
  std::remove((b + ".tqt.tune").c_str());
}

// TQT_KERNELS validation seam: the env-var exit path is unit-testable via
// kernels_env_error (the CLI CTest case covers the actual exit(1)).
TEST(KernelsEnv, UnrecognizedValueProducesError) {
  EXPECT_EQ(fpk::kernels_env_error("scalar"), nullptr);
  EXPECT_EQ(fpk::kernels_env_error("avx2"), nullptr);
  EXPECT_EQ(fpk::kernels_env_error("auto"), nullptr);
  EXPECT_NE(fpk::kernels_env_error("neon"), nullptr);
  EXPECT_NE(fpk::kernels_env_error(""), nullptr);
  EXPECT_NE(fpk::kernels_env_error("AVX2"), nullptr);
}

TEST(TuneMode, EnvAndOverrideResolution) {
  autotune::set_mode(0);
  EXPECT_EQ(autotune::mode(), autotune::Mode::kOff);
  autotune::set_mode(1);
  EXPECT_EQ(autotune::mode(), autotune::Mode::kOn);
  autotune::set_mode(2);
  EXPECT_EQ(autotune::mode(), autotune::Mode::kForce);
  autotune::set_mode(-1);  // back to env; the test env does not set TQT_AUTOTUNE
}

}  // namespace
}  // namespace tqt
