// Tests for the tqt-observe telemetry layer: JsonWriter output, metrics
// snapshot round-trips through a real JSON parse, trace-export structure
// (spans nest, per-thread ordering), and concurrent instrument updates (the
// TSan target for the -DTQT_SANITIZE=thread build).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "observe/observe.h"

namespace tqt {
namespace {

// ---- Mini JSON parser (tests only) -----------------------------------------
// Just enough recursive descent to load what JsonWriter emits; parse errors
// throw, so a malformed snapshot fails the test at the parse site.

struct JVal {
  enum Kind { kNull, kBool, kNum, kStr, kArr, kObj } kind = kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JVal> arr;
  std::map<std::string, JVal> obj;

  const JVal& at(const std::string& k) const {
    const auto it = obj.find(k);
    if (it == obj.end()) throw std::runtime_error("missing key: " + k);
    return it->second;
  }
  bool has(const std::string& k) const { return obj.find(k) != obj.end(); }
};

class MiniJsonParser {
 public:
  explicit MiniJsonParser(const std::string& text) : p_(text.c_str()), end_(p_ + text.size()) {}

  JVal parse() {
    JVal v = value();
    skip_ws();
    if (p_ != end_) throw std::runtime_error("trailing JSON content");
    return v;
  }

 private:
  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) ++p_;
  }

  char peek() {
    skip_ws();
    if (p_ == end_) throw std::runtime_error("unexpected end of JSON");
    return *p_;
  }

  void expect(char c) {
    if (peek() != c) throw std::runtime_error(std::string("expected '") + c + "'");
    ++p_;
  }

  bool consume(const char* lit) {
    const size_t n = std::strlen(lit);
    if (static_cast<size_t>(end_ - p_) < n || std::strncmp(p_, lit, n) != 0) return false;
    p_ += n;
    return true;
  }

  JVal value() {
    const char c = peek();
    JVal v;
    if (c == '{') {
      v.kind = JVal::kObj;
      expect('{');
      if (peek() != '}') {
        for (;;) {
          const std::string k = string_lit();
          expect(':');
          v.obj.emplace(k, value());
          if (peek() != ',') break;
          expect(',');
        }
      }
      expect('}');
    } else if (c == '[') {
      v.kind = JVal::kArr;
      expect('[');
      if (peek() != ']') {
        for (;;) {
          v.arr.push_back(value());
          if (peek() != ',') break;
          expect(',');
        }
      }
      expect(']');
    } else if (c == '"') {
      v.kind = JVal::kStr;
      v.str = string_lit();
    } else if (consume("true")) {
      v.kind = JVal::kBool;
      v.b = true;
    } else if (consume("false")) {
      v.kind = JVal::kBool;
      v.b = false;
    } else if (consume("null")) {
      v.kind = JVal::kNull;
    } else {
      v.kind = JVal::kNum;
      char* after = nullptr;
      v.num = std::strtod(p_, &after);
      if (after == p_) throw std::runtime_error("bad JSON number");
      p_ = after;
    }
    return v;
  }

  std::string string_lit() {
    expect('"');
    std::string out;
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c == '\\') {
        if (p_ == end_) throw std::runtime_error("bad escape");
        const char e = *p_++;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (end_ - p_ < 4) throw std::runtime_error("bad \\u escape");
            const std::string hex(p_, p_ + 4);
            p_ += 4;
            const long cp = std::strtol(hex.c_str(), nullptr, 16);
            // JsonWriter only emits \u00XX for control bytes.
            out += static_cast<char>(cp);
            break;
          }
          default: throw std::runtime_error("bad escape");
        }
      } else {
        out += c;
      }
    }
    expect('"');
    return out;
  }

  const char* p_;
  const char* end_;
};

JVal parse_json(const std::string& text) { return MiniJsonParser(text).parse(); }

// ---- JsonWriter ------------------------------------------------------------

TEST(JsonWriter, NestedStructureRoundTrips) {
  observe::JsonWriter w;
  w.obj();
  w.kv("name", "quote\" backslash\\ newline\n tab\t");
  w.kv("count", 42);
  w.kv("big", static_cast<unsigned long long>(1) << 63);
  w.kv("neg", -7);
  w.kv("pi", 3.5);
  w.kv("yes", true);
  w.key("list").arr().value(1).value("two").value(false).end();
  w.key("nested").obj().kv("k", "v").end();
  w.end();

  const JVal v = parse_json(w.str());
  EXPECT_EQ(v.at("name").str, "quote\" backslash\\ newline\n tab\t");
  EXPECT_EQ(v.at("count").num, 42.0);
  EXPECT_EQ(v.at("big").num, std::ldexp(1.0, 63));
  EXPECT_EQ(v.at("neg").num, -7.0);
  EXPECT_EQ(v.at("pi").num, 3.5);
  EXPECT_TRUE(v.at("yes").b);
  ASSERT_EQ(v.at("list").arr.size(), 3u);
  EXPECT_EQ(v.at("list").arr[1].str, "two");
  EXPECT_EQ(v.at("nested").at("k").str, "v");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  observe::JsonWriter w;
  w.obj();
  w.kv("nan", std::nan(""));
  w.kv("inf", HUGE_VAL);
  w.end();
  const JVal v = parse_json(w.str());
  EXPECT_EQ(v.at("nan").kind, JVal::kNull);
  EXPECT_EQ(v.at("inf").kind, JVal::kNull);
}

TEST(JsonWriter, MatchesLegacyServeFormatting) {
  // The serve snapshot consumers string-match on ": " / ", " spacing; the
  // writer must keep emitting the PR 2 style.
  observe::JsonWriter w;
  w.obj().kv("version", 1).kv("name", "m").end();
  EXPECT_EQ(w.str(), "{\"version\": 1, \"name\": \"m\"}");
}

// ---- Metrics registry ------------------------------------------------------

TEST(Metrics, SnapshotJsonParsesBackWithExactValues) {
  observe::MetricsRegistry reg;
  reg.counter("requests").inc(3);
  reg.gauge("depth").set(5);
  reg.gauge("depth").set(2);
  observe::Histogram& h = reg.histogram("lat", observe::Histogram::Layout::kGeometricUs);
  for (const uint64_t s : {1u, 2u, 3u, 1000000u}) h.record(s);
  observe::Series& ser = reg.series("loss");
  ser.append(0, 2.5);
  ser.append(1, 1.25);

  const JVal v = parse_json(reg.json_snapshot());
  EXPECT_EQ(v.at("counters").at("requests").num, 3.0);
  EXPECT_EQ(v.at("gauges").at("depth").at("value").num, 2.0);
  EXPECT_EQ(v.at("gauges").at("depth").at("high_water").num, 5.0);

  const JVal& hist = v.at("histograms").at("lat");
  EXPECT_EQ(hist.at("count").num, 4.0);
  EXPECT_EQ(hist.at("sum").num, 1000006.0);
  EXPECT_EQ(hist.at("max").num, 1000000.0);
  EXPECT_DOUBLE_EQ(hist.at("mean").num, 1000006.0 / 4.0);
  const double p50 = hist.at("p50").num;
  const double p95 = hist.at("p95").num;
  const double p99 = hist.at("p99").num;
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, 1000000.0);
  // Buckets: ascending bounds, counts sum to the total count.
  const JVal& buckets = hist.at("buckets");
  ASSERT_EQ(buckets.kind, JVal::kArr);
  double total = 0.0, prev_bound = -1.0;
  for (const JVal& b : buckets.arr) {
    ASSERT_EQ(b.arr.size(), 2u);
    EXPECT_GT(b.arr[0].num, prev_bound);
    prev_bound = b.arr[0].num;
    total += b.arr[1].num;
  }
  EXPECT_EQ(total, 4.0);

  const JVal& series = v.at("series").at("loss");
  EXPECT_EQ(series.at("dropped").num, 0.0);
  ASSERT_EQ(series.at("points").arr.size(), 2u);
  EXPECT_EQ(series.at("points").arr[1].arr[0].num, 1.0);
  EXPECT_EQ(series.at("points").arr[1].arr[1].num, 1.25);
}

TEST(Metrics, LinearHistogramPercentilesAreUpperBoundEstimates) {
  observe::MetricsRegistry reg;
  observe::Histogram& h = reg.histogram("sizes", observe::Histogram::Layout::kLinear);
  for (uint64_t i = 1; i <= 100; ++i) h.record(i);
  const observe::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.max, 100u);
  // Linear buckets are exact up to kLinearMax, so percentiles are the exact
  // rank values here (rank = p * count + 0.5 rounded into a bucket).
  EXPECT_GE(s.percentile(0.50), 50u);
  EXPECT_LE(s.percentile(0.50), 51u);
  EXPECT_EQ(s.percentile(1.0), 100u);
  EXPECT_EQ(s.percentile(0.01), 1u);
}

TEST(Metrics, SeriesDropsBeyondCapacityAndCounts) {
  observe::MetricsRegistry reg;
  observe::Series& s = reg.series("big");
  const size_t n = observe::Series::kMaxPoints + 10;
  for (size_t i = 0; i < n; ++i) s.append(static_cast<double>(i), 1.0);
  EXPECT_EQ(s.size(), observe::Series::kMaxPoints);
  EXPECT_EQ(s.dropped(), 10u);
}

TEST(Metrics, SameNameDifferentKindsAreIndependent) {
  observe::MetricsRegistry reg;
  reg.counter("x").inc(7);
  reg.gauge("x").set(-3);
  EXPECT_EQ(reg.counter("x").value(), 7u);
  EXPECT_EQ(reg.gauge("x").value(), -3);
}

TEST(Metrics, ConcurrentUpdatesAreExact) {
  // The TSan target: every instrument hammered from many threads at once.
  observe::MetricsRegistry reg;
  observe::Counter& c = reg.counter("c");
  observe::Gauge& g = reg.gauge("g");
  observe::Histogram& h = reg.histogram("h", observe::Histogram::Layout::kLinear);
  observe::Series& s = reg.series("s");
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        g.add(1);
        g.add(-1);
        h.record(static_cast<uint64_t>(t));
        if (i % 100 == 0) s.append(i, t);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.snapshot().count, static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(s.size(), static_cast<size_t>(kThreads) * (kIters / 100));
}

// ---- Tracer ----------------------------------------------------------------

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    observe::Tracer::global().set_enabled(false);
    observe::Tracer::global().clear();
  }
  void TearDown() override {
    observe::Tracer::global().set_enabled(false);
    observe::Tracer::global().clear();
  }
};

TEST_F(TracerTest, DisabledSpansRecordNothing) {
  {
    TQT_TRACE("quiet", "test");
  }
  for (const observe::ThreadTrace& t : observe::Tracer::global().threads()) {
    EXPECT_TRUE(t.events.empty());
  }
}

TEST_F(TracerTest, SpansNestAndEndTimesAreMonotonePerThread) {
  observe::Tracer::global().set_enabled(true);
  {
    observe::TraceSpan outer("outer", "test");
    outer.argf("k=%d", 7);
    { observe::TraceSpan inner("inner", "test"); }
  }
  observe::Tracer::global().set_enabled(false);

  const std::vector<observe::ThreadTrace> traces = observe::Tracer::global().threads();
  const observe::TraceEvent* outer_ev = nullptr;
  const observe::TraceEvent* inner_ev = nullptr;
  for (const observe::ThreadTrace& t : traces) {
    uint64_t prev_end = 0;
    for (const observe::TraceEvent& e : t.events) {
      // Events are recorded at span end, so per-thread end times ascend.
      EXPECT_GE(e.ts_ns + e.dur_ns, prev_end);
      prev_end = e.ts_ns + e.dur_ns;
      if (std::string(e.name) == "outer") outer_ev = &e;
      if (std::string(e.name) == "inner") inner_ev = &e;
    }
  }
  ASSERT_NE(outer_ev, nullptr);
  ASSERT_NE(inner_ev, nullptr);
  // The inner span nests inside the outer one.
  EXPECT_GE(inner_ev->ts_ns, outer_ev->ts_ns);
  EXPECT_LE(inner_ev->ts_ns + inner_ev->dur_ns, outer_ev->ts_ns + outer_ev->dur_ns);
  EXPECT_STREQ(outer_ev->args, "k=7");
}

TEST_F(TracerTest, ChromeJsonExportLoadsAndNests) {
  observe::Tracer::global().set_enabled(true);
  {
    observe::TraceSpan outer("outer", "test");
    { TQT_TRACE("inner", "test"); }
  }
  observe::Tracer::global().set_enabled(false);

  const JVal doc = parse_json(observe::Tracer::global().chrome_json());
  const JVal& events = doc.at("traceEvents");
  ASSERT_EQ(events.kind, JVal::kArr);
  const JVal* outer_ev = nullptr;
  const JVal* inner_ev = nullptr;
  for (const JVal& e : events.arr) {
    EXPECT_EQ(e.at("ph").str, "X");
    EXPECT_TRUE(e.has("ts"));
    EXPECT_TRUE(e.has("dur"));
    EXPECT_TRUE(e.has("pid"));
    EXPECT_TRUE(e.has("tid"));
    if (e.at("name").str == "outer") outer_ev = &e;
    if (e.at("name").str == "inner") inner_ev = &e;
  }
  ASSERT_NE(outer_ev, nullptr);
  ASSERT_NE(inner_ev, nullptr);
  EXPECT_EQ(outer_ev->at("cat").str, "test");
  EXPECT_GE(inner_ev->at("ts").num, outer_ev->at("ts").num);
  EXPECT_LE(inner_ev->at("ts").num + inner_ev->at("dur").num,
            outer_ev->at("ts").num + outer_ev->at("dur").num);
}

TEST_F(TracerTest, RingDropsOldestWhenFull) {
  observe::Tracer::global().set_enabled(true);
  const size_t extra = 100;
  for (size_t i = 0; i < observe::Tracer::kRingCapacity + extra; ++i) {
    TQT_TRACE("spin", "test");
  }
  observe::Tracer::global().set_enabled(false);
  bool found = false;
  for (const observe::ThreadTrace& t : observe::Tracer::global().threads()) {
    if (t.events.empty()) continue;
    found = true;
    EXPECT_EQ(t.events.size(), observe::Tracer::kRingCapacity);
    EXPECT_EQ(t.dropped, extra);
  }
  EXPECT_TRUE(found);
}

TEST_F(TracerTest, ConcurrentSpansLandInPerThreadBuffers) {
  observe::Tracer::global().set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpans = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        TQT_TRACE("worker", "test");
      }
    });
  }
  for (auto& th : threads) th.join();
  observe::Tracer::global().set_enabled(false);

  size_t total = 0;
  for (const observe::ThreadTrace& t : observe::Tracer::global().threads()) {
    uint64_t prev_end = 0;
    for (const observe::TraceEvent& e : t.events) {
      EXPECT_GE(e.ts_ns + e.dur_ns, prev_end);
      prev_end = e.ts_ns + e.dur_ns;
    }
    total += t.events.size();
  }
  EXPECT_EQ(total, static_cast<size_t>(kThreads) * kSpans);
}

TEST_F(TracerTest, WriteChromeJsonThrowsOnBadPath) {
  EXPECT_THROW(observe::Tracer::global().write_chrome_json("/nonexistent_dir_tqt/x.json"),
               std::runtime_error);
}

}  // namespace
}  // namespace tqt
