// Unit tests for the tensor substrate: shapes, arithmetic, reductions,
// rounding primitives, matmul kernels, im2col/col2im, RNG, serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <numeric>

#include "tensor/ops.h"
#include "tensor/rng.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"

namespace tqt {
namespace {

TEST(Shape, NumelAndString) {
  EXPECT_EQ(numel_of({2, 3, 4}), 24);
  EXPECT_EQ(numel_of({}), 1);
  EXPECT_EQ(numel_of({5, 0}), 0);
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
  EXPECT_THROW(numel_of({2, -1}), std::invalid_argument);
}

TEST(Tensor, ConstructionAndFill) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.rank(), 2);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(t[i], 0.0f);
  Tensor u({2, 2}, 3.5f);
  EXPECT_EQ(u.sum(), 14.0f);
  EXPECT_THROW(Tensor({2}, std::vector<float>{1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, ScalarAndItem) {
  Tensor s = Tensor::scalar(2.5f);
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.item(), 2.5f);
  EXPECT_THROW(Tensor({3}).item(), std::invalid_argument);
}

TEST(Tensor, MultiDimAccess) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ((t.at({1, 2})), 5.0f);
  EXPECT_EQ((t.at({0, 1})), 1.0f);
  t.at({1, 0}) = 9.0f;
  EXPECT_EQ(t[3], 9.0f);
  EXPECT_THROW((t.at({2, 0})), std::out_of_range);
  EXPECT_THROW((t.at({0})), std::invalid_argument);
}

TEST(Tensor, NegativeDimIndexing) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.dim(-1), 4);
  EXPECT_EQ(t.dim(-3), 2);
  EXPECT_THROW(t.dim(3), std::out_of_range);
  EXPECT_THROW(t.dim(-4), std::out_of_range);
}

TEST(Tensor, ReshapeWithInference) {
  Tensor t({2, 6});
  Tensor r = t.reshape({3, -1});
  EXPECT_EQ(r.shape(), (Shape{3, 4}));
  EXPECT_THROW(t.reshape({5, -1}), std::invalid_argument);
  EXPECT_THROW(t.reshape({-1, -1}), std::invalid_argument);
}

TEST(Tensor, ArithmeticElementwise) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {4, 5, 6});
  EXPECT_TRUE((a + b).equals(Tensor({3}, {5, 7, 9})));
  EXPECT_TRUE((b - a).equals(Tensor({3}, {3, 3, 3})));
  EXPECT_TRUE((a * b).equals(Tensor({3}, {4, 10, 18})));
  EXPECT_TRUE((b / 2.0f).equals(Tensor({3}, {2, 2.5, 3})));
  EXPECT_TRUE((-a).equals(Tensor({3}, {-1, -2, -3})));
  EXPECT_THROW(a + Tensor({4}), std::invalid_argument);
}

TEST(Tensor, AddScaled) {
  Tensor a({3}, {1, 2, 3});
  Tensor g({3}, {10, 10, 10});
  a.add_scaled(g, -0.1f);
  EXPECT_TRUE(a.allclose(Tensor({3}, {0, 1, 2}), 1e-6f));
}

TEST(Tensor, Reductions) {
  Tensor t({4}, {-3, 1, 2, -1});
  EXPECT_EQ(t.sum(), -1.0f);
  EXPECT_FLOAT_EQ(t.mean(), -0.25f);
  EXPECT_EQ(t.min(), -3.0f);
  EXPECT_EQ(t.max(), 2.0f);
  EXPECT_EQ(t.abs_max(), 3.0f);
  EXPECT_EQ(t.argmax(), 2);
}

TEST(Tensor, StdDev) {
  Tensor t({4}, {2, 2, 2, 2});
  EXPECT_FLOAT_EQ(t.std(), 0.0f);
  Tensor u({2}, {-1, 1});
  EXPECT_FLOAT_EQ(u.std(), 1.0f);
}

TEST(Tensor, ArangeLinspace) {
  Tensor a = Tensor::arange(0, 5);
  EXPECT_EQ(a.numel(), 5);
  EXPECT_EQ(a[4], 4.0f);
  Tensor l = Tensor::linspace(-1, 1, 5);
  EXPECT_EQ(l.numel(), 5);
  EXPECT_FLOAT_EQ(l[0], -1.0f);
  EXPECT_FLOAT_EQ(l[2], 0.0f);
  EXPECT_FLOAT_EQ(l[4], 1.0f);
}

TEST(Tensor, AllClose) {
  Tensor a({2}, {1.0f, 2.0f});
  Tensor b({2}, {1.0f + 1e-7f, 2.0f});
  EXPECT_TRUE(a.allclose(b, 1e-6f));
  EXPECT_FALSE(a.allclose(b, 1e-9f));
  EXPECT_FALSE(a.allclose(Tensor({3}), 1.0f));
}

// ---- Rounding --------------------------------------------------------------

TEST(Rounding, HalfToEvenTies) {
  EXPECT_EQ(round_half_to_even(0.5f), 0.0f);
  EXPECT_EQ(round_half_to_even(1.5f), 2.0f);
  EXPECT_EQ(round_half_to_even(2.5f), 2.0f);
  EXPECT_EQ(round_half_to_even(-0.5f), 0.0f);
  EXPECT_EQ(round_half_to_even(-1.5f), -2.0f);
  EXPECT_EQ(round_half_to_even(-2.5f), -2.0f);
}

TEST(Rounding, NonTies) {
  EXPECT_EQ(round_half_to_even(0.49f), 0.0f);
  EXPECT_EQ(round_half_to_even(0.51f), 1.0f);
  EXPECT_EQ(round_half_to_even(-1.2f), -1.0f);
  EXPECT_EQ(round_half_to_even(-1.8f), -2.0f);
}

TEST(Rounding, NoOverallBias) {
  // Ties alternate up/down so sums of symmetric ties cancel (the property the
  // paper wants from banker's rounding in §3.2).
  double acc = 0.0;
  for (int i = -100; i <= 100; ++i) acc += round_half_to_even(static_cast<float>(i) + 0.5f);
  // Σ (i + 0.5) over symmetric range = 100.5; banker's sum should be close
  // to the true sum, unlike round-half-away which would add +201*0.5 bias.
  EXPECT_NEAR(acc, 100.0, 1.0);
}

TEST(Rounding, IntegerShiftMatchesFloat) {
  for (int shift = 1; shift <= 8; ++shift) {
    for (int64_t v = -1030; v <= 1030; ++v) {
      const float f = static_cast<float>(v) / static_cast<float>(int64_t{1} << shift);
      EXPECT_EQ(shift_round_half_to_even(v, shift), static_cast<int64_t>(round_half_to_even(f)))
          << "v=" << v << " shift=" << shift;
    }
  }
}

TEST(Rounding, ShiftZeroIsIdentity) {
  EXPECT_EQ(shift_round_half_to_even(12345, 0), 12345);
  EXPECT_EQ(shift_round_half_to_even(-7, 0), -7);
  EXPECT_THROW(shift_round_half_to_even(1, -1), std::invalid_argument);
}

// ---- Matmul family -----------------------------------------------------------

TEST(Matmul, KnownProduct) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_TRUE(c.equals(Tensor({2, 2}, {58, 64, 139, 154})));
}

TEST(Matmul, ShapeErrors) {
  EXPECT_THROW(matmul(Tensor({2, 3}), Tensor({2, 3})), std::invalid_argument);
  EXPECT_THROW(matmul(Tensor({6}), Tensor({6, 1})), std::invalid_argument);
}

TEST(Matmul, TransposedVariantsAgree) {
  Rng rng(7);
  Tensor a = rng.normal_tensor({4, 5});
  Tensor b = rng.normal_tensor({5, 3});
  Tensor ref = matmul(a, b);
  EXPECT_TRUE(matmul_tn(transpose2d(a), b).allclose(ref, 1e-4f));
  EXPECT_TRUE(matmul_nt(a, transpose2d(b)).allclose(ref, 1e-4f));
}

TEST(Matmul, Transpose2dInvolution) {
  Rng rng(3);
  Tensor a = rng.normal_tensor({3, 7});
  EXPECT_TRUE(transpose2d(transpose2d(a)).equals(a));
}

// ---- im2col / col2im --------------------------------------------------------

TEST(Im2col, IdentityKernel) {
  // 1x1 kernel stride 1: im2col is a reshape.
  Rng rng(1);
  Tensor x = rng.normal_tensor({2, 3, 3, 4});
  Tensor cols = im2col(x, Conv2dGeom::valid(1, 1, 1));
  EXPECT_EQ(cols.shape(), (Shape{2 * 3 * 3, 4}));
  EXPECT_TRUE(cols.reshape(x.shape()).equals(x));
}

TEST(Im2col, SamePaddingShape) {
  Tensor x({1, 5, 5, 1});
  const auto g = Conv2dGeom::same(3, 3, 1, 5, 5);
  Tensor cols = im2col(x, g);
  EXPECT_EQ(cols.shape(), (Shape{25, 9}));
  EXPECT_EQ(g.out_h(5), 5);
}

TEST(Im2col, StrideTwoGeometry) {
  const auto g = Conv2dGeom::same(3, 3, 2, 8, 8);
  EXPECT_EQ(g.out_h(8), 4);
  EXPECT_EQ(g.out_w(8), 4);
}

TEST(Im2col, PaddingReadsZero) {
  Tensor x({1, 2, 2, 1}, {1, 2, 3, 4});
  const auto g = Conv2dGeom::same(3, 3, 1, 2, 2);
  Tensor cols = im2col(x, g);
  // Center output (0,0): top-left patch has zeros on top and left borders.
  // patch layout kh*kw: rows (ky,kx).
  EXPECT_EQ(cols.at({0, 0}), 0.0f);  // (-1,-1) out of bounds
  EXPECT_EQ(cols.at({0, 4}), 1.0f);  // center tap = x[0,0]
}

TEST(Im2col, Col2imIsAdjoint) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining property
  // of the transpose, which is exactly what conv backward needs.
  Rng rng(11);
  Tensor x = rng.normal_tensor({2, 6, 5, 3});
  const auto g = Conv2dGeom::same(3, 3, 2, 6, 5);
  Tensor cols = im2col(x, g);
  Tensor y = rng.normal_tensor(cols.shape());
  Tensor back = col2im(y, x.shape(), g);
  double lhs = 0.0, rhs = 0.0;
  for (int64_t i = 0; i < cols.numel(); ++i) lhs += static_cast<double>(cols[i]) * y[i];
  for (int64_t i = 0; i < x.numel(); ++i) rhs += static_cast<double>(x[i]) * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

// ---- Softmax / histogram ----------------------------------------------------

TEST(Softmax, RowsSumToOne) {
  Rng rng(5);
  Tensor logits = rng.normal_tensor({4, 10}, 0.0f, 3.0f);
  Tensor p = softmax_rows(logits);
  for (int64_t r = 0; r < 4; ++r) {
    double s = 0.0;
    for (int64_t c = 0; c < 10; ++c) s += p[r * 10 + c];
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Softmax, ShiftInvariance) {
  Tensor a({1, 3}, {1, 2, 3});
  Tensor b({1, 3}, {101, 102, 103});
  EXPECT_TRUE(softmax_rows(a).allclose(softmax_rows(b), 1e-6f));
}

TEST(Histogram, CountsAndClamping) {
  Tensor x({5}, {0.1f, -0.1f, 0.5f, 0.95f, 2.0f});
  auto h = abs_histogram(x, 10, 1.0f);
  EXPECT_EQ(h.size(), 10u);
  EXPECT_EQ(h[1], 2.0f);  // the two 0.1-magnitude entries
  EXPECT_EQ(h[5], 1.0f);
  EXPECT_EQ(h[9], 2.0f);  // 0.95 and clamped 2.0
  float total = 0;
  for (float v : h) total += v;
  EXPECT_EQ(total, 5.0f);
}

// ---- RNG ---------------------------------------------------------------------

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkIndependence) {
  Rng a(123);
  Rng f1 = a.fork(1);
  Rng f2 = a.fork(2);
  EXPECT_NE(f1.next_u64(), f2.next_u64());
  // Forks are deterministic in (state, stream).
  Rng b(123);
  EXPECT_EQ(b.fork(1).next_u64(), Rng(123).fork(1).next_u64());
}

TEST(Rng, NormalMoments) {
  Rng rng(99);
  Tensor t = rng.normal_tensor({20000}, 1.0f, 2.0f);
  EXPECT_NEAR(t.mean(), 1.0f, 0.05f);
  EXPECT_NEAR(t.std(), 2.0f, 0.05f);
}

TEST(Rng, UniformRange) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-2.0f, 3.0f);
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 3.0f);
  }
  for (int i = 0; i < 100; ++i) {
    const int64_t v = rng.uniform_int(5, 7);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 7);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(8);
  std::vector<int64_t> v(20);
  std::iota(v.begin(), v.end(), 0);
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// ---- Serialization ------------------------------------------------------------

TEST(Serialize, RoundTrip) {
  const std::string path = ::testing::TempDir() + "/tqt_roundtrip.bin";
  TensorMap m;
  Rng rng(17);
  m["a/weight"] = rng.normal_tensor({3, 4});
  m["b/scalar"] = Tensor::scalar(7.0f);
  save_tensors(path, m);
  EXPECT_TRUE(is_tensor_file(path));
  TensorMap back = load_tensors(path);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_TRUE(back.at("a/weight").equals(m.at("a/weight")));
  EXPECT_TRUE(back.at("b/scalar").equals(m.at("b/scalar")));
  std::remove(path.c_str());
}

TEST(Serialize, RejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/tqt_garbage.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("not a tensor file", f);
    std::fclose(f);
  }
  EXPECT_FALSE(is_tensor_file(path));
  EXPECT_THROW(load_tensors(path), std::runtime_error);
  EXPECT_THROW(load_tensors("/nonexistent/nowhere.bin"), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tqt
