// Tests for the quantize pass: §4.3 precision topology, scale merging,
// calibration, INT4 first/last exemptions, FP32-via-disabled-quantizers.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph_opt/quantize_pass.h"
#include "graph_opt/transforms.h"
#include "models/zoo.h"
#include "nn/ops_basic.h"
#include "tensor/rng.h"

namespace tqt {
namespace {

struct Prepared {
  BuiltModel m;
  QuantizePassResult qres;
  Tensor calib;
};

Prepared prepare(ModelKind kind, QuantizeConfig cfg = {}, uint64_t seed = 1) {
  Prepared p;
  p.m = build_model(kind, 10, seed);
  Rng rng(seed);
  // Warm BN stats, then fold.
  p.m.graph.set_training(true);
  for (int i = 0; i < 10; ++i) {
    p.m.graph.run({{p.m.input, rng.normal_tensor({8, 16, 16, 3}, 0.2f, 1.0f)}}, p.m.logits);
  }
  p.m.graph.set_training(false);
  p.calib = rng.normal_tensor({16, 16, 16, 3}, 0.2f, 1.0f);
  optimize_for_quantization(p.m.graph, p.m.input, p.calib);
  p.qres = quantize_pass(p.m.graph, p.m.input, p.m.logits, cfg);
  calibrate_thresholds(p.m.graph, p.qres, p.m.input, p.calib, WeightInit::kMax);
  return p;
}

int count_compute(Graph& g) {
  return static_cast<int>(g.nodes_of_type("Conv2D").size() +
                          g.nodes_of_type("DepthwiseConv2D").size() +
                          g.nodes_of_type("Dense").size());
}

TEST(QuantizePass, EveryComputeLayerHasWeightQuant) {
  Prepared p = prepare(ModelKind::kMiniVgg);
  EXPECT_EQ(static_cast<int>(p.qres.weight_quants.size()), count_compute(p.m.graph));
  EXPECT_NE(p.qres.input_quant, kNoNode);
  EXPECT_NE(p.qres.quantized_output, kNoNode);
}

TEST(QuantizePass, WeightQuantsReadVariables) {
  Prepared p = prepare(ModelKind::kMiniVgg);
  for (NodeId id : p.qres.weight_quants) {
    const NodeId src = p.m.graph.node(id).inputs[0];
    EXPECT_EQ(p.m.graph.node(src).op->type(), "Variable");
    EXPECT_TRUE(fake_quant_at(p.m.graph, id).bits().is_signed);
  }
}

TEST(QuantizePass, ReluOutputsAreUnsigned) {
  Prepared p = prepare(ModelKind::kMiniVgg);
  int unsigned_quants = 0;
  for (NodeId id : p.qres.act_quants) {
    FakeQuantOp& q = fake_quant_at(p.m.graph, id);
    const NodeId src = p.m.graph.node(id).inputs[0];
    const std::string& stype = p.m.graph.node(src).op->type();
    if (stype == "Relu" || stype == "Relu6") {
      EXPECT_FALSE(q.bits().is_signed) << p.m.graph.node(id).name;
      ++unsigned_quants;
    }
  }
  EXPECT_GT(unsigned_quants, 3);
}

TEST(QuantizePass, AccumulatorAndBiasShareScale) {
  Prepared p = prepare(ModelKind::kMiniVgg);
  // For every quant_acc there must be a quant_b with the same threshold param.
  int pairs = 0;
  for (NodeId id : p.qres.act_quants) {
    const std::string& name = p.m.graph.node(id).name;
    if (name.find("/quant_acc") == std::string::npos) continue;
    const std::string bias_name = name.substr(0, name.size() - 10) + "/quant_b";
    const NodeId bid = p.m.graph.find(bias_name);
    if (bid == kNoNode) continue;  // layers without bias
    EXPECT_EQ(fake_quant_at(p.m.graph, id).threshold().get(),
              fake_quant_at(p.m.graph, bid).threshold().get());
    EXPECT_EQ(fake_quant_at(p.m.graph, id).bits().bits, 16);
    ++pairs;
  }
  EXPECT_GT(pairs, 3);
}

TEST(QuantizePass, EltwiseInputsShareScale) {
  Prepared p = prepare(ModelKind::kMiniResNet);
  bool found = false;
  for (NodeId add : p.m.graph.nodes_of_type("EltwiseAdd")) {
    const auto& ins = p.m.graph.node(add).inputs;
    ASSERT_EQ(ins.size(), 2u);
    FakeQuantOp& a = fake_quant_at(p.m.graph, ins[0]);
    FakeQuantOp& b = fake_quant_at(p.m.graph, ins[1]);
    EXPECT_EQ(a.threshold().get(), b.threshold().get());
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(QuantizePass, ConcatInputScalesMerged) {
  Prepared p = prepare(ModelKind::kMiniInception);
  bool found = false;
  for (NodeId cat : p.m.graph.nodes_of_type("Concat")) {
    std::set<Param*> params;
    for (NodeId in : p.m.graph.node(cat).inputs) {
      // Inputs may pass through maxpool etc.; walk to the quant source the
      // same way the pass does by checking the immediate producer chain.
      NodeId cur = in;
      while (p.m.graph.node(cur).op->type() != "FakeQuant") {
        cur = p.m.graph.node(cur).inputs[0];
      }
      params.insert(fake_quant_at(p.m.graph, cur).threshold().get());
    }
    EXPECT_EQ(params.size(), 1u) << "concat " << p.m.graph.node(cat).name;
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(QuantizePass, LeakyReluGetsQ16Path) {
  Prepared p = prepare(ModelKind::kMiniDarkNet);
  int leaky_q16 = 0;
  for (NodeId id : p.qres.act_quants) {
    const std::string& name = p.m.graph.node(id).name;
    if (name.find("quant_pre_leaky") == std::string::npos) continue;
    EXPECT_EQ(fake_quant_at(p.m.graph, id).bits().bits, 16);
    ++leaky_q16;
  }
  EXPECT_GT(leaky_q16, 2);
}

TEST(QuantizePass, Int4KeepsFirstAndLastAtInt8) {
  QuantizeConfig cfg;
  cfg.precision.wbits = 4;
  Prepared p = prepare(ModelKind::kMiniVgg, cfg);
  std::vector<int> bits;
  for (NodeId id : p.qres.weight_quants) {
    FakeQuantOp& q = fake_quant_at(p.m.graph, id);
    // Reciprocal (constant) weights also stay at 8 bits; skip them here.
    const NodeId src = p.m.graph.node(id).inputs[0];
    auto* var = dynamic_cast<VariableOp*>(p.m.graph.node(src).op.get());
    if (!var->param()->trainable) continue;
    bits.push_back(q.bits().bits);
  }
  ASSERT_GE(bits.size(), 3u);
  EXPECT_EQ(bits.front(), 8);
  EXPECT_EQ(bits.back(), 8);
  for (size_t i = 1; i + 1 < bits.size(); ++i) EXPECT_EQ(bits[i], 4) << i;
}

TEST(QuantizePass, StaticModeThresholdsNotTrainable) {
  QuantizeConfig cfg;
  cfg.trainable_thresholds = false;
  Prepared p = prepare(ModelKind::kMiniVgg, cfg);
  for (const auto& th : threshold_params(p.m.graph, p.qres)) EXPECT_FALSE(th->trainable);
}

TEST(QuantizePass, DisabledQuantizersReproduceFp32) {
  Prepared p = prepare(ModelKind::kMiniResNet);
  Rng rng(3);
  Tensor probe = rng.normal_tensor({2, 16, 16, 3}, 0.2f, 1.0f);
  set_quantizers_enabled(p.m.graph, false);
  Tensor off = p.m.graph.run({{p.m.input, probe}}, p.qres.quantized_output);
  set_quantizers_enabled(p.m.graph, true);
  Tensor on = p.m.graph.run({{p.m.input, probe}}, p.qres.quantized_output);
  // Disabled == the folded FP32 network.
  Tensor fp32 = [&] {
    set_quantizers_enabled(p.m.graph, false);
    return p.m.graph.run({{p.m.input, probe}}, p.m.logits);
  }();
  EXPECT_TRUE(off.equals(fp32));
  // Enabled output differs (it is quantized) but stays within a fraction of
  // the output's own magnitude (the net is untrained, so logits can be large).
  EXPECT_FALSE(on.equals(off));
  EXPECT_TRUE(on.allclose(off, 0.5f * std::max(1.0f, off.abs_max())));
}

TEST(QuantizePass, QuantizedOutputsStayOnGrid) {
  Prepared p = prepare(ModelKind::kMiniMobileNetV1);
  Rng rng(4);
  Tensor probe = rng.normal_tensor({2, 16, 16, 3}, 0.2f, 1.0f);
  Tensor out = p.m.graph.run({{p.m.input, probe}}, p.qres.quantized_output);
  FakeQuantOp& q = fake_quant_at(p.m.graph, p.qres.quantized_output);
  const float s = q.scale();
  for (int64_t i = 0; i < out.numel(); ++i) {
    const float level = out[i] / s;
    EXPECT_NEAR(level, std::nearbyintf(level), 1e-3f);
  }
}

TEST(QuantizePass, CalibrationSetsFiniteThresholds) {
  Prepared p = prepare(ModelKind::kMiniInception);
  for (const auto& th : threshold_params(p.m.graph, p.qres)) {
    for (int64_t i = 0; i < th->value.numel(); ++i) {
      EXPECT_TRUE(std::isfinite(th->value[i])) << th->name;
      EXPECT_GT(th->value[i], -40.0f) << th->name;
      EXPECT_LT(th->value[i], 40.0f) << th->name;
    }
  }
}

TEST(QuantizePass, RequiresFoldedGraph) {
  BuiltModel m = build_model(ModelKind::kMiniVgg);
  QuantizeConfig cfg;
  EXPECT_THROW(quantize_pass(m.graph, m.input, m.logits, cfg), std::runtime_error);
}

TEST(QuantizePass, RejectsIncompatibleConfigs) {
  BuiltModel m = build_model(ModelKind::kMiniVgg);
  // Per-channel *real-scale* weights cannot emulate power-of-2 intermediates.
  QuantizeConfig cfg;
  cfg.precision.per_channel_weights = true;
  cfg.emulate_intermediates = true;
  cfg.power_of_2 = false;
  EXPECT_THROW(quantize_pass(m.graph, m.input, m.logits, cfg), std::invalid_argument);
  cfg.power_of_2 = true;
  cfg.precision.per_channel_weights = false;
  cfg.mode = QuantMode::kPact;
  EXPECT_THROW(quantize_pass(m.graph, m.input, m.logits, cfg), std::invalid_argument);
  // Precision policy outside the training range.
  cfg.mode = QuantMode::kTqt;
  cfg.precision.wbits = 1;
  EXPECT_THROW(quantize_pass(m.graph, m.input, m.logits, cfg), std::invalid_argument);
}

TEST(QuantizePass, PerChannelPowerOf2ComposesWithEmulation) {
  // The PR 9 contract: per-channel power-of-2 weights ride the fixed-point
  // exec plan as requant shift tables, so they must compose with
  // emulate_intermediates at quantize time.
  QuantizeConfig cfg;
  cfg.precision.per_channel_weights = true;
  cfg.emulate_intermediates = true;
  cfg.power_of_2 = true;
  Prepared p = prepare(ModelKind::kMiniVgg, cfg);
  EXPECT_FALSE(p.qres.weight_quants.empty());
  // The weight quantizers really are per-channel power-of-2.
  bool per_channel = false;
  for (NodeId id : p.qres.weight_quants) {
    const FakeQuantOp& q = fake_quant_at(p.m.graph, id);
    if (q.per_channel()) {
      per_channel = true;
      EXPECT_TRUE(q.power_of_2());
    }
  }
  EXPECT_TRUE(per_channel);
}

TEST(QuantizePass, PercentileInitTighterThanMax) {
  // §5.1 offers percentile as an alternative tight init; it must produce
  // weight thresholds no larger than MAX and the graph must still evaluate.
  QuantizeConfig cfg;
  Prepared pm = prepare(ModelKind::kMiniMobileNetV1, cfg);
  BuiltModel m2 = build_model(ModelKind::kMiniMobileNetV1, 10, 1);
  Rng rng(1);
  m2.graph.set_training(true);
  for (int i = 0; i < 10; ++i) {
    m2.graph.run({{m2.input, rng.normal_tensor({8, 16, 16, 3}, 0.2f, 1.0f)}}, m2.logits);
  }
  m2.graph.set_training(false);
  Tensor calib = rng.normal_tensor({16, 16, 16, 3}, 0.2f, 1.0f);
  optimize_for_quantization(m2.graph, m2.input, calib);
  auto qres2 = quantize_pass(m2.graph, m2.input, m2.logits, cfg);
  calibrate_thresholds(m2.graph, qres2, m2.input, calib, WeightInit::kPercentile999);
  ASSERT_EQ(pm.qres.weight_quants.size(), qres2.weight_quants.size());
  int strictly_tighter = 0;
  for (size_t i = 0; i < qres2.weight_quants.size(); ++i) {
    const float pct = fake_quant_at(m2.graph, qres2.weight_quants[i]).threshold()->value[0];
    const float max = fake_quant_at(pm.m.graph, pm.qres.weight_quants[i]).threshold()->value[0];
    EXPECT_LE(pct, max + 1e-5f);
    if (pct < max - 1e-3f) ++strictly_tighter;
  }
  EXPECT_GT(strictly_tighter, 0);  // heavy-tailed depthwise weights clip
}

TEST(QuantizePass, PerChannelBaselineRuns) {
  QuantizeConfig cfg;
  cfg.precision.per_channel_weights = true;
  cfg.emulate_intermediates = false;
  cfg.power_of_2 = false;
  cfg.trainable_thresholds = false;
  Prepared p = prepare(ModelKind::kMiniMobileNetV1, cfg);
  Rng rng(5);
  Tensor probe = rng.normal_tensor({2, 16, 16, 3}, 0.2f, 1.0f);
  Tensor out = p.m.graph.run({{p.m.input, probe}}, p.qres.quantized_output);
  for (int64_t i = 0; i < out.numel(); ++i) EXPECT_TRUE(std::isfinite(out[i]));
  // Per-channel thresholds really are vectors.
  bool vector_thresholds = false;
  for (NodeId id : p.qres.weight_quants) {
    if (fake_quant_at(p.m.graph, id).threshold()->value.numel() > 1) vector_thresholds = true;
  }
  EXPECT_TRUE(vector_thresholds);
}

}  // namespace
}  // namespace tqt
