// Tests for the typed narrow-width execution engine (exec.cpp + plan.cpp +
// kernels/): bit-exactness against the int64 reference interpreter across
// every zoo model and thread count, the static memory plan's invariants, the
// zero-allocation steady-state contract, kernel-set equivalence, and
// ExecContext reuse across programs and shapes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <new>
#include <string>

#include "fixedpoint/engine.h"
#include "fixedpoint/kernels/kernels.h"
#include "fixedpoint/plan.h"
#include "graph_opt/quantize_pass.h"
#include "graph_opt/transforms.h"
#include "models/zoo.h"
#include "observe/observe.h"
#include "runtime/parallel.h"
#include "tensor/rng.h"
#include "test_util.h"

// ---- Global allocation counting hook --------------------------------------
// Replaces the global operator new/delete for this test binary. Counting is
// off by default; the zero-alloc test flips it on around the steady-state
// window only.
namespace {
std::atomic<long long> g_allocs{0};
std::atomic<bool> g_count{false};
}  // namespace

void* operator new(std::size_t n) {
  if (g_count.load(std::memory_order_relaxed)) g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tqt {
namespace {

struct Prepared {
  BuiltModel m;
  QuantizePassResult qres;
};

Prepared prepare(ModelKind kind, int weight_bits = 8, uint64_t seed = 11) {
  Prepared p;
  p.m = build_model(kind, 10, seed);
  Rng rng(seed);
  p.m.graph.set_training(true);
  for (int i = 0; i < 10; ++i) {
    p.m.graph.run({{p.m.input, rng.normal_tensor({8, 16, 16, 3}, 0.2f, 1.0f)}}, p.m.logits);
  }
  p.m.graph.set_training(false);
  Tensor calib = rng.normal_tensor({16, 16, 16, 3}, 0.2f, 1.0f);
  optimize_for_quantization(p.m.graph, p.m.input, calib);
  QuantizeConfig cfg;
  cfg.precision.wbits = weight_bits;
  p.qres = quantize_pass(p.m.graph, p.m.input, p.m.logits, cfg);
  calibrate_thresholds(p.m.graph, p.qres, p.m.input, calib, WeightInit::kMax);
  return p;
}

FixedPointProgram compile(Prepared& p) {
  return compile_fixed_point(p.m.graph, p.m.input, p.qres.quantized_output);
}

void expect_raw_equal(const IntTensor& a, const IntTensor& b, const std::string& what) {
  ASSERT_EQ(a.shape, b.shape) << what;
  ASSERT_EQ(a.exponent, b.exponent) << what;
  ASSERT_EQ(a.data.size(), b.data.size()) << what;
  for (size_t i = 0; i < a.data.size(); ++i) {
    ASSERT_EQ(a.data[i], b.data[i]) << what << " lane " << i;
  }
}

class TypedEngine : public ::testing::TestWithParam<ModelKind> {};

// The headline tentpole contract: the typed narrow-width engine is
// bit-identical to the int64 reference interpreter for every zoo model at
// every thread count (integer arithmetic is exact, so the pool size must be
// invisible).
TEST_P(TypedEngine, MatchesReferenceInterpreterAtAllThreadCounts) {
  Prepared p = prepare(GetParam());
  FixedPointProgram prog = compile(p);
  Rng rng(77);
  const Tensor probe = rng.normal_tensor({3, 16, 16, 3}, 0.2f, 1.2f);
  const IntTensor ref = prog.run_raw_reference(probe);
  for (int threads : {1, 2, 4, 8}) {
    set_num_threads(threads);
    const IntTensor typed = prog.run_raw(probe);
    expect_raw_equal(typed, ref,
                     model_name(GetParam()) + " @" + std::to_string(threads) + " threads");
  }
  set_num_threads(0);
}

// Width inference invariants: quantizer outputs are int8 registers, matmul
// accumulators are at least int32, and liveness folds the register file onto
// strictly fewer arena slots.
TEST_P(TypedEngine, PlanNarrowsWidthsAndReusesSlots) {
  Prepared p = prepare(GetParam());
  FixedPointProgram prog = compile(p);
  const ExecPlan& plan = prog.plan();
  ASSERT_EQ(static_cast<int>(plan.regs.size()), prog.register_count());
  EXPECT_GT(plan.n_slots, 0);
  EXPECT_LT(plan.n_slots, prog.register_count());

  int i8_regs = 0;
  const auto& instrs = prog.instructions();
  for (size_t idx = 0; idx < instrs.size(); ++idx) {
    const FpInstr& in = instrs[idx];
    const ExecPlan::Reg& reg = plan.regs[static_cast<size_t>(in.output)];
    EXPECT_GE(reg.slot, 0) << "instruction " << idx;
    EXPECT_LT(reg.slot, plan.n_slots);
    EXPECT_LE(reg.lo, reg.hi);
    if (reg.width == IntWidth::kI8) ++i8_regs;
    switch (in.kind) {
      case FpInstr::Kind::kQuantizeInput:
      case FpInstr::Kind::kRequant:
        // 8-bit quantizers clamp to [-128, 127] (or tighter).
        if (in.clamp_lo >= -128 && in.clamp_hi <= 127) {
          EXPECT_EQ(reg.width, IntWidth::kI8) << in.debug_name;
        }
        break;
      case FpInstr::Kind::kConv2d:
      case FpInstr::Kind::kDepthwise:
      case FpInstr::Kind::kDense:
        EXPECT_GE(static_cast<int>(reg.width), static_cast<int>(IntWidth::kI32))
            << in.debug_name;
        // The plan must prove the int32 accumulator cannot overflow whenever
        // it selects the narrow kernel path.
        if (reg.width == IntWidth::kI32) {
          EXPECT_GE(reg.lo, std::numeric_limits<int32_t>::min());
          EXPECT_LE(reg.hi, std::numeric_limits<int32_t>::max());
        }
        break;
      default:
        break;
    }
  }
  EXPECT_GT(i8_regs, 0) << "no int8 activation registers — widths are not narrowing";
}

INSTANTIATE_TEST_SUITE_P(AllModels, TypedEngine, ::testing::ValuesIn(all_model_kinds()),
                         [](const auto& info) { return model_name(info.param); });

// After one warm-up run at a given (program, shape), steady-state run_into
// performs ZERO heap allocations: shapes, slots, scratch, and the output
// tensor are all grow-only and already sized. This now also covers the
// tqt-observe instrumentation on the entry point — with tracing disabled the
// engine counters and the inactive trace span must not allocate either (the
// registry lookups resolve once, during the warm-up run). Runs on a 1-thread
// pool — the pool handoff path type-erases the loop body, which may
// allocate; the engine's own code never does.
TEST(TypedEngineAlloc, SteadyStateRunsAllocationFree) {
  set_num_threads(1);
  Prepared p = prepare(ModelKind::kMiniVgg);
  FixedPointProgram prog = compile(p);
  Rng rng(91);
  const Tensor probe = rng.normal_tensor({2, 16, 16, 3}, 0.2f, 1.2f);

  ASSERT_FALSE(observe::trace_enabled()) << "zero-alloc contract holds with tracing off";
  observe::Counter& runs = observe::MetricsRegistry::global().counter("engine.runs");

  ExecContext ctx;
  Tensor out;
  prog.run_into(probe, ctx, out);  // warm-up sizes every buffer
  const Tensor warm = out;
  const int64_t warm_arena = ctx.arena_bytes();
  EXPECT_GT(warm_arena, 0);
  const uint64_t runs_before = runs.value();

  g_allocs.store(0);
  g_count.store(true);
  for (int i = 0; i < 3; ++i) prog.run_into(probe, ctx, out);
  g_count.store(false);
  EXPECT_EQ(g_allocs.load(), 0) << "steady-state run_into allocated";
  EXPECT_EQ(ctx.arena_bytes(), warm_arena) << "arena grew after warm-up";
  EXPECT_TRUE(out.equals(warm));
  EXPECT_EQ(runs.value(), runs_before + 3) << "engine.runs must count steady-state runs";
  set_num_threads(0);
}

// The scalar and AVX2 kernel sets implement one exact-integer contract, so
// forcing either one through the registry must not change a single lane.
TEST(TypedEngineKernels, ScalarAndSimdSetsAreBitIdentical) {
  Prepared p = prepare(ModelKind::kMiniDarkNet);
  FixedPointProgram prog = compile(p);
  Rng rng(92);
  const Tensor probe = rng.normal_tensor({2, 16, 16, 3}, 0.2f, 1.2f);

  fpk::set_active_kernels(&fpk::scalar_kernels());
  const IntTensor scalar_out = prog.run_raw(probe);
  if (const fpk::KernelSet* avx2 = fpk::avx2_kernels()) {
    fpk::set_active_kernels(avx2);
    const IntTensor simd_out = prog.run_raw(probe);
    expect_raw_equal(simd_out, scalar_out, "avx2 vs scalar");
  } else {
    GTEST_LOG_(INFO) << "AVX2 kernels not available in this build; scalar-only check";
  }
  fpk::set_active_kernels(nullptr);
  expect_raw_equal(prog.run_raw(probe), scalar_out, "auto vs scalar");
}

// One ExecContext serves many programs and input shapes: buffers grow to the
// high-water mark and results stay bit-exact (this is the serve worker's
// usage pattern across hot swaps and varying batch sizes).
TEST(TypedEngineContext, ReusableAcrossProgramsAndBatchSizes) {
  Prepared pv = prepare(ModelKind::kMiniVgg);
  Prepared pr = prepare(ModelKind::kMiniResNet);
  FixedPointProgram vgg = compile(pv);
  FixedPointProgram resnet = compile(pr);
  Rng rng(93);

  ExecContext shared;
  for (int64_t batch : {1, 4, 2}) {
    const Tensor probe = rng.normal_tensor({batch, 16, 16, 3}, 0.2f, 1.2f);
    for (const FixedPointProgram* prog : {&vgg, &resnet}) {
      ExecContext fresh;
      Tensor a, b;
      prog->run_into(probe, shared, a);
      prog->run_into(probe, fresh, b);
      ASSERT_TRUE(a.equals(b)) << "batch " << batch;
    }
  }
}

// The dequantized typed output equals the reference interpreter's (the
// float-facing contract the serve path and CLI rely on).
TEST(TypedEngineContext, RunMatchesRunReference) {
  Prepared p = prepare(ModelKind::kMiniMobileNetV2);
  FixedPointProgram prog = compile(p);
  Rng rng(94);
  const Tensor probe = rng.normal_tensor({2, 16, 16, 3}, 0.2f, 1.2f);
  EXPECT_TRUE(test::run_program(prog, probe).equals(prog.run_reference(probe)));
}

// Serialization round-trip preserves the typed path: a loaded program is
// finalized and executes bit-identically to the one that was saved.
TEST(TypedEngineContext, LoadedProgramExecutesTyped) {
  Prepared p = prepare(ModelKind::kMiniInception);
  FixedPointProgram prog = compile(p);
  const std::string path = ::testing::TempDir() + "/typed_prog.tqtp";
  prog.save(path);
  FixedPointProgram back = FixedPointProgram::load(path);
  EXPECT_EQ(back.plan().n_slots, prog.plan().n_slots);
  Rng rng(95);
  const Tensor probe = rng.normal_tensor({2, 16, 16, 3}, 0.2f, 1.2f);
  expect_raw_equal(back.run_raw(probe), prog.run_raw(probe), "loaded vs compiled");
  std::remove(path.c_str());
}

// Flatten is a pure reshape, so the planner aliases its output onto its
// input's arena slot and the executor skips the copy entirely — zero bytes
// moved for every flatten in the program.
TEST(TypedEngineContext, FlattenAliasesItsInputSlot) {
  Prepared p = prepare(ModelKind::kMiniVgg);
  FixedPointProgram prog = compile(p);
  const ExecPlan& plan = prog.plan();
  int flattens = 0;
  for (const FpInstr& in : prog.instructions()) {
    if (in.kind != FpInstr::Kind::kFlatten) continue;
    ++flattens;
    const ExecPlan::Reg& out = plan.regs[static_cast<size_t>(in.output)];
    const ExecPlan::Reg& src = plan.regs[static_cast<size_t>(in.inputs[0])];
    EXPECT_EQ(out.slot, src.slot) << in.debug_name << ": flatten output must alias its input";
    EXPECT_EQ(out.width, src.width) << in.debug_name;
  }
  EXPECT_GT(flattens, 0) << "mini_vgg should flatten before its dense head";
}

// Traffic estimate sanity: the typed plan must move strictly less data than
// the int64 interpreter — that is the point of narrow storage.
TEST(TypedEngineContext, TypedTrafficIsSmaller)
{
  Prepared p = prepare(ModelKind::kMiniVgg);
  FixedPointProgram prog = compile(p);
  const TrafficEstimate t = estimate_traffic(prog, {2, 16, 16, 3});
  EXPECT_GT(t.typed_bytes, 0);
  EXPECT_LT(t.typed_bytes, t.reference_bytes / 2)
      << "typed engine should move < half the reference bytes";
}

}  // namespace
}  // namespace tqt
