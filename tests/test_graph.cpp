// Tests for the graph IR: construction, surgery, execution, and analytic vs
// numerical gradients for every op.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "nn/dot.h"
#include "nn/graph.h"
#include "nn/ops_basic.h"
#include "nn/ops_conv.h"
#include "nn/ops_loss.h"
#include "nn/ops_norm.h"
#include "tensor/rng.h"
#include "test_util.h"

namespace tqt {
namespace {

using test::check_input_grad;
using test::check_param_grads;

ParamPtr make_param(const std::string& name, Tensor value, const std::string& group = "weight") {
  return std::make_shared<Param>(name, std::move(value), group);
}

TEST(Graph, AddAndFind) {
  Graph g;
  NodeId in = g.add("x", std::make_unique<InputOp>());
  NodeId id = g.add("id", std::make_unique<IdentityOp>(), {in});
  EXPECT_EQ(g.find("x"), in);
  EXPECT_EQ(g.find("id"), id);
  EXPECT_EQ(g.find("nope"), kNoNode);
  EXPECT_THROW(g.add("x", std::make_unique<InputOp>()), std::invalid_argument);
  EXPECT_THROW(g.add("bad", std::make_unique<IdentityOp>(), {42}), std::invalid_argument);
}

TEST(Graph, ArityChecked) {
  Graph g;
  NodeId in = g.add("x", std::make_unique<InputOp>());
  EXPECT_THROW(g.add("r", std::make_unique<ReluOp>(), {in, in}), std::invalid_argument);
  EXPECT_THROW(g.add("a", std::make_unique<EltwiseAddOp>(), {in}), std::invalid_argument);
}

TEST(Graph, RunIdentityChain) {
  Graph g;
  NodeId in = g.add("x", std::make_unique<InputOp>());
  NodeId a = g.add("a", std::make_unique<IdentityOp>(), {in});
  NodeId b = g.add("b", std::make_unique<IdentityOp>(), {a});
  Tensor x({2}, {1, 2});
  Tensor y = g.run({{in, x}}, b);
  EXPECT_TRUE(y.equals(x));
}

TEST(Graph, MissingFeedThrows) {
  Graph g;
  NodeId in = g.add("x", std::make_unique<InputOp>());
  EXPECT_THROW(g.run({}, in), std::invalid_argument);
}

TEST(Graph, ConsumersAndRewire) {
  Graph g;
  NodeId in = g.add("x", std::make_unique<InputOp>());
  NodeId a = g.add("a", std::make_unique<IdentityOp>(), {in});
  NodeId b = g.add("b", std::make_unique<IdentityOp>(), {in});
  auto cons = g.consumers(in);
  EXPECT_EQ(cons.size(), 2u);
  NodeId c = g.add("c", std::make_unique<IdentityOp>(), {in});
  g.rewire_consumers(in, c, nullptr);
  // a and b now read c; c still reads in.
  EXPECT_EQ(g.node(a).inputs[0], c);
  EXPECT_EQ(g.node(b).inputs[0], c);
  EXPECT_EQ(g.node(c).inputs[0], in);
}

TEST(Graph, InsertAfterRewiresExistingConsumers) {
  Graph g;
  NodeId in = g.add("x", std::make_unique<InputOp>());
  NodeId relu = g.add("relu", std::make_unique<ReluOp>(), {in});
  NodeId mid = g.insert_after(in, "mid", std::make_unique<IdentityOp>());
  EXPECT_EQ(g.node(relu).inputs[0], mid);
  EXPECT_EQ(g.node(mid).inputs[0], in);
  Tensor x({2}, {-1, 2});
  Tensor y = g.run({{in, x}}, relu);
  EXPECT_TRUE(y.equals(Tensor({2}, {0, 2})));
}

TEST(Graph, InsertOnEdgeOnlyAffectsThatEdge) {
  Graph g;
  NodeId in = g.add("x", std::make_unique<InputOp>());
  NodeId a = g.add("a", std::make_unique<IdentityOp>(), {in});
  NodeId b = g.add("b", std::make_unique<IdentityOp>(), {in});
  g.insert_on_edge(in, a, "q", std::make_unique<IdentityOp>());
  EXPECT_NE(g.node(a).inputs[0], in);
  EXPECT_EQ(g.node(b).inputs[0], in);
  EXPECT_THROW(g.insert_on_edge(a, b, "bad", std::make_unique<IdentityOp>()), std::invalid_argument);
}

TEST(Graph, RemoveAndDeadNodes) {
  Graph g;
  NodeId in = g.add("x", std::make_unique<InputOp>());
  NodeId a = g.add("a", std::make_unique<IdentityOp>(), {in});
  g.remove(a);
  EXPECT_EQ(g.find("a"), kNoNode);
  EXPECT_EQ(g.live_nodes().size(), 1u);
  // Executing a graph that references a dead node must fail loudly.
  NodeId b = g.add("b", std::make_unique<IdentityOp>(), {in});
  g.replace_input(b, in, a);
  EXPECT_THROW(g.run({{in, Tensor({1})}}, b), std::runtime_error);
}

TEST(Graph, TopoOrderDiamond) {
  Graph g;
  NodeId in = g.add("x", std::make_unique<InputOp>());
  NodeId l = g.add("l", std::make_unique<IdentityOp>(), {in});
  NodeId r = g.add("r", std::make_unique<IdentityOp>(), {in});
  NodeId sum = g.add("sum", std::make_unique<EltwiseAddOp>(), {l, r});
  auto order = g.topo_order({sum});
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), in);
  EXPECT_EQ(order.back(), sum);
}

TEST(Graph, BackwardAccumulatesFanout) {
  // y = x + x => dy/dx = 2.
  Graph g;
  NodeId in = g.add("x", std::make_unique<InputOp>());
  NodeId sum = g.add("sum", std::make_unique<EltwiseAddOp>(), {in, in});
  NodeId tgt = g.add("t", std::make_unique<InputOp>());
  NodeId loss = g.add("loss", std::make_unique<L2LossOp>(), {sum, tgt});
  Tensor x({2}, {1, 2});
  Tensor t({2}, {0, 0});
  g.run({{in, x}, {tgt, t}}, loss);
  g.backward(loss);
  // dL/d(sum) = sum - t = 2x; dL/dx = 2 * (2x) = 4x.
  EXPECT_TRUE(g.node(in).grad.allclose(Tensor({2}, {4, 8}), 1e-5f));
}

TEST(Graph, BackwardRequiresScalarLoss) {
  Graph g;
  NodeId in = g.add("x", std::make_unique<InputOp>());
  NodeId id = g.add("id", std::make_unique<IdentityOp>(), {in});
  g.run({{in, Tensor({3})}}, id);
  EXPECT_THROW(g.backward(id), std::runtime_error);
}

TEST(Graph, StateDictRoundTrip) {
  Graph g;
  auto w = make_param("w", Tensor({2, 2}, {1, 2, 3, 4}));
  NodeId v = g.add("w", std::make_unique<VariableOp>(w));
  (void)v;
  auto sd = g.state_dict();
  ASSERT_TRUE(sd.count("w"));
  w->value.fill(0.0f);
  g.load_state_dict(sd);
  EXPECT_TRUE(w->value.equals(Tensor({2, 2}, {1, 2, 3, 4})));
  EXPECT_THROW(g.load_state_dict({}), std::runtime_error);
}

// ---- Per-op gradient checks -------------------------------------------------

struct GradCheckFixture : public ::testing::Test {
  Graph g;
  Rng rng{1234};

  /// Builds loss = L2(x_out, target) and checks input + param grads.
  void check(NodeId x_in, NodeId out, Feed feed) {
    Tensor out_val = g.run(feed, out);
    NodeId tgt = g.add("target", std::make_unique<InputOp>());
    NodeId loss = g.add("loss", std::make_unique<L2LossOp>(), {out, tgt});
    feed[tgt] = rng.normal_tensor(out_val.shape());
    check_param_grads(g, feed, loss);
    check_input_grad(g, feed, x_in, loss);
  }
};

TEST_F(GradCheckFixture, Dense) {
  auto w = make_param("w", rng.normal_tensor({4, 3}));
  NodeId x = g.add("x", std::make_unique<InputOp>());
  NodeId wv = g.add("w", std::make_unique<VariableOp>(w));
  NodeId y = g.add("dense", std::make_unique<DenseOp>(), {x, wv});
  check(x, y, {{x, rng.normal_tensor({2, 4})}});
}

TEST_F(GradCheckFixture, BiasAdd) {
  auto b = make_param("b", rng.normal_tensor({3}), "bias");
  NodeId x = g.add("x", std::make_unique<InputOp>());
  NodeId bv = g.add("b", std::make_unique<VariableOp>(b));
  NodeId y = g.add("biasadd", std::make_unique<BiasAddOp>(), {x, bv});
  check(x, y, {{x, rng.normal_tensor({2, 5, 5, 3})}});
}

TEST_F(GradCheckFixture, Conv2dSame) {
  auto w = make_param("w", rng.normal_tensor({3, 3, 2, 4}, 0.0f, 0.5f));
  NodeId x = g.add("x", std::make_unique<InputOp>());
  NodeId wv = g.add("w", std::make_unique<VariableOp>(w));
  NodeId y = g.add("conv", std::make_unique<Conv2dOp>(Conv2dGeom::same(3, 3, 1, 5, 5)), {x, wv});
  check(x, y, {{x, rng.normal_tensor({1, 5, 5, 2})}});
}

TEST_F(GradCheckFixture, Conv2dStride2) {
  auto w = make_param("w", rng.normal_tensor({3, 3, 2, 3}, 0.0f, 0.5f));
  NodeId x = g.add("x", std::make_unique<InputOp>());
  NodeId wv = g.add("w", std::make_unique<VariableOp>(w));
  NodeId y = g.add("conv", std::make_unique<Conv2dOp>(Conv2dGeom::same(3, 3, 2, 6, 6)), {x, wv});
  check(x, y, {{x, rng.normal_tensor({1, 6, 6, 2})}});
}

TEST_F(GradCheckFixture, DepthwiseConv2d) {
  auto w = make_param("w", rng.normal_tensor({3, 3, 3}, 0.0f, 0.5f));
  NodeId x = g.add("x", std::make_unique<InputOp>());
  NodeId wv = g.add("w", std::make_unique<VariableOp>(w));
  NodeId y = g.add("dw", std::make_unique<DepthwiseConv2dOp>(Conv2dGeom::same(3, 3, 1, 5, 5)), {x, wv});
  check(x, y, {{x, rng.normal_tensor({2, 5, 5, 3})}});
}

TEST_F(GradCheckFixture, DepthwiseConv2dStride2) {
  auto w = make_param("w", rng.normal_tensor({3, 3, 2}, 0.0f, 0.5f));
  NodeId x = g.add("x", std::make_unique<InputOp>());
  NodeId wv = g.add("w", std::make_unique<VariableOp>(w));
  NodeId y = g.add("dw", std::make_unique<DepthwiseConv2dOp>(Conv2dGeom::same(3, 3, 2, 6, 6)), {x, wv});
  check(x, y, {{x, rng.normal_tensor({1, 6, 6, 2})}});
}

TEST_F(GradCheckFixture, ReluAwayFromKink) {
  NodeId x = g.add("x", std::make_unique<InputOp>());
  NodeId y = g.add("relu", std::make_unique<ReluOp>(), {x});
  Tensor xv = rng.normal_tensor({2, 7});
  for (int64_t i = 0; i < xv.numel(); ++i)
    if (std::fabs(xv[i]) < 0.05f) xv[i] = 0.5f;
  check(x, y, {{x, xv}});
}

TEST_F(GradCheckFixture, Relu6AwayFromKinks) {
  NodeId x = g.add("x", std::make_unique<InputOp>());
  NodeId y = g.add("relu6", std::make_unique<Relu6Op>(), {x});
  Tensor xv = rng.uniform_tensor({2, 9}, -3.0f, 9.0f);
  for (int64_t i = 0; i < xv.numel(); ++i) {
    if (std::fabs(xv[i]) < 0.05f) xv[i] = 0.5f;
    if (std::fabs(xv[i] - 6.0f) < 0.05f) xv[i] = 5.0f;
  }
  check(x, y, {{x, xv}});
}

TEST_F(GradCheckFixture, LeakyRelu) {
  NodeId x = g.add("x", std::make_unique<InputOp>());
  NodeId y = g.add("lrelu", std::make_unique<LeakyReluOp>(0.1f), {x});
  Tensor xv = rng.normal_tensor({2, 9});
  for (int64_t i = 0; i < xv.numel(); ++i)
    if (std::fabs(xv[i]) < 0.05f) xv[i] = 0.5f;
  check(x, y, {{x, xv}});
}

TEST_F(GradCheckFixture, MaxPool) {
  NodeId x = g.add("x", std::make_unique<InputOp>());
  NodeId y = g.add("pool", std::make_unique<MaxPoolOp>(Conv2dGeom::valid(2, 2, 2)), {x});
  check(x, y, {{x, rng.normal_tensor({1, 4, 4, 3})}});
}

TEST_F(GradCheckFixture, AvgPool) {
  NodeId x = g.add("x", std::make_unique<InputOp>());
  NodeId y = g.add("pool", std::make_unique<AvgPoolOp>(Conv2dGeom::valid(2, 2, 2)), {x});
  check(x, y, {{x, rng.normal_tensor({1, 4, 4, 3})}});
}

TEST_F(GradCheckFixture, GlobalAvgPool) {
  NodeId x = g.add("x", std::make_unique<InputOp>());
  NodeId y = g.add("gap", std::make_unique<GlobalAvgPoolOp>(), {x});
  check(x, y, {{x, rng.normal_tensor({2, 3, 3, 4})}});
}

TEST_F(GradCheckFixture, ConcatAndFlatten) {
  NodeId x = g.add("x", std::make_unique<InputOp>());
  NodeId a = g.add("a", std::make_unique<IdentityOp>(), {x});
  NodeId b = g.add("b", std::make_unique<ReluOp>(), {x});
  NodeId cat = g.add("cat", std::make_unique<ConcatOp>(), {a, b});
  NodeId flat = g.add("flat", std::make_unique<FlattenOp>(), {cat});
  Tensor xv = rng.normal_tensor({2, 2, 2, 3});
  for (int64_t i = 0; i < xv.numel(); ++i)
    if (std::fabs(xv[i]) < 0.05f) xv[i] = 0.5f;
  check(x, flat, {{x, xv}});
}

TEST_F(GradCheckFixture, EltwiseAdd) {
  NodeId x = g.add("x", std::make_unique<InputOp>());
  NodeId a = g.add("a", std::make_unique<IdentityOp>(), {x});
  NodeId sum = g.add("sum", std::make_unique<EltwiseAddOp>(), {a, x});
  check(x, sum, {{x, rng.normal_tensor({2, 5})}});
}

TEST_F(GradCheckFixture, BatchNormTrainMode) {
  auto bn = std::make_unique<BatchNormOp>("bn", 3);
  BatchNormOp* bn_raw = bn.get();
  NodeId x = g.add("x", std::make_unique<InputOp>());
  NodeId y = g.add("bn", std::move(bn), {x});
  g.set_training(true);
  // Freeze moving-stat updates so repeated forwards during numerical
  // gradient checks are pure functions of the input.
  bn_raw->freeze_stats(false);
  // Batch-stat BN forward is deterministic per batch; EMA updates do not
  // change the output in train mode, so the gradcheck stays valid.
  check(x, y, {{x, rng.normal_tensor({8, 3}, 1.0f, 2.0f)}});
}

TEST_F(GradCheckFixture, BatchNormFrozenStats) {
  auto bn = std::make_unique<BatchNormOp>("bn", 4);
  BatchNormOp* bn_raw = bn.get();
  NodeId x = g.add("x", std::make_unique<InputOp>());
  NodeId y = g.add("bn", std::move(bn), {x});
  g.set_training(true);
  bn_raw->freeze_stats(true);
  bn_raw->moving_mean()->value = Tensor({4}, {0.5f, -0.5f, 1.0f, 0.0f});
  bn_raw->moving_var()->value = Tensor({4}, {1.0f, 2.0f, 0.5f, 4.0f});
  check(x, y, {{x, rng.normal_tensor({4, 4})}});
}

TEST(SoftmaxCE, LossValueAndGradient) {
  Graph g;
  Rng rng(5);
  NodeId x = g.add("logits", std::make_unique<InputOp>());
  NodeId labels = g.add("labels", std::make_unique<InputOp>());
  NodeId loss = g.add("loss", std::make_unique<SoftmaxCrossEntropyOp>(), {x, labels});
  Tensor logits = rng.normal_tensor({4, 5});
  Tensor y({4}, {0, 3, 2, 4});
  Feed feed{{x, logits}, {labels, y}};
  Tensor l = g.run(feed, loss);
  EXPECT_GT(l.item(), 0.0f);
  test::check_input_grad(g, feed, x, loss, 1e-2f);
}

TEST(SoftmaxCE, PerfectPredictionLowLoss) {
  Graph g;
  NodeId x = g.add("logits", std::make_unique<InputOp>());
  NodeId labels = g.add("labels", std::make_unique<InputOp>());
  NodeId loss = g.add("loss", std::make_unique<SoftmaxCrossEntropyOp>(), {x, labels});
  Tensor logits({2, 3}, {10, -10, -10, -10, 10, -10});
  Tensor y({2}, {0, 1});
  Tensor l = g.run({{x, logits}, {labels, y}}, loss);
  EXPECT_LT(l.item(), 1e-3f);
}

TEST(SoftmaxCE, RejectsBadLabels) {
  Graph g;
  NodeId x = g.add("logits", std::make_unique<InputOp>());
  NodeId labels = g.add("labels", std::make_unique<InputOp>());
  NodeId loss = g.add("loss", std::make_unique<SoftmaxCrossEntropyOp>(), {x, labels});
  Tensor logits({1, 3}, {0, 0, 0});
  Tensor y({1}, {5.0f});
  EXPECT_THROW(g.run({{x, logits}, {labels, y}}, loss), std::invalid_argument);
}

TEST(BatchNorm, MovingStatsConvergeToBatchStats) {
  Graph g;
  auto bn = std::make_unique<BatchNormOp>("bn", 2, 0.5f);
  BatchNormOp* bn_raw = bn.get();
  NodeId x = g.add("x", std::make_unique<InputOp>());
  NodeId y = g.add("bn", std::move(bn), {x});
  g.set_training(true);
  Rng rng(2);
  Tensor batch = rng.normal_tensor({256, 2}, 3.0f, 2.0f);
  for (int i = 0; i < 30; ++i) g.run({{x, batch}}, y);
  EXPECT_NEAR(bn_raw->moving_mean()->value[0], 3.0f, 0.3f);
  EXPECT_NEAR(bn_raw->moving_var()->value[0], 4.0f, 0.8f);
  // Inference mode then normalizes with those stats.
  g.set_training(false);
  Tensor out = g.run({{x, batch}}, y);
  EXPECT_NEAR(out.mean(), 0.0f, 0.2f);
}

TEST(BatchNorm, FrozenStatsStopUpdating) {
  Graph g;
  auto bn = std::make_unique<BatchNormOp>("bn", 1);
  BatchNormOp* bn_raw = bn.get();
  NodeId x = g.add("x", std::make_unique<InputOp>());
  NodeId y = g.add("bn", std::move(bn), {x});
  g.set_training(true);
  bn_raw->freeze_stats(true);
  const float before = bn_raw->moving_mean()->value[0];
  Rng rng(3);
  g.run({{x, rng.normal_tensor({16, 1}, 5.0f, 1.0f)}}, y);
  EXPECT_EQ(bn_raw->moving_mean()->value[0], before);
}

TEST(Dot, ExportContainsNodesAndEdges) {
  Graph g;
  NodeId in = g.add("x", std::make_unique<InputOp>());
  NodeId relu = g.add("act", std::make_unique<ReluOp>(), {in});
  (void)relu;
  const std::string dot = graph_to_dot(g, "unit");
  EXPECT_NE(dot.find("digraph \"unit\""), std::string::npos);
  EXPECT_NE(dot.find("x\\n(Input)"), std::string::npos);
  EXPECT_NE(dot.find("act\\n(Relu)"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

TEST(Dot, DeadNodesExcludedAndFileWritten) {
  Graph g;
  NodeId in = g.add("x", std::make_unique<InputOp>());
  NodeId dead = g.add("dead", std::make_unique<IdentityOp>(), {in});
  g.remove(dead);
  const std::string dot = graph_to_dot(g);
  EXPECT_EQ(dot.find("dead"), std::string::npos);
  const std::string path = ::testing::TempDir() + "/g.dot";
  write_dot(g, path);
  std::ifstream is(path);
  EXPECT_TRUE(is.good());
  std::remove(path.c_str());
  EXPECT_THROW(write_dot(g, "/nonexistent/dir/g.dot"), std::runtime_error);
}

}  // namespace
}  // namespace tqt
