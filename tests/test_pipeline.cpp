// Integration tests of the experiment pipeline: pretraining (with cache),
// static quantization, and the retrain flavours, on a reduced dataset so the
// suite stays fast on one CPU core.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "test_util.h"
#include "core/pipeline.h"
#include "fixedpoint/engine.h"

namespace tqt {
namespace {

DatasetConfig tiny_config() {
  DatasetConfig cfg = default_dataset_config();
  cfg.train_size = 320;
  cfg.val_size = 160;
  return cfg;
}

TEST(Metrics, TopkCounting) {
  Tensor logits({2, 6}, {0, 9, 1, 2, 3, 4,   // top1 = 1; top5 = {1,5,4,3,2}
                         5, 4, 3, 2, 1, 0});  // top1 = 0
  Tensor labels({2}, {5.0f, 0.0f});
  Accuracy acc;
  accumulate_topk(logits, labels, acc);
  EXPECT_EQ(acc.count, 2);
  EXPECT_EQ(acc.correct1, 1);   // sample 2 only
  EXPECT_EQ(acc.correct5, 2);   // 5 is within top-5 of sample 1
  EXPECT_DOUBLE_EQ(acc.top1(), 0.5);
}

TEST(Pipeline, PretrainLearnsAboveChance) {
  SyntheticImageDataset data(tiny_config());
  PretrainConfig cfg;
  cfg.epochs = 4.0f;
  auto state = load_or_pretrain(ModelKind::kMiniVgg, data, /*cache_dir=*/"", cfg);
  EXPECT_FALSE(state.empty());
  const Accuracy acc = eval_fp32(ModelKind::kMiniVgg, state, data);
  EXPECT_GT(acc.top1(), 0.35);  // 10 classes, chance = 0.1
}

TEST(Pipeline, PretrainCacheRoundTrip) {
  SyntheticImageDataset data(tiny_config());
  const std::string dir = ::testing::TempDir() + "/tqt_cache";
  std::filesystem::remove_all(dir);
  PretrainConfig cfg;
  cfg.epochs = 1.0f;
  auto a = load_or_pretrain(ModelKind::kMiniDarkNet, data, dir, cfg);
  auto b = load_or_pretrain(ModelKind::kMiniDarkNet, data, dir, cfg);  // cache hit
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [name, t] : a) EXPECT_TRUE(t.equals(b.at(name))) << name;
  std::filesystem::remove_all(dir);
}

TEST(Pipeline, StaticInt8TrialRuns) {
  SyntheticImageDataset data(tiny_config());
  PretrainConfig pc;
  pc.epochs = 4.0f;
  auto state = load_or_pretrain(ModelKind::kMiniVgg, data, "", pc);
  QuantTrialConfig cfg;
  cfg.mode = TrialMode::kStatic;
  TrialOutput out = run_quant_trial(ModelKind::kMiniVgg, state, data, cfg);
  // Static INT8 on an easy network stays within a few points of FP32.
  const Accuracy fp32 = eval_fp32(ModelKind::kMiniVgg, state, data);
  EXPECT_GT(out.accuracy.top1(), fp32.top1() - 0.15);
  // All thresholds are frozen in static mode.
  for (const auto& th : threshold_params(out.model.graph, out.qres)) {
    EXPECT_FALSE(th->trainable);
  }
}

TEST(Pipeline, RetrainTrialImprovesOrMatchesStatic) {
  SyntheticImageDataset data(tiny_config());
  PretrainConfig pc;
  pc.epochs = 10.0f;
  auto state = load_or_pretrain(ModelKind::kMiniMobileNetV1, data, "", pc);

  QuantTrialConfig stat;
  stat.mode = TrialMode::kStatic;
  const double static_top1 =
      run_quant_trial(ModelKind::kMiniMobileNetV1, state, data, stat).accuracy.top1();

  QuantTrialConfig rt;
  rt.mode = TrialMode::kRetrainWtTh;
  rt.schedule = default_retrain_schedule(2.0f);
  rt.schedule.validate_every = 10;
  TrialOutput out = run_quant_trial(ModelKind::kMiniMobileNetV1, state, data, rt);
  // Allow a small slack: on this reduced dataset both runs carry sampling
  // noise of a few validation images.
  EXPECT_GE(out.accuracy.top1() + 0.04, static_top1);
  EXPECT_GT(out.train.steps, 0);
}

TEST(Pipeline, WtOnlyRetrainKeepsThresholdsFixed) {
  SyntheticImageDataset data(tiny_config());
  PretrainConfig pc;
  pc.epochs = 2.0f;
  auto state = load_or_pretrain(ModelKind::kMiniVgg, data, "", pc);
  QuantTrialConfig cfg;
  cfg.mode = TrialMode::kRetrainWt;
  cfg.schedule = default_retrain_schedule(0.5f);
  TrialOutput out = run_quant_trial(ModelKind::kMiniVgg, state, data, cfg);
  for (const auto& th : threshold_params(out.model.graph, out.qres)) {
    EXPECT_FALSE(th->trainable) << th->name;
  }
}

TEST(Pipeline, TqtRetrainMovesThresholds) {
  SyntheticImageDataset data(tiny_config());
  PretrainConfig pc;
  pc.epochs = 2.0f;
  auto state = load_or_pretrain(ModelKind::kMiniMobileNetV1, data, "", pc);
  QuantTrialConfig cfg;
  cfg.mode = TrialMode::kRetrainWtTh;
  cfg.schedule = default_retrain_schedule(1.0f);
  cfg.schedule.validate_every = 0;
  cfg.schedule.restore_best = false;

  // Snapshot calibrated thresholds by re-running calibration on a twin graph.
  QuantTrialConfig stat = cfg;
  stat.mode = TrialMode::kStatic;
  TrialOutput before = run_quant_trial(ModelKind::kMiniMobileNetV1, state, data, stat);
  TrialOutput after = run_quant_trial(ModelKind::kMiniMobileNetV1, state, data, cfg);

  // Note: wt+th uses 3SD weight init vs MAX for static (Table 2), so weight
  // thresholds differ by construction; check that *activation* thresholds
  // moved from their KL-J initialization during training.
  auto act_values = [](Graph& g, const QuantizePassResult& r) {
    std::vector<float> v;
    for (NodeId id : r.act_quants) v.push_back(fake_quant_at(g, id).threshold()->value[0]);
    return v;
  };
  const auto v0 = act_values(before.model.graph, before.qres);
  const auto v1 = act_values(after.model.graph, after.qres);
  ASSERT_EQ(v0.size(), v1.size());
  float total_move = 0.0f;
  for (size_t i = 0; i < v0.size(); ++i) total_move += std::fabs(v1[i] - v0[i]);
  EXPECT_GT(total_move, 0.01f);
}

TEST(Pipeline, Fp32RetrainBaselineRuns) {
  SyntheticImageDataset data(tiny_config());
  PretrainConfig pc;
  pc.epochs = 2.0f;
  auto state = load_or_pretrain(ModelKind::kMiniResNet, data, "", pc);
  TrainSchedule sched = default_retrain_schedule(0.5f);
  TrialOutput out = run_fp32_retrain(ModelKind::kMiniResNet, state, data, sched);
  EXPECT_GT(out.accuracy.top1(), 0.1);
  // Quantizers must be disabled: output equals the plain folded graph.
  Tensor probe = data.calibration_batch(2, 9);
  Tensor a = out.model.graph.run({{out.model.input, probe}}, out.qres.quantized_output);
  Tensor b = out.model.graph.run({{out.model.input, probe}}, out.model.logits);
  EXPECT_TRUE(a.equals(b));
}

TEST(Pipeline, TrainedModelExportsBitExact) {
  // End-to-end: pretrain -> quantize -> TQT retrain -> fixed-point export.
  SyntheticImageDataset data(tiny_config());
  PretrainConfig pc;
  pc.epochs = 3.0f;
  auto state = load_or_pretrain(ModelKind::kMiniMobileNetV2, data, "", pc);
  QuantTrialConfig cfg;
  cfg.mode = TrialMode::kRetrainWtTh;
  cfg.schedule = default_retrain_schedule(1.0f);
  TrialOutput out = run_quant_trial(ModelKind::kMiniMobileNetV2, state, data, cfg);
  out.model.graph.set_training(false);
  FixedPointProgram prog =
      compile_fixed_point(out.model.graph, out.model.input, out.qres.quantized_output);
  Batch b = data.val_batch(0, 8);
  Tensor fake = out.model.graph.run({{out.model.input, b.images}}, out.qres.quantized_output);
  Tensor fixed = test::run_program(prog, b.images);
  for (int64_t i = 0; i < fake.numel(); ++i) ASSERT_EQ(fake[i], fixed[i]) << i;
  // And the integer program classifies as well as the fake-quant graph.
  Accuracy fa, fb;
  accumulate_topk(fake, b.labels, fa);
  accumulate_topk(fixed, b.labels, fb);
  EXPECT_EQ(fa.correct1, fb.correct1);
}

}  // namespace
}  // namespace tqt
