// TQTP serialization hardening tests: version-mismatch rejection with a
// clear message, truncated-file rejection at every interesting prefix, and
// absurd-length guards — a serving host must never misparse (or allocate
// terabytes for) a damaged deployment artifact.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "test_util.h"
#include "fixedpoint/engine.h"
#include "fixedpoint/fuse.h"
#include "graph_opt/quantize_pass.h"
#include "graph_opt/transforms.h"
#include "models/zoo.h"
#include "tensor/rng.h"

namespace tqt {
namespace {

FixedPointProgram compile_vgg_program() {
  BuiltModel m = build_model(ModelKind::kMiniVgg, 10, 11);
  Rng rng(11);
  m.graph.set_training(true);
  for (int i = 0; i < 10; ++i) {
    m.graph.run({{m.input, rng.normal_tensor({8, 16, 16, 3}, 0.2f, 1.0f)}}, m.logits);
  }
  m.graph.set_training(false);
  Tensor calib = rng.normal_tensor({16, 16, 16, 3}, 0.2f, 1.0f);
  optimize_for_quantization(m.graph, m.input, calib);
  QuantizeConfig cfg;
  QuantizePassResult qres = quantize_pass(m.graph, m.input, m.logits, cfg);
  calibrate_thresholds(m.graph, qres, m.input, calib, WeightInit::kMax);
  return compile_fixed_point(m.graph, m.input, qres.quantized_output);
}

const FixedPointProgram& shared_program() {
  static const FixedPointProgram prog = compile_vgg_program();
  return prog;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Append a trivially copyable value to a raw byte buffer (mirrors the
/// little-endian host-order writer in serialize_program.cpp).
template <typename T>
void append(std::string& buf, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  buf.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

std::string valid_header(uint64_t instr_count) {
  std::string buf = "TQTP";
  append<uint32_t>(buf, 1);           // version
  append<int>(buf, 4);                // n_registers
  append<int>(buf, 0);                // input register
  append<int>(buf, 3);                // output register
  append<uint64_t>(buf, instr_count);
  return buf;
}

std::string temp_path(const char* name) { return ::testing::TempDir() + "/" + name; }

TEST(Serialize, RoundTripPreservesProgramAndOutputsExactly) {
  const FixedPointProgram& prog = shared_program();
  // The default compile fuses, so this round-trip exercises the v2 format:
  // fused instructions with their epilogue/bias payloads.
  EXPECT_GT(prog.fusion_stats().fused_matmuls, 0);
  const std::string path = temp_path("roundtrip.tqtp");
  prog.save(path);
  const FixedPointProgram back = FixedPointProgram::load(path);
  EXPECT_EQ(back.instruction_count(), prog.instruction_count());
  EXPECT_EQ(back.parameter_count(), prog.parameter_count());
  Rng rng(42);
  for (int trial = 0; trial < 2; ++trial) {
    const Tensor probe = rng.normal_tensor({2, 16, 16, 3}, 0.2f, 1.2f);
    EXPECT_TRUE(test::run_program(prog, probe).equals(test::run_program(back, probe))) << "trial " << trial;
  }
  std::remove(path.c_str());
}

TEST(Serialize, MissingAndCorruptFilesThrowDistinctTypedErrors) {
  // The serving registry and the gateway admin plane answer "not found" and
  // "corrupt" with different wire statuses; the distinction starts here.
  EXPECT_THROW(FixedPointProgram::load("/nonexistent/prog.tqtp"), ProgramIoError);
  const std::string path = temp_path("typed_corrupt.tqtp");
  write_file(path, "definitely not a program");
  EXPECT_THROW(FixedPointProgram::load(path), ProgramFormatError);
  // Both remain runtime_errors, so untyped callers keep working.
  EXPECT_THROW(FixedPointProgram::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, VersionMismatchIsRejectedWithAClearError) {
  const std::string path = temp_path("badversion.tqtp");
  shared_program().save(path);
  std::string bytes = read_file(path);
  const uint32_t bogus = 99;
  std::memcpy(bytes.data() + 4, &bogus, sizeof(bogus));  // version field follows magic
  write_file(path, bytes);
  try {
    FixedPointProgram::load(path);
    FAIL() << "expected a version error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("version 99"), std::string::npos) << msg;
    EXPECT_NE(msg.find("versions 1..3"), std::string::npos)
        << "supported version range missing: " << msg;
  }
  std::remove(path.c_str());
}

TEST(Serialize, TruncatedFileIsRejectedAtEveryPrefix) {
  const std::string path = temp_path("full.tqtp");
  shared_program().save(path);
  const std::string bytes = read_file(path);
  ASSERT_GT(bytes.size(), 64u);

  const std::string cut_path = temp_path("truncated.tqtp");
  const size_t cuts[] = {0, 3, 4, 7, 12, 20, bytes.size() / 3, bytes.size() / 2,
                         bytes.size() - 1};
  for (const size_t cut : cuts) {
    write_file(cut_path, bytes.substr(0, cut));
    EXPECT_THROW(FixedPointProgram::load(cut_path), std::runtime_error) << "prefix " << cut;
  }
  // Sanity: the untruncated file still loads.
  write_file(cut_path, bytes);
  EXPECT_NO_THROW(FixedPointProgram::load(cut_path));
  std::remove(path.c_str());
  std::remove(cut_path.c_str());
}

TEST(Serialize, AbsurdInstructionCountIsRejected) {
  const std::string path = temp_path("absurd_count.tqtp");
  write_file(path, valid_header(uint64_t{1} << 40));
  try {
    FixedPointProgram::load(path);
    FAIL() << "expected an absurd-count error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("absurd"), std::string::npos) << e.what();
  }
  std::remove(path.c_str());
}

TEST(Serialize, AbsurdVectorLengthIsRejected) {
  std::string buf = valid_header(1);
  append<uint32_t>(buf, 0);             // kind = kQuantizeInput
  append<uint64_t>(buf, uint64_t{1} << 60);  // inputs vector "length"
  const std::string path = temp_path("absurd_vec.tqtp");
  write_file(path, buf);
  try {
    FixedPointProgram::load(path);
    FAIL() << "expected an absurd-length error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("absurd"), std::string::npos) << e.what();
  }
  std::remove(path.c_str());
}

TEST(Serialize, AbsurdStringLengthIsRejected) {
  // A syntactically complete instruction up to the debug-name string, whose
  // length field then claims 2^50 bytes.
  std::string buf = valid_header(1);
  append<uint32_t>(buf, 0);        // kind
  append<uint64_t>(buf, 1);        // inputs: 1 register id
  append<int>(buf, 0);
  append<int>(buf, 1);             // output register
  for (int i = 0; i < 8; ++i) append<int64_t>(buf, 0);  // geometry
  append<uint64_t>(buf, 0);        // const_data: empty
  append<uint64_t>(buf, 0);        // const_shape: empty
  append<int>(buf, 0);             // const_exponent
  append<int>(buf, -4);            // out_exponent
  append<int64_t>(buf, -128);      // clamp_lo
  append<int64_t>(buf, 127);       // clamp_hi
  append<int64_t>(buf, 0);         // alpha_q
  append<int>(buf, 0);             // alpha_exponent
  append<uint64_t>(buf, uint64_t{1} << 50);  // debug_name "length"
  const std::string path = temp_path("absurd_str.tqtp");
  write_file(path, buf);
  try {
    FixedPointProgram::load(path);
    FAIL() << "expected an absurd-length error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("absurd"), std::string::npos) << e.what();
  }
  std::remove(path.c_str());
}

TEST(Serialize, BadInstructionKindIsRejected) {
  std::string buf = valid_header(1);
  append<uint32_t>(buf, 1000);  // past every known kind
  const std::string path = temp_path("bad_kind.tqtp");
  write_file(path, buf);
  EXPECT_THROW(FixedPointProgram::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, V1FilesRejectFusedInstructionKinds) {
  // The fused kinds exist only from format version 2 on; a version-1 file
  // claiming one is corrupt, not forward-compatible.
  std::string buf = valid_header(1);
  append<uint32_t>(buf, static_cast<uint32_t>(FpInstr::Kind::kConv2dFused));
  const std::string path = temp_path("v1_fused_kind.tqtp");
  write_file(path, buf);
  EXPECT_THROW(FixedPointProgram::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, UnfusedProgramsSaveAsVersion1AndFuseOnLoad) {
  set_fusion_enabled(0);
  const FixedPointProgram unfused = compile_vgg_program();
  set_fusion_enabled(-1);
  ASSERT_EQ(unfused.fusion_stats().fused_matmuls, 0);

  const std::string path = temp_path("v1compat.tqtp");
  unfused.save(path);
  std::string bytes = read_file(path);
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 4, sizeof(version));
  // No instruction carries fused payloads, so the artifact stays at version 1
  // and remains readable by pre-fusion builds.
  EXPECT_EQ(version, 1u);

  // Loading under the default mode fuses at load time: old artifacts pick up
  // the fused fast path with bit-identical outputs.
  const FixedPointProgram back = FixedPointProgram::load(path);
  EXPECT_GT(back.fusion_stats().fused_matmuls, 0);
  EXPECT_LT(back.instruction_count(), unfused.instruction_count());
  Rng rng(7);
  for (int trial = 0; trial < 2; ++trial) {
    const Tensor probe = rng.normal_tensor({2, 16, 16, 3}, 0.2f, 1.2f);
    EXPECT_TRUE(test::run_program(unfused, probe).equals(test::run_program(back, probe)))
        << "trial " << trial;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tqt
