// Tests for the tqt-serve subsystem. Headline: micro-batched serving must
// preserve the engine's bit-exactness contract — a response produced inside
// a coalesced batch equals the single-sample engine run bit for bit, for
// every zoo model and every batch size.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "test_util.h"
#include "fixedpoint/engine.h"
#include "graph_opt/quantize_pass.h"
#include "graph_opt/transforms.h"
#include "models/zoo.h"
#include "serve/server.h"
#include "tensor/rng.h"

namespace tqt {
namespace {

FixedPointProgram make_program(ModelKind kind, uint64_t seed = 11) {
  BuiltModel m = build_model(kind, 10, seed);
  Rng rng(seed);
  m.graph.set_training(true);
  for (int i = 0; i < 10; ++i) {
    m.graph.run({{m.input, rng.normal_tensor({8, 16, 16, 3}, 0.2f, 1.0f)}}, m.logits);
  }
  m.graph.set_training(false);
  Tensor calib = rng.normal_tensor({16, 16, 16, 3}, 0.2f, 1.0f);
  optimize_for_quantization(m.graph, m.input, calib);
  QuantizeConfig cfg;
  QuantizePassResult qres = quantize_pass(m.graph, m.input, m.logits, cfg);
  calibrate_thresholds(m.graph, qres, m.input, calib, WeightInit::kMax);
  return compile_fixed_point(m.graph, m.input, qres.quantized_output);
}

const Shape kSampleShape = {16, 16, 3};

class ServeBitExact : public ::testing::TestWithParam<ModelKind> {};

// The tentpole contract: responses served through the dynamic micro-batcher
// are bit-identical to single-sample engine runs at batch sizes 1, 3 and
// max_batch (8), for every zoo model.
TEST_P(ServeBitExact, BatchedResponseEqualsSingleSampleRun) {
  const FixedPointProgram prog = make_program(GetParam());
  Rng rng(123);
  constexpr int kRequests = 12;
  std::vector<Tensor> samples, reference;
  for (int i = 0; i < kRequests; ++i) {
    samples.push_back(rng.normal_tensor({1, 16, 16, 3}, 0.2f, 1.2f));
    reference.push_back(test::run_program(prog, samples.back()));
  }

  for (const int64_t max_batch : {int64_t{1}, int64_t{3}, int64_t{8}}) {
    serve::ServerConfig cfg;
    cfg.batch.max_batch = max_batch;
    cfg.batch.max_delay_us = 20000;  // generous: coalescing must not change bits
    cfg.batch.max_queue = 64;
    serve::InferenceServer server(cfg);
    server.deploy("m", prog, kSampleShape);

    std::vector<std::future<Tensor>> futures;
    for (int i = 0; i < kRequests; ++i) {
      serve::SubmitResult res = server.submit("m", samples[static_cast<size_t>(i)]);
      ASSERT_EQ(res.status, serve::SubmitStatus::kOk);
      futures.push_back(std::move(res.response));
    }
    for (int i = 0; i < kRequests; ++i) {
      const Tensor got = futures[static_cast<size_t>(i)].get();
      ASSERT_EQ(got.shape(), reference[static_cast<size_t>(i)].shape());
      EXPECT_TRUE(got.equals(reference[static_cast<size_t>(i)]))
          << model_name(GetParam()) << " request " << i << " max_batch " << max_batch;
    }

    server.shutdown_and_drain();
    const serve::StatsSnapshot s = server.stats("m");
    EXPECT_EQ(s.requests, static_cast<uint64_t>(kRequests));
    EXPECT_EQ(s.responses, static_cast<uint64_t>(kRequests));
    EXPECT_EQ(s.failed, 0u);
    EXPECT_EQ(s.shed, 0u);
    uint64_t served = 0;
    for (const auto& [size, count] : s.batch_histogram) {
      EXPECT_GE(size, 1);
      EXPECT_LE(size, max_batch);
      served += static_cast<uint64_t>(size) * count;
    }
    EXPECT_EQ(served, static_cast<uint64_t>(kRequests));
  }
}

// Engine-level check without the server: a multi-sample batch run produces
// the same rows as the per-sample runs.
TEST_P(ServeBitExact, EngineBatchRowsMatchSingleRuns) {
  const FixedPointProgram prog = make_program(GetParam());
  Rng rng(321);
  const Tensor batch = rng.normal_tensor({3, 16, 16, 3}, 0.2f, 1.2f);
  const Tensor batched = test::run_program(prog, batch);
  const int64_t sample_numel = numel_of(kSampleShape);
  const int64_t row = batched.numel() / 3;
  for (int64_t i = 0; i < 3; ++i) {
    Tensor single({1, 16, 16, 3});
    for (int64_t j = 0; j < sample_numel; ++j) single[j] = batch[i * sample_numel + j];
    const Tensor ref = test::run_program(prog, single);
    for (int64_t j = 0; j < row; ++j) {
      ASSERT_EQ(ref[j], batched[i * row + j]) << model_name(GetParam()) << " sample " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ServeBitExact, ::testing::ValuesIn(all_model_kinds()),
                         [](const auto& info) { return model_name(info.param); });

serve::InferenceServer& mini_vgg_server(serve::ServerConfig cfg) {
  static const FixedPointProgram prog = make_program(ModelKind::kMiniVgg);
  static std::unique_ptr<serve::InferenceServer> server;
  server = std::make_unique<serve::InferenceServer>(cfg);
  server->deploy("mini_vgg", prog, kSampleShape);
  return *server;
}

TEST(Serve, AdmissionControlShedsWhenQueueIsFull) {
  serve::ServerConfig cfg;
  cfg.batch.max_batch = 8;         // > max_queue: the worker keeps waiting...
  cfg.batch.max_delay_us = 200000; // ...long past the submit burst below
  cfg.batch.max_queue = 2;
  serve::InferenceServer& server = mini_vgg_server(cfg);

  Rng rng(5);
  const Tensor sample = rng.normal_tensor({1, 16, 16, 3});
  int accepted = 0, shed = 0;
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 10; ++i) {
    serve::SubmitResult res = server.submit("mini_vgg", sample);
    if (res.status == serve::SubmitStatus::kOk) {
      ++accepted;
      futures.push_back(std::move(res.response));
    } else {
      EXPECT_EQ(res.status, serve::SubmitStatus::kShed);
      ++shed;
    }
  }
  EXPECT_EQ(accepted, 2);
  EXPECT_EQ(shed, 8);

  // Drain: every *accepted* request still completes.
  server.shutdown_and_drain();
  for (auto& f : futures) EXPECT_GT(f.get().numel(), 0);
  const serve::StatsSnapshot s = server.stats("mini_vgg");
  EXPECT_EQ(s.shed, 8u);
  EXPECT_EQ(s.responses, 2u);
  EXPECT_EQ(s.queue_high_water, 2u);
}

TEST(Serve, AlreadyExpiredDeadlineIsRejectedAtAdmission) {
  serve::InferenceServer& server = mini_vgg_server({});
  Rng rng(31);
  serve::SubmitOptions opts;
  opts.deadline = std::chrono::steady_clock::now() - std::chrono::milliseconds(5);
  const serve::SubmitResult res = server.submit("mini_vgg", rng.normal_tensor({1, 16, 16, 3}), opts);
  EXPECT_EQ(res.status, serve::SubmitStatus::kDeadlineExceeded);
  server.shutdown_and_drain();
  const serve::StatsSnapshot s = server.stats("mini_vgg");
  EXPECT_EQ(s.deadline_dropped, 1u);
  EXPECT_EQ(s.responses, 0u);  // never queued, never executed
}

TEST(Serve, QueuedRequestPastDeadlineFulfilsFutureWithTypedError) {
  serve::ServerConfig cfg;
  cfg.batch.max_batch = 8;          // the collection window outlives...
  cfg.batch.max_delay_us = 150000;  // ...the 1ms deadline below
  serve::InferenceServer& server = mini_vgg_server(cfg);
  Rng rng(32);
  serve::SubmitOptions opts;
  opts.deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(1);
  serve::SubmitResult res = server.submit("mini_vgg", rng.normal_tensor({1, 16, 16, 3}), opts);
  ASSERT_EQ(res.status, serve::SubmitStatus::kOk);  // accepted; expires in queue
  EXPECT_THROW(res.response.get(), serve::DeadlineExceededError);
  server.shutdown_and_drain();
  const serve::StatsSnapshot s = server.stats("mini_vgg");
  EXPECT_EQ(s.deadline_dropped, 1u);
  EXPECT_EQ(s.responses, 0u);  // dropped at dequeue, before the engine ran
}

TEST(Serve, SubmitAsyncRunsTheCallbackExactlyOnceOnASuccess) {
  serve::InferenceServer& server = mini_vgg_server({});
  Rng rng(33);
  std::promise<serve::MicroBatcher::Completion> done;
  auto fut = done.get_future();
  const serve::SubmitStatus st = server.submit_async(
      "mini_vgg", rng.normal_tensor({1, 16, 16, 3}), {},
      [&done](serve::MicroBatcher::Completion&& c) { done.set_value(std::move(c)); });
  ASSERT_EQ(st, serve::SubmitStatus::kOk);
  serve::MicroBatcher::Completion c = fut.get();
  EXPECT_EQ(c.status, serve::SubmitStatus::kOk);
  EXPECT_GT(c.output.numel(), 0);
  server.shutdown_and_drain();
}

TEST(Serve, SubmitAsyncRejectionsDoNotInvokeTheCallback) {
  serve::InferenceServer& server = mini_vgg_server({});
  Rng rng(34);
  bool invoked = false;
  const auto never = [&invoked](serve::MicroBatcher::Completion&&) { invoked = true; };
  EXPECT_EQ(server.submit_async("nope", rng.normal_tensor({1, 16, 16, 3}), {}, never),
            serve::SubmitStatus::kUnknownModel);
  serve::SubmitOptions expired;
  expired.deadline = std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  EXPECT_EQ(server.submit_async("mini_vgg", rng.normal_tensor({1, 16, 16, 3}), expired, never),
            serve::SubmitStatus::kDeadlineExceeded);
  server.shutdown_and_drain();
  EXPECT_EQ(server.submit_async("mini_vgg", rng.normal_tensor({1, 16, 16, 3}), {}, never),
            serve::SubmitStatus::kShuttingDown);
  EXPECT_FALSE(invoked);
}

TEST(Serve, SubmitAfterShutdownIsRejected) {
  serve::InferenceServer& server = mini_vgg_server({});
  server.shutdown_and_drain();
  Rng rng(6);
  const serve::SubmitResult res = server.submit("mini_vgg", rng.normal_tensor({1, 16, 16, 3}));
  EXPECT_EQ(res.status, serve::SubmitStatus::kShuttingDown);
}

TEST(Serve, UnknownModelIsRejected) {
  serve::InferenceServer& server = mini_vgg_server({});
  Rng rng(7);
  const serve::SubmitResult res = server.submit("nope", rng.normal_tensor({1, 16, 16, 3}));
  EXPECT_EQ(res.status, serve::SubmitStatus::kUnknownModel);
}

TEST(Serve, BadSampleShapeThrows) {
  serve::InferenceServer& server = mini_vgg_server({});
  Rng rng(8);
  EXPECT_THROW(server.submit("mini_vgg", rng.normal_tensor({2, 16, 16, 3})),
               std::invalid_argument);
  EXPECT_THROW(server.submit("mini_vgg", rng.normal_tensor({16, 16})), std::invalid_argument);
}

// deploy() and deploy_file() share one validation path; for the same bad
// input the two entry points must report character-identical errors.
TEST(Serve, DeployAndDeployFileReportIdenticalValidationErrors) {
  const FixedPointProgram prog = make_program(ModelKind::kMiniVgg);
  const std::string path = "serve_validation_tmp.tqtp";
  prog.save(path);

  const auto error_text = [](const std::function<void()>& fn) -> std::string {
    try {
      fn();
    } catch (const std::invalid_argument& e) {
      return e.what();
    }
    return "";
  };

  serve::InferenceServer direct;
  serve::InferenceServer from_file;
  const std::string name1 = error_text([&] { direct.deploy("", prog, kSampleShape); });
  const std::string name2 = error_text([&] { from_file.deploy_file("", path, kSampleShape); });
  ASSERT_FALSE(name1.empty());
  EXPECT_EQ(name1, name2);

  const std::string shape1 = error_text([&] { direct.deploy("m", prog, {}); });
  const std::string shape2 = error_text([&] { from_file.deploy_file("m", path, {}); });
  ASSERT_FALSE(shape1.empty());
  EXPECT_EQ(shape1, shape2);

  const std::string dim1 = error_text([&] { direct.deploy("m", prog, {16, 0, 3}); });
  const std::string dim2 = error_text([&] { from_file.deploy_file("m", path, {16, 0, 3}); });
  ASSERT_FALSE(dim1.empty());
  EXPECT_EQ(dim1, dim2);
  std::remove(path.c_str());
}

TEST(Serve, HotSwapServesNewProgramAtomically) {
  const FixedPointProgram v1 = make_program(ModelKind::kMiniVgg, /*seed=*/11);
  const FixedPointProgram v2 = make_program(ModelKind::kMiniVgg, /*seed=*/99);
  Rng rng(9);
  const Tensor sample = rng.normal_tensor({1, 16, 16, 3}, 0.2f, 1.2f);
  const Tensor want_v1 = test::run_program(v1, sample);
  const Tensor want_v2 = test::run_program(v2, sample);
  ASSERT_FALSE(want_v1.equals(want_v2)) << "swap test needs distinguishable programs";

  serve::InferenceServer server;
  EXPECT_EQ(server.deploy("m", v1, kSampleShape), 1u);
  EXPECT_TRUE(server.submit("m", sample).response.get().equals(want_v1));

  EXPECT_EQ(server.deploy("m", v2, kSampleShape), 2u);  // hot swap, same lane
  EXPECT_EQ(server.registry().version("m"), 2u);
  EXPECT_TRUE(server.submit("m", sample).response.get().equals(want_v2));
  server.shutdown_and_drain();
}

TEST(Serve, ConcurrentClientsAllGetExactResponses) {
  const FixedPointProgram prog = make_program(ModelKind::kMiniVgg);
  Rng rng(10);
  const Tensor sample = rng.normal_tensor({1, 16, 16, 3}, 0.2f, 1.2f);
  const Tensor want = test::run_program(prog, sample);

  serve::ServerConfig cfg;
  cfg.batch.max_batch = 4;
  cfg.batch.max_delay_us = 500;
  serve::InferenceServer server(cfg);
  server.deploy("m", prog, kSampleShape);

  constexpr int kClients = 4, kPerClient = 8;
  std::vector<std::thread> clients;
  std::vector<int> ok(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        serve::SubmitResult res = server.submit("m", sample);
        if (res.status != serve::SubmitStatus::kOk) continue;
        if (res.response.get().equals(want)) ++ok[static_cast<size_t>(c)];
      }
    });
  }
  for (auto& t : clients) t.join();
  server.shutdown_and_drain();
  int total = 0;
  for (int c = 0; c < kClients; ++c) total += ok[static_cast<size_t>(c)];
  EXPECT_EQ(total, kClients * kPerClient);  // queue of 256 never sheds here
}

TEST(Serve, StatsJsonSnapshotHasTheAdvertisedFields) {
  serve::InferenceServer& server = mini_vgg_server({});
  Rng rng(12);
  const Tensor sample = rng.normal_tensor({1, 16, 16, 3});
  server.submit("mini_vgg", sample).response.get();
  const std::string json = server.stats_json();
  for (const char* key :
       {"\"models\"", "\"name\": \"mini_vgg\"", "\"version\": 1", "\"requests\"",
        "\"responses\"", "\"shed\"", "\"batches\"", "\"queue_high_water\"",
        "\"batch_histogram\"", "\"latency_us\"", "\"p50\"", "\"p95\"", "\"p99\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key << " in " << json;
  }
  server.shutdown_and_drain();
}

TEST(Serve, RegistryLookupAndVersioning) {
  serve::ModelRegistry reg;
  EXPECT_EQ(reg.lookup("m"), nullptr);
  EXPECT_EQ(reg.version("m"), 0u);
  EXPECT_EQ(reg.install("m", make_program(ModelKind::kMiniVgg)), 1u);
  const auto p1 = reg.lookup("m");
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(reg.install("m", make_program(ModelKind::kMiniVgg, 99)), 2u);
  // The old snapshot stays alive and immutable for in-flight batches.
  EXPECT_GT(p1->instruction_count(), 0);
  EXPECT_NE(reg.lookup("m"), p1);
  EXPECT_EQ(reg.names(), std::vector<std::string>{"m"});
}

}  // namespace
}  // namespace tqt
