// Tests for the asymmetric (zero-point) fake quantizer — the TF-QAT baseline
// scheme of Table 1 — and its integration with the quantize pass.
#include <gtest/gtest.h>

#include <cmath>

#include "graph_opt/quantize_pass.h"
#include "graph_opt/transforms.h"
#include "models/zoo.h"
#include "quant/asymmetric.h"
#include "tensor/rng.h"

namespace tqt {
namespace {

Tensor fq(AsymmetricFakeQuantOp& op, const Tensor& x) {
  std::vector<const Tensor*> ins{&x};
  return op.forward(ins);
}

TEST(AsymQuant, ScaleAndZeroPoint) {
  auto r = make_range("r", -1.0f, 3.0f);
  AsymmetricFakeQuantOp q(8, r);
  EXPECT_FLOAT_EQ(q.scale(), 4.0f / 255.0f);
  // z = round(1 / (4/255)) = round(63.75) = 64.
  EXPECT_EQ(q.zero_point(), 64);
}

TEST(AsymQuant, ZeroIsExactlyRepresentable) {
  // The defining property of the affine scheme (paper footnote 1).
  auto r = make_range("r", -0.7f, 2.3f);
  AsymmetricFakeQuantOp q(8, r);
  Tensor x({1}, {0.0f});
  EXPECT_FLOAT_EQ(fq(q, x)[0], 0.0f);
}

TEST(AsymQuant, ClipsAtRangeEnds) {
  auto r = make_range("r", -1.0f, 1.0f);
  AsymmetricFakeQuantOp q(8, r);
  Tensor x({3}, {-5.0f, 0.5f, 5.0f});
  Tensor y = fq(q, x);
  EXPECT_NEAR(y[0], -1.0f, 0.01f);
  EXPECT_NEAR(y[1], 0.5f, 0.01f);
  EXPECT_NEAR(y[2], 1.0f, 0.01f);
}

TEST(AsymQuant, AsymmetricRangeUsesAllLevels) {
  // Unlike symmetric quantization, a [0, 6] range spends no levels below 0.
  auto r = make_range("r", 0.0f, 6.0f);
  AsymmetricFakeQuantOp q(8, r);
  EXPECT_EQ(q.zero_point(), 0);
  Tensor x({1}, {6.0f});
  EXPECT_NEAR(fq(q, x)[0], 6.0f, 1e-5f);
  // Resolution is 6/255, roughly half the symmetric [-6,6] step.
  Tensor fine({1}, {6.0f / 255.0f});
  EXPECT_NEAR(fq(q, fine)[0], 6.0f / 255.0f, 1e-6f);
}

TEST(AsymQuant, Idempotent) {
  Rng rng(5);
  auto r = make_range("r", -2.0f, 1.0f);
  AsymmetricFakeQuantOp q(8, r);
  Tensor x = rng.normal_tensor({500});
  Tensor once = fq(q, x);
  EXPECT_TRUE(once.equals(fq(q, once)));
}

TEST(AsymQuant, ClippedRangeGradients) {
  auto r = make_range("r", -1.0f, 1.0f);
  AsymmetricFakeQuantOp q(8, r);
  Tensor x({4}, {-3.0f, -0.5f, 0.5f, 3.0f});
  fq(q, x);
  auto g = q.backward(Tensor({4}, {1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(r->grad[0], 1.0f);  // below-range sample
  EXPECT_FLOAT_EQ(r->grad[1], 1.0f);  // above-range sample
  EXPECT_EQ(g[0][0], 0.0f);
  EXPECT_EQ(g[0][1], 1.0f);
  EXPECT_EQ(g[0][2], 1.0f);
  EXPECT_EQ(g[0][3], 0.0f);
}

TEST(AsymQuant, DisabledAndCollect) {
  Rng rng(6);
  auto r = make_range("r", -1.0f, 1.0f);
  AsymmetricFakeQuantOp q(8, r);
  Tensor x = rng.normal_tensor({32});
  q.set_enabled(false);
  EXPECT_TRUE(fq(q, x).equals(x));
  q.set_enabled(true);
  q.set_collect(true);
  EXPECT_TRUE(fq(q, x).equals(x));
  EXPECT_EQ(q.collected().size(), 32u);
}

TEST(AsymQuant, RejectsBadArgs) {
  EXPECT_THROW(make_range("r", 1.0f, 1.0f), std::invalid_argument);
  auto r = make_range("r", -1.0f, 1.0f);
  EXPECT_THROW(AsymmetricFakeQuantOp(QuantSpec{1, false, -1, false}, r), std::invalid_argument);
  auto bad = std::make_shared<Param>("b", Tensor({3}), "threshold");
  EXPECT_THROW(AsymmetricFakeQuantOp(QuantSpec{8, false, -1, false}, bad), std::invalid_argument);
}

// ---- Pass integration ----------------------------------------------------------

TEST(AsymQuantPass, QuantizesAndEvaluates) {
  BuiltModel m = build_model(ModelKind::kMiniResNet, 10, 3);
  Rng rng(3);
  m.graph.set_training(true);
  for (int i = 0; i < 8; ++i) {
    m.graph.run({{m.input, rng.normal_tensor({8, 16, 16, 3}, 0.2f, 1.0f)}}, m.logits);
  }
  m.graph.set_training(false);
  Tensor calib = rng.normal_tensor({16, 16, 16, 3}, 0.2f, 1.0f);
  optimize_for_quantization(m.graph, m.input, calib);
  QuantizeConfig cfg;
  cfg.asymmetric = true;
  cfg.emulate_intermediates = false;
  cfg.power_of_2 = false;
  auto qres = quantize_pass(m.graph, m.input, m.logits, cfg);
  calibrate_thresholds(m.graph, qres, m.input, calib, WeightInit::kMax);

  // Every quantizer in this graph is asymmetric; ranges cover the data.
  EXPECT_FALSE(m.graph.nodes_of_type("AsymFakeQuant").empty());
  EXPECT_TRUE(m.graph.nodes_of_type("FakeQuant").empty());
  for (const auto& th : threshold_params(m.graph, qres)) {
    ASSERT_EQ(th->value.numel(), 2);
    EXPECT_LT(th->value[0], th->value[1]);
  }
  Tensor probe = rng.normal_tensor({2, 16, 16, 3}, 0.2f, 1.0f);
  set_quantizers_enabled(m.graph, false);
  Tensor off = m.graph.run({{m.input, probe}}, qres.quantized_output);
  set_quantizers_enabled(m.graph, true);
  Tensor on = m.graph.run({{m.input, probe}}, qres.quantized_output);
  EXPECT_FALSE(on.equals(off));
  EXPECT_TRUE(on.allclose(off, 0.5f * std::max(1.0f, off.abs_max())));
}

TEST(AsymQuantPass, RejectsIncompatibleConfig) {
  BuiltModel m = build_model(ModelKind::kMiniVgg);
  QuantizeConfig cfg;
  cfg.asymmetric = true;  // default power_of_2 / emulate are on
  EXPECT_THROW(quantize_pass(m.graph, m.input, m.logits, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace tqt
