// Tests for the fixed-point engine, headlined by the paper's bit-accuracy
// contract (§4.2): the integer-only program must produce outputs EXACTLY
// equal to the float fake-quant inference graph, for every model family.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "test_util.h"
#include "fixedpoint/engine.h"
#include "graph_opt/quantize_pass.h"
#include "graph_opt/transforms.h"
#include "models/zoo.h"
#include "tensor/rng.h"

namespace tqt {
namespace {

struct Prepared {
  BuiltModel m;
  QuantizePassResult qres;
};

Prepared prepare(ModelKind kind, int weight_bits = 8, uint64_t seed = 11) {
  Prepared p;
  p.m = build_model(kind, 10, seed);
  Rng rng(seed);
  p.m.graph.set_training(true);
  for (int i = 0; i < 10; ++i) {
    p.m.graph.run({{p.m.input, rng.normal_tensor({8, 16, 16, 3}, 0.2f, 1.0f)}}, p.m.logits);
  }
  p.m.graph.set_training(false);
  Tensor calib = rng.normal_tensor({16, 16, 16, 3}, 0.2f, 1.0f);
  optimize_for_quantization(p.m.graph, p.m.input, calib);
  QuantizeConfig cfg;
  cfg.precision.wbits = weight_bits;
  p.qres = quantize_pass(p.m.graph, p.m.input, p.m.logits, cfg);
  calibrate_thresholds(p.m.graph, p.qres, p.m.input, calib, WeightInit::kMax);
  return p;
}

class BitExact : public ::testing::TestWithParam<ModelKind> {};

TEST_P(BitExact, Int8MatchesFakeQuantGraphExactly) {
  Prepared p = prepare(GetParam());
  FixedPointProgram prog = compile_fixed_point(p.m.graph, p.m.input, p.qres.quantized_output);
  Rng rng(77);
  for (int trial = 0; trial < 3; ++trial) {
    Tensor probe = rng.normal_tensor({2, 16, 16, 3}, 0.2f, 1.2f);
    Tensor fake = p.m.graph.run({{p.m.input, probe}}, p.qres.quantized_output);
    Tensor fixed = test::run_program(prog, probe);
    ASSERT_EQ(fake.shape(), fixed.shape());
    for (int64_t i = 0; i < fake.numel(); ++i) {
      ASSERT_EQ(fake[i], fixed[i]) << model_name(GetParam()) << " element " << i
                                   << " trial " << trial;
    }
    if (trial == 0) {
      // The typed engine (run) and the int64 reference interpreter must also
      // agree with each other, not just with the fake-quant graph.
      Tensor ref = prog.run_reference(probe);
      ASSERT_TRUE(fixed.equals(ref)) << model_name(GetParam()) << " typed vs reference";
    }
  }
}

TEST_P(BitExact, Int4MatchesFakeQuantGraphExactly) {
  Prepared p = prepare(GetParam(), /*weight_bits=*/4);
  FixedPointProgram prog = compile_fixed_point(p.m.graph, p.m.input, p.qres.quantized_output);
  Rng rng(78);
  Tensor probe = rng.normal_tensor({2, 16, 16, 3}, 0.2f, 1.2f);
  Tensor fake = p.m.graph.run({{p.m.input, probe}}, p.qres.quantized_output);
  Tensor fixed = test::run_program(prog, probe);
  for (int64_t i = 0; i < fake.numel(); ++i) {
    ASSERT_EQ(fake[i], fixed[i]) << model_name(GetParam()) << " element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, BitExact, ::testing::ValuesIn(all_model_kinds()),
                         [](const auto& info) { return model_name(info.param); });

TEST(FixedPoint, RawOutputIsInt8Range) {
  Prepared p = prepare(ModelKind::kMiniVgg);
  FixedPointProgram prog = compile_fixed_point(p.m.graph, p.m.input, p.qres.quantized_output);
  Rng rng(79);
  IntTensor raw = prog.run_raw(rng.normal_tensor({2, 16, 16, 3}));
  for (int64_t v : raw.data) {
    EXPECT_GE(v, -128);
    EXPECT_LE(v, 127);
  }
}

TEST(FixedPoint, ProgramMetadata) {
  Prepared p = prepare(ModelKind::kMiniResNet);
  FixedPointProgram prog = compile_fixed_point(p.m.graph, p.m.input, p.qres.quantized_output);
  EXPECT_GT(prog.instruction_count(), 20);
  EXPECT_GT(prog.parameter_count(), 1000);
  // Instruction stream starts by quantizing the input.
  EXPECT_EQ(prog.instructions().front().kind, FpInstr::Kind::kQuantizeInput);
}

TEST(FixedPoint, RefusesUnquantizedGraph) {
  BuiltModel m = build_model(ModelKind::kMiniVgg);
  Rng rng(80);
  m.graph.set_training(false);
  Tensor sample = rng.normal_tensor({1, 16, 16, 3});
  optimize_for_quantization(m.graph, m.input, sample);
  EXPECT_THROW(compile_fixed_point(m.graph, m.input, m.logits), std::runtime_error);
}

TEST(FixedPoint, RefusesDisabledQuantizers) {
  Prepared p = prepare(ModelKind::kMiniVgg);
  set_quantizers_enabled(p.m.graph, false);
  EXPECT_THROW(compile_fixed_point(p.m.graph, p.m.input, p.qres.quantized_output),
               std::runtime_error);
}

TEST(FixedPoint, DeterministicAcrossRuns) {
  Prepared p = prepare(ModelKind::kMiniMobileNetV2);
  FixedPointProgram prog = compile_fixed_point(p.m.graph, p.m.input, p.qres.quantized_output);
  Rng rng(81);
  Tensor probe = rng.normal_tensor({1, 16, 16, 3});
  EXPECT_TRUE(test::run_program(prog, probe).equals(test::run_program(prog, probe)));
}

TEST(FixedPoint, SaveLoadRoundTrip) {
  Prepared p = prepare(ModelKind::kMiniInception);
  FixedPointProgram prog = compile_fixed_point(p.m.graph, p.m.input, p.qres.quantized_output);
  const std::string path = ::testing::TempDir() + "/prog.tqtp";
  prog.save(path);
  FixedPointProgram back = FixedPointProgram::load(path);
  EXPECT_EQ(back.instruction_count(), prog.instruction_count());
  EXPECT_EQ(back.parameter_count(), prog.parameter_count());
  Rng rng(90);
  Tensor probe = rng.normal_tensor({2, 16, 16, 3});
  EXPECT_TRUE(test::run_program(prog, probe).equals(test::run_program(back, probe)));
  std::remove(path.c_str());
}

TEST(FixedPoint, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/garbage.tqtp";
  {
    std::ofstream os(path, std::ios::binary);
    os << "this is not a program";
  }
  EXPECT_THROW(FixedPointProgram::load(path), std::runtime_error);
  EXPECT_THROW(FixedPointProgram::load("/nonexistent/prog.tqtp"), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tqt
