// Tests for the synthetic dataset and the mini model zoo.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/synthetic.h"
#include "models/builder.h"
#include "models/zoo.h"
#include "nn/ops_basic.h"
#include "nn/ops_loss.h"

namespace tqt {
namespace {

DatasetConfig small_config() {
  DatasetConfig cfg;
  cfg.train_size = 64;
  cfg.val_size = 32;
  return cfg;
}

TEST(Dataset, ShapesAndDeterminism) {
  SyntheticImageDataset a(small_config());
  SyntheticImageDataset b(small_config());
  const std::vector<int64_t> idx{0, 1, 5};
  Batch ba = a.train_batch(idx);
  Batch bb = b.train_batch(idx);
  EXPECT_EQ(ba.images.shape(), (Shape{3, 16, 16, 3}));
  EXPECT_EQ(ba.labels.shape(), (Shape{3}));
  EXPECT_TRUE(ba.images.equals(bb.images));  // fully deterministic from seed
  EXPECT_TRUE(ba.labels.equals(bb.labels));
}

TEST(Dataset, DifferentSeedDifferentData) {
  DatasetConfig cfg = small_config();
  SyntheticImageDataset a(cfg);
  cfg.seed = 999;
  SyntheticImageDataset b(cfg);
  const std::vector<int64_t> idx{0};
  EXPECT_FALSE(a.train_batch(idx).images.equals(b.train_batch(idx).images));
}

TEST(Dataset, BalancedLabels) {
  SyntheticImageDataset d(small_config());
  std::vector<int64_t> all(64);
  for (int64_t i = 0; i < 64; ++i) all[static_cast<size_t>(i)] = i;
  Batch b = d.train_batch(all);
  std::map<int64_t, int> counts;
  for (int64_t i = 0; i < 64; ++i) counts[static_cast<int64_t>(b.labels[i])]++;
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [cls, n] : counts) EXPECT_NEAR(n, 6, 1) << "class " << cls;
}

TEST(Dataset, ValBatchBounds) {
  SyntheticImageDataset d(small_config());
  EXPECT_NO_THROW(d.val_batch(0, 32));
  EXPECT_THROW(d.val_batch(16, 32), std::out_of_range);
}

TEST(Dataset, CalibrationBatchFromValSplit) {
  SyntheticImageDataset d(small_config());
  Tensor c1 = d.calibration_batch(8, 5);
  Tensor c2 = d.calibration_batch(8, 5);
  EXPECT_EQ(c1.shape(), (Shape{8, 16, 16, 3}));
  EXPECT_TRUE(c1.equals(c2));  // deterministic in the seed
  EXPECT_FALSE(c1.equals(d.calibration_batch(8, 6)));
}

TEST(Dataset, ClassesAreSeparable) {
  // Same-class samples must be closer to their class mean than to other
  // class means on average — a basic sanity floor for learnability.
  DatasetConfig cfg = small_config();
  cfg.noise = 0.1f;
  SyntheticImageDataset d(cfg);
  std::vector<int64_t> all(64);
  for (int64_t i = 0; i < 64; ++i) all[static_cast<size_t>(i)] = i;
  Batch b = d.train_batch(all);
  const int64_t pixels = 16 * 16 * 3;
  std::vector<Tensor> means(10, Tensor({pixels}));
  std::vector<int> counts(10, 0);
  for (int64_t i = 0; i < 64; ++i) {
    const int c = static_cast<int>(b.labels[i]);
    for (int64_t j = 0; j < pixels; ++j) means[static_cast<size_t>(c)][j] += b.images[i * pixels + j];
    counts[static_cast<size_t>(c)]++;
  }
  for (int c = 0; c < 10; ++c) means[static_cast<size_t>(c)] *= 1.0f / counts[static_cast<size_t>(c)];
  int nearest_correct = 0;
  for (int64_t i = 0; i < 64; ++i) {
    double best = 1e30;
    int best_c = -1;
    for (int c = 0; c < 10; ++c) {
      double dist = 0.0;
      for (int64_t j = 0; j < pixels; ++j) {
        const double diff = b.images[i * pixels + j] - means[static_cast<size_t>(c)][j];
        dist += diff * diff;
      }
      if (dist < best) {
        best = dist;
        best_c = c;
      }
    }
    if (best_c == static_cast<int>(b.labels[i])) ++nearest_correct;
  }
  EXPECT_GT(nearest_correct, 32);  // far above the 10% chance level
}

TEST(Dataset, TrainAndValSplitsAreIndependentDraws) {
  SyntheticImageDataset d(small_config());
  const std::vector<int64_t> idx{0};
  Batch train = d.train_batch(idx);
  Batch val = d.val_batch(0, 1);
  EXPECT_EQ(train.labels[0], val.labels[0]);  // both are class 0 (balanced)
  EXPECT_FALSE(train.images.equals(val.images));
}

TEST(Dataset, RejectsBadConfig) {
  DatasetConfig cfg;
  cfg.num_classes = 1;
  EXPECT_THROW(SyntheticImageDataset{cfg}, std::invalid_argument);
}

// ---- Model zoo -----------------------------------------------------------------

class ZooTest : public ::testing::TestWithParam<ModelKind> {};

TEST_P(ZooTest, ForwardBackwardSmoke) {
  BuiltModel m = build_model(GetParam());
  Rng rng(1);
  Tensor x = rng.normal_tensor({2, 16, 16, 3});
  m.graph.set_training(true);
  Tensor logits = m.graph.run({{m.input, x}}, m.logits);
  EXPECT_EQ(logits.shape(), (Shape{2, 10}));
  for (int64_t i = 0; i < logits.numel(); ++i) EXPECT_TRUE(std::isfinite(logits[i]));

  // Attach a loss and check gradients flow to every trainable parameter.
  NodeId labels = m.graph.add("labels", std::make_unique<InputOp>());
  NodeId loss =
      m.graph.add("loss", std::make_unique<SoftmaxCrossEntropyOp>(), {m.logits, labels});
  Tensor y({2}, {1.0f, 3.0f});
  m.graph.zero_grad();
  m.graph.run({{m.input, x}, {labels, y}}, loss);
  m.graph.backward(loss);
  int with_grad = 0, trainable = 0;
  for (const auto& p : m.graph.params()) {
    if (!p->trainable) continue;
    ++trainable;
    if (p->grad.abs_max() > 0.0f) ++with_grad;
  }
  EXPECT_GT(trainable, 4);
  // Allow at most a couple of dead parameters (dead ReLUs at init).
  EXPECT_GE(with_grad, trainable - 2);
}

TEST_P(ZooTest, DeterministicConstruction) {
  BuiltModel a = build_model(GetParam(), 10, 33);
  BuiltModel b = build_model(GetParam(), 10, 33);
  const auto sa = a.graph.state_dict();
  const auto sb = b.graph.state_dict();
  ASSERT_EQ(sa.size(), sb.size());
  for (const auto& [name, t] : sa) EXPECT_TRUE(t.equals(sb.at(name))) << name;
}

TEST_P(ZooTest, EvalModeIsDeterministic) {
  BuiltModel m = build_model(GetParam());
  m.graph.set_training(false);
  Rng rng(2);
  Tensor x = rng.normal_tensor({1, 16, 16, 3});
  Tensor y1 = m.graph.run({{m.input, x}}, m.logits);
  Tensor y2 = m.graph.run({{m.input, x}}, m.logits);
  EXPECT_TRUE(y1.equals(y2));
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooTest, ::testing::ValuesIn(all_model_kinds()),
                         [](const auto& info) { return model_name(info.param); });

TEST(Zoo, NamesAreUnique) {
  std::set<std::string> names;
  for (ModelKind k : all_model_kinds()) names.insert(model_name(k));
  EXPECT_EQ(names.size(), all_model_kinds().size());
}

TEST(Zoo, MobileNetHasDepthwiseGammaSpread) {
  // The documented substitution: depthwise BN gammas must span a wide
  // power-of-2 range so folded depthwise weights have irregular per-channel
  // ranges (paper §6.2).
  BuiltModel m = build_model(ModelKind::kMiniMobileNetV1);
  float lo = 1e30f, hi = 0.0f;
  for (const auto& p : m.graph.params()) {
    if (p->name.find("/dw/bn/gamma") == std::string::npos) continue;
    for (int64_t i = 0; i < p->value.numel(); ++i) {
      lo = std::min(lo, p->value[i]);
      hi = std::max(hi, p->value[i]);
    }
  }
  ASSERT_LT(lo, hi);
  EXPECT_GT(hi / lo, 4.0f);
}

TEST(Builder, RejectsDoubleInput) {
  ModelBuilder b("t", 1);
  b.input(16, 3);
  EXPECT_THROW(b.input(16, 3), std::logic_error);
}

TEST(Builder, RejectsConvAfterFlatten) {
  ModelBuilder b("t", 1);
  NodeId x = b.input(16, 3);
  x = b.flatten("flat", x);
  EXPECT_THROW(b.conv_bn("c", x, 8, 3, 1, Act::kRelu), std::logic_error);
}

}  // namespace
}  // namespace tqt
