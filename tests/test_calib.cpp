// Tests for tqt-autocal (src/calib): streaming histograms, the online
// calibrator, and the calibration service. Headline contracts:
//
//  * StreamingHistogram is exact and order-independent — the determinism
//    anchor: feeding the same batches to two calibrators yields bit-identical
//    thresholds and therefore bit-identical compiled programs;
//  * a promoted program is bit-exact against an offline calibrator fed the
//    same batches (the "offline recalibrated reference");
//  * the shadow validator rejects a deliberately broken candidate, the old
//    thresholds are restored, and the next clean cycle promotes;
//  * rollback reinstalls the previous version (and a second rollback is a
//    typed kBadModel); swap-file distinguishes kBadModel from kCorruptModel;
//  * injected drift (a gain-shifted request stream) trips the detector and
//    auto-recalibrates without a single failed inference response;
//  * hot-swaps under 4 concurrent client connections keep every response
//    bit-exact against exactly one promoted version.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "test_util.h"
#include "calib/autocal.h"
#include "calib/calibrator.h"
#include "calib/stats.h"
#include "core/pipeline.h"
#include "net/client.h"
#include "net/gateway.h"
#include "serve/server.h"
#include "tensor/rng.h"

namespace tqt {
namespace {

using calib::AutocalConfig;
using calib::AutocalState;
using calib::CalibrationService;
using calib::OnlineCalibrator;
using calib::StreamingHistogram;
using net::AdminOp;
using net::AdminRequest;
using net::AdminResponse;
using net::WireStatus;

// ---- Shared fixture ---------------------------------------------------------

DatasetConfig tiny_config() {
  DatasetConfig cfg = default_dataset_config();
  cfg.train_size = 320;
  cfg.val_size = 160;
  return cfg;
}

/// One pretrained model for the whole suite — pretraining dominates the cost
/// of every service test, so it runs exactly once.
struct World {
  SyntheticImageDataset data;
  std::map<std::string, Tensor> state;
  World() : data(tiny_config()) {
    PretrainConfig pc;
    pc.epochs = 4.0f;
    state = load_or_pretrain(ModelKind::kMiniVgg, data, /*cache_dir=*/"", pc);
  }
};

World& world() {
  static World* w = new World();
  return *w;
}

AutocalConfig base_cfg() {
  AutocalConfig cfg;
  cfg.model = "m";
  cfg.kind = ModelKind::kMiniVgg;
  cfg.holdout_images = 64;
  cfg.holdout_batch = 32;
  cfg.min_samples = 64;
  cfg.mirror_every = 0;  // drift tests opt in explicitly
  cfg.accuracy_drop_tolerance = 0.15;
  return cfg;
}

/// An offline calibrator constructed exactly like the service's — feeding it
/// the same batches must reproduce the service's promoted program bit for bit.
std::unique_ptr<OnlineCalibrator> offline_mirror(const AutocalConfig& cfg) {
  return std::make_unique<OnlineCalibrator>(cfg.kind, world().state, world().data, cfg.quant,
                                            cfg.hist_bins, cfg.calib_images, cfg.calib_seed);
}

AdminRequest batch_request(const std::string& model, Tensor images) {
  AdminRequest req;
  req.op = AdminOp::kCalibBatch;
  req.model = model;
  req.has_batch = true;
  req.batch = std::move(images);
  return req;
}

AdminRequest op_request(AdminOp op, const std::string& model, std::string arg = "") {
  AdminRequest req;
  req.op = op;
  req.model = model;
  req.arg = std::move(arg);
  return req;
}

Tensor scaled(Tensor t, float gain) {
  for (int64_t i = 0; i < t.numel(); ++i) t.data()[i] *= gain;
  return t;
}

// ---- StreamingHistogram -----------------------------------------------------

TEST(StreamingHistogram, FoldPreservesTotalCountAcrossWideRanges) {
  StreamingHistogram h(64, 1.0f / 1024.0f);
  std::vector<float> values;
  for (int i = 0; i < 2000; ++i) {
    values.push_back(0.0001f * static_cast<float>(i % 37) + 0.01f);
  }
  values.push_back(500.0f);   // forces many width doublings
  values.push_back(-500.0f);  // |x| histogram: sign is dropped
  h.observe(values.data(), static_cast<int64_t>(values.size()));
  EXPECT_EQ(h.count(), static_cast<uint64_t>(values.size()));
  EXPECT_GE(h.bin_width() * static_cast<float>(h.bins()), 500.0f);  // span covers the max
  // A threshold inside the bin holding the max gets a sliver of linearly
  // apportioned mass; past that bin's upper edge the tail is exactly zero.
  EXPECT_LT(h.fraction_above(501.0f), 0.001);
  EXPECT_DOUBLE_EQ(h.fraction_above(600.0f), 0.0);
  EXPECT_GT(h.fraction_above(0.001f), 0.9);
}

TEST(StreamingHistogram, OrderIndependenceIsExact) {
  Rng rng(9);
  const Tensor t = rng.normal_tensor({4096}, 0.0f, 3.0f);
  std::vector<float> forward(t.data(), t.data() + t.numel());
  std::vector<float> reversed(forward.rbegin(), forward.rend());
  // Interleave a large value early vs late: the early-fold and late-fold
  // paths must land every sample in the same final bin.
  forward.push_back(1000.0f);
  reversed.insert(reversed.begin(), 1000.0f);

  StreamingHistogram a(128), b(128);
  a.observe(forward.data(), static_cast<int64_t>(forward.size()));
  b.observe(reversed.data(), static_cast<int64_t>(reversed.size()));
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.bin_width(), b.bin_width());
  float amax = 0, bmax = 0;
  const std::vector<float> ha = a.float_hist(&amax);
  const std::vector<float> hb = b.float_hist(&bmax);
  EXPECT_EQ(amax, bmax);
  ASSERT_EQ(ha.size(), hb.size());
  for (size_t i = 0; i < ha.size(); ++i) EXPECT_EQ(ha[i], hb[i]) << "bin " << i;
  EXPECT_EQ(a.percentile(0.999), b.percentile(0.999));
}

TEST(StreamingHistogram, ClearResetsWidthAndCount) {
  StreamingHistogram h(32, 0.5f);
  const float big = 1e6f;
  h.observe(&big, 1);
  EXPECT_GT(h.bin_width(), 0.5f);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bin_width(), 0.5f);
  float mx = -1;
  EXPECT_TRUE(h.float_hist(&mx).empty());
}

// ---- OnlineCalibrator -------------------------------------------------------

TEST(OnlineCalibrator, SameBatchesYieldBitIdenticalThresholdsAndPrograms) {
  const AutocalConfig cfg = base_cfg();
  auto a = offline_mirror(cfg);
  auto b = offline_mirror(cfg);
  ASSERT_GT(a->group_count(), 0u);

  std::vector<Tensor> batches;
  batches.push_back(world().data.val_batch(0, 32).images);
  batches.push_back(world().data.val_batch(32, 32).images);
  a->calibrate_from(batches, 2);
  b->calibrate_from(batches, 2);

  const auto ta = a->thresholds();
  const auto tb = b->thresholds();
  ASSERT_EQ(ta.size(), tb.size());
  for (const auto& [name, v] : ta) EXPECT_EQ(v, tb.at(name)) << name;  // exact float equality

  const FixedPointProgram pa = a->compile();
  const FixedPointProgram pb = b->compile();
  const Tensor probe = world().data.val_batch(64, 3).images;
  EXPECT_TRUE(test::run_program(pa, probe).equals(test::run_program(pb, probe)));
}

TEST(OnlineCalibrator, DeriveWithoutDataLeavesThresholdsAlone) {
  auto c = offline_mirror(base_cfg());
  const auto before = c->thresholds();
  EXPECT_TRUE(c->derive().empty());
  EXPECT_EQ(c->thresholds(), before);
}

// ---- CalibrationService: lifecycle and admin plane --------------------------

TEST(CalibService, DeploysInitialVersionThatServesBitExact) {
  serve::InferenceServer server;
  const AutocalConfig cfg = base_cfg();
  CalibrationService svc(server, world().data, world().state, cfg);
  EXPECT_EQ(svc.live_version(), 1u);
  EXPECT_EQ(svc.state(), AutocalState::kIdle);

  // Version 1 is the same program an offline static calibration produces.
  const FixedPointProgram reference = offline_mirror(cfg)->compile();
  const Tensor probe = world().data.val_batch(0, 1).images;
  serve::SubmitResult res = server.submit(cfg.model, probe);
  ASSERT_EQ(res.status, serve::SubmitStatus::kOk);
  EXPECT_TRUE(res.response.get().equals(test::run_program(reference, probe)));
}

TEST(CalibService, TriggerPromotesBitExactAgainstOfflineRecalibration) {
  serve::InferenceServer server;
  const AutocalConfig cfg = base_cfg();
  CalibrationService svc(server, world().data, world().state, cfg);

  std::vector<Tensor> batches;
  batches.push_back(world().data.val_batch(0, 32).images);
  batches.push_back(world().data.val_batch(32, 32).images);
  for (const Tensor& b : batches) {
    const AdminResponse r = svc.admin_sync(batch_request(cfg.model, b));
    ASSERT_EQ(r.status, WireStatus::kOk) << r.message;
  }
  EXPECT_EQ(svc.state(), AutocalState::kCollecting);

  const AdminResponse r = svc.recalibrate_now();
  ASSERT_EQ(r.status, WireStatus::kOk) << r.message;
  EXPECT_NE(r.message.find("promoted version 2"), std::string::npos) << r.message;
  EXPECT_EQ(svc.live_version(), 2u);
  EXPECT_EQ(svc.state(), AutocalState::kIdle);

  // The promoted program must match an offline calibrator fed the same
  // batches — threshold derivation is a pure function of the data.
  auto offline = offline_mirror(cfg);
  offline->calibrate_from(batches, cfg.calib_passes);
  const FixedPointProgram reference = offline->compile();
  const Tensor probe = world().data.val_batch(64, 1).images;
  serve::SubmitResult res = server.submit(cfg.model, probe);
  ASSERT_EQ(res.status, serve::SubmitStatus::kOk);
  EXPECT_TRUE(res.response.get().equals(test::run_program(reference, probe)));
}

TEST(CalibService, TriggerWithoutEnoughDataIsATypedFailure) {
  serve::InferenceServer server;
  AutocalConfig cfg = base_cfg();
  cfg.min_samples = 64;
  CalibrationService svc(server, world().data, world().state, cfg);

  AdminResponse r = svc.recalibrate_now();
  EXPECT_EQ(r.status, WireStatus::kInternal);
  EXPECT_NE(r.message.find("no calibration data"), std::string::npos) << r.message;

  // 8 images < min_samples 64: collected but not enough for a cycle.
  r = svc.admin_sync(batch_request(cfg.model, world().data.val_batch(0, 8).images));
  ASSERT_EQ(r.status, WireStatus::kOk);
  r = svc.recalibrate_now();
  EXPECT_EQ(r.status, WireStatus::kInternal);
  EXPECT_NE(r.message.find("insufficient calibration data"), std::string::npos) << r.message;
  EXPECT_EQ(svc.live_version(), 1u);
}

TEST(CalibService, MalformedBatchIsRejectedWithoutSideEffects) {
  serve::InferenceServer server;
  const AutocalConfig cfg = base_cfg();
  CalibrationService svc(server, world().data, world().state, cfg);
  Rng rng(3);

  AdminRequest bad = batch_request(cfg.model, rng.normal_tensor({16, 16, 3}));  // rank 3
  AdminResponse r = svc.admin_sync(bad);
  EXPECT_EQ(r.status, WireStatus::kMalformed);

  bad = batch_request(cfg.model, rng.normal_tensor({2, 8, 8, 3}));  // wrong sample shape
  r = svc.admin_sync(bad);
  EXPECT_EQ(r.status, WireStatus::kMalformed);

  AdminRequest no_tensor = op_request(AdminOp::kCalibBatch, cfg.model);
  r = svc.admin_sync(no_tensor);
  EXPECT_EQ(r.status, WireStatus::kMalformed);
  EXPECT_EQ(svc.state(), AutocalState::kIdle);
}

TEST(CalibService, DryRunReportsThresholdsWithoutDeploying) {
  serve::InferenceServer server;
  const AutocalConfig cfg = base_cfg();
  CalibrationService svc(server, world().data, world().state, cfg);

  // Dry run before any data is a typed failure, not a crash.
  AdminResponse r = svc.admin_sync(op_request(AdminOp::kDryRun, cfg.model));
  EXPECT_EQ(r.status, WireStatus::kInternal);

  const AdminResponse fed =
      svc.admin_sync(batch_request(cfg.model, world().data.val_batch(0, 32).images));
  ASSERT_EQ(fed.status, WireStatus::kOk);
  r = svc.admin_sync(op_request(AdminOp::kDryRun, cfg.model));
  ASSERT_EQ(r.status, WireStatus::kOk);
  EXPECT_NE(r.message.find("log2t"), std::string::npos) << r.message;
  EXPECT_EQ(svc.live_version(), 1u) << "dry run must not deploy";
}

TEST(CalibService, StatusJsonCarriesTheObservableState) {
  serve::InferenceServer server;
  const AutocalConfig cfg = base_cfg();
  CalibrationService svc(server, world().data, world().state, cfg);
  const AdminResponse r = svc.admin_sync(op_request(AdminOp::kStatus, cfg.model));
  ASSERT_EQ(r.status, WireStatus::kOk);
  EXPECT_NE(r.message.find("\"state\": \"idle\""), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("\"live_version\": 1"), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("\"model\": \"m\""), std::string::npos) << r.message;
}

// ---- Rejection, rollback and swap-file paths --------------------------------

TEST(CalibService, BrokenCandidateIsRejectedThenRecoversCleanly) {
  serve::InferenceServer server;
  const AutocalConfig cfg = base_cfg();
  CalibrationService svc(server, world().data, world().state, cfg);

  std::vector<Tensor> batches;
  batches.push_back(world().data.val_batch(0, 32).images);
  batches.push_back(world().data.val_batch(32, 32).images);
  for (const Tensor& b : batches) {
    ASSERT_EQ(svc.admin_sync(batch_request(cfg.model, b)).status, WireStatus::kOk);
  }

  // Fault injection: shift every threshold 6 bits up after calibration — the
  // candidate quantizes everything to mush and must fail the accuracy gate.
  svc.set_candidate_mutator([](OnlineCalibrator& c) {
    std::map<std::string, float> th = c.thresholds();
    for (auto& [name, v] : th) v += 6.0f;
    c.set_thresholds(th);
  });
  const AdminResponse rejected = svc.recalibrate_now();
  EXPECT_EQ(rejected.status, WireStatus::kInternal);
  EXPECT_NE(rejected.message.find("rejected"), std::string::npos) << rejected.message;
  EXPECT_EQ(svc.state(), AutocalState::kRolledBack);
  EXPECT_EQ(svc.live_version(), 1u) << "a rejected candidate must never deploy";

  // Serving was never disturbed: still the version-1 program.
  const Tensor probe = world().data.val_batch(64, 1).images;
  const FixedPointProgram v1 = offline_mirror(cfg)->compile();
  serve::SubmitResult res = server.submit(cfg.model, probe);
  ASSERT_EQ(res.status, serve::SubmitStatus::kOk);
  EXPECT_TRUE(res.response.get().equals(test::run_program(v1, probe)));

  // Clearing the fault recovers: the next cycle promotes, and the promoted
  // program matches the offline reference — proof the rejected cycle left no
  // residue in the calibrator's threshold state.
  svc.set_candidate_mutator(nullptr);
  const AdminResponse ok = svc.recalibrate_now();
  ASSERT_EQ(ok.status, WireStatus::kOk) << ok.message;
  auto offline = offline_mirror(cfg);
  offline->calibrate_from(batches, cfg.calib_passes);
  const FixedPointProgram reference = offline->compile();
  res = server.submit(cfg.model, probe);
  ASSERT_EQ(res.status, serve::SubmitStatus::kOk);
  EXPECT_TRUE(res.response.get().equals(test::run_program(reference, probe)));
}

TEST(CalibService, RollbackReinstallsPreviousVersionExactlyOnce) {
  serve::InferenceServer server;
  const AutocalConfig cfg = base_cfg();
  CalibrationService svc(server, world().data, world().state, cfg);
  std::vector<Tensor> batches;
  batches.push_back(world().data.val_batch(0, 32).images);
  batches.push_back(world().data.val_batch(32, 32).images);
  for (const Tensor& b : batches) {
    ASSERT_EQ(svc.admin_sync(batch_request(cfg.model, b)).status, WireStatus::kOk);
  }
  ASSERT_EQ(svc.recalibrate_now().status, WireStatus::kOk);
  ASSERT_EQ(svc.live_version(), 2u);

  const AdminResponse back = svc.admin_sync(op_request(AdminOp::kRollback, cfg.model));
  ASSERT_EQ(back.status, WireStatus::kOk) << back.message;
  EXPECT_EQ(svc.state(), AutocalState::kRolledBack);

  // The registry serves the version-1 program again (under a new registry
  // version number — versions are monotonic, contents roll back).
  const Tensor probe = world().data.val_batch(64, 1).images;
  const FixedPointProgram v1 = offline_mirror(cfg)->compile();
  serve::SubmitResult res = server.submit(cfg.model, probe);
  ASSERT_EQ(res.status, serve::SubmitStatus::kOk);
  EXPECT_TRUE(res.response.get().equals(test::run_program(v1, probe)));

  // The previous slot is consumed: a second rollback is a typed kBadModel.
  const AdminResponse again = svc.admin_sync(op_request(AdminOp::kRollback, cfg.model));
  EXPECT_EQ(again.status, WireStatus::kBadModel);
  EXPECT_NE(again.message.find("no previous version"), std::string::npos) << again.message;
}

TEST(CalibService, SwapFileDistinguishesMissingCorruptAndValidArtifacts) {
  serve::InferenceServer server;
  const AutocalConfig cfg = base_cfg();
  CalibrationService svc(server, world().data, world().state, cfg);

  // Missing file: "not found", not "corrupt".
  AdminResponse r = svc.admin_sync(
      op_request(AdminOp::kSwapFile, cfg.model, "/nonexistent/candidate.tqtp"));
  EXPECT_EQ(r.status, WireStatus::kBadModel);

  // Corrupt file: typed kCorruptModel.
  const std::string corrupt = ::testing::TempDir() + "/calib_corrupt.tqtp";
  {
    std::FILE* f = std::fopen(corrupt.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a program", f);
    std::fclose(f);
  }
  r = svc.admin_sync(op_request(AdminOp::kSwapFile, cfg.model, corrupt));
  EXPECT_EQ(r.status, WireStatus::kCorruptModel);
  EXPECT_EQ(svc.live_version(), 1u);
  std::remove(corrupt.c_str());

  // A valid recalibrated artifact passes shadow validation and promotes.
  auto offline = offline_mirror(cfg);
  std::vector<Tensor> batches;
  batches.push_back(world().data.val_batch(0, 32).images);
  batches.push_back(world().data.val_batch(32, 32).images);
  offline->calibrate_from(batches, cfg.calib_passes);
  const FixedPointProgram candidate = offline->compile();
  const std::string good = ::testing::TempDir() + "/calib_candidate.tqtp";
  candidate.save(good);
  r = svc.admin_sync(op_request(AdminOp::kSwapFile, cfg.model, good));
  ASSERT_EQ(r.status, WireStatus::kOk) << r.message;
  EXPECT_NE(r.message.find("promoted file artifact"), std::string::npos) << r.message;
  EXPECT_EQ(svc.live_version(), 2u);
  const Tensor probe = world().data.val_batch(64, 1).images;
  serve::SubmitResult res = server.submit(cfg.model, probe);
  ASSERT_EQ(res.status, serve::SubmitStatus::kOk);
  EXPECT_TRUE(res.response.get().equals(test::run_program(candidate, probe)));
  std::remove(good.c_str());
}

// ---- Drift detection --------------------------------------------------------

TEST(CalibService, InjectedDriftTriggersRecalibrationWithoutServingErrors) {
  serve::ServerConfig scfg;
  // Wire the mirror through an atomic slot, exactly like the CLI does: the
  // config must exist before the service it forwards to.
  auto slot = std::make_shared<std::atomic<CalibrationService*>>(nullptr);
  scfg.mirror = [slot](const std::string& n, const Tensor& s) {
    if (auto* svc = slot->load(std::memory_order_acquire)) svc->mirror_sample(n, s);
  };
  serve::InferenceServer server(scfg);

  AutocalConfig cfg = base_cfg();
  cfg.mirror_every = 1;
  cfg.mirror_capacity = 64;
  cfg.min_window = 16;
  cfg.drift_check_interval_ms = 5;
  cfg.drift_clip_threshold = 0.01;
  cfg.accuracy_drop_tolerance = 0.5;  // mechanics under test, not accuracy
  CalibrationService svc(server, world().data, world().state, cfg);
  slot->store(&svc, std::memory_order_release);

  // A 4x gain shifts every activation range: the calibrated thresholds clip
  // hard, the drift detector fires, and a recalibration cycle hot-swaps a
  // program adapted to the new range. Serving must never return an error.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  int64_t sent = 0;
  while (svc.live_version() < 2 && std::chrono::steady_clock::now() < deadline) {
    const Tensor probe = scaled(world().data.val_batch(sent % 64, 1).images, 4.0f);
    serve::SubmitResult res = server.submit(cfg.model, probe);
    ASSERT_EQ(res.status, serve::SubmitStatus::kOk) << "request " << sent;
    res.response.get();  // must resolve even mid-swap
    ++sent;
  }
  slot->store(nullptr, std::memory_order_release);
  EXPECT_GE(svc.live_version(), 2u) << "drift never triggered after " << sent << " requests";
  const std::string status = svc.status_json();
  EXPECT_EQ(status.find("\"drift_triggers\": 0"), std::string::npos) << status;
}

// ---- Gateway admin plane and the hot-swap soak ------------------------------

/// Server + service + gateway with the right construction/destruction order.
struct CalibRig {
  serve::InferenceServer server;
  CalibrationService service;
  std::unique_ptr<net::Gateway> gateway;

  explicit CalibRig(const AutocalConfig& cfg)
      : server(), service(server, world().data, world().state, cfg) {
    net::GatewayConfig gcfg;
    gcfg.port = 0;
    gcfg.admin = &service;
    gateway = std::make_unique<net::Gateway>(server, gcfg);
  }
  ~CalibRig() {
    gateway.reset();  // gateway first: it routes frames into the service
  }
  uint16_t port() const { return gateway->port(); }
};

TEST(CalibGateway, AdminPlaneRoundTripsOverTheWire) {
  const AutocalConfig cfg = base_cfg();
  CalibRig rig(cfg);
  net::GatewayClient client("localhost", rig.port());

  AdminResponse r = client.admin(op_request(AdminOp::kStatus, cfg.model));
  ASSERT_EQ(r.status, WireStatus::kOk);
  EXPECT_NE(r.message.find("\"live_version\": 1"), std::string::npos) << r.message;

  r = client.admin(batch_request(cfg.model, world().data.val_batch(0, 32).images));
  ASSERT_EQ(r.status, WireStatus::kOk);
  EXPECT_NE(r.message.find("\"samples\": 32"), std::string::npos) << r.message;
  r = client.admin(batch_request(cfg.model, world().data.val_batch(32, 32).images));
  ASSERT_EQ(r.status, WireStatus::kOk);

  r = client.admin(op_request(AdminOp::kDryRun, cfg.model));
  ASSERT_EQ(r.status, WireStatus::kOk);
  EXPECT_NE(r.message.find("log2t"), std::string::npos);

  r = client.admin(op_request(AdminOp::kTrigger, cfg.model));
  ASSERT_EQ(r.status, WireStatus::kOk) << r.message;
  EXPECT_NE(r.message.find("promoted version 2"), std::string::npos) << r.message;

  // Inference on the same gateway still answers, from the new version.
  const Tensor probe = world().data.val_batch(64, 1).images;
  const net::InferResponse inf = client.infer(cfg.model, probe);
  ASSERT_EQ(inf.status, WireStatus::kOk) << inf.message;
  std::vector<Tensor> batches;
  batches.push_back(world().data.val_batch(0, 32).images);
  batches.push_back(world().data.val_batch(32, 32).images);
  auto offline = offline_mirror(cfg);
  offline->calibrate_from(batches, cfg.calib_passes);
  EXPECT_TRUE(inf.output.equals(test::run_program(offline->compile(), probe)));
}

TEST(CalibGateway, ConcurrentHotSwapsStayBitExactUnderFourConnections) {
  AutocalConfig cfg = base_cfg();
  cfg.min_samples = 32;
  CalibRig rig(cfg);

  // Every response must equal one promoted version's output on the probe.
  // The allowed set is built from offline calibrators BEFORE each trigger,
  // so a response racing a promotion always has its version in the set.
  const Tensor probe = world().data.val_batch(64, 1).images;
  std::vector<Tensor> allowed;
  std::mutex allowed_mu;
  allowed.push_back(test::run_program(offline_mirror(cfg)->compile(), probe));

  std::atomic<bool> done{false};
  std::atomic<int64_t> responses{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      net::GatewayClient client("localhost", rig.port());
      while (!done.load(std::memory_order_acquire)) {
        net::InferResponse r;
        try {
          r = client.infer(cfg.model, probe);
        } catch (const std::exception&) {
          errors.fetch_add(1);
          return;
        }
        if (r.status != WireStatus::kOk) {
          errors.fetch_add(1);
          continue;
        }
        bool matched = false;
        {
          std::lock_guard<std::mutex> lk(allowed_mu);
          for (const Tensor& t : allowed) matched = matched || r.output.equals(t);
        }
        if (!matched) errors.fetch_add(1);
        responses.fetch_add(1);
      }
      (void)c;
    });
  }

  // Admin thread: three calibration cycles over growing batch sets, each
  // pre-computed offline so the promoted program is known before the swap.
  auto offline = offline_mirror(cfg);
  std::vector<Tensor> batches;
  for (int cycle = 0; cycle < 3; ++cycle) {
    batches.push_back(world().data.val_batch(32 * cycle, 32).images);
    {
      auto fresh = offline_mirror(cfg);  // service calibrates from scratch each cycle
      fresh->calibrate_from(batches, cfg.calib_passes);
      const Tensor expect = test::run_program(fresh->compile(), probe);
      std::lock_guard<std::mutex> lk(allowed_mu);
      allowed.push_back(expect);
    }
    const AdminResponse fed = rig.service.admin_sync(
        batch_request(cfg.model, world().data.val_batch(32 * cycle, 32).images));
    ASSERT_EQ(fed.status, WireStatus::kOk);
    const AdminResponse r = rig.service.recalibrate_now();
    ASSERT_EQ(r.status, WireStatus::kOk) << r.message;
  }
  // Let the clients hammer the final version for a moment before stopping.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  done.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_GT(responses.load(), 0);
  EXPECT_EQ(rig.service.live_version(), 4u);
}

}  // namespace
}  // namespace tqt
