// Shared helpers for the test suite: numerical gradient checking against the
// graph's analytic backward pass, and a convenience wrapper over the
// fixed-point engine's run_into entry point.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>

#include "fixedpoint/engine.h"
#include "nn/graph.h"
#include "tensor/rng.h"

namespace tqt::test {

/// Run a compiled program through the engine's single entry point
/// (run_into) and return the result — the test-side replacement for the
/// deprecated FixedPointProgram::run convenience overloads.
inline Tensor run_program(const FixedPointProgram& prog, const Tensor& input) {
  thread_local ExecContext ctx;
  Tensor out;
  prog.run_into(input, ctx, out);
  return out;
}

/// Central-difference numerical gradient of `f` with respect to `t`,
/// evaluated elementwise. `f` must be a pure function of the tensor's
/// current contents.
inline Tensor numerical_grad(Tensor& t, const std::function<double()>& f, float eps = 1e-3f) {
  Tensor g(t.shape());
  for (int64_t i = 0; i < t.numel(); ++i) {
    const float orig = t[i];
    t[i] = orig + eps;
    const double hi = f();
    t[i] = orig - eps;
    const double lo = f();
    t[i] = orig;
    g[i] = static_cast<float>((hi - lo) / (2.0 * eps));
  }
  return g;
}

/// Assert the analytic gradient of every trainable parameter of `graph`
/// against central differences of the loss node. The graph must already have
/// fed inputs supplied via `feed`. Ops with kinks (ReLU, quantizers) need
/// inputs away from the kink; callers are responsible for that.
inline void check_param_grads(Graph& graph, const Feed& feed, NodeId loss_node, float tol = 2e-2f,
                              float eps = 1e-3f) {
  graph.zero_grad();
  graph.run(feed, loss_node);
  graph.backward(loss_node);
  auto params = graph.params();
  for (auto& p : params) {
    if (!p->trainable) continue;
    Tensor analytic = p->grad;
    auto f = [&]() { return static_cast<double>(graph.run(feed, loss_node).item()); };
    Tensor numeric = numerical_grad(p->value, f, eps);
    for (int64_t i = 0; i < numeric.numel(); ++i) {
      const float scale = std::max({1.0f, std::fabs(numeric[i]), std::fabs(analytic[i])});
      EXPECT_NEAR(analytic[i], numeric[i], tol * scale)
          << "param " << p->name << " element " << i;
    }
    // Re-establish analytic gradients for the next parameter (numerical_grad
    // perturbed and restored values; grads are unchanged but forward caches
    // were clobbered, which check only matters for subsequent params' f()).
    graph.zero_grad();
    graph.run(feed, loss_node);
    graph.backward(loss_node);
    p->grad = analytic;  // keep the asserted values coherent
  }
}

/// Assert dL/d(input node) against central differences for a fed input.
inline void check_input_grad(Graph& graph, Feed feed, NodeId input_node, NodeId loss_node,
                             float tol = 2e-2f, float eps = 1e-3f) {
  graph.zero_grad();
  graph.run(feed, loss_node);
  graph.backward(loss_node);
  const Tensor analytic = graph.node(input_node).grad;
  ASSERT_TRUE(graph.node(input_node).has_grad);
  Tensor x = feed.at(input_node);
  auto f = [&]() {
    Feed fd = feed;
    fd[input_node] = x;
    return static_cast<double>(graph.run(fd, loss_node).item());
  };
  const Tensor numeric = numerical_grad(x, f, eps);
  ASSERT_EQ(analytic.shape(), numeric.shape());
  for (int64_t i = 0; i < numeric.numel(); ++i) {
    const float scale = std::max({1.0f, std::fabs(numeric[i]), std::fabs(analytic[i])});
    EXPECT_NEAR(analytic[i], numeric[i], tol * scale) << "input element " << i;
  }
}

}  // namespace tqt::test
