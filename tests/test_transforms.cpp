// Tests for the Graffitist-style graph transforms: BN folding, identity
// splicing, concat collapsing, pool rewriting — all must preserve the
// inference-mode function of the graph.
#include <gtest/gtest.h>

#include "graph_opt/transforms.h"
#include "models/builder.h"
#include "models/zoo.h"
#include "nn/ops_basic.h"
#include "nn/ops_conv.h"
#include "nn/ops_norm.h"
#include "tensor/rng.h"

namespace tqt {
namespace {

/// Run a few training steps' worth of forwards so BN moving stats are
/// non-trivial, then switch to eval.
void warm_up_bn(Graph& g, NodeId input, NodeId out, Rng& rng) {
  g.set_training(true);
  for (int i = 0; i < 12; ++i) {
    g.run({{input, rng.normal_tensor({8, 16, 16, 3}, 0.3f, 1.5f)}}, out);
  }
  g.set_training(false);
}

TEST(FoldBn, ConvBnEquivalence) {
  ModelBuilder b("t", 3);
  NodeId x = b.input(16, 3);
  NodeId out = b.conv_bn("c1", x, 8, 3, 1, Act::kRelu);
  Graph g = b.take();
  Rng rng(1);
  warm_up_bn(g, x, out, rng);
  Tensor probe = rng.normal_tensor({2, 16, 16, 3});
  Tensor before = g.run({{x, probe}}, out);
  EXPECT_EQ(fold_batch_norms(g), 1);
  EXPECT_TRUE(g.nodes_of_type("BatchNorm").empty());
  EXPECT_EQ(g.nodes_of_type("BiasAdd").size(), 1u);
  Tensor after = g.run({{x, probe}}, out);
  EXPECT_TRUE(before.allclose(after, 1e-4f));
}

TEST(FoldBn, DepthwiseAndGammaSpreadEquivalence) {
  ModelBuilder b("t", 4);
  NodeId x = b.input(16, 3);
  NodeId out = b.depthwise_bn("dw", x, 3, 1, Act::kRelu6, /*gamma_log2_spread=*/2.0f);
  Graph g = b.take();
  Rng rng(2);
  warm_up_bn(g, x, out, rng);
  Tensor probe = rng.normal_tensor({2, 16, 16, 3});
  Tensor before = g.run({{x, probe}}, out);
  EXPECT_EQ(fold_batch_norms(g), 1);
  Tensor after = g.run({{x, probe}}, out);
  EXPECT_TRUE(before.allclose(after, 1e-4f));
}

TEST(FoldBn, SkipsSharedConvOutputs) {
  // If the conv output feeds both BN and something else, folding would change
  // the other consumer; the transform must leave it alone.
  ModelBuilder b("t", 5);
  NodeId x = b.input(16, 3);
  NodeId out = b.conv_bn("c1", x, 4, 3, 1, Act::kNone);
  Graph g = b.take();
  const NodeId conv = g.find("c1/conv");
  ASSERT_NE(conv, kNoNode);
  g.add("tap", std::make_unique<IdentityOp>(), {conv});
  EXPECT_EQ(fold_batch_norms(g), 0);
  (void)out;
}

TEST(Splice, RemovesIdentities) {
  Graph g;
  NodeId in = g.add("x", std::make_unique<InputOp>());
  NodeId id1 = g.add("id1", std::make_unique<IdentityOp>(), {in});
  NodeId id2 = g.add("id2", std::make_unique<IdentityOp>(), {id1});
  NodeId relu = g.add("relu", std::make_unique<ReluOp>(), {id2});
  EXPECT_EQ(splice_identities(g), 2);
  EXPECT_EQ(g.node(relu).inputs[0], in);
  Tensor xv({2}, {-1, 2});
  EXPECT_TRUE(g.run({{in, xv}}, relu).equals(Tensor({2}, {0, 2})));
}

TEST(Collapse, ConcatOfConcat) {
  Graph g;
  NodeId in = g.add("x", std::make_unique<InputOp>());
  NodeId a = g.add("a", std::make_unique<IdentityOp>(), {in});
  NodeId bnode = g.add("b", std::make_unique<IdentityOp>(), {in});
  NodeId c = g.add("c", std::make_unique<IdentityOp>(), {in});
  NodeId inner = g.add("inner", std::make_unique<ConcatOp>(), {a, bnode});
  NodeId outer = g.add("outer", std::make_unique<ConcatOp>(), {inner, c});
  Rng rng(3);
  Tensor xv = rng.normal_tensor({2, 4});
  Tensor before = g.run({{in, xv}}, outer);
  EXPECT_EQ(collapse_concats(g), 1);
  EXPECT_EQ(g.node(outer).inputs.size(), 3u);
  EXPECT_TRUE(g.run({{in, xv}}, outer).equals(before));
}

TEST(Collapse, KeepsSharedInnerConcat) {
  Graph g;
  NodeId in = g.add("x", std::make_unique<InputOp>());
  NodeId a = g.add("a", std::make_unique<IdentityOp>(), {in});
  NodeId inner = g.add("inner", std::make_unique<ConcatOp>(), {a, a});
  NodeId outer = g.add("outer", std::make_unique<ConcatOp>(), {inner, a});
  NodeId tap = g.add("tap", std::make_unique<IdentityOp>(), {inner});
  EXPECT_EQ(collapse_concats(g), 0);  // inner has another consumer
  (void)outer;
  (void)tap;
}

TEST(Pools, AvgPoolToDepthwiseEquivalence) {
  ModelBuilder b("t", 6);
  NodeId x = b.input(16, 3);
  NodeId pooled = b.avg_pool("ap", x, 2, 2);
  Graph g = b.take();
  Rng rng(4);
  Tensor probe = rng.normal_tensor({2, 16, 16, 3});
  Tensor before = g.run({{x, probe}}, pooled);
  EXPECT_EQ(pools_to_depthwise(g, x, probe), 1);
  EXPECT_TRUE(g.nodes_of_type("AvgPool").empty());
  const NodeId dw = g.find("ap/as_dwconv");
  ASSERT_NE(dw, kNoNode);
  Tensor after = g.run({{x, probe}}, dw);
  EXPECT_TRUE(before.allclose(after, 1e-5f));
}

TEST(Pools, GlobalAvgPoolToDepthwiseEquivalence) {
  ModelBuilder b("t", 7);
  NodeId x = b.input(16, 3);
  NodeId gap = b.global_avg_pool("gap", x);
  Graph g = b.take();
  Rng rng(5);
  Tensor probe = rng.normal_tensor({2, 16, 16, 3});
  Tensor before = g.run({{x, probe}}, gap);
  EXPECT_EQ(pools_to_depthwise(g, x, probe), 1);
  const NodeId flat = g.find("gap/as_dwconv/flatten");
  ASSERT_NE(flat, kNoNode);
  Tensor after = g.run({{x, probe}}, flat);
  EXPECT_EQ(after.shape(), before.shape());
  EXPECT_TRUE(before.allclose(after, 1e-5f));
}

TEST(Pools, ReciprocalWeightsAreConstant) {
  ModelBuilder b("t", 8);
  NodeId x = b.input(16, 3);
  b.avg_pool("ap", x, 2, 2);
  Graph g = b.take();
  Rng rng(6);
  pools_to_depthwise(g, x, rng.normal_tensor({1, 16, 16, 3}));
  bool found = false;
  for (const auto& p : g.params()) {
    if (p->name.find("reciprocal") == std::string::npos) continue;
    found = true;
    EXPECT_FALSE(p->trainable);
    for (int64_t i = 0; i < p->value.numel(); ++i) EXPECT_FLOAT_EQ(p->value[i], 0.25f);
  }
  EXPECT_TRUE(found);
}

class FullPipelineTransform : public ::testing::TestWithParam<ModelKind> {};

TEST_P(FullPipelineTransform, PreservesInference) {
  BuiltModel m = build_model(GetParam());
  Rng rng(9);
  warm_up_bn(m.graph, m.input, m.logits, rng);
  Tensor probe = rng.normal_tensor({2, 16, 16, 3});
  Tensor before = m.graph.run({{m.input, probe}}, m.logits);
  optimize_for_quantization(m.graph, m.input, probe);
  EXPECT_TRUE(m.graph.nodes_of_type("BatchNorm").empty());
  EXPECT_TRUE(m.graph.nodes_of_type("AvgPool").empty());
  EXPECT_TRUE(m.graph.nodes_of_type("GlobalAvgPool").empty());
  Tensor after = m.graph.run({{m.input, probe}}, m.logits);
  EXPECT_TRUE(before.allclose(after, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(AllModels, FullPipelineTransform,
                         ::testing::ValuesIn(all_model_kinds()),
                         [](const auto& info) { return model_name(info.param); });

}  // namespace
}  // namespace tqt
