// INT4 (4/8) sub-byte path tests: nibble pack/unpack round-trips at every
// length parity, bit-exactness of the forced Algo::kGemmS4 candidates against
// the int64 reference over the whole zoo (per-tensor and per-channel, 1 and 4
// threads, both kernel sets), serializer v3 round-trip + truncation
// rejection + v2-compat-in-a-v3-build, the QuantUse bit-width boundaries,
// and a compile-and-run pass over the deprecated pre-QuantSpec wrappers.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "fixedpoint/autotune.h"
#include "fixedpoint/engine.h"
#include "fixedpoint/kernels/kernels.h"
#include "graph_opt/quantize_pass.h"
#include "graph_opt/transforms.h"
#include "models/zoo.h"
#include "quant/asymmetric.h"
#include "quant/calibrate.h"
#include "quant/fake_quant.h"
#include "quant/quant_spec.h"
#include "quant/unfused.h"
#include "runtime/parallel.h"
#include "tensor/rng.h"
#include "test_util.h"

namespace tqt {
namespace {

// ---- Nibble packing --------------------------------------------------------

// Round-trip every (K parity, N vs packed_n) combination: each packed byte
// must sign-extend back to the exact int4 pair, the odd row of an odd K and
// the columns >= N must pack as zero.
TEST(Nib4Pack, RoundTripsEveryLengthParity) {
  Rng rng(5);
  for (const int64_t K : {int64_t{1}, int64_t{2}, int64_t{3}, int64_t{4}, int64_t{5},
                          int64_t{8}, int64_t{9}, int64_t{16}, int64_t{17}}) {
    for (const int64_t N : {int64_t{1}, int64_t{2}, int64_t{3}, int64_t{5}, int64_t{7},
                            int64_t{8}, int64_t{9}, int64_t{16}, int64_t{17}}) {
      std::vector<int8_t> B(static_cast<size_t>(K * N));
      for (auto& v : B) {
        v = static_cast<int8_t>(static_cast<int64_t>(rng.uniform() * 16.0f) % 16 - 8);
        if (v < -8) v = -8;
        if (v > 7) v = 7;
      }
      const std::vector<uint8_t> Bn = fpk::pack_b_nib4(B.data(), K, N);
      const int64_t pairs = (K + 1) / 2;
      const int64_t np = fpk::packed_n(N);
      ASSERT_EQ(Bn.size(), static_cast<size_t>(pairs * np)) << K << "x" << N;
      for (int64_t p = 0; p < pairs; ++p) {
        for (int64_t n = 0; n < np; ++n) {
          const uint8_t b = Bn[static_cast<size_t>(p * np + n)];
          const int lo = n < N ? B[static_cast<size_t>(2 * p * N + n)] : 0;
          const int hi =
              (n < N && 2 * p + 1 < K) ? B[static_cast<size_t>((2 * p + 1) * N + n)] : 0;
          ASSERT_EQ(fpk::nib4_lo(b), lo) << K << "x" << N << " pair " << p << " col " << n;
          ASSERT_EQ(fpk::nib4_hi(b), hi) << K << "x" << N << " pair " << p << " col " << n;
        }
      }
    }
  }
}

TEST(Nib4Pack, RejectsValuesOutsideInt4Range) {
  const int8_t too_big[] = {0, 8};
  EXPECT_THROW(fpk::pack_b_nib4(too_big, 1, 2), std::invalid_argument);
  const int8_t too_small[] = {-9, 0, 1, 2};
  EXPECT_THROW(fpk::pack_b_nib4(too_small, 2, 2), std::invalid_argument);
  const int8_t fits[] = {-8, 7, 0, 3};
  EXPECT_NO_THROW(fpk::pack_b_nib4(fits, 2, 2));
}

// ---- Engine bit-exactness with the forced s4 candidates --------------------

struct Prepared {
  BuiltModel m;
  QuantizePassResult qres;
};

Prepared prepare(ModelKind kind, const PrecisionPolicy& precision, uint64_t seed = 11) {
  Prepared p;
  p.m = build_model(kind, 10, seed);
  Rng rng(seed);
  p.m.graph.set_training(true);
  for (int i = 0; i < 10; ++i) {
    p.m.graph.run({{p.m.input, rng.normal_tensor({8, 16, 16, 3}, 0.2f, 1.0f)}}, p.m.logits);
  }
  p.m.graph.set_training(false);
  Tensor calib = rng.normal_tensor({16, 16, 16, 3}, 0.2f, 1.0f);
  optimize_for_quantization(p.m.graph, p.m.input, calib);
  QuantizeConfig cfg;
  cfg.precision = precision;
  p.qres = quantize_pass(p.m.graph, p.m.input, p.m.logits, cfg);
  calibrate_thresholds(p.m.graph, p.qres, p.m.input, calib, WeightInit::kMax);
  return p;
}

void expect_raw_equal(const IntTensor& a, const IntTensor& b, const std::string& what) {
  ASSERT_EQ(a.shape, b.shape) << what;
  ASSERT_EQ(a.exponent, b.exponent) << what;
  ASSERT_EQ(a.data.size(), b.data.size()) << what;
  for (size_t i = 0; i < a.data.size(); ++i) {
    ASSERT_EQ(a.data[i], b.data[i]) << what << " lane " << i;
  }
}

/// RAII tuning scope (mirrors test_autotune): force an algo, restore the
/// pristine off state and empty shape cache on exit.
struct TuneScope {
  explicit TuneScope(int mode, int forced = -1) {
    autotune::reset_for_test();
    autotune::set_mode(mode);
    if (forced >= 0) autotune::set_forced_algo_for_test(forced);
  }
  ~TuneScope() {
    autotune::set_mode(-1);
    autotune::reset_for_test();
  }
};

bool any_gemm_s4_row(const FixedPointProgram& prog) {
  for (const auto& row : autotune::explain_kernels(prog)) {
    if (row.algo == fpk::algo_name(fpk::Algo::kGemmS4)) return true;
  }
  return false;
}

PrecisionPolicy w4a8(bool per_channel) {
  PrecisionPolicy pol;
  pol.wbits = 4;
  pol.abits = 8;
  pol.per_channel_weights = per_channel;
  return pol;
}

class S4Engine : public ::testing::TestWithParam<ModelKind> {};

// Forcing Algo::kGemmS4 on a 4/8 program routes every nibble-packable matmul
// through the sub-byte kernels; results must stay bit-identical to the int64
// reference at 1 and 4 threads, per-tensor and per-channel alike.
TEST_P(S4Engine, ForcedS4MatchesReferenceAtW4A8) {
  for (const bool per_channel : {false, true}) {
    TuneScope scope(1, static_cast<int>(fpk::Algo::kGemmS4));
    Prepared p = prepare(GetParam(), w4a8(per_channel));
    FixedPointProgram prog = compile_fixed_point(p.m.graph, p.m.input, p.qres.quantized_output);
    ASSERT_TRUE(any_gemm_s4_row(prog))
        << model_name(GetParam()) << (per_channel ? " per-channel" : " per-tensor")
        << ": no instruction resolved to the s4 GEMM";
    Rng rng(77);
    const Tensor probe = rng.normal_tensor({3, 16, 16, 3}, 0.2f, 1.2f);
    const IntTensor ref = prog.run_raw_reference(probe);
    for (int threads : {1, 4}) {
      set_num_threads(threads);
      expect_raw_equal(prog.run_raw(probe), ref,
                       model_name(GetParam()) + (per_channel ? " pc" : " pt") + " s4 @" +
                           std::to_string(threads));
    }
    set_num_threads(0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, S4Engine, ::testing::ValuesIn(all_model_kinds()),
                         [](const auto& info) { return model_name(info.param); });

// Both kernel sets implement the s4 candidates (scalar reference walk, AVX2
// in-register nibble unpack); each must agree with the reference lane for
// lane on the same program.
TEST(S4Engine, BothKernelSetsAreBitExact) {
  for (const bool per_channel : {false, true}) {
    TuneScope scope(1, static_cast<int>(fpk::Algo::kGemmS4));
    Prepared p = prepare(ModelKind::kMiniVgg, w4a8(per_channel));
    FixedPointProgram prog = compile_fixed_point(p.m.graph, p.m.input, p.qres.quantized_output);
    Rng rng(78);
    const Tensor probe = rng.normal_tensor({2, 16, 16, 3}, 0.2f, 1.2f);
    const IntTensor ref = prog.run_raw_reference(probe);
    for (const fpk::KernelSet* ks : {&fpk::scalar_kernels(), fpk::avx2_kernels()}) {
      if (!ks) continue;
      fpk::set_active_kernels(ks);
      for (int threads : {1, 4}) {
        set_num_threads(threads);
        expect_raw_equal(prog.run_raw(probe), ref,
                         std::string("mini_vgg s4 ") + (per_channel ? "pc " : "pt ") +
                             ks->name + " @" + std::to_string(threads));
      }
    }
    fpk::set_active_kernels(nullptr);  // restore the process default
    set_num_threads(0);
  }
}

// Per-channel weight scales must also be exact through the UNTUNED default
// dispatch (no forced algo): the plan's per-channel requant tables are
// algo-independent.
TEST(S4Engine, PerChannelDefaultDispatchMatchesReference) {
  Prepared p = prepare(ModelKind::kMiniMobileNetV2, w4a8(true));
  FixedPointProgram prog = compile_fixed_point(p.m.graph, p.m.input, p.qres.quantized_output);
  Rng rng(79);
  const Tensor probe = rng.normal_tensor({2, 16, 16, 3}, 0.2f, 1.2f);
  const IntTensor ref = prog.run_raw_reference(probe);
  for (int threads : {1, 4}) {
    set_num_threads(threads);
    expect_raw_equal(prog.run_raw(probe), ref,
                     "mini_mobilenet_v2 pc default @" + std::to_string(threads));
  }
  set_num_threads(0);
}

// ---- Serializer v3 ---------------------------------------------------------

std::string temp_path(const char* name) { return ::testing::TempDir() + "/" + name; }

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

uint32_t version_field(const std::string& bytes) {
  uint32_t v = 0;
  std::memcpy(&v, bytes.data() + 4, sizeof(v));
  return v;
}

FixedPointProgram compile_perchannel_program() {
  Prepared p = prepare(ModelKind::kMiniVgg, w4a8(true));
  return compile_fixed_point(p.m.graph, p.m.input, p.qres.quantized_output);
}

TEST(SerializeV3, PerChannelProgramsRoundTripAtVersion3) {
  const FixedPointProgram prog = compile_perchannel_program();
  bool any_chan = false;
  for (const FpInstr& in : prog.instructions()) any_chan |= !in.chan_data.empty();
  ASSERT_TRUE(any_chan) << "per-channel compile produced no chan_data";
  const std::string path = temp_path("v3roundtrip.tqtp");
  prog.save(path);
  EXPECT_EQ(version_field(read_file(path)), 3u);
  const FixedPointProgram back = FixedPointProgram::load(path);
  ASSERT_EQ(back.instruction_count(), prog.instruction_count());
  for (size_t i = 0; i < prog.instructions().size(); ++i) {
    EXPECT_EQ(back.instructions()[i].chan_data, prog.instructions()[i].chan_data)
        << "instr " << i;
  }
  Rng rng(42);
  const Tensor probe = rng.normal_tensor({2, 16, 16, 3}, 0.2f, 1.2f);
  EXPECT_TRUE(test::run_program(prog, probe).equals(test::run_program(back, probe)));
  std::remove(path.c_str());
}

// A 4/8 per-tensor program has no chan_data, so a v3-capable build still
// emits version 2 — and can of course read it back: the v2-compat guarantee.
TEST(SerializeV3, PerTensorProgramsStayVersion2AndLoad) {
  Prepared p = prepare(ModelKind::kMiniVgg, w4a8(false));
  const FixedPointProgram prog =
      compile_fixed_point(p.m.graph, p.m.input, p.qres.quantized_output);
  ASSERT_GT(prog.fusion_stats().fused_matmuls, 0);
  const std::string path = temp_path("v2_in_v3.tqtp");
  prog.save(path);
  EXPECT_EQ(version_field(read_file(path)), 2u);
  const FixedPointProgram back = FixedPointProgram::load(path);
  for (const FpInstr& in : back.instructions()) EXPECT_TRUE(in.chan_data.empty());
  Rng rng(43);
  const Tensor probe = rng.normal_tensor({2, 16, 16, 3}, 0.2f, 1.2f);
  EXPECT_TRUE(test::run_program(prog, probe).equals(test::run_program(back, probe)));
  std::remove(path.c_str());
}

// Truncation must be rejected at every prefix. Literally loading every one of
// the ~10^5 prefixes is quadratic in the artifact size, so the cut set is:
// every byte of the header region, a fixed stride across the body (which
// lands inside const_data, chan_data and epilogue vectors many times over),
// and every byte of the final instruction's tail.
TEST(SerializeV3, TruncatedFileIsRejectedAtEveryPrefix) {
  const FixedPointProgram prog = compile_perchannel_program();
  const std::string path = temp_path("v3full.tqtp");
  prog.save(path);
  const std::string bytes = read_file(path);
  ASSERT_GT(bytes.size(), 1024u);

  std::vector<size_t> cuts;
  for (size_t i = 0; i < 512; ++i) cuts.push_back(i);
  for (size_t i = 512; i + 256 < bytes.size(); i += 997) cuts.push_back(i);
  for (size_t i = bytes.size() - 256; i < bytes.size(); ++i) cuts.push_back(i);

  const std::string cut_path = temp_path("v3truncated.tqtp");
  for (const size_t cut : cuts) {
    write_file(cut_path, bytes.substr(0, cut));
    EXPECT_THROW(FixedPointProgram::load(cut_path), std::runtime_error) << "prefix " << cut;
  }
  write_file(cut_path, bytes);
  EXPECT_NO_THROW(FixedPointProgram::load(cut_path));
  std::remove(path.c_str());
  std::remove(cut_path.c_str());
}

// ---- QuantUse bit-width boundaries ----------------------------------------

TEST(QuantUseBoundaries, TrainingAcceptsTwoToSixteen) {
  EXPECT_THROW((QuantBits{1, true}).validate(QuantUse::kTraining), std::invalid_argument);
  EXPECT_NO_THROW((QuantBits{2, true}).validate(QuantUse::kTraining));
  EXPECT_NO_THROW((QuantBits{3, true}).validate(QuantUse::kTraining));
  EXPECT_NO_THROW((QuantBits{16, true}).validate(QuantUse::kTraining));
  EXPECT_THROW((QuantBits{17, true}).validate(QuantUse::kTraining), std::invalid_argument);
}

TEST(QuantUseBoundaries, InferenceAcceptsFourToSixteen) {
  EXPECT_THROW((QuantBits{3, true}).validate(QuantUse::kInference), std::invalid_argument);
  EXPECT_NO_THROW((QuantBits{4, true}).validate(QuantUse::kInference));
  EXPECT_NO_THROW((QuantBits{16, true}).validate(QuantUse::kInference));
  EXPECT_THROW((QuantBits{17, true}).validate(QuantUse::kInference), std::invalid_argument);
}

TEST(QuantUseBoundaries, PolicyErrorsNameTheFieldAndRange) {
  PrecisionPolicy pol;
  pol.wbits = 3;
  try {
    pol.validate(QuantUse::kInference);
    FAIL() << "expected wbits rejection";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("wbits 3"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("[4,16]"), std::string::npos) << e.what();
  }
  pol.wbits = 4;
  EXPECT_NO_THROW(pol.validate(QuantUse::kInference));
  pol.abits = 17;
  try {
    pol.validate(QuantUse::kTraining);
    FAIL() << "expected abits rejection";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("abits 17"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("[2,16]"), std::string::npos) << e.what();
  }
  EXPECT_THROW(QuantSpec(8, true, -2).validate(), std::invalid_argument);
}

// ---- Deprecated pre-QuantSpec wrappers -------------------------------------

// The old scattered-parameter signatures must keep compiling AND computing
// exactly what their QuantSpec replacements compute. This block is the one
// sanctioned caller of the deprecated API.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(DeprecatedWrappers, CompileAndMatchQuantSpecEquivalents) {
  Rng rng(31);
  const Tensor x = rng.normal_tensor({64}, 0.0f, 1.0f);

  auto th_old = std::make_shared<Param>("t_old", Tensor::scalar(0.5f), "threshold");
  auto th_new = std::make_shared<Param>("t_new", Tensor::scalar(0.5f), "threshold");
  FakeQuantOp fq_old(QuantBits{8, true}, QuantMode::kTqt, th_old);
  FakeQuantOp fq_new(QuantSpec{8, true, -1, true}, QuantMode::kTqt, th_new);
  EXPECT_TRUE(fq_old.forward({&x}).equals(fq_new.forward({&x})));

  FakeQuantOp dq_old(QuantBits{16, true}, [] { return -8; });
  FakeQuantOp dq_new(QuantSpec{16, true}, [] { return -8; });
  EXPECT_TRUE(dq_old.forward({&x}).equals(dq_new.forward({&x})));

  auto tu_old = std::make_shared<Param>("u_old", Tensor::scalar(0.5f), "threshold");
  auto tu_new = std::make_shared<Param>("u_new", Tensor::scalar(0.5f), "threshold");
  UnfusedFakeQuantOp uq_old(QuantBits{8, true}, tu_old);
  UnfusedFakeQuantOp uq_new(QuantSpec{8, true}, tu_new);
  EXPECT_TRUE(uq_old.forward({&x}).equals(uq_new.forward({&x})));

  auto r_old = std::make_shared<Param>("r_old", Tensor({2}, {-1.0f, 1.0f}), "threshold");
  auto r_new = std::make_shared<Param>("r_new", Tensor({2}, {-1.0f, 1.0f}), "threshold");
  AsymmetricFakeQuantOp aq_old(8, r_old);
  AsymmetricFakeQuantOp aq_new(QuantSpec{8, false, -1, false}, r_new);
  EXPECT_TRUE(aq_old.forward({&x}).equals(aq_new.forward({&x})));

  std::vector<float> vals(x.data(), x.data() + x.numel());
  const float kl_old = kl_j_threshold(std::span<const float>(vals), QuantBits{8, true});
  const float kl_new = kl_j_threshold(std::span<const float>(vals), QuantSpec{8, true});
  EXPECT_FLOAT_EQ(kl_old, kl_new);
}
#pragma GCC diagnostic pop

}  // namespace
}  // namespace tqt
