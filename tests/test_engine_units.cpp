// Instruction-level tests of the fixed-point engine on hand-built micrographs:
// requant shifts and saturation, eltwise/concat scale-merge enforcement,
// relu6 grid constraints, and leaky-relu integer alignment.
#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"
#include "fixedpoint/engine.h"
#include "fixedpoint/rescale.h"
#include "graph_opt/quantize_pass.h"
#include "nn/ops_basic.h"
#include "nn/ops_conv.h"
#include "quant/fake_quant.h"
#include "tensor/rng.h"

namespace tqt {
namespace {

std::unique_ptr<FakeQuantOp> quant(QuantBits qb, float log2_t, const std::string& name) {
  return std::make_unique<FakeQuantOp>(QuantSpec{qb}, QuantMode::kTqt, make_threshold(name, log2_t));
}

TEST(EngineUnit, InputQuantizeOnly) {
  Graph g;
  NodeId in = g.add("input", std::make_unique<InputOp>());
  NodeId q = g.add("q", quant(int8_signed(), 0.0f, "q/t"), {in});
  FixedPointProgram prog = compile_fixed_point(g, in, q);
  Rng rng(1);
  Tensor x = rng.normal_tensor({64}, 0.0f, 1.0f);
  Tensor fake = g.run({{in, x}}, q);
  Tensor fixed = test::run_program(prog, x);
  EXPECT_TRUE(fake.equals(fixed));
}

TEST(EngineUnit, RequantRightShiftSaturates) {
  // q16 at fine scale requantized to q8 at coarse scale: values beyond the
  // 8-bit range must saturate exactly like the fake graph.
  Graph g;
  NodeId in = g.add("input", std::make_unique<InputOp>());
  NodeId q16 = g.add("q16", quant(int16_signed(), 3.0f, "q16/t"), {in});
  NodeId q8 = g.add("q8", quant(int8_signed(), 0.0f, "q8/t"), {q16});
  FixedPointProgram prog = compile_fixed_point(g, in, q8);
  Tensor x({5}, {-7.9f, -1.01f, 0.37f, 0.999f, 6.5f});
  Tensor fake = g.run({{in, x}}, q8);
  Tensor fixed = test::run_program(prog, x);
  EXPECT_TRUE(fake.equals(fixed));
  EXPECT_FLOAT_EQ(fixed[0], -1.0f);  // saturated at n*s = -128 * 2^-7
}

TEST(EngineUnit, RequantLeftShiftExact) {
  // Coarse q8 to finer q16 scale: a left shift, always exact.
  Graph g;
  NodeId in = g.add("input", std::make_unique<InputOp>());
  NodeId q8 = g.add("q8", quant(int8_signed(), 0.0f, "q8/t"), {in});
  NodeId q16 = g.add("q16", quant(int16_signed(), 0.0f, "q16/t"), {q8});
  FixedPointProgram prog = compile_fixed_point(g, in, q16);
  Rng rng(3);
  Tensor x = rng.normal_tensor({128});
  EXPECT_TRUE(g.run({{in, x}}, q16).equals(test::run_program(prog, x)));
}

TEST(EngineUnit, EltwiseRequiresMergedScales) {
  Graph g;
  NodeId in = g.add("input", std::make_unique<InputOp>());
  NodeId a = g.add("a", quant(int8_signed(), 0.0f, "a/t"), {in});
  NodeId b = g.add("b", quant(int8_signed(), 2.0f, "b/t"), {in});  // different scale!
  NodeId add = g.add("add", std::make_unique<EltwiseAddOp>(), {a, b});
  NodeId out = g.add("out", quant(int8_signed(), 2.0f, "out/t"), {add});
  EXPECT_THROW(compile_fixed_point(g, in, out), std::runtime_error);
}

TEST(EngineUnit, EltwiseWithSharedScaleIsExact) {
  Graph g;
  NodeId in = g.add("input", std::make_unique<InputOp>());
  auto shared = make_threshold("shared/t", 1.0f);
  NodeId a = g.add("a", std::make_unique<FakeQuantOp>(QuantSpec{8}, QuantMode::kTqt, shared), {in});
  NodeId b = g.add("b", std::make_unique<FakeQuantOp>(QuantSpec{8}, QuantMode::kTqt, shared), {in});
  NodeId add = g.add("add", std::make_unique<EltwiseAddOp>(), {a, b});
  NodeId out = g.add("out", quant(int8_signed(), 2.0f, "out/t"), {add});
  FixedPointProgram prog = compile_fixed_point(g, in, out);
  Rng rng(4);
  Tensor x = rng.normal_tensor({64});
  EXPECT_TRUE(g.run({{in, x}}, out).equals(test::run_program(prog, x)));
}

TEST(EngineUnit, ConcatRequiresMergedScales) {
  Graph g;
  NodeId in = g.add("input", std::make_unique<InputOp>());
  NodeId a = g.add("a", quant(int8_signed(), 0.0f, "a/t"), {in});
  NodeId b = g.add("b", quant(int8_signed(), 1.0f, "b/t"), {in});
  NodeId cat = g.add("cat", std::make_unique<ConcatOp>(), {a, b});
  NodeId out = g.add("out", quant(int8_signed(), 1.0f, "out/t"), {cat});
  EXPECT_THROW(compile_fixed_point(g, in, out), std::runtime_error);
}

TEST(EngineUnit, Relu6OnIntegerGrid) {
  Graph g;
  NodeId in = g.add("input", std::make_unique<InputOp>());
  NodeId q16 = g.add("q16", quant(int16_signed(), 3.0f, "q16/t"), {in});
  NodeId r6 = g.add("relu6", std::make_unique<Relu6Op>(), {q16});
  NodeId q8 = g.add("q8", std::make_unique<FakeQuantOp>(QuantSpec{8, false}, QuantMode::kTqt,
                                                        make_threshold("q8/t", std::log2(6.0f))),
                    {r6});
  FixedPointProgram prog = compile_fixed_point(g, in, q8);
  Tensor x({6}, {-3.0f, -0.1f, 0.0f, 3.0f, 5.999f, 7.5f});
  Tensor fake = g.run({{in, x}}, q8);
  Tensor fixed = test::run_program(prog, x);
  EXPECT_TRUE(fake.equals(fixed));
  EXPECT_FLOAT_EQ(fixed[0], 0.0f);
  EXPECT_FLOAT_EQ(fixed[5], fixed[4]);  // both clamped to 6 then quantized
}

TEST(EngineUnit, LeakyReluPowerOfTwoAlphaExact) {
  Graph g;
  NodeId in = g.add("input", std::make_unique<InputOp>());
  NodeId q16 = g.add("q16", quant(int16_signed(), 2.0f, "q16/t"), {in});
  NodeId lk = g.add("leaky", std::make_unique<LeakyReluOp>(0.125f), {q16});
  NodeId q8 = g.add("q8", quant(int8_signed(), 2.0f, "q8/t"), {lk});
  FixedPointProgram prog = compile_fixed_point(g, in, q8);
  Rng rng(6);
  Tensor x = rng.normal_tensor({256}, 0.0f, 2.0f);
  Tensor fake = g.run({{in, x}}, q8);
  Tensor fixed = test::run_program(prog, x);
  for (int64_t i = 0; i < fake.numel(); ++i) ASSERT_EQ(fake[i], fixed[i]) << i;
}

TEST(EngineUnit, MaxPoolPreservesScale) {
  Graph g;
  NodeId in = g.add("input", std::make_unique<InputOp>());
  NodeId q8 = g.add("q8", quant(int8_signed(), 0.5f, "q8/t"), {in});
  NodeId pool = g.add("pool", std::make_unique<MaxPoolOp>(Conv2dGeom::valid(2, 2, 2)), {q8});
  NodeId out = g.add("out", quant(int8_signed(), 0.5f, "out/t"), {pool});
  FixedPointProgram prog = compile_fixed_point(g, in, out);
  Rng rng(7);
  Tensor x = rng.normal_tensor({1, 4, 4, 2});
  EXPECT_TRUE(g.run({{in, x}}, out).equals(test::run_program(prog, x)));
}

TEST(EngineUnit, PerChannelQuantizerRejected) {
  Graph g;
  NodeId in = g.add("input", std::make_unique<InputOp>());
  auto ths = std::make_shared<Param>("t", Tensor({2}), "threshold", false);
  NodeId q = g.add("q", std::make_unique<FakeQuantOp>(QuantSpec{8, true, 1, true}, QuantMode::kTqt, ths), {in});
  EXPECT_THROW(compile_fixed_point(g, in, q), std::runtime_error);
}

TEST(EngineUnit, RescaleHelperBehaviour) {
  // Covered indirectly everywhere; pin down the exact semantics here.
  // value 100 at 2^-4 rescaled to 2^-2: 100/4 = 25.
  // value 101 at 2^-4 to 2^-2: 25.25 -> 25; 102 -> 25.5 -> ties to even 26...
  // (verify via a requant micrograph rather than private functions)
  Graph g;
  NodeId in = g.add("input", std::make_unique<InputOp>());
  NodeId q_fine = g.add("qf", quant(int16_signed(), 3.0f, "qf/t"), {in});    // s = 2^-12
  NodeId q_coarse = g.add("qc", quant(int8_signed(), 3.0f, "qc/t"), {q_fine});  // s = 2^-4
  FixedPointProgram prog = compile_fixed_point(g, in, q_coarse);
  Tensor x({3}, {100.0f / 4096.0f * 16.0f, 0.031f, -0.031f});
  EXPECT_TRUE(g.run({{in, x}}, q_coarse).equals(test::run_program(prog, x)));
}

// ---- fp::rescale / fp::saturate unit tests --------------------------------
// The shared scale-change helpers (fixedpoint/rescale.h) are the single
// definition both the reference interpreter and the typed engine requantize
// through; pin down their behavior at the awkward points — exact-half ties
// at every shift and values straddling the clamp bounds.

TEST(Rescale, ShiftZeroIsIdentity) {
  for (int64_t v : {int64_t{-129}, int64_t{-128}, int64_t{-1}, int64_t{0}, int64_t{1},
                    int64_t{127}, int64_t{128}, int64_t{1} << 40}) {
    EXPECT_EQ(fp::rescale(v, -4, -4), v);
  }
}

TEST(Rescale, ExactHalfTiesToEvenAtEveryShift) {
  for (int shift = 1; shift <= 16; ++shift) {
    const int64_t unit = int64_t{1} << shift;
    for (int64_t q = -6; q <= 6; ++q) {
      // v / 2^shift == q + 0.5 exactly: the tie is between q and q + 1 and
      // must resolve to whichever is even.
      const int64_t v = (2 * q + 1) * (unit / 2);
      const int64_t even = (q % 2 == 0) ? q : q + 1;
      EXPECT_EQ(fp::rescale(v, -shift, 0), even) << "tie q=" << q << " shift=" << shift;
      // One LSB to either side of the tie is no longer a tie: plain nearest.
      EXPECT_EQ(fp::rescale(v + 1, -shift, 0), q + 1) << "q=" << q << " shift=" << shift;
      EXPECT_EQ(fp::rescale(v - 1, -shift, 0), q) << "q=" << q << " shift=" << shift;
    }
  }
}

TEST(Rescale, SaturationBoundariesAtInt8ClampEdges) {
  constexpr int64_t kLo = -128, kHi = 127;
  for (int shift = 0; shift <= 16; ++shift) {
    const int64_t unit = int64_t{1} << shift;
    // Exactly representable clamp values pass through untouched.
    EXPECT_EQ(fp::saturate(fp::rescale(kHi * unit, -shift, 0), kLo, kHi), kHi);
    EXPECT_EQ(fp::saturate(fp::rescale(kLo * unit, -shift, 0), kLo, kHi), kLo);
    // One quantum beyond either bound saturates instead of wrapping.
    EXPECT_EQ(fp::saturate(fp::rescale((kHi + 1) * unit, -shift, 0), kLo, kHi), kHi);
    EXPECT_EQ(fp::saturate(fp::rescale((kLo - 1) * unit, -shift, 0), kLo, kHi), kLo);
    if (shift == 0) continue;
    // 127.5 ties to even 128, which must then clamp back to 127; -128.5 ties
    // to even -128 and stays exactly at the bound.
    EXPECT_EQ(fp::saturate(fp::rescale(kHi * unit + unit / 2, -shift, 0), kLo, kHi), kHi);
    EXPECT_EQ(fp::rescale(kHi * unit + unit / 2, -shift, 0), kHi + 1);
    EXPECT_EQ(fp::saturate(fp::rescale(kLo * unit - unit / 2, -shift, 0), kLo, kHi), kLo);
    EXPECT_EQ(fp::rescale(kLo * unit - unit / 2, -shift, 0), kLo);
  }
}

TEST(Rescale, LeftShiftIsExactScaleUp) {
  for (int lift = 1; lift <= 16; ++lift) {
    for (int64_t v : {int64_t{-127}, int64_t{-1}, int64_t{0}, int64_t{1}, int64_t{100}}) {
      EXPECT_EQ(fp::rescale(v, 0, -lift), v * (int64_t{1} << lift));
    }
  }
}

}  // namespace
}  // namespace tqt
