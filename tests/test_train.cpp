// Unit tests for the training loop: schedules, checkpointing, hooks,
// BN-freeze wiring, and threshold freezing integration.
#include <gtest/gtest.h>

#include <cmath>

#include "core/train.h"
#include "models/zoo.h"
#include "nn/ops_norm.h"

namespace tqt {
namespace {

DatasetConfig micro_config() {
  DatasetConfig cfg;
  cfg.train_size = 128;
  cfg.val_size = 64;
  cfg.noise = 0.4f;
  return cfg;
}

TEST(Train, LossDecreasesOnMicroRun) {
  SyntheticImageDataset data(micro_config());
  BuiltModel m = build_model(ModelKind::kMiniVgg);
  TrainSchedule sched;
  sched.epochs = 3.0f;
  sched.weight_lr = LrSchedule::constant(2e-3f);
  sched.validate_every = 0;
  TrainResult first = train_graph(m.graph, m.input, m.logits, data, sched);
  EXPECT_LT(first.final_loss, std::log(10.0) + 0.3);  // moved off the chance plateau
  EXPECT_GT(first.best_top1, 0.15);
}

TEST(Train, StepCountMatchesEpochs) {
  SyntheticImageDataset data(micro_config());
  BuiltModel m = build_model(ModelKind::kMiniDarkNet);
  TrainSchedule sched;
  sched.epochs = 2.0f;
  sched.batch_size = 32;  // 4 steps/epoch on 128 train images
  sched.validate_every = 0;
  TrainResult r = train_graph(m.graph, m.input, m.logits, data, sched);
  EXPECT_EQ(r.steps, 8);
}

TEST(Train, OnStepHookFiresEveryStep) {
  SyntheticImageDataset data(micro_config());
  BuiltModel m = build_model(ModelKind::kMiniDarkNet);
  TrainSchedule sched;
  sched.epochs = 1.0f;
  sched.validate_every = 0;
  std::vector<int64_t> steps;
  sched.on_step = [&](int64_t s) { steps.push_back(s); };
  train_graph(m.graph, m.input, m.logits, data, sched);
  ASSERT_EQ(steps.size(), 4u);
  EXPECT_EQ(steps.front(), 0);
  EXPECT_EQ(steps.back(), 3);
}

TEST(Train, ValidationHistoryRecorded) {
  SyntheticImageDataset data(micro_config());
  BuiltModel m = build_model(ModelKind::kMiniDarkNet);
  TrainSchedule sched;
  sched.epochs = 2.0f;
  sched.validate_every = 2;  // 8 steps -> 4 validations
  TrainResult r = train_graph(m.graph, m.input, m.logits, data, sched);
  EXPECT_EQ(r.val_top1_history.size(), 4u);
  EXPECT_EQ(r.val_epoch_history.size(), 4u);
  EXPECT_FLOAT_EQ(r.val_epoch_history.back(), 2.0f);
  // Best metrics come from the history.
  double best = 0.0;
  for (double v : r.val_top1_history) best = std::max(best, v);
  EXPECT_DOUBLE_EQ(r.best_top1, best);
}

TEST(Train, RestoreBestRestoresParameters) {
  SyntheticImageDataset data(micro_config());
  BuiltModel m = build_model(ModelKind::kMiniDarkNet);
  TrainSchedule sched;
  sched.epochs = 2.0f;
  sched.validate_every = 2;
  sched.weight_lr = LrSchedule::constant(0.0f);  // nothing ever changes
  sched.restore_best = true;
  const auto before = m.graph.state_dict();
  train_graph(m.graph, m.input, m.logits, data, sched);
  // With lr 0 the best checkpoint equals the initial state.
  const auto after = m.graph.state_dict();
  for (const auto& [name, t] : before) {
    // BN moving stats update in train mode even at lr 0; skip them.
    if (name.find("moving_") != std::string::npos) continue;
    EXPECT_TRUE(t.equals(after.at(name))) << name;
  }
}

TEST(Train, BnFreezeStepIsHonored) {
  SyntheticImageDataset data(micro_config());
  BuiltModel m = build_model(ModelKind::kMiniDarkNet);
  TrainSchedule sched;
  sched.epochs = 2.0f;
  sched.validate_every = 0;
  sched.bn_freeze_after_steps = 3;
  train_graph(m.graph, m.input, m.logits, data, sched);
  for (NodeId id : m.graph.nodes_of_type("BatchNorm")) {
    EXPECT_TRUE(dynamic_cast<BatchNormOp*>(m.graph.node(id).op.get())->stats_frozen());
  }
}

TEST(Evaluate, RestoresEvalModeAndCoversWholeSplit) {
  SyntheticImageDataset data(micro_config());
  BuiltModel m = build_model(ModelKind::kMiniDarkNet);
  const Accuracy acc = evaluate_graph(m.graph, m.input, m.logits, data, /*batch=*/48);
  EXPECT_EQ(acc.count, data.val_size());  // 64 = 48 + 16, uneven batches covered
}

}  // namespace
}  // namespace tqt
