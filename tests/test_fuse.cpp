// Tests for the fixed-point graph compiler (fuse.cpp + schedule.cpp): fused
// programs are bit-exact against the int64 reference interpreter of the
// UNFUSED program for every zoo model and thread count, every fusible chain
// is actually fused (no bare matmuls or bias-adds survive), the requant-pair
// collapse fires only in the provably exact zero-net-shift case, and the
// memory-aware scheduler never increases the estimated arena footprint.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "fixedpoint/engine.h"
#include "fixedpoint/fuse.h"
#include "fixedpoint/plan.h"
#include "graph_opt/quantize_pass.h"
#include "graph_opt/transforms.h"
#include "models/zoo.h"
#include "observe/observe.h"
#include "runtime/parallel.h"
#include "tensor/rng.h"
#include "test_util.h"

namespace tqt {
namespace {

struct Prepared {
  BuiltModel m;
  QuantizePassResult qres;
};

Prepared prepare(ModelKind kind, uint64_t seed = 11) {
  Prepared p;
  p.m = build_model(kind, 10, seed);
  Rng rng(seed);
  p.m.graph.set_training(true);
  for (int i = 0; i < 10; ++i) {
    p.m.graph.run({{p.m.input, rng.normal_tensor({8, 16, 16, 3}, 0.2f, 1.0f)}}, p.m.logits);
  }
  p.m.graph.set_training(false);
  Tensor calib = rng.normal_tensor({16, 16, 16, 3}, 0.2f, 1.0f);
  optimize_for_quantization(p.m.graph, p.m.input, calib);
  QuantizeConfig cfg;
  p.qres = quantize_pass(p.m.graph, p.m.input, p.m.logits, cfg);
  calibrate_thresholds(p.m.graph, p.qres, p.m.input, calib, WeightInit::kMax);
  return p;
}

void expect_raw_equal(const IntTensor& a, const IntTensor& b, const std::string& what) {
  ASSERT_EQ(a.shape, b.shape) << what;
  ASSERT_EQ(a.exponent, b.exponent) << what;
  ASSERT_EQ(a.data.size(), b.data.size()) << what;
  for (size_t i = 0; i < a.data.size(); ++i) {
    ASSERT_EQ(a.data[i], b.data[i]) << what << " lane " << i;
  }
}

class FusedEngine : public ::testing::TestWithParam<ModelKind> {};

// The tentpole contract: compiling with fusion on changes the instruction
// stream but not a single output lane. The unfused program's int64 reference
// interpretation is the oracle; the fused program must match it through both
// its own reference path (the fused oracle cases) and the typed kernels at
// 1 and 4 threads.
TEST_P(FusedEngine, BitExactAgainstUnfusedReference) {
  Prepared p = prepare(GetParam());

  set_fusion_enabled(0);
  const FixedPointProgram unfused =
      compile_fixed_point(p.m.graph, p.m.input, p.qres.quantized_output);
  set_fusion_enabled(1);
  const FixedPointProgram fused =
      compile_fixed_point(p.m.graph, p.m.input, p.qres.quantized_output);
  set_fusion_enabled(-1);

  ASSERT_EQ(unfused.fusion_stats().fused_matmuls, 0);
  ASSERT_GT(fused.fusion_stats().fused_matmuls, 0) << model_name(GetParam());
  EXPECT_LT(fused.instruction_count(), unfused.instruction_count());

  Rng rng(77);
  const Tensor probe = rng.normal_tensor({3, 16, 16, 3}, 0.2f, 1.2f);
  const IntTensor oracle = unfused.run_raw_reference(probe);
  expect_raw_equal(fused.run_raw_reference(probe), oracle,
                   model_name(GetParam()) + " fused reference");
  for (int threads : {1, 4}) {
    set_num_threads(threads);
    expect_raw_equal(fused.run_raw(probe), oracle,
                     model_name(GetParam()) + " typed @" + std::to_string(threads));
  }
  set_num_threads(0);
}

// Fusion coverage: in every zoo model each matmul feeds a single-use
// requant/bias/activation chain, so after the pass NO bare matmul and no
// standalone bias-add may remain — anything left bare is a missed fusion.
TEST_P(FusedEngine, EveryFusibleChainIsFused) {
  Prepared p = prepare(GetParam());
  const FixedPointProgram prog =
      compile_fixed_point(p.m.graph, p.m.input, p.qres.quantized_output);
  for (const FpInstr& in : prog.instructions()) {
    EXPECT_NE(in.kind, FpInstr::Kind::kConv2d) << in.debug_name;
    EXPECT_NE(in.kind, FpInstr::Kind::kDepthwise) << in.debug_name;
    EXPECT_NE(in.kind, FpInstr::Kind::kDense) << in.debug_name;
    EXPECT_NE(in.kind, FpInstr::Kind::kBiasAdd) << in.debug_name;
    if (is_fused_kind(in.kind)) {
      EXPECT_GT(epi_step_count(in), 0) << in.debug_name;
    }
  }
}

// The fusion + scheduling passes must not grow the nominal arena estimate:
// fusing removes wide intermediate registers and the scheduler only accepts
// an order that is no worse than the incoming one.
TEST_P(FusedEngine, ArenaEstimateDoesNotGrow) {
  Prepared p = prepare(GetParam());
  const FixedPointProgram prog =
      compile_fixed_point(p.m.graph, p.m.input, p.qres.quantized_output);
  const FuseStats& st = prog.fusion_stats();
  EXPECT_GT(st.arena_bytes_before, 0);
  EXPECT_LE(st.arena_bytes_after, st.arena_bytes_before) << model_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllModels, FusedEngine, ::testing::ValuesIn(all_model_kinds()),
                         [](const auto& info) { return model_name(info.param); });

// Compile-time fusion stats are exported as engine.fusion.* gauges for the
// observe CLI; the last compiled program's numbers must be readable there.
TEST(FuseStatsGauges, ExportedThroughMetricsRegistry) {
  Prepared p = prepare(ModelKind::kMiniInception);
  const FixedPointProgram prog =
      compile_fixed_point(p.m.graph, p.m.input, p.qres.quantized_output);
  const FuseStats& st = prog.fusion_stats();
  auto& m = observe::MetricsRegistry::global();
  EXPECT_EQ(m.gauge("engine.fusion.fused_matmuls").value(), st.fused_matmuls);
  EXPECT_EQ(m.gauge("engine.fusion.instrs_before").value(), st.instrs_before);
  EXPECT_EQ(m.gauge("engine.fusion.instrs_after").value(), st.instrs_after);
  EXPECT_EQ(m.gauge("engine.fusion.arena_bytes_after").value(), st.arena_bytes_after);
}

// ---- fuse_program micrograph units ----------------------------------------

FpInstr requant(int src, int dst, int out_exp, int64_t lo, int64_t hi) {
  FpInstr in;
  in.kind = FpInstr::Kind::kRequant;
  in.inputs = {src};
  in.output = dst;
  in.out_exponent = out_exp;
  in.clamp_lo = lo;
  in.clamp_hi = hi;
  return in;
}

FpInstr quantize_input(int dst) {
  FpInstr in;
  in.kind = FpInstr::Kind::kQuantizeInput;
  in.inputs = {0};
  in.output = dst;
  in.out_exponent = -4;
  in.clamp_lo = -128;
  in.clamp_hi = 127;
  return in;
}

TEST(FusePass, CollapsesZeroShiftRequantPairByIntersectingClamps) {
  std::vector<FpInstr> instrs = {quantize_input(1),
                                 requant(1, 2, -4, -128, 127),
                                 requant(2, 3, -4, -100, 100)};
  const FuseStats st = fuse_program(instrs, 4, 0, 3);
  EXPECT_EQ(st.collapsed_requants, 1);
  ASSERT_EQ(instrs.size(), 2u);
  const FpInstr& merged = instrs[1];
  EXPECT_EQ(merged.kind, FpInstr::Kind::kRequant);
  EXPECT_EQ(merged.output, 3);
  EXPECT_EQ(merged.clamp_lo, -100);
  EXPECT_EQ(merged.clamp_hi, 100);
}

TEST(FusePass, KeepsRequantPairWithNonzeroNetShift) {
  // rhe(rhe(v, 2), 1) != rhe(v, 3) in general — a pair whose second requant
  // actually shifts must survive verbatim.
  std::vector<FpInstr> instrs = {quantize_input(1),
                                 requant(1, 2, -4, -32768, 32767),
                                 requant(2, 3, -2, -128, 127)};
  const FuseStats st = fuse_program(instrs, 4, 0, 3);
  EXPECT_EQ(st.collapsed_requants, 0);
  EXPECT_EQ(instrs.size(), 3u);
}

TEST(FusePass, DisjointClampPairPinsToNearestBound) {
  // First clamp admits only [-128, -10]; the second demands [5, 100]. Every
  // surviving value saturates to the second clamp's lower bound.
  std::vector<FpInstr> instrs = {quantize_input(1),
                                 requant(1, 2, -4, -128, -10),
                                 requant(2, 3, -4, 5, 100)};
  const FuseStats st = fuse_program(instrs, 4, 0, 3);
  EXPECT_EQ(st.collapsed_requants, 1);
  ASSERT_EQ(instrs.size(), 2u);
  EXPECT_EQ(instrs[1].clamp_lo, 5);
  EXPECT_EQ(instrs[1].clamp_hi, 5);
}

TEST(FusePass, FusesDenseChainIntoOrderedEpilogue) {
  FpInstr dense;
  dense.kind = FpInstr::Kind::kDense;
  dense.inputs = {1};
  dense.output = 2;
  dense.const_data = {1, 2, 3, 4};
  dense.const_shape = {2, 2};
  dense.const_exponent = -4;

  FpInstr bias;
  bias.kind = FpInstr::Kind::kBiasAdd;
  bias.inputs = {3};
  bias.output = 4;
  bias.const_data = {7, -7};
  bias.const_shape = {2};

  FpInstr relu;
  relu.kind = FpInstr::Kind::kRelu;
  relu.inputs = {4};
  relu.output = 5;

  std::vector<FpInstr> instrs = {quantize_input(1), dense, requant(2, 3, -4, -128, 127),
                                 bias, relu};
  const FuseStats st = fuse_program(instrs, 6, 0, 5);
  EXPECT_EQ(st.fused_matmuls, 1);
  EXPECT_EQ(st.absorbed_instrs, 3);
  ASSERT_EQ(instrs.size(), 2u);

  const FpInstr& fused = instrs[1];
  EXPECT_EQ(fused.kind, FpInstr::Kind::kDenseFused);
  EXPECT_EQ(fused.output, 5);
  ASSERT_EQ(epi_step_count(fused), 3);
  EXPECT_EQ(epi_step(fused, 0).op, static_cast<int64_t>(FpInstr::EpiOp::kRequant));
  EXPECT_EQ(epi_step(fused, 1).op, static_cast<int64_t>(FpInstr::EpiOp::kBias));
  EXPECT_EQ(epi_step(fused, 2).op, static_cast<int64_t>(FpInstr::EpiOp::kRelu));
  EXPECT_EQ(fused.bias_data, (std::vector<int64_t>{7, -7}));
}

TEST(FusePass, ChainStopsAtMultiUseIntermediate) {
  // The requant's result is read twice, so it cannot disappear into a
  // register-resident epilogue; the dense must stay bare.
  FpInstr dense;
  dense.kind = FpInstr::Kind::kDense;
  dense.inputs = {1};
  dense.output = 2;
  dense.const_data = {1, 2, 3, 4};
  dense.const_shape = {2, 2};

  FpInstr add;
  add.kind = FpInstr::Kind::kEltwiseAdd;
  add.inputs = {3, 3};
  add.output = 4;

  std::vector<FpInstr> instrs = {quantize_input(1), dense, requant(2, 3, -4, -128, 127),
                                 add};
  const FuseStats st = fuse_program(instrs, 5, 0, 4);
  EXPECT_EQ(st.fused_matmuls, 1);      // the requant alone still fuses
  EXPECT_EQ(st.absorbed_instrs, 1);
  ASSERT_EQ(instrs.size(), 3u);
  EXPECT_EQ(instrs[1].kind, FpInstr::Kind::kDenseFused);
  EXPECT_EQ(instrs[1].output, 3);
  EXPECT_EQ(epi_step_count(instrs[1]), 1);
}

// ---- scheduler units -------------------------------------------------------

// An adversarial order — breadth-first by dataflow depth, which interleaves
// inception's towers and maximizes liveness overlap — must be recovered by
// the scheduler to an arena estimate no worse than the compiled order's.
TEST(Scheduler, RecoversAdversarialBreadthFirstOrders) {
  for (ModelKind kind : all_model_kinds()) {
    Prepared p = prepare(kind);
    const FixedPointProgram prog =
        compile_fixed_point(p.m.graph, p.m.input, p.qres.quantized_output);
    const std::vector<FpInstr>& good = prog.instructions();
    const int nr = prog.register_count(), ir = prog.input_reg(), orr = prog.output_reg();

    std::vector<int> producer(static_cast<size_t>(nr), -1);
    for (size_t i = 0; i < good.size(); ++i) {
      producer[static_cast<size_t>(good[i].output)] = static_cast<int>(i);
    }
    std::vector<int> depth(good.size(), 0);
    for (size_t i = 0; i < good.size(); ++i) {
      for (int r : good[i].inputs) {
        const int pi = producer[static_cast<size_t>(r)];
        if (pi >= 0) depth[i] = std::max(depth[i], depth[static_cast<size_t>(pi)] + 1);
      }
    }
    std::vector<FpInstr> bfs = good;
    std::stable_sort(bfs.begin(), bfs.end(), [&](const FpInstr& a, const FpInstr& b) {
      return depth[static_cast<size_t>(producer[static_cast<size_t>(a.output)])] <
             depth[static_cast<size_t>(producer[static_cast<size_t>(b.output)])];
    });

    const std::vector<FpInstr> fixed = schedule_program(bfs, nr, ir, orr);
    EXPECT_LE(estimate_arena_bytes(fixed, nr, ir, orr), estimate_arena_bytes(bfs, nr, ir, orr))
        << model_name(kind);
    EXPECT_LE(estimate_arena_bytes(fixed, nr, ir, orr), estimate_arena_bytes(good, nr, ir, orr))
        << model_name(kind) << ": rescheduling a shuffled program must reach compiled quality";
  }
}

// Scheduling is idempotent: re-running the scheduler on its own output must
// reproduce it instruction for instruction. finalize() relies on this to make
// load-time re-finalization land on the identical plan.
TEST(Scheduler, IsIdempotentOnZooPrograms) {
  for (ModelKind kind : all_model_kinds()) {
    Prepared p = prepare(kind);
    const FixedPointProgram prog =
        compile_fixed_point(p.m.graph, p.m.input, p.qres.quantized_output);
    const std::vector<FpInstr>& once = prog.instructions();
    const std::vector<FpInstr> twice = schedule_program(
        once, prog.register_count(), prog.input_reg(), prog.output_reg());
    ASSERT_EQ(twice.size(), once.size()) << model_name(kind);
    for (size_t i = 0; i < once.size(); ++i) {
      EXPECT_EQ(twice[i].output, once[i].output)
          << model_name(kind) << " instruction " << i;
    }
  }
}

}  // namespace
}  // namespace tqt
