// Property-based sweeps (parameterized gtest) over the quantizer invariants:
// for every bit-width and signedness the forward must be idempotent,
// monotone, on-grid, correctly clipped at the §3.4 limits, and its gradients
// must obey the sign structure that produces the range-precision trade-off.
#include <gtest/gtest.h>

#include <cmath>

#include "quant/calibrate.h"
#include "quant/fake_quant.h"
#include "quant/toy_model.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace tqt {
namespace {

struct QuantCase {
  int bits;
  bool is_signed;
  float log2_t;
};

std::string case_name(const ::testing::TestParamInfo<QuantCase>& info) {
  const QuantCase& c = info.param;
  std::string n(c.is_signed ? "s" : "u");
  n += std::to_string(c.bits);
  n += c.log2_t >= 0 ? "_t_pos" : "_t_neg";
  n += std::to_string(std::abs(static_cast<int>(c.log2_t * 10)));
  return n;
}

class QuantizerProperty : public ::testing::TestWithParam<QuantCase> {
 protected:
  QuantSpec bits() const { return QuantSpec{GetParam().bits, GetParam().is_signed}; }
  float log2_t() const { return GetParam().log2_t; }

  Tensor quantize(const Tensor& x) {
    auto th = make_threshold("t", log2_t());
    FakeQuantOp q(bits(), QuantMode::kTqt, th);
    std::vector<const Tensor*> ins{&x};
    return q.forward(ins);
  }
};

TEST_P(QuantizerProperty, Idempotent) {
  Rng rng(GetParam().bits * 7 + 1);
  Tensor x = rng.normal_tensor({512}, 0.0f, std::exp2(log2_t()));
  Tensor once = quantize(x);
  Tensor twice = quantize(once);
  EXPECT_TRUE(once.equals(twice));
}

TEST_P(QuantizerProperty, Monotone) {
  // q(x) is a nondecreasing function of x.
  Tensor x = Tensor::linspace(-4.0f * std::exp2(log2_t()), 4.0f * std::exp2(log2_t()), 301);
  Tensor y = quantize(x);
  for (int64_t i = 1; i < y.numel(); ++i) EXPECT_GE(y[i], y[i - 1]) << i;
}

TEST_P(QuantizerProperty, OnGridAndInRange) {
  Rng rng(GetParam().bits * 11 + 3);
  Tensor x = rng.normal_tensor({512}, 0.2f, 2.0f * std::exp2(log2_t()));
  auto th = make_threshold("t", log2_t());
  FakeQuantOp q(bits(), QuantMode::kTqt, th);
  std::vector<const Tensor*> ins{&x};
  Tensor y = q.forward(ins);
  const float s = q.scale();
  for (int64_t i = 0; i < y.numel(); ++i) {
    const float level = y[i] / s;
    EXPECT_NEAR(level, std::nearbyintf(level), 1e-2f);
    EXPECT_GE(level, static_cast<float>(bits().qmin()) - 0.01f);
    EXPECT_LE(level, static_cast<float>(bits().qmax()) + 0.01f);
  }
}

TEST_P(QuantizerProperty, ScaleIsPowerOfTwo) {
  auto th = make_threshold("t", log2_t());
  FakeQuantOp q(bits(), QuantMode::kTqt, th);
  const float s = q.scale();
  const float l = std::log2(s);
  EXPECT_FLOAT_EQ(l, std::nearbyintf(l));
  EXPECT_EQ(s, std::exp2(static_cast<float>(q.exponent())));
}

TEST_P(QuantizerProperty, ClipLimitsFormula) {
  // Exact real-domain clip limits: xn = s*(n - 0.5), xp = s*(p + 0.5) (§3.4).
  auto th = make_threshold("t", log2_t());
  FakeQuantOp q(bits(), QuantMode::kTqt, th);
  const float s = q.scale();
  const float xn = s * (static_cast<float>(bits().qmin()) - 0.5f);
  const float xp = s * (static_cast<float>(bits().qmax()) + 0.5f);
  const float eps = s * 0.01f;
  // Just inside: gradient mask 1; just outside: 0.
  Tensor x({4}, {xn + eps, xp - eps, xn - eps, xp + eps});
  std::vector<const Tensor*> ins{&x};
  q.forward(ins);
  auto g = q.backward(Tensor({4}, {1, 1, 1, 1}));
  if (bits().is_signed) {
    EXPECT_EQ(g[0][0], 1.0f);
    EXPECT_EQ(g[0][2], 0.0f);
  }
  EXPECT_EQ(g[0][1], 1.0f);
  EXPECT_EQ(g[0][3], 0.0f);
}

TEST_P(QuantizerProperty, MaxErrorBoundedByHalfStep) {
  // For in-range values the reconstruction error is at most s/2.
  Rng rng(GetParam().bits * 13 + 5);
  auto th = make_threshold("t", log2_t());
  FakeQuantOp q(bits(), QuantMode::kTqt, th);
  const float s = q.scale();
  const float lo = bits().is_signed ? s * static_cast<float>(bits().qmin()) : 0.0f;
  const float hi = s * static_cast<float>(bits().qmax());
  Tensor x = rng.uniform_tensor({512}, lo, hi);
  std::vector<const Tensor*> ins{&x};
  Tensor y = q.forward(ins);
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_LE(std::fabs(y[i] - x[i]), 0.5f * s + 1e-6f) << x[i];
  }
}

TEST_P(QuantizerProperty, ThresholdGradientSignFlipsAroundEquilibrium) {
  // Far too wide -> positive cumulative gradient; far too narrow -> negative.
  Rng rng(GetParam().bits * 17 + 7);
  const Tensor x = rng.normal_tensor({4000});
  const ToyEval wide = toy_l2_eval(x, bits().storage(), QuantMode::kTqt, 8.0f);
  const ToyEval narrow = toy_l2_eval(x, bits().storage(), QuantMode::kTqt, -8.0f);
  EXPECT_GT(wide.grad_log2_t, 0.0);
  EXPECT_LT(narrow.grad_log2_t, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuantizerProperty,
    ::testing::Values(QuantCase{2, true, 0.0f}, QuantCase{3, true, 0.0f},
                      QuantCase{4, true, 1.3f}, QuantCase{4, false, 1.3f},
                      QuantCase{8, true, 0.0f}, QuantCase{8, true, -2.7f},
                      QuantCase{8, false, 0.6f}, QuantCase{16, true, 2.0f}),
    case_name);

// ---- Rounding shift property sweep ------------------------------------------

class ShiftRounding : public ::testing::TestWithParam<int> {};

TEST_P(ShiftRounding, MatchesFloatReferenceOnRandomValues) {
  const int shift = GetParam();
  Rng rng(shift * 31 + 5);
  for (int trial = 0; trial < 2000; ++trial) {
    const int64_t v = rng.uniform_int(-(int64_t{1} << 40), int64_t{1} << 40);
    const double ref = static_cast<double>(v) / static_cast<double>(int64_t{1} << shift);
    // Recompute round-half-to-even in double for an independent reference.
    double r = std::nearbyint(ref);
    EXPECT_EQ(shift_round_half_to_even(v, shift), static_cast<int64_t>(r)) << v;
  }
}

TEST_P(ShiftRounding, ExactOnMultiples) {
  const int shift = GetParam();
  for (int64_t q = -100; q <= 100; ++q) {
    EXPECT_EQ(shift_round_half_to_even(q << shift, shift), q);
  }
}

INSTANTIATE_TEST_SUITE_P(Shifts, ShiftRounding, ::testing::Values(1, 2, 3, 7, 12, 20));

// ---- Calibrator property sweep ------------------------------------------------

class KlJProperty : public ::testing::TestWithParam<int> {};

TEST_P(KlJProperty, ThresholdWithinDataRange) {
  Rng rng(GetParam() * 3 + 11);
  Tensor x = rng.normal_tensor({20000}, 0.0f, std::exp2(static_cast<float>(GetParam() - 3)));
  const float t = kl_j_threshold(std::span(x.vec()), QuantSpec{8});
  EXPECT_GT(t, 0.0f);
  EXPECT_LE(t, x.abs_max() * 1.0001f);
}

TEST_P(KlJProperty, ScaleEquivariance) {
  // Scaling the data by 2^k scales the KL-J threshold by ~2^k.
  Rng rng(GetParam() * 5 + 13);
  Tensor x = rng.normal_tensor({20000});
  const float t1 = kl_j_threshold(std::span(x.vec()), QuantSpec{8});
  Tensor x8 = x * 8.0f;
  const float t8 = kl_j_threshold(std::span(x8.vec()), QuantSpec{8});
  EXPECT_NEAR(t8 / t1, 8.0f, 0.4f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KlJProperty, ::testing::Values(1, 2, 3, 4, 5));

// ---- Table 4 guideline as a property ------------------------------------------

class AdamBoundProperty : public ::testing::TestWithParam<int> {};

TEST_P(AdamBoundProperty, WithinBoundStaysInOneIntegerBin) {
  // Appendix C: alpha <= 0.1/sqrt(p) keeps post-convergence oscillation of
  // the log threshold within a single integer bin.
  const int b = GetParam();
  const double p = static_cast<double>((1 << (b - 1)) - 1);
  ToyRunConfig cfg;
  cfg.bits = {b, true};
  cfg.sigma = 1.0f;
  cfg.steps = 1200;
  cfg.lr = static_cast<float>(0.1 / std::sqrt(p));
  cfg.log2_t0 = 3.0f;
  const ToyRunResult r = run_toy_training(cfg, ToyOptimizer::kLogAdam);
  float lo = 1e30f, hi = -1e30f;
  for (size_t i = r.log2_t.size() / 2; i < r.log2_t.size(); ++i) {
    lo = std::min(lo, r.log2_t[i]);
    hi = std::max(hi, r.log2_t[i]);
  }
  EXPECT_LT(hi - lo, 1.0f) << "b=" << b << " alpha=" << cfg.lr;
}

INSTANTIATE_TEST_SUITE_P(Bits, AdamBoundProperty, ::testing::Values(4, 6, 8));

}  // namespace
}  // namespace tqt
