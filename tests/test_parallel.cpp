// Tests for the deterministic parallel runtime: parallel_for/parallel_reduce
// edge cases, and the bit-identical-across-thread-counts contract on the hot
// kernels it backs — matmul, fake-quant backward (including grad_log2t), and
// a full quantized training run.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/train.h"
#include "graph_opt/quantize_pass.h"
#include "graph_opt/transforms.h"
#include "models/zoo.h"
#include "quant/fake_quant.h"
#include "runtime/parallel.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace tqt {
namespace {

// Restores the default pool size when a test that sweeps thread counts exits
// (including via an assertion failure).
struct ThreadGuard {
  ~ThreadGuard() { set_num_threads(0); }
};

TEST(ParallelFor, EmptyRangeNeverInvokesBody) {
  ThreadGuard guard;
  set_num_threads(4);
  std::atomic<int> calls{0};
  parallel_for(0, 0, 1, [&](int64_t, int64_t) { ++calls; });
  parallel_for(5, 5, 16, [&](int64_t, int64_t) { ++calls; });
  parallel_for(7, 3, 1, [&](int64_t, int64_t) { ++calls; });  // inverted
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, RangeSmallerThanGrainIsOneChunk) {
  ThreadGuard guard;
  set_num_threads(4);
  std::atomic<int> calls{0};
  int64_t lo = -1, hi = -1;
  parallel_for(3, 10, 100, [&](int64_t b, int64_t e) {
    ++calls;
    lo = b;
    hi = e;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(lo, 3);
  EXPECT_EQ(hi, 10);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadGuard guard;
  set_num_threads(4);
  const int64_t n = 10007;  // prime: uneven final chunk
  std::vector<int> hits(static_cast<size_t>(n), 0);
  parallel_for(0, n, 64, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) ++hits[static_cast<size_t>(i)];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), n);
  for (int64_t i = 0; i < n; ++i) ASSERT_EQ(hits[static_cast<size_t>(i)], 1) << "index " << i;
}

TEST(ParallelFor, ExceptionFromWorkerPropagates) {
  ThreadGuard guard;
  set_num_threads(4);
  auto boom = [&](int64_t b, int64_t) {
    if (b >= 512) throw std::runtime_error("chunk failed");
  };
  EXPECT_THROW(parallel_for(0, 4096, 64, boom), std::runtime_error);
  // The pool must stay usable after an exception drained.
  std::atomic<int64_t> sum{0};
  parallel_for(0, 1000, 10, [&](int64_t b, int64_t e) { sum += e - b; });
  EXPECT_EQ(sum.load(), 1000);
  // Serial fast path (single chunk) throws straight through.
  EXPECT_THROW(
      parallel_for(0, 10, 100, [](int64_t, int64_t) { throw std::runtime_error("serial"); }),
      std::runtime_error);
}

TEST(ParallelReduce, EmptyRangeReturnsIdentity) {
  EXPECT_EQ(parallel_reduce<double>(
                0, 0, 8, 42.0, [](int64_t, int64_t) { return 1.0; },
                [](double a, double b) { return a + b; }),
            42.0);
}

TEST(ParallelReduce, SingleChunkAndExactSums) {
  ThreadGuard guard;
  set_num_threads(4);
  auto count = [](int64_t b, int64_t e) { return static_cast<double>(e - b); };
  auto add = [](double a, double b) { return a + b; };
  EXPECT_EQ(parallel_reduce<double>(0, 7, 100, 0.0, count, add), 7.0);   // < grain
  EXPECT_EQ(parallel_reduce<double>(0, 1000, 9, 0.0, count, add), 1000.0);
}

TEST(ParallelReduce, BitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  // Sum values whose floating-point total depends on association order, so
  // any thread-count-dependent regrouping would change the bits.
  Rng rng(123);
  const Tensor x = rng.normal_tensor({1 << 18}, 0.0f, 1.0f);
  auto run = [&] {
    return parallel_reduce<double>(
        0, x.numel(), 1000, 0.0,
        [&](int64_t b, int64_t e) {
          double local = 0.0;
          for (int64_t i = b; i < e; ++i) local += static_cast<double>(x[i]) * x[i];
          return local;
        },
        [](double a, double b) { return a + b; });
  };
  set_num_threads(1);
  const double r1 = run();
  set_num_threads(2);
  const double r2 = run();
  set_num_threads(8);
  const double r8 = run();
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1, r8);
}

TEST(ParallelKernels, MatmulFamilyBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  Rng rng(7);
  const Tensor a = rng.normal_tensor({129, 67}, 0.0f, 1.0f);
  const Tensor b = rng.normal_tensor({67, 93}, 0.0f, 1.0f);
  const Tensor bt = transpose2d(b);
  const Tensor at = transpose2d(a);
  set_num_threads(1);
  const Tensor c1 = matmul(a, b), tn1 = matmul_tn(at, b), nt1 = matmul_nt(a, bt);
  set_num_threads(4);
  const Tensor c4 = matmul(a, b), tn4 = matmul_tn(at, b), nt4 = matmul_nt(a, bt);
  EXPECT_TRUE(c1.equals(c4));
  EXPECT_TRUE(tn1.equals(tn4));
  EXPECT_TRUE(nt1.equals(nt4));
}

TEST(ParallelKernels, MatmulPropagatesZeroTimesInf) {
  // The old kernel skipped a == 0 rows and silently dropped 0 * inf = NaN.
  Tensor a({1, 2}, {0.0f, 1.0f});
  Tensor b({2, 1}, {std::numeric_limits<float>::infinity(), 2.0f});
  const Tensor c = matmul(a, b);
  EXPECT_TRUE(std::isnan(c[0]));
}

TEST(ParallelKernels, FakeQuantBackwardBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  Rng rng(17);
  const Tensor x = rng.normal_tensor({300007}, 0.0f, 1.0f);
  const Tensor g = rng.normal_tensor({300007}, 0.0f, 1.0f);
  auto run = [&](int threads) {
    set_num_threads(threads);
    auto th = make_threshold("t", 0.5f, true);
    FakeQuantOp op(QuantSpec{8}, QuantMode::kTqt, th);
    Tensor y = op.forward({&x});
    std::vector<Tensor> dx = op.backward(g);
    return std::make_tuple(std::move(y), std::move(dx[0]), th->grad[0]);
  };
  auto [y1, dx1, gth1] = run(1);
  auto [y2, dx2, gth2] = run(2);
  auto [y8, dx8, gth8] = run(8);
  EXPECT_TRUE(y1.equals(y2));
  EXPECT_TRUE(y1.equals(y8));
  EXPECT_TRUE(dx1.equals(dx2));
  EXPECT_TRUE(dx1.equals(dx8));
  // grad_log2t is the Eq. 6/7 full-tensor reduction: exact bit equality.
  EXPECT_EQ(gth1, gth2);
  EXPECT_EQ(gth1, gth8);
}

TEST(ParallelKernels, PerChannelGradLog2tBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  Rng rng(23);
  const Tensor x = rng.normal_tensor({4, 9, 9, 8}, 0.0f, 1.0f);
  const Tensor g = rng.normal_tensor({4, 9, 9, 8}, 0.0f, 1.0f);
  auto run = [&](int threads) {
    set_num_threads(threads);
    auto th = std::make_shared<Param>("t", Tensor({8}, 0.25f), "threshold", true);
    FakeQuantOp op(QuantSpec{8, true, 3, true}, QuantMode::kTqt, th);
    op.forward({&x});
    Tensor dx = op.backward(g)[0];
    return std::make_pair(std::move(dx), th->grad);
  };
  auto [dx1, gth1] = run(1);
  auto [dx4, gth4] = run(4);
  EXPECT_TRUE(dx1.equals(dx4));
  EXPECT_TRUE(gth1.equals(gth4));
}

// A full quantized training run — forward, backward (conv, GEMM, fake-quant),
// Adam updates on weights and thresholds — must leave every parameter,
// thresholds included, bit-identical whether the pool has 1 or 4 threads.
TEST(ParallelKernels, QuantizedTrainingRunBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  DatasetConfig dcfg;
  dcfg.train_size = 64;
  dcfg.val_size = 32;
  auto run = [&](int threads) {
    set_num_threads(threads);
    SyntheticImageDataset data(dcfg);
    BuiltModel m = build_model(ModelKind::kMiniDarkNet, 10, 11);
    Rng rng(11);
    m.graph.set_training(true);
    for (int i = 0; i < 4; ++i) {
      m.graph.run({{m.input, rng.normal_tensor({8, 16, 16, 3}, 0.2f, 1.0f)}}, m.logits);
    }
    m.graph.set_training(false);
    Tensor calib = rng.normal_tensor({16, 16, 16, 3}, 0.2f, 1.0f);
    optimize_for_quantization(m.graph, m.input, calib);
    QuantizePassResult qres = quantize_pass(m.graph, m.input, m.logits, QuantizeConfig{});
    calibrate_thresholds(m.graph, qres, m.input, calib, WeightInit::kMax);
    TrainSchedule sched;
    sched.epochs = 1.0f;
    sched.batch_size = 32;  // 2 steps on 64 train images
    sched.validate_every = 0;
    sched.restore_best = false;
    train_graph(m.graph, m.input, qres.quantized_output, data, sched);
    std::vector<Tensor> out;
    for (const ParamPtr& p : m.graph.params()) out.push_back(p->value);
    return out;
  };
  std::vector<Tensor> p1 = run(1);
  std::vector<Tensor> p4 = run(4);
  ASSERT_EQ(p1.size(), p4.size());
  ASSERT_FALSE(p1.empty());
  for (size_t i = 0; i < p1.size(); ++i) {
    EXPECT_TRUE(p1[i].equals(p4[i])) << "param " << i << " diverged across thread counts";
  }
}

}  // namespace
}  // namespace tqt
