// Tests for the tqt-gateway socket front-end (src/net). Headline contracts:
//
//  * serving over loopback preserves the engine's bit-exactness — every
//    response equals the direct run_into result, for every zoo model, at
//    batch sizes 1 / 3 / max, under concurrent connections;
//  * the wire parser never trusts a length from the wire — truncations at
//    every prefix, oversized declared lengths and garbage bytes are answered
//    with MALFORMED or a close, never a crash, hang or over-read;
//  * every rejection path (SHED, DEADLINE_EXCEEDED, BAD_MODEL, MALFORMED,
//    SHUTTING_DOWN) reaches the client as its typed status code.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "test_util.h"
#include "fixedpoint/engine.h"
#include "graph_opt/quantize_pass.h"
#include "graph_opt/transforms.h"
#include "models/zoo.h"
#include "net/client.h"
#include "net/gateway.h"
#include "serve/server.h"
#include "tensor/rng.h"

namespace tqt {
namespace {

FixedPointProgram make_program(ModelKind kind, uint64_t seed = 11) {
  BuiltModel m = build_model(kind, 10, seed);
  Rng rng(seed);
  m.graph.set_training(true);
  for (int i = 0; i < 10; ++i) {
    m.graph.run({{m.input, rng.normal_tensor({8, 16, 16, 3}, 0.2f, 1.0f)}}, m.logits);
  }
  m.graph.set_training(false);
  Tensor calib = rng.normal_tensor({16, 16, 16, 3}, 0.2f, 1.0f);
  optimize_for_quantization(m.graph, m.input, calib);
  QuantizeConfig cfg;
  QuantizePassResult qres = quantize_pass(m.graph, m.input, m.logits, cfg);
  calibrate_thresholds(m.graph, qres, m.input, calib, WeightInit::kMax);
  return compile_fixed_point(m.graph, m.input, qres.quantized_output);
}

const Shape kSampleShape = {16, 16, 3};

/// Server + gateway pair with the right member order (the server must
/// outlive the gateway).
struct Rig {
  serve::InferenceServer server;
  std::unique_ptr<net::Gateway> gateway;

  explicit Rig(serve::ServerConfig scfg = {}, net::GatewayConfig gcfg = {})
      : server(scfg) {
    gcfg.port = 0;  // always an ephemeral loopback port in tests
    gateway = std::make_unique<net::Gateway>(server, gcfg);
  }
  uint16_t port() const { return gateway->port(); }
};

// ---- Wire protocol units ----------------------------------------------------

TEST(NetWire, RequestFrameRoundTrips) {
  Rng rng(3);
  net::InferRequest req;
  req.model = "mini_vgg";
  req.deadline_us = 123456;
  req.input = rng.normal_tensor({1, 16, 16, 3}, 0.1f, 1.3f);

  std::vector<uint8_t> frame;
  net::append_request_frame(frame, /*request_id=*/42, req);
  ASSERT_GE(frame.size(), net::kHeaderBytes);

  net::FrameHeader h;
  std::string err;
  ASSERT_EQ(net::parse_header(frame.data(), frame.size(), &h, &err), net::HeaderParse::kOk)
      << err;
  EXPECT_EQ(h.type, net::FrameType::kRequest);
  EXPECT_EQ(h.request_id, 42u);
  ASSERT_EQ(frame.size(), net::kHeaderBytes + h.payload_len);

  net::InferRequest back;
  ASSERT_TRUE(net::parse_request_payload(frame.data() + net::kHeaderBytes, h.payload_len,
                                         h.version, &back, &err))
      << err;
  EXPECT_EQ(back.model, req.model);
  EXPECT_EQ(back.deadline_us, req.deadline_us);
  ASSERT_EQ(back.input.shape(), req.input.shape());
  EXPECT_TRUE(back.input.equals(req.input));  // float bits survive the wire
}

TEST(NetWire, ResponseFramesRoundTrip) {
  Rng rng(4);
  net::InferResponse ok;
  ok.status = net::WireStatus::kOk;
  ok.output = rng.normal_tensor({1, 10});
  net::InferResponse shed;
  shed.status = net::WireStatus::kShed;
  shed.message = "queue full";

  for (const net::InferResponse& resp : {ok, shed}) {
    std::vector<uint8_t> frame;
    net::append_response_frame(frame, 7, resp);
    net::FrameHeader h;
    std::string err;
    ASSERT_EQ(net::parse_header(frame.data(), frame.size(), &h, &err), net::HeaderParse::kOk);
    EXPECT_EQ(h.type, net::FrameType::kResponse);
    EXPECT_EQ(h.status, resp.status);
    net::InferResponse back;
    ASSERT_TRUE(net::parse_response_payload(frame.data() + net::kHeaderBytes, h.payload_len,
                                            h.status, &back, &err))
        << err;
    EXPECT_EQ(back.status, resp.status);
    EXPECT_EQ(back.message, resp.message);
    if (resp.status == net::WireStatus::kOk) {
      EXPECT_TRUE(back.output.equals(resp.output));
    }
  }
}

TEST(NetWire, HeaderRejectsEveryCorruptField) {
  Rng rng(5);
  net::InferRequest req;
  req.model = "m";
  req.input = rng.normal_tensor({2, 2});
  std::vector<uint8_t> frame;
  net::append_request_frame(frame, 1, req);

  const auto expect_corrupt = [&](size_t offset, uint8_t value, const char* what) {
    std::vector<uint8_t> bad = frame;
    bad[offset] = value;
    net::FrameHeader h;
    std::string err;
    EXPECT_EQ(net::parse_header(bad.data(), bad.size(), &h, &err), net::HeaderParse::kCorrupt)
        << what;
    EXPECT_FALSE(err.empty()) << what;
  };
  expect_corrupt(0, 0x00, "bad magic");
  expect_corrupt(4, 99, "bad version");
  expect_corrupt(5, 0, "zero frame type");
  expect_corrupt(5, 5, "unknown frame type");  // 3/4 are the admin plane
  expect_corrupt(6, 200, "unknown status");
  expect_corrupt(7, 1, "nonzero reserved");

  // Declared payload length over the frame bound.
  std::vector<uint8_t> bad = frame;
  const uint32_t huge = net::kMaxPayloadBytes + 1;
  for (int i = 0; i < 4; ++i) bad[12 + static_cast<size_t>(i)] = (huge >> (8 * i)) & 0xff;
  net::FrameHeader h;
  std::string err;
  EXPECT_EQ(net::parse_header(bad.data(), bad.size(), &h, &err), net::HeaderParse::kCorrupt);

  // A bad magic is rejected as soon as four bytes exist; a plausible prefix
  // asks for more.
  EXPECT_EQ(net::parse_header(frame.data(), 3, &h, &err), net::HeaderParse::kNeedMore);
  EXPECT_EQ(net::parse_header(frame.data(), 8, &h, &err), net::HeaderParse::kNeedMore);
  const uint8_t junk[4] = {0xde, 0xad, 0xbe, 0xef};
  EXPECT_EQ(net::parse_header(junk, 4, &h, &err), net::HeaderParse::kCorrupt);
}

TEST(NetWire, RequestPayloadRejectsBoundsViolations) {
  Rng rng(6);
  net::InferRequest req;
  req.model = "abc";
  req.deadline_us = 9;
  req.input = rng.normal_tensor({2, 3});
  std::vector<uint8_t> frame;
  net::append_request_frame(frame, 1, req);
  const uint8_t* payload = frame.data() + net::kHeaderBytes;
  const size_t n = frame.size() - net::kHeaderBytes;

  net::InferRequest back;
  std::string err;
  ASSERT_TRUE(net::parse_request_payload(payload, n, net::kMinVersion, &back, &err)) << err;

  // Every strict prefix of a valid payload must be rejected (never over-read).
  for (size_t k = 0; k < n; ++k) {
    EXPECT_FALSE(net::parse_request_payload(payload, k, net::kMinVersion, &back, &err))
        << "prefix " << k;
  }
  // Trailing garbage after the tensor data must be rejected too.
  std::vector<uint8_t> padded(payload, payload + n);
  padded.push_back(0);
  EXPECT_FALSE(
      net::parse_request_payload(padded.data(), padded.size(), net::kMinVersion, &back, &err));

  // Zero-length model name.
  std::vector<uint8_t> zero_name(payload, payload + n);
  zero_name[0] = 0;
  zero_name[1] = 0;
  EXPECT_FALSE(net::parse_request_payload(zero_name.data(), zero_name.size(),
                                          net::kMinVersion, &back, &err));
}

TEST(NetWire, TensorDimProductOverflowIsRejected) {
  // name "m", deadline 0, rank 2, dims {2^32-1, 2^32-1}: the element count
  // must be caught by the running overflow guard, not computed mod 2^64.
  std::vector<uint8_t> payload = {1, 0, 'm', 0, 0, 0, 0, 2};
  for (int i = 0; i < 8; ++i) payload.push_back(0xff);
  net::InferRequest back;
  std::string err;
  EXPECT_FALSE(net::parse_request_payload(payload.data(), payload.size(), net::kMinVersion,
                                          &back, &err));
  EXPECT_NE(err.find("bound"), std::string::npos) << err;
}

TEST(NetWire, EncoderRejectsOutOfBoundsRequests) {
  Rng rng(7);
  std::vector<uint8_t> out;
  net::InferRequest req;
  req.input = rng.normal_tensor({2, 2});
  req.model = "";
  EXPECT_THROW(net::append_request_frame(out, 1, req), std::invalid_argument);
  req.model = std::string(net::kMaxModelNameBytes + 1, 'x');
  EXPECT_THROW(net::append_request_frame(out, 1, req), std::invalid_argument);
  req.model = "ok";
  req.input = Tensor();  // rank 0
  EXPECT_THROW(net::append_request_frame(out, 1, req), std::invalid_argument);
}

// ---- Loopback bit-exactness -------------------------------------------------

class NetGatewayBitExact : public ::testing::TestWithParam<ModelKind> {};

// The headline contract: responses served over TCP through gateway +
// micro-batcher are bit-identical to direct engine runs, at micro-batch
// sizes 1, 3 and 8, under 4 concurrent client connections.
TEST_P(NetGatewayBitExact, ConcurrentConnectionsMatchDirectRuns) {
  const FixedPointProgram prog = make_program(GetParam());
  Rng rng(123);
  constexpr int kClients = 4, kPerClient = 3;
  std::vector<Tensor> samples, reference;
  for (int i = 0; i < kClients * kPerClient; ++i) {
    samples.push_back(rng.normal_tensor({1, 16, 16, 3}, 0.2f, 1.2f));
    reference.push_back(test::run_program(prog, samples.back()));
  }

  for (const int64_t max_batch : {int64_t{1}, int64_t{3}, int64_t{8}}) {
    serve::ServerConfig scfg;
    scfg.batch.max_batch = max_batch;
    scfg.batch.max_delay_us = 5000;  // encourage coalescing across connections
    Rig rig(scfg);
    rig.server.deploy("m", prog, kSampleShape);

    std::vector<std::thread> threads;
    std::vector<int> exact(kClients, 0);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        net::GatewayClient client("localhost", rig.port());
        for (int k = 0; k < kPerClient; ++k) {
          const size_t i = static_cast<size_t>(c * kPerClient + k);
          const net::InferResponse resp = client.infer("m", samples[i]);
          ASSERT_EQ(resp.status, net::WireStatus::kOk) << resp.message;
          ASSERT_EQ(resp.output.shape(), reference[i].shape());
          if (resp.output.equals(reference[i])) ++exact[static_cast<size_t>(c)];
        }
      });
    }
    for (auto& t : threads) t.join();
    for (int c = 0; c < kClients; ++c) {
      EXPECT_EQ(exact[static_cast<size_t>(c)], kPerClient)
          << model_name(GetParam()) << " client " << c << " max_batch " << max_batch;
    }
    rig.gateway->stop_and_drain();
  }
}

INSTANTIATE_TEST_SUITE_P(Net, NetGatewayBitExact, ::testing::ValuesIn(all_model_kinds()),
                         [](const auto& info) { return model_name(info.param); });

// ---- Typed rejection paths --------------------------------------------------

struct MiniVggRig {
  FixedPointProgram prog = make_program(ModelKind::kMiniVgg);
};

TEST(NetGateway, BadModelIsTypedAndConnectionStaysUsable) {
  MiniVggRig m;
  Rig rig;
  rig.server.deploy("m", m.prog, kSampleShape);
  Rng rng(9);
  const Tensor sample = rng.normal_tensor({1, 16, 16, 3}, 0.2f, 1.2f);

  net::GatewayClient client("localhost", rig.port());
  const net::InferResponse bad = client.infer("nope", sample);
  EXPECT_EQ(bad.status, net::WireStatus::kBadModel);
  EXPECT_NE(bad.message.find("nope"), std::string::npos);

  const net::InferResponse good = client.infer("m", sample);  // same connection
  EXPECT_EQ(good.status, net::WireStatus::kOk);
  EXPECT_TRUE(good.output.equals(test::run_program(m.prog, sample)));
}

TEST(NetGateway, MalformedPayloadIsTypedAndConnectionStaysUsable) {
  MiniVggRig m;
  Rig rig;
  rig.server.deploy("m", m.prog, kSampleShape);
  Rng rng(10);
  const Tensor sample = rng.normal_tensor({1, 16, 16, 3}, 0.2f, 1.2f);
  net::GatewayClient client("localhost", rig.port());

  // A valid header whose payload fails to parse: per-request error, the
  // framing is still trustworthy, the connection survives.
  std::vector<uint8_t> frame;
  net::InferRequest req;
  req.model = "m";
  req.input = sample;
  net::append_request_frame(frame, 77, req);
  frame.resize(net::kHeaderBytes + 7);  // truncate the payload...
  frame[12] = 7;                        // ...and declare the truncated length
  frame[13] = frame[14] = frame[15] = 0;
  client.send_bytes(frame.data(), frame.size());
  const auto tagged = client.recv_response();
  EXPECT_EQ(tagged.request_id, 77u);
  EXPECT_EQ(tagged.response.status, net::WireStatus::kMalformed);

  const net::InferResponse good = client.infer("m", sample);
  EXPECT_EQ(good.status, net::WireStatus::kOk);

  // A request whose tensor shape does not match the deployed model is the
  // client's error — typed MALFORMED, connection still usable.
  const net::InferResponse mis = client.infer("m", rng.normal_tensor({4, 4}));
  EXPECT_EQ(mis.status, net::WireStatus::kMalformed);
  EXPECT_EQ(client.infer("m", sample).status, net::WireStatus::kOk);
}

TEST(NetGateway, BatcherQueueFullShedsWithTypedStatus) {
  MiniVggRig m;
  serve::ServerConfig scfg;
  scfg.batch.max_batch = 8;          // > max_queue: the worker keeps waiting...
  scfg.batch.max_delay_us = 200000;  // ...through the whole pipelined burst
  scfg.batch.max_queue = 2;
  Rig rig(scfg);
  rig.server.deploy("m", m.prog, kSampleShape);
  Rng rng(11);
  const Tensor sample = rng.normal_tensor({1, 16, 16, 3}, 0.2f, 1.2f);

  net::GatewayClient client("localhost", rig.port());
  constexpr int kBurst = 10;
  for (int i = 0; i < kBurst; ++i) client.send_infer("m", sample);
  int ok = 0, shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    const auto tagged = client.recv_response();
    if (tagged.response.status == net::WireStatus::kOk) ++ok;
    if (tagged.response.status == net::WireStatus::kShed) ++shed;
  }
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(shed, 8);
  const serve::StatsSnapshot s = rig.server.stats("m");
  EXPECT_EQ(s.shed, 8u);
}

TEST(NetGateway, InflightCapShedsAtTheGateway) {
  MiniVggRig m;
  serve::ServerConfig scfg;
  scfg.batch.max_batch = 8;
  scfg.batch.max_delay_us = 200000;  // hold the burst in flight
  net::GatewayConfig gcfg;
  gcfg.max_inflight = 1;
  Rig rig(scfg, gcfg);
  rig.server.deploy("m", m.prog, kSampleShape);
  Rng rng(12);
  const Tensor sample = rng.normal_tensor({1, 16, 16, 3}, 0.2f, 1.2f);

  net::GatewayClient client("localhost", rig.port());
  constexpr int kBurst = 5;
  for (int i = 0; i < kBurst; ++i) client.send_infer("m", sample);
  int ok = 0, shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    const auto tagged = client.recv_response();
    if (tagged.response.status == net::WireStatus::kOk) ++ok;
    if (tagged.response.status == net::WireStatus::kShed) {
      ++shed;
      EXPECT_NE(tagged.response.message.find("in-flight"), std::string::npos);
    }
  }
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(shed, 4);
  // The batcher never saw the shed requests — admission happened up front.
  EXPECT_EQ(rig.server.stats("m").shed, 0u);
}

TEST(NetGateway, QueuedDeadlineExpiryIsTypedAndSkipsExecution) {
  MiniVggRig m;
  serve::ServerConfig scfg;
  scfg.batch.max_batch = 8;          // the collection window outlives...
  scfg.batch.max_delay_us = 150000;  // ...the 1ms deadline below
  Rig rig(scfg);
  rig.server.deploy("m", m.prog, kSampleShape);
  Rng rng(13);

  net::GatewayClient client("localhost", rig.port());
  const net::InferResponse resp =
      client.infer("m", rng.normal_tensor({1, 16, 16, 3}), /*deadline_us=*/1000);
  EXPECT_EQ(resp.status, net::WireStatus::kDeadlineExceeded);
  const serve::StatsSnapshot s = rig.server.stats("m");
  EXPECT_EQ(s.deadline_dropped, 1u);  // dropped at dequeue, before the engine
  EXPECT_EQ(s.responses, 0u);         // no engine execution happened
  const std::string metrics = rig.server.metrics().json_snapshot();
  EXPECT_NE(metrics.find("\"net.deadline_drops\": 1"), std::string::npos) << metrics;
}

TEST(NetGateway, GracefulDrainAnswersInflightAndRejectsNew) {
  MiniVggRig m;
  serve::ServerConfig scfg;
  scfg.batch.max_batch = 8;
  scfg.batch.max_delay_us = 300000;  // request 1 stays in flight during drain
  Rig rig(scfg);
  rig.server.deploy("m", m.prog, kSampleShape);
  Rng rng(14);
  const Tensor sample = rng.normal_tensor({1, 16, 16, 3}, 0.2f, 1.2f);
  const Tensor want = test::run_program(m.prog, sample);

  net::GatewayClient client("localhost", rig.port());
  const uint32_t id1 = client.send_infer("m", sample);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));  // id1 is in flight
  rig.gateway->request_stop();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));  // drain has begun
  const uint32_t id2 = client.send_infer("m", sample);

  bool got1 = false, got2 = false;
  for (int i = 0; i < 2; ++i) {
    const auto tagged = client.recv_response();
    if (tagged.request_id == id1) {
      got1 = true;
      EXPECT_EQ(tagged.response.status, net::WireStatus::kOk);
      EXPECT_TRUE(tagged.response.output.equals(want));  // drain kept the bits
    }
    if (tagged.request_id == id2) {
      got2 = true;
      EXPECT_EQ(tagged.response.status, net::WireStatus::kShuttingDown);
    }
  }
  EXPECT_TRUE(got1);
  EXPECT_TRUE(got2);

  rig.gateway->stop_and_drain();
  EXPECT_TRUE(rig.gateway->stopped());
  EXPECT_THROW(net::GatewayClient("localhost", rig.port(), 1000), net::ClientError);
}

TEST(NetGateway, ConnectionCapClosesExtras) {
  MiniVggRig m;
  net::GatewayConfig gcfg;
  gcfg.max_connections = 2;
  Rig rig({}, gcfg);
  rig.server.deploy("m", m.prog, kSampleShape);
  Rng rng(15);
  const Tensor sample = rng.normal_tensor({1, 16, 16, 3}, 0.2f, 1.2f);

  net::GatewayClient c1("localhost", rig.port());
  net::GatewayClient c2("localhost", rig.port());
  EXPECT_EQ(c1.infer("m", sample).status, net::WireStatus::kOk);
  EXPECT_EQ(c2.infer("m", sample).status, net::WireStatus::kOk);

  net::GatewayClient c3("localhost", rig.port(), /*recv_timeout_ms=*/5000);
  EXPECT_THROW(c3.infer("m", sample), net::ClientError);  // closed on accept

  // Slots free up when a connection leaves.
  c1.close();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  net::GatewayClient c4("localhost", rig.port());
  EXPECT_EQ(c4.infer("m", sample).status, net::WireStatus::kOk);

  const std::string metrics = rig.server.metrics().json_snapshot();
  EXPECT_NE(metrics.find("\"net.connections_rejected\": 1"), std::string::npos) << metrics;
}

// ModelRegistry hot-swap race over loopback: while clients hammer the
// gateway, the model is redeployed; every response must be bit-exact against
// exactly one of the two versions, and post-swap traffic sees only v2.
TEST(NetGateway, HotSwapRaceServesExactlyOneOfTwoVersions) {
  const FixedPointProgram v1 = make_program(ModelKind::kMiniVgg, /*seed=*/11);
  const FixedPointProgram v2 = make_program(ModelKind::kMiniVgg, /*seed=*/99);
  Rng rng(16);
  const Tensor sample = rng.normal_tensor({1, 16, 16, 3}, 0.2f, 1.2f);
  const Tensor want_v1 = test::run_program(v1, sample);
  const Tensor want_v2 = test::run_program(v2, sample);
  ASSERT_FALSE(want_v1.equals(want_v2)) << "swap test needs distinguishable programs";

  serve::ServerConfig scfg;
  scfg.batch.max_batch = 4;
  scfg.batch.max_delay_us = 500;
  Rig rig(scfg);
  rig.server.deploy("m", v1, kSampleShape);

  constexpr int kClients = 4, kPerClient = 25;
  std::vector<std::thread> threads;
  std::vector<int> exact(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      net::GatewayClient client("localhost", rig.port());
      for (int k = 0; k < kPerClient; ++k) {
        const net::InferResponse resp = client.infer("m", sample);
        ASSERT_EQ(resp.status, net::WireStatus::kOk) << resp.message;
        const bool is_v1 = resp.output.equals(want_v1);
        const bool is_v2 = resp.output.equals(want_v2);
        if (is_v1 != is_v2) ++exact[static_cast<size_t>(c)];  // exactly one version
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  rig.server.deploy("m", v2, kSampleShape);  // hot swap mid-traffic
  for (auto& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(exact[static_cast<size_t>(c)], kPerClient) << "client " << c;
  }

  net::GatewayClient after("localhost", rig.port());
  EXPECT_TRUE(after.infer("m", sample).output.equals(want_v2));
}

TEST(NetGateway, MetricsAreVisibleInTheRegistrySnapshot) {
  MiniVggRig m;
  Rig rig;
  rig.server.deploy("m", m.prog, kSampleShape);
  Rng rng(17);
  net::GatewayClient client("localhost", rig.port());
  client.infer("m", rng.normal_tensor({1, 16, 16, 3}));
  client.infer("nope", rng.normal_tensor({1, 16, 16, 3}));
  const std::string json = rig.server.metrics().json_snapshot();
  for (const char* key :
       {"\"net.connections_accepted\": 1", "\"net.requests\": 2", "\"net.responses\": 2",
        "\"net.bad_model\": 1", "\"net.bytes_in\"", "\"net.bytes_out\"",
        "\"net.connections\"", "\"net.inflight\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key << " in " << json;
  }
}

// ---- Wire fuzzing over a live socket ---------------------------------------

struct FuzzRig {
  MiniVggRig m;
  Rig rig;
  Rng rng{18};
  Tensor sample = rng.normal_tensor({1, 16, 16, 3}, 0.2f, 1.2f);

  FuzzRig() { rig.server.deploy("m", m.prog, kSampleShape); }

  /// Read until EOF; throws (failing the test) on a hang past the timeout.
  static void drain_to_eof(net::GatewayClient& client) {
    uint8_t buf[4096];
    while (client.recv_raw(buf, sizeof buf) > 0) {
    }
  }

  void expect_alive() {
    net::GatewayClient probe("localhost", rig.port());
    EXPECT_EQ(probe.infer("m", sample).status, net::WireStatus::kOk);
  }
};

TEST(NetFuzz, TruncationAtEveryPrefixLengthNeverHangsTheServer) {
  FuzzRig f;
  // A protocol-valid frame (small tensor; its shape is checked only after
  // parsing, which a truncated frame never reaches).
  net::InferRequest req;
  req.model = "m";
  req.input = f.rng.normal_tensor({2, 2});
  std::vector<uint8_t> frame;
  net::append_request_frame(frame, 5, req);

  for (size_t len = 0; len < frame.size(); ++len) {
    net::GatewayClient client("localhost", f.rig.port(), /*recv_timeout_ms=*/10000);
    if (len > 0) client.send_bytes(frame.data(), len);
    client.shutdown_write();
    // The server answers MALFORMED or just closes — either way we must reach
    // EOF, never a hang or a crash.
    ASSERT_NO_THROW(FuzzRig::drain_to_eof(client)) << "prefix length " << len;
  }
  f.expect_alive();
}

TEST(NetFuzz, OversizedDeclaredLengthIsRejectedWithoutReadingIt) {
  FuzzRig f;
  uint8_t header[net::kHeaderBytes] = {};
  const uint32_t magic = net::kMagic, huge = net::kMaxPayloadBytes + 1, id = 9;
  for (int i = 0; i < 4; ++i) {
    header[i] = (magic >> (8 * i)) & 0xff;
    header[8 + i] = (id >> (8 * i)) & 0xff;
    header[12 + i] = (huge >> (8 * i)) & 0xff;
  }
  header[4] = net::kVersion;
  header[5] = static_cast<uint8_t>(net::FrameType::kRequest);

  net::GatewayClient client("localhost", f.rig.port(), /*recv_timeout_ms=*/10000);
  client.send_bytes(header, sizeof header);
  const auto tagged = client.recv_response();  // immediate: no 16 MiB wait
  EXPECT_EQ(tagged.response.status, net::WireStatus::kMalformed);
  FuzzRig::drain_to_eof(client);  // framing was corrupt -> server closes
  f.expect_alive();
}

TEST(NetFuzz, GarbageBytesGetMalformedOrClosedNeverACrash) {
  FuzzRig f;
  std::mt19937 prng(0xC0FFEE);
  for (int round = 0; round < 20; ++round) {
    std::vector<uint8_t> garbage(64);
    for (uint8_t& b : garbage) b = static_cast<uint8_t>(prng());
    net::GatewayClient client("localhost", f.rig.port(), /*recv_timeout_ms=*/10000);
    client.send_bytes(garbage.data(), garbage.size());
    client.shutdown_write();
    ASSERT_NO_THROW(FuzzRig::drain_to_eof(client)) << "round " << round;
  }
  f.expect_alive();
}

TEST(NetFuzz, AbruptDisconnectMidFrameLeavesTheServerServing) {
  FuzzRig f;
  net::InferRequest req;
  req.model = "m";
  req.input = f.sample;
  std::vector<uint8_t> frame;
  net::append_request_frame(frame, 3, req);
  for (int round = 0; round < 5; ++round) {
    net::GatewayClient client("localhost", f.rig.port());
    client.send_bytes(frame.data(), frame.size() / 2);
    client.close();  // vanish mid-frame
  }
  f.expect_alive();
}

}  // namespace
}  // namespace tqt
