file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_per_channel.dir/bench_ext_per_channel.cpp.o"
  "CMakeFiles/bench_ext_per_channel.dir/bench_ext_per_channel.cpp.o.d"
  "bench_ext_per_channel"
  "bench_ext_per_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_per_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
