# Empty dependencies file for bench_table4_adam_bounds.
# This may be replaced when dependencies are built.
