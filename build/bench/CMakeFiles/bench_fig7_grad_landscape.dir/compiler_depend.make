# Empty compiler generated dependencies file for bench_fig7_grad_landscape.
# This may be replaced when dependencies are built.
