# Empty dependencies file for bench_table5_best_vs_mean.
# This may be replaced when dependencies are built.
