file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_best_vs_mean.dir/bench_table5_best_vs_mean.cpp.o"
  "CMakeFiles/bench_table5_best_vs_mean.dir/bench_table5_best_vs_mean.cpp.o.d"
  "bench_table5_best_vs_mean"
  "bench_table5_best_vs_mean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_best_vs_mean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
