# Empty dependencies file for bench_ext_bit_sweep.
# This may be replaced when dependencies are built.
