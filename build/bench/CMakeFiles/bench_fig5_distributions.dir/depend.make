# Empty dependencies file for bench_fig5_distributions.
# This may be replaced when dependencies are built.
