file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_freeze.dir/bench_ablation_freeze.cpp.o"
  "CMakeFiles/bench_ablation_freeze.dir/bench_ablation_freeze.cpp.o.d"
  "bench_ablation_freeze"
  "bench_ablation_freeze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_freeze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
