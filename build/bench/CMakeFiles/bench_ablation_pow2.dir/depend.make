# Empty dependencies file for bench_ablation_pow2.
# This may be replaced when dependencies are built.
