file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pow2.dir/bench_ablation_pow2.cpp.o"
  "CMakeFiles/bench_ablation_pow2.dir/bench_ablation_pow2.cpp.o.d"
  "bench_ablation_pow2"
  "bench_ablation_pow2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pow2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
