file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_mobilenet.dir/bench_table1_mobilenet.cpp.o"
  "CMakeFiles/bench_table1_mobilenet.dir/bench_table1_mobilenet.cpp.o.d"
  "bench_table1_mobilenet"
  "bench_table1_mobilenet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_mobilenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
