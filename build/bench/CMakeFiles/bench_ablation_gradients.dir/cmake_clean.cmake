file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_gradients.dir/bench_ablation_gradients.cpp.o"
  "CMakeFiles/bench_ablation_gradients.dir/bench_ablation_gradients.cpp.o.d"
  "bench_ablation_gradients"
  "bench_ablation_gradients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gradients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
