# Empty compiler generated dependencies file for bench_ablation_gradients.
# This may be replaced when dependencies are built.
