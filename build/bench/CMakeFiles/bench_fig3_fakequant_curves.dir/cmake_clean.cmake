file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_fakequant_curves.dir/bench_fig3_fakequant_curves.cpp.o"
  "CMakeFiles/bench_fig3_fakequant_curves.dir/bench_fig3_fakequant_curves.cpp.o.d"
  "bench_fig3_fakequant_curves"
  "bench_fig3_fakequant_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_fakequant_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
