file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_threshold_deviations.dir/bench_fig6_threshold_deviations.cpp.o"
  "CMakeFiles/bench_fig6_threshold_deviations.dir/bench_fig6_threshold_deviations.cpp.o.d"
  "bench_fig6_threshold_deviations"
  "bench_fig6_threshold_deviations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_threshold_deviations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
