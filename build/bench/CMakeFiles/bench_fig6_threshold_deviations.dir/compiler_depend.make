# Empty compiler generated dependencies file for bench_fig6_threshold_deviations.
# This may be replaced when dependencies are built.
