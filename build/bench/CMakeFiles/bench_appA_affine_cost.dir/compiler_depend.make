# Empty compiler generated dependencies file for bench_appA_affine_cost.
# This may be replaced when dependencies are built.
