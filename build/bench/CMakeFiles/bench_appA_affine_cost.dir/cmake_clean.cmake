file(REMOVE_RECURSE
  "CMakeFiles/bench_appA_affine_cost.dir/bench_appA_affine_cost.cpp.o"
  "CMakeFiles/bench_appA_affine_cost.dir/bench_appA_affine_cost.cpp.o.d"
  "bench_appA_affine_cost"
  "bench_appA_affine_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appA_affine_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
