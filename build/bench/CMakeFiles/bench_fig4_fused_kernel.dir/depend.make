# Empty dependencies file for bench_fig4_fused_kernel.
# This may be replaced when dependencies are built.
