# Empty dependencies file for bench_fig9_adam_oscillation.
# This may be replaced when dependencies are built.
