file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_adam_oscillation.dir/bench_fig9_adam_oscillation.cpp.o"
  "CMakeFiles/bench_fig9_adam_oscillation.dir/bench_fig9_adam_oscillation.cpp.o.d"
  "bench_fig9_adam_oscillation"
  "bench_fig9_adam_oscillation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_adam_oscillation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
