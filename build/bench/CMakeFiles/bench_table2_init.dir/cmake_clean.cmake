file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_init.dir/bench_table2_init.cpp.o"
  "CMakeFiles/bench_table2_init.dir/bench_table2_init.cpp.o.d"
  "bench_table2_init"
  "bench_table2_init.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_init.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
