# Empty compiler generated dependencies file for bench_fig2_range_precision.
# This may be replaced when dependencies are built.
