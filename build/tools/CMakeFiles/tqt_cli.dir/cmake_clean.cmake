file(REMOVE_RECURSE
  "CMakeFiles/tqt_cli.dir/tqt_cli.cpp.o"
  "CMakeFiles/tqt_cli.dir/tqt_cli.cpp.o.d"
  "tqt_cli"
  "tqt_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tqt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
