# Empty dependencies file for tqt_cli.
# This may be replaced when dependencies are built.
