# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_quant[1]_include.cmake")
include("/root/repo/build/tests/test_data_models[1]_include.cmake")
include("/root/repo/build/tests/test_transforms[1]_include.cmake")
include("/root/repo/build/tests/test_quantize_pass[1]_include.cmake")
include("/root/repo/build/tests/test_fixedpoint[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_engine_units[1]_include.cmake")
include("/root/repo/build/tests/test_asymmetric[1]_include.cmake")
include("/root/repo/build/tests/test_train[1]_include.cmake")
