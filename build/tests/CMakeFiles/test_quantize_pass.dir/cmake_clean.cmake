file(REMOVE_RECURSE
  "CMakeFiles/test_quantize_pass.dir/test_quantize_pass.cpp.o"
  "CMakeFiles/test_quantize_pass.dir/test_quantize_pass.cpp.o.d"
  "test_quantize_pass"
  "test_quantize_pass.pdb"
  "test_quantize_pass[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quantize_pass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
