# Empty dependencies file for test_quantize_pass.
# This may be replaced when dependencies are built.
