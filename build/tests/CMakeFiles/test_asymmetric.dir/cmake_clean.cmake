file(REMOVE_RECURSE
  "CMakeFiles/test_asymmetric.dir/test_asymmetric.cpp.o"
  "CMakeFiles/test_asymmetric.dir/test_asymmetric.cpp.o.d"
  "test_asymmetric"
  "test_asymmetric.pdb"
  "test_asymmetric[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asymmetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
