file(REMOVE_RECURSE
  "CMakeFiles/test_data_models.dir/test_data_models.cpp.o"
  "CMakeFiles/test_data_models.dir/test_data_models.cpp.o.d"
  "test_data_models"
  "test_data_models.pdb"
  "test_data_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
