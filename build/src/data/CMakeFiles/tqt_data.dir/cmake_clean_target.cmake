file(REMOVE_RECURSE
  "libtqt_data.a"
)
