# Empty dependencies file for tqt_data.
# This may be replaced when dependencies are built.
