file(REMOVE_RECURSE
  "CMakeFiles/tqt_data.dir/synthetic.cpp.o"
  "CMakeFiles/tqt_data.dir/synthetic.cpp.o.d"
  "libtqt_data.a"
  "libtqt_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tqt_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
