file(REMOVE_RECURSE
  "libtqt_nn.a"
)
