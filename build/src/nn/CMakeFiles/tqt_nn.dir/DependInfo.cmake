
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/dot.cpp" "src/nn/CMakeFiles/tqt_nn.dir/dot.cpp.o" "gcc" "src/nn/CMakeFiles/tqt_nn.dir/dot.cpp.o.d"
  "/root/repo/src/nn/graph.cpp" "src/nn/CMakeFiles/tqt_nn.dir/graph.cpp.o" "gcc" "src/nn/CMakeFiles/tqt_nn.dir/graph.cpp.o.d"
  "/root/repo/src/nn/ops_basic.cpp" "src/nn/CMakeFiles/tqt_nn.dir/ops_basic.cpp.o" "gcc" "src/nn/CMakeFiles/tqt_nn.dir/ops_basic.cpp.o.d"
  "/root/repo/src/nn/ops_conv.cpp" "src/nn/CMakeFiles/tqt_nn.dir/ops_conv.cpp.o" "gcc" "src/nn/CMakeFiles/tqt_nn.dir/ops_conv.cpp.o.d"
  "/root/repo/src/nn/ops_loss.cpp" "src/nn/CMakeFiles/tqt_nn.dir/ops_loss.cpp.o" "gcc" "src/nn/CMakeFiles/tqt_nn.dir/ops_loss.cpp.o.d"
  "/root/repo/src/nn/ops_norm.cpp" "src/nn/CMakeFiles/tqt_nn.dir/ops_norm.cpp.o" "gcc" "src/nn/CMakeFiles/tqt_nn.dir/ops_norm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/tqt_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
