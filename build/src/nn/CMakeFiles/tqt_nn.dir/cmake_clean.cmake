file(REMOVE_RECURSE
  "CMakeFiles/tqt_nn.dir/dot.cpp.o"
  "CMakeFiles/tqt_nn.dir/dot.cpp.o.d"
  "CMakeFiles/tqt_nn.dir/graph.cpp.o"
  "CMakeFiles/tqt_nn.dir/graph.cpp.o.d"
  "CMakeFiles/tqt_nn.dir/ops_basic.cpp.o"
  "CMakeFiles/tqt_nn.dir/ops_basic.cpp.o.d"
  "CMakeFiles/tqt_nn.dir/ops_conv.cpp.o"
  "CMakeFiles/tqt_nn.dir/ops_conv.cpp.o.d"
  "CMakeFiles/tqt_nn.dir/ops_loss.cpp.o"
  "CMakeFiles/tqt_nn.dir/ops_loss.cpp.o.d"
  "CMakeFiles/tqt_nn.dir/ops_norm.cpp.o"
  "CMakeFiles/tqt_nn.dir/ops_norm.cpp.o.d"
  "libtqt_nn.a"
  "libtqt_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tqt_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
