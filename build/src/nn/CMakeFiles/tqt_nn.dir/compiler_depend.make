# Empty compiler generated dependencies file for tqt_nn.
# This may be replaced when dependencies are built.
