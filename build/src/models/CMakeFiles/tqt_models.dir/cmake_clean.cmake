file(REMOVE_RECURSE
  "CMakeFiles/tqt_models.dir/builder.cpp.o"
  "CMakeFiles/tqt_models.dir/builder.cpp.o.d"
  "CMakeFiles/tqt_models.dir/zoo.cpp.o"
  "CMakeFiles/tqt_models.dir/zoo.cpp.o.d"
  "libtqt_models.a"
  "libtqt_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tqt_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
