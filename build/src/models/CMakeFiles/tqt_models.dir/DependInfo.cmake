
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/builder.cpp" "src/models/CMakeFiles/tqt_models.dir/builder.cpp.o" "gcc" "src/models/CMakeFiles/tqt_models.dir/builder.cpp.o.d"
  "/root/repo/src/models/zoo.cpp" "src/models/CMakeFiles/tqt_models.dir/zoo.cpp.o" "gcc" "src/models/CMakeFiles/tqt_models.dir/zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/tqt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tqt_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
