file(REMOVE_RECURSE
  "libtqt_models.a"
)
