# Empty dependencies file for tqt_models.
# This may be replaced when dependencies are built.
