file(REMOVE_RECURSE
  "CMakeFiles/tqt_graph_opt.dir/quantize_pass.cpp.o"
  "CMakeFiles/tqt_graph_opt.dir/quantize_pass.cpp.o.d"
  "CMakeFiles/tqt_graph_opt.dir/transforms.cpp.o"
  "CMakeFiles/tqt_graph_opt.dir/transforms.cpp.o.d"
  "libtqt_graph_opt.a"
  "libtqt_graph_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tqt_graph_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
