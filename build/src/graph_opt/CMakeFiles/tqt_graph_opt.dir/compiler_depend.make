# Empty compiler generated dependencies file for tqt_graph_opt.
# This may be replaced when dependencies are built.
