file(REMOVE_RECURSE
  "libtqt_graph_opt.a"
)
