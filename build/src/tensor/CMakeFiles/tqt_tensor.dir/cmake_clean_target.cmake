file(REMOVE_RECURSE
  "libtqt_tensor.a"
)
