file(REMOVE_RECURSE
  "CMakeFiles/tqt_tensor.dir/ops.cpp.o"
  "CMakeFiles/tqt_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/tqt_tensor.dir/rng.cpp.o"
  "CMakeFiles/tqt_tensor.dir/rng.cpp.o.d"
  "CMakeFiles/tqt_tensor.dir/serialize.cpp.o"
  "CMakeFiles/tqt_tensor.dir/serialize.cpp.o.d"
  "CMakeFiles/tqt_tensor.dir/tensor.cpp.o"
  "CMakeFiles/tqt_tensor.dir/tensor.cpp.o.d"
  "libtqt_tensor.a"
  "libtqt_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tqt_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
