# Empty compiler generated dependencies file for tqt_tensor.
# This may be replaced when dependencies are built.
