# Empty dependencies file for tqt_opt.
# This may be replaced when dependencies are built.
