file(REMOVE_RECURSE
  "libtqt_opt.a"
)
