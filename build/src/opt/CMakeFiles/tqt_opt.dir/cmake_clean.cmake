file(REMOVE_RECURSE
  "CMakeFiles/tqt_opt.dir/optimizer.cpp.o"
  "CMakeFiles/tqt_opt.dir/optimizer.cpp.o.d"
  "libtqt_opt.a"
  "libtqt_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tqt_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
