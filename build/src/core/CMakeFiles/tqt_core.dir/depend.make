# Empty dependencies file for tqt_core.
# This may be replaced when dependencies are built.
