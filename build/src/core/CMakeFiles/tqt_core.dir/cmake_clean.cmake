file(REMOVE_RECURSE
  "CMakeFiles/tqt_core.dir/metrics.cpp.o"
  "CMakeFiles/tqt_core.dir/metrics.cpp.o.d"
  "CMakeFiles/tqt_core.dir/pipeline.cpp.o"
  "CMakeFiles/tqt_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/tqt_core.dir/train.cpp.o"
  "CMakeFiles/tqt_core.dir/train.cpp.o.d"
  "libtqt_core.a"
  "libtqt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tqt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
