
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/tqt_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/tqt_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/tqt_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/tqt_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/train.cpp" "src/core/CMakeFiles/tqt_core.dir/train.cpp.o" "gcc" "src/core/CMakeFiles/tqt_core.dir/train.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/tqt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/tqt_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/tqt_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/graph_opt/CMakeFiles/tqt_graph_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/tqt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/tqt_models.dir/DependInfo.cmake"
  "/root/repo/build/src/fixedpoint/CMakeFiles/tqt_fixedpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tqt_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
