file(REMOVE_RECURSE
  "libtqt_core.a"
)
