file(REMOVE_RECURSE
  "CMakeFiles/tqt_fixedpoint.dir/engine.cpp.o"
  "CMakeFiles/tqt_fixedpoint.dir/engine.cpp.o.d"
  "CMakeFiles/tqt_fixedpoint.dir/serialize_program.cpp.o"
  "CMakeFiles/tqt_fixedpoint.dir/serialize_program.cpp.o.d"
  "libtqt_fixedpoint.a"
  "libtqt_fixedpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tqt_fixedpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
