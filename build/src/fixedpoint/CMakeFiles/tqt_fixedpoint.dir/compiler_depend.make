# Empty compiler generated dependencies file for tqt_fixedpoint.
# This may be replaced when dependencies are built.
