file(REMOVE_RECURSE
  "libtqt_fixedpoint.a"
)
