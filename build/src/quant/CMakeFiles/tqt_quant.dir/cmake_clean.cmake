file(REMOVE_RECURSE
  "CMakeFiles/tqt_quant.dir/asymmetric.cpp.o"
  "CMakeFiles/tqt_quant.dir/asymmetric.cpp.o.d"
  "CMakeFiles/tqt_quant.dir/calibrate.cpp.o"
  "CMakeFiles/tqt_quant.dir/calibrate.cpp.o.d"
  "CMakeFiles/tqt_quant.dir/fake_quant.cpp.o"
  "CMakeFiles/tqt_quant.dir/fake_quant.cpp.o.d"
  "CMakeFiles/tqt_quant.dir/freeze.cpp.o"
  "CMakeFiles/tqt_quant.dir/freeze.cpp.o.d"
  "CMakeFiles/tqt_quant.dir/toy_model.cpp.o"
  "CMakeFiles/tqt_quant.dir/toy_model.cpp.o.d"
  "CMakeFiles/tqt_quant.dir/unfused.cpp.o"
  "CMakeFiles/tqt_quant.dir/unfused.cpp.o.d"
  "libtqt_quant.a"
  "libtqt_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tqt_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
