
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quant/asymmetric.cpp" "src/quant/CMakeFiles/tqt_quant.dir/asymmetric.cpp.o" "gcc" "src/quant/CMakeFiles/tqt_quant.dir/asymmetric.cpp.o.d"
  "/root/repo/src/quant/calibrate.cpp" "src/quant/CMakeFiles/tqt_quant.dir/calibrate.cpp.o" "gcc" "src/quant/CMakeFiles/tqt_quant.dir/calibrate.cpp.o.d"
  "/root/repo/src/quant/fake_quant.cpp" "src/quant/CMakeFiles/tqt_quant.dir/fake_quant.cpp.o" "gcc" "src/quant/CMakeFiles/tqt_quant.dir/fake_quant.cpp.o.d"
  "/root/repo/src/quant/freeze.cpp" "src/quant/CMakeFiles/tqt_quant.dir/freeze.cpp.o" "gcc" "src/quant/CMakeFiles/tqt_quant.dir/freeze.cpp.o.d"
  "/root/repo/src/quant/toy_model.cpp" "src/quant/CMakeFiles/tqt_quant.dir/toy_model.cpp.o" "gcc" "src/quant/CMakeFiles/tqt_quant.dir/toy_model.cpp.o.d"
  "/root/repo/src/quant/unfused.cpp" "src/quant/CMakeFiles/tqt_quant.dir/unfused.cpp.o" "gcc" "src/quant/CMakeFiles/tqt_quant.dir/unfused.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/tqt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/tqt_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tqt_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
