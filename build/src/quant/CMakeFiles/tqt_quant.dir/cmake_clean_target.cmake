file(REMOVE_RECURSE
  "libtqt_quant.a"
)
