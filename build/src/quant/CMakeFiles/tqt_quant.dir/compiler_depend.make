# Empty compiler generated dependencies file for tqt_quant.
# This may be replaced when dependencies are built.
