file(REMOVE_RECURSE
  "CMakeFiles/calibration_compare.dir/calibration_compare.cpp.o"
  "CMakeFiles/calibration_compare.dir/calibration_compare.cpp.o.d"
  "calibration_compare"
  "calibration_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibration_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
