# Empty dependencies file for calibration_compare.
# This may be replaced when dependencies are built.
