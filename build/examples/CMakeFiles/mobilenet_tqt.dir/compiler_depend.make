# Empty compiler generated dependencies file for mobilenet_tqt.
# This may be replaced when dependencies are built.
