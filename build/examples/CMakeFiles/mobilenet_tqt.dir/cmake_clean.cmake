file(REMOVE_RECURSE
  "CMakeFiles/mobilenet_tqt.dir/mobilenet_tqt.cpp.o"
  "CMakeFiles/mobilenet_tqt.dir/mobilenet_tqt.cpp.o.d"
  "mobilenet_tqt"
  "mobilenet_tqt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobilenet_tqt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
