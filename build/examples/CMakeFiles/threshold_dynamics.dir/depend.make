# Empty dependencies file for threshold_dynamics.
# This may be replaced when dependencies are built.
