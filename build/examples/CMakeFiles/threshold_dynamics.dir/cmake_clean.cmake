file(REMOVE_RECURSE
  "CMakeFiles/threshold_dynamics.dir/threshold_dynamics.cpp.o"
  "CMakeFiles/threshold_dynamics.dir/threshold_dynamics.cpp.o.d"
  "threshold_dynamics"
  "threshold_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
