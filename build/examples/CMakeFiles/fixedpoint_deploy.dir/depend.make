# Empty dependencies file for fixedpoint_deploy.
# This may be replaced when dependencies are built.
