file(REMOVE_RECURSE
  "CMakeFiles/fixedpoint_deploy.dir/fixedpoint_deploy.cpp.o"
  "CMakeFiles/fixedpoint_deploy.dir/fixedpoint_deploy.cpp.o.d"
  "fixedpoint_deploy"
  "fixedpoint_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixedpoint_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
