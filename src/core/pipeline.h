// End-to-end experiment pipeline: pretrain (with on-disk caching) ->
// optimize/fold -> quantize -> calibrate -> static eval or retrain ->
// evaluate / export. This is the API every table/figure benchmark uses.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "core/train.h"
#include "graph_opt/quantize_pass.h"
#include "models/zoo.h"

namespace tqt {

struct PretrainConfig {
  float epochs = 14.0f;
  float lr = 2e-3f;
  int64_t batch_size = 32;
  uint64_t seed = 7;
};

/// FP32-pretrain a model (or load it from `cache_dir` when available) and
/// return its parameter state. The cache key includes the model name.
std::map<std::string, Tensor> load_or_pretrain(ModelKind kind, const SyntheticImageDataset& data,
                                               const std::string& cache_dir,
                                               const PretrainConfig& cfg = {});

/// The retrain flavours of Table 3.
enum class TrialMode {
  kStatic,       ///< calibrate-only (no retraining)
  kRetrainWt,    ///< retrain weights, thresholds fixed at calibration
  kRetrainWtTh,  ///< TQT: retrain weights and thresholds jointly
};

struct QuantTrialConfig {
  QuantizeConfig quant;
  TrialMode mode = TrialMode::kRetrainWtTh;
  /// Weight-threshold init; defaults follow paper Table 2 (MAX for static /
  /// wt-only, 3SD for wt+th).
  std::optional<WeightInit> weight_init;
  TrainSchedule schedule;
  int64_t calib_images = 50;
  uint64_t calib_seed = 50;
};

/// Everything a benchmark needs after a trial: metrics plus the live
/// quantized graph for inspection/export.
struct TrialOutput {
  Accuracy accuracy;
  float best_epoch = 0.0f;
  TrainResult train;       ///< empty for static trials
  BuiltModel model;        ///< the quantized graph (BN-folded)
  QuantizePassResult qres;
  /// log2-threshold values right after calibration (before any retraining),
  /// keyed by threshold parameter name — the "initial thresholds" of the
  /// paper's Figures 5/6/10.
  std::map<std::string, float> initial_log2_thresholds;
};

/// Build the quantized graph from pretrained FP32 state, calibrate, and
/// (optionally) retrain. Always starts from the pretrained FP32 weights
/// (§5.3: INT8/INT4 runs are never initialized from retrained FP32 weights).
TrialOutput run_quant_trial(ModelKind kind, const std::map<std::string, Tensor>& pretrained,
                            const SyntheticImageDataset& data, const QuantTrialConfig& cfg);

/// Rebuild the model, load FP32 weights, fold BN / rewrite pools — the graph
/// every quantized trial starts from. Exposed for the online calibration
/// service (src/calib), which owns such a graph for the lifetime of a lane.
BuiltModel build_folded(ModelKind kind, const std::map<std::string, Tensor>& pretrained,
                        const SyntheticImageDataset& data);

/// FP32 baseline accuracy of the pretrained state.
Accuracy eval_fp32(ModelKind kind, const std::map<std::string, Tensor>& pretrained,
                   const SyntheticImageDataset& data);

/// FP32 wt-only retraining with the same procedure as quantized retraining
/// (the "fair baseline" rows of Table 3): runs on the folded graph with all
/// quantizers disabled.
TrialOutput run_fp32_retrain(ModelKind kind, const std::map<std::string, Tensor>& pretrained,
                             const SyntheticImageDataset& data, const TrainSchedule& sched);

/// The paper's retrain schedule scaled to this library's mini workloads.
TrainSchedule default_retrain_schedule(float epochs = 3.0f);

/// Dataset used across all benchmarks (fixed seed for reproducibility).
DatasetConfig default_dataset_config();

}  // namespace tqt
