#include "core/pipeline.h"

#include <cstdio>
#include <filesystem>

#include "graph_opt/transforms.h"
#include "tensor/serialize.h"

namespace tqt {

DatasetConfig default_dataset_config() {
  DatasetConfig cfg;
  cfg.num_classes = 10;
  cfg.image_size = 16;
  cfg.channels = 3;
  cfg.train_size = 1024;
  cfg.val_size = 512;
  cfg.noise = 0.7f;
  cfg.seed = 2020;
  return cfg;
}

TrainSchedule default_retrain_schedule(float epochs) {
  // Paper §5.2 scaled down: Adam(0.9, 0.999), exponential staircase decay,
  // thresholds at a much larger learning rate than the (pretrained) weights;
  // BN is already folded so no BN schedule applies. Steps are scaled from the
  // paper's 1000-3000-step periods to this library's ~64-step epochs.
  TrainSchedule s;
  s.batch_size = 32;
  s.epochs = epochs;
  // The paper fine-tunes pretrained weights at a tiny rate (1e-6) relative to
  // thresholds (1e-2); scaled to our mini nets that ratio is what prevents
  // wt-only retraining from simply rebalancing per-channel ranges.
  s.weight_lr = LrSchedule{2e-5f, 0.94f, 96, true};
  // Thresholds: lr 1e-2 halved every 1000*(24/N) steps (N=32 -> 750), per
  // the paper; our runs are a few hundred steps, so the decay rarely bites
  // and thresholds keep a multi-bin movement budget.
  s.threshold_lr = LrSchedule{1e-2f, 0.5f, 750, true};
  s.validate_every = 16;
  s.threshold_freeze_start = 250;
  s.threshold_freeze_interval = 8;
  s.seed = 7;
  return s;
}

std::map<std::string, Tensor> load_or_pretrain(ModelKind kind, const SyntheticImageDataset& data,
                                               const std::string& cache_dir,
                                               const PretrainConfig& cfg) {
  std::filesystem::path path;
  if (!cache_dir.empty()) {
    std::filesystem::create_directories(cache_dir);
    path = std::filesystem::path(cache_dir) / (model_name(kind) + "_fp32.tqt");
    if (std::filesystem::exists(path)) {
      if (is_tensor_file(path.string())) {
        try {
          return load_tensors(path.string());
        } catch (const std::exception& e) {
          // A stale or damaged cache entry must not wedge the pipeline: warn,
          // re-pretrain, and overwrite it below.
          std::fprintf(stderr, "warning: ignoring unreadable weight cache %s (%s)\n",
                       path.string().c_str(), e.what());
        }
      } else {
        // Wrong magic is a different failure than a truncated tensor stream:
        // the file is not (or no longer) a tensor cache at all. Say so
        // explicitly before overwriting it.
        std::fprintf(stderr, "warning: weight cache %s is corrupt (not a tensor file); re-pretraining\n",
                     path.string().c_str());
      }
    }
  }
  BuiltModel m = build_model(kind, data.config().num_classes);
  TrainSchedule sched;
  sched.batch_size = cfg.batch_size;
  sched.epochs = cfg.epochs;
  sched.weight_lr = LrSchedule{cfg.lr, 0.8f, 4 * std::max<int64_t>(1, data.train_size() / cfg.batch_size), true};
  sched.threshold_lr = sched.weight_lr;  // no thresholds exist yet
  sched.validate_every = 2 * std::max<int64_t>(1, data.train_size() / cfg.batch_size);
  // Freeze BN statistics for the last quarter of pretraining so the folded
  // moving statistics match what training saw (paper §4.1 practice (c)).
  sched.bn_freeze_after_steps = static_cast<int64_t>(
      0.75f * cfg.epochs * static_cast<float>(data.train_size() / cfg.batch_size));
  sched.seed = cfg.seed;
  train_graph(m.graph, m.input, m.logits, data, sched);
  auto state = m.graph.state_dict();
  if (!path.empty()) save_tensors(path.string(), state);
  return state;
}

BuiltModel build_folded(ModelKind kind, const std::map<std::string, Tensor>& pretrained,
                        const SyntheticImageDataset& data) {
  BuiltModel m = build_model(kind, data.config().num_classes);
  m.graph.load_state_dict(pretrained);
  const Tensor sample = data.calibration_batch(2, 1);
  m.graph.set_training(false);
  optimize_for_quantization(m.graph, m.input, sample);
  return m;
}

Accuracy eval_fp32(ModelKind kind, const std::map<std::string, Tensor>& pretrained,
                   const SyntheticImageDataset& data) {
  BuiltModel m = build_model(kind, data.config().num_classes);
  m.graph.load_state_dict(pretrained);
  return evaluate_graph(m.graph, m.input, m.logits, data);
}

TrialOutput run_quant_trial(ModelKind kind, const std::map<std::string, Tensor>& pretrained,
                            const SyntheticImageDataset& data, const QuantTrialConfig& cfg) {
  TrialOutput out;
  out.model = build_folded(kind, pretrained, data);
  Graph& g = out.model.graph;

  QuantizeConfig qc = cfg.quant;
  qc.trainable_thresholds = cfg.mode == TrialMode::kRetrainWtTh;
  out.qres = quantize_pass(g, out.model.input, out.model.logits, qc);

  const WeightInit winit = cfg.weight_init.value_or(
      cfg.mode == TrialMode::kRetrainWtTh ? WeightInit::k3Sd : WeightInit::kMax);
  const Tensor calib = data.calibration_batch(cfg.calib_images, cfg.calib_seed);
  calibrate_thresholds(g, out.qres, out.model.input, calib, winit);
  for (const auto& th : threshold_params(g, out.qres)) {
    if (th->value.numel() == 1) out.initial_log2_thresholds[th->name] = th->value[0];
  }

  if (cfg.mode == TrialMode::kStatic) {
    out.accuracy = evaluate_graph(g, out.model.input, out.qres.quantized_output, data);
    return out;
  }

  TrainSchedule sched = cfg.schedule;
  if (cfg.mode == TrialMode::kRetrainWt) sched.threshold_freeze_start = -1;  // nothing to freeze
  out.train = train_graph(g, out.model.input, out.qres.quantized_output, data, sched);
  out.accuracy = evaluate_graph(g, out.model.input, out.qres.quantized_output, data);
  out.best_epoch = out.train.best_epoch;
  return out;
}

TrialOutput run_fp32_retrain(ModelKind kind, const std::map<std::string, Tensor>& pretrained,
                             const SyntheticImageDataset& data, const TrainSchedule& sched) {
  TrialOutput out;
  out.model = build_folded(kind, pretrained, data);
  Graph& g = out.model.graph;
  // Same graph surgery as the quantized runs, but all quantizers disabled:
  // an FP32 network trained with the identical procedure (Table 3's "wt FP32"
  // rows exist exactly to isolate the training setup from quantization).
  QuantizeConfig qc;
  qc.trainable_thresholds = false;
  out.qres = quantize_pass(g, out.model.input, out.model.logits, qc);
  const Tensor calib = data.calibration_batch(8, 1);
  calibrate_thresholds(g, out.qres, out.model.input, calib, WeightInit::kMax);
  set_quantizers_enabled(g, false);
  out.train = train_graph(g, out.model.input, out.qres.quantized_output, data, sched);
  out.accuracy = evaluate_graph(g, out.model.input, out.qres.quantized_output, data);
  out.best_epoch = out.train.best_epoch;
  return out;
}

}  // namespace tqt
