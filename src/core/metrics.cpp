#include "core/metrics.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace tqt {

void accumulate_topk(const Tensor& logits, const Tensor& labels, Accuracy& acc) {
  if (logits.rank() != 2 || labels.rank() != 1 || logits.dim(0) != labels.dim(0)) {
    throw std::invalid_argument("accumulate_topk: need logits [N,K], labels [N]");
  }
  const int64_t n = logits.dim(0), k = logits.dim(1);
  const int64_t top_n = std::min<int64_t>(5, k);
  std::vector<int64_t> idx(static_cast<size_t>(k));
  for (int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * k;
    const int64_t y = static_cast<int64_t>(labels[i]);
    for (int64_t j = 0; j < k; ++j) idx[static_cast<size_t>(j)] = j;
    std::partial_sort(idx.begin(), idx.begin() + top_n, idx.end(),
                      [row](int64_t a, int64_t b) { return row[a] > row[b]; });
    if (idx[0] == y) ++acc.correct1;
    for (int64_t j = 0; j < top_n; ++j) {
      if (idx[static_cast<size_t>(j)] == y) {
        ++acc.correct5;
        break;
      }
    }
    ++acc.count;
  }
}

}  // namespace tqt
