// Classification metrics: running top-1 / top-5 accuracy. These are pure
// evaluation computations; process-wide telemetry (counters, gauges,
// histograms, trace spans) lives in observe/observe.h.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace tqt {

struct Accuracy {
  int64_t correct1 = 0;
  int64_t correct5 = 0;
  int64_t count = 0;

  double top1() const { return count ? static_cast<double>(correct1) / count : 0.0; }
  double top5() const { return count ? static_cast<double>(correct5) / count : 0.0; }
};

/// Accumulate top-1/top-5 hits from a batch of logits [N,K] and labels [N].
void accumulate_topk(const Tensor& logits, const Tensor& labels, Accuracy& acc);

}  // namespace tqt
