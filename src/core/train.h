// Training and evaluation loops shared by pretraining, quantized retraining
// and the experiment pipeline. Mirrors the paper's recipe (§5.2): Adam for
// both weights and thresholds with separate exponential-staircase schedules,
// BN statistic freezing after an initial phase, incremental threshold
// freezing, and periodic validation with best-checkpoint tracking
// (Appendix D discusses the best-vs-mean validation bias).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "data/synthetic.h"
#include "nn/graph.h"
#include "opt/optimizer.h"

namespace tqt {

namespace observe {
class MetricsRegistry;
}  // namespace observe

struct TrainSchedule {
  int64_t batch_size = 32;
  float epochs = 3.0f;
  LrSchedule weight_lr = LrSchedule::constant(1e-3f);
  LrSchedule threshold_lr = LrSchedule::constant(1e-2f);
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  /// Validate every N steps (0 = only at the end). Best checkpoint kept.
  int64_t validate_every = 32;
  /// Freeze BN moving statistics after this many steps (-1 = never).
  int64_t bn_freeze_after_steps = -1;
  /// Incremental threshold freezing (§5.2); -1 disables.
  int64_t threshold_freeze_start = -1;
  int64_t threshold_freeze_interval = 50;
  uint64_t seed = 7;
  /// Restore the best checkpoint into the graph after training.
  bool restore_best = true;
  /// Optional observer invoked after every optimizer step (threshold
  /// trajectory recording for Figure 6, custom logging, ...).
  std::function<void(int64_t step)> on_step;
  /// Optional metrics sink: when set, the loop appends per-step series
  /// ("train.loss", "train.weight_lr", "train.threshold_lr",
  /// "train.log2t_norm") and counts "train.steps" — the paper-style
  /// convergence dump (Fig. 8/9 oscillation analysis) without a custom
  /// on_step hook. Pass &observe::MetricsRegistry::global() or a private
  /// registry; null disables.
  observe::MetricsRegistry* metrics = nullptr;
};

struct TrainResult {
  double best_top1 = 0.0;
  double best_top5 = 0.0;
  float best_epoch = 0.0f;  ///< epoch at which the best checkpoint occurred
  std::vector<double> val_top1_history;
  std::vector<float> val_epoch_history;
  double final_loss = 0.0;
  int64_t steps = 0;
};

/// Top-1/top-5 over the full validation split. Runs in eval mode and
/// restores the graph's previous mode.
Accuracy evaluate_graph(Graph& g, NodeId input, NodeId output, const SyntheticImageDataset& data,
                        int64_t batch = 64);

/// Train with softmax cross-entropy on `output` (adds labels/loss nodes on
/// first use, reusing them if already present). Which parameters train is
/// controlled by their `trainable` flags — set thresholds non-trainable for
/// wt-only retraining.
TrainResult train_graph(Graph& g, NodeId input, NodeId output, const SyntheticImageDataset& data,
                        const TrainSchedule& sched);

}  // namespace tqt
