#include "core/train.h"

#include <algorithm>
#include <cmath>

#include "nn/ops_basic.h"
#include "nn/ops_loss.h"
#include "nn/ops_norm.h"
#include "observe/observe.h"
#include "quant/freeze.h"

namespace tqt {

Accuracy evaluate_graph(Graph& g, NodeId input, NodeId output, const SyntheticImageDataset& data,
                        int64_t batch) {
  g.set_training(false);
  Accuracy acc;
  const int64_t n = data.val_size();
  for (int64_t first = 0; first < n; first += batch) {
    const int64_t count = std::min(batch, n - first);
    Batch b = data.val_batch(first, count);
    Tensor logits = g.run({{input, b.images}}, output);
    accumulate_topk(logits, b.labels, acc);
  }
  return acc;
}

namespace {
/// Find-or-create the labels placeholder and loss node for `output`.
std::pair<NodeId, NodeId> loss_nodes(Graph& g, NodeId output) {
  const std::string loss_name = g.node(output).name + "/xent";
  const std::string labels_name = "labels";
  NodeId labels = g.find(labels_name);
  if (labels == kNoNode) labels = g.add(labels_name, std::make_unique<InputOp>());
  NodeId loss = g.find(loss_name);
  if (loss == kNoNode) {
    loss = g.add(loss_name, std::make_unique<SoftmaxCrossEntropyOp>(), {output, labels});
  }
  return {labels, loss};
}
}  // namespace

TrainResult train_graph(Graph& g, NodeId input, NodeId output, const SyntheticImageDataset& data,
                        const TrainSchedule& sched) {
  const auto [labels, loss] = loss_nodes(g, output);

  Adam opt(g.params(), sched.beta1, sched.beta2);
  opt.set_default_schedule(sched.weight_lr);
  opt.set_group_schedule("weight", sched.weight_lr);
  opt.set_group_schedule("bias", sched.weight_lr);
  opt.set_group_schedule("bn", sched.weight_lr);
  opt.set_group_schedule("threshold", sched.threshold_lr);

  // Thresholds that are currently trainable participate in the freezing
  // schedule (§5.2).
  std::vector<ParamPtr> live_thresholds;
  for (const auto& p : g.params()) {
    if (p->group == "threshold" && p->trainable && p->value.numel() == 1) {
      live_thresholds.push_back(p);
    }
  }
  std::unique_ptr<ThresholdFreezer> freezer;
  if (sched.threshold_freeze_start >= 0 && !live_thresholds.empty()) {
    freezer = std::make_unique<ThresholdFreezer>(live_thresholds, sched.threshold_freeze_start,
                                                 sched.threshold_freeze_interval);
  }

  std::vector<BatchNormOp*> bns;
  for (NodeId id : g.nodes_of_type("BatchNorm")) {
    bns.push_back(dynamic_cast<BatchNormOp*>(g.node(id).op.get()));
  }

  Rng rng(sched.seed);
  TrainResult res;
  const int64_t steps_per_epoch =
      std::max<int64_t>(1, data.train_size() / sched.batch_size);
  const int64_t total_steps =
      std::max<int64_t>(1, static_cast<int64_t>(std::lround(sched.epochs * steps_per_epoch)));

  std::map<std::string, Tensor> best_state;
  double best_top1 = -1.0;

  auto validate = [&](int64_t step) {
    const Accuracy acc = evaluate_graph(g, input, output, data);
    const float epoch = static_cast<float>(step + 1) / static_cast<float>(steps_per_epoch);
    res.val_top1_history.push_back(acc.top1());
    res.val_epoch_history.push_back(epoch);
    if (acc.top1() > best_top1) {
      best_top1 = acc.top1();
      res.best_top1 = acc.top1();
      res.best_top5 = acc.top5();
      res.best_epoch = epoch;
      best_state = g.state_dict();
    }
    g.set_training(true);
  };

  // Per-step convergence series (paper Fig. 8/9 style): loss, the two lr
  // staircases, and the L2 norm of the live log2-threshold vector, whose
  // flattening-out is the paper's threshold-convergence signal.
  observe::Series* loss_series = nullptr;
  observe::Series* wlr_series = nullptr;
  observe::Series* tlr_series = nullptr;
  observe::Series* log2t_series = nullptr;
  observe::Counter* steps_counter = nullptr;
  if (sched.metrics) {
    loss_series = &sched.metrics->series("train.loss");
    wlr_series = &sched.metrics->series("train.weight_lr");
    tlr_series = &sched.metrics->series("train.threshold_lr");
    log2t_series = &sched.metrics->series("train.log2t_norm");
    steps_counter = &sched.metrics->counter("train.steps");
  }

  g.set_training(true);
  std::vector<int64_t> order = data.epoch_order(rng);
  int64_t cursor = 0;
  for (int64_t step = 0; step < total_steps; ++step) {
    TQT_TRACE("train.step", "train");
    if (cursor + sched.batch_size > static_cast<int64_t>(order.size())) {
      order = data.epoch_order(rng);
      cursor = 0;
    }
    Batch b = data.train_batch(
        std::span(order.data() + cursor, static_cast<size_t>(sched.batch_size)));
    cursor += sched.batch_size;

    if (sched.bn_freeze_after_steps >= 0 && step == sched.bn_freeze_after_steps) {
      for (auto* bn : bns) bn->freeze_stats(true);
    }

    g.zero_grad();
    const Tensor l = g.run({{input, b.images}, {labels, b.labels}}, loss);
    res.final_loss = l.item();
    g.backward(loss);
    opt.step();
    if (freezer) freezer->observe(step);
    if (sched.metrics) {
      const auto s = static_cast<double>(step);
      loss_series->append(s, res.final_loss);
      wlr_series->append(s, sched.weight_lr.at(step));
      tlr_series->append(s, sched.threshold_lr.at(step));
      double sq = 0.0;
      for (const auto& p : live_thresholds) {
        const double v = p->value[0];
        sq += v * v;
      }
      log2t_series->append(s, std::sqrt(sq));
      steps_counter->inc();
    }
    if (sched.on_step) sched.on_step(step);

    if (sched.validate_every > 0 && (step + 1) % sched.validate_every == 0) validate(step);
  }
  if (res.val_top1_history.empty() || sched.validate_every <= 0 ||
      total_steps % sched.validate_every != 0) {
    validate(total_steps - 1);
  }
  res.steps = total_steps;

  if (sched.restore_best && !best_state.empty()) g.load_state_dict(best_state);
  return res;
}

}  // namespace tqt
