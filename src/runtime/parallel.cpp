#include "runtime/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "observe/observe.h"

namespace tqt {

namespace {

// Set while a pool worker executes chunks; nested parallel_for calls from a
// worker run inline instead of deadlocking on the (busy) pool.
thread_local bool tls_in_worker = false;

// Oversubscription is allowed (determinism tests run 8 threads on 1 core)
// but unbounded requests would hit thread-creation limits and abort.
constexpr int kMaxThreads = 256;

int default_thread_count() {
  if (const char* env = std::getenv("TQT_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n < kMaxThreads ? n : kMaxThreads;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

// Persistent pool. One job (parallel region) runs at a time; the caller and
// all workers pull chunk indices from a shared atomic counter. run() does not
// return until every worker has checked in for the job's generation, so no
// thread can touch job state after run() returns — workers only read job
// fields between observing the generation bump (under the mutex) and their
// check-in decrement.
class Pool {
 public:
  Pool() { spawn(default_thread_count()); }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_start_.notify_all();
    for (auto& t : workers_) t.join();
  }

  int size() const { return nthreads_; }

  void resize(int n) {
    std::lock_guard<std::mutex> run_lk(run_mu_);
    if (n <= 0) n = default_thread_count();
    if (n > kMaxThreads) n = kMaxThreads;
    if (n == nthreads_) return;
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_start_.notify_all();
    for (auto& t : workers_) t.join();
    workers_.clear();
    stop_ = false;
    spawn(n);
  }

  void run(int64_t begin, int64_t end, int64_t grain,
           const std::function<void(int64_t, int64_t)>& fn) {
    // Only genuinely parallel regions reach the pool (run_serial short-
    // circuits 1-thread/nested/single-chunk calls), so these hooks never
    // touch the engine's single-threaded zero-allocation path.
    static observe::Counter& regions_counter =
        observe::MetricsRegistry::global().counter("pool.regions");
    static observe::Counter& chunks_counter =
        observe::MetricsRegistry::global().counter("pool.chunks");
    std::lock_guard<std::mutex> run_lk(run_mu_);  // one region at a time
    regions_counter.inc();
    chunks_counter.inc(static_cast<uint64_t>(num_chunks(end - begin, grain)));
    observe::TraceSpan span("pool.region", "pool");
    span.argf("range=%lld chunks=%lld", static_cast<long long>(end - begin),
              static_cast<long long>(num_chunks(end - begin, grain)));
    job_begin_ = begin;
    job_end_ = end;
    job_chunk_ = grain;
    job_nchunks_ = num_chunks(end - begin, grain);
    job_fn_ = &fn;
    next_chunk_.store(0, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(mu_);
      error_ = nullptr;
      pending_ = static_cast<int>(workers_.size());
      ++generation_;
    }
    cv_start_.notify_all();
    work();  // the caller is a full participant
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_done_.wait(lk, [&] { return pending_ == 0; });
    }
    job_fn_ = nullptr;
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

 private:
  void spawn(int n) {
    nthreads_ = n;
    workers_.reserve(static_cast<size_t>(n - 1));
    // Capture the current generation as the worker's starting point: spawn
    // happens with run_mu_ effectively held (constructor or resize), so no
    // job can be posted concurrently, and any later job bumps generation_
    // past `gen0` — a fresh worker can never mistake a new job for seen.
    const uint64_t gen0 = generation_;
    for (int i = 0; i < n - 1; ++i) workers_.emplace_back([this, gen0] { worker_main(gen0); });
  }

  void work() {
    for (;;) {
      const int64_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
      if (c >= job_nchunks_) return;
      const int64_t lo = job_begin_ + c * job_chunk_;
      const int64_t hi = lo + job_chunk_ < job_end_ ? lo + job_chunk_ : job_end_;
      try {
        (*job_fn_)(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        if (!error_) error_ = std::current_exception();
      }
    }
  }

  void worker_main(uint64_t seen) {
    tls_in_worker = true;
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      cv_start_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      lk.unlock();
      {
        TQT_TRACE("pool.worker", "pool");
        work();
      }
      lk.lock();
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }

  std::mutex run_mu_;  // serializes parallel regions and resizes
  std::mutex mu_;
  std::condition_variable cv_start_, cv_done_;
  std::vector<std::thread> workers_;
  int nthreads_ = 1;
  uint64_t generation_ = 0;
  int pending_ = 0;
  bool stop_ = false;

  int64_t job_begin_ = 0, job_end_ = 0, job_chunk_ = 1, job_nchunks_ = 0;
  const std::function<void(int64_t, int64_t)>* job_fn_ = nullptr;
  std::atomic<int64_t> next_chunk_{0};
  std::exception_ptr error_;
};

Pool& pool() {
  static Pool p;
  return p;
}

}  // namespace

int num_threads() { return pool().size(); }

void set_num_threads(int n) { pool().resize(n); }

namespace detail {

// Serial fast paths: a one-thread pool, a nested call from a worker, or a
// single-chunk range. Chunk *boundaries* never depend on this choice —
// reductions iterate their chunks explicitly — so results are unchanged.
bool run_serial(int64_t range, int64_t grain) {
  return tls_in_worker || pool().size() == 1 || range <= grain;
}

void pool_run(int64_t begin, int64_t end, int64_t grain,
              const std::function<void(int64_t, int64_t)>& fn) {
  pool().run(begin, end, grain, fn);
}

}  // namespace detail

}  // namespace tqt
