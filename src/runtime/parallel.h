// Deterministic shared-memory parallel runtime.
//
// A single lazily-initialized persistent thread pool backs `parallel_for` and
// `parallel_reduce`. Sizing: the TQT_NUM_THREADS environment variable if set,
// otherwise std::thread::hardware_concurrency(); a pool of 1 runs everything
// inline on the caller (serial fallback, zero synchronization).
//
// Determinism contract
// --------------------
// The threshold gradient of TQT (Eq. 6/7 of the paper) is a full-tensor
// floating-point reduction; its value must not depend on how many threads
// happen to execute it, or `log2 t` trajectories and the golden tests become
// irreproducible. The runtime therefore guarantees:
//
//  * `parallel_for`: chunk boundaries are a pure function of (range, grain),
//    never of the pool size. Chunks may run on any thread in any order, so
//    bodies must write disjoint locations (elementwise maps, disjoint rows).
//  * `parallel_reduce`: one partial accumulator per chunk, chunk boundaries
//    again a function of (range, grain) only, and the partials are combined
//    by a fixed-order pairwise tree. The result is bit-identical at 1, 2,
//    and N threads (though not, in general, bit-identical to a single
//    running-accumulator loop — it is its own, stable, summation order).
//
// Exceptions thrown by chunk bodies are captured and rethrown on the calling
// thread after all chunks drain (first captured wins).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace tqt {

/// Current pool size (>= 1). Reads TQT_NUM_THREADS on first use.
int num_threads();

/// Resize the pool (joins and respawns workers). n <= 0 restores the default
/// (TQT_NUM_THREADS or hardware_concurrency). Must not be called while a
/// parallel region is executing; intended for benches/tests that sweep thread
/// counts, and safe to call at any thread count since results never depend on
/// the pool size.
void set_num_threads(int n);

/// Default grain for cheap elementwise loops: ~32k elements per chunk keeps
/// scheduling overhead < 1% while still splitting the >= 1M-element tensors
/// the training path actually sees.
inline constexpr int64_t kElementGrain = int64_t{1} << 15;

/// Target ops per chunk for the integer GEMM/conv kernels. Heavier than the
/// default grain_for target: a GEMM chunk streams a B slab from cache, so
/// fewer, larger chunks amortize that traffic, and ~256k multiply-adds is
/// still fine-grained enough to split every zoo-model layer across 8 threads.
inline constexpr int64_t kGemmTargetOps = int64_t{1} << 18;

/// Grain so that one chunk covers roughly `target_ops` scalar operations,
/// given `ops_per_item` work per index. Depends only on the problem size —
/// never on the pool — so reduce chunking stays deterministic.
inline int64_t grain_for(int64_t items, int64_t ops_per_item,
                         int64_t target_ops = int64_t{1} << 16) {
  if (ops_per_item < 1) ops_per_item = 1;
  int64_t g = target_ops / ops_per_item;
  if (g < 1) g = 1;
  if (g > items && items > 0) g = items;
  return g;
}

/// Number of chunks `[begin, end)` splits into at the given grain.
inline int64_t num_chunks(int64_t range, int64_t grain) {
  if (range <= 0) return 0;
  if (grain < 1) grain = 1;
  return (range + grain - 1) / grain;
}

namespace detail {

/// True when the calling context must run the whole range inline: a
/// one-thread pool, a nested call from a pool worker, or a single chunk.
bool run_serial(int64_t range, int64_t grain);

/// Dispatch a multi-chunk region to the pool (range > 0, grain >= 1).
void pool_run(int64_t begin, int64_t end, int64_t grain,
              const std::function<void(int64_t, int64_t)>& fn);

}  // namespace detail

/// Run `fn(lo, hi)` over disjoint sub-ranges covering [begin, end). The body
/// must tolerate concurrent invocation on distinct sub-ranges. Nested calls
/// (from inside a worker) run inline.
///
/// Template on purpose: the serial fast path calls `fn` directly, so no
/// std::function is materialized — at TQT_NUM_THREADS=1 a parallel_for is
/// allocation-free, which the typed engine's zero-allocation steady-state
/// contract (and its test) relies on. The type-erased std::function is built
/// only when the region actually goes to the pool.
template <typename Fn>
void parallel_for(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
  const int64_t range = end - begin;
  if (range <= 0) return;
  if (grain < 1) grain = 1;
  if (detail::run_serial(range, grain)) {
    fn(begin, end);
    return;
  }
  detail::pool_run(begin, end, grain, fn);
}

/// Deterministic reduction: `chunk(lo, hi)` produces one partial T per chunk,
/// `combine(a, b)` folds two partials (b's chunk indices strictly follow a's).
/// Partials are combined by a fixed-order pairwise tree over the chunk index,
/// so the result is bit-identical for every pool size.
template <typename T, typename ChunkFn, typename CombineFn>
T parallel_reduce(int64_t begin, int64_t end, int64_t grain, T identity, ChunkFn&& chunk,
                  CombineFn&& combine) {
  const int64_t range = end - begin;
  if (range <= 0) return identity;
  if (grain < 1) grain = 1;
  const int64_t nc = num_chunks(range, grain);
  if (nc == 1) return combine(std::move(identity), chunk(begin, end));
  std::vector<T> parts(static_cast<size_t>(nc), identity);
  parallel_for(0, nc, 1, [&](int64_t c0, int64_t c1) {
    for (int64_t c = c0; c < c1; ++c) {
      const int64_t lo = begin + c * grain;
      const int64_t hi = lo + grain < end ? lo + grain : end;
      parts[static_cast<size_t>(c)] = chunk(lo, hi);
    }
  });
  // Fixed-order pairwise tree: parts[i] <- combine(parts[i], parts[i+stride]).
  for (int64_t stride = 1; stride < nc; stride *= 2) {
    for (int64_t i = 0; i + stride < nc; i += 2 * stride) {
      parts[static_cast<size_t>(i)] = combine(std::move(parts[static_cast<size_t>(i)]),
                                              std::move(parts[static_cast<size_t>(i + stride)]));
    }
  }
  return combine(std::move(identity), std::move(parts[0]));
}

}  // namespace tqt
