// Minimal streaming JSON writer — the single place string escaping and
// number formatting live for every JSON emitter in the repo (metrics
// snapshots, trace export, serve stats, bench reports). No external
// dependency, no DOM: the writer appends to an internal string and tracks
// open scopes so objects/arrays always balance.
//
// Output style matches what the pre-existing hand-rolled emitters produced
// (": " after keys, ", " between members, %g doubles), so JSON produced
// through the writer is drop-in compatible with the PR 2 serve snapshot
// schema and the BENCH_*.json consumers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tqt::observe {

class JsonWriter {
 public:
  /// Begin an object / array (as the root, an array element, or after key()).
  JsonWriter& obj();
  JsonWriter& arr();
  /// Close the innermost open object or array.
  JsonWriter& end();

  /// Emit `"k": ` inside an object (handles the separating comma).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b);
  JsonWriter& value(double d);
  JsonWriter& value(long long v);
  JsonWriter& value(unsigned long long v);
  JsonWriter& value(int v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<unsigned long long>(v)); }
  JsonWriter& value(long v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(unsigned long v) { return value(static_cast<unsigned long long>(v)); }

  /// key + value in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// Splice a pre-rendered JSON fragment in value position (trusted input —
  /// no escaping). Lets emitters compose from helpers that return JSON.
  JsonWriter& raw(std::string_view fragment);

  /// The document so far. Call after every scope is end()ed.
  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

  /// Escape `s` as a JSON string literal including the surrounding quotes.
  static std::string escape(std::string_view s);

 private:
  void before_value();

  std::string out_;
  std::vector<char> scopes_;      // '{' or '['
  std::vector<bool> has_items_;   // per scope: a separator is needed
  bool after_key_ = false;
};

}  // namespace tqt::observe
