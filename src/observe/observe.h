// tqt-observe: the one way any layer of this codebase reports telemetry.
//
//   MetricsRegistry   named counters / gauges / fixed-memory histograms /
//                     bounded series. `MetricsRegistry::global()` is the
//                     process-wide registry the engine, thread pool and
//                     training loop record into; subsystems that need
//                     isolated counts (one InferenceServer per test, one
//                     bench phase at a time) own a private instance.
//   Tracer/TQT_TRACE  a low-overhead span tracer: RAII spans recorded into
//                     per-thread ring buffers, exported as chrome://tracing
//                     JSON. With tracing disabled a span costs one relaxed
//                     atomic load — the instrumented hot paths (engine
//                     executor, serve batcher, thread pool) stay within the
//                     <1% overhead contract and allocate nothing.
//
// This header absorbs and supersedes the bespoke telemetry structs that grew
// inside subsystems (serve/stats.h's LatencyHistogram, ad-hoc bench JSON);
// see DESIGN.md §10 for the architecture and the overhead contract.
//
// Usage pattern for hot paths: resolve the instrument ONCE (registry lookup
// takes a mutex) and keep the reference — instruments live as long as their
// registry and are internally thread-safe:
//
//   static observe::Counter& runs =
//       observe::MetricsRegistry::global().counter("engine.runs");
//   runs.inc();
//
//   {
//     TQT_TRACE("conv2d");          // span covers the enclosing scope
//     ...
//   }
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "observe/json.h"

namespace tqt::observe {

// ---- Instruments -----------------------------------------------------------
// All instruments are thread-safe via relaxed atomics: per-event cost is one
// uncontended atomic RMW, and cross-metric snapshot consistency is
// best-effort (fine for monitoring; tests snapshot after joining writers).

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Instantaneous level (queue depth, arena bytes, ...) with a high-water
/// mark maintained across set()/add().
class Gauge {
 public:
  void set(int64_t v) {
    v_.store(v, std::memory_order_relaxed);
    raise_high_water(v);
  }
  void add(int64_t d) { raise_high_water(v_.fetch_add(d, std::memory_order_relaxed) + d); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  int64_t high_water() const { return max_.load(std::memory_order_relaxed); }

 private:
  void raise_high_water(int64_t v) {
    int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::atomic<int64_t> v_{0};
  std::atomic<int64_t> max_{0};
};

/// Point-in-time copy of a histogram. percentile() reproduces the serving
/// semantics the serve dashboard shipped with in PR 2: the upper bound of
/// the bucket containing the requested rank, clamped to the true max — an
/// upper estimate that never under-reports a tail.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t max = 0;
  uint64_t sum = 0;
  /// (inclusive upper bound, count), ascending, non-empty buckets only.
  std::vector<std::pair<uint64_t, uint64_t>> buckets;

  /// p in (0, 1]; 0 when no samples were recorded.
  uint64_t percentile(double p) const;
  double mean() const { return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0; }
};

/// Fixed-memory histogram of non-negative integer samples. Bucket layout is
/// chosen at construction and never changes, so record() is lock-free:
///   kGeometricUs  bounds 1us, *5/4, ... past 2^31us + overflow — the
///                 latency layout (<= ~25% relative error on percentiles).
///   kLinear       exact buckets 0..1024 + overflow — for small integer
///                 distributions (batch sizes, queue depths).
class Histogram {
 public:
  enum class Layout { kGeometricUs, kLinear };
  explicit Histogram(Layout layout = Layout::kGeometricUs);

  void record(uint64_t v);
  HistogramSnapshot snapshot() const;
  Layout layout() const { return layout_; }

  /// Largest exactly-represented value of the kLinear layout.
  static constexpr uint64_t kLinearMax = 1024;

 private:
  Layout layout_;
  std::vector<uint64_t> bounds_;               // ascending inclusive upper bounds
  std::vector<std::atomic<uint64_t>> counts_;  // one per bound
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Bounded (step, value) time series for paper-style convergence dumps
/// (per-step loss, learning rates, log2-threshold norms). Appends beyond the
/// capacity are dropped and counted — fixed memory like every instrument.
class Series {
 public:
  static constexpr size_t kMaxPoints = 1 << 16;

  void append(double step, double value);
  std::vector<std::pair<double, double>> points() const;
  uint64_t dropped() const;
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<double, double>> points_;
  uint64_t dropped_ = 0;
};

// ---- Registry --------------------------------------------------------------

/// Named instrument registry. Lookup creates on first use and returns a
/// stable reference — instruments are never removed and outlive every
/// recorded event (they die with the registry). The same name may exist
/// independently as a counter and as a gauge (separate namespaces per kind).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (engine, thread pool, training loop).
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       Histogram::Layout layout = Histogram::Layout::kGeometricUs);
  Series& series(const std::string& name);

  /// One JSON object over every instrument:
  ///   {"counters": {...}, "gauges": {...}, "histograms": {...},
  ///    "series": {...}}
  /// Stable key order (std::map); see DESIGN.md §10 for the exact schema.
  std::string json_snapshot() const;
  /// Write the same object through an existing writer (for embedding).
  void write_json(JsonWriter& w) const;
  /// Render json_snapshot() (plus a trailing newline) to `path` — the one
  /// metrics-to-disk path (CLI --metrics-json, signal-triggered flushes).
  /// Throws std::runtime_error on I/O failure.
  void write_json_file(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<Series>> series_;
};

// ---- Tracer ----------------------------------------------------------------

namespace detail {
/// Process-wide tracing switch. Inline so the disabled check compiles to one
/// relaxed load at every TQT_TRACE site.
inline std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// One completed span. `name`/`cat` must be string literals (or otherwise
/// outlive the tracer's buffers); `args` is a fixed preformatted tag buffer.
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  uint64_t ts_ns = 0;   // steady-clock start
  uint64_t dur_ns = 0;
  char args[64] = {};   // "key=value ..." tag string (may be empty)
};

/// Per-thread view of the recorded events, oldest first.
struct ThreadTrace {
  uint32_t tid = 0;
  uint64_t dropped = 0;  ///< events overwritten by ring wrap-around
  std::vector<TraceEvent> events;
};

/// Span recorder: per-thread fixed-capacity ring buffers (threads register
/// lazily on their first enabled span), chrome://tracing JSON export.
class Tracer {
 public:
  /// Events retained per thread; older events are overwritten (and counted
  /// as dropped) once a thread's ring wraps.
  static constexpr size_t kRingCapacity = 1 << 15;

  static Tracer& global();

  void set_enabled(bool on) { detail::g_trace_enabled.store(on, std::memory_order_relaxed); }
  bool enabled() const { return trace_enabled(); }

  /// Append one completed event to the calling thread's ring.
  void record(const TraceEvent& ev);

  /// Copy out every thread's events (oldest first per thread). Safe to call
  /// while spans are still being recorded (per-buffer locking); for exact
  /// results quiesce writers first.
  std::vector<ThreadTrace> threads() const;

  /// Drop all recorded events (thread registrations survive).
  void clear();

  /// chrome://tracing "Trace Event Format": {"traceEvents": [...]} with one
  /// complete ("ph":"X") event per span, ts/dur in microseconds.
  std::string chrome_json() const;
  /// Render chrome_json() to `path`; throws std::runtime_error on I/O error.
  void write_chrome_json(const std::string& path) const;

  /// Monotonic nanosecond timestamp shared by every span.
  static uint64_t now_ns();

 private:
  struct ThreadBuf;
  std::shared_ptr<ThreadBuf> this_thread_buf();

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<ThreadBuf>> bufs_;
  uint32_t next_tid_ = 1;
};

/// RAII span. Construction with tracing disabled is a single relaxed load
/// and leaves the span inactive; with tracing enabled, destruction records
/// one TraceEvent covering the span's lifetime into the thread's ring.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat = "tqt") {
    if (trace_enabled()) {
      ev_.name = name;
      ev_.cat = cat;
      ev_.ts_ns = Tracer::now_ns();
      active_ = true;
    }
  }
  ~TraceSpan() {
    if (active_) finish();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// True when the span is recording — guard argf() cost behind it.
  bool active() const { return active_; }

  /// printf-format a tag string into the event's fixed buffer (truncated,
  /// never allocates). No-op on an inactive span.
  void argf(const char* fmt, ...) __attribute__((format(printf, 2, 3)));

 private:
  void finish();

  TraceEvent ev_{};
  bool active_ = false;
};

#define TQT_TRACE_CAT2(a, b) a##b
#define TQT_TRACE_CAT(a, b) TQT_TRACE_CAT2(a, b)
/// Span over the enclosing scope: TQT_TRACE("name") or TQT_TRACE("name", "category").
#define TQT_TRACE(...) \
  ::tqt::observe::TraceSpan TQT_TRACE_CAT(tqt_trace_span_, __LINE__){__VA_ARGS__}

}  // namespace tqt::observe
