#include "observe/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace tqt::observe {

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!scopes_.empty()) {
    if (has_items_.back()) out_ += ", ";
    has_items_.back() = true;
  }
}

JsonWriter& JsonWriter::obj() {
  before_value();
  out_ += '{';
  scopes_.push_back('{');
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::arr() {
  before_value();
  out_ += '[';
  scopes_.push_back('[');
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end() {
  out_ += scopes_.back() == '{' ? '}' : ']';
  scopes_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (has_items_.back()) out_ += ", ";
  has_items_.back() = true;
  out_ += escape(k);
  out_ += ": ";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  out_ += escape(s);
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  before_value();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  before_value();
  if (!std::isfinite(d)) {
    out_ += "null";  // JSON has no NaN/Inf
    return *this;
  }
  // Shortest representation that parses back to exactly `d`: start at the
  // 6-significant-digit default the hand-rolled emitters used (so common
  // values keep their old spelling) and widen only when round-tripping
  // demands it — snapshot means/series values must survive a parse-back.
  char buf[40];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(long long v) {
  before_value();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(unsigned long long v) {
  before_value();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view fragment) {
  before_value();
  out_ += fragment;
  return *this;
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace tqt::observe
