#include "observe/observe.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace tqt::observe {

// ---- HistogramSnapshot ------------------------------------------------------

uint64_t HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0;
  // Same rank rule the serve latency dashboard shipped with: the target rank
  // is p*count rounded to nearest, the answer is the inclusive upper bound of
  // the bucket that contains it, clamped to the true observed max so sparse
  // tails don't over-report.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(p * static_cast<double>(count) + 0.5));
  uint64_t cum = 0;
  for (const auto& [bound, n] : buckets) {
    cum += n;
    if (cum >= rank) return std::min(bound, max);
  }
  return max;
}

// ---- Histogram --------------------------------------------------------------

namespace {
std::vector<uint64_t> make_bounds(Histogram::Layout layout) {
  std::vector<uint64_t> bounds;
  if (layout == Histogram::Layout::kLinear) {
    bounds.reserve(Histogram::kLinearMax + 2);
    for (uint64_t b = 0; b <= Histogram::kLinearMax; ++b) bounds.push_back(b);
  } else {
    // Geometric bounds with ratio 5/4 starting at 1us — byte-identical to the
    // layout serve/stats.h used, so rebased percentiles match the old ones.
    uint64_t b = 1;
    while (b < (1ull << 31)) {
      bounds.push_back(b);
      b = std::max(b + b / 4, b + 1);
    }
    bounds.push_back(b);
  }
  bounds.push_back(UINT64_MAX);  // overflow bucket
  return bounds;
}
}  // namespace

Histogram::Histogram(Layout layout)
    : layout_(layout), bounds_(make_bounds(layout)), counts_(bounds_.size()) {}

void Histogram::record(uint64_t v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const size_t idx = static_cast<size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.count = total_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < bounds_.size(); ++i) {
    const uint64_t n = counts_[i].load(std::memory_order_relaxed);
    if (n) s.buckets.emplace_back(bounds_[i], n);
  }
  return s;
}

// ---- Series -----------------------------------------------------------------

void Series::append(double step, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (points_.size() >= kMaxPoints) {
    ++dropped_;
    return;
  }
  points_.emplace_back(step, value);
}

std::vector<std::pair<double, double>> Series::points() const {
  std::lock_guard<std::mutex> lock(mu_);
  return points_;
}

uint64_t Series::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

size_t Series::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return points_.size();
}

// ---- MetricsRegistry --------------------------------------------------------

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* reg = new MetricsRegistry();  // leaked: usable at exit
  return *reg;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, Histogram::Layout layout) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(layout);
  return *slot;
}

Series& MetricsRegistry::series(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = series_[name];
  if (!slot) slot = std::make_unique<Series>();
  return *slot;
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w.obj();
  w.key("counters").obj();
  for (const auto& [name, c] : counters_) w.kv(name, c->value());
  w.end();
  w.key("gauges").obj();
  for (const auto& [name, g] : gauges_) {
    w.key(name).obj();
    w.kv("value", g->value());
    w.kv("high_water", g->high_water());
    w.end();
  }
  w.end();
  w.key("histograms").obj();
  for (const auto& [name, h] : histograms_) {
    const HistogramSnapshot s = h->snapshot();
    w.key(name).obj();
    w.kv("count", s.count);
    w.kv("sum", s.sum);
    w.kv("max", s.max);
    w.kv("mean", s.mean());
    w.kv("p50", s.percentile(0.50));
    w.kv("p95", s.percentile(0.95));
    w.kv("p99", s.percentile(0.99));
    w.key("buckets").arr();
    for (const auto& [bound, n] : s.buckets) {
      w.arr().value(bound).value(n).end();
    }
    w.end();  // buckets
    w.end();  // histogram
  }
  w.end();
  w.key("series").obj();
  for (const auto& [name, ser] : series_) {
    w.key(name).obj();
    w.kv("dropped", ser->dropped());
    w.key("points").arr();
    for (const auto& [step, value] : ser->points()) {
      w.arr().value(step).value(value).end();
    }
    w.end();  // points
    w.end();  // series entry
  }
  w.end();
  w.end();
}

std::string MetricsRegistry::json_snapshot() const {
  JsonWriter w;
  write_json(w);
  return w.take();
}

void MetricsRegistry::write_json_file(const std::string& path) const {
  const std::string json = json_snapshot();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f || std::fwrite(json.data(), 1, json.size(), f) != json.size() ||
      std::fputc('\n', f) == EOF || std::fclose(f) != 0) {
    if (f) std::fclose(f);
    throw std::runtime_error("cannot write metrics snapshot to " + path);
  }
}

}  // namespace tqt::observe
