#include "observe/observe.h"

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace tqt::observe {

// Each thread's events live in a fixed ring owned jointly by the thread (via
// a thread_local shared_ptr) and the tracer (for snapshots after the thread
// exits). record() takes the ring's own mutex — uncontended in steady state
// since only the owning thread writes; snapshots lock each ring briefly.
struct Tracer::ThreadBuf {
  explicit ThreadBuf(uint32_t id) : tid(id) { events.resize(kRingCapacity); }

  std::mutex mu;
  uint32_t tid;
  uint64_t next = 0;  // total events ever recorded; ring index = next % cap
  std::vector<TraceEvent> events;
};

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();  // leaked: usable at exit
  return *tracer;
}

uint64_t Tracer::now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::shared_ptr<Tracer::ThreadBuf> Tracer::this_thread_buf() {
  // One registration per (thread, tracer) pair; the global tracer is the only
  // instance in practice so a single thread_local slot suffices.
  thread_local std::shared_ptr<ThreadBuf> buf;
  if (!buf) {
    std::lock_guard<std::mutex> lock(mu_);
    buf = std::make_shared<ThreadBuf>(next_tid_++);
    bufs_.push_back(buf);
  }
  return buf;
}

void Tracer::record(const TraceEvent& ev) {
  const std::shared_ptr<ThreadBuf> buf = this_thread_buf();
  std::lock_guard<std::mutex> lock(buf->mu);
  buf->events[buf->next % kRingCapacity] = ev;
  ++buf->next;
}

std::vector<ThreadTrace> Tracer::threads() const {
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    bufs = bufs_;
  }
  std::vector<ThreadTrace> out;
  out.reserve(bufs.size());
  for (const auto& buf : bufs) {
    std::lock_guard<std::mutex> lock(buf->mu);
    ThreadTrace t;
    t.tid = buf->tid;
    const uint64_t n = std::min<uint64_t>(buf->next, kRingCapacity);
    t.dropped = buf->next - n;
    t.events.reserve(n);
    for (uint64_t i = buf->next - n; i < buf->next; ++i) {
      t.events.push_back(buf->events[i % kRingCapacity]);
    }
    out.push_back(std::move(t));
  }
  return out;
}

void Tracer::clear() {
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    bufs = bufs_;
  }
  for (const auto& buf : bufs) {
    std::lock_guard<std::mutex> lock(buf->mu);
    buf->next = 0;
  }
}

namespace {
// Fixed 3-decimal microsecond value (%g would truncate large timestamps).
std::string us_fixed(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}
}  // namespace

std::string Tracer::chrome_json() const {
  const std::vector<ThreadTrace> traces = threads();
  // Rebase timestamps to the earliest recorded span so the viewer timeline
  // starts near zero and values stay small.
  uint64_t t0 = UINT64_MAX;
  for (const ThreadTrace& t : traces) {
    for (const TraceEvent& ev : t.events) t0 = std::min(t0, ev.ts_ns);
  }
  if (t0 == UINT64_MAX) t0 = 0;

  JsonWriter w;
  w.obj();
  w.key("traceEvents").arr();
  for (const ThreadTrace& t : traces) {
    for (const TraceEvent& ev : t.events) {
      w.obj();
      w.kv("name", ev.name ? ev.name : "?");
      w.kv("cat", ev.cat ? ev.cat : "tqt");
      w.kv("ph", "X");
      // chrome://tracing wants microseconds; keep fractional precision so
      // sub-microsecond engine spans stay visible.
      w.key("ts").raw(us_fixed(ev.ts_ns - t0));
      w.key("dur").raw(us_fixed(ev.dur_ns));
      w.kv("pid", 1);
      w.kv("tid", t.tid);
      if (ev.args[0] != '\0') {
        w.key("args").obj();
        w.kv("tag", static_cast<const char*>(ev.args));
        w.end();
      }
      w.end();
    }
  }
  w.end();
  w.end();
  return w.take();
}

void Tracer::write_chrome_json(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("trace export: cannot open " + path);
  f << chrome_json() << '\n';
  if (!f) throw std::runtime_error("trace export: write failed: " + path);
}

// ---- TraceSpan --------------------------------------------------------------

void TraceSpan::argf(const char* fmt, ...) {
  if (!active_) return;
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(ev_.args, sizeof(ev_.args), fmt, ap);
  va_end(ap);
}

void TraceSpan::finish() {
  ev_.dur_ns = Tracer::now_ns() - ev_.ts_ns;
  Tracer::global().record(ev_);
}

}  // namespace tqt::observe
