#include "data/synthetic.h"

#include <cmath>
#include <stdexcept>

namespace tqt {

namespace {
constexpr float kTau = 6.28318530717958647692f;

/// Parameters of one additive image component.
struct Component {
  bool is_blob = false;
  // Grating: spatial frequency (cycles over the image) and orientation.
  float fx = 0.0f, fy = 0.0f, phase = 0.0f;
  // Blob: center (fractional coordinates) and radius.
  float cx = 0.5f, cy = 0.5f, radius = 0.25f;
  // Per-channel color weights.
  float color[3] = {0.0f, 0.0f, 0.0f};
};

struct ClassPattern {
  std::vector<Component> components;
};

ClassPattern make_class_pattern(Rng rng, int64_t channels) {
  ClassPattern p;
  const int n_components = 4;
  for (int k = 0; k < n_components; ++k) {
    Component c;
    c.is_blob = (k >= 2);  // two gratings + two blobs per class
    if (c.is_blob) {
      c.cx = rng.uniform(0.15f, 0.85f);
      c.cy = rng.uniform(0.15f, 0.85f);
      c.radius = rng.uniform(0.12f, 0.3f);
    } else {
      const float freq = rng.uniform(1.0f, 3.5f);
      const float theta = rng.uniform(0.0f, kTau);
      c.fx = freq * std::cos(theta);
      c.fy = freq * std::sin(theta);
      c.phase = rng.uniform(0.0f, kTau);
    }
    for (int64_t ch = 0; ch < channels && ch < 3; ++ch) c.color[ch] = rng.uniform(-1.0f, 1.0f);
    p.components.push_back(c);
  }
  return p;
}

/// Render one sample of a class pattern into `out` (size S*S*C), applying a
/// circular shift, amplitude jitter and additive noise.
void render(const ClassPattern& pat, int64_t s, int64_t channels, Rng& rng, float noise,
            float* out) {
  const float dx = rng.uniform(0.0f, 1.0f);  // fractional circular shift
  const float dy = rng.uniform(0.0f, 1.0f);
  const float amp = rng.uniform(0.8f, 1.2f);
  for (int64_t y = 0; y < s; ++y) {
    for (int64_t x = 0; x < s; ++x) {
      const float u = static_cast<float>(x) / static_cast<float>(s) + dx;
      const float v = static_cast<float>(y) / static_cast<float>(s) + dy;
      float value[3] = {0.0f, 0.0f, 0.0f};
      for (const Component& c : pat.components) {
        float a;
        if (c.is_blob) {
          // Wrap-around distance for shift invariance.
          float du = std::fabs(u - std::floor(u) - c.cx);
          float dv = std::fabs(v - std::floor(v) - c.cy);
          du = std::min(du, 1.0f - du);
          dv = std::min(dv, 1.0f - dv);
          const float d2 = du * du + dv * dv;
          a = std::exp(-d2 / (2.0f * c.radius * c.radius));
        } else {
          a = std::sin(kTau * (c.fx * u + c.fy * v) + c.phase);
        }
        for (int64_t ch = 0; ch < channels && ch < 3; ++ch) value[ch] += a * c.color[ch];
      }
      float* px = out + (y * s + x) * channels;
      for (int64_t ch = 0; ch < channels; ++ch) {
        const float base = ch < 3 ? value[ch] : 0.0f;
        px[ch] = amp * base + rng.normal(0.0f, noise);
      }
    }
  }
}
}  // namespace

SyntheticImageDataset::SyntheticImageDataset(DatasetConfig cfg) : cfg_(cfg) {
  if (cfg_.num_classes < 2) throw std::invalid_argument("dataset: need >= 2 classes");
  if (cfg_.image_size < 4) throw std::invalid_argument("dataset: image_size too small");
  Rng master(cfg_.seed);
  std::vector<ClassPattern> patterns;
  patterns.reserve(static_cast<size_t>(cfg_.num_classes));
  for (int64_t c = 0; c < cfg_.num_classes; ++c) {
    patterns.push_back(make_class_pattern(master.fork(1000 + static_cast<uint64_t>(c)), cfg_.channels));
  }
  const int64_t pixels = cfg_.image_size * cfg_.image_size * cfg_.channels;
  auto fill_split = [&](int64_t count, uint64_t stream, std::vector<float>& images,
                        std::vector<float>& labels) {
    Rng rng = master.fork(stream);
    images.resize(static_cast<size_t>(count * pixels));
    labels.resize(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) {
      const int64_t cls = i % cfg_.num_classes;  // balanced splits
      labels[static_cast<size_t>(i)] = static_cast<float>(cls);
      render(patterns[static_cast<size_t>(cls)], cfg_.image_size, cfg_.channels, rng, cfg_.noise,
             images.data() + i * pixels);
    }
  };
  fill_split(cfg_.train_size, 1, train_images_, train_labels_);
  fill_split(cfg_.val_size, 2, val_images_, val_labels_);
}

Batch SyntheticImageDataset::gather(const std::vector<float>& images,
                                    const std::vector<float>& labels,
                                    std::span<const int64_t> indices) const {
  const int64_t pixels = cfg_.image_size * cfg_.image_size * cfg_.channels;
  const int64_t n = static_cast<int64_t>(indices.size());
  Batch b{Tensor({n, cfg_.image_size, cfg_.image_size, cfg_.channels}), Tensor({n})};
  const int64_t count = static_cast<int64_t>(labels.size());
  for (int64_t i = 0; i < n; ++i) {
    const int64_t idx = ((indices[static_cast<size_t>(i)] % count) + count) % count;
    const float* src = images.data() + idx * pixels;
    float* dst = b.images.data() + i * pixels;
    for (int64_t j = 0; j < pixels; ++j) dst[j] = src[j];
    b.labels[i] = labels[static_cast<size_t>(idx)];
  }
  return b;
}

Batch SyntheticImageDataset::train_batch(std::span<const int64_t> indices) const {
  return gather(train_images_, train_labels_, indices);
}

Batch SyntheticImageDataset::val_batch(int64_t first, int64_t count) const {
  if (first < 0 || first + count > cfg_.val_size) throw std::out_of_range("val_batch range");
  std::vector<int64_t> idx(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) idx[static_cast<size_t>(i)] = first + i;
  return gather(val_images_, val_labels_, idx);
}

Tensor SyntheticImageDataset::calibration_batch(int64_t count, uint64_t seed) const {
  Rng rng(seed);
  std::vector<int64_t> idx(static_cast<size_t>(count));
  for (auto& i : idx) i = rng.uniform_int(0, cfg_.val_size - 1);
  return gather(val_images_, val_labels_, idx).images;
}

std::vector<int64_t> SyntheticImageDataset::epoch_order(Rng& rng) const {
  std::vector<int64_t> order(static_cast<size_t>(cfg_.train_size));
  for (int64_t i = 0; i < cfg_.train_size; ++i) order[static_cast<size_t>(i)] = i;
  rng.shuffle(order);
  return order;
}

}  // namespace tqt
