// Synthetic image-classification dataset — the ImageNet stand-in.
//
// The paper evaluates quantization dynamics on ImageNet CNNs. This library
// cannot ship ImageNet, so it substitutes a deterministic procedural dataset
// (see DESIGN.md §2): each class is a fixed mixture of oriented sinusoidal
// gratings and soft blobs (parameters drawn from a per-class RNG stream);
// each sample applies a random circular shift, amplitude jitter and additive
// Gaussian noise. The task is learnable to high accuracy by small CNNs yet
// non-trivial (multi-scale features, color structure, noise), which is what
// the quantization experiments need: realistic conv/BN/ReLU stacks trained
// with real gradients, and calibration data with smooth, long-tailed
// activation distributions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace tqt {

struct DatasetConfig {
  int64_t num_classes = 10;
  int64_t image_size = 16;   ///< square images, NHWC
  int64_t channels = 3;
  int64_t train_size = 2048;
  int64_t val_size = 512;
  float noise = 0.25f;       ///< additive Gaussian sigma
  uint64_t seed = 2020;
};

/// One minibatch: images [N, S, S, C], labels [N] (class index as float).
struct Batch {
  Tensor images;
  Tensor labels;
};

class SyntheticImageDataset {
 public:
  explicit SyntheticImageDataset(DatasetConfig cfg);

  const DatasetConfig& config() const { return cfg_; }
  int64_t train_size() const { return cfg_.train_size; }
  int64_t val_size() const { return cfg_.val_size; }

  /// Batch of training samples by index (indices modulo train size).
  Batch train_batch(std::span<const int64_t> indices) const;

  /// Batch of validation samples [first, first+count).
  Batch val_batch(int64_t first, int64_t count) const;

  /// A calibration set of `count` images sampled without labels from the
  /// validation split (paper §5.1: a batch of 50 unlabeled images randomly
  /// sampled from the validation set).
  Tensor calibration_batch(int64_t count, uint64_t seed = 50) const;

  /// Shuffled index order for one training epoch.
  std::vector<int64_t> epoch_order(Rng& rng) const;

 private:
  DatasetConfig cfg_;
  std::vector<float> train_images_, val_images_;
  std::vector<float> train_labels_, val_labels_;

  Batch gather(const std::vector<float>& images, const std::vector<float>& labels,
               std::span<const int64_t> indices) const;
};

}  // namespace tqt
