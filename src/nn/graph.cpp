#include "nn/graph.h"

#include <algorithm>
#include <stdexcept>

namespace tqt {

NodeId Graph::add(std::string name, std::unique_ptr<Op> op, std::vector<NodeId> inputs) {
  if (!op) throw std::invalid_argument("Graph::add: null op");
  const int ar = op->arity();
  if (ar >= 0 && ar != static_cast<int>(inputs.size())) {
    throw std::invalid_argument("Graph::add: op " + op->type() + " expects " + std::to_string(ar) +
                                " inputs, got " + std::to_string(inputs.size()));
  }
  for (NodeId in : inputs) {
    if (in < 0 || in >= node_count() || dead_[static_cast<size_t>(in)]) {
      throw std::invalid_argument("Graph::add: bad input node id " + std::to_string(in));
    }
  }
  if (name.empty()) name = op->type() + "_" + std::to_string(anon_counter_++);
  if (by_name_.count(name)) throw std::invalid_argument("Graph::add: duplicate node name " + name);

  auto n = std::make_unique<Node>();
  n->id = static_cast<NodeId>(nodes_.size());
  n->name = std::move(name);
  n->op = std::move(op);
  n->inputs = std::move(inputs);
  by_name_[n->name] = n->id;
  nodes_.push_back(std::move(n));
  dead_.push_back(false);
  return nodes_.back()->id;
}

Node& Graph::node(NodeId id) {
  if (id < 0 || id >= node_count()) throw std::out_of_range("bad node id " + std::to_string(id));
  return *nodes_[static_cast<size_t>(id)];
}

const Node& Graph::node(NodeId id) const {
  if (id < 0 || id >= node_count()) throw std::out_of_range("bad node id " + std::to_string(id));
  return *nodes_[static_cast<size_t>(id)];
}

NodeId Graph::find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return kNoNode;
  return dead_[static_cast<size_t>(it->second)] ? kNoNode : it->second;
}

std::vector<NodeId> Graph::live_nodes() const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < node_count(); ++i)
    if (!dead_[static_cast<size_t>(i)]) out.push_back(i);
  return out;
}

std::vector<NodeId> Graph::nodes_of_type(const std::string& type) const {
  std::vector<NodeId> out;
  for (NodeId i : live_nodes())
    if (node(i).op->type() == type) out.push_back(i);
  return out;
}

std::vector<NodeId> Graph::consumers(NodeId id) const {
  std::vector<NodeId> out;
  for (NodeId i : live_nodes()) {
    const auto& ins = node(i).inputs;
    if (std::find(ins.begin(), ins.end(), id) != ins.end()) out.push_back(i);
  }
  return out;
}

void Graph::rewire_consumers(NodeId from, NodeId to, const std::vector<NodeId>* only) {
  for (NodeId c : consumers(from)) {
    if (only && std::find(only->begin(), only->end(), c) == only->end()) continue;
    if (c == to) continue;  // never create a self-loop on the new node
    replace_input(c, from, to);
  }
}

void Graph::replace_input(NodeId id, NodeId old_in, NodeId new_in) {
  for (NodeId& in : node(id).inputs)
    if (in == old_in) in = new_in;
}

void Graph::remove(NodeId id) {
  node(id);  // bounds check
  dead_[static_cast<size_t>(id)] = true;
}

NodeId Graph::insert_after(NodeId producer, std::string name, std::unique_ptr<Op> op) {
  const auto before = consumers(producer);
  const NodeId nid = add(std::move(name), std::move(op), {producer});
  for (NodeId c : before) replace_input(c, producer, nid);
  return nid;
}

NodeId Graph::insert_on_edge(NodeId producer, NodeId consumer, std::string name, std::unique_ptr<Op> op) {
  const auto& ins = node(consumer).inputs;
  if (std::find(ins.begin(), ins.end(), producer) == ins.end()) {
    throw std::invalid_argument("insert_on_edge: no edge " + std::to_string(producer) + " -> " +
                                std::to_string(consumer));
  }
  const NodeId nid = add(std::move(name), std::move(op), {producer});
  replace_input(consumer, producer, nid);
  return nid;
}

std::vector<NodeId> Graph::topo_order(const std::vector<NodeId>& outputs) const {
  std::vector<int> state(static_cast<size_t>(node_count()), 0);  // 0 new, 1 visiting, 2 done
  std::vector<NodeId> order;
  // Iterative DFS to avoid deep recursion on long chains.
  std::vector<std::pair<NodeId, size_t>> stack;
  for (NodeId out : outputs) {
    if (out < 0 || out >= node_count() || dead_[static_cast<size_t>(out)]) {
      throw std::invalid_argument("topo_order: bad output node " + std::to_string(out));
    }
    if (state[static_cast<size_t>(out)] == 2) continue;
    stack.emplace_back(out, 0);
    state[static_cast<size_t>(out)] = 1;
    while (!stack.empty()) {
      auto& [id, next_in] = stack.back();
      const auto& ins = node(id).inputs;
      if (next_in < ins.size()) {
        const NodeId in = ins[next_in++];
        if (dead_[static_cast<size_t>(in)]) {
          throw std::runtime_error("topo_order: node " + node(id).name + " reads dead node");
        }
        if (state[static_cast<size_t>(in)] == 1) throw std::runtime_error("topo_order: cycle detected");
        if (state[static_cast<size_t>(in)] == 0) {
          state[static_cast<size_t>(in)] = 1;
          stack.emplace_back(in, 0);
        }
      } else {
        state[static_cast<size_t>(id)] = 2;
        order.push_back(id);
        stack.pop_back();
      }
    }
  }
  return order;
}

Tensor Graph::run(const Feed& feeds, NodeId output) { return run_multi(feeds, {output})[0]; }

std::vector<Tensor> Graph::run_multi(const Feed& feeds, const std::vector<NodeId>& outputs) {
  const auto order = topo_order(outputs);
  last_order_ = order;
  for (NodeId id : order) {
    Node& n = node(id);
    n.computed = false;
    n.has_grad = false;
  }
  for (NodeId id : order) {
    Node& n = node(id);
    if (n.op->type() == "Input") {
      auto it = feeds.find(id);
      if (it == feeds.end()) throw std::invalid_argument("missing feed for input node " + n.name);
      n.output = it->second;
    } else {
      std::vector<const Tensor*> ins;
      ins.reserve(n.inputs.size());
      for (NodeId in : n.inputs) ins.push_back(&node(in).output);
      n.output = n.op->forward(ins);
    }
    n.computed = true;
  }
  std::vector<Tensor> result;
  result.reserve(outputs.size());
  for (NodeId out : outputs) result.push_back(node(out).output);
  return result;
}

void Graph::backward(NodeId loss) {
  Node& ln = node(loss);
  if (!ln.computed) throw std::runtime_error("backward: loss node not computed");
  if (ln.output.numel() != 1) throw std::runtime_error("backward: loss must be scalar");
  if (last_order_.empty() || last_order_.back() != loss) {
    // The loss must have been an output of the last run so cached op state
    // matches. We accept it anywhere in the last order for multi-output runs.
    if (std::find(last_order_.begin(), last_order_.end(), loss) == last_order_.end()) {
      throw std::runtime_error("backward: loss node was not part of the last forward run");
    }
  }
  ln.grad = Tensor(ln.output.shape(), 1.0f);
  ln.has_grad = true;
  for (auto it = last_order_.rbegin(); it != last_order_.rend(); ++it) {
    Node& n = node(*it);
    if (!n.has_grad) continue;  // not on a path to the loss
    if (n.op->type() == "Input") continue;
    const auto input_grads = n.op->backward(n.grad);
    if (input_grads.size() != n.inputs.size()) {
      throw std::runtime_error("backward: op " + n.op->type() + " returned " +
                               std::to_string(input_grads.size()) + " grads for " +
                               std::to_string(n.inputs.size()) + " inputs");
    }
    for (size_t i = 0; i < n.inputs.size(); ++i) {
      Node& in = node(n.inputs[i]);
      if (in.has_grad) {
        in.grad += input_grads[i];
      } else {
        in.grad = input_grads[i];
        in.has_grad = true;
      }
    }
  }
}

std::vector<ParamPtr> Graph::params() const {
  std::vector<ParamPtr> out;
  for (NodeId id : live_nodes()) {
    for (const auto& p : node(id).op->params()) {
      if (std::find(out.begin(), out.end(), p) == out.end()) out.push_back(p);
    }
  }
  return out;
}

void Graph::zero_grad() {
  for (const auto& p : params()) p->zero_grad();
}

void Graph::set_training(bool training) {
  for (NodeId id : live_nodes()) node(id).op->set_training(training);
}

std::map<std::string, Tensor> Graph::state_dict() const {
  std::map<std::string, Tensor> out;
  for (const auto& p : params()) {
    if (!out.emplace(p->name, p->value).second) {
      throw std::runtime_error("state_dict: duplicate param name " + p->name);
    }
  }
  return out;
}

void Graph::load_state_dict(const std::map<std::string, Tensor>& state) {
  for (const auto& p : params()) {
    auto it = state.find(p->name);
    if (it == state.end()) throw std::runtime_error("load_state_dict: missing param " + p->name);
    if (it->second.shape() != p->value.shape()) {
      throw std::runtime_error("load_state_dict: shape mismatch for " + p->name);
    }
    p->value = it->second;
    p->grad = Tensor(p->value.shape());
  }
}

}  // namespace tqt
