// Graphviz export of the graph IR — the practical way to inspect what the
// transform and quantize passes produced (Graffitist users debug their
// output graphs the same way).
#pragma once

#include <string>

#include "nn/graph.h"

namespace tqt {

/// Render the live nodes of `g` as a Graphviz digraph. Quantization nodes
/// are styled distinctly so the inserted q8/q16 structure is easy to audit.
std::string graph_to_dot(const Graph& g, const std::string& title = "tqt");

/// Write graph_to_dot() output to a file; throws std::runtime_error on I/O
/// failure.
void write_dot(const Graph& g, const std::string& path, const std::string& title = "tqt");

}  // namespace tqt
