// Compute ops: 2-D convolution, depthwise convolution, dense (fully
// connected), and pooling. All activations are NHWC; conv weights are
// [kh, kw, Cin, Cout] and depthwise weights [kh, kw, C].
#pragma once

#include "nn/op.h"
#include "tensor/ops.h"

namespace tqt {

/// Standard 2-D convolution, inputs: (x, w). Lowered through im2col so the
/// forward is one GEMM and the backward two GEMMs plus a col2im scatter.
class Conv2dOp final : public Op {
 public:
  explicit Conv2dOp(Conv2dGeom geom) : geom_(geom) {}
  std::string type() const override { return "Conv2D"; }
  int arity() const override { return 2; }
  const Conv2dGeom& geom() const { return geom_; }
  Tensor forward(const std::vector<const Tensor*>& in) override;
  std::vector<Tensor> backward(const Tensor& g) override;

 private:
  Conv2dGeom geom_;
  Tensor cols_;      // cached im2col(x)
  Tensor w_;         // cached weight (needed for dX)
  Shape x_shape_;
  Shape w_shape_;
  Shape out_shape_;
};

/// Depthwise 2-D convolution (channel multiplier 1), inputs: (x, w).
class DepthwiseConv2dOp final : public Op {
 public:
  explicit DepthwiseConv2dOp(Conv2dGeom geom) : geom_(geom) {}
  std::string type() const override { return "DepthwiseConv2D"; }
  int arity() const override { return 2; }
  const Conv2dGeom& geom() const { return geom_; }
  Tensor forward(const std::vector<const Tensor*>& in) override;
  std::vector<Tensor> backward(const Tensor& g) override;

 private:
  Conv2dGeom geom_;
  Tensor x_;
  Tensor w_;
  Shape w_shape_;
  Shape out_shape_;
};

/// Fully connected layer: y[n,m] = x[n,k] * w[k,m]. Inputs: (x, w).
class DenseOp final : public Op {
 public:
  std::string type() const override { return "Dense"; }
  int arity() const override { return 2; }
  Tensor forward(const std::vector<const Tensor*>& in) override;
  std::vector<Tensor> backward(const Tensor& g) override;

 private:
  Tensor x_;
  Tensor w_;
};

/// Max pooling over NHWC windows; backward routes to the argmax tap.
class MaxPoolOp final : public Op {
 public:
  explicit MaxPoolOp(Conv2dGeom geom) : geom_(geom) {}
  std::string type() const override { return "MaxPool"; }
  int arity() const override { return 1; }
  const Conv2dGeom& geom() const { return geom_; }
  Tensor forward(const std::vector<const Tensor*>& in) override;
  std::vector<Tensor> backward(const Tensor& g) override;

 private:
  Conv2dGeom geom_;
  Shape x_shape_;
  std::vector<int64_t> argmax_;  // flat input index per output element
};

/// Average pooling. The quantize pass may replace this with a depthwise conv
/// whose weights are the reciprocal 1/(kh*kw), matching Graffitist (§4.1).
class AvgPoolOp final : public Op {
 public:
  explicit AvgPoolOp(Conv2dGeom geom) : geom_(geom) {}
  std::string type() const override { return "AvgPool"; }
  int arity() const override { return 1; }
  const Conv2dGeom& geom() const { return geom_; }
  Tensor forward(const std::vector<const Tensor*>& in) override;
  std::vector<Tensor> backward(const Tensor& g) override;

 private:
  Conv2dGeom geom_;
  Shape x_shape_;
};

/// Global average pool: [N,H,W,C] -> [N,C].
class GlobalAvgPoolOp final : public Op {
 public:
  std::string type() const override { return "GlobalAvgPool"; }
  int arity() const override { return 1; }
  Tensor forward(const std::vector<const Tensor*>& in) override;
  std::vector<Tensor> backward(const Tensor& g) override;

 private:
  Shape x_shape_;
};

}  // namespace tqt
