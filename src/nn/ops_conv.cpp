#include "nn/ops_conv.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "runtime/parallel.h"

namespace tqt {

Tensor Conv2dOp::forward(const std::vector<const Tensor*>& in) {
  const Tensor& x = *in[0];
  const Tensor& w = *in[1];
  if (x.rank() != 4) throw std::invalid_argument("Conv2D: input must be NHWC");
  if (w.rank() != 4) throw std::invalid_argument("Conv2D: weight must be [kh,kw,Cin,Cout]");
  if (w.dim(0) != geom_.kh || w.dim(1) != geom_.kw) throw std::invalid_argument("Conv2D: kernel size mismatch");
  if (w.dim(2) != x.dim(3)) throw std::invalid_argument("Conv2D: Cin mismatch");
  x_shape_ = x.shape();
  w_shape_ = w.shape();
  w_ = w;
  const int64_t n = x.dim(0), oh = geom_.out_h(x.dim(1)), ow = geom_.out_w(x.dim(2));
  const int64_t cout = w.dim(3);
  cols_ = im2col(x, geom_);
  const Tensor wmat = w.reshape({geom_.kh * geom_.kw * x.dim(3), cout});
  Tensor y = matmul(cols_, wmat);
  out_shape_ = {n, oh, ow, cout};
  return y.reshape(out_shape_);
}

std::vector<Tensor> Conv2dOp::backward(const Tensor& g) {
  const int64_t cout = w_shape_[3];
  const Tensor gmat = g.reshape({g.numel() / cout, cout});
  // dW = cols^T * dY, reshaped back to [kh,kw,Cin,Cout].
  Tensor dw = matmul_tn(cols_, gmat).reshape(w_shape_);
  // dX = col2im(dY * W^T), where W is stored as [kh*kw*Cin, Cout].
  const Tensor wmat = w_.reshape({geom_.kh * geom_.kw * x_shape_[3], cout});
  Tensor dcols = matmul_nt(gmat, wmat);  // [rows, cout] * [khkwCin, cout]^T
  Tensor dx = col2im(dcols, x_shape_, geom_);
  return {std::move(dx), std::move(dw)};
}

Tensor DepthwiseConv2dOp::forward(const std::vector<const Tensor*>& in) {
  const Tensor& x = *in[0];
  const Tensor& w = *in[1];
  if (x.rank() != 4) throw std::invalid_argument("DepthwiseConv2D: input must be NHWC");
  if (w.rank() != 3) throw std::invalid_argument("DepthwiseConv2D: weight must be [kh,kw,C]");
  if (w.dim(0) != geom_.kh || w.dim(1) != geom_.kw) throw std::invalid_argument("DepthwiseConv2D: kernel mismatch");
  if (w.dim(2) != x.dim(3)) throw std::invalid_argument("DepthwiseConv2D: channel mismatch");
  x_ = x;
  w_ = w;
  w_shape_ = w.shape();
  const int64_t n = x.dim(0), h = x.dim(1), wd = x.dim(2), c = x.dim(3);
  const int64_t oh = geom_.out_h(h), ow = geom_.out_w(wd);
  out_shape_ = {n, oh, ow, c};
  Tensor y(out_shape_);
  const float* px = x.data();
  const float* pw = w.data();
  float* py = y.data();
  // Output rows (b, oy) are disjoint; each output element keeps the serial
  // ky/kx accumulation order, so the result is thread-count independent.
  const int64_t rows = n * oh;
  parallel_for(0, rows, grain_for(rows, ow * geom_.kh * geom_.kw * c * 2),
               [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int64_t b = r / oh;
      const int64_t oy = r % oh;
      for (int64_t ox = 0; ox < ow; ++ox) {
        float* out = py + (r * ow + ox) * c;
        const int64_t iy0 = oy * geom_.stride_h - geom_.pad_top;
        const int64_t ix0 = ox * geom_.stride_w - geom_.pad_left;
        for (int64_t ky = 0; ky < geom_.kh; ++ky) {
          const int64_t iy = iy0 + ky;
          if (iy < 0 || iy >= h) continue;
          for (int64_t kx = 0; kx < geom_.kw; ++kx) {
            const int64_t ix = ix0 + kx;
            if (ix < 0 || ix >= wd) continue;
            const float* xi = px + ((b * h + iy) * wd + ix) * c;
            const float* wi = pw + (ky * geom_.kw + kx) * c;
            for (int64_t ch = 0; ch < c; ++ch) out[ch] += xi[ch] * wi[ch];
          }
        }
      }
    }
  });
  return y;
}

std::vector<Tensor> DepthwiseConv2dOp::backward(const Tensor& g) {
  const int64_t n = x_.dim(0), h = x_.dim(1), wd = x_.dim(2), c = x_.dim(3);
  const int64_t oh = out_shape_[1], ow = out_shape_[2];
  Tensor dx(x_.shape());
  Tensor dw(w_shape_);
  const float* px = x_.data();
  const float* pg = g.data();
  float* pdx = dx.data();
  // Reconstruct w for dx: it was an input, we cached x only; re-read w from
  // the forward is not possible, so cache it. (w_ kept below.)
  const float* pw = w_.data();
  // dx scatters only within one image, so batch-parallelism is race-free.
  // dw is shared across the whole batch: each batch chunk accumulates into a
  // private partial and the partials are tree-combined in fixed batch order
  // (parallel_reduce), keeping dw bit-identical at every thread count.
  const size_t wn = static_cast<size_t>(dw.numel());
  std::vector<float> dw_acc = parallel_reduce<std::vector<float>>(
      0, n, 1, std::vector<float>(wn, 0.0f),
      [&](int64_t b0, int64_t b1) {
        std::vector<float> local(wn, 0.0f);
        for (int64_t b = b0; b < b1; ++b) {
          for (int64_t oy = 0; oy < oh; ++oy) {
            for (int64_t ox = 0; ox < ow; ++ox) {
              const float* gout = pg + ((b * oh + oy) * ow + ox) * c;
              const int64_t iy0 = oy * geom_.stride_h - geom_.pad_top;
              const int64_t ix0 = ox * geom_.stride_w - geom_.pad_left;
              for (int64_t ky = 0; ky < geom_.kh; ++ky) {
                const int64_t iy = iy0 + ky;
                if (iy < 0 || iy >= h) continue;
                for (int64_t kx = 0; kx < geom_.kw; ++kx) {
                  const int64_t ix = ix0 + kx;
                  if (ix < 0 || ix >= wd) continue;
                  const float* xi = px + ((b * h + iy) * wd + ix) * c;
                  float* dxi = pdx + ((b * h + iy) * wd + ix) * c;
                  const float* wi = pw + (ky * geom_.kw + kx) * c;
                  float* dwi = local.data() + (ky * geom_.kw + kx) * c;
                  for (int64_t ch = 0; ch < c; ++ch) {
                    dwi[ch] += gout[ch] * xi[ch];
                    dxi[ch] += gout[ch] * wi[ch];
                  }
                }
              }
            }
          }
        }
        return local;
      },
      [](std::vector<float> acc, std::vector<float> part) {
        for (size_t i = 0; i < acc.size(); ++i) acc[i] += part[i];
        return acc;
      });
  std::copy(dw_acc.begin(), dw_acc.end(), dw.data());
  return {std::move(dx), std::move(dw)};
}

Tensor DenseOp::forward(const std::vector<const Tensor*>& in) {
  x_ = *in[0];
  w_ = *in[1];
  return matmul(x_, w_);
}

std::vector<Tensor> DenseOp::backward(const Tensor& g) {
  Tensor dx = matmul_nt(g, w_);   // [n,m] * [k,m]^T -> [n,k]
  Tensor dw = matmul_tn(x_, g);   // [n,k]^T * [n,m] -> [k,m]
  return {std::move(dx), std::move(dw)};
}

Tensor MaxPoolOp::forward(const std::vector<const Tensor*>& in) {
  const Tensor& x = *in[0];
  if (x.rank() != 4) throw std::invalid_argument("MaxPool: input must be NHWC");
  x_shape_ = x.shape();
  const int64_t n = x.dim(0), h = x.dim(1), w = x.dim(2), c = x.dim(3);
  const int64_t oh = geom_.out_h(h), ow = geom_.out_w(w);
  Tensor y({n, oh, ow, c});
  argmax_.assign(static_cast<size_t>(y.numel()), -1);
  const float* px = x.data();
  float* py = y.data();
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t oy = 0; oy < oh; ++oy) {
      for (int64_t ox = 0; ox < ow; ++ox) {
        const int64_t out_base = ((b * oh + oy) * ow + ox) * c;
        const int64_t iy0 = oy * geom_.stride_h - geom_.pad_top;
        const int64_t ix0 = ox * geom_.stride_w - geom_.pad_left;
        for (int64_t ch = 0; ch < c; ++ch) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_idx = -1;
          for (int64_t ky = 0; ky < geom_.kh; ++ky) {
            const int64_t iy = iy0 + ky;
            if (iy < 0 || iy >= h) continue;
            for (int64_t kx = 0; kx < geom_.kw; ++kx) {
              const int64_t ix = ix0 + kx;
              if (ix < 0 || ix >= w) continue;
              const int64_t idx = ((b * h + iy) * w + ix) * c + ch;
              if (px[idx] > best) {
                best = px[idx];
                best_idx = idx;
              }
            }
          }
          py[out_base + ch] = best_idx >= 0 ? best : 0.0f;
          argmax_[static_cast<size_t>(out_base + ch)] = best_idx;
        }
      }
    }
  }
  return y;
}

std::vector<Tensor> MaxPoolOp::backward(const Tensor& g) {
  Tensor dx(x_shape_);
  for (int64_t i = 0; i < g.numel(); ++i) {
    const int64_t idx = argmax_[static_cast<size_t>(i)];
    if (idx >= 0) dx[idx] += g[i];
  }
  return {dx};
}

Tensor AvgPoolOp::forward(const std::vector<const Tensor*>& in) {
  const Tensor& x = *in[0];
  if (x.rank() != 4) throw std::invalid_argument("AvgPool: input must be NHWC");
  x_shape_ = x.shape();
  const int64_t n = x.dim(0), h = x.dim(1), w = x.dim(2), c = x.dim(3);
  const int64_t oh = geom_.out_h(h), ow = geom_.out_w(w);
  Tensor y({n, oh, ow, c});
  const float* px = x.data();
  float* py = y.data();
  // Divisor is the full window size (count_include_pad), matching the
  // depthwise-conv-with-reciprocal replacement (reciprocal = 1/F^2, §4.1).
  const float inv = 1.0f / static_cast<float>(geom_.kh * geom_.kw);
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t oy = 0; oy < oh; ++oy) {
      for (int64_t ox = 0; ox < ow; ++ox) {
        float* out = py + ((b * oh + oy) * ow + ox) * c;
        const int64_t iy0 = oy * geom_.stride_h - geom_.pad_top;
        const int64_t ix0 = ox * geom_.stride_w - geom_.pad_left;
        for (int64_t ky = 0; ky < geom_.kh; ++ky) {
          const int64_t iy = iy0 + ky;
          if (iy < 0 || iy >= h) continue;
          for (int64_t kx = 0; kx < geom_.kw; ++kx) {
            const int64_t ix = ix0 + kx;
            if (ix < 0 || ix >= w) continue;
            const float* xi = px + ((b * h + iy) * w + ix) * c;
            for (int64_t ch = 0; ch < c; ++ch) out[ch] += xi[ch];
          }
        }
        for (int64_t ch = 0; ch < c; ++ch) out[ch] *= inv;
      }
    }
  }
  return y;
}

std::vector<Tensor> AvgPoolOp::backward(const Tensor& g) {
  const int64_t n = x_shape_[0], h = x_shape_[1], w = x_shape_[2], c = x_shape_[3];
  const int64_t oh = geom_.out_h(h), ow = geom_.out_w(w);
  Tensor dx(x_shape_);
  float* pdx = dx.data();
  const float* pg = g.data();
  const float inv = 1.0f / static_cast<float>(geom_.kh * geom_.kw);
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t oy = 0; oy < oh; ++oy) {
      for (int64_t ox = 0; ox < ow; ++ox) {
        const float* gout = pg + ((b * oh + oy) * ow + ox) * c;
        const int64_t iy0 = oy * geom_.stride_h - geom_.pad_top;
        const int64_t ix0 = ox * geom_.stride_w - geom_.pad_left;
        for (int64_t ky = 0; ky < geom_.kh; ++ky) {
          const int64_t iy = iy0 + ky;
          if (iy < 0 || iy >= h) continue;
          for (int64_t kx = 0; kx < geom_.kw; ++kx) {
            const int64_t ix = ix0 + kx;
            if (ix < 0 || ix >= w) continue;
            float* dxi = pdx + ((b * h + iy) * w + ix) * c;
            for (int64_t ch = 0; ch < c; ++ch) dxi[ch] += gout[ch] * inv;
          }
        }
      }
    }
  }
  return {dx};
}

Tensor GlobalAvgPoolOp::forward(const std::vector<const Tensor*>& in) {
  const Tensor& x = *in[0];
  if (x.rank() != 4) throw std::invalid_argument("GlobalAvgPool: input must be NHWC");
  x_shape_ = x.shape();
  const int64_t n = x.dim(0), h = x.dim(1), w = x.dim(2), c = x.dim(3);
  Tensor y({n, c});
  const float inv = 1.0f / static_cast<float>(h * w);
  const float* px = x.data();
  for (int64_t b = 0; b < n; ++b) {
    float* out = y.data() + b * c;
    for (int64_t i = 0; i < h * w; ++i) {
      const float* xi = px + (b * h * w + i) * c;
      for (int64_t ch = 0; ch < c; ++ch) out[ch] += xi[ch];
    }
    for (int64_t ch = 0; ch < c; ++ch) out[ch] *= inv;
  }
  return y;
}

std::vector<Tensor> GlobalAvgPoolOp::backward(const Tensor& g) {
  const int64_t n = x_shape_[0], h = x_shape_[1], w = x_shape_[2], c = x_shape_[3];
  Tensor dx(x_shape_);
  const float inv = 1.0f / static_cast<float>(h * w);
  for (int64_t b = 0; b < n; ++b) {
    const float* gout = g.data() + b * c;
    for (int64_t i = 0; i < h * w; ++i) {
      float* dxi = dx.data() + (b * h * w + i) * c;
      for (int64_t ch = 0; ch < c; ++ch) dxi[ch] += gout[ch] * inv;
    }
  }
  return {dx};
}

}  // namespace tqt
