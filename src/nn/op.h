// Operator interface of the static graph IR.
//
// The IR mirrors the paper's TensorFlow heritage: a network is a DAG of
// nodes, each node evaluates one Op, and *weights are nodes too* (Variable
// ops producing their parameter tensor). That choice is load-bearing: the
// Graffitist-style transforms in src/graph_opt quantize a network purely by
// splicing FakeQuant nodes onto edges (weight edges, activation edges), with
// no special-casing inside compute ops.
//
// Ops are stateful per training step: forward() may cache whatever it needs
// for the matching backward(). A graph executes forward once, then backward
// once, per step.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace tqt {

/// A named, trainable (or not) tensor with its gradient accumulator.
/// Parameters are shared_ptr-held because quantization scale-merging (§4.3 of
/// the paper) makes several FakeQuant nodes share one threshold parameter.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;
  bool trainable = true;
  /// Optimizer group tag: "weight", "bias", "bn", "threshold". The paper
  /// trains thresholds and weights with different learning rates (§5.2).
  std::string group = "weight";

  Param(std::string n, Tensor v, std::string g = "weight", bool train = true)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()), trainable(train), group(std::move(g)) {}

  void zero_grad() { grad.zero(); }
};

using ParamPtr = std::shared_ptr<Param>;

/// Base class for all graph operators.
class Op {
 public:
  virtual ~Op() = default;

  /// Stable type tag used by graph transforms for pattern matching
  /// (e.g. "Conv2D", "BatchNorm", "FakeQuant").
  virtual std::string type() const = 0;

  /// Compute the output from the inputs; may cache state for backward().
  virtual Tensor forward(const std::vector<const Tensor*>& inputs) = 0;

  /// Given dL/d(output), return dL/d(input_i) for every input, and
  /// accumulate parameter gradients into this op's Params.
  virtual std::vector<Tensor> backward(const Tensor& grad_out) = 0;

  /// Parameters owned (or shared) by this op; empty by default.
  virtual std::vector<ParamPtr> params() { return {}; }

  /// Train/eval mode switch (BatchNorm statistics, etc.). Default: no-op.
  virtual void set_training(bool) {}

  /// Number of inputs this op expects, or -1 for variadic (Concat).
  virtual int arity() const = 0;
};

}  // namespace tqt
