// Softmax cross-entropy loss, the training loss used throughout the paper's
// experiments ("Softmax cross-entropy loss is used to compute quantization
// threshold gradients", §5.2).
#pragma once

#include "nn/op.h"

namespace tqt {

/// Inputs: (logits [N,K], labels [N] holding class indices as floats).
/// Output: scalar mean cross-entropy over the batch.
class SoftmaxCrossEntropyOp final : public Op {
 public:
  std::string type() const override { return "SoftmaxCrossEntropy"; }
  int arity() const override { return 2; }
  Tensor forward(const std::vector<const Tensor*>& in) override;
  std::vector<Tensor> backward(const Tensor& g) override;

 private:
  Tensor probs_;   // softmax(logits)
  Tensor labels_;
};

/// 0.5 * sum((x - target)^2). Used by gradient-check tests and the toy L2
/// quantization problem of §3.4.
class L2LossOp final : public Op {
 public:
  std::string type() const override { return "L2Loss"; }
  int arity() const override { return 2; }
  Tensor forward(const std::vector<const Tensor*>& in) override;
  std::vector<Tensor> backward(const Tensor& g) override;

 private:
  Tensor diff_;
};

}  // namespace tqt
