#include "nn/ops_norm.h"

#include <cmath>
#include <stdexcept>

namespace tqt {

BatchNormOp::BatchNormOp(const std::string& name_prefix, int64_t channels, float momentum, float eps)
    : channels_(channels), momentum_(momentum), eps_(eps) {
  gamma_ = std::make_shared<Param>(name_prefix + "/gamma", Tensor({channels}, 1.0f), "bn");
  beta_ = std::make_shared<Param>(name_prefix + "/beta", Tensor({channels}), "bn");
  moving_mean_ = std::make_shared<Param>(name_prefix + "/moving_mean", Tensor({channels}), "bn", false);
  moving_var_ = std::make_shared<Param>(name_prefix + "/moving_var", Tensor({channels}, 1.0f), "bn", false);
}

Tensor BatchNormOp::forward(const std::vector<const Tensor*>& in) {
  const Tensor& x = *in[0];
  if (x.rank() < 2 || x.dim(-1) != channels_) {
    throw std::invalid_argument("BatchNorm: expected [..., " + std::to_string(channels_) + "], got " +
                                shape_to_string(x.shape()));
  }
  x_ = x;
  rows_ = x.numel() / channels_;
  used_batch_stats_ = training_ && !frozen_;

  Tensor mean({channels_});
  Tensor var({channels_});
  if (used_batch_stats_) {
    const float* px = x.data();
    for (int64_t r = 0; r < rows_; ++r) {
      const float* row = px + r * channels_;
      for (int64_t c = 0; c < channels_; ++c) mean[c] += row[c];
    }
    mean *= 1.0f / static_cast<float>(rows_);
    for (int64_t r = 0; r < rows_; ++r) {
      const float* row = px + r * channels_;
      for (int64_t c = 0; c < channels_; ++c) {
        const float d = row[c] - mean[c];
        var[c] += d * d;
      }
    }
    var *= 1.0f / static_cast<float>(rows_);
    // EMA update of moving statistics.
    for (int64_t c = 0; c < channels_; ++c) {
      moving_mean_->value[c] = momentum_ * moving_mean_->value[c] + (1.0f - momentum_) * mean[c];
      moving_var_->value[c] = momentum_ * moving_var_->value[c] + (1.0f - momentum_) * var[c];
    }
  } else {
    mean = moving_mean_->value;
    var = moving_var_->value;
  }

  mean_used_ = mean;
  inv_std_ = Tensor({channels_});
  for (int64_t c = 0; c < channels_; ++c) inv_std_[c] = 1.0f / std::sqrt(var[c] + eps_);

  x_hat_ = Tensor(x.shape());
  Tensor y(x.shape());
  const float* px = x.data();
  float* ph = x_hat_.data();
  float* py = y.data();
  for (int64_t r = 0; r < rows_; ++r) {
    const float* row = px + r * channels_;
    float* hrow = ph + r * channels_;
    float* yrow = py + r * channels_;
    for (int64_t c = 0; c < channels_; ++c) {
      hrow[c] = (row[c] - mean_used_[c]) * inv_std_[c];
      yrow[c] = gamma_->value[c] * hrow[c] + beta_->value[c];
    }
  }
  return y;
}

std::vector<Tensor> BatchNormOp::backward(const Tensor& g) {
  // Per-channel reductions of the upstream gradient.
  Tensor dgamma({channels_});
  Tensor dbeta({channels_});
  const float* pg = g.data();
  const float* ph = x_hat_.data();
  for (int64_t r = 0; r < rows_; ++r) {
    const float* grow = pg + r * channels_;
    const float* hrow = ph + r * channels_;
    for (int64_t c = 0; c < channels_; ++c) {
      dgamma[c] += grow[c] * hrow[c];
      dbeta[c] += grow[c];
    }
  }

  Tensor dx(x_.shape());
  float* pdx = dx.data();
  if (used_batch_stats_) {
    // Full batch-stats backward:
    // dx = gamma*inv_std/R * (R*g - sum(g) - x_hat * sum(g*x_hat))
    const float inv_r = 1.0f / static_cast<float>(rows_);
    for (int64_t r = 0; r < rows_; ++r) {
      const float* grow = pg + r * channels_;
      const float* hrow = ph + r * channels_;
      float* dxrow = pdx + r * channels_;
      for (int64_t c = 0; c < channels_; ++c) {
        dxrow[c] = gamma_->value[c] * inv_std_[c] * inv_r *
                   (static_cast<float>(rows_) * grow[c] - dbeta[c] - hrow[c] * dgamma[c]);
      }
    }
  } else {
    // Moving stats are constants: dx = g * gamma * inv_std.
    for (int64_t r = 0; r < rows_; ++r) {
      const float* grow = pg + r * channels_;
      float* dxrow = pdx + r * channels_;
      for (int64_t c = 0; c < channels_; ++c) dxrow[c] = grow[c] * gamma_->value[c] * inv_std_[c];
    }
  }

  if (gamma_->trainable) gamma_->grad += dgamma;
  if (beta_->trainable) beta_->grad += dbeta;
  return {std::move(dx)};
}

}  // namespace tqt
