#include "nn/ops_basic.h"

#include <stdexcept>

namespace tqt {

Tensor InputOp::forward(const std::vector<const Tensor*>&) {
  throw std::logic_error("InputOp::forward should never be called; feed the node instead");
}

VariableOp::VariableOp(ParamPtr param) : param_(std::move(param)) {
  if (!param_) throw std::invalid_argument("VariableOp: null param");
}

std::vector<Tensor> VariableOp::backward(const Tensor& grad_out) {
  if (param_->trainable) param_->grad += grad_out;
  return {};
}

Tensor ReluOp::forward(const std::vector<const Tensor*>& in) {
  const Tensor& x = *in[0];
  Tensor y(x.shape());
  mask_ = Tensor(x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) {
    const bool pos = x[i] > 0.0f;
    y[i] = pos ? x[i] : 0.0f;
    mask_[i] = pos ? 1.0f : 0.0f;
  }
  return y;
}

std::vector<Tensor> ReluOp::backward(const Tensor& g) { return {g * mask_}; }

Tensor Relu6Op::forward(const std::vector<const Tensor*>& in) {
  const Tensor& x = *in[0];
  Tensor y(x.shape());
  mask_ = Tensor(x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) {
    if (x[i] <= 0.0f) {
      y[i] = 0.0f;
      mask_[i] = 0.0f;
    } else if (x[i] >= 6.0f) {
      y[i] = 6.0f;
      mask_[i] = 0.0f;
    } else {
      y[i] = x[i];
      mask_[i] = 1.0f;
    }
  }
  return y;
}

std::vector<Tensor> Relu6Op::backward(const Tensor& g) { return {g * mask_}; }

Tensor LeakyReluOp::forward(const std::vector<const Tensor*>& in) {
  input_ = *in[0];
  Tensor y(input_.shape());
  for (int64_t i = 0; i < input_.numel(); ++i) {
    y[i] = input_[i] > 0.0f ? input_[i] : alpha_ * input_[i];
  }
  return y;
}

std::vector<Tensor> LeakyReluOp::backward(const Tensor& g) {
  Tensor dx(g.shape());
  for (int64_t i = 0; i < g.numel(); ++i) dx[i] = g[i] * (input_[i] > 0.0f ? 1.0f : alpha_);
  return {dx};
}

Tensor BiasAddOp::forward(const std::vector<const Tensor*>& in) {
  const Tensor& x = *in[0];
  const Tensor& b = *in[1];
  if (b.rank() != 1) throw std::invalid_argument("BiasAdd: bias must be rank 1");
  x_shape_ = x.shape();
  channels_ = b.dim(0);
  if (x.rank() < 1 || x.dim(-1) != channels_) {
    throw std::invalid_argument("BiasAdd: last dim " + shape_to_string(x.shape()) + " vs bias " +
                                std::to_string(channels_));
  }
  Tensor y = x;
  float* p = y.data();
  const float* pb = b.data();
  const int64_t rows = y.numel() / channels_;
  for (int64_t r = 0; r < rows; ++r) {
    float* row = p + r * channels_;
    for (int64_t c = 0; c < channels_; ++c) row[c] += pb[c];
  }
  return y;
}

std::vector<Tensor> BiasAddOp::backward(const Tensor& g) {
  Tensor db({channels_});
  const int64_t rows = g.numel() / channels_;
  const float* pg = g.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = pg + r * channels_;
    for (int64_t c = 0; c < channels_; ++c) db[c] += row[c];
  }
  return {g, db};
}

Tensor EltwiseAddOp::forward(const std::vector<const Tensor*>& in) {
  return *in[0] + *in[1];
}

Tensor ConcatOp::forward(const std::vector<const Tensor*>& in) {
  if (in.empty()) throw std::invalid_argument("Concat: needs at least one input");
  const Shape& s0 = in[0]->shape();
  channel_splits_.clear();
  int64_t total_c = 0;
  for (const Tensor* t : in) {
    if (t->rank() != static_cast<int64_t>(s0.size())) throw std::invalid_argument("Concat: rank mismatch");
    for (int64_t d = 0; d + 1 < t->rank(); ++d) {
      if (t->dim(d) != in[0]->dim(d)) throw std::invalid_argument("Concat: leading dim mismatch");
    }
    channel_splits_.push_back(t->dim(-1));
    total_c += t->dim(-1);
  }
  Shape out_shape = s0;
  out_shape.back() = total_c;
  out_shape_ = out_shape;
  Tensor y(out_shape);
  const int64_t rows = y.numel() / total_c;
  float* py = y.data();
  for (int64_t r = 0; r < rows; ++r) {
    float* dst = py + r * total_c;
    for (size_t k = 0; k < in.size(); ++k) {
      const int64_t c = channel_splits_[k];
      const float* src = in[k]->data() + r * c;
      for (int64_t j = 0; j < c; ++j) dst[j] = src[j];
      dst += c;
    }
  }
  return y;
}

std::vector<Tensor> ConcatOp::backward(const Tensor& g) {
  const int64_t total_c = out_shape_.back();
  const int64_t rows = g.numel() / total_c;
  std::vector<Tensor> grads;
  grads.reserve(channel_splits_.size());
  Shape base = out_shape_;
  for (int64_t c : channel_splits_) {
    base.back() = c;
    grads.emplace_back(base);
  }
  const float* pg = g.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* src = pg + r * total_c;
    for (size_t k = 0; k < channel_splits_.size(); ++k) {
      const int64_t c = channel_splits_[k];
      float* dst = grads[k].data() + r * c;
      for (int64_t j = 0; j < c; ++j) dst[j] = src[j];
      src += c;
    }
  }
  return grads;
}

Tensor FlattenOp::forward(const std::vector<const Tensor*>& in) {
  const Tensor& x = *in[0];
  if (x.rank() < 1) throw std::invalid_argument("Flatten: rank must be >= 1");
  in_shape_ = x.shape();
  return x.reshape({x.dim(0), -1});
}

std::vector<Tensor> FlattenOp::backward(const Tensor& g) { return {g.reshape(in_shape_)}; }

}  // namespace tqt
