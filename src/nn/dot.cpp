#include "nn/dot.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tqt {

namespace {
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

const char* style_for(const std::string& type) {
  if (type == "FakeQuant" || type == "AsymFakeQuant" || type == "UnfusedFakeQuant") {
    return "shape=box, style=filled, fillcolor=lightgoldenrod";
  }
  if (type == "Conv2D" || type == "DepthwiseConv2D" || type == "Dense") {
    return "shape=box, style=filled, fillcolor=lightblue";
  }
  if (type == "Variable") return "shape=ellipse, style=filled, fillcolor=lightgrey";
  if (type == "Input") return "shape=invhouse, style=filled, fillcolor=palegreen";
  return "shape=box";
}
}  // namespace

std::string graph_to_dot(const Graph& g, const std::string& title) {
  std::ostringstream os;
  os << "digraph \"" << escape(title) << "\" {\n";
  os << "  rankdir=TB;\n  node [fontsize=10, fontname=\"Helvetica\"];\n";
  for (NodeId id : g.live_nodes()) {
    const Node& n = g.node(id);
    os << "  n" << id << " [label=\"" << escape(n.name) << "\\n(" << escape(n.op->type())
       << ")\", " << style_for(n.op->type()) << "];\n";
  }
  for (NodeId id : g.live_nodes()) {
    for (NodeId in : g.node(id).inputs) {
      os << "  n" << in << " -> n" << id << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

void write_dot(const Graph& g, const std::string& path, const std::string& title) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  os << graph_to_dot(g, title);
  if (!os) throw std::runtime_error("write failed: " + path);
}

}  // namespace tqt
