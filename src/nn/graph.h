// Static computation graph: nodes, topological execution, backprop, and the
// surgery primitives the Graffitist-style transform passes are built on.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "nn/op.h"
#include "tensor/tensor.h"

namespace tqt {

using NodeId = int;
constexpr NodeId kNoNode = -1;

/// One vertex of the graph: an Op plus its input edges and per-step runtime
/// state (output value and accumulated output gradient).
struct Node {
  NodeId id = kNoNode;
  std::string name;
  std::unique_ptr<Op> op;
  std::vector<NodeId> inputs;

  // Runtime state, valid between forward() and the end of backward().
  Tensor output;
  Tensor grad;
  bool computed = false;
  bool has_grad = false;
};

/// Feeds for placeholder (Input) nodes, keyed by node id.
using Feed = std::map<NodeId, Tensor>;

class Graph {
 public:
  Graph() = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  /// Add a node; `inputs` must be ids of existing nodes. Names must be
  /// unique; an empty name is auto-generated from the op type.
  NodeId add(std::string name, std::unique_ptr<Op> op, std::vector<NodeId> inputs = {});

  Node& node(NodeId id);
  const Node& node(NodeId id) const;
  int64_t node_count() const { return static_cast<int64_t>(nodes_.size()); }

  /// Find a live node by exact name; kNoNode if absent.
  NodeId find(const std::string& name) const;

  /// Ids of all live nodes, in insertion order.
  std::vector<NodeId> live_nodes() const;

  /// Live nodes whose op reports the given type.
  std::vector<NodeId> nodes_of_type(const std::string& type) const;

  /// Ids of live nodes that consume `id` as an input.
  std::vector<NodeId> consumers(NodeId id) const;

  // ---- Surgery (used by transform passes) --------------------------------

  /// Rewire every consumer of `from` (optionally restricted to `only`) to
  /// read `to` instead.
  void rewire_consumers(NodeId from, NodeId to, const std::vector<NodeId>* only = nullptr);

  /// Replace occurrences of input `old_in` with `new_in` on node `id`.
  void replace_input(NodeId id, NodeId old_in, NodeId new_in);

  /// Mark a node dead. Dead nodes are never executed and never returned by
  /// find/live_nodes; ids of other nodes are unaffected.
  void remove(NodeId id);

  /// Insert a new node consuming `producer` and rewire `producer`'s previous
  /// consumers to the new node. Returns the new node's id.
  NodeId insert_after(NodeId producer, std::string name, std::unique_ptr<Op> op);

  /// Insert a new node on the single edge producer -> consumer.
  NodeId insert_on_edge(NodeId producer, NodeId consumer, std::string name, std::unique_ptr<Op> op);

  // ---- Execution ----------------------------------------------------------

  /// Topological order of the ancestors of `outputs` (inclusive).
  std::vector<NodeId> topo_order(const std::vector<NodeId>& outputs) const;

  /// Evaluate the graph for the given feeds; returns node(output).output.
  /// All runtime state of ancestor nodes is refreshed.
  Tensor run(const Feed& feeds, NodeId output);

  /// Evaluate several outputs in one pass.
  std::vector<Tensor> run_multi(const Feed& feeds, const std::vector<NodeId>& outputs);

  /// Backprop from `loss` (must be scalar and previously run). Seeds
  /// dL/dloss = 1 and accumulates parameter gradients.
  void backward(NodeId loss);

  // ---- Parameters ---------------------------------------------------------

  /// Unique parameters reachable from live nodes, in first-seen order.
  std::vector<ParamPtr> params() const;

  /// Zero every parameter gradient.
  void zero_grad();

  /// Train/eval mode for all ops.
  void set_training(bool training);

  /// Snapshot of all named parameter values (for save/load).
  std::map<std::string, Tensor> state_dict() const;

  /// Load values by parameter name; throws if a name is missing or a shape
  /// mismatches. Extra entries in `state` are ignored.
  void load_state_dict(const std::map<std::string, Tensor>& state);

 private:
  std::vector<std::unique_ptr<Node>> nodes_;
  std::map<std::string, NodeId> by_name_;
  std::vector<bool> dead_;
  std::vector<NodeId> last_order_;  // topo order of the most recent run
  int anon_counter_ = 0;
};

}  // namespace tqt
