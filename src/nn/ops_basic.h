// Elementwise / structural graph ops: placeholders, variables, identity,
// activations, bias add, eltwise add, concat, flatten.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/op.h"

namespace tqt {

/// Placeholder fed at run time. The Graph feeds its output directly;
/// forward() is never called.
class InputOp final : public Op {
 public:
  std::string type() const override { return "Input"; }
  int arity() const override { return 0; }
  Tensor forward(const std::vector<const Tensor*>&) override;
  std::vector<Tensor> backward(const Tensor&) override { return {}; }
};

/// Produces a parameter tensor; backward accumulates into the parameter's
/// gradient. Weights/biases enter the graph through this op so transform
/// passes can splice quantizers onto the weight edge.
class VariableOp final : public Op {
 public:
  explicit VariableOp(ParamPtr param);
  std::string type() const override { return "Variable"; }
  int arity() const override { return 0; }
  Tensor forward(const std::vector<const Tensor*>&) override { return param_->value; }
  std::vector<Tensor> backward(const Tensor& grad_out) override;
  std::vector<ParamPtr> params() override { return {param_}; }
  const ParamPtr& param() const { return param_; }

 private:
  ParamPtr param_;
};

/// Pass-through; exists so the identity-splicing transform has something to
/// splice (mirrors Graffitist's handling of TF Identity nodes).
class IdentityOp final : public Op {
 public:
  std::string type() const override { return "Identity"; }
  int arity() const override { return 1; }
  Tensor forward(const std::vector<const Tensor*>& in) override { return *in[0]; }
  std::vector<Tensor> backward(const Tensor& g) override { return {g}; }
};

class ReluOp final : public Op {
 public:
  std::string type() const override { return "Relu"; }
  int arity() const override { return 1; }
  Tensor forward(const std::vector<const Tensor*>& in) override;
  std::vector<Tensor> backward(const Tensor& g) override;

 private:
  Tensor mask_;
};

class Relu6Op final : public Op {
 public:
  std::string type() const override { return "Relu6"; }
  int arity() const override { return 1; }
  Tensor forward(const std::vector<const Tensor*>& in) override;
  std::vector<Tensor> backward(const Tensor& g) override;

 private:
  Tensor mask_;
};

/// Leaky ReLU with fixed slope alpha (an attribute, as in DarkNet; the
/// quantize pass reads alpha to build the q16 internal path of §4.3).
class LeakyReluOp final : public Op {
 public:
  explicit LeakyReluOp(float alpha) : alpha_(alpha) {}
  std::string type() const override { return "LeakyRelu"; }
  int arity() const override { return 1; }
  float alpha() const { return alpha_; }
  /// The quantize pass replaces alpha with its q16 representation (§4.3).
  void set_alpha(float alpha) { alpha_ = alpha; }
  Tensor forward(const std::vector<const Tensor*>& in) override;
  std::vector<Tensor> backward(const Tensor& g) override;

 private:
  float alpha_;
  Tensor input_;
};

/// x + b where b has shape [C] and x has shape [..., C].
class BiasAddOp final : public Op {
 public:
  std::string type() const override { return "BiasAdd"; }
  int arity() const override { return 2; }
  Tensor forward(const std::vector<const Tensor*>& in) override;
  std::vector<Tensor> backward(const Tensor& g) override;

 private:
  Shape x_shape_;
  int64_t channels_ = 0;
};

/// Elementwise sum of two same-shape tensors (residual connections).
class EltwiseAddOp final : public Op {
 public:
  std::string type() const override { return "EltwiseAdd"; }
  int arity() const override { return 2; }
  Tensor forward(const std::vector<const Tensor*>& in) override;
  std::vector<Tensor> backward(const Tensor& g) override { return {g, g}; }
};

/// Concatenation along the last (channel) axis.
class ConcatOp final : public Op {
 public:
  std::string type() const override { return "Concat"; }
  int arity() const override { return -1; }
  Tensor forward(const std::vector<const Tensor*>& in) override;
  std::vector<Tensor> backward(const Tensor& g) override;

 private:
  std::vector<int64_t> channel_splits_;
  Shape out_shape_;
};

/// [N, ...] -> [N, prod(...)].
class FlattenOp final : public Op {
 public:
  std::string type() const override { return "Flatten"; }
  int arity() const override { return 1; }
  Tensor forward(const std::vector<const Tensor*>& in) override;
  std::vector<Tensor> backward(const Tensor& g) override;

 private:
  Shape in_shape_;
};

}  // namespace tqt
