#include "nn/ops_loss.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace tqt {

Tensor SoftmaxCrossEntropyOp::forward(const std::vector<const Tensor*>& in) {
  const Tensor& logits = *in[0];
  const Tensor& labels = *in[1];
  if (logits.rank() != 2) throw std::invalid_argument("SoftmaxCE: logits must be [N,K]");
  if (labels.rank() != 1 || labels.dim(0) != logits.dim(0)) {
    throw std::invalid_argument("SoftmaxCE: labels must be [N]");
  }
  probs_ = softmax_rows(logits);
  labels_ = labels;
  const int64_t n = logits.dim(0), k = logits.dim(1);
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t y = static_cast<int64_t>(labels[i]);
    if (y < 0 || y >= k) throw std::invalid_argument("SoftmaxCE: label out of range");
    loss -= std::log(std::max(probs_[i * k + y], 1e-12f));
  }
  return Tensor::scalar(static_cast<float>(loss / static_cast<double>(n)));
}

std::vector<Tensor> SoftmaxCrossEntropyOp::backward(const Tensor& g) {
  const float scale = g.item();
  const int64_t n = probs_.dim(0), k = probs_.dim(1);
  Tensor dlogits = probs_;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t y = static_cast<int64_t>(labels_[i]);
    dlogits[i * k + y] -= 1.0f;
  }
  dlogits *= scale * inv_n;
  // Labels get a zero gradient of matching shape.
  return {std::move(dlogits), Tensor(labels_.shape())};
}

Tensor L2LossOp::forward(const std::vector<const Tensor*>& in) {
  const Tensor& x = *in[0];
  const Tensor& target = *in[1];
  if (x.shape() != target.shape()) throw std::invalid_argument("L2Loss: shape mismatch");
  diff_ = x - target;
  double acc = 0.0;
  for (int64_t i = 0; i < diff_.numel(); ++i) acc += 0.5 * static_cast<double>(diff_[i]) * diff_[i];
  return Tensor::scalar(static_cast<float>(acc));
}

std::vector<Tensor> L2LossOp::backward(const Tensor& g) {
  const float s = g.item();
  Tensor dx = diff_ * s;
  Tensor dt = diff_ * -s;
  return {std::move(dx), std::move(dt)};
}

}  // namespace tqt
