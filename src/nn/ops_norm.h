// Batch normalization over the channel axis of NHWC (or [N,C]) tensors.
//
// Modes (following §4.1 of the paper / Jacob et al. 2017 best practice):
//  - training, not frozen: normalize with batch statistics, update moving
//    statistics with EMA;
//  - training, frozen: normalize with the (fixed) moving statistics while
//    gamma/beta keep training — "freeze batch norm moving mean and variance
//    updates post convergence";
//  - inference: moving statistics.
//
// The BN-fold transform (src/graph_opt) consumes gamma/beta/moving stats and
// removes this op from inference/quantized graphs.
#pragma once

#include "nn/op.h"

namespace tqt {

class BatchNormOp final : public Op {
 public:
  /// channels: size of the last axis. momentum: EMA coefficient for moving
  /// statistics (moving = momentum*moving + (1-momentum)*batch).
  BatchNormOp(const std::string& name_prefix, int64_t channels, float momentum = 0.95f,
              float eps = 1e-5f);

  std::string type() const override { return "BatchNorm"; }
  int arity() const override { return 1; }
  Tensor forward(const std::vector<const Tensor*>& in) override;
  std::vector<Tensor> backward(const Tensor& g) override;
  std::vector<ParamPtr> params() override { return {gamma_, beta_, moving_mean_, moving_var_}; }
  void set_training(bool training) override { training_ = training; }

  /// Stop updating moving statistics (but keep training gamma/beta).
  void freeze_stats(bool frozen) { frozen_ = frozen; }
  bool stats_frozen() const { return frozen_; }

  float eps() const { return eps_; }
  const ParamPtr& gamma() const { return gamma_; }
  const ParamPtr& beta() const { return beta_; }
  const ParamPtr& moving_mean() const { return moving_mean_; }
  const ParamPtr& moving_var() const { return moving_var_; }

 private:
  int64_t channels_;
  float momentum_;
  float eps_;
  bool training_ = false;
  bool frozen_ = false;

  ParamPtr gamma_, beta_;
  ParamPtr moving_mean_, moving_var_;  // non-trainable

  // Cached forward state for backward.
  Tensor x_hat_;     // normalized input
  Tensor inv_std_;   // per-channel 1/sqrt(var+eps) actually used
  Tensor mean_used_; // per-channel mean actually used
  Tensor x_;
  bool used_batch_stats_ = false;
  int64_t rows_ = 0;
};

}  // namespace tqt
