#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace tqt::net {

int GatewayClient::connect_fd(const std::string& host, uint16_t port, int recv_timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string ip = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    throw ClientError("client: not an IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw ClientError("client: socket failed: " + std::string(std::strerror(errno)));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw ClientError("client: cannot connect to " + host + ":" + std::to_string(port) +
                      ": " + why);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  if (recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = recv_timeout_ms / 1000;
    tv.tv_usec = (recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  }
  return fd;
}

GatewayClient::GatewayClient(const std::string& host, uint16_t port, int recv_timeout_ms)
    : host_(host), port_(port), recv_timeout_ms_(recv_timeout_ms) {
  fd_ = connect_fd(host, port, recv_timeout_ms);
}

GatewayClient::~GatewayClient() { close(); }

void GatewayClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (hedge_fd_ >= 0) {
    ::close(hedge_fd_);
    hedge_fd_ = -1;
  }
}

void GatewayClient::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void GatewayClient::send_all_on(int fd, const uint8_t* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t k = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (k > 0) {
      sent += static_cast<size_t>(k);
      continue;
    }
    if (k < 0 && errno == EINTR) continue;
    throw ClientError("client: send failed: " + std::string(std::strerror(errno)));
  }
}

void GatewayClient::send_bytes(const void* data, size_t n) {
  send_all(static_cast<const uint8_t*>(data), n);
}

bool GatewayClient::recv_exact(uint8_t* buf, size_t n, bool eof_ok) {
  // Serve bytes already buffered by a hedged/stale-skipping read first.
  size_t got = 0;
  if (!in_.empty()) {
    got = std::min(n, in_.size());
    std::memcpy(buf, in_.data(), got);
    in_.erase(in_.begin(), in_.begin() + static_cast<long>(got));
  }
  while (got < n) {
    const ssize_t k = ::recv(fd_, buf + got, n - got, 0);
    if (k > 0) {
      got += static_cast<size_t>(k);
      continue;
    }
    if (k == 0) {
      if (eof_ok && got == 0) return false;
      throw ClientError("client: connection closed mid-frame");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw ClientError("client: receive timed out");
    }
    throw ClientError("client: recv failed: " + std::string(std::strerror(errno)));
  }
  return true;
}

size_t GatewayClient::recv_raw(void* buf, size_t max) {
  if (!in_.empty()) {
    const size_t got = std::min(max, in_.size());
    std::memcpy(buf, in_.data(), got);
    in_.erase(in_.begin(), in_.begin() + static_cast<long>(got));
    return got;
  }
  for (;;) {
    const ssize_t k = ::recv(fd_, buf, max, 0);
    if (k >= 0) return static_cast<size_t>(k);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw ClientError("client: receive timed out");
    }
    throw ClientError("client: recv failed: " + std::string(std::strerror(errno)));
  }
}

uint32_t GatewayClient::send_infer(const std::string& model, const Tensor& sample,
                                   uint32_t deadline_us) {
  const uint32_t id = next_request_id_++;
  InferRequest req;
  req.model = model;
  req.deadline_us = deadline_us;
  req.input = sample;
  req.token = token_;
  std::vector<uint8_t> frame;
  append_request_frame(frame, id, req);
  send_all(frame.data(), frame.size());
  return id;
}

void GatewayClient::send_cancel_on(int fd, uint32_t request_id) {
  std::vector<uint8_t> frame;
  append_cancel_frame(frame, request_id);
  send_all_on(fd, frame.data(), frame.size());
}

void GatewayClient::cancel(uint32_t request_id) {
  send_cancel_on(fd_, request_id);
  stale_.insert(request_id);
}

bool GatewayClient::pop_response(std::vector<uint8_t>& buf, TaggedResponse* out) {
  FrameHeader h;
  std::string err;
  const HeaderParse hp = parse_header(buf.data(), buf.size(), &h, &err);
  if (hp == HeaderParse::kNeedMore) return false;
  if (hp == HeaderParse::kCorrupt) {
    throw ClientError("client: bad frame from server: " + err);
  }
  if (buf.size() < kHeaderBytes + h.payload_len) return false;
  if (h.type != FrameType::kResponse) {
    throw ClientError("client: server sent a non-response frame");
  }
  out->request_id = h.request_id;
  if (!parse_response_payload(buf.data() + kHeaderBytes, h.payload_len, h.status,
                              &out->response, &err)) {
    throw ClientError("client: bad response payload: " + err);
  }
  buf.erase(buf.begin(), buf.begin() + static_cast<long>(kHeaderBytes + h.payload_len));
  return true;
}

GatewayClient::TaggedResponse GatewayClient::recv_response() {
  for (;;) {
    TaggedResponse t;
    while (pop_response(in_, &t)) {
      if (stale_.erase(t.request_id) > 0) continue;  // cancelled / hedge loser
      return t;
    }
    uint8_t buf[64 * 1024];
    const ssize_t k = ::recv(fd_, buf, sizeof buf, 0);
    if (k > 0) {
      in_.insert(in_.end(), buf, buf + k);
      continue;
    }
    if (k == 0) throw ClientError("client: connection closed mid-frame");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw ClientError("client: receive timed out");
    }
    throw ClientError("client: recv failed: " + std::string(std::strerror(errno)));
  }
}

AdminResponse GatewayClient::admin(const AdminRequest& req) {
  const uint32_t id = next_request_id_++;
  std::vector<uint8_t> frame;
  append_admin_request_frame(frame, id, req);
  send_all(frame.data(), frame.size());

  uint8_t header[kHeaderBytes];
  recv_exact(header, kHeaderBytes, /*eof_ok=*/false);
  FrameHeader h;
  std::string err;
  if (parse_header(header, kHeaderBytes, &h, &err) != HeaderParse::kOk) {
    throw ClientError("client: bad frame from server: " + err);
  }
  if (h.type != FrameType::kAdminResponse) {
    throw ClientError("client: server sent a non-admin-response frame");
  }
  if (h.request_id != id) {
    throw ClientError("client: admin response id mismatch");
  }
  std::vector<uint8_t> payload(h.payload_len);
  if (h.payload_len > 0) recv_exact(payload.data(), payload.size(), /*eof_ok=*/false);
  AdminResponse resp;
  if (!parse_admin_response_payload(payload.data(), payload.size(), h.status, &resp, &err)) {
    throw ClientError("client: bad admin response payload: " + err);
  }
  return resp;
}

bool GatewayClient::take_response(std::vector<uint8_t>& buf, std::set<uint32_t>& stale,
                                  uint32_t id, InferResponse* out) {
  TaggedResponse t;
  while (pop_response(buf, &t)) {
    if (stale.erase(t.request_id) > 0) continue;
    if (t.request_id != id) {
      throw ClientError("client: response id mismatch (lock-step infer)");
    }
    *out = std::move(t.response);
    return true;
  }
  return false;
}

InferResponse GatewayClient::infer(const std::string& model, const Tensor& sample,
                                   uint32_t deadline_us) {
  uint32_t backoff = hedge_.shed_backoff_us > 0 ? hedge_.shed_backoff_us : 1000;
  for (int attempt = 0;; ++attempt) {
    InferResponse resp = infer_attempt(model, sample, deadline_us);
    if (resp.status == WireStatus::kShed && attempt < hedge_.shed_retries) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff));
      backoff = std::min<uint32_t>(backoff * 2, 100000);
      continue;
    }
    return resp;
  }
}

InferResponse GatewayClient::infer_attempt(const std::string& model, const Tensor& sample,
                                           uint32_t deadline_us) {
  const uint32_t id = send_infer(model, sample, deadline_us);
  if (hedge_.hedge_after_us == 0) {
    TaggedResponse tagged = recv_response();
    if (tagged.request_id != id) {
      throw ClientError("client: response id mismatch (lock-step infer)");
    }
    return std::move(tagged.response);
  }
  return hedged_wait(id, model, sample, deadline_us);
}

InferResponse GatewayClient::hedged_wait(uint32_t id, const std::string& model,
                                         const Tensor& sample, uint32_t deadline_us) {
  using clock = std::chrono::steady_clock;
  const auto start = clock::now();
  auto hedge_at = start + std::chrono::microseconds(hedge_.hedge_after_us);
  const auto give_up = recv_timeout_ms_ > 0
                           ? start + std::chrono::milliseconds(recv_timeout_ms_)
                           : clock::time_point::max();
  bool hedge_sent = false;
  bool primary_alive = true;

  for (;;) {
    InferResponse out;
    if (primary_alive && take_response(in_, stale_, id, &out)) {
      if (hedge_sent && hedge_fd_ >= 0) {
        // Primary won the race: cancel the duplicate, void its response.
        send_cancel_on(hedge_fd_, id);
        stale_hedge_.insert(id);
      }
      return out;
    }
    if (hedge_sent && hedge_fd_ >= 0 && take_response(hedge_in_, stale_hedge_, id, &out)) {
      ++hedge_wins_;
      if (primary_alive && fd_ >= 0) {
        send_cancel_on(fd_, id);
        stale_.insert(id);
      }
      return out;
    }

    const auto now = clock::now();
    if (now >= give_up) throw ClientError("client: receive timed out");
    if (!hedge_sent && now >= hedge_at) {
      // Slow primary: fire the duplicate (same request id) on the second
      // connection. A hedge that cannot connect/send is non-fatal — the
      // primary race continues alone.
      try {
        if (hedge_fd_ < 0) hedge_fd_ = connect_fd(host_, port_, recv_timeout_ms_);
        InferRequest req;
        req.model = model;
        req.deadline_us = deadline_us;
        req.input = sample;
        req.token = token_;
        std::vector<uint8_t> frame;
        append_request_frame(frame, id, req);
        send_all_on(hedge_fd_, frame.data(), frame.size());
        hedge_sent = true;
        ++hedges_sent_;
      } catch (const ClientError&) {
        hedge_at = clock::time_point::max();
        if (hedge_fd_ >= 0) {
          ::close(hedge_fd_);
          hedge_fd_ = -1;
        }
      }
    }

    pollfd pfds[2];
    nfds_t nfds = 0;
    int primary_slot = -1, hedge_slot = -1;
    if (primary_alive && fd_ >= 0) {
      primary_slot = static_cast<int>(nfds);
      pfds[nfds++] = {fd_, POLLIN, 0};
    }
    if (hedge_sent && hedge_fd_ >= 0) {
      hedge_slot = static_cast<int>(nfds);
      pfds[nfds++] = {hedge_fd_, POLLIN, 0};
    }
    if (nfds == 0) throw ClientError("client: connection closed mid-frame");
    auto until = give_up;
    if (!hedge_sent && hedge_at < until) until = hedge_at;
    const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(until - clock::now());
    const int timeout_ms = std::max(1, static_cast<int>(std::min<int64_t>(wait.count() + 1, 1000)));
    ::poll(pfds, nfds, timeout_ms);

    const auto drain = [](int fd, std::vector<uint8_t>& buf) -> bool {
      uint8_t tmp[64 * 1024];
      const ssize_t k = ::recv(fd, tmp, sizeof tmp, MSG_DONTWAIT);
      if (k > 0) {
        buf.insert(buf.end(), tmp, tmp + k);
        return true;
      }
      if (k < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      return false;  // EOF or hard error
    };
    if (primary_slot >= 0 && (pfds[primary_slot].revents & (POLLIN | POLLHUP | POLLERR))) {
      if (!drain(fd_, in_)) {
        // Primary died mid-race: survivable iff the hedge is in flight.
        if (!hedge_sent || hedge_fd_ < 0) {
          throw ClientError("client: connection closed mid-frame");
        }
        ::close(fd_);
        fd_ = -1;
        primary_alive = false;
      }
    }
    if (hedge_slot >= 0 && (pfds[hedge_slot].revents & (POLLIN | POLLHUP | POLLERR))) {
      if (!drain(hedge_fd_, hedge_in_)) {
        ::close(hedge_fd_);
        hedge_fd_ = -1;
        hedge_in_.clear();
        if (!primary_alive) throw ClientError("client: connection closed mid-frame");
      }
    }
  }
}

}  // namespace tqt::net
