#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tqt::net {

GatewayClient::GatewayClient(const std::string& host, uint16_t port, int recv_timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string ip = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    throw ClientError("client: not an IPv4 address: " + host);
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw ClientError("client: socket failed: " + std::string(std::strerror(errno)));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw ClientError("client: cannot connect to " + host + ":" + std::to_string(port) +
                      ": " + why);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  if (recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = recv_timeout_ms / 1000;
    tv.tv_usec = (recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  }
}

GatewayClient::~GatewayClient() { close(); }

void GatewayClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void GatewayClient::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void GatewayClient::send_all(const uint8_t* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t k = ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
    if (k > 0) {
      sent += static_cast<size_t>(k);
      continue;
    }
    if (k < 0 && errno == EINTR) continue;
    throw ClientError("client: send failed: " + std::string(std::strerror(errno)));
  }
}

void GatewayClient::send_bytes(const void* data, size_t n) {
  send_all(static_cast<const uint8_t*>(data), n);
}

bool GatewayClient::recv_exact(uint8_t* buf, size_t n, bool eof_ok) {
  size_t got = 0;
  while (got < n) {
    const ssize_t k = ::recv(fd_, buf + got, n - got, 0);
    if (k > 0) {
      got += static_cast<size_t>(k);
      continue;
    }
    if (k == 0) {
      if (eof_ok && got == 0) return false;
      throw ClientError("client: connection closed mid-frame");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw ClientError("client: receive timed out");
    }
    throw ClientError("client: recv failed: " + std::string(std::strerror(errno)));
  }
  return true;
}

size_t GatewayClient::recv_raw(void* buf, size_t max) {
  for (;;) {
    const ssize_t k = ::recv(fd_, buf, max, 0);
    if (k >= 0) return static_cast<size_t>(k);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw ClientError("client: receive timed out");
    }
    throw ClientError("client: recv failed: " + std::string(std::strerror(errno)));
  }
}

uint32_t GatewayClient::send_infer(const std::string& model, const Tensor& sample,
                                   uint32_t deadline_us) {
  const uint32_t id = next_request_id_++;
  InferRequest req;
  req.model = model;
  req.deadline_us = deadline_us;
  req.input = sample;
  std::vector<uint8_t> frame;
  append_request_frame(frame, id, req);
  send_all(frame.data(), frame.size());
  return id;
}

GatewayClient::TaggedResponse GatewayClient::recv_response() {
  uint8_t header[kHeaderBytes];
  if (!recv_exact(header, kHeaderBytes, /*eof_ok=*/false)) {
    throw ClientError("client: connection closed");  // unreachable (eof_ok=false throws)
  }
  FrameHeader h;
  std::string err;
  if (parse_header(header, kHeaderBytes, &h, &err) != HeaderParse::kOk) {
    throw ClientError("client: bad frame from server: " + err);
  }
  if (h.type != FrameType::kResponse) {
    throw ClientError("client: server sent a non-response frame");
  }
  std::vector<uint8_t> payload(h.payload_len);
  if (h.payload_len > 0) recv_exact(payload.data(), payload.size(), /*eof_ok=*/false);
  TaggedResponse tagged;
  tagged.request_id = h.request_id;
  if (!parse_response_payload(payload.data(), payload.size(), h.status, &tagged.response,
                              &err)) {
    throw ClientError("client: bad response payload: " + err);
  }
  return tagged;
}

AdminResponse GatewayClient::admin(const AdminRequest& req) {
  const uint32_t id = next_request_id_++;
  std::vector<uint8_t> frame;
  append_admin_request_frame(frame, id, req);
  send_all(frame.data(), frame.size());

  uint8_t header[kHeaderBytes];
  recv_exact(header, kHeaderBytes, /*eof_ok=*/false);
  FrameHeader h;
  std::string err;
  if (parse_header(header, kHeaderBytes, &h, &err) != HeaderParse::kOk) {
    throw ClientError("client: bad frame from server: " + err);
  }
  if (h.type != FrameType::kAdminResponse) {
    throw ClientError("client: server sent a non-admin-response frame");
  }
  if (h.request_id != id) {
    throw ClientError("client: admin response id mismatch");
  }
  std::vector<uint8_t> payload(h.payload_len);
  if (h.payload_len > 0) recv_exact(payload.data(), payload.size(), /*eof_ok=*/false);
  AdminResponse resp;
  if (!parse_admin_response_payload(payload.data(), payload.size(), h.status, &resp, &err)) {
    throw ClientError("client: bad admin response payload: " + err);
  }
  return resp;
}

InferResponse GatewayClient::infer(const std::string& model, const Tensor& sample,
                                   uint32_t deadline_us) {
  const uint32_t id = send_infer(model, sample, deadline_us);
  TaggedResponse tagged = recv_response();
  if (tagged.request_id != id) {
    throw ClientError("client: response id mismatch (lock-step infer)");
  }
  return std::move(tagged.response);
}

}  // namespace tqt::net
