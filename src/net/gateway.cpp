#include "net/gateway.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "observe/observe.h"

namespace tqt::net {

namespace {

WireStatus wire_status_of(serve::SubmitStatus s) {
  switch (s) {
    case serve::SubmitStatus::kOk: return WireStatus::kOk;
    case serve::SubmitStatus::kShed: return WireStatus::kShed;
    case serve::SubmitStatus::kShuttingDown: return WireStatus::kShuttingDown;
    case serve::SubmitStatus::kUnknownModel: return WireStatus::kBadModel;
    case serve::SubmitStatus::kDeadlineExceeded: return WireStatus::kDeadlineExceeded;
    case serve::SubmitStatus::kRateLimited: return WireStatus::kRateLimited;
    case serve::SubmitStatus::kQuotaExceeded: return WireStatus::kQuotaExceeded;
    case serve::SubmitStatus::kCancelled: return WireStatus::kCancelled;
  }
  return WireStatus::kInternal;
}

}  // namespace

// ---- Shared (callback-visible) state ---------------------------------------

Gateway::Shared::~Shared() {
  if (wake_w >= 0) ::close(wake_w);
}

void Gateway::Shared::wake() const {
  const char b = 1;
  // A full pipe is fine: the loop is already scheduled to wake.
  [[maybe_unused]] const ssize_t r = ::write(wake_w, &b, 1);
}

void Gateway::Shared::push(CompletionMsg&& m) {
  {
    std::lock_guard<std::mutex> lk(mu);
    completions.push_back(std::move(m));
  }
  wake();
  // The decrement is the last touch of shared state for this request; the
  // loop (or stop_and_drain) may observe 0 and tear down right after.
  inflight.fetch_sub(1, std::memory_order_release);
}

// ---- Construction ----------------------------------------------------------

Gateway::Gateway(serve::InferenceServer& server, GatewayConfig cfg)
    : server_(server), cfg_(cfg), shared_(std::make_shared<Shared>()) {
  if (cfg_.max_connections < 1) throw std::invalid_argument("gateway: max_connections >= 1");
  if (cfg_.max_inflight < 1) throw std::invalid_argument("gateway: max_inflight >= 1");

  observe::MetricsRegistry& reg = server_.metrics();
  const std::string& p = cfg_.metric_prefix;
  accepted_ = &reg.counter(p + "connections_accepted");
  rejected_ = &reg.counter(p + "connections_rejected");
  requests_ = &reg.counter(p + "requests");
  admin_requests_ = &reg.counter(p + "admin_requests");
  responses_ = &reg.counter(p + "responses");
  sheds_ = &reg.counter(p + "sheds");
  deadline_drops_ = &reg.counter(p + "deadline_drops");
  malformed_ = &reg.counter(p + "malformed");
  bad_model_ = &reg.counter(p + "bad_model");
  bytes_in_ = &reg.counter(p + "bytes_in");
  bytes_out_ = &reg.counter(p + "bytes_out");
  rate_limited_ = &reg.counter(p + "rate_limited");
  quota_exceeded_ = &reg.counter(p + "quota_exceeded");
  cancels_ = &reg.counter(p + "cancel_frames");
  cancelled_ = &reg.counter(p + "cancelled");
  slow_reads_closed_ = &reg.counter(p + "slow_reads_closed");
  slow_writes_closed_ = &reg.counter(p + "slow_writes_closed");
  connections_ = &reg.gauge(p + "connections");
  inflight_gauge_ = &reg.gauge(p + "inflight");

  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    throw std::runtime_error("gateway: pipe2 failed: " + std::string(std::strerror(errno)));
  }
  wake_r_ = pipe_fds[0];
  shared_->wake_w = pipe_fds[1];

  if (cfg_.listen) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      throw std::runtime_error("gateway: socket failed: " + std::string(std::strerror(errno)));
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (cfg_.reuse_port) {
      ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one);
    }

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(cfg_.loopback_only ? INADDR_LOOPBACK : INADDR_ANY);
    addr.sin_port = htons(cfg_.port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(listen_fd_, cfg_.backlog) != 0) {
      const std::string why = std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error("gateway: cannot listen on port " + std::to_string(cfg_.port) +
                               ": " + why);
    }
    socklen_t len = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
  }

  loop_thread_ = std::thread([this] { loop(); });
}

Gateway::~Gateway() {
  stop_and_drain();
  if (wake_r_ >= 0) ::close(wake_r_);
}

void Gateway::request_stop() {
  stop_flag_.store(true, std::memory_order_release);
  shared_->wake();
}

void Gateway::stop_and_drain() {
  request_stop();
  {
    std::lock_guard<std::mutex> lk(join_mu_);
    if (loop_thread_.joinable()) loop_thread_.join();
  }
  // On a drain timeout the loop may exit with requests still inside the
  // batcher. Their callbacks hold shared_, so they stay safe; wait them out
  // here (the serve drain contract guarantees they complete) so callers can
  // tear the server down right after.
  while (shared_->inflight.load(std::memory_order_acquire) > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// ---- Event loop ------------------------------------------------------------

void Gateway::loop() {
  std::vector<pollfd> pfds;
  std::vector<uint64_t> pfd_conn;  // conn id per pollfd (0 for wake/listen)
  for (;;) {
    pfds.clear();
    pfd_conn.clear();
    pfds.push_back({wake_r_, POLLIN, 0});
    pfd_conn.push_back(0);
    if (listen_fd_ >= 0 && static_cast<int>(conns_.size()) < cfg_.max_connections) {
      pfds.push_back({listen_fd_, POLLIN, 0});
      pfd_conn.push_back(0);
    } else if (listen_fd_ >= 0) {
      // At the connection cap we still accept (and immediately close)
      // extras rather than letting the backlog grow silently.
      pfds.push_back({listen_fd_, POLLIN, 0});
      pfd_conn.push_back(0);
    }
    for (auto& [id, conn] : conns_) {
      // After a half-close, POLLIN would fire forever on the EOF — poll only
      // for errors (and writability) while the owed responses finish.
      short events = conn.saw_eof ? 0 : POLLIN;
      if (conn.out_off < conn.out.size()) events |= POLLOUT;
      pfds.push_back({conn.fd, events, 0});
      pfd_conn.push_back(id);
    }

    ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), draining_ ? 10 : 200);

    if (pfds[0].revents & POLLIN) {
      char buf[256];
      while (::read(wake_r_, buf, sizeof buf) > 0) {
      }
    }
    process_completions();
    if (stop_flag_.load(std::memory_order_acquire) && !draining_) begin_drain();
    adopt_pending();

    size_t idx = 1;
    if (listen_fd_ >= 0) {
      if (pfds[idx].revents & POLLIN) accept_ready();
      ++idx;
    }
    std::vector<uint64_t> to_close;
    sweep_slow_conns(to_close);
    for (; idx < pfds.size(); ++idx) {
      const auto it = conns_.find(pfd_conn[idx]);
      if (it == conns_.end()) continue;
      Conn& conn = it->second;
      if (pfds[idx].revents & (POLLERR | POLLNVAL)) {
        to_close.push_back(conn.id);
        continue;
      }
      if (pfds[idx].revents & POLLOUT) conn_writable(conn);
      if (conn.fd >= 0 && (pfds[idx].revents & (POLLIN | POLLHUP))) conn_readable(conn);
      if (conn.fd < 0 ||
          (conn.close_after_flush && conn.out_off >= conn.out.size())) {
        to_close.push_back(conn.id);
      }
    }
    for (const uint64_t id : to_close) close_conn(id);

    if (draining_) {
      const bool flushed = [&] {
        for (const auto& [id, conn] : conns_) {
          if (conn.out_off < conn.out.size()) return false;
        }
        return true;
      }();
      // Order matters: workers push their completion BEFORE decrementing
      // inflight, so once inflight reads 0 every completion is visible to
      // the locked emptiness check below.
      const bool no_inflight = shared_->inflight.load(std::memory_order_acquire) == 0;
      bool no_completions = false;
      {
        std::lock_guard<std::mutex> lk(shared_->mu);
        no_completions = shared_->completions.empty();
      }
      const bool done = no_inflight && no_completions && flushed;
      if (done || std::chrono::steady_clock::now() >= drain_deadline_) break;
    }
  }

  std::vector<uint64_t> all;
  for (const auto& [id, conn] : conns_) all.push_back(id);
  for (const uint64_t id : all) close_conn(id);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  loop_exited_.store(true, std::memory_order_release);
}

void Gateway::begin_drain() {
  draining_ = true;
  drain_deadline_ =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(cfg_.drain_timeout_ms);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);  // stop accepting; queued SYNs get RST
    listen_fd_ = -1;
  }
  // Refuse further adoptions; sockets already queued are ours to close.
  std::vector<int> orphans;
  {
    std::lock_guard<std::mutex> lk(adopt_mu_);
    adopt_closed_ = true;
    orphans.swap(adopt_fds_);
  }
  for (const int fd : orphans) ::close(fd);
}

bool Gateway::adopt_connection(int fd) {
  {
    std::lock_guard<std::mutex> lk(adopt_mu_);
    if (adopt_closed_) return false;
    adopt_fds_.push_back(fd);
  }
  shared_->wake();
  return true;
}

void Gateway::adopt_pending() {
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lk(adopt_mu_);
    fds.swap(adopt_fds_);
  }
  for (const int fd : fds) {
    if (static_cast<int>(conns_.size()) >= cfg_.max_connections) {
      rejected_->inc();
      ::close(fd);
      continue;
    }
    // Handed-off sockets arrive with whatever flags the accepting shard set;
    // normalize to the loop's non-blocking + no-delay expectations.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    add_conn(fd);
  }
}

void Gateway::add_conn(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  Conn conn;
  conn.fd = fd;
  conn.id = next_conn_id_++;
  conns_.emplace(conn.id, std::move(conn));
  accepted_->inc();
  connections_->set(static_cast<int64_t>(conns_.size()));
}

void Gateway::sweep_slow_conns(std::vector<uint64_t>& to_close) {
  const auto now = std::chrono::steady_clock::now();
  const auto unarmed = std::chrono::steady_clock::time_point{};
  for (auto& [id, conn] : conns_) {
    if (conn.fd < 0) continue;
    if (conn.read_stall_at != unarmed &&
        now - conn.read_stall_at > std::chrono::milliseconds(cfg_.read_stall_timeout_ms)) {
      // A partial request frame has been pending too long: a slow-loris read.
      slow_reads_closed_->inc();
      conn.read_stall_at = unarmed;
      respond_error(conn, 0, WireStatus::kSlowClient, "request frame stalled");
      conn.close_after_flush = true;
    }
    if (conn.fd >= 0 && conn.out_off < conn.out.size() && conn.write_stall_at != unarmed &&
        now - conn.write_stall_at > std::chrono::milliseconds(cfg_.write_stall_timeout_ms)) {
      // The peer will not drain its responses: close outright, nothing more
      // can usefully be sent.
      slow_writes_closed_->inc();
      ::close(conn.fd);
      conn.fd = -1;
      to_close.push_back(id);
    }
  }
}

void Gateway::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) break;  // EAGAIN or transient error: try again next round
    TQT_TRACE("net.accept", "net");
    // Handoff mode: offer the socket to the sink (shard router) first; true
    // means some shard adopted it and ownership moved with it.
    if (cfg_.accept_sink && cfg_.accept_sink(fd)) continue;
    if (static_cast<int>(conns_.size()) >= cfg_.max_connections) {
      rejected_->inc();
      ::close(fd);
      continue;
    }
    add_conn(fd);
  }
}

void Gateway::conn_readable(Conn& conn) {
  for (;;) {
    uint8_t buf[64 * 1024];
    const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
    if (n > 0) {
      bytes_in_->inc(static_cast<uint64_t>(n));
      conn.in.insert(conn.in.end(), buf, buf + n);
      if (static_cast<ssize_t>(sizeof buf) > n) break;  // drained the socket
      continue;
    }
    if (n == 0) {
      // Half-close: the peer is done sending, but frames that arrived before
      // the EOF still deserve answers. Parse them below; close once nothing
      // is owed.
      conn.saw_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
    ::close(conn.fd);  // hard error
    conn.fd = -1;
    return;
  }
  parse_frames(conn);
  if (conn.saw_eof && conn.pending_replies == 0) conn.close_after_flush = true;
}

void Gateway::parse_frames(Conn& conn) {
  size_t consumed = 0;
  while (conn.fd >= 0 && !conn.close_after_flush) {
    const uint8_t* data = conn.in.data() + consumed;
    const size_t avail = conn.in.size() - consumed;
    FrameHeader h;
    std::string err;
    const HeaderParse hp = parse_header(data, avail, &h, &err);
    if (hp == HeaderParse::kNeedMore) break;
    if (hp == HeaderParse::kCorrupt) {
      // Framing is untrustworthy: report once (request id unknown -> 0) and
      // close after the error flushes.
      malformed_->inc();
      respond_error(conn, 0, WireStatus::kMalformed, err);
      conn.close_after_flush = true;
      break;
    }
    if (avail < kHeaderBytes + h.payload_len) break;  // wait for the payload
    if (h.type == FrameType::kAdminRequest) {
      handle_admin_request(conn, h, data + kHeaderBytes);
    } else if (h.type == FrameType::kRequest) {
      handle_request(conn, h, data + kHeaderBytes);
    } else if (h.type == FrameType::kCancel) {
      if (h.payload_len != 0) {
        malformed_->inc();
        respond_error(conn, h.request_id, WireStatus::kMalformed,
                      "cancel frames carry no payload");
        conn.close_after_flush = true;
        break;
      }
      handle_cancel(conn, h);
    } else {
      malformed_->inc();
      respond_error(conn, h.request_id, WireStatus::kMalformed,
                    "clients must send request frames");
      conn.close_after_flush = true;
      break;
    }
    consumed += kHeaderBytes + h.payload_len;
  }
  if (consumed > 0) conn.in.erase(conn.in.begin(), conn.in.begin() + static_cast<long>(consumed));
  // Slow-loris read clock: armed while a partial frame sits in the buffer,
  // re-based only when a frame completes — trickling one byte at a time
  // cannot reset it.
  if (conn.in.empty()) {
    conn.read_stall_at = {};
  } else if (consumed > 0 || conn.read_stall_at == std::chrono::steady_clock::time_point{}) {
    conn.read_stall_at = std::chrono::steady_clock::now();
  }
}

void Gateway::handle_cancel(Conn& conn, const FrameHeader& h) {
  cancels_->inc();
  // Unknown ids are fine (the reply may already be in flight); the cancel is
  // best-effort and gets no response of its own.
  const auto it = conn.cancels.find(h.request_id);
  if (it != conn.cancels.end()) it->second->store(true, std::memory_order_release);
}

void Gateway::handle_request(Conn& conn, const FrameHeader& h, const uint8_t* payload) {
  TQT_TRACE("net.parse", "net");
  requests_->inc();

  InferRequest req;
  std::string err;
  if (!parse_request_payload(payload, h.payload_len, h.version, &req, &err)) {
    malformed_->inc();
    respond_error(conn, h.request_id, WireStatus::kMalformed, err);
    return;
  }
  if (draining_) {
    respond_error(conn, h.request_id, WireStatus::kShuttingDown, "server is draining");
    return;
  }
  if (shared_->inflight.load(std::memory_order_acquire) >= cfg_.max_inflight) {
    sheds_->inc();
    respond_error(conn, h.request_id, WireStatus::kShed, "gateway at max in-flight requests");
    return;
  }

  serve::SubmitOptions opts;
  if (req.deadline_us > 0) {
    opts.deadline =
        std::chrono::steady_clock::now() + std::chrono::microseconds(req.deadline_us);
  }
  // Tenancy: the token (empty for v1 frames) resolves to a TenantState whose
  // rate/quota/priority the batcher enforces at admission. resolve() never
  // returns null — unknown tokens ride the default tenant.
  if (cfg_.tenants) opts.tenant = cfg_.tenants->resolve(req.token);
  // v2 requests are cancellable: register the flag before submitting so a
  // kCancel frame racing the submit still lands.
  std::shared_ptr<std::atomic<bool>> cancel;
  if (h.version >= 2) {
    cancel = std::make_shared<std::atomic<bool>>(false);
    opts.cancel = cancel;
    conn.cancels[h.request_id] = cancel;
  }
  // Count the request in-flight BEFORE submitting: the worker may complete
  // (and decrement) before submit_async even returns.
  shared_->inflight.fetch_add(1, std::memory_order_acq_rel);
  inflight_gauge_->set(shared_->inflight.load(std::memory_order_relaxed));
  serve::SubmitStatus status;
  try {
    status = server_.submit_async(
        req.model, std::move(req.input), opts,
        [shared = shared_, cid = conn.id,
         rid = h.request_id](serve::MicroBatcher::Completion&& c) {
          CompletionMsg m;
          m.conn_id = cid;
          m.request_id = rid;
          if (c.error) {
            m.status = WireStatus::kInternal;
            try {
              std::rethrow_exception(c.error);
            } catch (const std::exception& e) {
              m.message = e.what();
            } catch (...) {
              m.message = "execution failed";
            }
          } else if (c.status == serve::SubmitStatus::kDeadlineExceeded) {
            m.status = WireStatus::kDeadlineExceeded;
            m.message = "deadline expired before execution";
          } else if (c.status == serve::SubmitStatus::kCancelled) {
            m.status = WireStatus::kCancelled;
            m.message = "cancelled before execution";
          } else {
            m.status = WireStatus::kOk;
            m.output = std::move(c.output);
          }
          shared->push(std::move(m));
        });
  } catch (const std::invalid_argument& e) {
    // Shape mismatch against the deployed model — a client-side input error.
    shared_->inflight.fetch_sub(1, std::memory_order_acq_rel);
    conn.cancels.erase(h.request_id);
    malformed_->inc();
    respond_error(conn, h.request_id, WireStatus::kMalformed, e.what());
    return;
  }
  if (status == serve::SubmitStatus::kOk) {
    ++conn.pending_replies;
  } else {
    shared_->inflight.fetch_sub(1, std::memory_order_acq_rel);
    conn.cancels.erase(h.request_id);
    const WireStatus ws = wire_status_of(status);
    if (ws == WireStatus::kShed) sheds_->inc();
    if (ws == WireStatus::kBadModel) bad_model_->inc();
    if (ws == WireStatus::kDeadlineExceeded) deadline_drops_->inc();
    if (ws == WireStatus::kRateLimited) rate_limited_->inc();
    if (ws == WireStatus::kQuotaExceeded) quota_exceeded_->inc();
    respond_error(conn, h.request_id, ws,
                  ws == WireStatus::kBadModel ? "no model deployed as '" + req.model + "'"
                                              : to_string(status));
  }
}

void Gateway::handle_admin_request(Conn& conn, const FrameHeader& h, const uint8_t* payload) {
  TQT_TRACE("net.parse", "net");
  admin_requests_->inc();

  AdminRequest req;
  std::string err;
  if (!parse_admin_request_payload(payload, h.payload_len, &req, &err)) {
    malformed_->inc();
    respond_admin(conn, h.request_id, WireStatus::kMalformed, err);
    return;
  }
  if (req.op == AdminOp::kReloadTenants) {
    // The gateway owns the tenant table, so this op never reaches the admin
    // handler. Parsing is strong-guarantee: a bad file leaves the live table
    // untouched and reports one line back.
    if (!cfg_.tenants) {
      respond_admin(conn, h.request_id, WireStatus::kInternal, "tenancy not enabled");
      return;
    }
    try {
      if (req.arg.empty()) {
        cfg_.tenants->reload();
      } else {
        cfg_.tenants->load_file(req.arg);
      }
      respond_admin(conn, h.request_id, WireStatus::kOk,
                    "tenants reloaded: " + std::to_string(cfg_.tenants->size()) + " tenants");
    } catch (const std::exception& e) {
      respond_admin(conn, h.request_id, WireStatus::kInternal, e.what());
    }
    return;
  }
  if (!cfg_.admin) {
    respond_admin(conn, h.request_id, WireStatus::kInternal, "admin interface not enabled");
    return;
  }
  if (draining_) {
    respond_admin(conn, h.request_id, WireStatus::kShuttingDown, "server is draining");
    return;
  }
  // Admin operations ride the same in-flight accounting and completion queue
  // as inference: the handler answers from its own thread, the drain waits
  // for it, and the event loop never blocks on calibration work.
  shared_->inflight.fetch_add(1, std::memory_order_acq_rel);
  inflight_gauge_->set(shared_->inflight.load(std::memory_order_relaxed));
  ++conn.pending_replies;
  auto done_once = std::make_shared<std::atomic<bool>>(false);
  AdminHandler::DoneFn done = [shared = shared_, cid = conn.id, rid = h.request_id,
                               done_once](WireStatus status, std::string message) {
    if (done_once->exchange(true)) return;  // exactly-once guard
    CompletionMsg m;
    m.conn_id = cid;
    m.request_id = rid;
    m.status = status;
    m.message = std::move(message);
    m.admin = true;
    shared->push(std::move(m));
  };
  try {
    cfg_.admin->handle_admin(std::move(req), done);
  } catch (const std::exception& e) {
    done(WireStatus::kInternal, e.what());
  } catch (...) {
    done(WireStatus::kInternal, "admin handler failed");
  }
}

void Gateway::respond_admin(Conn& conn, uint32_t request_id, WireStatus status,
                            const std::string& message) {
  TQT_TRACE("net.respond", "net");
  AdminResponse resp;
  resp.status = status;
  resp.message = message;
  append_admin_response_frame(conn.out, request_id, resp);
  responses_->inc();
  conn_writable(conn);  // opportunistic flush
}

void Gateway::respond_error(Conn& conn, uint32_t request_id, WireStatus status,
                            const std::string& message) {
  TQT_TRACE("net.respond", "net");
  InferResponse resp;
  resp.status = status;
  resp.message = message;
  append_response_frame(conn.out, request_id, resp);
  responses_->inc();
  conn_writable(conn);  // opportunistic flush
}

void Gateway::process_completions() {
  std::deque<CompletionMsg> msgs;
  {
    std::lock_guard<std::mutex> lk(shared_->mu);
    msgs.swap(shared_->completions);
  }
  for (CompletionMsg& m : msgs) {
    inflight_gauge_->set(shared_->inflight.load(std::memory_order_relaxed));
    if (m.status == WireStatus::kDeadlineExceeded) deadline_drops_->inc();
    if (m.status == WireStatus::kCancelled) cancelled_->inc();
    const auto it = conns_.find(m.conn_id);
    if (it == conns_.end() || it->second.fd < 0) continue;  // client went away
    TQT_TRACE("net.respond", "net");
    Conn& conn = it->second;
    conn.cancels.erase(m.request_id);
    --conn.pending_replies;
    if (m.admin) {
      AdminResponse aresp;
      aresp.status = m.status;
      aresp.message = std::move(m.message);
      append_admin_response_frame(conn.out, m.request_id, aresp);
    } else {
      InferResponse resp;
      resp.status = m.status;
      resp.message = std::move(m.message);
      resp.output = std::move(m.output);
      append_response_frame(conn.out, m.request_id, resp);
    }
    responses_->inc();
    if (conn.saw_eof && conn.pending_replies == 0) conn.close_after_flush = true;
    conn_writable(conn);
  }
}

void Gateway::conn_writable(Conn& conn) {
  while (conn.fd >= 0 && conn.out_off < conn.out.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.out_off, conn.out.size() - conn.out_off,
               MSG_NOSIGNAL);
    if (n > 0) {
      bytes_out_->inc(static_cast<uint64_t>(n));
      conn.out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) break;
    ::close(conn.fd);  // peer is gone
    conn.fd = -1;
    return;
  }
  if (conn.out_off >= conn.out.size()) {
    conn.out.clear();
    conn.out_off = 0;
    conn.write_stall_at = {};  // drained: disarm the time-to-drain clock
    return;
  }
  // Undrained bytes remain. Arm the time-to-drain clock if it isn't already,
  // and enforce the hard buffer bound — a peer that won't read while we keep
  // producing responses must not hold unbounded memory.
  if (conn.write_stall_at == std::chrono::steady_clock::time_point{}) {
    conn.write_stall_at = std::chrono::steady_clock::now();
  }
  if (conn.fd >= 0 && conn.out.size() - conn.out_off > cfg_.max_conn_out_bytes) {
    slow_writes_closed_->inc();
    ::close(conn.fd);
    conn.fd = -1;
  }
}

void Gateway::close_conn(uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  if (it->second.fd >= 0) ::close(it->second.fd);
  conns_.erase(it);
  connections_->set(static_cast<int64_t>(conns_.size()));
}

}  // namespace tqt::net
