// tqt-gateway wire protocol: versioned, length-prefixed binary frames.
//
// Every frame is a fixed 16-byte header followed by `payload_len` payload
// bytes. All integers are little-endian, all floats are IEEE-754 binary32
// transported as their bit pattern. Header layout:
//
//   offset  size  field
//        0     4  magic        0x47545154 ("TQTG")
//        4     1  version      kMinVersion..kVersion (1 or 2)
//        5     1  type         FrameType (1 = request, 2 = response,
//                              3 = admin request, 4 = admin response,
//                              5 = cancel — version 2 only)
//        6     1  status       WireStatus (0 in requests)
//        7     1  reserved     must be 0
//        8     4  request_id   echoed verbatim in the response
//       12     4  payload_len  <= kMaxPayloadBytes
//
// Request payload (type = kRequest), version 1:
//   u16 name_len (1..kMaxModelNameBytes), name bytes,
//   u32 deadline_us (0 = none; relative to server receipt),
//   u8 rank (1..kMaxRank), u32 dims[rank] (each >= 1),
//   f32 data[prod(dims)]  — must consume the payload exactly.
//
// Request payload, version 2 (the tqt-qos minor bump) inserts one field
// after the model name:
//   u16 token_len (0..kMaxTokenBytes), token bytes  — the tenant auth token.
// Version-1 frames carry no token and resolve to the default tenant, so old
// clients keep working unchanged; a current client with no token configured
// emits byte-identical version-1 frames, so it keeps working against old
// servers. Cancel frames (type = kCancel, version 2, empty payload) ask the
// server to drop the still-queued request whose id matches — best-effort: an
// executing/completed request answers normally, a dropped one answers
// kCancelled.
//
// Response payload (type = kResponse):
//   status == kOk:  u8 rank, u32 dims[rank], f32 data[prod(dims)]
//   otherwise:      u16 message_len, message bytes
//
// Parsing NEVER trusts a length from the wire: every read is bounds-checked
// against the received byte count, dims are overflow-checked, and a payload
// that fails to consume exactly is malformed. DESIGN.md §11 carries the
// byte-level table.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace tqt::net {

/// Typed error codes a response frame can carry.
enum class WireStatus : uint8_t {
  kOk = 0,
  kShed = 1,              ///< admission control rejected (queue / in-flight full)
  kDeadlineExceeded = 2,  ///< the request's deadline passed before execution
  kBadModel = 3,          ///< no model / version under the requested name
  kMalformed = 4,         ///< the request could not be parsed / bound
  kShuttingDown = 5,      ///< server is draining; no new work accepted
  kInternal = 6,          ///< execution failed server-side
  kCorruptModel = 7,      ///< the model artifact exists but failed to parse —
                          ///< distinct from kBadModel ("not found") so admin
                          ///< clients can tell a typo from a damaged file
  // Version-2 additions (tqt-qos). Emitted only by v2-aware servers; a
  // version-1-era client rejects them as unknown status codes, which is the
  // documented evolution path for new typed statuses.
  kRateLimited = 8,       ///< tenant token-bucket empty — slow down, retry later
  kQuotaExceeded = 9,     ///< tenant max-inflight quota reached
  kCancelled = 10,        ///< dropped before execution on a client kCancel frame
  kSlowClient = 11,       ///< connection closed: slow-loris read/write behaviour
};

inline constexpr WireStatus kMaxWireStatus = WireStatus::kSlowClient;

const char* to_string(WireStatus s);

inline constexpr uint32_t kMagic = 0x47545154u;  // "TQTG" when read little-endian
inline constexpr uint8_t kVersion = 2;     ///< current protocol version
inline constexpr uint8_t kMinVersion = 1;  ///< oldest version still accepted
inline constexpr size_t kHeaderBytes = 16;
inline constexpr uint32_t kMaxPayloadBytes = 1u << 24;  // 16 MiB frame bound
inline constexpr size_t kMaxModelNameBytes = 256;
inline constexpr size_t kMaxTokenBytes = 128;
inline constexpr int kMaxRank = 6;

enum class FrameType : uint8_t {
  kRequest = 1,
  kResponse = 2,
  kAdminRequest = 3,   ///< calibration / deployment control plane (tqt-autocal)
  kAdminResponse = 4,
  kCancel = 5,         ///< v2 only: drop the queued request with this id (no payload)
};

/// Admin-plane operations (frame type kAdminRequest). The payload layout is
///   u8 op, u16 name_len, name bytes, u16 arg_len, arg bytes,
///   u8 has_batch, [tensor (u8 rank, u32 dims[], f32 data[])]
/// and the kAdminResponse payload is always
///   u16 message_len, message bytes
/// regardless of status — admin results are human/script-readable text
/// (status JSON, dry-run tables, promotion reports).
enum class AdminOp : uint8_t {
  kCalibBatch = 1,  ///< absorb an unlabeled calibration batch (tensor required)
  kStatus = 2,      ///< JSON snapshot of the calibration service state
  kTrigger = 3,     ///< force a full calibrate→validate→promote cycle now
  kDryRun = 4,      ///< derive would-be thresholds, report, do NOT deploy
  kRollback = 5,    ///< reinstall the previous program version
  kSwapFile = 6,    ///< validate + promote a server-side artifact (arg = path)
  kReloadTenants = 7,  ///< hot-reload the gateway's TenantTable (arg = path,
                       ///< empty = re-read the last loaded file); handled by
                       ///< the gateway itself, not the calib service
};

const char* to_string(AdminOp op);

struct FrameHeader {
  uint8_t version = kVersion;
  FrameType type = FrameType::kRequest;
  WireStatus status = WireStatus::kOk;
  uint32_t request_id = 0;
  uint32_t payload_len = 0;
};

struct InferRequest {
  std::string model;
  std::string token;         ///< tenant auth token; empty = default tenant (v1 frames)
  uint32_t deadline_us = 0;  ///< 0 = no deadline; otherwise relative to receipt
  Tensor input;
};

struct InferResponse {
  WireStatus status = WireStatus::kInternal;
  Tensor output;        ///< valid only when status == kOk
  std::string message;  ///< human-readable detail when status != kOk
};

struct AdminRequest {
  AdminOp op = AdminOp::kStatus;
  std::string model;      ///< target lane name (1..kMaxModelNameBytes)
  std::string arg;        ///< op-specific string argument (kSwapFile: path)
  bool has_batch = false;
  Tensor batch;           ///< calibration batch (kCalibBatch)
};

struct AdminResponse {
  WireStatus status = WireStatus::kInternal;
  std::string message;  ///< always set: report text or error detail
};

// ---- Encoding --------------------------------------------------------------

/// Append a complete request frame (header + payload) to `out`. An empty
/// token emits a byte-identical version-1 frame (works against old servers);
/// a non-empty token emits version 2 with the auth field.
/// Throws std::invalid_argument if the request violates the protocol bounds
/// (empty/oversized name, oversized token, rank outside 1..kMaxRank, payload
/// over the cap).
void append_request_frame(std::vector<uint8_t>& out, uint32_t request_id,
                          const InferRequest& req);

/// Append a header-only version-2 cancel frame for `request_id`.
void append_cancel_frame(std::vector<uint8_t>& out, uint32_t request_id);

/// Append a complete response frame for `resp` (tensor payload when kOk,
/// message payload otherwise).
void append_response_frame(std::vector<uint8_t>& out, uint32_t request_id,
                           const InferResponse& resp);

/// Append a complete admin request frame. Throws std::invalid_argument on
/// protocol-bound violations (name length, tensor bounds, oversized arg).
void append_admin_request_frame(std::vector<uint8_t>& out, uint32_t request_id,
                                const AdminRequest& req);

/// Append a complete admin response frame (message payload, any status).
void append_admin_response_frame(std::vector<uint8_t>& out, uint32_t request_id,
                                 const AdminResponse& resp);

// ---- Decoding --------------------------------------------------------------

enum class HeaderParse {
  kNeedMore,  ///< fewer than kHeaderBytes available (and magic plausible)
  kOk,        ///< header valid; expect `payload_len` payload bytes next
  kCorrupt,   ///< framing cannot be trusted — close the connection
};

/// Validate the first kHeaderBytes of `data`. Rejects a bad magic as soon as
/// 4 bytes are available, so a garbage-spewing peer is cut off without
/// waiting for a full header. `err` (optional) receives a one-line reason on
/// kCorrupt.
HeaderParse parse_header(const uint8_t* data, size_t n, FrameHeader* h, std::string* err);

/// Parse a request payload of exactly `n` bytes laid out per `version`
/// (1 = no token field, 2 = with token). Returns false (with `err` set) on
/// any bounds violation, overflow, or trailing garbage.
bool parse_request_payload(const uint8_t* payload, size_t n, uint8_t version,
                           InferRequest* req, std::string* err);

/// Parse a response payload of exactly `n` bytes for a frame carrying
/// `status`. Returns false (with `err` set) on malformed input.
bool parse_response_payload(const uint8_t* payload, size_t n, WireStatus status,
                            InferResponse* resp, std::string* err);

/// Parse an admin request payload of exactly `n` bytes.
bool parse_admin_request_payload(const uint8_t* payload, size_t n, AdminRequest* req,
                                 std::string* err);

/// Parse an admin response payload of exactly `n` bytes.
bool parse_admin_response_payload(const uint8_t* payload, size_t n, WireStatus status,
                                  AdminResponse* resp, std::string* err);

}  // namespace tqt::net
