// tqt-gateway: POSIX-socket serving front-end for an InferenceServer.
//
//   TCP clients ──frames──►  event loop (poll, non-blocking I/O)
//                               │ bounds-checked wire parsing (net/wire.h)
//                               │ admission control: max_connections,
//                               │ max_inflight, per-request deadlines
//                               ▼
//                            InferenceServer::submit_async
//                               │ (micro-batcher + fixed-point engine;
//                               │  deadline-expired work shed pre-execution)
//                               ▼
//                            completion queue ──wake pipe──► event loop
//                               │ serialize response, flush to the socket
//                               ▼
//                            client gets outputs or a typed error
//                            (SHED / DEADLINE_EXCEEDED / BAD_MODEL /
//                             MALFORMED / SHUTTING_DOWN / INTERNAL)
//
// Single event-loop thread: every socket and connection state machine is
// owned by that thread; batcher workers only touch the completion queue (one
// mutex) and the wake pipe. Graceful drain (`request_stop`, signal-safe):
// stop accepting, answer new frames with SHUTTING_DOWN, finish every
// in-flight request, flush, then close — bounded by drain_timeout_ms.
//
// tqt-qos additions (DESIGN.md §16):
//   * Tenancy — with a TenantTable configured, each request's auth token
//     (wire v2) resolves to a tenant whose rate limit / quota / priority the
//     batcher enforces; v1 frames ride the default tenant.
//   * Cancels — a v2 kCancel frame flips the matching queued request's
//     cancel flag; the batcher drops it at dequeue (typed kCancelled).
//   * Sharding hooks — reuse_port binds N listeners on one port
//     (ShardedGateway, src/qos/shard.h); listen=false + adopt_connection()
//     is the accept-handoff fallback; metric_prefix gives each shard its own
//     "net.shard<i>.*" namespace.
//   * Slow-loris defence, both directions — a partial request frame that
//     stalls longer than read_stall_timeout_ms is answered with kSlowClient
//     and closed; a connection whose response buffer exceeds
//     max_conn_out_bytes or fails to drain within write_stall_timeout_ms is
//     closed outright. Both are counted ("slow_reads_closed" /
//     "slow_writes_closed").
//
// Telemetry goes to the server's MetricsRegistry under `metric_prefix`
// (default "net."): connection and byte counters, shed/deadline/malformed
// counts, inflight and connection gauges, plus net.accept/net.parse/
// net.respond trace spans (execution itself is covered by the serve.batch/
// serve.execute spans).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/wire.h"
#include "qos/tenant.h"
#include "serve/server.h"

namespace tqt::net {

/// Admin-plane hook: the calibration service (src/calib) implements this so
/// the gateway can route kAdminRequest frames to it without net depending on
/// calib. handle_admin must NOT block the caller (the event-loop thread):
/// heavy operations run on the handler's own thread and answer through
/// `done`, which is thread-safe, may be called from any thread, and must be
/// called exactly once. The handler must outlive the gateway.
class AdminHandler {
 public:
  virtual ~AdminHandler() = default;
  using DoneFn = std::function<void(WireStatus, std::string message)>;
  virtual void handle_admin(AdminRequest&& req, DoneFn done) = 0;
};

struct GatewayConfig {
  uint16_t port = 0;         ///< TCP port; 0 binds an ephemeral port (see port())
  bool loopback_only = true; ///< bind 127.0.0.1 (default) or INADDR_ANY
  int backlog = 64;          ///< listen(2) backlog
  int max_connections = 64;  ///< concurrent connections; extras are closed on accept
  int max_inflight = 256;    ///< submitted-but-unanswered requests across all conns
  int drain_timeout_ms = 5000;  ///< bound on the graceful-drain wait
  /// Admin-plane handler for kAdminRequest frames; null answers every admin
  /// frame with kInternal ("admin interface not enabled"). kReloadTenants is
  /// handled by the gateway itself and never reaches the handler.
  AdminHandler* admin = nullptr;

  // -- tqt-qos -------------------------------------------------------------
  /// Tenant table shared across shards; null = untenanted (every request
  /// runs unmetered on the batcher's default lane). Must outlive the gateway.
  qos::TenantTable* tenants = nullptr;
  /// Instrument-name prefix — "net.shard<i>." per shard under sharding.
  std::string metric_prefix = "net.";
  /// Bind with SO_REUSEPORT so N shards can listen on one port.
  bool reuse_port = false;
  /// false: no listener at all — the shard only serves connections handed to
  /// it via adopt_connection() (accept-handoff fallback).
  bool listen = true;
  /// Accept hook for handoff mode: shard 0 offers every accepted fd here;
  /// returning true means the sink took ownership (typically routing it to
  /// some shard's adopt_connection, possibly its own). False/null: handle
  /// the connection locally.
  std::function<bool(int fd)> accept_sink;

  // -- slow-loris hardening --------------------------------------------------
  /// Hard close when a connection's unsent response bytes exceed this.
  size_t max_conn_out_bytes = 32u << 20;
  /// Hard close when a non-empty response buffer takes longer than this to
  /// drain (time-to-drain, not time-since-progress).
  int write_stall_timeout_ms = 10000;
  /// Answer kSlowClient + close when a partial request frame stalls longer
  /// than this without completing.
  int read_stall_timeout_ms = 10000;
};

/// Network front-end over one InferenceServer. Construction binds, listens
/// and starts the event-loop thread; destruction drains and joins.
class Gateway {
 public:
  /// Throws std::runtime_error if the socket cannot be bound. The server
  /// must outlive the gateway.
  Gateway(serve::InferenceServer& server, GatewayConfig cfg = {});
  ~Gateway();
  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// The bound TCP port (the chosen one when cfg.port was 0).
  uint16_t port() const { return port_; }

  /// Begin graceful drain without blocking. Async-signal-safe (an atomic
  /// store and a pipe write), so it may be called from a SIGINT/SIGTERM
  /// handler while stop_and_drain() runs elsewhere.
  void request_stop();

  /// Graceful drain: stop accepting, finish in-flight requests, flush
  /// responses, close every connection, join the loop thread. Bounded by
  /// cfg.drain_timeout_ms; idempotent.
  void stop_and_drain();

  /// True once the event loop has exited.
  bool stopped() const { return loop_exited_.load(std::memory_order_acquire); }

  /// Hand an already-accepted socket to this gateway's event loop (the
  /// sharding accept-handoff path). Thread-safe. Returns false if the
  /// gateway is stopping — ownership stays with the caller, who must close
  /// the fd.
  bool adopt_connection(int fd);

 private:
  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    std::vector<uint8_t> in;   ///< received, not-yet-parsed bytes
    std::vector<uint8_t> out;  ///< serialized, not-yet-sent bytes
    size_t out_off = 0;        ///< consumed prefix of `out`
    bool close_after_flush = false;
    bool saw_eof = false;          ///< peer half-closed; answer what's owed, then close
    int64_t pending_replies = 0;   ///< accepted submits not yet answered
    /// Slow-loris clocks (steady, epoch = unarmed): when the pending partial
    /// request frame started, and when the out buffer last became non-empty.
    std::chrono::steady_clock::time_point read_stall_at{};
    std::chrono::steady_clock::time_point write_stall_at{};
    /// Cancel flags for this connection's in-flight v2 requests, by request
    /// id; a kCancel frame flips the flag, the batcher drops at dequeue.
    std::map<uint32_t, std::shared_ptr<std::atomic<bool>>> cancels;
  };

  /// One finished request travelling from a batcher worker (or the loop
  /// itself) back to the event loop for serialization.
  struct CompletionMsg {
    uint64_t conn_id = 0;
    uint32_t request_id = 0;
    WireStatus status = WireStatus::kInternal;
    Tensor output;
    std::string message;
    bool admin = false;  ///< serialize as kAdminResponse (message-only payload)
  };

  /// State shared with in-flight completion callbacks. Callbacks hold a
  /// shared_ptr, so a callback that outlives the Gateway (drain timeout)
  /// still has a valid queue and wake fd to write to.
  struct Shared {
    std::mutex mu;
    std::deque<CompletionMsg> completions;
    std::atomic<int64_t> inflight{0};
    int wake_w = -1;  ///< write end of the wake pipe (owned)
    ~Shared();
    void wake() const;
    void push(CompletionMsg&& m);
  };

  void loop();
  void accept_ready();
  void adopt_pending();   ///< drain the adopt queue into conns_ (loop thread)
  void add_conn(int fd);  ///< register an accepted/adopted fd (loop thread)
  void sweep_slow_conns(std::vector<uint64_t>& to_close);
  void conn_readable(Conn& conn);
  void conn_writable(Conn& conn);
  void parse_frames(Conn& conn);
  void handle_request(Conn& conn, const FrameHeader& h, const uint8_t* payload);
  void handle_cancel(Conn& conn, const FrameHeader& h);
  void handle_admin_request(Conn& conn, const FrameHeader& h, const uint8_t* payload);
  void respond_error(Conn& conn, uint32_t request_id, WireStatus status,
                     const std::string& message);
  void respond_admin(Conn& conn, uint32_t request_id, WireStatus status,
                     const std::string& message);
  void process_completions();
  void close_conn(uint64_t id);
  void begin_drain();

  serve::InferenceServer& server_;
  GatewayConfig cfg_;
  std::shared_ptr<Shared> shared_;
  int listen_fd_ = -1;
  int wake_r_ = -1;  ///< read end of the wake pipe (owned)
  uint16_t port_ = 0;

  std::atomic<bool> stop_flag_{false};   ///< set by request_stop()
  std::atomic<bool> loop_exited_{false};
  bool draining_ = false;                ///< loop thread only
  std::chrono::steady_clock::time_point drain_deadline_{};  // loop thread only

  uint64_t next_conn_id_ = 1;           // loop thread only
  std::map<uint64_t, Conn> conns_;      // loop thread only

  std::mutex adopt_mu_;                 // guards adopt_fds_ / adopt_closed_
  std::vector<int> adopt_fds_;
  bool adopt_closed_ = false;           // set once draining; adopters must keep their fd

  std::mutex join_mu_;
  std::thread loop_thread_;

  // "<metric_prefix>*" instruments, resolved once against the server's registry.
  observe::Counter* accepted_ = nullptr;
  observe::Counter* rejected_ = nullptr;
  observe::Counter* requests_ = nullptr;
  observe::Counter* admin_requests_ = nullptr;
  observe::Counter* responses_ = nullptr;
  observe::Counter* sheds_ = nullptr;
  observe::Counter* deadline_drops_ = nullptr;
  observe::Counter* malformed_ = nullptr;
  observe::Counter* bad_model_ = nullptr;
  observe::Counter* bytes_in_ = nullptr;
  observe::Counter* bytes_out_ = nullptr;
  observe::Counter* rate_limited_ = nullptr;
  observe::Counter* quota_exceeded_ = nullptr;
  observe::Counter* cancels_ = nullptr;
  observe::Counter* cancelled_ = nullptr;
  observe::Counter* slow_reads_closed_ = nullptr;
  observe::Counter* slow_writes_closed_ = nullptr;
  observe::Gauge* connections_ = nullptr;
  observe::Gauge* inflight_gauge_ = nullptr;
};

}  // namespace tqt::net
