// Blocking client for the tqt-gateway wire protocol (net/wire.h).
//
// Intended for tests, the tqt_cli `client` subcommand and the network
// benchmark: connect, send request frames, read response frames. One
// GatewayClient is one TCP connection; it is not thread-safe, but many
// clients may target the same gateway concurrently.
//
// Two usage styles:
//   * infer()                — one request, wait for its response (lock-step).
//   * send_infer()/recv_response() — pipelined: queue several requests on the
//     connection, then collect the tagged responses as they arrive.
//
// The raw send_bytes()/recv_raw() escape hatches exist for protocol tests
// that must put malformed bytes on the wire.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/wire.h"

namespace tqt::net {

/// Thrown on connection failures, I/O errors, receive timeouts, and frames
/// from the server that do not parse.
struct ClientError : std::runtime_error {
  explicit ClientError(const std::string& what) : std::runtime_error(what) {}
};

class GatewayClient {
 public:
  /// Connect to host:port ("localhost" or a dotted-quad IPv4 address).
  /// `recv_timeout_ms` bounds every receive (0 = wait forever). Throws
  /// ClientError if the connection cannot be established.
  GatewayClient(const std::string& host, uint16_t port, int recv_timeout_ms = 60000);
  ~GatewayClient();
  GatewayClient(const GatewayClient&) = delete;
  GatewayClient& operator=(const GatewayClient&) = delete;

  /// Send one request and block for its response. `deadline_us` of 0 means
  /// no deadline. Throws ClientError on transport failure; protocol-level
  /// rejections come back as the response's typed status.
  InferResponse infer(const std::string& model, const Tensor& sample,
                      uint32_t deadline_us = 0);

  /// Queue a request without waiting; returns the request id to match
  /// against recv_response().tagged request_id (responses may arrive out of
  /// submission order under batching).
  uint32_t send_infer(const std::string& model, const Tensor& sample,
                      uint32_t deadline_us = 0);

  struct TaggedResponse {
    uint32_t request_id = 0;
    InferResponse response;
  };

  /// Block for the next response frame. Throws ClientError on EOF, timeout,
  /// or a frame that fails to parse.
  TaggedResponse recv_response();

  /// Send one admin-plane request (tqt-autocal control: calibration batches,
  /// status, trigger, dry-run, rollback, swap-file) and block for its
  /// kAdminResponse. Lock-step only; do not interleave with pipelined
  /// send_infer on the same connection.
  AdminResponse admin(const AdminRequest& req);

  /// Write raw bytes to the socket (protocol fuzzing hook).
  void send_bytes(const void* data, size_t n);

  /// Read up to `max` raw bytes; returns 0 on orderly EOF. Honors the
  /// receive timeout (throws ClientError when it expires).
  size_t recv_raw(void* buf, size_t max);

  /// Half-close: no more writes, the server sees EOF after our last byte.
  void shutdown_write();

  void close();
  bool closed() const { return fd_ < 0; }

 private:
  void send_all(const uint8_t* data, size_t n);
  /// Read exactly n bytes or throw; returns false on clean EOF at offset 0
  /// when `eof_ok` is set.
  bool recv_exact(uint8_t* buf, size_t n, bool eof_ok);

  int fd_ = -1;
  uint32_t next_request_id_ = 1;
};

}  // namespace tqt::net
