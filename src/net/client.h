// Blocking client for the tqt-gateway wire protocol (net/wire.h).
//
// Intended for tests, the tqt_cli `client` subcommand and the network
// benchmark: connect, send request frames, read response frames. One
// GatewayClient is one TCP connection; it is not thread-safe, but many
// clients may target the same gateway concurrently.
//
// Two usage styles:
//   * infer()                — one request, wait for its response (lock-step).
//   * send_infer()/recv_response() — pipelined: queue several requests on the
//     connection, then collect the tagged responses as they arrive.
//
// tqt-qos additions:
//   * set_token() attaches a tenant auth token to every request (frames go
//     out at wire v2; an empty token keeps emitting v1 bytes, so a tokenless
//     client still talks to pre-tenancy servers).
//   * Hedged lock-step infer (set_hedge): if no response lands within
//     hedge_after_us, the same request (same id) is duplicated on a second
//     lazily opened connection; the first complete response wins and the
//     loser gets a kCancel frame, its eventual answer discarded. Point
//     hedge_after_us at the workload's observed p99.
//   * SHED backoff: infer() retries a kShed rejection up to shed_retries
//     times with doubling sleeps starting at shed_backoff_us.
//   * cancel() sends a best-effort kCancel for a pipelined request id.
//
// The raw send_bytes()/recv_raw() escape hatches exist for protocol tests
// that must put malformed bytes on the wire.
#pragma once

#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/wire.h"

namespace tqt::net {

/// Thrown on connection failures, I/O errors, receive timeouts, and frames
/// from the server that do not parse.
struct ClientError : std::runtime_error {
  explicit ClientError(const std::string& what) : std::runtime_error(what) {}
};

/// Hedging / retry policy for GatewayClient::infer (lock-step calls only;
/// pipelined send_infer/recv_response is never hedged).
struct HedgeConfig {
  /// Duplicate the request on a second connection if no response arrived
  /// within this many microseconds. 0 disables hedging.
  uint32_t hedge_after_us = 0;
  /// Retry a kShed rejection up to this many times before returning it.
  int shed_retries = 0;
  /// First backoff sleep before a shed retry; doubles per retry (capped at
  /// 100ms).
  uint32_t shed_backoff_us = 1000;
};

class GatewayClient {
 public:
  /// Connect to host:port ("localhost" or a dotted-quad IPv4 address).
  /// `recv_timeout_ms` bounds every receive (0 = wait forever). Throws
  /// ClientError if the connection cannot be established.
  GatewayClient(const std::string& host, uint16_t port, int recv_timeout_ms = 60000);
  ~GatewayClient();
  GatewayClient(const GatewayClient&) = delete;
  GatewayClient& operator=(const GatewayClient&) = delete;

  /// Tenant auth token attached to every subsequent request frame. Empty
  /// (the default) keeps the client on wire v1 bytes. Max 128 bytes
  /// (kMaxTokenBytes) — longer tokens make the next send throw.
  void set_token(std::string token) { token_ = std::move(token); }
  const std::string& token() const { return token_; }

  /// Hedging / shed-retry policy for infer(). Off by default.
  void set_hedge(HedgeConfig hedge) { hedge_ = hedge; }

  /// How many hedge duplicates this client has sent, and how many races the
  /// hedge connection won (introspection for tests and the benchmark).
  uint64_t hedges_sent() const { return hedges_sent_; }
  uint64_t hedge_wins() const { return hedge_wins_; }

  /// Send one request and block for its response. `deadline_us` of 0 means
  /// no deadline. Throws ClientError on transport failure; protocol-level
  /// rejections come back as the response's typed status. Honors the
  /// configured hedge/backoff policy.
  InferResponse infer(const std::string& model, const Tensor& sample,
                      uint32_t deadline_us = 0);

  /// Queue a request without waiting; returns the request id to match
  /// against recv_response().tagged request_id (responses may arrive out of
  /// submission order under batching).
  uint32_t send_infer(const std::string& model, const Tensor& sample,
                      uint32_t deadline_us = 0);

  struct TaggedResponse {
    uint32_t request_id = 0;
    InferResponse response;
  };

  /// Block for the next response frame. Throws ClientError on EOF, timeout,
  /// or a frame that fails to parse. Responses to cancelled/hedge-lost ids
  /// are skipped transparently.
  TaggedResponse recv_response();

  /// Best-effort cancel for a pipelined request id: sends a kCancel frame
  /// and marks the id so its response (cancelled or completed — the race is
  /// inherent) is discarded by later recv_response() calls.
  void cancel(uint32_t request_id);

  /// Send one admin-plane request (tqt-autocal control: calibration batches,
  /// status, trigger, dry-run, rollback, swap-file) and block for its
  /// kAdminResponse. Lock-step only; do not interleave with pipelined
  /// send_infer on the same connection.
  AdminResponse admin(const AdminRequest& req);

  /// Write raw bytes to the socket (protocol fuzzing hook).
  void send_bytes(const void* data, size_t n);

  /// Read up to `max` raw bytes; returns 0 on orderly EOF. Honors the
  /// receive timeout (throws ClientError when it expires).
  size_t recv_raw(void* buf, size_t max);

  /// Half-close: no more writes, the server sees EOF after our last byte.
  void shutdown_write();

  void close();
  bool closed() const { return fd_ < 0; }

 private:
  void send_all(const uint8_t* data, size_t n) { send_all_on(fd_, data, n); }
  static void send_all_on(int fd, const uint8_t* data, size_t n);
  /// Read exactly n bytes or throw; returns false on clean EOF at offset 0
  /// when `eof_ok` is set.
  bool recv_exact(uint8_t* buf, size_t n, bool eof_ok);

  static int connect_fd(const std::string& host, uint16_t port, int recv_timeout_ms);
  /// Extract one complete response frame from `buf` (throws on a corrupt or
  /// non-response frame); false = need more bytes.
  static bool pop_response(std::vector<uint8_t>& buf, TaggedResponse* out);
  /// Drain complete frames from `buf`; true when `id`'s response came out
  /// (stale ids are skipped, any other id throws — lock-step discipline).
  static bool take_response(std::vector<uint8_t>& buf, std::set<uint32_t>& stale, uint32_t id,
                            InferResponse* out);
  static void send_cancel_on(int fd, uint32_t request_id);
  InferResponse infer_attempt(const std::string& model, const Tensor& sample,
                              uint32_t deadline_us);
  InferResponse hedged_wait(uint32_t id, const std::string& model, const Tensor& sample,
                            uint32_t deadline_us);

  int fd_ = -1;
  uint32_t next_request_id_ = 1;
  std::string host_;
  uint16_t port_ = 0;
  int recv_timeout_ms_ = 0;
  std::string token_;
  HedgeConfig hedge_;
  std::vector<uint8_t> in_;        ///< buffered unparsed bytes, primary conn
  std::set<uint32_t> stale_;       ///< ids whose primary-conn response is void
  int hedge_fd_ = -1;              ///< second connection (lazy, persistent)
  std::vector<uint8_t> hedge_in_;
  std::set<uint32_t> stale_hedge_;
  uint64_t hedges_sent_ = 0;
  uint64_t hedge_wins_ = 0;
};

}  // namespace tqt::net
