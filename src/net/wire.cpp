#include "net/wire.h"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace tqt::net {

const char* to_string(WireStatus s) {
  switch (s) {
    case WireStatus::kOk: return "ok";
    case WireStatus::kShed: return "shed";
    case WireStatus::kDeadlineExceeded: return "deadline_exceeded";
    case WireStatus::kBadModel: return "bad_model";
    case WireStatus::kMalformed: return "malformed";
    case WireStatus::kShuttingDown: return "shutting_down";
    case WireStatus::kInternal: return "internal";
    case WireStatus::kCorruptModel: return "corrupt_model";
    case WireStatus::kRateLimited: return "rate_limited";
    case WireStatus::kQuotaExceeded: return "quota_exceeded";
    case WireStatus::kCancelled: return "cancelled";
    case WireStatus::kSlowClient: return "slow_client";
  }
  return "?";
}

const char* to_string(AdminOp op) {
  switch (op) {
    case AdminOp::kCalibBatch: return "calib_batch";
    case AdminOp::kStatus: return "status";
    case AdminOp::kTrigger: return "trigger";
    case AdminOp::kDryRun: return "dry_run";
    case AdminOp::kRollback: return "rollback";
    case AdminOp::kSwapFile: return "swap_file";
    case AdminOp::kReloadTenants: return "reload_tenants";
  }
  return "?";
}

namespace {

// ---- Little-endian primitives ---------------------------------------------
// Explicit shift-based coding keeps the format well-defined on any host.

void put_u16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v & 0xff));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void put_u32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v & 0xff));
  out.push_back(static_cast<uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<uint8_t>((v >> 24) & 0xff));
}

uint16_t get_u16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (static_cast<uint16_t>(p[1]) << 8));
}

uint32_t get_u32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

/// Bounds-checked forward-only cursor over a received payload. Every read
/// checks the remaining byte count; nothing is ever read past `n`.
struct Reader {
  const uint8_t* p;
  size_t n;
  size_t off = 0;

  size_t remaining() const { return n - off; }

  bool u8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = p[off++];
    return true;
  }
  bool u16(uint16_t* v) {
    if (remaining() < 2) return false;
    *v = get_u16(p + off);
    off += 2;
    return true;
  }
  bool u32(uint32_t* v) {
    if (remaining() < 4) return false;
    *v = get_u32(p + off);
    off += 4;
    return true;
  }
  bool bytes(void* dst, size_t k) {
    if (remaining() < k) return false;
    std::memcpy(dst, p + off, k);
    off += k;
    return true;
  }
};

bool fail(std::string* err, const char* why) {
  if (err) *err = why;
  return false;
}

/// Shared by request and response payloads: u8 rank, u32 dims[], f32 data[],
/// consuming the remainder of the payload exactly.
bool parse_tensor(Reader& r, Tensor* out, std::string* err) {
  uint8_t rank = 0;
  if (!r.u8(&rank)) return fail(err, "truncated tensor rank");
  if (rank < 1 || rank > kMaxRank) return fail(err, "tensor rank outside 1..6");
  Shape shape(rank);
  uint64_t numel = 1;
  for (int d = 0; d < rank; ++d) {
    uint32_t extent = 0;
    if (!r.u32(&extent)) return fail(err, "truncated tensor dims");
    if (extent == 0) return fail(err, "zero tensor dimension");
    numel *= extent;  // each factor <= 2^32; payload bound below catches abuse
    if (numel > kMaxPayloadBytes / 4) return fail(err, "tensor element count over frame bound");
    shape[static_cast<size_t>(d)] = extent;
  }
  if (r.remaining() != numel * 4) {
    return fail(err, r.remaining() < numel * 4 ? "truncated tensor data"
                                               : "trailing bytes after tensor data");
  }
  std::vector<float> data(static_cast<size_t>(numel));
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = std::bit_cast<float>(get_u32(r.p + r.off + 4 * i));
  }
  r.off = r.n;
  *out = Tensor(std::move(shape), std::move(data));
  return true;
}

void append_tensor(std::vector<uint8_t>& out, const Tensor& t) {
  out.push_back(static_cast<uint8_t>(t.rank()));
  for (int64_t d = 0; d < t.rank(); ++d) {
    put_u32(out, static_cast<uint32_t>(t.dim(d)));
  }
  const float* data = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    put_u32(out, std::bit_cast<uint32_t>(data[i]));
  }
}

void check_tensor_bounds(const Tensor& t, const char* what) {
  if (t.rank() < 1 || t.rank() > kMaxRank) {
    throw std::invalid_argument(std::string("wire: ") + what + " rank must be 1..6");
  }
  for (int64_t d = 0; d < t.rank(); ++d) {
    if (t.dim(d) < 1 || t.dim(d) > 0xffffffffll) {
      throw std::invalid_argument(std::string("wire: ") + what + " has out-of-range dimension");
    }
  }
  if (t.numel() > static_cast<int64_t>(kMaxPayloadBytes / 4)) {
    throw std::invalid_argument(std::string("wire: ") + what + " exceeds the frame size bound");
  }
}

void append_header(std::vector<uint8_t>& out, uint8_t version, FrameType type,
                   WireStatus status, uint32_t request_id, uint32_t payload_len) {
  put_u32(out, kMagic);
  out.push_back(version);
  out.push_back(static_cast<uint8_t>(type));
  out.push_back(static_cast<uint8_t>(status));
  out.push_back(0);  // reserved
  put_u32(out, request_id);
  put_u32(out, payload_len);
}

/// Patch the payload_len field once the payload has been appended in place.
void patch_payload_len(std::vector<uint8_t>& out, size_t header_at) {
  const size_t payload = out.size() - header_at - kHeaderBytes;
  if (payload > kMaxPayloadBytes) {
    throw std::invalid_argument("wire: payload exceeds kMaxPayloadBytes");
  }
  const uint32_t len = static_cast<uint32_t>(payload);
  out[header_at + 12] = static_cast<uint8_t>(len & 0xff);
  out[header_at + 13] = static_cast<uint8_t>((len >> 8) & 0xff);
  out[header_at + 14] = static_cast<uint8_t>((len >> 16) & 0xff);
  out[header_at + 15] = static_cast<uint8_t>((len >> 24) & 0xff);
}

}  // namespace

void append_request_frame(std::vector<uint8_t>& out, uint32_t request_id,
                          const InferRequest& req) {
  if (req.model.empty() || req.model.size() > kMaxModelNameBytes) {
    throw std::invalid_argument("wire: model name must be 1..256 bytes");
  }
  if (req.token.size() > kMaxTokenBytes) {
    throw std::invalid_argument("wire: auth token must fit in 128 bytes");
  }
  check_tensor_bounds(req.input, "request tensor");
  // No token -> a byte-identical version-1 frame, so a current client with
  // no tenant configured interoperates with pre-QoS servers.
  const uint8_t version = req.token.empty() ? kMinVersion : kVersion;
  const size_t header_at = out.size();
  append_header(out, version, FrameType::kRequest, WireStatus::kOk, request_id, 0);
  put_u16(out, static_cast<uint16_t>(req.model.size()));
  out.insert(out.end(), req.model.begin(), req.model.end());
  if (version >= 2) {
    put_u16(out, static_cast<uint16_t>(req.token.size()));
    out.insert(out.end(), req.token.begin(), req.token.end());
  }
  put_u32(out, req.deadline_us);
  append_tensor(out, req.input);
  patch_payload_len(out, header_at);
}

void append_cancel_frame(std::vector<uint8_t>& out, uint32_t request_id) {
  append_header(out, kVersion, FrameType::kCancel, WireStatus::kOk, request_id, 0);
}

void append_response_frame(std::vector<uint8_t>& out, uint32_t request_id,
                           const InferResponse& resp) {
  const size_t header_at = out.size();
  // Responses are emitted at version 1: the layout is unchanged by the v2
  // bump, and old clients keep parsing every status they can trigger.
  append_header(out, kMinVersion, FrameType::kResponse, resp.status, request_id, 0);
  if (resp.status == WireStatus::kOk) {
    check_tensor_bounds(resp.output, "response tensor");
    append_tensor(out, resp.output);
  } else {
    const size_t len = std::min(resp.message.size(), size_t{0xffff});
    put_u16(out, static_cast<uint16_t>(len));
    out.insert(out.end(), resp.message.begin(), resp.message.begin() + static_cast<long>(len));
  }
  patch_payload_len(out, header_at);
}

void append_admin_request_frame(std::vector<uint8_t>& out, uint32_t request_id,
                                const AdminRequest& req) {
  if (req.model.empty() || req.model.size() > kMaxModelNameBytes) {
    throw std::invalid_argument("wire: model name must be 1..256 bytes");
  }
  if (req.arg.size() > 0xffff) {
    throw std::invalid_argument("wire: admin arg must fit in 65535 bytes");
  }
  if (req.has_batch) check_tensor_bounds(req.batch, "admin batch tensor");
  const size_t header_at = out.size();
  // kReloadTenants is a v2 op; everything older stays parseable as v1.
  const uint8_t version = req.op >= AdminOp::kReloadTenants ? kVersion : kMinVersion;
  append_header(out, version, FrameType::kAdminRequest, WireStatus::kOk, request_id, 0);
  out.push_back(static_cast<uint8_t>(req.op));
  put_u16(out, static_cast<uint16_t>(req.model.size()));
  out.insert(out.end(), req.model.begin(), req.model.end());
  put_u16(out, static_cast<uint16_t>(req.arg.size()));
  out.insert(out.end(), req.arg.begin(), req.arg.end());
  out.push_back(req.has_batch ? 1 : 0);
  if (req.has_batch) append_tensor(out, req.batch);
  patch_payload_len(out, header_at);
}

void append_admin_response_frame(std::vector<uint8_t>& out, uint32_t request_id,
                                 const AdminResponse& resp) {
  const size_t header_at = out.size();
  append_header(out, kMinVersion, FrameType::kAdminResponse, resp.status, request_id, 0);
  const size_t len = std::min(resp.message.size(), size_t{0xffff});
  put_u16(out, static_cast<uint16_t>(len));
  out.insert(out.end(), resp.message.begin(), resp.message.begin() + static_cast<long>(len));
  patch_payload_len(out, header_at);
}

HeaderParse parse_header(const uint8_t* data, size_t n, FrameHeader* h, std::string* err) {
  if (n >= 4 && get_u32(data) != kMagic) {
    if (err) *err = "bad magic";
    return HeaderParse::kCorrupt;
  }
  if (n < kHeaderBytes) return HeaderParse::kNeedMore;
  const auto corrupt = [&](const char* why) {
    if (err) *err = why;
    return HeaderParse::kCorrupt;
  };
  const uint8_t version = data[4];
  const uint8_t type = data[5];
  const uint8_t status = data[6];
  const uint8_t reserved = data[7];
  if (version < kMinVersion || version > kVersion) {
    return corrupt("unsupported protocol version");
  }
  // kCancel is a v2 frame type: in a v1 frame it is exactly as unknown as it
  // was to a v1-era parser.
  const uint8_t max_type = version >= 2 ? static_cast<uint8_t>(FrameType::kCancel)
                                        : static_cast<uint8_t>(FrameType::kAdminResponse);
  if (type < static_cast<uint8_t>(FrameType::kRequest) || type > max_type) {
    return corrupt("unknown frame type");
  }
  if (status > static_cast<uint8_t>(kMaxWireStatus)) return corrupt("unknown status code");
  if (reserved != 0) return corrupt("nonzero reserved byte");
  const uint32_t payload_len = get_u32(data + 12);
  if (payload_len > kMaxPayloadBytes) return corrupt("declared payload length over bound");
  h->version = version;
  h->type = static_cast<FrameType>(type);
  h->status = static_cast<WireStatus>(status);
  h->request_id = get_u32(data + 8);
  h->payload_len = payload_len;
  return HeaderParse::kOk;
}

bool parse_request_payload(const uint8_t* payload, size_t n, uint8_t version,
                           InferRequest* req, std::string* err) {
  Reader r{payload, n};
  uint16_t name_len = 0;
  if (!r.u16(&name_len)) return fail(err, "truncated model name length");
  if (name_len < 1 || name_len > kMaxModelNameBytes) {
    return fail(err, "model name length outside 1..256");
  }
  std::string name(name_len, '\0');
  if (!r.bytes(name.data(), name_len)) return fail(err, "truncated model name");
  std::string token;
  if (version >= 2) {
    uint16_t token_len = 0;
    if (!r.u16(&token_len)) return fail(err, "truncated token length");
    if (token_len > kMaxTokenBytes) return fail(err, "token length over 128");
    token.assign(token_len, '\0');
    if (!r.bytes(token.data(), token_len)) return fail(err, "truncated token");
  }
  if (!r.u32(&req->deadline_us)) return fail(err, "truncated deadline");
  if (!parse_tensor(r, &req->input, err)) return false;
  req->model = std::move(name);
  req->token = std::move(token);
  return true;
}

bool parse_response_payload(const uint8_t* payload, size_t n, WireStatus status,
                            InferResponse* resp, std::string* err) {
  Reader r{payload, n};
  resp->status = status;
  resp->message.clear();
  if (status == WireStatus::kOk) {
    return parse_tensor(r, &resp->output, err);
  }
  uint16_t msg_len = 0;
  if (!r.u16(&msg_len)) return fail(err, "truncated error message length");
  std::string msg(msg_len, '\0');
  if (!r.bytes(msg.data(), msg_len)) return fail(err, "truncated error message");
  if (r.remaining() != 0) return fail(err, "trailing bytes after error message");
  resp->message = std::move(msg);
  resp->output = Tensor();
  return true;
}

bool parse_admin_request_payload(const uint8_t* payload, size_t n, AdminRequest* req,
                                 std::string* err) {
  Reader r{payload, n};
  uint8_t op = 0;
  if (!r.u8(&op)) return fail(err, "truncated admin op");
  if (op < static_cast<uint8_t>(AdminOp::kCalibBatch) ||
      op > static_cast<uint8_t>(AdminOp::kReloadTenants)) {
    return fail(err, "unknown admin op");
  }
  uint16_t name_len = 0;
  if (!r.u16(&name_len)) return fail(err, "truncated model name length");
  if (name_len < 1 || name_len > kMaxModelNameBytes) {
    return fail(err, "model name length outside 1..256");
  }
  std::string name(name_len, '\0');
  if (!r.bytes(name.data(), name_len)) return fail(err, "truncated model name");
  uint16_t arg_len = 0;
  if (!r.u16(&arg_len)) return fail(err, "truncated admin arg length");
  std::string arg(arg_len, '\0');
  if (!r.bytes(arg.data(), arg_len)) return fail(err, "truncated admin arg");
  uint8_t has_batch = 0;
  if (!r.u8(&has_batch)) return fail(err, "truncated admin batch flag");
  if (has_batch > 1) return fail(err, "admin batch flag must be 0 or 1");
  if (has_batch) {
    if (!parse_tensor(r, &req->batch, err)) return false;
  } else {
    if (r.remaining() != 0) return fail(err, "trailing bytes after admin request");
    req->batch = Tensor();
  }
  req->op = static_cast<AdminOp>(op);
  req->model = std::move(name);
  req->arg = std::move(arg);
  req->has_batch = has_batch != 0;
  return true;
}

bool parse_admin_response_payload(const uint8_t* payload, size_t n, WireStatus status,
                                  AdminResponse* resp, std::string* err) {
  Reader r{payload, n};
  resp->status = status;
  uint16_t msg_len = 0;
  if (!r.u16(&msg_len)) return fail(err, "truncated admin message length");
  std::string msg(msg_len, '\0');
  if (!r.bytes(msg.data(), msg_len)) return fail(err, "truncated admin message");
  if (r.remaining() != 0) return fail(err, "trailing bytes after admin message");
  resp->message = std::move(msg);
  return true;
}

}  // namespace tqt::net
