// Narrow-width integer kernel registry for the typed fixed-point engine.
//
// The hot instructions of a compiled program — Conv2d (as im2col + GEMM),
// Dense (GEMM directly; activations are already the [M, K] A operand) and
// DepthwiseConv2d — dispatch through one KernelSet. The contract is pure
// integer arithmetic with no saturation: the memory plan (plan.h) proves the
// int32 accumulators cannot overflow, so every implementation — scalar,
// AVX2, a future NEON — produces bit-identical results and variants can slot
// in behind the same function pointers.
//
// Kernels parallelize internally over output rows via runtime/parallel.h;
// integer accumulation is exact, so chunking never changes results.
//
// Selection: active_kernels() picks the best compiled-in set for this CPU
// (AVX2 when the build and the machine support it, scalar otherwise). The
// TQT_KERNELS environment variable (scalar|avx2|auto) and
// set_active_kernels() override for tests and benches.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "fixedpoint/rescale.h"
#include "tensor/ops.h"

namespace tqt::fpk {

// ---- Algo selection (registry v2) ----------------------------------------
// A KernelSet no longer implies one fixed code path per op: each fused matmul
// instruction executes under an Algo chosen per (op, widths, shape, batch) —
// statically by the resolver's heuristics, or measured by the autotuner
// (autotune.h). Every algo computes bit-identical results (integer
// accumulation is exact and the plan proves int32 safety), so selection is
// purely a performance decision.

/// Candidate execution strategies for a fused matmul instruction. Order
/// matters: the autotuner breaks timing ties toward the lower enum value.
enum class Algo : uint8_t {
  kAuto = 0,     ///< not yet resolved — use the static heuristic
  kGemmPacked,   ///< im2col + pair-packed-B GEMM (gemm_s8p16_epi / s16)
  kGemmRaw,      ///< im2col + raw-B fused GEMM (gemm_s8_epi)
  kDwDirect,     ///< direct fused depthwise (depthwise_s8_epi / s16)
  kBlocked,      ///< NC8HW8 channel-blocked direct conv / depthwise
  kGeneric,      ///< executor's int64-accumulator fallback
  // Appended after kGeneric so persisted sidecar winners keep their values.
  kGemmS4,       ///< im2col + nibble-packed int4-B GEMM (gemm_s8n4_epi / s16)
};

/// Highest valid Algo value (sidecar winner range checks).
constexpr Algo kAlgoMax = Algo::kGemmS4;

const char* algo_name(Algo a);

// ---- Channel-blocked int8 layout (NC8HW8) ---------------------------------
// Activations regroup NHWC into blocks of kChanBlock channels:
//   xb[(((n * CB + cb) * H + y) * W + x) * 8 + l]  with  c = cb*8 + l,
// CB = blocked_c(C)/8. Lanes past C in the last block are zero on entry to a
// blocked chain (layout_pack writes them) and are neutralized inside it by
// zero weight lanes, so arbitrary chain compositions stay exact. The payoff:
// a blocked direct conv reads 8 consecutive input channels as one 8-byte
// load and retires 8 output channels per 256-bit accumulator — no im2col.

/// Channel block width (int32 lanes of one AVX2 vector).
constexpr int64_t kChanBlock = 8;

/// Channels rounded up to a whole block.
inline int64_t blocked_c(int64_t c) { return (c + kChanBlock - 1) & ~(kChanBlock - 1); }

/// Geometry bundle for the blocked direct conv kernel (NC8HW8 x and y).
struct ConvBlkArgs {
  int64_t batch = 0, h = 0, w = 0, cin = 0, cout = 0;
  int64_t oh = 0, ow = 0;
  Conv2dGeom geom;
};

/// Pack conv weights w[(t*cin + c) * cout + o] (t = tap index over kh*kw)
/// into the blocked-pair layout consumed by ConvS8BlkEpiFn:
///   wblk[(((ob*T + t) * PP + p) * 8 + j) * 2 + d] = w[(t*cin + 2p+d) * cout + ob*8+j]
/// with T = kh*kw, PP = blocked_c(cin)/2; out-of-range input or output
/// channels are zero. For a fixed (ob, t, p) the 16 int16 lanes form one
/// 32-byte vector: lane j holds the (even, odd) input-channel pair for
/// output channel ob*8 + j — a vpmaddwd against a broadcast activation pair.
std::vector<int16_t> pack_conv_wblk16(const int8_t* w, int64_t kh, int64_t kw,
                                      int64_t cin, int64_t cout);

/// Pack depthwise weights w[t*c + ch] into per-block tap vectors:
///   wd[(cb*T + t) * 8 + l] = w[t*c + cb*8+l]   (zero when cb*8+l >= c).
std::vector<int8_t> pack_dw_wblk8(const int8_t* w, int64_t kh, int64_t kw, int64_t c);

// ---- Fused epilogue -------------------------------------------------------
// The graph compiler (fuse.cpp) folds requant / bias-add / activation chains
// into the matmul instruction; the plan lowers them to this step list (shifts
// resolved from the static exponent replay). Fused kernels run the steps on
// each accumulator lane while it is still in registers, then store once at
// the output's narrow width — bit-identical to executing the absorbed
// instructions one arena pass at a time, because each step IS that
// instruction's per-lane function (shared fp::rescale / fp::saturate).

/// One lowered epilogue step. `op` matches FpInstr::EpiOp.
struct EpiStep {
  int op = 0;
  int shift = 0;          ///< requant: target_exp - incoming_exp
  int64_t lo = 0, hi = 0; ///< requant / clamp saturation bounds
  int64_t alpha_q = 0;    ///< leaky multiplier
  int lift = 0;           ///< leaky: -alpha_exponent
  /// Requant of a per-channel-scaled matmul: the shift varies per output
  /// channel — read Epilogue::chan_shift[channel] instead of `shift`.
  bool per_channel = false;
};

/// Everything a fused kernel needs to retire one accumulator tile: the step
/// list, the absorbed per-channel bias (int64 lanes, null when none), and the
/// destination buffer + element width. `channel` in epi_apply is the output
/// column (conv/dense GEMM) or the channel index (depthwise).
struct Epilogue {
  const EpiStep* steps = nullptr;
  int n_steps = 0;
  const int64_t* bias = nullptr;
  void* y = nullptr;
  int out_bytes = 4;  ///< 1 | 2 | 4 | 8
  /// True when the plan proved every intermediate step value fits int32
  /// (and every shift stays under 31): SIMD kernels may then run the steps
  /// in 32-bit lanes — bit-identical to epi_apply because the rounding
  /// adjustment never widens past the value domain. When set and a bias
  /// step exists, `bias32` points at an int32 copy of the bias with 8 lanes
  /// of zero slack for unmasked vector loads.
  bool vec32 = false;
  const int32_t* bias32 = nullptr;
  /// Per-output-channel requant shifts (plan-resolved, already net of the
  /// channel's exponent delta); non-null iff some step has `per_channel`.
  const int32_t* chan_shift = nullptr;
};

/// Run the epilogue on one int64 accumulator lane. All arithmetic is int64 —
/// the same internal width the unfused elementwise instructions use — so the
/// result is exact regardless of the accumulator's storage width.
inline int64_t epi_apply(const Epilogue& e, int64_t v, int64_t channel) {
  for (int s = 0; s < e.n_steps; ++s) {
    const EpiStep& st = e.steps[s];
    switch (st.op) {
      case 0: {
        const int shift = st.per_channel ? e.chan_shift[channel] : st.shift;
        v = fp::saturate(fp::rescale(v, 0, shift), st.lo, st.hi);
        break;
      }
      case 1: v += e.bias[channel]; break;
      case 2: v = v > 0 ? v : 0; break;
      case 3: v = fp::saturate(v, st.lo, st.hi); break;
      case 4: v = std::max(v << st.lift, v * st.alpha_q); break;
    }
  }
  return v;
}

/// Store one epilogue result at the output's planned width. The plan's value
/// bounds make the narrowing cast lossless.
inline void epi_store(const Epilogue& e, int64_t idx, int64_t v) {
  switch (e.out_bytes) {
    case 1: static_cast<int8_t*>(e.y)[idx] = static_cast<int8_t>(v); break;
    case 2: static_cast<int16_t*>(e.y)[idx] = static_cast<int16_t>(v); break;
    case 4: static_cast<int32_t*>(e.y)[idx] = static_cast<int32_t>(v); break;
    default: static_cast<int64_t*>(e.y)[idx] = v; break;
  }
}

/// C[M,N] (int32, caller-zeroed) += A[M,K] * B[K,N]; all row-major int8.
using GemmS8Fn = void (*)(const int8_t* A, const int8_t* B, int32_t* C, int64_t M,
                          int64_t N, int64_t K);

/// C[M,N] (int32) = A[M,K] * B[K,N], OVERWRITING C (no caller zeroing — the
/// kernel covers all of K in one pass). B is pre-packed by pack_b_pair16():
/// consecutive K rows interleaved column-wise as int16 pairs over a column
/// stride of packed_n(N) — N rounded up to a whole 8-lane vector, extra
/// columns zero — i.e. Bp[(kp*packed_n(N) + n)*2 + d] = B[2*kp + d][n]
/// (zero-padded when K is odd). The pairing feeds two multiply-accumulates
/// per 32-bit lane (e.g. AVX2 vpmaddwd), and the padded stride lets every
/// column group run vector-width with a masked store on the last partial
/// group. Packing happens once per program because B is a weight constant.
/// A must be followed by at least 32 readable bytes of slack (ExecContext
/// pads its arena): implementations scan A rows for nonzero runs in whole
/// 16-byte blocks.
using GemmS8P16Fn = void (*)(const int8_t* A, const int16_t* Bp, int32_t* C, int64_t M,
                             int64_t N, int64_t K);

/// Same contract with an int16 A operand (the plan keeps many conv inputs at
/// int16 — e.g. pre-requant residual sums). Exactness holds unchanged: a
/// vpmaddwd pair sum is bounded by 2 * 2^15 * 2^7 < 2^23, and the plan only
/// narrows the output register to int32 when the full |x| * sum|w| bound —
/// which also dominates every partial sum — fits it.
using GemmS16P16Fn = void (*)(const int16_t* A, const int16_t* Bp, int32_t* C, int64_t M,
                              int64_t N, int64_t K);

/// Column stride of the packed layout: N rounded up to a multiple of 8.
inline int64_t packed_n(int64_t N) { return (N + 7) & ~int64_t{7}; }

/// Pack a row-major int8 [K, N] B operand into the k-pair-interleaved int16
/// layout consumed by GemmS8P16Fn.
std::vector<int16_t> pack_b_pair16(const int8_t* B, int64_t K, int64_t N);

/// Pack a row-major [K, N] B operand whose values all fit int4 ([-8, 7])
/// into the nibble layout consumed by GemmS8N4EpiFn — two K rows per byte,
/// mirroring pack_b_pair16's (even, odd) row pairing:
///   Bn[kp * packed_n(N) + n] = (B[2kp][n] & 0xF) | (B[2kp+1][n] << 4)
/// (low nibble = even row, high nibble = odd row; the odd row of an odd K and
/// columns >= N pack as zero). Half the bytes of the int8 copy and a quarter
/// of the pair16 copy — the sub-byte storage the INT4 path exists for.
/// Precondition (checked): every value in [-8, 7].
std::vector<uint8_t> pack_b_nib4(const int8_t* B, int64_t K, int64_t N);

/// Unpack one packed byte: low nibble (even K row), sign-extended.
inline int32_t nib4_lo(uint8_t b) {
  return static_cast<int8_t>(static_cast<uint8_t>(b << 4)) >> 4;
}
/// Unpack one packed byte: high nibble (odd K row), sign-extended.
inline int32_t nib4_hi(uint8_t b) { return static_cast<int8_t>(b) >> 4; }

/// Geometry bundle for the depthwise kernel (NHWC, one filter per channel,
/// weights in (kh, kw, c) row-major order).
struct DepthwiseArgs {
  int64_t batch = 0, h = 0, w = 0, c = 0;
  int64_t oh = 0, ow = 0;
  Conv2dGeom geom;
};

/// y[n,oh,ow,c] (int32, need not be pre-zeroed) = depthwise conv of int8 x.
using DepthwiseS8Fn = void (*)(const int8_t* x, const int8_t* w, int32_t* y,
                               const DepthwiseArgs& a);

// ---- Fused (epilogue-retiring) variants -----------------------------------
// Accumulation is bit-identical to the raw counterparts (same loop bodies
// behind a store policy); the int32 accumulator tile never reaches memory —
// it passes through epi_apply and stores narrow into e.y ([M, N] row-major at
// e.out_bytes). The plan guarantees the accumulator bound fits int32 before
// dispatching here.

/// Fused raw-B GEMM (scalar set): epilogue per column block, C never built.
using GemmS8EpiFn = void (*)(const int8_t* A, const int8_t* B, int64_t M, int64_t N,
                             int64_t K, const Epilogue& e);

/// Fused packed-B GEMM (pack_b_pair16 layout, 32-byte A slack — same operand
/// contract as GemmS8P16Fn).
using GemmS8P16EpiFn = void (*)(const int8_t* A, const int16_t* Bp, int64_t M,
                                int64_t N, int64_t K, const Epilogue& e);

/// int16-activation variant of the fused packed-B GEMM.
using GemmS16P16EpiFn = void (*)(const int16_t* A, const int16_t* Bp, int64_t M,
                                 int64_t N, int64_t K, const Epilogue& e);

/// Fused depthwise: per-pixel channel tile through the epilogue.
using DepthwiseS8EpiFn = void (*)(const int8_t* x, const int8_t* w,
                                  const DepthwiseArgs& a, const Epilogue& e);

/// int16-activation variant of the fused depthwise. The plan keeps many
/// activation registers at int16 — e.g. unsigned [0, 255] quantizer ranges
/// that a signed int8 cannot hold — so without this entry point every fused
/// depthwise fed by such a register would fall to the generic int64 walk.
using DepthwiseS16EpiFn = void (*)(const int16_t* x, const int8_t* w,
                                   const DepthwiseArgs& a, const Epilogue& e);

/// Blocked direct conv: x is NC8HW8 int8, wblk is pack_conv_wblk16 output,
/// y (inside e) is NC8HW8 at the planned narrow width. Output lanes past
/// a.cout store epilogue(0) under vec32 (the plan's bounds admit it — zero is
/// always inside the accumulator interval) or 0 on the scalar path; a
/// following layout_unpack drops them either way.
using ConvS8BlkEpiFn = void (*)(const int8_t* x, const int16_t* wblk,
                                const ConvBlkArgs& a, const Epilogue& e);

/// Blocked fused depthwise: x NC8HW8 int8, wblk from pack_dw_wblk8, a.c is
/// the *logical* channel count (storage is blocked_c(a.c)).
using DepthwiseS8BlkEpiFn = void (*)(const int8_t* x, const int8_t* wblk,
                                     const DepthwiseArgs& a, const Epilogue& e);

/// Fused nibble-packed-B GEMM (Algo::kGemmS4): Bn is pack_b_nib4 output; the
/// kernel sign-extends each nibble pair on the fly and feeds the same
/// (even, odd) multiply-accumulate as the pair16 path, so results are
/// bit-identical to every other algo. Same 32-byte A slack contract as
/// GemmS8P16Fn. The int32-safety bound is the pair16 one verbatim: an
/// unpacked nibble is just an int8 whose magnitude happens to be <= 8.
using GemmS8N4EpiFn = void (*)(const int8_t* A, const uint8_t* Bn, int64_t M,
                               int64_t N, int64_t K, const Epilogue& e);

/// int16-activation variant of the fused nibble-packed GEMM.
using GemmS16N4EpiFn = void (*)(const int16_t* A, const uint8_t* Bn, int64_t M,
                                int64_t N, int64_t K, const Epilogue& e);

struct KernelSet {
  const char* name = "?";
  GemmS8Fn gemm_s8s8s32 = nullptr;
  DepthwiseS8Fn depthwise_s8s8s32 = nullptr;
  /// Optional packed-B GEMM; null means the set only takes raw int8 B. The
  /// executor prefers this entry point when the plan carries a packed copy.
  GemmS8P16Fn gemm_s8p16s32 = nullptr;
  /// Optional int16-activation variant of the packed-B GEMM.
  GemmS16P16Fn gemm_s16p16s32 = nullptr;
  /// Fused variants; any null entry sends that shape to the executor's
  /// generic int64-accumulator fallback.
  GemmS8EpiFn gemm_s8_epi = nullptr;
  GemmS8P16EpiFn gemm_s8p16_epi = nullptr;
  GemmS16P16EpiFn gemm_s16p16_epi = nullptr;
  DepthwiseS8EpiFn depthwise_s8_epi = nullptr;
  DepthwiseS16EpiFn depthwise_s16_epi = nullptr;
  /// Channel-blocked candidates (Algo::kBlocked). Appended after the v1
  /// entries so aggregate initializers of the older fields stay valid. Both
  /// compiled-in sets register these (the scalar versions back the AVX2 set's
  /// contract on any future set without them), so a persisted kBlocked
  /// selection never degrades silently.
  ConvS8BlkEpiFn conv_s8blk_epi = nullptr;
  DepthwiseS8BlkEpiFn depthwise_s8blk_epi = nullptr;
  /// Sub-byte candidates (Algo::kGemmS4), appended after the blocked entries
  /// for the same aggregate-initializer stability reason. Null entries simply
  /// drop kGemmS4 from that set's candidate list.
  GemmS8N4EpiFn gemm_s8n4_epi = nullptr;
  GemmS16N4EpiFn gemm_s16n4_epi = nullptr;
};

/// Portable cache-blocked scalar kernels (always available).
const KernelSet& scalar_kernels();

/// AVX2 kernels, or nullptr when not compiled in (no -mavx2/-march support)
/// or the CPU lacks AVX2.
const KernelSet* avx2_kernels();

/// The set the engine dispatches through. Honors TQT_KERNELS on first call.
const KernelSet& active_kernels();

/// Force a specific set (tests/bench); nullptr restores automatic selection.
void set_active_kernels(const KernelSet* ks);

/// Validate a TQT_KERNELS value: returns nullptr when `value` is recognized
/// (scalar | avx2 | auto), else a static message naming the accepted values.
/// Exposed so the unrecognized-value exit path is unit-testable without a
/// death test; pick_from_env prints this message and exits 1.
const char* kernels_env_error(const char* value);

}  // namespace tqt::fpk
