// Narrow-width integer kernel registry for the typed fixed-point engine.
//
// The hot instructions of a compiled program — Conv2d (as im2col + GEMM),
// Dense (GEMM directly; activations are already the [M, K] A operand) and
// DepthwiseConv2d — dispatch through one KernelSet. The contract is pure
// integer arithmetic with no saturation: the memory plan (plan.h) proves the
// int32 accumulators cannot overflow, so every implementation — scalar,
// AVX2, a future NEON — produces bit-identical results and variants can slot
// in behind the same function pointers.
//
// Kernels parallelize internally over output rows via runtime/parallel.h;
// integer accumulation is exact, so chunking never changes results.
//
// Selection: active_kernels() picks the best compiled-in set for this CPU
// (AVX2 when the build and the machine support it, scalar otherwise). The
// TQT_KERNELS environment variable (scalar|avx2|auto) and
// set_active_kernels() override for tests and benches.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/ops.h"

namespace tqt::fpk {

/// C[M,N] (int32, caller-zeroed) += A[M,K] * B[K,N]; all row-major int8.
using GemmS8Fn = void (*)(const int8_t* A, const int8_t* B, int32_t* C, int64_t M,
                          int64_t N, int64_t K);

/// C[M,N] (int32) = A[M,K] * B[K,N], OVERWRITING C (no caller zeroing — the
/// kernel covers all of K in one pass). B is pre-packed by pack_b_pair16():
/// consecutive K rows interleaved column-wise as int16 pairs over a column
/// stride of packed_n(N) — N rounded up to a whole 8-lane vector, extra
/// columns zero — i.e. Bp[(kp*packed_n(N) + n)*2 + d] = B[2*kp + d][n]
/// (zero-padded when K is odd). The pairing feeds two multiply-accumulates
/// per 32-bit lane (e.g. AVX2 vpmaddwd), and the padded stride lets every
/// column group run vector-width with a masked store on the last partial
/// group. Packing happens once per program because B is a weight constant.
/// A must be followed by at least 32 readable bytes of slack (ExecContext
/// pads its arena): implementations scan A rows for nonzero runs in whole
/// 16-byte blocks.
using GemmS8P16Fn = void (*)(const int8_t* A, const int16_t* Bp, int32_t* C, int64_t M,
                             int64_t N, int64_t K);

/// Same contract with an int16 A operand (the plan keeps many conv inputs at
/// int16 — e.g. pre-requant residual sums). Exactness holds unchanged: a
/// vpmaddwd pair sum is bounded by 2 * 2^15 * 2^7 < 2^23, and the plan only
/// narrows the output register to int32 when the full |x| * sum|w| bound —
/// which also dominates every partial sum — fits it.
using GemmS16P16Fn = void (*)(const int16_t* A, const int16_t* Bp, int32_t* C, int64_t M,
                              int64_t N, int64_t K);

/// Column stride of the packed layout: N rounded up to a multiple of 8.
inline int64_t packed_n(int64_t N) { return (N + 7) & ~int64_t{7}; }

/// Pack a row-major int8 [K, N] B operand into the k-pair-interleaved int16
/// layout consumed by GemmS8P16Fn.
std::vector<int16_t> pack_b_pair16(const int8_t* B, int64_t K, int64_t N);

/// Geometry bundle for the depthwise kernel (NHWC, one filter per channel,
/// weights in (kh, kw, c) row-major order).
struct DepthwiseArgs {
  int64_t batch = 0, h = 0, w = 0, c = 0;
  int64_t oh = 0, ow = 0;
  Conv2dGeom geom;
};

/// y[n,oh,ow,c] (int32, need not be pre-zeroed) = depthwise conv of int8 x.
using DepthwiseS8Fn = void (*)(const int8_t* x, const int8_t* w, int32_t* y,
                               const DepthwiseArgs& a);

struct KernelSet {
  const char* name = "?";
  GemmS8Fn gemm_s8s8s32 = nullptr;
  DepthwiseS8Fn depthwise_s8s8s32 = nullptr;
  /// Optional packed-B GEMM; null means the set only takes raw int8 B. The
  /// executor prefers this entry point when the plan carries a packed copy.
  GemmS8P16Fn gemm_s8p16s32 = nullptr;
  /// Optional int16-activation variant of the packed-B GEMM.
  GemmS16P16Fn gemm_s16p16s32 = nullptr;
};

/// Portable cache-blocked scalar kernels (always available).
const KernelSet& scalar_kernels();

/// AVX2 kernels, or nullptr when not compiled in (no -mavx2/-march support)
/// or the CPU lacks AVX2.
const KernelSet* avx2_kernels();

/// The set the engine dispatches through. Honors TQT_KERNELS on first call.
const KernelSet& active_kernels();

/// Force a specific set (tests/bench); nullptr restores automatic selection.
void set_active_kernels(const KernelSet* ks);

}  // namespace tqt::fpk
