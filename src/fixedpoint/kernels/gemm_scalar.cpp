// Scalar (portable) narrow-width kernels + kernel-set selection.
//
// The GEMM is cache-blocked over K: a 256-row slab of B (256*N int8) stays
// L1/L2-resident while a thread's C rows stream over it. Blocking only
// regroups the k loop; integer accumulation is exact, so the result is
// bit-identical for every block size, thread count, and skip pattern.
#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "fixedpoint/kernels/kernels.h"
#include "runtime/parallel.h"

namespace tqt::fpk {

namespace {

constexpr int64_t kKBlock = 256;

void gemm_s8_scalar(const int8_t* A, const int8_t* B, int32_t* C, int64_t M, int64_t N,
                    int64_t K) {
  parallel_for(0, M, grain_for(M, 2 * K * N, kGemmTargetOps), [&](int64_t m0, int64_t m1) {
    for (int64_t k0 = 0; k0 < K; k0 += kKBlock) {
      const int64_t k1 = std::min(K, k0 + kKBlock);
      for (int64_t i = m0; i < m1; ++i) {
        const int8_t* a = A + i * K;
        int32_t* c = C + i * N;
        for (int64_t k = k0; k < k1; ++k) {
          // Zero-skip: im2col padding and post-ReLU activations are
          // genuinely sparse, and skipping zeros cannot change the sum.
          const int32_t av = a[k];
          if (av == 0) continue;
          const int8_t* b = B + k * N;
          for (int64_t j = 0; j < N; ++j) c[j] += av * b[j];
        }
      }
    }
  });
}

void depthwise_s8_scalar(const int8_t* x, const int8_t* w, int32_t* y,
                         const DepthwiseArgs& a) {
  const Conv2dGeom& g = a.geom;
  const int64_t rows = a.batch * a.oh;
  parallel_for(0, rows, grain_for(rows, a.ow * g.kh * g.kw * a.c * 2, kGemmTargetOps),
               [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int64_t b = r / a.oh;
      const int64_t oy = r % a.oh;
      for (int64_t ox = 0; ox < a.ow; ++ox) {
        int32_t* out = y + (r * a.ow + ox) * a.c;
        std::memset(out, 0, static_cast<size_t>(a.c) * sizeof(int32_t));
        const int64_t iy0 = oy * g.stride_h - g.pad_top;
        const int64_t ix0 = ox * g.stride_w - g.pad_left;
        for (int64_t ky = 0; ky < g.kh; ++ky) {
          const int64_t iy = iy0 + ky;
          if (iy < 0 || iy >= a.h) continue;
          for (int64_t kx = 0; kx < g.kw; ++kx) {
            const int64_t ix = ix0 + kx;
            if (ix < 0 || ix >= a.w) continue;
            const int8_t* xi = x + ((b * a.h + iy) * a.w + ix) * a.c;
            const int8_t* wk = w + (ky * g.kw + kx) * a.c;
            for (int64_t ch = 0; ch < a.c; ++ch) {
              out[ch] += static_cast<int32_t>(xi[ch]) * wk[ch];
            }
          }
        }
      }
    }
  });
}

// Fused GEMM: accumulate a column block of one row into a stack tile, then
// retire it through the epilogue — the int32 accumulators never reach memory.
// Column blocks are independent, so chunking handles any N without heap
// buffers; re-reading A per block costs less than the arena passes it saves.
constexpr int64_t kNBlock = 256;

void gemm_s8_epi_scalar(const int8_t* A, const int8_t* B, int64_t M, int64_t N,
                        int64_t K, const Epilogue& e) {
  parallel_for(0, M, grain_for(M, 2 * K * N, kGemmTargetOps), [&](int64_t m0, int64_t m1) {
    int32_t buf[kNBlock];
    for (int64_t i = m0; i < m1; ++i) {
      const int8_t* a = A + i * K;
      for (int64_t j0 = 0; j0 < N; j0 += kNBlock) {
        const int64_t jn = std::min(kNBlock, N - j0);
        std::memset(buf, 0, static_cast<size_t>(jn) * sizeof(int32_t));
        for (int64_t k = 0; k < K; ++k) {
          const int32_t av = a[k];
          if (av == 0) continue;
          const int8_t* b = B + k * N + j0;
          for (int64_t j = 0; j < jn; ++j) buf[j] += av * b[j];
        }
        for (int64_t j = 0; j < jn; ++j) {
          epi_store(e, i * N + j0 + j, epi_apply(e, buf[j], j0 + j));
        }
      }
    }
  });
}

template <typename XT>
void depthwise_epi_scalar(const XT* x, const int8_t* w, const DepthwiseArgs& a,
                          const Epilogue& e) {
  const Conv2dGeom& g = a.geom;
  const int64_t rows = a.batch * a.oh;
  parallel_for(0, rows, grain_for(rows, a.ow * g.kh * g.kw * a.c * 2, kGemmTargetOps),
               [&](int64_t r0, int64_t r1) {
    int32_t buf[kNBlock];
    for (int64_t r = r0; r < r1; ++r) {
      const int64_t b = r / a.oh;
      const int64_t oy = r % a.oh;
      for (int64_t ox = 0; ox < a.ow; ++ox) {
        const int64_t out_base = (r * a.ow + ox) * a.c;
        const int64_t iy0 = oy * g.stride_h - g.pad_top;
        const int64_t ix0 = ox * g.stride_w - g.pad_left;
        for (int64_t c0 = 0; c0 < a.c; c0 += kNBlock) {
          const int64_t cn = std::min(kNBlock, a.c - c0);
          std::memset(buf, 0, static_cast<size_t>(cn) * sizeof(int32_t));
          for (int64_t ky = 0; ky < g.kh; ++ky) {
            const int64_t iy = iy0 + ky;
            if (iy < 0 || iy >= a.h) continue;
            for (int64_t kx = 0; kx < g.kw; ++kx) {
              const int64_t ix = ix0 + kx;
              if (ix < 0 || ix >= a.w) continue;
              const XT* xi = x + ((b * a.h + iy) * a.w + ix) * a.c + c0;
              const int8_t* wk = w + (ky * g.kw + kx) * a.c + c0;
              for (int64_t ch = 0; ch < cn; ++ch) {
                buf[ch] += static_cast<int32_t>(xi[ch]) * wk[ch];
              }
            }
          }
          for (int64_t ch = 0; ch < cn; ++ch) {
            epi_store(e, out_base + c0 + ch, epi_apply(e, buf[ch], c0 + ch));
          }
        }
      }
    }
  });
}

void depthwise_s8_epi_scalar(const int8_t* x, const int8_t* w, const DepthwiseArgs& a,
                             const Epilogue& e) {
  depthwise_epi_scalar(x, w, a, e);
}

void depthwise_s16_epi_scalar(const int16_t* x, const int8_t* w, const DepthwiseArgs& a,
                              const Epilogue& e) {
  depthwise_epi_scalar(x, w, a, e);
}

const KernelSet* g_forced = nullptr;

}  // namespace

std::vector<int16_t> pack_b_pair16(const int8_t* B, int64_t K, int64_t N) {
  const int64_t pairs = (K + 1) / 2;
  const int64_t np = packed_n(N);
  std::vector<int16_t> packed(static_cast<size_t>(pairs * np * 2), int16_t{0});
  for (int64_t p = 0; p < pairs; ++p) {
    const int8_t* row0 = B + (2 * p) * N;
    const int8_t* row1 = (2 * p + 1 < K) ? B + (2 * p + 1) * N : nullptr;
    int16_t* dst = packed.data() + p * np * 2;
    for (int64_t n = 0; n < N; ++n) {
      dst[2 * n] = row0[n];
      dst[2 * n + 1] = row1 ? row1[n] : int16_t{0};
    }
  }
  return packed;
}

namespace {

const KernelSet* pick_auto() {
  if (const KernelSet* avx2 = avx2_kernels()) return avx2;
  return &scalar_kernels();
}

const KernelSet* pick_from_env() {
  if (const char* env = std::getenv("TQT_KERNELS")) {
    if (std::strcmp(env, "scalar") == 0) return &scalar_kernels();
    if (std::strcmp(env, "avx2") == 0 && avx2_kernels()) return avx2_kernels();
  }
  return pick_auto();
}

}  // namespace

const KernelSet& scalar_kernels() {
  static const KernelSet ks{"scalar",
                            gemm_s8_scalar,
                            depthwise_s8_scalar,
                            nullptr,
                            nullptr,
                            gemm_s8_epi_scalar,
                            nullptr,
                            nullptr,
                            depthwise_s8_epi_scalar,
                            depthwise_s16_epi_scalar};
  return ks;
}

const KernelSet& active_kernels() {
  static const KernelSet* auto_pick = pick_from_env();
  return g_forced ? *g_forced : *auto_pick;
}

void set_active_kernels(const KernelSet* ks) { g_forced = ks; }

}  // namespace tqt::fpk
