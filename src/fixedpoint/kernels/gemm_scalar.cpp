// Scalar (portable) narrow-width kernels + kernel-set selection.
//
// The GEMM is cache-blocked over K: a 256-row slab of B (256*N int8) stays
// L1/L2-resident while a thread's C rows stream over it. Blocking only
// regroups the k loop; integer accumulation is exact, so the result is
// bit-identical for every block size, thread count, and skip pattern.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "fixedpoint/kernels/kernels.h"
#include "runtime/parallel.h"

namespace tqt::fpk {

const char* algo_name(Algo a) {
  switch (a) {
    case Algo::kAuto: return "auto";
    case Algo::kGemmPacked: return "gemm-packed";
    case Algo::kGemmRaw: return "gemm-raw";
    case Algo::kDwDirect: return "dw-direct";
    case Algo::kBlocked: return "blocked";
    case Algo::kGeneric: return "generic";
    case Algo::kGemmS4: return "gemm-s4";
  }
  return "?";
}

namespace {

constexpr int64_t kKBlock = 256;

void gemm_s8_scalar(const int8_t* A, const int8_t* B, int32_t* C, int64_t M, int64_t N,
                    int64_t K) {
  parallel_for(0, M, grain_for(M, 2 * K * N, kGemmTargetOps), [&](int64_t m0, int64_t m1) {
    for (int64_t k0 = 0; k0 < K; k0 += kKBlock) {
      const int64_t k1 = std::min(K, k0 + kKBlock);
      for (int64_t i = m0; i < m1; ++i) {
        const int8_t* a = A + i * K;
        int32_t* c = C + i * N;
        for (int64_t k = k0; k < k1; ++k) {
          // Zero-skip: im2col padding and post-ReLU activations are
          // genuinely sparse, and skipping zeros cannot change the sum.
          const int32_t av = a[k];
          if (av == 0) continue;
          const int8_t* b = B + k * N;
          for (int64_t j = 0; j < N; ++j) c[j] += av * b[j];
        }
      }
    }
  });
}

void depthwise_s8_scalar(const int8_t* x, const int8_t* w, int32_t* y,
                         const DepthwiseArgs& a) {
  const Conv2dGeom& g = a.geom;
  const int64_t rows = a.batch * a.oh;
  parallel_for(0, rows, grain_for(rows, a.ow * g.kh * g.kw * a.c * 2, kGemmTargetOps),
               [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int64_t b = r / a.oh;
      const int64_t oy = r % a.oh;
      for (int64_t ox = 0; ox < a.ow; ++ox) {
        int32_t* out = y + (r * a.ow + ox) * a.c;
        std::memset(out, 0, static_cast<size_t>(a.c) * sizeof(int32_t));
        const int64_t iy0 = oy * g.stride_h - g.pad_top;
        const int64_t ix0 = ox * g.stride_w - g.pad_left;
        for (int64_t ky = 0; ky < g.kh; ++ky) {
          const int64_t iy = iy0 + ky;
          if (iy < 0 || iy >= a.h) continue;
          for (int64_t kx = 0; kx < g.kw; ++kx) {
            const int64_t ix = ix0 + kx;
            if (ix < 0 || ix >= a.w) continue;
            const int8_t* xi = x + ((b * a.h + iy) * a.w + ix) * a.c;
            const int8_t* wk = w + (ky * g.kw + kx) * a.c;
            for (int64_t ch = 0; ch < a.c; ++ch) {
              out[ch] += static_cast<int32_t>(xi[ch]) * wk[ch];
            }
          }
        }
      }
    }
  });
}

// Fused GEMM: accumulate a column block of one row into a stack tile, then
// retire it through the epilogue — the int32 accumulators never reach memory.
// Column blocks are independent, so chunking handles any N without heap
// buffers; re-reading A per block costs less than the arena passes it saves.
constexpr int64_t kNBlock = 256;

void gemm_s8_epi_scalar(const int8_t* A, const int8_t* B, int64_t M, int64_t N,
                        int64_t K, const Epilogue& e) {
  parallel_for(0, M, grain_for(M, 2 * K * N, kGemmTargetOps), [&](int64_t m0, int64_t m1) {
    int32_t buf[kNBlock];
    for (int64_t i = m0; i < m1; ++i) {
      const int8_t* a = A + i * K;
      for (int64_t j0 = 0; j0 < N; j0 += kNBlock) {
        const int64_t jn = std::min(kNBlock, N - j0);
        std::memset(buf, 0, static_cast<size_t>(jn) * sizeof(int32_t));
        for (int64_t k = 0; k < K; ++k) {
          const int32_t av = a[k];
          if (av == 0) continue;
          const int8_t* b = B + k * N + j0;
          for (int64_t j = 0; j < jn; ++j) buf[j] += av * b[j];
        }
        for (int64_t j = 0; j < jn; ++j) {
          epi_store(e, i * N + j0 + j, epi_apply(e, buf[j], j0 + j));
        }
      }
    }
  });
}

// Fused nibble-packed-B GEMM: the pair walk of the packed int16 path with the
// B load replaced by an in-register nibble unpack. Column blocks keep the
// int32 accumulators on the stack exactly like gemm_s8_epi_scalar; the
// (even, odd) K-row pairing matches pack_b_nib4, so an odd K's final pair
// multiplies the zero high nibble.
template <typename AT>
void gemm_nib4_epi_scalar(const AT* A, const uint8_t* Bn, int64_t M, int64_t N,
                          int64_t K, const Epilogue& e) {
  const int64_t pairs = (K + 1) / 2;
  const int64_t np = packed_n(N);
  parallel_for(0, M, grain_for(M, 2 * K * N, kGemmTargetOps), [&](int64_t m0, int64_t m1) {
    int32_t buf[kNBlock];
    for (int64_t i = m0; i < m1; ++i) {
      const AT* a = A + i * K;
      for (int64_t j0 = 0; j0 < N; j0 += kNBlock) {
        const int64_t jn = std::min(kNBlock, N - j0);
        std::memset(buf, 0, static_cast<size_t>(jn) * sizeof(int32_t));
        for (int64_t p = 0; p < pairs; ++p) {
          const int32_t a0 = a[2 * p];
          const int32_t a1 = (2 * p + 1 < K) ? static_cast<int32_t>(a[2 * p + 1]) : 0;
          if ((a0 | a1) == 0) continue;
          const uint8_t* b = Bn + p * np + j0;
          for (int64_t j = 0; j < jn; ++j) {
            buf[j] += a0 * nib4_lo(b[j]) + a1 * nib4_hi(b[j]);
          }
        }
        for (int64_t j = 0; j < jn; ++j) {
          epi_store(e, i * N + j0 + j, epi_apply(e, buf[j], j0 + j));
        }
      }
    }
  });
}

void gemm_s8n4_epi_scalar(const int8_t* A, const uint8_t* Bn, int64_t M, int64_t N,
                          int64_t K, const Epilogue& e) {
  gemm_nib4_epi_scalar(A, Bn, M, N, K, e);
}

void gemm_s16n4_epi_scalar(const int16_t* A, const uint8_t* Bn, int64_t M, int64_t N,
                           int64_t K, const Epilogue& e) {
  gemm_nib4_epi_scalar(A, Bn, M, N, K, e);
}

template <typename XT>
void depthwise_epi_scalar(const XT* x, const int8_t* w, const DepthwiseArgs& a,
                          const Epilogue& e) {
  const Conv2dGeom& g = a.geom;
  const int64_t rows = a.batch * a.oh;
  parallel_for(0, rows, grain_for(rows, a.ow * g.kh * g.kw * a.c * 2, kGemmTargetOps),
               [&](int64_t r0, int64_t r1) {
    int32_t buf[kNBlock];
    for (int64_t r = r0; r < r1; ++r) {
      const int64_t b = r / a.oh;
      const int64_t oy = r % a.oh;
      for (int64_t ox = 0; ox < a.ow; ++ox) {
        const int64_t out_base = (r * a.ow + ox) * a.c;
        const int64_t iy0 = oy * g.stride_h - g.pad_top;
        const int64_t ix0 = ox * g.stride_w - g.pad_left;
        for (int64_t c0 = 0; c0 < a.c; c0 += kNBlock) {
          const int64_t cn = std::min(kNBlock, a.c - c0);
          std::memset(buf, 0, static_cast<size_t>(cn) * sizeof(int32_t));
          for (int64_t ky = 0; ky < g.kh; ++ky) {
            const int64_t iy = iy0 + ky;
            if (iy < 0 || iy >= a.h) continue;
            for (int64_t kx = 0; kx < g.kw; ++kx) {
              const int64_t ix = ix0 + kx;
              if (ix < 0 || ix >= a.w) continue;
              const XT* xi = x + ((b * a.h + iy) * a.w + ix) * a.c + c0;
              const int8_t* wk = w + (ky * g.kw + kx) * a.c + c0;
              for (int64_t ch = 0; ch < cn; ++ch) {
                buf[ch] += static_cast<int32_t>(xi[ch]) * wk[ch];
              }
            }
          }
          for (int64_t ch = 0; ch < cn; ++ch) {
            epi_store(e, out_base + c0 + ch, epi_apply(e, buf[ch], c0 + ch));
          }
        }
      }
    }
  });
}

void depthwise_s8_epi_scalar(const int8_t* x, const int8_t* w, const DepthwiseArgs& a,
                             const Epilogue& e) {
  depthwise_epi_scalar(x, w, a, e);
}

void depthwise_s16_epi_scalar(const int16_t* x, const int8_t* w, const DepthwiseArgs& a,
                              const Epilogue& e) {
  depthwise_epi_scalar(x, w, a, e);
}

// ---- Channel-blocked (NC8HW8) direct kernels ------------------------------
// Portable reference implementations of Algo::kBlocked. Output lanes past the
// logical channel count store 0 without touching the epilogue (the bias table
// has no entry for them); the AVX2 variants store epilogue(0) instead — both
// are legal because a layout_unpack (or zero weight lanes in a consuming
// blocked kernel) discards those lanes.

void conv_s8blk_epi_scalar(const int8_t* x, const int16_t* wblk, const ConvBlkArgs& a,
                           const Epilogue& e) {
  const Conv2dGeom& g = a.geom;
  const int64_t CBi = blocked_c(a.cin) / kChanBlock;
  const int64_t PP = blocked_c(a.cin) / 2;
  const int64_t OB = blocked_c(a.cout) / kChanBlock;
  const int64_t T = g.kh * g.kw;
  const int64_t rows = a.batch * a.oh;
  parallel_for(0, rows, grain_for(rows, a.ow * T * a.cin * a.cout * 2, kGemmTargetOps),
               [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int64_t b = r / a.oh;
      const int64_t oy = r % a.oh;
      for (int64_t ox = 0; ox < a.ow; ++ox) {
        const int64_t iy0 = oy * g.stride_h - g.pad_top;
        const int64_t ix0 = ox * g.stride_w - g.pad_left;
        for (int64_t ob = 0; ob < OB; ++ob) {
          int32_t acc[kChanBlock] = {0};
          for (int64_t ky = 0; ky < g.kh; ++ky) {
            const int64_t iy = iy0 + ky;
            if (iy < 0 || iy >= a.h) continue;
            for (int64_t kx = 0; kx < g.kw; ++kx) {
              const int64_t ix = ix0 + kx;
              if (ix < 0 || ix >= a.w) continue;
              const int16_t* wt = wblk + ((ob * T + ky * g.kw + kx) * PP) * 2 * kChanBlock;
              for (int64_t p = 0; p < PP; ++p) {
                // Input channels 2p and 2p+1 share a block (kChanBlock is
                // even), so both lanes come from one contiguous pixel group.
                const int8_t* xi =
                    x + (((b * CBi + (2 * p) / kChanBlock) * a.h + iy) * a.w + ix) *
                            kChanBlock +
                    (2 * p) % kChanBlock;
                const int32_t x0 = xi[0];
                const int32_t x1 = xi[1];
                if ((x0 | x1) == 0) continue;
                const int16_t* wp = wt + p * 2 * kChanBlock;
                for (int64_t j = 0; j < kChanBlock; ++j) {
                  acc[j] += x0 * wp[2 * j] + x1 * wp[2 * j + 1];
                }
              }
            }
          }
          const int64_t out_base = (((b * OB + ob) * a.oh + oy) * a.ow + ox) * kChanBlock;
          for (int64_t j = 0; j < kChanBlock; ++j) {
            const int64_t ch = ob * kChanBlock + j;
            if (ch < a.cout) {
              epi_store(e, out_base + j, epi_apply(e, acc[j], ch));
            } else {
              epi_store(e, out_base + j, 0);
            }
          }
        }
      }
    }
  });
}

void depthwise_s8blk_epi_scalar(const int8_t* x, const int8_t* wblk,
                                const DepthwiseArgs& a, const Epilogue& e) {
  const Conv2dGeom& g = a.geom;
  const int64_t CB = blocked_c(a.c) / kChanBlock;
  const int64_t T = g.kh * g.kw;
  const int64_t rows = a.batch * a.oh;
  parallel_for(0, rows, grain_for(rows, a.ow * T * a.c * 2, kGemmTargetOps),
               [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int64_t b = r / a.oh;
      const int64_t oy = r % a.oh;
      for (int64_t ox = 0; ox < a.ow; ++ox) {
        const int64_t iy0 = oy * g.stride_h - g.pad_top;
        const int64_t ix0 = ox * g.stride_w - g.pad_left;
        for (int64_t cb = 0; cb < CB; ++cb) {
          int32_t acc[kChanBlock] = {0};
          for (int64_t ky = 0; ky < g.kh; ++ky) {
            const int64_t iy = iy0 + ky;
            if (iy < 0 || iy >= a.h) continue;
            for (int64_t kx = 0; kx < g.kw; ++kx) {
              const int64_t ix = ix0 + kx;
              if (ix < 0 || ix >= a.w) continue;
              const int8_t* xi =
                  x + (((b * CB + cb) * a.h + iy) * a.w + ix) * kChanBlock;
              const int8_t* wk = wblk + (cb * T + ky * g.kw + kx) * kChanBlock;
              for (int64_t l = 0; l < kChanBlock; ++l) {
                acc[l] += static_cast<int32_t>(xi[l]) * wk[l];
              }
            }
          }
          const int64_t out_base = (((b * CB + cb) * a.oh + oy) * a.ow + ox) * kChanBlock;
          for (int64_t l = 0; l < kChanBlock; ++l) {
            const int64_t ch = cb * kChanBlock + l;
            if (ch < a.c) {
              epi_store(e, out_base + l, epi_apply(e, acc[l], ch));
            } else {
              epi_store(e, out_base + l, 0);
            }
          }
        }
      }
    }
  });
}

const KernelSet* g_forced = nullptr;

}  // namespace

std::vector<int16_t> pack_b_pair16(const int8_t* B, int64_t K, int64_t N) {
  const int64_t pairs = (K + 1) / 2;
  const int64_t np = packed_n(N);
  std::vector<int16_t> packed(static_cast<size_t>(pairs * np * 2), int16_t{0});
  for (int64_t p = 0; p < pairs; ++p) {
    const int8_t* row0 = B + (2 * p) * N;
    const int8_t* row1 = (2 * p + 1 < K) ? B + (2 * p + 1) * N : nullptr;
    int16_t* dst = packed.data() + p * np * 2;
    for (int64_t n = 0; n < N; ++n) {
      dst[2 * n] = row0[n];
      dst[2 * n + 1] = row1 ? row1[n] : int16_t{0};
    }
  }
  return packed;
}

std::vector<uint8_t> pack_b_nib4(const int8_t* B, int64_t K, int64_t N) {
  const int64_t pairs = (K + 1) / 2;
  const int64_t np = packed_n(N);
  std::vector<uint8_t> packed(static_cast<size_t>(pairs * np), uint8_t{0});
  for (int64_t p = 0; p < pairs; ++p) {
    const int8_t* row0 = B + (2 * p) * N;
    const int8_t* row1 = (2 * p + 1 < K) ? B + (2 * p + 1) * N : nullptr;
    uint8_t* dst = packed.data() + p * np;
    for (int64_t n = 0; n < N; ++n) {
      const int v0 = row0[n];
      const int v1 = row1 ? row1[n] : 0;
      if (v0 < -8 || v0 > 7 || v1 < -8 || v1 > 7) {
        throw std::invalid_argument("pack_b_nib4: value outside int4 range [-8, 7]");
      }
      dst[n] = static_cast<uint8_t>((v0 & 0xF) | (v1 << 4));
    }
  }
  return packed;
}

std::vector<int16_t> pack_conv_wblk16(const int8_t* w, int64_t kh, int64_t kw,
                                      int64_t cin, int64_t cout) {
  const int64_t T = kh * kw;
  const int64_t PP = blocked_c(cin) / 2;
  const int64_t OB = blocked_c(cout) / kChanBlock;
  std::vector<int16_t> packed(static_cast<size_t>(OB * T * PP * kChanBlock * 2),
                              int16_t{0});
  for (int64_t ob = 0; ob < OB; ++ob) {
    for (int64_t t = 0; t < T; ++t) {
      for (int64_t p = 0; p < PP; ++p) {
        int16_t* dst = packed.data() + (((ob * T + t) * PP + p) * kChanBlock) * 2;
        for (int64_t j = 0; j < kChanBlock; ++j) {
          const int64_t o = ob * kChanBlock + j;
          if (o >= cout) continue;
          for (int64_t d = 0; d < 2; ++d) {
            const int64_t c = 2 * p + d;
            if (c < cin) dst[j * 2 + d] = w[(t * cin + c) * cout + o];
          }
        }
      }
    }
  }
  return packed;
}

std::vector<int8_t> pack_dw_wblk8(const int8_t* w, int64_t kh, int64_t kw, int64_t c) {
  const int64_t T = kh * kw;
  const int64_t CB = blocked_c(c) / kChanBlock;
  std::vector<int8_t> packed(static_cast<size_t>(CB * T * kChanBlock), int8_t{0});
  for (int64_t cb = 0; cb < CB; ++cb) {
    for (int64_t t = 0; t < T; ++t) {
      for (int64_t l = 0; l < kChanBlock; ++l) {
        const int64_t ch = cb * kChanBlock + l;
        if (ch < c) {
          packed[static_cast<size_t>((cb * T + t) * kChanBlock + l)] = w[t * c + ch];
        }
      }
    }
  }
  return packed;
}

const char* kernels_env_error(const char* value) {
  if (std::strcmp(value, "scalar") == 0 || std::strcmp(value, "avx2") == 0 ||
      std::strcmp(value, "auto") == 0) {
    return nullptr;
  }
  return "unrecognized TQT_KERNELS value (expected scalar|avx2|auto)";
}

namespace {

const KernelSet* pick_auto() {
  if (const KernelSet* avx2 = avx2_kernels()) return avx2;
  return &scalar_kernels();
}

const KernelSet* pick_from_env() {
  if (const char* env = std::getenv("TQT_KERNELS")) {
    if (const char* err = kernels_env_error(env)) {
      std::fprintf(stderr, "error: %s, got '%s'\n", err, env);
      std::exit(1);
    }
    if (std::strcmp(env, "scalar") == 0) return &scalar_kernels();
    if (std::strcmp(env, "avx2") == 0 && avx2_kernels()) return avx2_kernels();
  }
  return pick_auto();
}

}  // namespace

const KernelSet& scalar_kernels() {
  static const KernelSet ks{"scalar",
                            gemm_s8_scalar,
                            depthwise_s8_scalar,
                            nullptr,
                            nullptr,
                            gemm_s8_epi_scalar,
                            nullptr,
                            nullptr,
                            depthwise_s8_epi_scalar,
                            depthwise_s16_epi_scalar,
                            conv_s8blk_epi_scalar,
                            depthwise_s8blk_epi_scalar,
                            gemm_s8n4_epi_scalar,
                            gemm_s16n4_epi_scalar};
  return ks;
}

const KernelSet& active_kernels() {
  static const KernelSet* auto_pick = pick_from_env();
  return g_forced ? *g_forced : *auto_pick;
}

void set_active_kernels(const KernelSet* ks) { g_forced = ks; }

}  // namespace tqt::fpk
