// AVX2 variants of the narrow-width kernels, compile-time gated: the file
// always builds, but the vector bodies exist only when the compiler targets
// AVX2 (e.g. -march=native on an AVX2 machine), and avx2_kernels() further
// checks the running CPU. Everything here is exact integer arithmetic —
// int8 operands widened to int32 lanes, multiplied and added in int32 — so
// results are bit-identical to the scalar set (asserted in tests).
//
// A NEON set would slot in the same way behind fpk::KernelSet; this repo's
// CI targets x86, so only the AVX2 instance is provided.
#include <algorithm>

#include "fixedpoint/kernels/kernels.h"
#include "runtime/parallel.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace tqt::fpk {

#if defined(__AVX2__)

namespace {

constexpr int64_t kKBlock = 256;

// C row tile: 16 int32 lanes (two 256-bit accumulators) per (i, j0) panel.
void gemm_s8_avx2(const int8_t* A, const int8_t* B, int32_t* C, int64_t M, int64_t N,
                  int64_t K) {
  parallel_for(0, M, grain_for(M, 2 * K * N, kGemmTargetOps), [&](int64_t m0, int64_t m1) {
    const int64_t n16 = N - (N % 16);
    for (int64_t i = m0; i < m1; ++i) {
      const int8_t* a = A + i * K;
      int32_t* c = C + i * N;
      for (int64_t j0 = 0; j0 < n16; j0 += 16) {
        __m256i acc0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + j0));
        __m256i acc1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + j0 + 8));
        for (int64_t k = 0; k < K; ++k) {
          const int32_t av = a[k];
          if (av == 0) continue;
          const __m256i va = _mm256_set1_epi32(av);
          const int8_t* b = B + k * N + j0;
          const __m256i vb0 = _mm256_cvtepi8_epi32(
              _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b)));
          const __m256i vb1 = _mm256_cvtepi8_epi32(
              _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b + 8)));
          acc0 = _mm256_add_epi32(acc0, _mm256_mullo_epi32(va, vb0));
          acc1 = _mm256_add_epi32(acc1, _mm256_mullo_epi32(va, vb1));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + j0), acc0);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + j0 + 8), acc1);
      }
      // Scalar tail for N % 16 columns, K-blocked like the scalar kernel.
      if (n16 < N) {
        for (int64_t k0 = 0; k0 < K; k0 += kKBlock) {
          const int64_t k1 = std::min(K, k0 + kKBlock);
          for (int64_t k = k0; k < k1; ++k) {
            const int32_t av = a[k];
            if (av == 0) continue;
            const int8_t* b = B + k * N;
            for (int64_t j = n16; j < N; ++j) c[j] += av * b[j];
          }
        }
      }
    }
  });
}

// Bit p*2 set when A-row pair p of this 8-pair block (bytes 2p, 2p+1 of
// `av`) has any nonzero byte.
inline uint32_t nonzero_pair_mask8(const __m128i av) {
  const uint32_t nz =
      0xFFFFu ^ static_cast<uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(av, _mm_setzero_si128())));
  return (nz | (nz >> 1)) & 0x5555u;
}

// The eight (a0, a1) int16 pair-broadcasts of one 16-byte A block, built with
// vector shuffles only: sign-extend the block to int16 (one 32-bit lane per
// pair), mirror its 128-bit halves, then broadcast each lane with an
// immediate-index shuffle. ~2 uops per broadcast, vs ~6 for rebuilding
// (a1 << 16) | a0 through scalar registers each pair.
struct PairBroadcast8 {
  __m256i va[8];
  explicit PairBroadcast8(const __m128i a8) {
    const __m256i a16 = _mm256_cvtepi8_epi16(a8);
    const __m256i lo = _mm256_permute2x128_si256(a16, a16, 0x00);
    const __m256i hi = _mm256_permute2x128_si256(a16, a16, 0x11);
    va[0] = _mm256_shuffle_epi32(lo, 0x00);
    va[1] = _mm256_shuffle_epi32(lo, 0x55);
    va[2] = _mm256_shuffle_epi32(lo, 0xAA);
    va[3] = _mm256_shuffle_epi32(lo, 0xFF);
    va[4] = _mm256_shuffle_epi32(hi, 0x00);
    va[5] = _mm256_shuffle_epi32(hi, 0x55);
    va[6] = _mm256_shuffle_epi32(hi, 0xAA);
    va[7] = _mm256_shuffle_epi32(hi, 0xFF);
  }
};

// Below this many nonzero pairs (of 8) the tzcnt-driven sparse walk beats
// processing the whole block; post-ReLU activation rows sit on both sides.
constexpr int kDensePairThreshold = 3;

// Store policies: the packed GEMM loop bodies below are templates over how a
// finished accumulator tile leaves the registers. RawStore writes int32 C
// exactly as the pre-fusion kernels did; EpiStore runs the fused epilogue on
// each lane and stores narrow. Accumulation is the SAME instruction sequence
// either way, so fused and unfused results agree bit-for-bit by construction.

// Plain int32 stores into C; the last partial column group maskstores so
// packed-layout padding columns are never written.
struct RawStore {
  int32_t* C;
  int64_t N, n8;
  __m256i tail_mask;
  RawStore(int32_t* c, int64_t n) : C(c), N(n), n8(n - (n % 8)) {
    // Lane mask for the final partial group: lane l live iff n8 + l < N.
    tail_mask = _mm256_cmpgt_epi32(_mm256_set1_epi32(static_cast<int32_t>(N - n8)),
                                   _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
  }
  void store16(int64_t i, int64_t j0, __m256i acc0, __m256i acc1) const {
    int32_t* c = C + i * N + j0;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(c), acc0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 8), acc1);
  }
  void store8(int64_t i, int64_t j0, __m256i acc) const {
    int32_t* c = C + i * N + j0;
    if (j0 < n8) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(c), acc);
    } else {
      _mm256_maskstore_epi32(c, tail_mask, acc);
    }
  }
};

// ---- Vectorized epilogue ---------------------------------------------------
// epi_apply in 8 int32 lanes. Legal only when the plan set Epilogue::vec32
// (every intermediate step value provably fits int32 — including the
// v + half rounding headroom below); then it is bit-identical to the int64
// scalar walk: the requant rounding uses the add-bias form of
// shift_round_half_to_even — v + (half - 1) + LSB-of-floor-quotient, one
// arithmetic shift — which equals the quotient/remainder rule lane for lane,
// and every other step is pure add/shift/min/max.
//
// The per-step broadcast constants are materialized ONCE per kernel call
// (EpiVec) rather than per tile: a depthwise pixel retires a tile every ~9
// multiply-adds, so rebuilding half a dozen set1s per tile would rival the
// convolution work itself.
struct EpiVec {
  struct Step {
    int op = 0;
    int shift = 0;
    __m256i halfm1, lo, hi, alpha;  ///< halfm1: requant rounding bias, half - 1
    __m128i cnt;
  };
  Step steps[8];  // kMaxEpiSteps
  int n = 0;
  const int32_t* bias32 = nullptr;

  explicit EpiVec(const Epilogue& e) : n(e.n_steps), bias32(e.bias32) {
    for (int s = 0; s < n; ++s) {
      const EpiStep& st = e.steps[s];
      Step& d = steps[s];
      d.op = st.op;
      d.shift = st.shift;
      switch (st.op) {
        case 0:
          if (st.shift > 0) {
            d.halfm1 =
                _mm256_set1_epi32(static_cast<int32_t>((uint32_t{1} << (st.shift - 1)) - 1));
            d.cnt = _mm_cvtsi32_si128(st.shift);
          } else if (st.shift < 0) {
            d.cnt = _mm_cvtsi32_si128(-st.shift);
          }
          [[fallthrough]];
        case 3:
          d.lo = _mm256_set1_epi32(static_cast<int32_t>(st.lo));
          d.hi = _mm256_set1_epi32(static_cast<int32_t>(st.hi));
          break;
        case 4:
          d.cnt = _mm_cvtsi32_si128(st.lift);
          d.alpha = _mm256_set1_epi32(static_cast<int32_t>(st.alpha_q));
          break;
        default:
          break;
      }
    }
  }

  /// `j0` is the channel of lane 0; bias lanes load from the plan's padded
  /// int32 bias copy.
  __m256i apply(__m256i v, int64_t j0) const {
    for (int s = 0; s < n; ++s) {
      const Step& st = steps[s];
      switch (st.op) {
        case 0: {  // requant: round-half-to-even shift, then saturate
          if (st.shift > 0) {
            // v + (half - 1 + LSB of the floor quotient), one arithmetic
            // shift: rounds up exactly when remainder > half, or == half
            // with an odd quotient — shift_round_half_to_even in 5 ops.
            // The plan's vec32 proof reserved the v + half headroom.
            const __m256i qbit =
                _mm256_and_si256(_mm256_sra_epi32(v, st.cnt), _mm256_set1_epi32(1));
            v = _mm256_sra_epi32(
                _mm256_add_epi32(_mm256_add_epi32(v, st.halfm1), qbit), st.cnt);
          } else if (st.shift < 0) {
            v = _mm256_sll_epi32(v, st.cnt);
          }
          v = _mm256_min_epi32(_mm256_max_epi32(v, st.lo), st.hi);
          break;
        }
        case 1:
          v = _mm256_add_epi32(
              v, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bias32 + j0)));
          break;
        case 2:
          v = _mm256_max_epi32(v, _mm256_setzero_si256());
          break;
        case 3:
          v = _mm256_min_epi32(_mm256_max_epi32(v, st.lo), st.hi);
          break;
        case 4: {  // leaky: max(v << lift, v * alpha_q)
          const __m256i a = _mm256_sll_epi32(v, st.cnt);
          const __m256i m = _mm256_mullo_epi32(v, st.alpha);
          v = _mm256_max_epi32(a, m);
          break;
        }
      }
    }
    return v;
  }
};

/// Store 8 post-epilogue lanes at flat output index `idx`, narrowed to the
/// plan's width. The saturating packs are exact: the epilogue's final clamp
/// interval fits the output width by construction.
inline void epi_store_vec(const Epilogue& e, int64_t idx, __m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  switch (e.out_bytes) {
    case 1: {
      const __m128i w16 = _mm_packs_epi32(lo, hi);
      _mm_storel_epi64(reinterpret_cast<__m128i*>(static_cast<int8_t*>(e.y) + idx),
                       _mm_packs_epi16(w16, w16));
      break;
    }
    case 2:
      _mm_storeu_si128(reinterpret_cast<__m128i*>(static_cast<int16_t*>(e.y) + idx),
                       _mm_packs_epi32(lo, hi));
      break;
    case 4:
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(static_cast<int32_t*>(e.y) + idx),
                          v);
      break;
    default: {
      int64_t* y = static_cast<int64_t*>(e.y) + idx;
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(y), _mm256_cvtepi32_epi64(lo));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + 4), _mm256_cvtepi32_epi64(hi));
      break;
    }
  }
}

// Fused retire: run the epilogue on the accumulator tile while it is still in
// registers (vec32), or spill to the stack and walk the int64 scalar epilogue
// per lane otherwise. Lanes at column >= N are packed-layout padding —
// computed against zero B columns but never written (epi_store would index
// bias and the output out of range).
struct EpiStore {
  const Epilogue* e;
  const EpiVec* v;  ///< prepared vector steps; null when !e->vec32
  int64_t N;
  void flush8(int64_t i, int64_t j0, __m256i acc) const {
    const int64_t nvalid = std::min<int64_t>(8, N - j0);
    if (v) {
      const __m256i r = v->apply(acc, j0);
      if (nvalid == 8) {
        epi_store_vec(*e, i * N + j0, r);
      } else {
        alignas(32) int32_t t[8];
        _mm256_store_si256(reinterpret_cast<__m256i*>(t), r);
        for (int64_t l = 0; l < nvalid; ++l) epi_store(*e, i * N + j0 + l, t[l]);
      }
      return;
    }
    alignas(32) int32_t t[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(t), acc);
    for (int64_t l = 0; l < nvalid; ++l) {
      epi_store(*e, i * N + j0 + l, epi_apply(*e, t[l], j0 + l));
    }
  }
  void store16(int64_t i, int64_t j0, __m256i acc0, __m256i acc1) const {
    flush8(i, j0, acc0);
    flush8(i, j0 + 8, acc1);
  }
  void store8(int64_t i, int64_t j0, __m256i acc) const { flush8(i, j0, acc); }
};

// Packed-B GEMM: B comes k-pair-interleaved as int16 (pack_b_pair16), so one
// vpmaddwd computes a0*B[2p][n] + a1*B[2p+1][n] for 8 columns at once — 16
// exact int16*int16 multiply-adds per instruction, with the pair sum and the
// running accumulation both in int32 (the plan's bounds prove no partial sum
// can overflow). K runs in a single pass, so the output is overwritten from
// zero-initialized registers — the caller skips its memset entirely.
//
// The packed layout pads columns to packed_n(N) (zoo conv layers run 8-16
// channels wide, frequently not a multiple of 8), so every column group is a
// full 8-lane vector; the last partial group computes all 8 lanes against
// zero-padded B columns and retires through the store policy's tail path.
//
// A rows are walked in 8-pair (16-byte) blocks. One vector compare finds the
// block's nonzero pairs; near-dense blocks (LeakyReLU activations, im2col
// interiors) take an unrolled path whose pair broadcasts come from
// PairBroadcast8 shuffles, while sparse blocks (post-ReLU zeros) visit only
// their nonzero pairs via a count-trailing-zeros loop. Both read A through
// the 32-byte slack the caller guarantees; any beyond-K byte of the final
// pair multiplies the zero-padded tail of packed B.
// This is the engine's hot conv/dense path.
template <class Store>
void gemm_s8p16_body(const int8_t* A, const int16_t* Bp, int64_t M, int64_t N,
                     int64_t K, const Store& st) {
  const int64_t pairs = (K + 1) / 2;
  const int64_t np = packed_n(N);
  const int64_t n16 = N - (N % 16);
  parallel_for(0, M, grain_for(M, 2 * K * N, kGemmTargetOps), [&](int64_t m0, int64_t m1) {
    for (int64_t i = m0; i < m1; ++i) {
      const int8_t* a = A + i * K;
      for (int64_t j0 = 0; j0 < n16; j0 += 16) {
        __m256i acc0 = _mm256_setzero_si256();
        __m256i acc1 = _mm256_setzero_si256();
        for (int64_t pb = 0; pb < pairs; pb += 8) {
          const __m128i a8 =
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + 2 * pb));
          uint32_t pm = nonzero_pair_mask8(a8);
          const int64_t rem = pairs - pb;
          if (rem < 8) pm &= (uint32_t{1} << (2 * rem)) - 1;
          if (rem >= 8 && __builtin_popcount(pm) >= kDensePairThreshold) {
            const PairBroadcast8 bc(a8);
            const int16_t* b = Bp + (pb * np + j0) * 2;
            for (int j = 0; j < 8; ++j, b += 2 * np) {
              acc0 = _mm256_add_epi32(
                  acc0, _mm256_madd_epi16(bc.va[j],
                                          _mm256_loadu_si256(
                                              reinterpret_cast<const __m256i*>(b))));
              acc1 = _mm256_add_epi32(
                  acc1, _mm256_madd_epi16(bc.va[j],
                                          _mm256_loadu_si256(
                                              reinterpret_cast<const __m256i*>(b + 16))));
            }
            continue;
          }
          while (pm) {
            const int64_t p = pb + (__builtin_ctz(pm) >> 1);
            pm &= pm - 1;
            const int32_t a0 = a[2 * p];
            const int32_t a1 = a[2 * p + 1];  // odd-K slack multiplies zero B
            const __m256i va = _mm256_set1_epi32((a1 << 16) | (a0 & 0xFFFF));
            const int16_t* b = Bp + (p * np + j0) * 2;
            acc0 = _mm256_add_epi32(
                acc0, _mm256_madd_epi16(va, _mm256_loadu_si256(
                                                reinterpret_cast<const __m256i*>(b))));
            acc1 = _mm256_add_epi32(
                acc1, _mm256_madd_epi16(va, _mm256_loadu_si256(
                                                reinterpret_cast<const __m256i*>(b + 16))));
          }
        }
        st.store16(i, j0, acc0, acc1);
      }
      for (int64_t j0 = n16; j0 < np; j0 += 8) {
        __m256i acc = _mm256_setzero_si256();
        for (int64_t pb = 0; pb < pairs; pb += 8) {
          const __m128i a8 =
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + 2 * pb));
          uint32_t pm = nonzero_pair_mask8(a8);
          const int64_t rem = pairs - pb;
          if (rem < 8) pm &= (uint32_t{1} << (2 * rem)) - 1;
          if (rem >= 8 && __builtin_popcount(pm) >= kDensePairThreshold) {
            const PairBroadcast8 bc(a8);
            const int16_t* b = Bp + (pb * np + j0) * 2;
            for (int j = 0; j < 8; ++j, b += 2 * np) {
              acc = _mm256_add_epi32(
                  acc, _mm256_madd_epi16(bc.va[j],
                                         _mm256_loadu_si256(
                                             reinterpret_cast<const __m256i*>(b))));
            }
            continue;
          }
          while (pm) {
            const int64_t p = pb + (__builtin_ctz(pm) >> 1);
            pm &= pm - 1;
            const int32_t a0 = a[2 * p];
            const int32_t a1 = a[2 * p + 1];
            const __m256i va = _mm256_set1_epi32((a1 << 16) | (a0 & 0xFFFF));
            const int16_t* b = Bp + (p * np + j0) * 2;
            acc = _mm256_add_epi32(
                acc, _mm256_madd_epi16(va, _mm256_loadu_si256(
                                               reinterpret_cast<const __m256i*>(b))));
          }
        }
        st.store8(i, j0, acc);
      }
    }
  });
}

// int16-activation variant of the packed-B GEMM. Identical structure; the
// 8-pair block is one 32-byte load whose 32-bit lanes already hold the
// (a0, a1) int16 pairs, so no widening shuffle is needed and the nonzero-pair
// mask is a single epi32 compare. Pair products are bounded by
// 2 * 2^15 * 2^7 < 2^23, and the plan's int32 output width certifies the
// |x| * sum|w| bound that dominates every partial sum.
template <class Store>
void gemm_s16p16_body(const int16_t* A, const int16_t* Bp, int64_t M, int64_t N,
                      int64_t K, const Store& st) {
  const int64_t pairs = (K + 1) / 2;
  const int64_t np = packed_n(N);
  const int64_t n16 = N - (N % 16);
  parallel_for(0, M, grain_for(M, 2 * K * N, kGemmTargetOps), [&](int64_t m0, int64_t m1) {
    for (int64_t i = m0; i < m1; ++i) {
      const int16_t* a = A + i * K;
      for (int64_t j0 = 0; j0 < n16; j0 += 16) {
        __m256i acc0 = _mm256_setzero_si256();
        __m256i acc1 = _mm256_setzero_si256();
        for (int64_t pb = 0; pb < pairs; pb += 8) {
          const __m256i av =
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 2 * pb));
          uint32_t pm = 0xFFu ^ static_cast<uint32_t>(_mm256_movemask_ps(
              _mm256_castsi256_ps(_mm256_cmpeq_epi32(av, _mm256_setzero_si256()))));
          const int64_t rem = pairs - pb;
          if (rem < 8) pm &= (uint32_t{1} << rem) - 1;
          if (rem >= 8 && __builtin_popcount(pm) >= kDensePairThreshold) {
            const __m256i lo = _mm256_permute2x128_si256(av, av, 0x00);
            const __m256i hi = _mm256_permute2x128_si256(av, av, 0x11);
            const __m256i va[8] = {
                _mm256_shuffle_epi32(lo, 0x00), _mm256_shuffle_epi32(lo, 0x55),
                _mm256_shuffle_epi32(lo, 0xAA), _mm256_shuffle_epi32(lo, 0xFF),
                _mm256_shuffle_epi32(hi, 0x00), _mm256_shuffle_epi32(hi, 0x55),
                _mm256_shuffle_epi32(hi, 0xAA), _mm256_shuffle_epi32(hi, 0xFF)};
            const int16_t* b = Bp + (pb * np + j0) * 2;
            for (int j = 0; j < 8; ++j, b += 2 * np) {
              acc0 = _mm256_add_epi32(
                  acc0, _mm256_madd_epi16(va[j],
                                          _mm256_loadu_si256(
                                              reinterpret_cast<const __m256i*>(b))));
              acc1 = _mm256_add_epi32(
                  acc1, _mm256_madd_epi16(va[j],
                                          _mm256_loadu_si256(
                                              reinterpret_cast<const __m256i*>(b + 16))));
            }
            continue;
          }
          while (pm) {
            const int64_t p = pb + __builtin_ctz(pm);
            pm &= pm - 1;
            const int32_t a0 = a[2 * p];
            const int32_t a1 = a[2 * p + 1];  // odd-K slack multiplies zero B
            const __m256i va = _mm256_set1_epi32((a1 << 16) | (a0 & 0xFFFF));
            const int16_t* b = Bp + (p * np + j0) * 2;
            acc0 = _mm256_add_epi32(
                acc0, _mm256_madd_epi16(va, _mm256_loadu_si256(
                                                reinterpret_cast<const __m256i*>(b))));
            acc1 = _mm256_add_epi32(
                acc1, _mm256_madd_epi16(va, _mm256_loadu_si256(
                                                reinterpret_cast<const __m256i*>(b + 16))));
          }
        }
        st.store16(i, j0, acc0, acc1);
      }
      for (int64_t j0 = n16; j0 < np; j0 += 8) {
        __m256i acc = _mm256_setzero_si256();
        for (int64_t pb = 0; pb < pairs; pb += 8) {
          const __m256i av =
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 2 * pb));
          uint32_t pm = 0xFFu ^ static_cast<uint32_t>(_mm256_movemask_ps(
              _mm256_castsi256_ps(_mm256_cmpeq_epi32(av, _mm256_setzero_si256()))));
          const int64_t rem = pairs - pb;
          if (rem < 8) pm &= (uint32_t{1} << rem) - 1;
          if (rem >= 8 && __builtin_popcount(pm) >= kDensePairThreshold) {
            const __m256i lo = _mm256_permute2x128_si256(av, av, 0x00);
            const __m256i hi = _mm256_permute2x128_si256(av, av, 0x11);
            const __m256i va[8] = {
                _mm256_shuffle_epi32(lo, 0x00), _mm256_shuffle_epi32(lo, 0x55),
                _mm256_shuffle_epi32(lo, 0xAA), _mm256_shuffle_epi32(lo, 0xFF),
                _mm256_shuffle_epi32(hi, 0x00), _mm256_shuffle_epi32(hi, 0x55),
                _mm256_shuffle_epi32(hi, 0xAA), _mm256_shuffle_epi32(hi, 0xFF)};
            const int16_t* b = Bp + (pb * np + j0) * 2;
            for (int j = 0; j < 8; ++j, b += 2 * np) {
              acc = _mm256_add_epi32(
                  acc, _mm256_madd_epi16(va[j],
                                         _mm256_loadu_si256(
                                             reinterpret_cast<const __m256i*>(b))));
            }
            continue;
          }
          while (pm) {
            const int64_t p = pb + __builtin_ctz(pm);
            pm &= pm - 1;
            const int32_t a0 = a[2 * p];
            const int32_t a1 = a[2 * p + 1];
            const __m256i va = _mm256_set1_epi32((a1 << 16) | (a0 & 0xFFFF));
            const int16_t* b = Bp + (p * np + j0) * 2;
            acc = _mm256_add_epi32(
                acc, _mm256_madd_epi16(va, _mm256_loadu_si256(
                                               reinterpret_cast<const __m256i*>(b))));
          }
        }
        st.store8(i, j0, acc);
      }
    }
  });
}

// ---- Two-row register tile for the FUSED packed-B GEMM --------------------
// The single-row bodies above are load-bound: every vpmaddwd consumes a fresh
// B vector, so the multiply ports sit half idle waiting on loads. Re-using
// each B vector against a second A row doubles the multiply-accumulate work
// per byte loaded — the win that makes fusion a net speedup on compute-bound
// conv layers, not just on the arena-traffic-bound ones. Only the fused entry
// points take this path; the unfused body stays untouched so the pre-fusion
// engine's measured behavior is preserved exactly as the comparison baseline.
//
// Bit-exactness: each row's accumulator sees the same pair-products as the
// single-row walk, and int32 adds are associative/commutative under the
// plan's no-overflow bound, so any accumulation order yields the same sums.
// The sparsity skip uses the OR of both rows' nonzero-pair masks: a pair
// zero in one row contributes a zero product there, never a wrong one.

/// One 8-pair A block as 8 int16 (a0, a1) pairs in 32-bit lanes.
inline __m256i pair_block16(const int8_t* a) {
  return _mm256_cvtepi8_epi16(_mm_loadu_si128(reinterpret_cast<const __m128i*>(a)));
}
inline __m256i pair_block16(const int16_t* a) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
}

/// Bit p set when pair p of the block has any nonzero half.
inline uint32_t pair_mask8(const __m256i a16) {
  return 0xFFu ^ static_cast<uint32_t>(_mm256_movemask_ps(
      _mm256_castsi256_ps(_mm256_cmpeq_epi32(a16, _mm256_setzero_si256()))));
}

/// The eight pair-broadcasts of an already-widened 8-pair block register
/// (PairBroadcast8's shuffle tail without the int8 load/widen head).
struct PairShuffle8 {
  __m256i va[8];
  explicit PairShuffle8(const __m256i a16) {
    const __m256i lo = _mm256_permute2x128_si256(a16, a16, 0x00);
    const __m256i hi = _mm256_permute2x128_si256(a16, a16, 0x11);
    va[0] = _mm256_shuffle_epi32(lo, 0x00);
    va[1] = _mm256_shuffle_epi32(lo, 0x55);
    va[2] = _mm256_shuffle_epi32(lo, 0xAA);
    va[3] = _mm256_shuffle_epi32(lo, 0xFF);
    va[4] = _mm256_shuffle_epi32(hi, 0x00);
    va[5] = _mm256_shuffle_epi32(hi, 0x55);
    va[6] = _mm256_shuffle_epi32(hi, 0xAA);
    va[7] = _mm256_shuffle_epi32(hi, 0xFF);
  }
};

/// Store adapter shifting row indices: the 2-row body delegates an odd final
/// row to the single-row body over a shifted A operand.
template <class Store>
struct RowShift {
  const Store& inner;
  int64_t row0;
  void store16(int64_t i, int64_t j0, __m256i acc0, __m256i acc1) const {
    inner.store16(i + row0, j0, acc0, acc1);
  }
  void store8(int64_t i, int64_t j0, __m256i acc) const {
    inner.store8(i + row0, j0, acc);
  }
};

/// 2 rows x 16 columns (M must be even; entry points peel the tail row).
template <typename AT, class Store>
void gemm_pair16_epi2_body(const AT* A, const int16_t* Bp, int64_t M, int64_t N,
                           int64_t K, const Store& st) {
  const int64_t pairs = (K + 1) / 2;
  const int64_t np = packed_n(N);
  const int64_t n16 = N - (N % 16);
  const int64_t nt = M / 2;
  parallel_for(0, nt, grain_for(nt, 4 * K * N, kGemmTargetOps), [&](int64_t t0, int64_t t1) {
    for (int64_t t = t0; t < t1; ++t) {
      const int64_t i = 2 * t;
      const AT* a0r = A + i * K;
      const AT* a1r = a0r + K;
      for (int64_t j0 = 0; j0 < n16; j0 += 16) {
        __m256i acc00 = _mm256_setzero_si256();
        __m256i acc01 = _mm256_setzero_si256();
        __m256i acc10 = _mm256_setzero_si256();
        __m256i acc11 = _mm256_setzero_si256();
        for (int64_t pb = 0; pb < pairs; pb += 8) {
          const __m256i blk0 = pair_block16(a0r + 2 * pb);
          const __m256i blk1 = pair_block16(a1r + 2 * pb);
          uint32_t pm = pair_mask8(blk0) | pair_mask8(blk1);
          const int64_t rem = pairs - pb;
          if (rem < 8) pm &= (uint32_t{1} << rem) - 1;
          if (rem >= 8 && __builtin_popcount(pm) >= kDensePairThreshold) {
            const PairShuffle8 bc0(blk0);
            const PairShuffle8 bc1(blk1);
            const int16_t* b = Bp + (pb * np + j0) * 2;
            for (int j = 0; j < 8; ++j, b += 2 * np) {
              const __m256i b0 =
                  _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
              const __m256i b1 =
                  _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + 16));
              acc00 = _mm256_add_epi32(acc00, _mm256_madd_epi16(bc0.va[j], b0));
              acc01 = _mm256_add_epi32(acc01, _mm256_madd_epi16(bc0.va[j], b1));
              acc10 = _mm256_add_epi32(acc10, _mm256_madd_epi16(bc1.va[j], b0));
              acc11 = _mm256_add_epi32(acc11, _mm256_madd_epi16(bc1.va[j], b1));
            }
            continue;
          }
          while (pm) {
            const int64_t p = pb + __builtin_ctz(pm);
            pm &= pm - 1;
            const int16_t* bp = Bp + (p * np + j0) * 2;
            const __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp));
            const __m256i b1 =
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + 16));
            const int32_t r0a0 = a0r[2 * p];
            const int32_t r0a1 = a0r[2 * p + 1];  // odd-K slack multiplies zero B
            const int32_t r1a0 = a1r[2 * p];
            const int32_t r1a1 = a1r[2 * p + 1];
            const __m256i v0 = _mm256_set1_epi32((r0a1 << 16) | (r0a0 & 0xFFFF));
            const __m256i v1 = _mm256_set1_epi32((r1a1 << 16) | (r1a0 & 0xFFFF));
            acc00 = _mm256_add_epi32(acc00, _mm256_madd_epi16(v0, b0));
            acc01 = _mm256_add_epi32(acc01, _mm256_madd_epi16(v0, b1));
            acc10 = _mm256_add_epi32(acc10, _mm256_madd_epi16(v1, b0));
            acc11 = _mm256_add_epi32(acc11, _mm256_madd_epi16(v1, b1));
          }
        }
        st.store16(i, j0, acc00, acc01);
        st.store16(i + 1, j0, acc10, acc11);
      }
      for (int64_t j0 = n16; j0 < np; j0 += 8) {
        __m256i acc0 = _mm256_setzero_si256();
        __m256i acc1 = _mm256_setzero_si256();
        for (int64_t pb = 0; pb < pairs; pb += 8) {
          const __m256i blk0 = pair_block16(a0r + 2 * pb);
          const __m256i blk1 = pair_block16(a1r + 2 * pb);
          uint32_t pm = pair_mask8(blk0) | pair_mask8(blk1);
          const int64_t rem = pairs - pb;
          if (rem < 8) pm &= (uint32_t{1} << rem) - 1;
          if (rem >= 8 && __builtin_popcount(pm) >= kDensePairThreshold) {
            const PairShuffle8 bc0(blk0);
            const PairShuffle8 bc1(blk1);
            const int16_t* b = Bp + (pb * np + j0) * 2;
            for (int j = 0; j < 8; ++j, b += 2 * np) {
              const __m256i b0 =
                  _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
              acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(bc0.va[j], b0));
              acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(bc1.va[j], b0));
            }
            continue;
          }
          while (pm) {
            const int64_t p = pb + __builtin_ctz(pm);
            pm &= pm - 1;
            const int16_t* bp = Bp + (p * np + j0) * 2;
            const __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp));
            const int32_t r0a0 = a0r[2 * p];
            const int32_t r0a1 = a0r[2 * p + 1];
            const int32_t r1a0 = a1r[2 * p];
            const int32_t r1a1 = a1r[2 * p + 1];
            acc0 = _mm256_add_epi32(
                acc0, _mm256_madd_epi16(
                          _mm256_set1_epi32((r0a1 << 16) | (r0a0 & 0xFFFF)), b0));
            acc1 = _mm256_add_epi32(
                acc1, _mm256_madd_epi16(
                          _mm256_set1_epi32((r1a1 << 16) | (r1a0 & 0xFFFF)), b0));
          }
        }
        st.store8(i, j0, acc0);
        st.store8(i + 1, j0, acc1);
      }
    }
  });
}

// ---- Nibble-packed (int4) B GEMM -------------------------------------------
// The pair16 walk with the 32-byte packed-B vector load replaced by an 8-byte
// nibble load and an in-register sign-extend: widen the packed bytes to
// int16, take the high nibbles with one arithmetic >> 4 (the low nibble is a
// non-negative sub-value, so the shift is an exact floor division) and the
// low nibbles with << 12 then >> 12, then interleave low/high back into the
// (even, odd) int16 pair order vpmaddwd expects — the exact vector a pair16
// load of the same weights would produce, so accumulation (and therefore the
// result) is bit-identical to every other algo. Six unpack ops buy a 4x
// smaller B working set than the int16 pair copy.
inline __m256i nib_load8(const uint8_t* b) {
  const __m128i s =
      _mm_cvtepi8_epi16(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(b)));
  const __m128i hi = _mm_srai_epi16(s, 4);
  const __m128i lo = _mm_srai_epi16(_mm_slli_epi16(s, 12), 12);
  return _mm256_set_m128i(_mm_unpackhi_epi16(lo, hi), _mm_unpacklo_epi16(lo, hi));
}

/// 2 rows x 16 columns, nibble B (M must be even; entry points peel the tail
/// row through the single-row body below).
template <typename AT, class Store>
void gemm_nib4_epi2_body(const AT* A, const uint8_t* Bn, int64_t M, int64_t N,
                         int64_t K, const Store& st) {
  const int64_t pairs = (K + 1) / 2;
  const int64_t np = packed_n(N);
  const int64_t n16 = N - (N % 16);
  const int64_t nt = M / 2;
  parallel_for(0, nt, grain_for(nt, 4 * K * N, kGemmTargetOps), [&](int64_t t0, int64_t t1) {
    for (int64_t t = t0; t < t1; ++t) {
      const int64_t i = 2 * t;
      const AT* a0r = A + i * K;
      const AT* a1r = a0r + K;
      for (int64_t j0 = 0; j0 < n16; j0 += 16) {
        __m256i acc00 = _mm256_setzero_si256();
        __m256i acc01 = _mm256_setzero_si256();
        __m256i acc10 = _mm256_setzero_si256();
        __m256i acc11 = _mm256_setzero_si256();
        for (int64_t pb = 0; pb < pairs; pb += 8) {
          const __m256i blk0 = pair_block16(a0r + 2 * pb);
          const __m256i blk1 = pair_block16(a1r + 2 * pb);
          uint32_t pm = pair_mask8(blk0) | pair_mask8(blk1);
          const int64_t rem = pairs - pb;
          if (rem < 8) pm &= (uint32_t{1} << rem) - 1;
          if (rem >= 8 && __builtin_popcount(pm) >= kDensePairThreshold) {
            const PairShuffle8 bc0(blk0);
            const PairShuffle8 bc1(blk1);
            const uint8_t* b = Bn + pb * np + j0;
            for (int j = 0; j < 8; ++j, b += np) {
              const __m256i b0 = nib_load8(b);
              const __m256i b1 = nib_load8(b + 8);
              acc00 = _mm256_add_epi32(acc00, _mm256_madd_epi16(bc0.va[j], b0));
              acc01 = _mm256_add_epi32(acc01, _mm256_madd_epi16(bc0.va[j], b1));
              acc10 = _mm256_add_epi32(acc10, _mm256_madd_epi16(bc1.va[j], b0));
              acc11 = _mm256_add_epi32(acc11, _mm256_madd_epi16(bc1.va[j], b1));
            }
            continue;
          }
          while (pm) {
            const int64_t p = pb + __builtin_ctz(pm);
            pm &= pm - 1;
            const uint8_t* bp = Bn + p * np + j0;
            const __m256i b0 = nib_load8(bp);
            const __m256i b1 = nib_load8(bp + 8);
            const int32_t r0a0 = a0r[2 * p];
            const int32_t r0a1 = a0r[2 * p + 1];  // odd-K slack multiplies zero nibble
            const int32_t r1a0 = a1r[2 * p];
            const int32_t r1a1 = a1r[2 * p + 1];
            const __m256i v0 = _mm256_set1_epi32((r0a1 << 16) | (r0a0 & 0xFFFF));
            const __m256i v1 = _mm256_set1_epi32((r1a1 << 16) | (r1a0 & 0xFFFF));
            acc00 = _mm256_add_epi32(acc00, _mm256_madd_epi16(v0, b0));
            acc01 = _mm256_add_epi32(acc01, _mm256_madd_epi16(v0, b1));
            acc10 = _mm256_add_epi32(acc10, _mm256_madd_epi16(v1, b0));
            acc11 = _mm256_add_epi32(acc11, _mm256_madd_epi16(v1, b1));
          }
        }
        st.store16(i, j0, acc00, acc01);
        st.store16(i + 1, j0, acc10, acc11);
      }
      for (int64_t j0 = n16; j0 < np; j0 += 8) {
        __m256i acc0 = _mm256_setzero_si256();
        __m256i acc1 = _mm256_setzero_si256();
        for (int64_t pb = 0; pb < pairs; pb += 8) {
          const __m256i blk0 = pair_block16(a0r + 2 * pb);
          const __m256i blk1 = pair_block16(a1r + 2 * pb);
          uint32_t pm = pair_mask8(blk0) | pair_mask8(blk1);
          const int64_t rem = pairs - pb;
          if (rem < 8) pm &= (uint32_t{1} << rem) - 1;
          if (rem >= 8 && __builtin_popcount(pm) >= kDensePairThreshold) {
            const PairShuffle8 bc0(blk0);
            const PairShuffle8 bc1(blk1);
            const uint8_t* b = Bn + pb * np + j0;
            for (int j = 0; j < 8; ++j, b += np) {
              const __m256i b0 = nib_load8(b);
              acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(bc0.va[j], b0));
              acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(bc1.va[j], b0));
            }
            continue;
          }
          while (pm) {
            const int64_t p = pb + __builtin_ctz(pm);
            pm &= pm - 1;
            const __m256i b0 = nib_load8(Bn + p * np + j0);
            const int32_t r0a0 = a0r[2 * p];
            const int32_t r0a1 = a0r[2 * p + 1];
            const int32_t r1a0 = a1r[2 * p];
            const int32_t r1a1 = a1r[2 * p + 1];
            acc0 = _mm256_add_epi32(
                acc0, _mm256_madd_epi16(
                          _mm256_set1_epi32((r0a1 << 16) | (r0a0 & 0xFFFF)), b0));
            acc1 = _mm256_add_epi32(
                acc1, _mm256_madd_epi16(
                          _mm256_set1_epi32((r1a1 << 16) | (r1a0 & 0xFFFF)), b0));
          }
        }
        st.store8(i, j0, acc0);
        st.store8(i + 1, j0, acc1);
      }
    }
  });
}

/// Single-row nibble-B body (the odd tail row of the 2-row walk).
template <typename AT, class Store>
void gemm_nib4_epi1_body(const AT* A, const uint8_t* Bn, int64_t M, int64_t N,
                         int64_t K, const Store& st) {
  const int64_t pairs = (K + 1) / 2;
  const int64_t np = packed_n(N);
  parallel_for(0, M, grain_for(M, 2 * K * N, kGemmTargetOps), [&](int64_t m0, int64_t m1) {
    for (int64_t i = m0; i < m1; ++i) {
      const AT* a = A + i * K;
      for (int64_t j0 = 0; j0 < np; j0 += 8) {
        __m256i acc = _mm256_setzero_si256();
        for (int64_t pb = 0; pb < pairs; pb += 8) {
          const __m256i blk = pair_block16(a + 2 * pb);
          uint32_t pm = pair_mask8(blk);
          const int64_t rem = pairs - pb;
          if (rem < 8) pm &= (uint32_t{1} << rem) - 1;
          if (rem >= 8 && __builtin_popcount(pm) >= kDensePairThreshold) {
            const PairShuffle8 bc(blk);
            const uint8_t* b = Bn + pb * np + j0;
            for (int j = 0; j < 8; ++j, b += np) {
              acc = _mm256_add_epi32(acc, _mm256_madd_epi16(bc.va[j], nib_load8(b)));
            }
            continue;
          }
          while (pm) {
            const int64_t p = pb + __builtin_ctz(pm);
            pm &= pm - 1;
            const int32_t a0 = a[2 * p];
            const int32_t a1 = a[2 * p + 1];  // odd-K slack multiplies zero nibble
            acc = _mm256_add_epi32(
                acc, _mm256_madd_epi16(_mm256_set1_epi32((a1 << 16) | (a0 & 0xFFFF)),
                                       nib_load8(Bn + p * np + j0)));
          }
        }
        st.store8(i, j0, acc);
      }
    }
  });
}

// Non-template entry points matching the KernelSet signatures.
void gemm_s8p16_avx2(const int8_t* A, const int16_t* Bp, int32_t* C, int64_t M,
                     int64_t N, int64_t K) {
  gemm_s8p16_body(A, Bp, M, N, K, RawStore(C, N));
}

void gemm_s16p16_avx2(const int16_t* A, const int16_t* Bp, int32_t* C, int64_t M,
                      int64_t N, int64_t K) {
  gemm_s16p16_body(A, Bp, M, N, K, RawStore(C, N));
}

void gemm_s8p16_epi_avx2(const int8_t* A, const int16_t* Bp, int64_t M, int64_t N,
                         int64_t K, const Epilogue& e) {
  const auto run = [&](const EpiStore& st) {
    const int64_t m2 = M - (M % 2);
    if (m2 > 0) gemm_pair16_epi2_body(A, Bp, m2, N, K, st);
    if (m2 < M) {
      gemm_s8p16_body(A + m2 * K, Bp, M - m2, N, K, RowShift<EpiStore>{st, m2});
    }
  };
  if (e.vec32) {
    const EpiVec ev(e);
    run(EpiStore{&e, &ev, N});
  } else {
    run(EpiStore{&e, nullptr, N});
  }
}

void gemm_s16p16_epi_avx2(const int16_t* A, const int16_t* Bp, int64_t M, int64_t N,
                          int64_t K, const Epilogue& e) {
  const auto run = [&](const EpiStore& st) {
    const int64_t m2 = M - (M % 2);
    if (m2 > 0) gemm_pair16_epi2_body(A, Bp, m2, N, K, st);
    if (m2 < M) {
      gemm_s16p16_body(A + m2 * K, Bp, M - m2, N, K, RowShift<EpiStore>{st, m2});
    }
  };
  if (e.vec32) {
    const EpiVec ev(e);
    run(EpiStore{&e, &ev, N});
  } else {
    run(EpiStore{&e, nullptr, N});
  }
}

void gemm_s8n4_epi_avx2(const int8_t* A, const uint8_t* Bn, int64_t M, int64_t N,
                        int64_t K, const Epilogue& e) {
  const auto run = [&](const EpiStore& st) {
    const int64_t m2 = M - (M % 2);
    if (m2 > 0) gemm_nib4_epi2_body(A, Bn, m2, N, K, st);
    if (m2 < M) {
      gemm_nib4_epi1_body(A + m2 * K, Bn, M - m2, N, K, RowShift<EpiStore>{st, m2});
    }
  };
  if (e.vec32) {
    const EpiVec ev(e);
    run(EpiStore{&e, &ev, N});
  } else {
    run(EpiStore{&e, nullptr, N});
  }
}

void gemm_s16n4_epi_avx2(const int16_t* A, const uint8_t* Bn, int64_t M, int64_t N,
                         int64_t K, const Epilogue& e) {
  const auto run = [&](const EpiStore& st) {
    const int64_t m2 = M - (M % 2);
    if (m2 > 0) gemm_nib4_epi2_body(A, Bn, m2, N, K, st);
    if (m2 < M) {
      gemm_nib4_epi1_body(A + m2 * K, Bn, M - m2, N, K, RowShift<EpiStore>{st, m2});
    }
  };
  if (e.vec32) {
    const EpiVec ev(e);
    run(EpiStore{&e, &ev, N});
  } else {
    run(EpiStore{&e, nullptr, N});
  }
}

// Fused depthwise: channels in chunks of up to 32 (four int32 vectors), taps
// accumulated in registers, retired through the prepared vector epilogue
// without the int32 tile ever reaching memory. Four independent accumulators
// amortize the per-tap bounds checks and hide the vpmulld latency chain. The
// 8-byte channel loads stay inside the row (whole-vector blocks only); the
// sub-vector channel tail and the rare non-vec32 epilogue fall back to the
// scalar walk.
/// Sign-extend 8 activation lanes to int32 (int8 and int16 sources).
inline __m256i dw_load8(const int8_t* p) {
  return _mm256_cvtepi8_epi32(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
}
inline __m256i dw_load8(const int16_t* p) {
  return _mm256_cvtepi16_epi32(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}
inline void dw_scalar_fallback(const int8_t* x, const int8_t* w, const DepthwiseArgs& a,
                               const Epilogue& e) {
  scalar_kernels().depthwise_s8_epi(x, w, a, e);
}
inline void dw_scalar_fallback(const int16_t* x, const int8_t* w, const DepthwiseArgs& a,
                               const Epilogue& e) {
  scalar_kernels().depthwise_s16_epi(x, w, a, e);
}

template <typename XT>
void depthwise_epi_avx2(const XT* x, const int8_t* w, const DepthwiseArgs& a,
                        const Epilogue& e) {
  if (!e.vec32) {
    dw_scalar_fallback(x, w, a, e);
    return;
  }
  const EpiVec ev(e);
  const Conv2dGeom& g = a.geom;
  const int64_t rows = a.batch * a.oh;
  const int64_t c8 = a.c - (a.c % 8);
  parallel_for(0, rows, grain_for(rows, a.ow * g.kh * g.kw * a.c * 2, kGemmTargetOps),
               [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int64_t b = r / a.oh;
      const int64_t oy = r % a.oh;
      for (int64_t ox = 0; ox < a.ow; ++ox) {
        const int64_t out_base = (r * a.ow + ox) * a.c;
        const int64_t iy0 = oy * g.stride_h - g.pad_top;
        const int64_t ix0 = ox * g.stride_w - g.pad_left;
        for (int64_t c0 = 0; c0 < c8; c0 += 32) {
          const int64_t nv = std::min<int64_t>(4, (c8 - c0) / 8);
          __m256i acc[4] = {_mm256_setzero_si256(), _mm256_setzero_si256(),
                            _mm256_setzero_si256(), _mm256_setzero_si256()};
          for (int64_t ky = 0; ky < g.kh; ++ky) {
            const int64_t iy = iy0 + ky;
            if (iy < 0 || iy >= a.h) continue;
            for (int64_t kx = 0; kx < g.kw; ++kx) {
              const int64_t ix = ix0 + kx;
              if (ix < 0 || ix >= a.w) continue;
              const XT* xi = x + ((b * a.h + iy) * a.w + ix) * a.c + c0;
              const int8_t* wk = w + (ky * g.kw + kx) * a.c + c0;
              for (int64_t v = 0; v < nv; ++v) {
                const __m256i xv = dw_load8(xi + 8 * v);
                const __m256i wv = dw_load8(wk + 8 * v);
                acc[v] = _mm256_add_epi32(acc[v], _mm256_mullo_epi32(xv, wv));
              }
            }
          }
          for (int64_t v = 0; v < nv; ++v) {
            epi_store_vec(e, out_base + c0 + 8 * v, ev.apply(acc[v], c0 + 8 * v));
          }
        }
        for (int64_t ch = c8; ch < a.c; ++ch) {
          int32_t acc = 0;
          for (int64_t ky = 0; ky < g.kh; ++ky) {
            const int64_t iy = iy0 + ky;
            if (iy < 0 || iy >= a.h) continue;
            for (int64_t kx = 0; kx < g.kw; ++kx) {
              const int64_t ix = ix0 + kx;
              if (ix < 0 || ix >= a.w) continue;
              acc += static_cast<int32_t>(
                         x[((b * a.h + iy) * a.w + ix) * a.c + ch]) *
                     w[(ky * g.kw + kx) * a.c + ch];
            }
          }
          epi_store(e, out_base + ch, epi_apply(e, acc, ch));
        }
      }
    }
  });
}

void depthwise_s8_epi_avx2(const int8_t* x, const int8_t* w, const DepthwiseArgs& a,
                           const Epilogue& e) {
  depthwise_epi_avx2(x, w, a, e);
}

void depthwise_s16_epi_avx2(const int16_t* x, const int8_t* w, const DepthwiseArgs& a,
                            const Epilogue& e) {
  depthwise_epi_avx2(x, w, a, e);
}

// ---- Channel-blocked (NC8HW8) direct kernels -------------------------------
// The blocked conv reads one pixel's 8-channel group as a single 8-byte load
// and retires 8 output channels per 256-bit accumulator, no im2col. Tiling is
// 4 output pixels wide: each 32-byte weight vector (one input-channel pair x
// 8 output channels, pack_conv_wblk16 layout) is loaded once and vpmaddwd'd
// against all 4 pixels' broadcast activation pairs — 4 multiply-adds per
// weight load, vs. 2 for the packed GEMM. Padding pixels contribute zero
// activation vectors (never a wrong product); output lanes past a.cout store
// epilogue(0), which the following layout_unpack (or the next blocked
// kernel's zero weight lanes) discards. Bit-exact vs. the scalar blocked
// kernel: identical pair products, int32 adds reassociated under the plan's
// no-overflow bound.

/// One pixel's 8 channels widened to 8 int16 lanes (4 pairs), broadcast to
/// both 128-bit halves so _mm256_shuffle_epi32 can splat any pair to all 8
/// int32 lanes.
inline __m256i blk_pixel16(const int8_t* p) {
  return _mm256_broadcastsi128_si256(
      _mm256_castsi256_si128(_mm256_cvtepi8_epi16(_mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(p)))));
}

void conv_s8blk_epi_avx2(const int8_t* x, const int16_t* wblk, const ConvBlkArgs& a,
                         const Epilogue& e) {
  if (!e.vec32) {
    scalar_kernels().conv_s8blk_epi(x, wblk, a, e);
    return;
  }
  const EpiVec ev(e);
  const Conv2dGeom& g = a.geom;
  const int64_t CBi = blocked_c(a.cin) / kChanBlock;
  const int64_t PP = blocked_c(a.cin) / 2;
  const int64_t OB = blocked_c(a.cout) / kChanBlock;
  const int64_t T = g.kh * g.kw;
  const int64_t rows = a.batch * a.oh;
  parallel_for(0, rows, grain_for(rows, a.ow * T * a.cin * a.cout * 2, kGemmTargetOps),
               [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int64_t b = r / a.oh;
      const int64_t oy = r % a.oh;
      // 8-output-pixel tiles with the tap's 4 weight-pair vectors held in
      // registers: each weight load feeds up to 8 vpmaddwd, and a zero input
      // pixel (padding or sparse post-ReLU data) skips its 4 madds outright.
      for (int64_t ox0 = 0; ox0 < a.ow; ox0 += 8) {
        const int64_t nq = std::min<int64_t>(8, a.ow - ox0);
        const int64_t iy0 = oy * g.stride_h - g.pad_top;
        for (int64_t ob = 0; ob < OB; ++ob) {
          __m256i acc[8];
          for (int64_t q = 0; q < 8; ++q) acc[q] = _mm256_setzero_si256();
          for (int64_t ky = 0; ky < g.kh; ++ky) {
            const int64_t iy = iy0 + ky;
            if (iy < 0 || iy >= a.h) continue;
            for (int64_t kx = 0; kx < g.kw; ++kx) {
              const int64_t t = ky * g.kw + kx;
              const int16_t* wt = wblk + ((ob * T + t) * PP) * 2 * kChanBlock;
              for (int64_t cb = 0; cb < CBi; ++cb) {
                // Channel pairs beyond cin in the last input block carry
                // all-zero weights (the packer zero-fills padded lanes), so
                // their madds contribute exactly 0 — skip them. Stems with
                // cin=3 drop from 4 pair-vectors to 2.
                const int64_t np =
                    (cb == CBi - 1) ? (a.cin - cb * kChanBlock + 1) / 2 : 4;
                const int16_t* wp = wt + (cb * 4) * 2 * kChanBlock;
                const __m256i wv0 = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(wp + 0 * 2 * kChanBlock));
                const __m256i wv1 =
                    np > 1 ? _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                                 wp + 1 * 2 * kChanBlock))
                           : _mm256_setzero_si256();
                const __m256i wv2 =
                    np > 2 ? _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                                 wp + 2 * 2 * kChanBlock))
                           : _mm256_setzero_si256();
                const __m256i wv3 =
                    np > 3 ? _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                                 wp + 3 * 2 * kChanBlock))
                           : _mm256_setzero_si256();
                const int8_t* xrow =
                    x + (((b * CBi + cb) * a.h + iy) * a.w) * kChanBlock;
                for (int64_t q = 0; q < nq; ++q) {
                  const int64_t ix = (ox0 + q) * g.stride_w - g.pad_left + kx;
                  if (ix < 0 || ix >= a.w) continue;
                  const __m256i xa = blk_pixel16(xrow + ix * kChanBlock);
                  if (_mm256_testz_si256(xa, xa)) continue;
                  __m256i s = _mm256_madd_epi16(_mm256_shuffle_epi32(xa, 0x00), wv0);
                  if (np > 1)
                    s = _mm256_add_epi32(
                        s, _mm256_madd_epi16(_mm256_shuffle_epi32(xa, 0x55), wv1));
                  if (np > 2)
                    s = _mm256_add_epi32(
                        s, _mm256_madd_epi16(_mm256_shuffle_epi32(xa, 0xAA), wv2));
                  if (np > 3)
                    s = _mm256_add_epi32(
                        s, _mm256_madd_epi16(_mm256_shuffle_epi32(xa, 0xFF), wv3));
                  acc[q] = _mm256_add_epi32(acc[q], s);
                }
              }
            }
          }
          for (int64_t q = 0; q < nq; ++q) {
            const int64_t out_base =
                (((b * OB + ob) * a.oh + oy) * a.ow + (ox0 + q)) * kChanBlock;
            epi_store_vec(e, out_base, ev.apply(acc[q], ob * kChanBlock));
          }
        }
      }
    }
  });
}

void depthwise_s8blk_epi_avx2(const int8_t* x, const int8_t* wblk,
                              const DepthwiseArgs& a, const Epilogue& e) {
  if (!e.vec32) {
    scalar_kernels().depthwise_s8blk_epi(x, wblk, a, e);
    return;
  }
  const EpiVec ev(e);
  const Conv2dGeom& g = a.geom;
  const int64_t CB = blocked_c(a.c) / kChanBlock;
  const int64_t T = g.kh * g.kw;
  const int64_t rows = a.batch * a.oh;
  parallel_for(0, rows, grain_for(rows, a.ow * T * a.c * 2, kGemmTargetOps),
               [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int64_t b = r / a.oh;
      const int64_t oy = r % a.oh;
      for (int64_t ox = 0; ox < a.ow; ++ox) {
        const int64_t iy0 = oy * g.stride_h - g.pad_top;
        const int64_t ix0 = ox * g.stride_w - g.pad_left;
        for (int64_t cb = 0; cb < CB; ++cb) {
          __m256i acc = _mm256_setzero_si256();
          for (int64_t ky = 0; ky < g.kh; ++ky) {
            const int64_t iy = iy0 + ky;
            if (iy < 0 || iy >= a.h) continue;
            for (int64_t kx = 0; kx < g.kw; ++kx) {
              const int64_t ix = ix0 + kx;
              if (ix < 0 || ix >= a.w) continue;
              const __m256i xv = dw_load8(
                  x + (((b * CB + cb) * a.h + iy) * a.w + ix) * kChanBlock);
              const __m256i wv =
                  dw_load8(wblk + (cb * T + ky * g.kw + kx) * kChanBlock);
              acc = _mm256_add_epi32(acc, _mm256_mullo_epi32(xv, wv));
            }
          }
          const int64_t out_base = (((b * CB + cb) * a.oh + oy) * a.ow + ox) * kChanBlock;
          epi_store_vec(e, out_base, ev.apply(acc, cb * kChanBlock));
        }
      }
    }
  });
}

}  // namespace

const KernelSet* avx2_kernels() {
  if (!__builtin_cpu_supports("avx2")) return nullptr;
  // The unfused depthwise and the cold raw-B fused GEMM reuse the scalar
  // bodies: those inner loops are already memory-bound at int8 widths and
  // keeping one definition keeps the registry honest about what the SIMD set
  // actually accelerates. The hot fused paths are the packed-B epilogue
  // GEMMs and the vector-epilogue depthwise.
  static const KernelSet ks{"avx2",
                            gemm_s8_avx2,
                            scalar_kernels().depthwise_s8s8s32,
                            gemm_s8p16_avx2,
                            gemm_s16p16_avx2,
                            scalar_kernels().gemm_s8_epi,
                            gemm_s8p16_epi_avx2,
                            gemm_s16p16_epi_avx2,
                            depthwise_s8_epi_avx2,
                            depthwise_s16_epi_avx2,
                            conv_s8blk_epi_avx2,
                            depthwise_s8blk_epi_avx2,
                            gemm_s8n4_epi_avx2,
                            gemm_s16n4_epi_avx2};
  return &ks;
}

#else  // !__AVX2__

const KernelSet* avx2_kernels() { return nullptr; }

#endif

}  // namespace tqt::fpk
