// AVX2 variants of the narrow-width kernels, compile-time gated: the file
// always builds, but the vector bodies exist only when the compiler targets
// AVX2 (e.g. -march=native on an AVX2 machine), and avx2_kernels() further
// checks the running CPU. Everything here is exact integer arithmetic —
// int8 operands widened to int32 lanes, multiplied and added in int32 — so
// results are bit-identical to the scalar set (asserted in tests).
//
// A NEON set would slot in the same way behind fpk::KernelSet; this repo's
// CI targets x86, so only the AVX2 instance is provided.
#include <algorithm>

#include "fixedpoint/kernels/kernels.h"
#include "runtime/parallel.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace tqt::fpk {

#if defined(__AVX2__)

namespace {

constexpr int64_t kKBlock = 256;

// C row tile: 16 int32 lanes (two 256-bit accumulators) per (i, j0) panel.
void gemm_s8_avx2(const int8_t* A, const int8_t* B, int32_t* C, int64_t M, int64_t N,
                  int64_t K) {
  parallel_for(0, M, grain_for(M, 2 * K * N, kGemmTargetOps), [&](int64_t m0, int64_t m1) {
    const int64_t n16 = N - (N % 16);
    for (int64_t i = m0; i < m1; ++i) {
      const int8_t* a = A + i * K;
      int32_t* c = C + i * N;
      for (int64_t j0 = 0; j0 < n16; j0 += 16) {
        __m256i acc0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + j0));
        __m256i acc1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + j0 + 8));
        for (int64_t k = 0; k < K; ++k) {
          const int32_t av = a[k];
          if (av == 0) continue;
          const __m256i va = _mm256_set1_epi32(av);
          const int8_t* b = B + k * N + j0;
          const __m256i vb0 = _mm256_cvtepi8_epi32(
              _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b)));
          const __m256i vb1 = _mm256_cvtepi8_epi32(
              _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b + 8)));
          acc0 = _mm256_add_epi32(acc0, _mm256_mullo_epi32(va, vb0));
          acc1 = _mm256_add_epi32(acc1, _mm256_mullo_epi32(va, vb1));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + j0), acc0);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + j0 + 8), acc1);
      }
      // Scalar tail for N % 16 columns, K-blocked like the scalar kernel.
      if (n16 < N) {
        for (int64_t k0 = 0; k0 < K; k0 += kKBlock) {
          const int64_t k1 = std::min(K, k0 + kKBlock);
          for (int64_t k = k0; k < k1; ++k) {
            const int32_t av = a[k];
            if (av == 0) continue;
            const int8_t* b = B + k * N;
            for (int64_t j = n16; j < N; ++j) c[j] += av * b[j];
          }
        }
      }
    }
  });
}

// Bit p*2 set when A-row pair p of this 8-pair block (bytes 2p, 2p+1 of
// `av`) has any nonzero byte.
inline uint32_t nonzero_pair_mask8(const __m128i av) {
  const uint32_t nz =
      0xFFFFu ^ static_cast<uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(av, _mm_setzero_si128())));
  return (nz | (nz >> 1)) & 0x5555u;
}

// The eight (a0, a1) int16 pair-broadcasts of one 16-byte A block, built with
// vector shuffles only: sign-extend the block to int16 (one 32-bit lane per
// pair), mirror its 128-bit halves, then broadcast each lane with an
// immediate-index shuffle. ~2 uops per broadcast, vs ~6 for rebuilding
// (a1 << 16) | a0 through scalar registers each pair.
struct PairBroadcast8 {
  __m256i va[8];
  explicit PairBroadcast8(const __m128i a8) {
    const __m256i a16 = _mm256_cvtepi8_epi16(a8);
    const __m256i lo = _mm256_permute2x128_si256(a16, a16, 0x00);
    const __m256i hi = _mm256_permute2x128_si256(a16, a16, 0x11);
    va[0] = _mm256_shuffle_epi32(lo, 0x00);
    va[1] = _mm256_shuffle_epi32(lo, 0x55);
    va[2] = _mm256_shuffle_epi32(lo, 0xAA);
    va[3] = _mm256_shuffle_epi32(lo, 0xFF);
    va[4] = _mm256_shuffle_epi32(hi, 0x00);
    va[5] = _mm256_shuffle_epi32(hi, 0x55);
    va[6] = _mm256_shuffle_epi32(hi, 0xAA);
    va[7] = _mm256_shuffle_epi32(hi, 0xFF);
  }
};

// Below this many nonzero pairs (of 8) the tzcnt-driven sparse walk beats
// processing the whole block; post-ReLU activation rows sit on both sides.
constexpr int kDensePairThreshold = 3;

// Packed-B GEMM: B comes k-pair-interleaved as int16 (pack_b_pair16), so one
// vpmaddwd computes a0*B[2p][n] + a1*B[2p+1][n] for 8 columns at once — 16
// exact int16*int16 multiply-adds per instruction, with the pair sum and the
// running accumulation both in int32 (the plan's bounds prove no partial sum
// can overflow). K runs in a single pass, so C is overwritten from
// zero-initialized registers — the caller skips its memset entirely.
//
// The packed layout pads columns to packed_n(N) (zoo conv layers run 8-16
// channels wide, frequently not a multiple of 8), so every column group is a
// full 8-lane vector; the last partial group computes all 8 lanes against
// zero-padded B columns and retires through one maskstore.
//
// A rows are walked in 8-pair (16-byte) blocks. One vector compare finds the
// block's nonzero pairs; near-dense blocks (LeakyReLU activations, im2col
// interiors) take an unrolled path whose pair broadcasts come from
// PairBroadcast8 shuffles, while sparse blocks (post-ReLU zeros) visit only
// their nonzero pairs via a count-trailing-zeros loop. Both read A through
// the 32-byte slack the caller guarantees; any beyond-K byte of the final
// pair multiplies the zero-padded tail of packed B.
// This is the engine's hot conv/dense path.
void gemm_s8p16_avx2(const int8_t* A, const int16_t* Bp, int32_t* C, int64_t M, int64_t N,
                     int64_t K) {
  const int64_t pairs = (K + 1) / 2;
  const int64_t np = packed_n(N);
  const int64_t n16 = N - (N % 16);
  const int64_t n8 = N - (N % 8);
  // Lane mask for the final partial column group: lane l live iff n8 + l < N.
  const __m256i tail_mask = _mm256_cmpgt_epi32(
      _mm256_set1_epi32(static_cast<int32_t>(N - n8)),
      _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
  parallel_for(0, M, grain_for(M, 2 * K * N, kGemmTargetOps), [&](int64_t m0, int64_t m1) {
    for (int64_t i = m0; i < m1; ++i) {
      const int8_t* a = A + i * K;
      int32_t* c = C + i * N;
      for (int64_t j0 = 0; j0 < n16; j0 += 16) {
        __m256i acc0 = _mm256_setzero_si256();
        __m256i acc1 = _mm256_setzero_si256();
        for (int64_t pb = 0; pb < pairs; pb += 8) {
          const __m128i a8 =
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + 2 * pb));
          uint32_t pm = nonzero_pair_mask8(a8);
          const int64_t rem = pairs - pb;
          if (rem < 8) pm &= (uint32_t{1} << (2 * rem)) - 1;
          if (rem >= 8 && __builtin_popcount(pm) >= kDensePairThreshold) {
            const PairBroadcast8 bc(a8);
            const int16_t* b = Bp + (pb * np + j0) * 2;
            for (int j = 0; j < 8; ++j, b += 2 * np) {
              acc0 = _mm256_add_epi32(
                  acc0, _mm256_madd_epi16(bc.va[j],
                                          _mm256_loadu_si256(
                                              reinterpret_cast<const __m256i*>(b))));
              acc1 = _mm256_add_epi32(
                  acc1, _mm256_madd_epi16(bc.va[j],
                                          _mm256_loadu_si256(
                                              reinterpret_cast<const __m256i*>(b + 16))));
            }
            continue;
          }
          while (pm) {
            const int64_t p = pb + (__builtin_ctz(pm) >> 1);
            pm &= pm - 1;
            const int32_t a0 = a[2 * p];
            const int32_t a1 = a[2 * p + 1];  // odd-K slack multiplies zero B
            const __m256i va = _mm256_set1_epi32((a1 << 16) | (a0 & 0xFFFF));
            const int16_t* b = Bp + (p * np + j0) * 2;
            acc0 = _mm256_add_epi32(
                acc0, _mm256_madd_epi16(va, _mm256_loadu_si256(
                                                reinterpret_cast<const __m256i*>(b))));
            acc1 = _mm256_add_epi32(
                acc1, _mm256_madd_epi16(va, _mm256_loadu_si256(
                                                reinterpret_cast<const __m256i*>(b + 16))));
          }
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + j0), acc0);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + j0 + 8), acc1);
      }
      for (int64_t j0 = n16; j0 < np; j0 += 8) {
        __m256i acc = _mm256_setzero_si256();
        for (int64_t pb = 0; pb < pairs; pb += 8) {
          const __m128i a8 =
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + 2 * pb));
          uint32_t pm = nonzero_pair_mask8(a8);
          const int64_t rem = pairs - pb;
          if (rem < 8) pm &= (uint32_t{1} << (2 * rem)) - 1;
          if (rem >= 8 && __builtin_popcount(pm) >= kDensePairThreshold) {
            const PairBroadcast8 bc(a8);
            const int16_t* b = Bp + (pb * np + j0) * 2;
            for (int j = 0; j < 8; ++j, b += 2 * np) {
              acc = _mm256_add_epi32(
                  acc, _mm256_madd_epi16(bc.va[j],
                                         _mm256_loadu_si256(
                                             reinterpret_cast<const __m256i*>(b))));
            }
            continue;
          }
          while (pm) {
            const int64_t p = pb + (__builtin_ctz(pm) >> 1);
            pm &= pm - 1;
            const int32_t a0 = a[2 * p];
            const int32_t a1 = a[2 * p + 1];
            const __m256i va = _mm256_set1_epi32((a1 << 16) | (a0 & 0xFFFF));
            const int16_t* b = Bp + (p * np + j0) * 2;
            acc = _mm256_add_epi32(
                acc, _mm256_madd_epi16(va, _mm256_loadu_si256(
                                               reinterpret_cast<const __m256i*>(b))));
          }
        }
        if (j0 < n8) {
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + j0), acc);
        } else {
          _mm256_maskstore_epi32(c + j0, tail_mask, acc);
        }
      }
    }
  });
}

// int16-activation variant of the packed-B GEMM. Identical structure; the
// 8-pair block is one 32-byte load whose 32-bit lanes already hold the
// (a0, a1) int16 pairs, so no widening shuffle is needed and the nonzero-pair
// mask is a single epi32 compare. Pair products are bounded by
// 2 * 2^15 * 2^7 < 2^23, and the plan's int32 output width certifies the
// |x| * sum|w| bound that dominates every partial sum.
void gemm_s16p16_avx2(const int16_t* A, const int16_t* Bp, int32_t* C, int64_t M,
                      int64_t N, int64_t K) {
  const int64_t pairs = (K + 1) / 2;
  const int64_t np = packed_n(N);
  const int64_t n16 = N - (N % 16);
  const int64_t n8 = N - (N % 8);
  const __m256i tail_mask = _mm256_cmpgt_epi32(
      _mm256_set1_epi32(static_cast<int32_t>(N - n8)),
      _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
  parallel_for(0, M, grain_for(M, 2 * K * N, kGemmTargetOps), [&](int64_t m0, int64_t m1) {
    for (int64_t i = m0; i < m1; ++i) {
      const int16_t* a = A + i * K;
      int32_t* c = C + i * N;
      for (int64_t j0 = 0; j0 < n16; j0 += 16) {
        __m256i acc0 = _mm256_setzero_si256();
        __m256i acc1 = _mm256_setzero_si256();
        for (int64_t pb = 0; pb < pairs; pb += 8) {
          const __m256i av =
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 2 * pb));
          uint32_t pm = 0xFFu ^ static_cast<uint32_t>(_mm256_movemask_ps(
              _mm256_castsi256_ps(_mm256_cmpeq_epi32(av, _mm256_setzero_si256()))));
          const int64_t rem = pairs - pb;
          if (rem < 8) pm &= (uint32_t{1} << rem) - 1;
          if (rem >= 8 && __builtin_popcount(pm) >= kDensePairThreshold) {
            const __m256i lo = _mm256_permute2x128_si256(av, av, 0x00);
            const __m256i hi = _mm256_permute2x128_si256(av, av, 0x11);
            const __m256i va[8] = {
                _mm256_shuffle_epi32(lo, 0x00), _mm256_shuffle_epi32(lo, 0x55),
                _mm256_shuffle_epi32(lo, 0xAA), _mm256_shuffle_epi32(lo, 0xFF),
                _mm256_shuffle_epi32(hi, 0x00), _mm256_shuffle_epi32(hi, 0x55),
                _mm256_shuffle_epi32(hi, 0xAA), _mm256_shuffle_epi32(hi, 0xFF)};
            const int16_t* b = Bp + (pb * np + j0) * 2;
            for (int j = 0; j < 8; ++j, b += 2 * np) {
              acc0 = _mm256_add_epi32(
                  acc0, _mm256_madd_epi16(va[j],
                                          _mm256_loadu_si256(
                                              reinterpret_cast<const __m256i*>(b))));
              acc1 = _mm256_add_epi32(
                  acc1, _mm256_madd_epi16(va[j],
                                          _mm256_loadu_si256(
                                              reinterpret_cast<const __m256i*>(b + 16))));
            }
            continue;
          }
          while (pm) {
            const int64_t p = pb + __builtin_ctz(pm);
            pm &= pm - 1;
            const int32_t a0 = a[2 * p];
            const int32_t a1 = a[2 * p + 1];  // odd-K slack multiplies zero B
            const __m256i va = _mm256_set1_epi32((a1 << 16) | (a0 & 0xFFFF));
            const int16_t* b = Bp + (p * np + j0) * 2;
            acc0 = _mm256_add_epi32(
                acc0, _mm256_madd_epi16(va, _mm256_loadu_si256(
                                                reinterpret_cast<const __m256i*>(b))));
            acc1 = _mm256_add_epi32(
                acc1, _mm256_madd_epi16(va, _mm256_loadu_si256(
                                                reinterpret_cast<const __m256i*>(b + 16))));
          }
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + j0), acc0);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + j0 + 8), acc1);
      }
      for (int64_t j0 = n16; j0 < np; j0 += 8) {
        __m256i acc = _mm256_setzero_si256();
        for (int64_t pb = 0; pb < pairs; pb += 8) {
          const __m256i av =
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 2 * pb));
          uint32_t pm = 0xFFu ^ static_cast<uint32_t>(_mm256_movemask_ps(
              _mm256_castsi256_ps(_mm256_cmpeq_epi32(av, _mm256_setzero_si256()))));
          const int64_t rem = pairs - pb;
          if (rem < 8) pm &= (uint32_t{1} << rem) - 1;
          if (rem >= 8 && __builtin_popcount(pm) >= kDensePairThreshold) {
            const __m256i lo = _mm256_permute2x128_si256(av, av, 0x00);
            const __m256i hi = _mm256_permute2x128_si256(av, av, 0x11);
            const __m256i va[8] = {
                _mm256_shuffle_epi32(lo, 0x00), _mm256_shuffle_epi32(lo, 0x55),
                _mm256_shuffle_epi32(lo, 0xAA), _mm256_shuffle_epi32(lo, 0xFF),
                _mm256_shuffle_epi32(hi, 0x00), _mm256_shuffle_epi32(hi, 0x55),
                _mm256_shuffle_epi32(hi, 0xAA), _mm256_shuffle_epi32(hi, 0xFF)};
            const int16_t* b = Bp + (pb * np + j0) * 2;
            for (int j = 0; j < 8; ++j, b += 2 * np) {
              acc = _mm256_add_epi32(
                  acc, _mm256_madd_epi16(va[j],
                                         _mm256_loadu_si256(
                                             reinterpret_cast<const __m256i*>(b))));
            }
            continue;
          }
          while (pm) {
            const int64_t p = pb + __builtin_ctz(pm);
            pm &= pm - 1;
            const int32_t a0 = a[2 * p];
            const int32_t a1 = a[2 * p + 1];
            const __m256i va = _mm256_set1_epi32((a1 << 16) | (a0 & 0xFFFF));
            const int16_t* b = Bp + (p * np + j0) * 2;
            acc = _mm256_add_epi32(
                acc, _mm256_madd_epi16(va, _mm256_loadu_si256(
                                               reinterpret_cast<const __m256i*>(b))));
          }
        }
        if (j0 < n8) {
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + j0), acc);
        } else {
          _mm256_maskstore_epi32(c + j0, tail_mask, acc);
        }
      }
    }
  });
}

}  // namespace

const KernelSet* avx2_kernels() {
  if (!__builtin_cpu_supports("avx2")) return nullptr;
  // Depthwise reuses the scalar body: its per-channel inner loop is already
  // memory-bound at int8 widths and keeping one definition keeps the
  // registry honest about what the SIMD set actually accelerates.
  static const KernelSet ks{"avx2", gemm_s8_avx2, scalar_kernels().depthwise_s8s8s32,
                            gemm_s8p16_avx2, gemm_s16p16_avx2};
  return &ks;
}

#else  // !__AVX2__

const KernelSet* avx2_kernels() { return nullptr; }

#endif

}  // namespace tqt::fpk
