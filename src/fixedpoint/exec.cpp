// Typed execution of a compiled fixed-point program.
//
// Registers live in int8_t/int16_t/int32_t/int64_t arena slots chosen by the
// memory plan (plan.cpp); the hot matmul instructions dispatch to the
// narrow-width kernel registry (kernels/) when the plan proves the
// int8 x int8 -> int32 contract holds, and fall back to generic width-typed
// loops otherwise. Every elementwise op computes internally in int64 — the
// plan's value bounds make the narrowing store lossless — and shares
// fp::saturate / fp::rescale with the reference interpreter, so the typed
// result is bit-identical to run_reference() by construction (and by test).
//
// Allocation discipline: all run-time state lives in the caller's
// ExecContext, whose buffers are grow-only. After one warm-up run at a given
// (program, input shape), run_into() performs zero heap allocations; the
// zero-alloc test holds a global operator-new hook against it.
#ifdef __AVX2__
#include <immintrin.h>
#endif

#include <algorithm>
#ifdef TQT_EXEC_PROFILE
#include <chrono>
#include <cstdio>
#endif
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "fixedpoint/autotune.h"
#include "fixedpoint/engine.h"
#include "fixedpoint/kernels/kernels.h"
#include "fixedpoint/plan.h"
#include "fixedpoint/rescale.h"
#include "observe/observe.h"
#include "runtime/parallel.h"

namespace tqt {

const char* to_string(FpInstr::Kind k) {
  switch (k) {
    case FpInstr::Kind::kQuantizeInput: return "quantize_input";
    case FpInstr::Kind::kConv2d: return "conv2d";
    case FpInstr::Kind::kDepthwise: return "depthwise";
    case FpInstr::Kind::kDense: return "dense";
    case FpInstr::Kind::kBiasAdd: return "bias_add";
    case FpInstr::Kind::kRequant: return "requant";
    case FpInstr::Kind::kRelu: return "relu";
    case FpInstr::Kind::kRelu6: return "relu6";
    case FpInstr::Kind::kLeakyRelu: return "leaky_relu";
    case FpInstr::Kind::kMaxPool: return "max_pool";
    case FpInstr::Kind::kEltwiseAdd: return "eltwise_add";
    case FpInstr::Kind::kConcat: return "concat";
    case FpInstr::Kind::kFlatten: return "flatten";
    case FpInstr::Kind::kConv2dFused: return "conv2d_fused";
    case FpInstr::Kind::kDepthwiseFused: return "depthwise_fused";
    case FpInstr::Kind::kDenseFused: return "dense_fused";
    case FpInstr::Kind::kLayoutPack: return "layout_pack";
    case FpInstr::Kind::kLayoutUnpack: return "layout_unpack";
  }
  return "?";
}

namespace {

using fp::rescale;
using fp::saturate;

/// Invoke `fn` with a zero-valued prototype of the C++ type behind `w`.
template <typename Fn>
void with_width(IntWidth w, Fn&& fn) {
  switch (w) {
    case IntWidth::kI8: fn(int8_t{0}); return;
    case IntWidth::kI16: fn(int16_t{0}); return;
    case IntWidth::kI32: fn(int32_t{0}); return;
    case IntWidth::kI64: fn(int64_t{0}); return;
  }
}

/// y[i] = f(x[i]) with x, y lanes at arbitrary widths; f maps int64 -> int64
/// and must produce values within y's planned bounds (narrowing is lossless).
template <typename MapFn>
void map_lanes(const void* xv, IntWidth wx, void* yv, IntWidth wy, int64_t n, MapFn&& f) {
  with_width(wx, [&](auto xt) {
    using XT = decltype(xt);
    const XT* x = static_cast<const XT*>(xv);
    with_width(wy, [&](auto yt) {
      using YT = decltype(yt);
      YT* y = static_cast<YT*>(yv);
      parallel_for(0, n, kElementGrain, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          y[i] = static_cast<YT>(f(static_cast<int64_t>(x[i])));
        }
      });
    });
  });
}

/// y[i] = f(a[i], b[i]) (two integer inputs, e.g. EltwiseAdd).
template <typename MapFn>
void map2_lanes(const void* av, IntWidth wa, const void* bv, IntWidth wb, void* yv,
                IntWidth wy, int64_t n, MapFn&& f) {
  with_width(wa, [&](auto at) {
    using AT = decltype(at);
    const AT* a = static_cast<const AT*>(av);
    with_width(wb, [&](auto bt) {
      using BT = decltype(bt);
      const BT* b = static_cast<const BT*>(bv);
      with_width(wy, [&](auto yt) {
        using YT = decltype(yt);
        YT* y = static_cast<YT*>(yv);
        parallel_for(0, n, kElementGrain, [&](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) {
            y[i] = static_cast<YT>(f(static_cast<int64_t>(a[i]), static_cast<int64_t>(b[i])));
          }
        });
      });
    });
  });
}

// ---- Generic (any-width) matmul-family fallbacks --------------------------
// Weights are read from FpInstr::const_data (always retained at int64).
// Accumulating directly in YT is safe: every partial sum of sum_k x_k*w_k is
// bounded by sum_k |x_k||w_k| <= max|x| * max_o(sum_k |w[k][o]|), exactly the
// bound the plan sized YT for.

template <typename XT, typename YT>
void conv_generic(const FpInstr& in, const XT* x, const FpRegShape& xs, YT* y) {
  const Conv2dGeom& g = in.geom;
  const int64_t n = xs.dims[0], h = xs.dims[1], w = xs.dims[2], cin = xs.dims[3];
  const int64_t kh = in.const_shape[0], kw = in.const_shape[1], cout = in.const_shape[3];
  const int64_t oh = g.out_h(h), ow = g.out_w(w);
  const int64_t rows = n * oh;
  parallel_for(0, rows, grain_for(rows, ow * kh * kw * cin * cout * 2, kGemmTargetOps),
               [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int64_t b = r / oh;
      const int64_t oy = r % oh;
      for (int64_t ox = 0; ox < ow; ++ox) {
        YT* out = y + (r * ow + ox) * cout;
        std::memset(out, 0, static_cast<size_t>(cout) * sizeof(YT));
        const int64_t iy0 = oy * g.stride_h - g.pad_top;
        const int64_t ix0 = ox * g.stride_w - g.pad_left;
        for (int64_t ky = 0; ky < kh; ++ky) {
          const int64_t iy = iy0 + ky;
          if (iy < 0 || iy >= h) continue;
          for (int64_t kx = 0; kx < kw; ++kx) {
            const int64_t ix = ix0 + kx;
            if (ix < 0 || ix >= w) continue;
            const XT* xi = x + ((b * h + iy) * w + ix) * cin;
            const int64_t* wk = in.const_data.data() + (ky * kw + kx) * cin * cout;
            for (int64_t c = 0; c < cin; ++c) {
              const int64_t xv = xi[c];
              if (xv == 0) continue;
              const int64_t* wc = wk + c * cout;
              for (int64_t o = 0; o < cout; ++o) {
                out[o] = static_cast<YT>(out[o] + xv * wc[o]);
              }
            }
          }
        }
      }
    }
  });
}

template <typename XT, typename YT>
void depthwise_generic(const FpInstr& in, const XT* x, const FpRegShape& xs, YT* y) {
  const Conv2dGeom& g = in.geom;
  const int64_t n = xs.dims[0], h = xs.dims[1], w = xs.dims[2], c = xs.dims[3];
  const int64_t oh = g.out_h(h), ow = g.out_w(w);
  const int64_t rows = n * oh;
  parallel_for(0, rows, grain_for(rows, ow * g.kh * g.kw * c * 2, kGemmTargetOps),
               [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int64_t b = r / oh;
      const int64_t oy = r % oh;
      for (int64_t ox = 0; ox < ow; ++ox) {
        YT* out = y + (r * ow + ox) * c;
        std::memset(out, 0, static_cast<size_t>(c) * sizeof(YT));
        const int64_t iy0 = oy * g.stride_h - g.pad_top;
        const int64_t ix0 = ox * g.stride_w - g.pad_left;
        for (int64_t ky = 0; ky < g.kh; ++ky) {
          const int64_t iy = iy0 + ky;
          if (iy < 0 || iy >= h) continue;
          for (int64_t kx = 0; kx < g.kw; ++kx) {
            const int64_t ix = ix0 + kx;
            if (ix < 0 || ix >= w) continue;
            const XT* xi = x + ((b * h + iy) * w + ix) * c;
            const int64_t* wk = in.const_data.data() + (ky * g.kw + kx) * c;
            for (int64_t ch = 0; ch < c; ++ch) {
              out[ch] = static_cast<YT>(out[ch] + static_cast<int64_t>(xi[ch]) * wk[ch]);
            }
          }
        }
      }
    }
  });
}

template <typename XT, typename YT>
void dense_generic(const FpInstr& in, const XT* x, const FpRegShape& xs, YT* y) {
  const int64_t n = xs.dims[0], k = xs.dims[1], m = in.const_shape[1];
  parallel_for(0, n, grain_for(n, 2 * k * m, kGemmTargetOps), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      YT* out = y + i * m;
      std::memset(out, 0, static_cast<size_t>(m) * sizeof(YT));
      const XT* xi = x + i * k;
      for (int64_t kk = 0; kk < k; ++kk) {
        const int64_t xv = xi[kk];
        if (xv == 0) continue;
        const int64_t* wr = in.const_data.data() + kk * m;
        for (int64_t j = 0; j < m; ++j) out[j] = static_cast<YT>(out[j] + xv * wr[j]);
      }
    }
  });
}

template <typename XT, typename YT>
void maxpool_typed(const FpInstr& in, const XT* x, const FpRegShape& xs, YT* y) {
  const Conv2dGeom& g = in.geom;
  const int64_t n = xs.dims[0], h = xs.dims[1], w = xs.dims[2], c = xs.dims[3];
  const int64_t oh = g.out_h(h), ow = g.out_w(w);
  const int64_t rows = n * oh;
  parallel_for(0, rows, grain_for(rows, ow * g.kh * g.kw * c), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int64_t b = r / oh;
      const int64_t oy = r % oh;
      for (int64_t ox = 0; ox < ow; ++ox) {
        YT* out = y + (r * ow + ox) * c;
        const int64_t iy0 = oy * g.stride_h - g.pad_top;
        const int64_t ix0 = ox * g.stride_w - g.pad_left;
        // Window-tap outer loop keeps the channel loop contiguous (it
        // auto-vectorizes); the first valid tap initializes the output row.
        bool seen = false;
        for (int64_t ky = 0; ky < g.kh; ++ky) {
          const int64_t iy = iy0 + ky;
          if (iy < 0 || iy >= h) continue;
          for (int64_t kx = 0; kx < g.kw; ++kx) {
            const int64_t ix = ix0 + kx;
            if (ix < 0 || ix >= w) continue;
            const XT* xi = x + ((b * h + iy) * w + ix) * c;
            if (!seen) {
              for (int64_t ch = 0; ch < c; ++ch) out[ch] = static_cast<YT>(xi[ch]);
              seen = true;
            } else {
              for (int64_t ch = 0; ch < c; ++ch) {
                const YT v = static_cast<YT>(xi[ch]);
                if (v > out[ch]) out[ch] = v;
              }
            }
          }
        }
        if (!seen) std::memset(out, 0, static_cast<size_t>(c) * sizeof(YT));
      }
    }
  });
}

/// im2col geometry of one Conv2d instruction at a given input shape.
struct GemmShape {
  int64_t m = 0, n = 0, k = 0;
};

/// Generic epilogue retire: one parallel pass mapping the int64 accumulator
/// buffer through the step list into the (narrow) output register. `channels`
/// is the innermost output dimension (bias broadcast period).
void apply_epi(const fpk::Epilogue& e, const int64_t* acc, int64_t yn, int64_t channels) {
  parallel_for(0, yn, kElementGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      fpk::epi_store(e, i, fpk::epi_apply(e, acc[i], i % channels));
    }
  });
}

GemmShape conv_gemm_shape(const FpInstr& in, const FpRegShape& xs) {
  GemmShape s;
  s.m = xs.dims[0] * in.geom.out_h(xs.dims[1]) * in.geom.out_w(xs.dims[2]);
  s.k = in.const_shape[0] * in.const_shape[1] * in.const_shape[2];
  s.n = in.const_shape[3];
  return s;
}

/// Pack the conv input into the im2col A matrix (M x K, row-major, same
/// element type as the input register) in `a`; padded taps become 0 rows,
/// which the zero-skipping kernels then jump.
template <typename XT>
void im2col_pack(const FpInstr& in, const XT* x, const FpRegShape& xs, XT* a) {
  const Conv2dGeom& g = in.geom;
  const int64_t h = xs.dims[1], w = xs.dims[2], cin = xs.dims[3];
  const int64_t kh = in.const_shape[0], kw = in.const_shape[1];
  const int64_t oh = g.out_h(h), ow = g.out_w(w);
  const int64_t m = xs.dims[0] * oh * ow;
  const int64_t k = kh * kw * cin;
  parallel_for(0, m, grain_for(m, k), [&](int64_t m0, int64_t m1) {
    for (int64_t r = m0; r < m1; ++r) {
      const int64_t b = r / (oh * ow);
      const int64_t oy = (r / ow) % oh;
      const int64_t ox = r % ow;
      XT* row = a + r * k;
      const int64_t iy0 = oy * g.stride_h - g.pad_top;
      const int64_t ix0 = ox * g.stride_w - g.pad_left;
      for (int64_t ky = 0; ky < kh; ++ky) {
        const int64_t iy = iy0 + ky;
        XT* dst = row + ky * kw * cin;
        if (iy < 0 || iy >= h) {
          std::memset(dst, 0, static_cast<size_t>(kw * cin) * sizeof(XT));
          continue;
        }
        // Consecutive kx taps are contiguous in NHWC, so the whole valid
        // [kx_lo, kx_hi) span is one copy framed by zeroed padding.
        const int64_t kx_lo = std::max<int64_t>(0, -ix0);
        const int64_t kx_hi = std::min(kw, w - ix0);
        if (kx_lo > 0) std::memset(dst, 0, static_cast<size_t>(kx_lo * cin) * sizeof(XT));
        if (kx_hi > kx_lo) {
          std::memcpy(dst + kx_lo * cin, x + ((b * h + iy) * w + ix0 + kx_lo) * cin,
                      static_cast<size_t>((kx_hi - kx_lo) * cin) * sizeof(XT));
        }
        if (kx_hi < kw) {
          std::memset(dst + std::max(kx_hi, kx_lo) * cin, 0,
                      static_cast<size_t>((kw - std::max(kx_hi, kx_lo)) * cin) * sizeof(XT));
        }
      }
    }
  });
}

/// True for a 1x1 stride-1 unpadded conv: the NHWC activations are already
/// the [M, cin] GEMM A operand, so the im2col copy can be skipped.
bool is_pointwise(const FpInstr& in) {
  const Conv2dGeom& g = in.geom;
  return in.const_shape[0] == 1 && in.const_shape[1] == 1 && g.stride_h == 1 &&
         g.stride_w == 1 && g.pad_top == 0 && g.pad_bottom == 0 && g.pad_left == 0 &&
         g.pad_right == 0;
}

/// The epilogue bundle a fused instruction hands its kernel.
fpk::Epilogue make_epi(const FpInstr& in, const ExecPlan::Const& pc, void* y, IntWidth wy) {
  fpk::Epilogue e;
  e.steps = pc.epi.data();
  e.n_steps = static_cast<int>(pc.epi.size());
  e.bias = in.bias_data.empty() ? nullptr : in.bias_data.data();
  e.y = y;
  e.out_bytes = width_bytes(wy);
  e.vec32 = pc.epi_vec32;
  e.bias32 = pc.bias32.empty() ? nullptr : pc.bias32.data();
  e.chan_shift = pc.chan_shifts.empty() ? nullptr : pc.chan_shifts.data();
  return e;
}

}  // namespace

// ---- Fused instruction dispatch (shared with the autotuner) ----------------
// The tuner's timing probes call the very same run_fused the executor does,
// so a measured candidate is exactly the code that will run in production.

namespace detail {

fpk::Algo resolve_fused_algo(const FpInstr& in, const ExecPlan::Const& c,
                             IntWidth xw, fpk::Algo pref) {
  const fpk::KernelSet& ks = fpk::active_kernels();
  // The narrow kernels accumulate in int32; without the plan's proof that
  // the accumulator bound fits, the generic int64 path is the only safe one.
  if (!c.acc_ok32 || c.width != IntWidth::kI8) return fpk::Algo::kGeneric;
  // A blocked selection is a layout commitment, not a preference: the input
  // register holds NC8HW8 lanes that no other algo can read. Every kernel
  // set registers the blocked entries, so this never dangles.
  if (pref == fpk::Algo::kBlocked && xw == IntWidth::kI8) return fpk::Algo::kBlocked;
  // Tuner-selected sub-byte GEMM: honored only while the plan carries the
  // nibble-packed weights and the active set ships the s4 kernels; otherwise
  // fall through to the normal int8 resolution.
  if (pref == fpk::Algo::kGemmS4 && !c.b_nib4.empty() &&
      base_kind_of(in.kind) != FpInstr::Kind::kDepthwise) {
    if (xw == IntWidth::kI8 && ks.gemm_s8n4_epi) return fpk::Algo::kGemmS4;
    if (xw == IntWidth::kI16 && ks.gemm_s16n4_epi) return fpk::Algo::kGemmS4;
  }
  if (base_kind_of(in.kind) == FpInstr::Kind::kDepthwise) {
    if (xw == IntWidth::kI8 && ks.depthwise_s8_epi) return fpk::Algo::kDwDirect;
    if (xw == IntWidth::kI16 && ks.depthwise_s16_epi) return fpk::Algo::kDwDirect;
    return fpk::Algo::kGeneric;
  }
  if (xw == IntWidth::kI8) {
    if (pref == fpk::Algo::kGemmRaw && ks.gemm_s8_epi) return fpk::Algo::kGemmRaw;
    if (ks.gemm_s8p16_epi && !c.b_pair16.empty()) return fpk::Algo::kGemmPacked;
    if (ks.gemm_s8_epi) return fpk::Algo::kGemmRaw;
    return fpk::Algo::kGeneric;
  }
  if (xw == IntWidth::kI16 && ks.gemm_s16p16_epi && !c.b_pair16.empty()) {
    return fpk::Algo::kGemmPacked;
  }
  return fpk::Algo::kGeneric;
}

void run_fused(const FpInstr& in, const ExecPlan::Const& pc, fpk::Algo algo,
               const void* x, const FpRegShape& xs, IntWidth xw, void* y,
               IntWidth wy, int64_t yn, std::vector<unsigned char>& scratch,
               std::vector<unsigned char>& acc_buf) {
  const fpk::KernelSet& ks = fpk::active_kernels();
  const fpk::Epilogue e = make_epi(in, pc, y, wy);
  const FpInstr::Kind base = base_kind_of(in.kind);

  if (algo == fpk::Algo::kBlocked) {
    if (base == FpInstr::Kind::kDepthwise) {
      fpk::DepthwiseArgs a;
      a.batch = xs.dims[0];
      a.h = xs.dims[1];
      a.w = xs.dims[2];
      a.c = xs.dims[3];
      a.oh = in.geom.out_h(a.h);
      a.ow = in.geom.out_w(a.w);
      a.geom = in.geom;
      ks.depthwise_s8blk_epi(static_cast<const int8_t*>(x), pc.w_blk8.data(), a, e);
    } else {
      fpk::ConvBlkArgs a;
      a.batch = xs.dims[0];
      a.h = xs.dims[1];
      a.w = xs.dims[2];
      a.cin = xs.dims[3];
      a.cout = in.const_shape[3];
      a.oh = in.geom.out_h(a.h);
      a.ow = in.geom.out_w(a.w);
      a.geom = in.geom;
      ks.conv_s8blk_epi(static_cast<const int8_t*>(x), pc.b_blk16.data(), a, e);
    }
    return;
  }

  if (algo == fpk::Algo::kDwDirect) {
    fpk::DepthwiseArgs a;
    a.batch = xs.dims[0];
    a.h = xs.dims[1];
    a.w = xs.dims[2];
    a.c = xs.dims[3];
    a.oh = in.geom.out_h(a.h);
    a.ow = in.geom.out_w(a.w);
    a.geom = in.geom;
    if (xw == IntWidth::kI8) {
      ks.depthwise_s8_epi(static_cast<const int8_t*>(x), pc.i8.data(), a, e);
    } else {
      ks.depthwise_s16_epi(static_cast<const int16_t*>(x), pc.i8.data(), a, e);
    }
    return;
  }

  if (algo == fpk::Algo::kGemmPacked || algo == fpk::Algo::kGemmRaw ||
      algo == fpk::Algo::kGemmS4) {
    GemmShape gs;
    const void* a = x;
    if (base == FpInstr::Kind::kDense) {
      gs.m = xs.dims[0];
      gs.n = in.const_shape[1];
      gs.k = xs.dims[1];
    } else {
      gs = conv_gemm_shape(in, xs);
      if (!is_pointwise(in)) {
        const size_t need = static_cast<size_t>(gs.m * gs.k) *
                                static_cast<size_t>(width_bytes(xw)) +
                            32;
        if (scratch.size() < need) scratch.resize(need);
        if (xw == IntWidth::kI8) {
          im2col_pack(in, static_cast<const int8_t*>(x), xs,
                      reinterpret_cast<int8_t*>(scratch.data()));
        } else {
          im2col_pack(in, static_cast<const int16_t*>(x), xs,
                      reinterpret_cast<int16_t*>(scratch.data()));
        }
        a = scratch.data();
      }
    }
    if (xw == IntWidth::kI8) {
      if (algo == fpk::Algo::kGemmS4) {
        ks.gemm_s8n4_epi(static_cast<const int8_t*>(a), pc.b_nib4.data(), gs.m, gs.n,
                         gs.k, e);
      } else if (algo == fpk::Algo::kGemmPacked) {
        ks.gemm_s8p16_epi(static_cast<const int8_t*>(a), pc.b_pair16.data(), gs.m, gs.n,
                          gs.k, e);
      } else {
        ks.gemm_s8_epi(static_cast<const int8_t*>(a), pc.i8.data(), gs.m, gs.n, gs.k, e);
      }
    } else if (algo == fpk::Algo::kGemmS4) {
      ks.gemm_s16n4_epi(static_cast<const int16_t*>(a), pc.b_nib4.data(), gs.m, gs.n,
                        gs.k, e);
    } else {
      ks.gemm_s16p16_epi(static_cast<const int16_t*>(a), pc.b_pair16.data(), gs.m, gs.n,
                         gs.k, e);
    }
    return;
  }

  // Generic fallback: accumulate in int64 (the reference semantics exactly),
  // then retire through the same epilogue.
  const size_t need = static_cast<size_t>(yn) * sizeof(int64_t);
  if (acc_buf.size() < need) acc_buf.resize(need);
  int64_t* acc = reinterpret_cast<int64_t*>(acc_buf.data());
  with_width(xw, [&](auto xt) {
    using XT = decltype(xt);
    const XT* xp = static_cast<const XT*>(x);
    if (base == FpInstr::Kind::kConv2d) {
      conv_generic(in, xp, xs, acc);
    } else if (base == FpInstr::Kind::kDepthwise) {
      depthwise_generic(in, xp, xs, acc);
    } else {
      dense_generic(in, xp, xs, acc);
    }
  });
  const int64_t channels = base == FpInstr::Kind::kConv2d      ? in.const_shape[3]
                           : base == FpInstr::Kind::kDepthwise ? xs.dims[3]
                                                               : in.const_shape[1];
  apply_epi(e, acc, yn, channels);
}

void layout_pack(const int8_t* x, const FpRegShape& xs, int8_t* y) {
  const int64_t h = xs.dims[1], w = xs.dims[2], c = xs.dims[3];
  const int64_t cb_n = fpk::blocked_c(c) / fpk::kChanBlock;
  const int64_t hw = h * w;
  const int64_t pixels = xs.dims[0] * hw;
#ifdef __AVX2__
  if (cb_n == 1 && c <= 4) {
    // Stem fast path (c=3 is every zoo model's input conv): 4 pixels per
    // vpshufb. One 16-byte load covers 4 pixels (4*c <= 16 bytes), broadcast
    // to both lanes; the shuffle scatters each pixel's c channels to its
    // 8-byte block and writes 0x80-indexed zeros into the padded lanes.
    alignas(32) int8_t mi[32];
    for (int j = 0; j < 32; ++j) {
      const int q = (j >> 4) * 2 + ((j & 15) >> 3);  // source pixel 0..3
      const int ch = j & 7;
      mi[j] = ch < c ? static_cast<int8_t>(q * c + ch) : static_cast<int8_t>(-128);
    }
    const __m256i mask = _mm256_load_si256(reinterpret_cast<const __m256i*>(mi));
    parallel_for(0, pixels, grain_for(pixels, fpk::kChanBlock),
                 [&](int64_t p0, int64_t p1) {
      int64_t p = p0;
      // The 16-byte load reaches past the 4th pixel when c < 4; stay inside
      // the source buffer and finish the trailing pixels scalar.
      for (; p + 4 <= p1 && p * c + 16 <= pixels * c; p += 4) {
        const __m256i v = _mm256_broadcastsi128_si256(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + p * c)));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + p * fpk::kChanBlock),
                            _mm256_shuffle_epi8(v, mask));
      }
      for (; p < p1; ++p) {
        const int8_t* src = x + p * c;
        int8_t* dst = y + p * fpk::kChanBlock;
        for (int64_t l = 0; l < c; ++l) dst[l] = src[l];
        for (int64_t l = c; l < fpk::kChanBlock; ++l) dst[l] = 0;
      }
    });
    return;
  }
#endif
  parallel_for(0, pixels, grain_for(pixels, fpk::blocked_c(c)), [&](int64_t p0, int64_t p1) {
    int64_t b = p0 / hw, rem = p0 % hw;
    for (int64_t p = p0; p < p1; ++p) {
      const int8_t* src = x + p * c;
      int8_t* plane = y + (b * cb_n * hw + rem) * fpk::kChanBlock;
      for (int64_t cb = 0; cb < cb_n; ++cb) {
        int8_t* dst = plane + cb * hw * fpk::kChanBlock;
        const int64_t c0 = cb * fpk::kChanBlock;
        if (c - c0 >= fpk::kChanBlock) {
          // Full block: one 8-byte move (the overwhelmingly common case).
          std::memcpy(dst, src + c0, fpk::kChanBlock);
        } else {
          // Partial tail block: byte loops, not a variable-length memcpy —
          // the call overhead dwarfs the 1..7 bytes actually moved.
          const int64_t nv = c - c0;
          for (int64_t l = 0; l < nv; ++l) dst[l] = src[c0 + l];
          for (int64_t l = nv; l < fpk::kChanBlock; ++l) dst[l] = 0;
        }
      }
      if (++rem == hw) { rem = 0; ++b; }
    }
  });
}

void layout_unpack(const void* x, IntWidth w, const FpRegShape& ys, void* y) {
  const int64_t h = ys.dims[1], wd = ys.dims[2], c = ys.dims[3];
  const int64_t cb_n = fpk::blocked_c(c) / fpk::kChanBlock;
  const int64_t pixels = ys.dims[0] * h * wd;
  const int64_t hw = h * wd;
  with_width(w, [&](auto t) {
    using T = decltype(t);
    const T* src = static_cast<const T*>(x);
    T* dst = static_cast<T*>(y);
    parallel_for(0, pixels, grain_for(pixels, c), [&](int64_t p0, int64_t p1) {
      int64_t b = p0 / hw, rem = p0 % hw;
      for (int64_t p = p0; p < p1; ++p) {
        T* drow = dst + p * c;
        const T* plane = src + (b * cb_n * hw + rem) * fpk::kChanBlock;
        for (int64_t cb = 0; cb < cb_n; ++cb) {
          const T* s = plane + cb * hw * fpk::kChanBlock;
          const int64_t c0 = cb * fpk::kChanBlock;
          if (c - c0 >= fpk::kChanBlock) {
            std::memcpy(drow + c0, s, fpk::kChanBlock * sizeof(T));
          } else {
            for (int64_t l = 0; l < c - c0; ++l) drow[c0 + l] = s[l];
          }
        }
        if (++rem == hw) { rem = 0; ++b; }
      }
    });
  });
}

}  // namespace detail

namespace {

/// One typed execution over an ExecContext. Only borrows program state; all
/// mutation happens in ctx.
class Executor {
 public:
  Executor(const std::vector<FpInstr>& instrs, const ExecPlan& plan, const Tensor& input,
           std::vector<std::vector<unsigned char>>& slots, std::vector<unsigned char>& scratch,
           std::vector<unsigned char>& acc_scratch, const std::vector<FpRegShape>& shapes)
      : instrs_(instrs), plan_(plan), input_(input), slots_(slots), scratch_(scratch),
        acc_scratch_(acc_scratch), shapes_(shapes) {}

  void run() {
    if (observe::trace_enabled()) {
      run_traced();
      return;
    }
#ifdef TQT_EXEC_PROFILE
    static double kind_s[18] = {};
    static long long runs = 0;
    for (size_t idx = 0; idx < instrs_.size(); ++idx) {
      const auto t0 = std::chrono::steady_clock::now();
      exec_one(idx);
      kind_s[static_cast<int>(instrs_[idx].kind)] +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    }
    if (++runs % 64 == 0) {
      std::fprintf(stderr, "exec profile after %lld runs:\n", runs);
      for (int k = 0; k < 18; ++k)
        if (kind_s[k] > 0) std::fprintf(stderr, "  kind %2d: %8.3f ms\n", k, kind_s[k] * 1e3);
      for (int k = 0; k < 18; ++k) kind_s[k] = 0;
    }
#else
    for (size_t idx = 0; idx < instrs_.size(); ++idx) exec_one(idx);
#endif
  }

 private:
  /// Tracing-enabled path: one span per instruction, tagged with the
  /// originating graph node, operand widths, and — for the matmul family —
  /// the kernel set actually dispatched to. Kept out of the default loop so
  /// disabled-tracing execution pays only the one branch above.
  void run_traced() {
    for (size_t idx = 0; idx < instrs_.size(); ++idx) {
      const FpInstr& in = instrs_[idx];
      observe::TraceSpan span(to_string(in.kind), "engine");
      const char* xw = in.inputs.empty() ? "-" : to_string(reg_w(in.inputs[0]));
      const char* yw = to_string(reg_w(in.output));
      if (is_fused_kind(in.kind)) {
        // Same table --explain-kernels prints: the resolved algo plus
        // whether it came from a tuned selection or the static default.
        const fpk::Algo a = detail::resolve_fused_algo(in, plan_.consts[idx],
                                                       reg_w(in.inputs[0]),
                                                       planned_algo(idx));
        span.argf("%s %s->%s kernels=%s algo=%s%s", in.debug_name.c_str(), xw, yw,
                  fpk::active_kernels().name, fpk::algo_name(a),
                  planned_algo(idx) == fpk::Algo::kAuto ? "" : " tuned");
      } else if (is_matmul_kind(in.kind)) {
        const bool fast = fast_matmul(in, idx) || fast_matmul16(in, idx);
        span.argf("%s %s->%s kernels=%s", in.debug_name.c_str(), xw, yw,
                  fast ? fpk::active_kernels().name : "generic");
      } else {
        span.argf("%s %s->%s", in.debug_name.c_str(), xw, yw);
      }
      exec_one(idx);
    }
  }

  fpk::Algo planned_algo(size_t idx) const {
    return idx < plan_.algos.size() ? plan_.algos[idx] : fpk::Algo::kAuto;
  }

  void* reg_ptr(int r) const {
    return slots_[static_cast<size_t>(plan_.regs[static_cast<size_t>(r)].slot)].data();
  }
  IntWidth reg_w(int r) const { return plan_.regs[static_cast<size_t>(r)].width; }
  int reg_exp(int r) const { return plan_.regs[static_cast<size_t>(r)].exponent; }
  const FpRegShape& reg_shape(int r) const { return shapes_[static_cast<size_t>(r)]; }

  /// True when (x, weights, out) match the registry kernels' native
  /// int8 x int8 -> int32 contract.
  bool fast_matmul(const FpInstr& in, size_t idx) const {
    return reg_w(in.inputs[0]) == IntWidth::kI8 &&
           plan_.consts[idx].width == IntWidth::kI8 && reg_w(in.output) == IntWidth::kI32;
  }

  /// True for the int16-activation variant (int16 x int8 -> int32): taken
  /// only when the active set ships the s16 packed kernel, otherwise the
  /// generic loops handle it.
  bool fast_matmul16(const FpInstr& in, size_t idx) const {
    return reg_w(in.inputs[0]) == IntWidth::kI16 &&
           plan_.consts[idx].width == IntWidth::kI8 &&
           reg_w(in.output) == IntWidth::kI32 &&
           fpk::active_kernels().gemm_s16p16s32 != nullptr &&
           !plan_.consts[idx].b_pair16.empty();
  }

  /// GEMM through the active kernel set, preferring its packed-B entry point
  /// when the plan carries the pair-interleaved weight copy. The packed
  /// kernel overwrites C; the raw += kernel needs the zeroing pass first.
  void run_gemm(size_t idx, const int8_t* a, int32_t* c, const GemmShape& gs) const {
    const fpk::KernelSet& ks = fpk::active_kernels();
    const ExecPlan::Const& w = plan_.consts[idx];
    if (ks.gemm_s8p16s32 && !w.b_pair16.empty()) {
      ks.gemm_s8p16s32(a, w.b_pair16.data(), c, gs.m, gs.n, gs.k);
    } else {
      std::memset(c, 0, static_cast<size_t>(gs.m * gs.n) * sizeof(int32_t));
      ks.gemm_s8s8s32(a, w.i8.data(), c, gs.m, gs.n, gs.k);
    }
  }

  void run_gemm16(size_t idx, const int16_t* a, int32_t* c, const GemmShape& gs) const {
    fpk::active_kernels().gemm_s16p16s32(a, plan_.consts[idx].b_pair16.data(), c, gs.m,
                                         gs.n, gs.k);
  }

  void exec_one(size_t idx) {
    const FpInstr& in = instrs_[idx];
    void* y = reg_ptr(in.output);
    const IntWidth wy = reg_w(in.output);
    const int64_t yn = reg_shape(in.output).numel;

    switch (in.kind) {
      case FpInstr::Kind::kQuantizeInput: {
        const float s = std::exp2(static_cast<float>(in.out_exponent));
        with_width(wy, [&](auto yt) {
          using YT = decltype(yt);
          YT* out = static_cast<YT*>(y);
          parallel_for(0, yn, kElementGrain, [&](int64_t i0, int64_t i1) {
            for (int64_t i = i0; i < i1; ++i) {
              out[i] = static_cast<YT>(
                  saturate(static_cast<int64_t>(round_half_to_even(input_[i] / s)),
                           in.clamp_lo, in.clamp_hi));
            }
          });
        });
        break;
      }
      case FpInstr::Kind::kRequant: {
        const int shift = in.out_exponent - reg_exp(in.inputs[0]);
        const int64_t lo = in.clamp_lo, hi = in.clamp_hi;
        const void* xv = reg_ptr(in.inputs[0]);
        const IntWidth wx = reg_w(in.inputs[0]);
        const ExecPlan::Const& pc = plan_.consts[idx];
        if (!pc.chan_shifts.empty()) {
          // Per-channel producer: lane i's rescale distance comes from the
          // plan's resolved table (channels innermost, so channel = i % C).
          const int32_t* cs = pc.chan_shifts.data();
          const int64_t C = static_cast<int64_t>(pc.chan_shifts.size());
          with_width(wx, [&](auto xt) {
            using XT = decltype(xt);
            const XT* x = static_cast<const XT*>(xv);
            with_width(wy, [&](auto yt) {
              using YT = decltype(yt);
              YT* out = static_cast<YT*>(y);
              parallel_for(0, yn, kElementGrain, [&](int64_t i0, int64_t i1) {
                for (int64_t i = i0; i < i1; ++i) {
                  out[i] = static_cast<YT>(saturate(
                      rescale(static_cast<int64_t>(x[i]), 0, cs[i % C]), lo, hi));
                }
              });
            });
          });
          break;
        }
        if (shift > 0) {
          // Branch-free round-half-to-even right shift, equivalent to
          // fp::rescale (pinned by the Rescale unit tests): with q = v >> s,
          // adding 2^(s-1) - 1 + (q & 1) before the shift rounds up exactly
          // when the remainder exceeds half, or ties at half with q odd.
          const int64_t round = (int64_t{1} << (shift - 1)) - 1;
          map_lanes(xv, wx, y, wy, yn, [=](int64_t v) {
            return saturate((v + round + ((v >> shift) & 1)) >> shift, lo, hi);
          });
        } else if (shift == 0) {
          map_lanes(xv, wx, y, wy, yn, [=](int64_t v) { return saturate(v, lo, hi); });
        } else {
          map_lanes(xv, wx, y, wy, yn,
                    [=](int64_t v) { return saturate(v << -shift, lo, hi); });
        }
        break;
      }
      case FpInstr::Kind::kConv2d: {
        const int x = in.inputs[0];
        if (fast_matmul(in, idx)) {
          const GemmShape gs = conv_gemm_shape(in, reg_shape(x));
          const int8_t* a;
          if (is_pointwise(in)) {
            a = static_cast<const int8_t*>(reg_ptr(x));
          } else {
            int8_t* packed = reinterpret_cast<int8_t*>(scratch_.data());
            im2col_pack(in, static_cast<const int8_t*>(reg_ptr(x)), reg_shape(x), packed);
            a = packed;
          }
          run_gemm(idx, a, static_cast<int32_t*>(y), gs);
        } else if (fast_matmul16(in, idx)) {
          const GemmShape gs = conv_gemm_shape(in, reg_shape(x));
          const int16_t* a;
          if (is_pointwise(in)) {
            a = static_cast<const int16_t*>(reg_ptr(x));
          } else {
            int16_t* packed = reinterpret_cast<int16_t*>(scratch_.data());
            im2col_pack(in, static_cast<const int16_t*>(reg_ptr(x)), reg_shape(x), packed);
            a = packed;
          }
          run_gemm16(idx, a, static_cast<int32_t*>(y), gs);
        } else {
          with_width(reg_w(x), [&](auto xt) {
            with_width(wy, [&](auto yt) {
              conv_generic(in, static_cast<const decltype(xt)*>(reg_ptr(x)), reg_shape(x),
                           static_cast<decltype(yt)*>(y));
            });
          });
        }
        break;
      }
      case FpInstr::Kind::kDepthwise: {
        const int x = in.inputs[0];
        const FpRegShape& xs = reg_shape(x);
        if (fast_matmul(in, idx)) {
          fpk::DepthwiseArgs a;
          a.batch = xs.dims[0];
          a.h = xs.dims[1];
          a.w = xs.dims[2];
          a.c = xs.dims[3];
          a.oh = in.geom.out_h(a.h);
          a.ow = in.geom.out_w(a.w);
          a.geom = in.geom;
          fpk::active_kernels().depthwise_s8s8s32(static_cast<const int8_t*>(reg_ptr(x)),
                                                  plan_.consts[idx].i8.data(),
                                                  static_cast<int32_t*>(y), a);
        } else {
          with_width(reg_w(x), [&](auto xt) {
            with_width(wy, [&](auto yt) {
              depthwise_generic(in, static_cast<const decltype(xt)*>(reg_ptr(x)), xs,
                                static_cast<decltype(yt)*>(y));
            });
          });
        }
        break;
      }
      case FpInstr::Kind::kDense: {
        const int x = in.inputs[0];
        const FpRegShape& xs = reg_shape(x);
        if (fast_matmul(in, idx) || fast_matmul16(in, idx)) {
          // Activations are already the [M, K] A operand — no packing.
          GemmShape gs;
          gs.m = xs.dims[0];
          gs.n = in.const_shape[1];
          gs.k = xs.dims[1];
          if (reg_w(x) == IntWidth::kI8) {
            run_gemm(idx, static_cast<const int8_t*>(reg_ptr(x)), static_cast<int32_t*>(y),
                     gs);
          } else {
            run_gemm16(idx, static_cast<const int16_t*>(reg_ptr(x)),
                       static_cast<int32_t*>(y), gs);
          }
        } else {
          with_width(reg_w(x), [&](auto xt) {
            with_width(wy, [&](auto yt) {
              dense_generic(in, static_cast<const decltype(xt)*>(reg_ptr(x)), xs,
                            static_cast<decltype(yt)*>(y));
            });
          });
        }
        break;
      }
      case FpInstr::Kind::kBiasAdd: {
        // The channel dimension is innermost in NHWC, so the reference's
        // bias[i % channels] indexing is row-by-row broadcast; iterate rows
        // explicitly to keep the modulo out of the per-lane loop.
        const int64_t channels = in.const_shape[0];
        const int64_t rows = yn / channels;
        const int64_t* bias = in.const_data.data();
        with_width(reg_w(in.inputs[0]), [&](auto xt) {
          using XT = decltype(xt);
          const XT* x = static_cast<const XT*>(reg_ptr(in.inputs[0]));
          with_width(wy, [&](auto yt) {
            using YT = decltype(yt);
            YT* out = static_cast<YT*>(y);
            parallel_for(0, rows, grain_for(rows, channels), [&](int64_t r0, int64_t r1) {
              for (int64_t r = r0; r < r1; ++r) {
                const XT* xr = x + r * channels;
                YT* yr = out + r * channels;
                for (int64_t c = 0; c < channels; ++c) {
                  yr[c] = static_cast<YT>(static_cast<int64_t>(xr[c]) + bias[c]);
                }
              }
            });
          });
        });
        break;
      }
      case FpInstr::Kind::kRelu:
        map_lanes(reg_ptr(in.inputs[0]), reg_w(in.inputs[0]), y, wy, yn,
                  [](int64_t v) { return v > 0 ? v : 0; });
        break;
      case FpInstr::Kind::kRelu6:
        map_lanes(reg_ptr(in.inputs[0]), reg_w(in.inputs[0]), y, wy, yn,
                  [&](int64_t v) { return saturate(v, in.clamp_lo, in.clamp_hi); });
        break;
      case FpInstr::Kind::kLeakyRelu: {
        const int lift = -in.alpha_exponent;  // alpha exponents are negative
        map_lanes(reg_ptr(in.inputs[0]), reg_w(in.inputs[0]), y, wy, yn, [&](int64_t v) {
          return std::max(v << lift, v * in.alpha_q);
        });
        break;
      }
      case FpInstr::Kind::kMaxPool: {
        const int x = in.inputs[0];
        with_width(reg_w(x), [&](auto xt) {
          with_width(wy, [&](auto yt) {
            maxpool_typed(in, static_cast<const decltype(xt)*>(reg_ptr(x)), reg_shape(x),
                          static_cast<decltype(yt)*>(y));
          });
        });
        break;
      }
      case FpInstr::Kind::kEltwiseAdd:
        map2_lanes(reg_ptr(in.inputs[0]), reg_w(in.inputs[0]), reg_ptr(in.inputs[1]),
                   reg_w(in.inputs[1]), y, wy, yn,
                   [](int64_t a, int64_t b) { return a + b; });
        break;
      case FpInstr::Kind::kConcat: {
        const int64_t total_c = reg_shape(in.output).dims[reg_shape(in.output).rank - 1];
        const int64_t rows = yn / total_c;
        int64_t offset = 0;
        for (int r : in.inputs) {
          const FpRegShape& s = reg_shape(r);
          const int64_t c = s.dims[s.rank - 1];
          with_width(reg_w(r), [&](auto xt) {
            using XT = decltype(xt);
            const XT* src = static_cast<const XT*>(reg_ptr(r));
            with_width(wy, [&](auto yt) {
              using YT = decltype(yt);
              YT* out = static_cast<YT*>(y);
              parallel_for(0, rows, grain_for(rows, c), [&](int64_t r0, int64_t r1) {
                for (int64_t row = r0; row < r1; ++row) {
                  for (int64_t j = 0; j < c; ++j) {
                    out[row * total_c + offset + j] = static_cast<YT>(src[row * c + j]);
                  }
                }
              });
            });
          });
          offset += c;
        }
        break;
      }
      case FpInstr::Kind::kFlatten: {
        // Bounds (hence width) pass through; a flatten is a pure reshape.
        // When the plan aliased the output onto the input's slot (the normal
        // case), there is nothing to execute — the lanes are already there.
        const int x = in.inputs[0];
        const int xs = plan_.regs[static_cast<size_t>(x)].slot;
        const int ys = plan_.regs[static_cast<size_t>(in.output)].slot;
        if (xs >= 0 && xs == ys && reg_w(x) == wy) break;
        if (reg_w(x) == wy) {
          std::memcpy(y, reg_ptr(x), static_cast<size_t>(yn) * width_bytes(wy));
        } else {
          map_lanes(reg_ptr(x), reg_w(x), y, wy, yn, [](int64_t v) { return v; });
        }
        break;
      }
      case FpInstr::Kind::kConv2dFused:
      case FpInstr::Kind::kDepthwiseFused:
      case FpInstr::Kind::kDenseFused: {
        const int x = in.inputs[0];
        const fpk::Algo algo =
            detail::resolve_fused_algo(in, plan_.consts[idx], reg_w(x), planned_algo(idx));
        detail::run_fused(in, plan_.consts[idx], algo, reg_ptr(x), reg_shape(x),
                          reg_w(x), y, wy, yn, scratch_, acc_scratch_);
        break;
      }
      case FpInstr::Kind::kLayoutPack:
        detail::layout_pack(static_cast<const int8_t*>(reg_ptr(in.inputs[0])),
                            reg_shape(in.inputs[0]), static_cast<int8_t*>(y));
        break;
      case FpInstr::Kind::kLayoutUnpack:
        detail::layout_unpack(reg_ptr(in.inputs[0]), wy, reg_shape(in.output), y);
        break;
    }
  }

  const std::vector<FpInstr>& instrs_;
  const ExecPlan& plan_;
  const Tensor& input_;
  std::vector<std::vector<unsigned char>>& slots_;
  std::vector<unsigned char>& scratch_;
  std::vector<unsigned char>& acc_scratch_;
  const std::vector<FpRegShape>& shapes_;
};

}  // namespace

int64_t ExecContext::arena_bytes() const {
  int64_t b = static_cast<int64_t>(scratch_.capacity()) +
              static_cast<int64_t>(acc_scratch_.capacity());
  for (const auto& s : slots_) b += static_cast<int64_t>(s.capacity());
  return b;
}

void FixedPointProgram::run_into(const Tensor& input, ExecContext& ctx, Tensor& out) const {
  // Resolved once per process (the static-local guard + relaxed increments
  // are the entire disabled-telemetry cost); the first call lands during the
  // warm-up run, so the steady-state zero-allocation window stays clean.
  static observe::Counter& runs_counter =
      observe::MetricsRegistry::global().counter("engine.runs");
  static observe::Counter& instr_counter =
      observe::MetricsRegistry::global().counter("engine.instructions");
  runs_counter.inc();
  observe::TraceSpan span("engine.run_into", "engine");

  const ExecPlan& plan = this->plan();
  // The execution stream: the canonical instructions, unless the autotuner
  // derived a stream with layout pseudo-ops (plan.consts / plan.algos /
  // plan.regs are aligned with THAT stream, including its extra registers).
  const std::vector<FpInstr>& xinstrs = plan.instrs.empty() ? instrs_ : plan.instrs;
  const int n_regs = static_cast<int>(plan.regs.size());
  instr_counter.inc(xinstrs.size());
  span.argf("instrs=%zu", xinstrs.size());

  // Per-run shape inference + arena sizing; every container is grow-only, so
  // after a warm-up run at this (program, shape) nothing below allocates.
  infer_register_shapes(xinstrs, n_regs, input_register, input.shape(), ctx.regs_);
  if (static_cast<int>(ctx.slots_.size()) < plan.n_slots) {
    ctx.slots_.resize(static_cast<size_t>(plan.n_slots));
  }
  // kBufSlack trailing bytes let the SIMD GEMM's mask loads read a whole
  // 32-byte block past the end of an A row without faulting; the padded
  // lanes multiply the zero-padded tail of the packed B operand, so their
  // contents never reach a result.
  constexpr size_t kBufSlack = 32;
  for (int r = 0; r < n_regs; ++r) {
    const ExecPlan::Reg& pr = plan.regs[static_cast<size_t>(r)];
    if (pr.slot < 0) continue;
    const size_t need = static_cast<size_t>(ctx.regs_[static_cast<size_t>(r)].numel) *
                            static_cast<size_t>(width_bytes(pr.width)) +
                        kBufSlack;
    auto& buf = ctx.slots_[static_cast<size_t>(pr.slot)];
    if (buf.size() < need) buf.resize(need);
  }
  if (plan.needs_scratch) {
    size_t need = 0;
    for (size_t idx = 0; idx < xinstrs.size(); ++idx) {
      const FpInstr& in = xinstrs[idx];
      if (base_kind_of(in.kind) != FpInstr::Kind::kConv2d) continue;
      if (plan.consts[idx].width != IntWidth::kI8) continue;
      // Blocked convs read the NC8HW8 register directly — no im2col.
      if (idx < plan.algos.size() && plan.algos[idx] == fpk::Algo::kBlocked) continue;
      const GemmShape gs = conv_gemm_shape(in, ctx.regs_[static_cast<size_t>(in.inputs[0])]);
      const int xw = width_bytes(plan.regs[static_cast<size_t>(in.inputs[0])].width);
      need = std::max(need,
                      static_cast<size_t>(gs.m * gs.k) * static_cast<size_t>(xw) + kBufSlack);
    }
    if (ctx.scratch_.size() < need) ctx.scratch_.resize(need);
  }
  // int64 accumulator buffer, sized only for fused instructions that will
  // take the generic fallback this run (re-checked per run because the
  // active kernel set can change between runs; grow-only like everything
  // else).
  {
    size_t need = 0;
    for (size_t idx = 0; idx < xinstrs.size(); ++idx) {
      const FpInstr& in = xinstrs[idx];
      if (!is_fused_kind(in.kind)) continue;
      if (detail::resolve_fused_algo(
              in, plan.consts[idx], plan.regs[static_cast<size_t>(in.inputs[0])].width,
              idx < plan.algos.size() ? plan.algos[idx] : fpk::Algo::kAuto) !=
          fpk::Algo::kGeneric) {
        continue;
      }
      need = std::max(need,
                      static_cast<size_t>(ctx.regs_[static_cast<size_t>(in.output)].numel) *
                          sizeof(int64_t));
    }
    if (ctx.acc_scratch_.size() < need) ctx.acc_scratch_.resize(need);
  }

  Executor ex(xinstrs, plan, input, ctx.slots_, ctx.scratch_, ctx.acc_scratch_, ctx.regs_);
  ex.run();

  // De-quantize the output register into `out`, resizing only on shape change.
  const FpRegShape& os = ctx.regs_[static_cast<size_t>(output_register)];
  bool same = out.rank() == os.rank && out.numel() == os.numel;
  for (int d = 0; same && d < os.rank; ++d) same = out.shape()[static_cast<size_t>(d)] == os.dims[d];
  if (!same) {
    Shape shape(os.dims, os.dims + os.rank);
    out = Tensor(std::move(shape));
  }
  const ExecPlan::Reg& orr = plan.regs[static_cast<size_t>(output_register)];
  const float s = std::exp2(static_cast<float>(orr.exponent));
  const void* raw = ctx.slots_[static_cast<size_t>(orr.slot)].data();
  with_width(orr.width, [&](auto yt) {
    using YT = decltype(yt);
    const YT* lanes = static_cast<const YT*>(raw);
    float* o = out.data();
    parallel_for(0, os.numel, kElementGrain, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) o[i] = static_cast<float>(lanes[i]) * s;
    });
  });
}

IntTensor FixedPointProgram::run_raw(const Tensor& input) const {
  thread_local ExecContext ctx;
  Tensor scratch_out;  // run_into needs a Tensor sink; cheap relative to raw copy
  run_into(input, ctx, scratch_out);

  const ExecPlan& plan = this->plan();
  const ExecPlan::Reg& orr = plan.regs[static_cast<size_t>(output_register)];
  // ctx buffers still hold the output register lanes — run_into's dequantize
  // does not disturb the arena.
  const FpRegShape& os = ctx.regs_[static_cast<size_t>(output_register)];
  IntTensor raw;
  raw.shape.assign(os.dims, os.dims + os.rank);
  raw.exponent = orr.exponent;
  raw.data.resize(static_cast<size_t>(os.numel));
  const void* src = ctx.slots_[static_cast<size_t>(orr.slot)].data();
  with_width(orr.width, [&](auto yt) {
    using YT = decltype(yt);
    const YT* lanes = static_cast<const YT*>(src);
    for (int64_t i = 0; i < os.numel; ++i) raw.data[static_cast<size_t>(i)] = lanes[i];
  });
  return raw;
}

}  // namespace tqt
