// Graph compiler for the typed fixed-point engine: instruction fusion and
// memory-aware scheduling, run between program construction and planning
// (FixedPointProgram::finalize).
//
//  * fuse_program (fuse.cpp) rewrites matmul -> requant / bias / activation
//    chains into single fused instructions whose epilogue retires the int32
//    accumulator tile in registers, collapses exactly-composable standalone
//    requant pairs, merges flatten-of-flatten, and sweeps dead code.
//  * schedule_program (schedule.cpp) reorders instructions to minimize
//    liveness overlap so the planner's linear-scan pass needs fewer / smaller
//    arena slots. Deterministic and idempotent: decisions depend only on the
//    data-dependence DAG, never on the incoming instruction order, so
//    re-finalizing a saved program reproduces the saved schedule exactly.
//
// Both passes preserve bit-exact results: fusion replays the absorbed
// instructions per accumulator lane in their original order, and scheduling
// only permutes instructions within data-dependence constraints.
#pragma once

#include <cstdint>
#include <vector>

#include "fixedpoint/engine.h"
#include "fixedpoint/kernels/kernels.h"

namespace tqt {

/// Whether finalize() runs the fusion + scheduling pipeline. Resolution
/// order: set_fusion_enabled() override, then the TQT_FUSE environment
/// variable ("0" disables), then on.
bool fusion_enabled();

/// Override the fusion gate: 1 = on, 0 = off, -1 = automatic (TQT_FUSE env,
/// default on). Affects subsequent compile/load/refinalize calls only.
void set_fusion_enabled(int mode);

/// Rewrite `instrs` in place: fuse matmul epilogue chains, collapse
/// zero-net-shift requant pairs, merge redundant flattens, drop dead
/// instructions. Fills every FuseStats field except the arena byte figures
/// (finalize records those around the scheduling step).
FuseStats fuse_program(std::vector<FpInstr>& instrs, int n_registers,
                       int input_register, int output_register);

/// Return a data-dependence-respecting reorder of `instrs` chosen to shrink
/// peak register liveness (greedy list scheduling, frees-minus-allocates
/// score, ties broken on the smallest output register id).
std::vector<FpInstr> schedule_program(const std::vector<FpInstr>& instrs,
                                      int n_registers, int input_register,
                                      int output_register);

/// Rewrite `stream` for tuner-selected blocked kernels: insert kLayoutPack
/// before the first blocked consumer of each standard-layout register and
/// kLayoutUnpack after any blocked output that a non-blocked instruction (or
/// the program output) reads. `algos` is aligned with `stream` and is kept
/// aligned (pseudo-ops get kAuto); `*n_registers` grows by one per inserted
/// pseudo-op. Chain-internal links stay blocked end to end — consecutive
/// blocked instructions hand the NC8HW8 register straight through. Called by
/// finalize() on a COPY of the canonical stream; the canonical program is
/// never rewritten.
void insert_layout_ops(std::vector<FpInstr>& stream, std::vector<fpk::Algo>& algos,
                       int* n_registers, int output_register);

/// Planner's nominal single-image arena footprint of an instruction order:
/// build the exec plan, size every slot at its widest resident register
/// under a nominal input shape derived from the first matmul's weights, and
/// sum. Used to accept/reject schedules and reported as engine.fusion.*.
int64_t estimate_arena_bytes(const std::vector<FpInstr>& instrs, int n_registers,
                             int input_register, int output_register);

}  // namespace tqt
