// Binary (de)serialization of compiled fixed-point programs.
//
// Format (little-endian host order; a deployment artifact for one host
// family, not an interchange format):
//   magic "TQTP" | u32 version | i32 n_registers | i32 input | i32 output |
//   u64 instr_count | instructions...
// Each instruction stores its kind, register ids, geometry, constants and
// scale/clamp metadata; see FpInstr.
//
// Version history:
//   1 — original format; kinds up to kFlatten.
//   2 — adds the fused matmul kinds and two per-instruction vectors
//       (epi_data, bias_data) between alpha_exponent and debug_name.
//   3 — adds the per-channel weight-scale vector (chan_data) after
//       bias_data.
// save() emits the lowest version whose fields cover the program (1 for
// unfused, 2 for fused per-tensor, 3 only when any instruction carries
// per-channel scales), so older builds keep reading everything they can
// represent; load() accepts all three.
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "fixedpoint/autotune.h"
#include "fixedpoint/engine.h"

namespace tqt {

namespace {
constexpr char kMagic[4] = {'T', 'Q', 'T', 'P'};
constexpr uint32_t kMinVersion = 1;
constexpr uint32_t kVersion = 3;

template <typename T>
void w(std::ofstream& os, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T r(std::ifstream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw ProgramFormatError("fixed-point program: truncated file");
  return v;
}

void w_string(std::ofstream& os, const std::string& s) {
  w(os, static_cast<uint64_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string r_string(std::ifstream& is) {
  const auto n = r<uint64_t>(is);
  if (n > (1u << 20)) throw ProgramFormatError("fixed-point program: absurd string length");
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  if (!is) throw ProgramFormatError("fixed-point program: truncated string");
  return s;
}

template <typename T>
void w_vec(std::ofstream& os, const std::vector<T>& v) {
  w(os, static_cast<uint64_t>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> r_vec(std::ifstream& is) {
  const auto n = r<uint64_t>(is);
  if (n > (1ull << 28)) throw ProgramFormatError("fixed-point program: absurd vector length");
  std::vector<T> v(n);
  is.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(n * sizeof(T)));
  if (!is) throw ProgramFormatError("fixed-point program: truncated vector");
  return v;
}
}  // namespace

void FixedPointProgram::save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  bool needs_v2 = false, needs_v3 = false;
  for (const FpInstr& in : instrs_) {
    if (!in.epi_data.empty() || !in.bias_data.empty()) needs_v2 = true;
    if (!in.chan_data.empty()) needs_v3 = true;
  }
  const uint32_t version = needs_v3 ? 3 : needs_v2 ? 2 : kMinVersion;
  os.write(kMagic, 4);
  w(os, version);
  w(os, n_registers);
  w(os, input_register);
  w(os, output_register);
  w(os, static_cast<uint64_t>(instrs_.size()));
  for (const FpInstr& in : instrs_) {
    w(os, static_cast<uint32_t>(in.kind));
    w_vec(os, in.inputs);
    w(os, in.output);
    w(os, in.geom.kh);
    w(os, in.geom.kw);
    w(os, in.geom.stride_h);
    w(os, in.geom.stride_w);
    w(os, in.geom.pad_top);
    w(os, in.geom.pad_bottom);
    w(os, in.geom.pad_left);
    w(os, in.geom.pad_right);
    w_vec(os, in.const_data);
    w_vec(os, in.const_shape);
    w(os, in.const_exponent);
    w(os, in.out_exponent);
    w(os, in.clamp_lo);
    w(os, in.clamp_hi);
    w(os, in.alpha_q);
    w(os, in.alpha_exponent);
    if (version >= 2) {
      w_vec(os, in.epi_data);
      w_vec(os, in.bias_data);
    }
    if (version >= 3) w_vec(os, in.chan_data);
    w_string(os, in.debug_name);
  }
  if (!os) throw std::runtime_error("write failed: " + path);
  // Persist the autotuner's measurements as a best-effort sidecar next to
  // the artifact; a load() of this path re-tunes for free. Never fatal — the
  // sidecar is a cache, the artifact above is the source of truth.
  if (tuning_) autotune::save_sidecar(path + ".tqt.tune", *tuning_);
}

FixedPointProgram FixedPointProgram::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw ProgramIoError("cannot open for read: " + path);
  char magic[4];
  is.read(magic, 4);
  if (!is || std::memcmp(magic, kMagic, 4) != 0) {
    throw ProgramFormatError("not a fixed-point program file: " + path);
  }
  const uint32_t version = r<uint32_t>(is);
  if (version < kMinVersion || version > kVersion) {
    throw ProgramFormatError("fixed-point program: unsupported version " +
                             std::to_string(version) + " (this build reads versions " +
                             std::to_string(kMinVersion) + ".." + std::to_string(kVersion) +
                             "): " + path);
  }
  FixedPointProgram prog;
  prog.n_registers = r<int>(is);
  prog.input_register = r<int>(is);
  prog.output_register = r<int>(is);
  const auto count = r<uint64_t>(is);
  if (count > (1u << 20)) throw ProgramFormatError("fixed-point program: absurd instr count");
  prog.instrs_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    FpInstr in;
    const auto kind = r<uint32_t>(is);
    const uint32_t max_kind = version >= 2
                                  ? static_cast<uint32_t>(FpInstr::Kind::kDenseFused)
                                  : static_cast<uint32_t>(FpInstr::Kind::kFlatten);
    if (kind > max_kind) {
      throw ProgramFormatError("fixed-point program: bad instruction kind");
    }
    in.kind = static_cast<FpInstr::Kind>(kind);
    in.inputs = r_vec<int>(is);
    in.output = r<int>(is);
    in.geom.kh = r<int64_t>(is);
    in.geom.kw = r<int64_t>(is);
    in.geom.stride_h = r<int64_t>(is);
    in.geom.stride_w = r<int64_t>(is);
    in.geom.pad_top = r<int64_t>(is);
    in.geom.pad_bottom = r<int64_t>(is);
    in.geom.pad_left = r<int64_t>(is);
    in.geom.pad_right = r<int64_t>(is);
    in.const_data = r_vec<int64_t>(is);
    in.const_shape = r_vec<int64_t>(is);
    in.const_exponent = r<int>(is);
    in.out_exponent = r<int>(is);
    in.clamp_lo = r<int64_t>(is);
    in.clamp_hi = r<int64_t>(is);
    in.alpha_q = r<int64_t>(is);
    in.alpha_exponent = r<int>(is);
    if (version >= 2) {
      in.epi_data = r_vec<int64_t>(is);
      in.bias_data = r_vec<int64_t>(is);
    }
    if (version >= 3) in.chan_data = r_vec<int64_t>(is);
    in.debug_name = r_string(is);
    prog.instrs_.push_back(std::move(in));
  }
  // The plan (widths, typed consts, slots) is derived state, not serialized:
  // rebuild it so loaded programs execute typed exactly like compiled ones.
  // When autotuning is on, finalize consults the artifact's .tqt.tune sidecar
  // (validated by program + CPU hash; stale or corrupt => silent re-tune).
  prog.tune_source_path_ = path + ".tqt.tune";
  prog.finalize();
  return prog;
}

}  // namespace tqt
