// Static memory/width plan for the typed fixed-point engine.
//
// Built once per program (at compile or load time) from the instruction
// stream alone — no input required:
//
//  * Width inference: conservative interval arithmetic propagates a value
//    bound [lo, hi] through every instruction (quantizer clamps, per-output-
//    channel sums of |w| for the matmul family, bias/eltwise interval sums),
//    and each register gets the narrowest of int8/int16/int32/int64 that
//    provably holds it. Matmul-family outputs are widened to >= int32 so the
//    int8xint8->int32 kernels accumulate in their native type; the bounds
//    also prove that no int32 partial sum can overflow, which is what makes
//    narrow accumulation bit-identical to the int64 reference interpreter.
//  * Typed constants: conv/depthwise/dense weights are re-packed into
//    int8_t/int16_t arrays (already in [K, Cout] row-major order, i.e. the
//    GEMM B operand). Biases stay int64 in the instruction.
//  * Slot assignment: a linear-scan liveness pass maps registers onto a
//    small set of reusable arena slots (a register's slot is freed after its
//    last use; an instruction's output never aliases a live input). Slot
//    byte sizes are shape-dependent and therefore resolved at run time by
//    the grow-only ExecContext arena.
#pragma once

#include <cstdint>
#include <vector>

#include "fixedpoint/engine.h"
#include "fixedpoint/kernels/kernels.h"

namespace tqt {

struct ExecPlan {
  struct Reg {
    IntWidth width = IntWidth::kI64;
    int slot = -1;           ///< arena slot; -1 for the float input register
    int exponent = 0;        ///< static power-of-2 scale of the register
    int64_t lo = 0, hi = 0;  ///< inferred value bounds
  };

  /// Typed copy of one instruction's weight constant (empty for non-matmul
  /// instructions). Only the vector matching `width` is populated; int64
  /// constants are read from FpInstr::const_data directly.
  struct Const {
    IntWidth width = IntWidth::kI64;
    std::vector<int8_t> i8;
    std::vector<int16_t> i16;
    std::vector<int32_t> i32;
    /// pack_b_pair16() copy of an int8 conv/dense weight (the GEMM B
    /// operand), consumed by kernel sets exposing gemm_s8p16s32.
    std::vector<int16_t> b_pair16;
    /// Fused kinds: the epilogue lowered to executable steps (requant shifts
    /// resolved against the static exponent replay).
    std::vector<fpk::EpiStep> epi;
    /// Fused kinds: true when the accumulator bound provably fits int32, so
    /// the narrow GEMM kernels may retire the tile directly; false routes
    /// the instruction to the executor's generic int64 fallback.
    bool acc_ok32 = false;
    /// True when every intermediate epilogue value also fits int32 — the
    /// interval replay below proves it — so SIMD kernels may run the step
    /// list in 32-bit lanes (fpk::Epilogue::vec32).
    bool epi_vec32 = false;
    /// int32 copy of the absorbed bias, padded with 8 zero lanes for
    /// unmasked vector loads. Filled only when `epi_vec32`.
    std::vector<int32_t> bias32;
    /// pack_conv_wblk16 copy of an int8 conv weight, filled when this
    /// instruction's algo is kBlocked.
    std::vector<int16_t> b_blk16;
    /// pack_dw_wblk8 copy of an int8 depthwise weight (algo kBlocked).
    std::vector<int8_t> w_blk8;
    /// pack_b_nib4 copy of a conv/dense weight whose values all fit int4
    /// ([-8, 7]) — the sub-byte B operand of Algo::kGemmS4. Filled for any
    /// nibble-packable int8 GEMM weight so the autotuner can measure the
    /// candidate; depthwise and non-int4 weights leave it empty.
    std::vector<uint8_t> b_nib4;
    /// Per-output-channel requant shifts, resolved against the static
    /// exponent replay. On a fused matmul: the first epilogue requant's
    /// per-lane `to - from_c` (fpk::Epilogue::chan_shift). On a standalone
    /// kRequant fed by a per-channel matmul: the same table for the
    /// executor's per-channel requant path. Empty in the per-tensor case.
    std::vector<int32_t> chan_shifts;
  };

  std::vector<Reg> regs;      ///< indexed by register id
  std::vector<Const> consts;  ///< indexed by instruction index
  int n_slots = 0;            ///< arena value slots (<= live registers)
  bool needs_scratch = false; ///< any Conv2d instruction (im2col packing)
  /// Execution stream. Empty means "execute the canonical instructions";
  /// non-empty when the autotuner inserted layout pseudo-ops (the stream the
  /// executor, consts, algos and register ids then refer to). The canonical
  /// program is never rewritten — reference interpretation and serialization
  /// read it unchanged.
  std::vector<FpInstr> instrs;
  /// Per-exec-instruction algo selection (empty ⇒ all kAuto). Aligned with
  /// the execution stream (`instrs` when non-empty, else the canonical one).
  std::vector<fpk::Algo> algos;
};

/// Build the plan for an instruction stream. `input_register` holds the raw
/// float input and gets no slot; `output_register` stays live to the end.
/// `algos`, when given, is aligned with `instrs` and drives blocked weight
/// packing + blocked shape propagation (layout pseudo-ops must already be in
/// the stream); the plan copies it into ExecPlan::algos.
ExecPlan build_exec_plan(const std::vector<FpInstr>& instrs, int n_registers,
                         int input_register, int output_register,
                         const std::vector<fpk::Algo>* algos = nullptr);

/// Nominal input shape for compile-time size estimates, derived from the
/// first matmul's weight constant (conv nets get the zoo's 16x16 NHWC world,
/// dense-first programs a flat vector). Absolute accuracy is irrelevant —
/// activation sizes scale linearly with batch, so relative register sizes
/// (all that slot packing and scheduling compare) are batch-invariant.
Shape fp_nominal_input_shape(const std::vector<FpInstr>& instrs);

/// Per-run shape inference: fill `out[r]` for every register reachable from
/// the input, given the (runtime) input shape. Grow-only on `out`; performs
/// no allocation once `out` has n_registers entries. Shared by the executor
/// and the traffic estimator.
void infer_register_shapes(const std::vector<FpInstr>& instrs, int n_registers,
                           int input_register, const Shape& input_shape,
                           std::vector<FpRegShape>& out);

/// Estimated bytes moved by one execution (activations read + written, plus
/// constants read) under the typed plan vs the int64 reference interpreter.
/// Used by bench_engine_kernels to report GB moved.
struct TrafficEstimate {
  int64_t typed_bytes = 0;
  int64_t reference_bytes = 0;
};
TrafficEstimate estimate_traffic(const FixedPointProgram& prog, const Shape& input_shape);

}  // namespace tqt
