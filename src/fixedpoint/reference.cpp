// Reference interpreter: every register an IntTensor of int64 lanes, every
// instruction a direct loop. This is the executable specification of the
// engine — slow (8x the memory traffic of real INT8) but simple enough to
// audit against the paper, and the truth the typed kernel engine (exec.cpp)
// is asserted bit-identical to for every zoo model.
#include <cmath>

#include "fixedpoint/engine.h"
#include "fixedpoint/rescale.h"
#include "quant/fake_quant.h"
#include "runtime/parallel.h"

namespace tqt {

namespace {

using fp::rescale;
using fp::saturate;

void run_conv(const FpInstr& in, const IntTensor& x, IntTensor& y) {
  const Conv2dGeom& g = in.geom;
  const int64_t n = x.shape[0], h = x.shape[1], w = x.shape[2], cin = x.shape[3];
  const int64_t kh = in.const_shape[0], kw = in.const_shape[1], cout = in.const_shape[3];
  const int64_t oh = g.out_h(h), ow = g.out_w(w);
  y.shape = {n, oh, ow, cout};
  y.data.assign(static_cast<size_t>(n * oh * ow * cout), 0);
  y.exponent = x.exponent + in.const_exponent;
  // Integer accumulation is exact, so any disjoint split over output rows is
  // deterministic for free. The zero-skip on activations is safe here: INT8
  // tensors have no NaN/inf to drop, and post-ReLU they are genuinely sparse.
  const int64_t rows = n * oh;
  parallel_for(0, rows, grain_for(rows, ow * kh * kw * cin * cout * 2),
               [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int64_t b = r / oh;
      const int64_t oy = r % oh;
      for (int64_t ox = 0; ox < ow; ++ox) {
        int64_t* out = y.data.data() + (r * ow + ox) * cout;
        const int64_t iy0 = oy * g.stride_h - g.pad_top;
        const int64_t ix0 = ox * g.stride_w - g.pad_left;
        for (int64_t ky = 0; ky < kh; ++ky) {
          const int64_t iy = iy0 + ky;
          if (iy < 0 || iy >= h) continue;
          for (int64_t kx = 0; kx < kw; ++kx) {
            const int64_t ix = ix0 + kx;
            if (ix < 0 || ix >= w) continue;
            const int64_t* xi = x.data.data() + ((b * h + iy) * w + ix) * cin;
            const int64_t* wk = in.const_data.data() + (ky * kw + kx) * cin * cout;
            for (int64_t c = 0; c < cin; ++c) {
              const int64_t xv = xi[c];
              if (xv == 0) continue;
              const int64_t* wc = wk + c * cout;
              for (int64_t o = 0; o < cout; ++o) out[o] += xv * wc[o];
            }
          }
        }
      }
    }
  });
}

void run_depthwise(const FpInstr& in, const IntTensor& x, IntTensor& y) {
  const Conv2dGeom& g = in.geom;
  const int64_t n = x.shape[0], h = x.shape[1], w = x.shape[2], c = x.shape[3];
  const int64_t kh = in.const_shape[0], kw = in.const_shape[1];
  const int64_t oh = g.out_h(h), ow = g.out_w(w);
  y.shape = {n, oh, ow, c};
  y.data.assign(static_cast<size_t>(n * oh * ow * c), 0);
  y.exponent = x.exponent + in.const_exponent;
  const int64_t rows = n * oh;
  parallel_for(0, rows, grain_for(rows, ow * kh * kw * c * 2), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int64_t b = r / oh;
      const int64_t oy = r % oh;
      for (int64_t ox = 0; ox < ow; ++ox) {
        int64_t* out = y.data.data() + (r * ow + ox) * c;
        const int64_t iy0 = oy * g.stride_h - g.pad_top;
        const int64_t ix0 = ox * g.stride_w - g.pad_left;
        for (int64_t ky = 0; ky < kh; ++ky) {
          const int64_t iy = iy0 + ky;
          if (iy < 0 || iy >= h) continue;
          for (int64_t kx = 0; kx < kw; ++kx) {
            const int64_t ix = ix0 + kx;
            if (ix < 0 || ix >= w) continue;
            const int64_t* xi = x.data.data() + ((b * h + iy) * w + ix) * c;
            const int64_t* wk = in.const_data.data() + (ky * kw + kx) * c;
            for (int64_t ch = 0; ch < c; ++ch) out[ch] += xi[ch] * wk[ch];
          }
        }
      }
    }
  });
}

void run_dense(const FpInstr& in, const IntTensor& x, IntTensor& y) {
  const int64_t n = x.shape[0], k = x.shape[1], m = in.const_shape[1];
  y.shape = {n, m};
  y.data.assign(static_cast<size_t>(n * m), 0);
  y.exponent = x.exponent + in.const_exponent;
  parallel_for(0, n, grain_for(n, 2 * k * m), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      int64_t* out = y.data.data() + i * m;
      const int64_t* xi = x.data.data() + i * k;
      for (int64_t kk = 0; kk < k; ++kk) {
        const int64_t xv = xi[kk];
        if (xv == 0) continue;
        const int64_t* wr = in.const_data.data() + kk * m;
        for (int64_t j = 0; j < m; ++j) out[j] += xv * wr[j];
      }
    }
  });
}

void run_maxpool(const FpInstr& in, const IntTensor& x, IntTensor& y) {
  const Conv2dGeom& g = in.geom;
  const int64_t n = x.shape[0], h = x.shape[1], w = x.shape[2], c = x.shape[3];
  const int64_t oh = g.out_h(h), ow = g.out_w(w);
  y.shape = {n, oh, ow, c};
  y.data.assign(static_cast<size_t>(n * oh * ow * c), 0);
  y.exponent = x.exponent;
  const int64_t prows = n * oh;
  parallel_for(0, prows, grain_for(prows, ow * g.kh * g.kw * c), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int64_t b = r / oh;
      const int64_t oy = r % oh;
      for (int64_t ox = 0; ox < ow; ++ox) {
        int64_t* out = y.data.data() + (r * ow + ox) * c;
        const int64_t iy0 = oy * g.stride_h - g.pad_top;
        const int64_t ix0 = ox * g.stride_w - g.pad_left;
        for (int64_t ch = 0; ch < c; ++ch) {
          bool seen = false;
          int64_t best = 0;
          for (int64_t ky = 0; ky < g.kh; ++ky) {
            const int64_t iy = iy0 + ky;
            if (iy < 0 || iy >= h) continue;
            for (int64_t kx = 0; kx < g.kw; ++kx) {
              const int64_t ix = ix0 + kx;
              if (ix < 0 || ix >= w) continue;
              const int64_t v = x.data[static_cast<size_t>(((b * h + iy) * w + ix) * c + ch)];
              if (!seen || v > best) {
                best = v;
                seen = true;
              }
            }
          }
          out[ch] = seen ? best : 0;
        }
      }
    }
  });
}

// Fused-kind epilogue: replay the absorbed instruction sequence as
// whole-tensor int64 passes over the accumulator, one pass per step. This is
// semantically identical to running the original (unfused) instructions, so
// the reference stays the bit-exactness oracle for fused programs too.
void apply_epi_ref(const FpInstr& in, IntTensor& y) {
  const int64_t channels = y.shape.back();
  const int64_t n = static_cast<int64_t>(y.data.size());
  // Per-channel weights: output lane c sits at exponent y.exponent +
  // chan_data[c]; the first requant step folds the delta into its shift.
  bool chan_pending = !in.chan_data.empty();
  if (chan_pending && (epi_step_count(in) == 0 ||
                       epi_step(in, 0).op != static_cast<int64_t>(FpInstr::EpiOp::kRequant))) {
    throw std::runtime_error("fp reference: per-channel matmul must retire through a requant");
  }
  for (int s = 0; s < epi_step_count(in); ++s) {
    const FpEpiStep st = epi_step(in, s);
    switch (static_cast<FpInstr::EpiOp>(st.op)) {
      case FpInstr::EpiOp::kRequant: {
        const int from = y.exponent;
        const int to = static_cast<int>(st.a);
        if (chan_pending) {
          const int64_t* delta = in.chan_data.data();
          parallel_for(0, n, kElementGrain, [&](int64_t i0, int64_t i1) {
            for (int64_t i = i0; i < i1; ++i) {
              int64_t& v = y.data[static_cast<size_t>(i)];
              v = saturate(rescale(v, from + static_cast<int>(delta[i % channels]), to),
                           st.b, st.c);
            }
          });
          chan_pending = false;
        } else {
          parallel_for(0, n, kElementGrain, [&](int64_t i0, int64_t i1) {
            for (int64_t i = i0; i < i1; ++i) {
              int64_t& v = y.data[static_cast<size_t>(i)];
              v = saturate(rescale(v, from, to), st.b, st.c);
            }
          });
        }
        y.exponent = to;
        break;
      }
      case FpInstr::EpiOp::kBias: {
        parallel_for(0, n, kElementGrain, [&](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) {
            y.data[static_cast<size_t>(i)] +=
                in.bias_data[static_cast<size_t>(i % channels)];
          }
        });
        break;
      }
      case FpInstr::EpiOp::kRelu: {
        parallel_for(0, n, kElementGrain, [&](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) {
            int64_t& v = y.data[static_cast<size_t>(i)];
            v = std::max<int64_t>(v, 0);
          }
        });
        break;
      }
      case FpInstr::EpiOp::kClamp: {
        parallel_for(0, n, kElementGrain, [&](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) {
            int64_t& v = y.data[static_cast<size_t>(i)];
            v = saturate(v, st.b, st.c);
          }
        });
        break;
      }
      case FpInstr::EpiOp::kLeaky: {
        const int lift = -static_cast<int>(st.a);  // alpha exponents are negative
        parallel_for(0, n, kElementGrain, [&](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) {
            int64_t& v = y.data[static_cast<size_t>(i)];
            v = std::max(v << lift, v * st.b);
          }
        });
        y.exponent += static_cast<int>(st.a);
        break;
      }
    }
  }
}

}  // namespace

IntTensor FixedPointProgram::run_raw_reference(const Tensor& input) const {
  std::vector<IntTensor> regs(static_cast<size_t>(n_registers));
  // The input register conceptually holds the raw real input; we keep the
  // float tensor aside and materialize it at the kQuantizeInput instruction.
  for (const FpInstr& in : instrs_) {
    IntTensor& y = regs[static_cast<size_t>(in.output)];
    switch (in.kind) {
      case FpInstr::Kind::kQuantizeInput: {
        const float s = std::exp2(static_cast<float>(in.out_exponent));
        y.shape = input.shape();
        y.exponent = in.out_exponent;
        y.data.resize(static_cast<size_t>(input.numel()));
        parallel_for(0, input.numel(), kElementGrain, [&](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) {
            y.data[static_cast<size_t>(i)] = saturate(
                static_cast<int64_t>(round_half_to_even(input[i] / s)), in.clamp_lo, in.clamp_hi);
          }
        });
        break;
      }
      case FpInstr::Kind::kRequant: {
        const IntTensor& x = regs[static_cast<size_t>(in.inputs[0])];
        y.shape = x.shape;
        y.exponent = in.out_exponent;
        y.data.resize(x.data.size());
        if (!in.chan_data.empty()) {
          // Requant of a per-channel matmul output (channels innermost):
          // lane i is at exponent x.exponent + chan_data[i % C].
          const int64_t C = static_cast<int64_t>(in.chan_data.size());
          const int64_t* delta = in.chan_data.data();
          parallel_for(0, static_cast<int64_t>(x.data.size()), kElementGrain,
                       [&](int64_t i0, int64_t i1) {
            for (int64_t i = i0; i < i1; ++i) {
              y.data[static_cast<size_t>(i)] =
                  saturate(rescale(x.data[static_cast<size_t>(i)],
                                   x.exponent + static_cast<int>(delta[i % C]),
                                   in.out_exponent),
                           in.clamp_lo, in.clamp_hi);
            }
          });
          break;
        }
        parallel_for(0, static_cast<int64_t>(x.data.size()), kElementGrain,
                     [&](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) {
            y.data[static_cast<size_t>(i)] =
                saturate(rescale(x.data[static_cast<size_t>(i)], x.exponent, in.out_exponent),
                         in.clamp_lo, in.clamp_hi);
          }
        });
        break;
      }
      case FpInstr::Kind::kConv2d:
        run_conv(in, regs[static_cast<size_t>(in.inputs[0])], y);
        break;
      case FpInstr::Kind::kDepthwise:
        run_depthwise(in, regs[static_cast<size_t>(in.inputs[0])], y);
        break;
      case FpInstr::Kind::kDense:
        run_dense(in, regs[static_cast<size_t>(in.inputs[0])], y);
        break;
      case FpInstr::Kind::kBiasAdd: {
        const IntTensor& x = regs[static_cast<size_t>(in.inputs[0])];
        const int64_t channels = in.const_shape[0];
        y.shape = x.shape;
        y.exponent = x.exponent;
        y.data.resize(x.data.size());
        parallel_for(0, static_cast<int64_t>(x.data.size()), kElementGrain,
                     [&](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) {
            y.data[static_cast<size_t>(i)] =
                x.data[static_cast<size_t>(i)] +
                in.const_data[static_cast<size_t>(i % channels)];
          }
        });
        break;
      }
      case FpInstr::Kind::kRelu: {
        const IntTensor& x = regs[static_cast<size_t>(in.inputs[0])];
        y = x;
        parallel_for(0, static_cast<int64_t>(y.data.size()), kElementGrain,
                     [&](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) {
            int64_t& v = y.data[static_cast<size_t>(i)];
            v = std::max<int64_t>(v, 0);
          }
        });
        break;
      }
      case FpInstr::Kind::kRelu6: {
        const IntTensor& x = regs[static_cast<size_t>(in.inputs[0])];
        y = x;
        parallel_for(0, static_cast<int64_t>(y.data.size()), kElementGrain,
                     [&](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) {
            int64_t& v = y.data[static_cast<size_t>(i)];
            v = saturate(v, in.clamp_lo, in.clamp_hi);
          }
        });
        break;
      }
      case FpInstr::Kind::kLeakyRelu: {
        const IntTensor& x = regs[static_cast<size_t>(in.inputs[0])];
        y.shape = x.shape;
        y.exponent = x.exponent + in.alpha_exponent;
        y.data.resize(x.data.size());
        const int lift = -in.alpha_exponent;  // alpha exponents are negative
        parallel_for(0, static_cast<int64_t>(x.data.size()), kElementGrain,
                     [&](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) {
            const size_t si = static_cast<size_t>(i);
            const int64_t aligned = x.data[si] << lift;      // x at the product scale
            const int64_t scaled = x.data[si] * in.alpha_q;  // alpha * x, exact
            y.data[si] = std::max(aligned, scaled);
          }
        });
        break;
      }
      case FpInstr::Kind::kMaxPool:
        run_maxpool(in, regs[static_cast<size_t>(in.inputs[0])], y);
        break;
      case FpInstr::Kind::kEltwiseAdd: {
        const IntTensor& a = regs[static_cast<size_t>(in.inputs[0])];
        const IntTensor& b = regs[static_cast<size_t>(in.inputs[1])];
        y.shape = a.shape;
        y.exponent = a.exponent;
        y.data.resize(a.data.size());
        parallel_for(0, static_cast<int64_t>(a.data.size()), kElementGrain,
                     [&](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) {
            y.data[static_cast<size_t>(i)] =
                a.data[static_cast<size_t>(i)] + b.data[static_cast<size_t>(i)];
          }
        });
        break;
      }
      case FpInstr::Kind::kConcat: {
        const IntTensor& first = regs[static_cast<size_t>(in.inputs[0])];
        Shape out_shape = first.shape;
        int64_t total_c = 0;
        for (int r : in.inputs) total_c += regs[static_cast<size_t>(r)].shape.back();
        out_shape.back() = total_c;
        y.shape = out_shape;
        y.exponent = first.exponent;
        y.data.resize(static_cast<size_t>(numel_of(out_shape)));
        const int64_t rows = numel_of(out_shape) / total_c;
        int64_t offset = 0;
        for (int r : in.inputs) {
          const IntTensor& src = regs[static_cast<size_t>(r)];
          const int64_t c = src.shape.back();
          for (int64_t row = 0; row < rows; ++row) {
            for (int64_t j = 0; j < c; ++j) {
              y.data[static_cast<size_t>(row * total_c + offset + j)] =
                  src.data[static_cast<size_t>(row * c + j)];
            }
          }
          offset += c;
        }
        break;
      }
      case FpInstr::Kind::kFlatten: {
        const IntTensor& x = regs[static_cast<size_t>(in.inputs[0])];
        y = x;
        y.shape = {x.shape[0], x.numel() / x.shape[0]};
        break;
      }
      case FpInstr::Kind::kConv2dFused:
        run_conv(in, regs[static_cast<size_t>(in.inputs[0])], y);
        apply_epi_ref(in, y);
        break;
      case FpInstr::Kind::kDepthwiseFused:
        run_depthwise(in, regs[static_cast<size_t>(in.inputs[0])], y);
        apply_epi_ref(in, y);
        break;
      case FpInstr::Kind::kDenseFused:
        run_dense(in, regs[static_cast<size_t>(in.inputs[0])], y);
        apply_epi_ref(in, y);
        break;
    }
  }
  return regs[static_cast<size_t>(output_register)];
}

Tensor FixedPointProgram::run_reference(const Tensor& input) const {
  const IntTensor raw = run_raw_reference(input);
  Tensor out(raw.shape);
  const float s = std::exp2(static_cast<float>(raw.exponent));
  parallel_for(0, out.numel(), kElementGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      out[i] = static_cast<float>(raw.data[static_cast<size_t>(i)]) * s;
    }
  });
  return out;
}

}  // namespace tqt
